//! # rtmdm-par — dependency-free parallel map
//!
//! A scoped worker pool over `std::thread` (no external crates) shared
//! by the experiment harness (`rtmdm-bench`) and the admission service
//! (`rtmdm-core`'s `service` module). Callers hand [`par_map_seeded`] a
//! grid of self-contained cells; it returns results in input order, so
//! downstream folds reproduce the serial loop exactly and emitted
//! artifacts are byte-identical for any thread count.
//!
//! Every cell must be self-contained by construction: a benchmark cell
//! seeds its own RNG from the cell's parameters, a service query carries
//! its full request — no state is shared across cells, so cells may run
//! on any thread in any order without changing their results. A panic
//! in any cell propagates to the caller with its original payload once
//! the pool has drained.
//!
//! The worker count comes from the `RTMDM_THREADS` environment variable
//! when set (`RTMDM_THREADS=1` forces the plain serial path), otherwise
//! from [`std::thread::available_parallelism`].

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Worker threads the pool uses: `RTMDM_THREADS` when set (values
/// that are empty, unparsable, or `0` fall back to single-threaded),
/// otherwise the machine's available parallelism.
pub fn num_threads() -> usize {
    threads_from(std::env::var("RTMDM_THREADS").ok().as_deref())
}

/// Pure core of [`num_threads`], separated so the parsing rules are
/// unit-testable without mutating the process environment.
fn threads_from(var: Option<&str>) -> usize {
    match var {
        Some(v) => v
            .trim()
            .parse::<usize>()
            .ok()
            .filter(|&n| n >= 1)
            .unwrap_or(1),
        None => std::thread::available_parallelism().map_or(1, |n| n.get()),
    }
}

/// Maps `f` over `cells` on [`num_threads`] workers, returning results
/// in input order.
///
/// The name records the contract callers rely on: every cell must
/// carry its own seed (or be otherwise self-contained), because cells
/// execute concurrently in an unspecified claim order. Output order is
/// always input order, so a fold over the returned `Vec` reproduces the
/// serial loop exactly.
///
/// # Panics
///
/// Re-raises the first worker panic (by input order of joining) with
/// its original payload.
pub fn par_map_seeded<T, R, F>(cells: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    par_map_with_threads(num_threads(), cells, f)
}

/// [`par_map_seeded`] with an explicit worker count — the testable core
/// and the escape hatch for callers that know better than the
/// environment.
pub fn par_map_with_threads<T, R, F>(threads: usize, cells: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = cells.len();
    let threads = threads.clamp(1, n.max(1));
    if threads == 1 {
        return cells.into_iter().map(f).collect();
    }

    // Work claiming: an atomic cursor over index-addressed cells. Each
    // worker takes the next unclaimed index until the grid is drained;
    // the per-cell mutexes only transfer ownership (never contended —
    // the cursor hands each index to exactly one worker).
    let work: Vec<Mutex<Option<T>>> = cells.into_iter().map(|c| Mutex::new(Some(c))).collect();
    let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);

    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let cell = work[i]
                        .lock()
                        .expect("no panic can occur while a work lock is held")
                        .take()
                        .expect("the cursor hands out each index exactly once");
                    let result = f(cell);
                    *slots[i]
                        .lock()
                        .expect("no panic can occur while a slot lock is held") = Some(result);
                })
            })
            .collect();
        let mut first_panic = None;
        for handle in handles {
            if let Err(payload) = handle.join() {
                first_panic.get_or_insert(payload);
            }
        }
        if let Some(payload) = first_panic {
            std::panic::resume_unwind(payload);
        }
    });

    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("workers finished cleanly")
                .expect("every slot is filled once the pool drains")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thread_count_parsing() {
        assert_eq!(threads_from(Some("4")), 4);
        assert_eq!(threads_from(Some(" 8 ")), 8);
        assert_eq!(threads_from(Some("0")), 1);
        assert_eq!(threads_from(Some("-3")), 1);
        assert_eq!(threads_from(Some("lots")), 1);
        assert_eq!(threads_from(Some("")), 1);
        assert!(threads_from(None) >= 1);
    }

    #[test]
    fn results_keep_input_order_at_any_width() {
        let cells: Vec<u64> = (0..97).collect();
        let expected: Vec<u64> = cells.iter().map(|x| x * x).collect();
        for threads in [1, 2, 3, 8, 200] {
            let got = par_map_with_threads(threads, cells.clone(), |x| x * x);
            assert_eq!(got, expected, "threads={threads}");
        }
    }

    #[test]
    fn empty_and_singleton_grids() {
        assert_eq!(
            par_map_with_threads(8, Vec::<u8>::new(), |x| x),
            Vec::<u8>::new()
        );
        assert_eq!(par_map_with_threads(8, vec![7u8], |x| x + 1), vec![8]);
    }

    #[test]
    fn worker_panics_propagate_with_payload() {
        let cells: Vec<u32> = (0..64).collect();
        let caught = std::panic::catch_unwind(|| {
            par_map_with_threads(4, cells, |x| {
                if x == 13 {
                    panic!("cell 13 exploded");
                }
                x
            })
        })
        .expect_err("panic must propagate");
        let msg = caught
            .downcast_ref::<&str>()
            .copied()
            .map(str::to_owned)
            .or_else(|| caught.downcast_ref::<String>().cloned())
            .unwrap_or_default();
        assert!(msg.contains("cell 13 exploded"), "payload lost: {msg:?}");
    }
}
