//! Deterministic fault injection for the platform model.
//!
//! Real external-memory MCUs are not fault-free: QSPI/OSPI transfers
//! drop or corrupt bursts under marginal signal integrity, and bus
//! arbitration adds latency jitter. [`FaultPlan`] describes such a
//! failure environment; [`FaultInjector`] turns it into reproducible
//! per-transfer decisions the simulator consults when a DMA transfer
//! completes.
//!
//! ## Determinism guarantee
//!
//! Every decision is a pure function of the plan and the transfer's
//! identity `(task, job, segment, attempt)` — each query seeds a fresh
//! [`StdRng`](rand::rngs::StdRng) from the mixed key and draws one
//! word. No generator state is shared between queries, so decisions are
//! independent of the order in which the simulator asks, of event
//! interleaving, and of thread count: two runs with the same plan see
//! the same fault set, byte for byte.
//!
//! The same construction couples runs across fault rates: a transfer's
//! decision word does not depend on the rate, so the fault set at rate
//! `r₁ < r₂` is a subset of the fault set at `r₂` (common random
//! numbers). Sweeps over the rate therefore degrade monotonically
//! rather than re-rolling every fault.
//!
//! ## Fault model
//!
//! - **Transfer faults** are transient: a faulted DMA transfer
//!   delivered corrupt data and must be re-fetched in full. A given
//!   transfer faults at most [`FaultPlan::max_retries`] consecutive
//!   times, then succeeds — liveness is unconditional and the
//!   worst-case re-fetch cost is bounded by construction.
//! - **Latency jitter** adds up to [`FaultPlan::jitter_max_cycles`]
//!   extra bus cycles to each transfer attempt, drawn uniformly and
//!   keyed like fault decisions.
//!
//! When the plan is inactive ([`FaultPlan::is_active`] is `false`),
//! every query returns its zero value without touching an RNG — the
//! disabled path costs nothing and perturbs nothing.

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::time::Cycles;

/// A description of the fault environment a run is subjected to.
///
/// The default plan (and [`FaultPlan::NONE`]) injects nothing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Seed of the fault stream, independent of the simulator's
    /// execution-time jitter seed.
    pub seed: u64,
    /// Probability that a DMA transfer attempt faults, in parts per
    /// million. `0` disables transfer faults.
    pub dma_fault_rate_ppm: u64,
    /// Upper bound on *consecutive* faults of one transfer: after this
    /// many failed attempts the next attempt succeeds unconditionally
    /// (transient-fault model, bounded re-fetch cost).
    pub max_retries: u32,
    /// Maximum extra bus latency added to one transfer attempt, in
    /// cycles. `0` disables jitter.
    pub jitter_max_cycles: u64,
}

/// Default number of consecutive faults tolerated per transfer.
pub const DEFAULT_MAX_RETRIES: u32 = 3;

impl FaultPlan {
    /// The fault-free plan: nothing is injected, no RNG is consulted.
    pub const NONE: FaultPlan = FaultPlan {
        seed: 0,
        dma_fault_rate_ppm: 0,
        max_retries: DEFAULT_MAX_RETRIES,
        jitter_max_cycles: 0,
    };

    /// A plan injecting transfer faults at `rate_ppm` under `seed`,
    /// with the default retry bound and no jitter.
    pub const fn with_rate(seed: u64, rate_ppm: u64) -> Self {
        FaultPlan {
            seed,
            dma_fault_rate_ppm: rate_ppm,
            max_retries: DEFAULT_MAX_RETRIES,
            jitter_max_cycles: 0,
        }
    }

    /// Whether this plan injects anything at all.
    pub const fn is_active(&self) -> bool {
        self.dma_fault_rate_ppm > 0 || self.jitter_max_cycles > 0
    }
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::NONE
    }
}

/// Decision salts keeping the fault and jitter streams of one transfer
/// attempt independent.
const STREAM_FAULT: u64 = 0x46_41_55_4C_54; // "FAULT"
const STREAM_JITTER: u64 = 0x4A_49_54_54_45_52; // "JITTER"

/// SplitMix64 finalizer folding `v` into a running key.
#[inline]
const fn mix(state: u64, v: u64) -> u64 {
    let mut z = (state ^ v).wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Reproducible fault decisions for a [`FaultPlan`].
///
/// Stateless by design — see the module docs for why keyed decisions
/// (rather than a shared stream) are what makes the injector
/// reproducible by construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultInjector {
    plan: FaultPlan,
}

impl FaultInjector {
    /// Creates an injector for `plan`.
    pub const fn new(plan: FaultPlan) -> Self {
        FaultInjector { plan }
    }

    /// The plan this injector realizes.
    pub const fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Whether any injection can occur (false ⇒ every query is a
    /// constant-time zero).
    pub const fn is_active(&self) -> bool {
        self.plan.is_active()
    }

    /// One word of the decision stream for a transfer attempt,
    /// drawn through the vendored [`StdRng`] seeded from the mixed key.
    fn decision_word(&self, stream: u64, task: u64, job: u64, seg: u64, attempt: u64) -> u64 {
        let key = mix(
            mix(mix(mix(mix(self.plan.seed, stream), task), job), seg),
            attempt,
        );
        StdRng::seed_from_u64(key).next_u64()
    }

    /// Whether attempt `attempt` (0-based) of staging `(task, job, seg)`
    /// faults and must be re-fetched.
    ///
    /// Attempts at or beyond [`FaultPlan::max_retries`] never fault:
    /// faults are transient and re-fetching is bounded.
    pub fn transfer_faults(&self, task: usize, job: u64, seg: usize, attempt: u32) -> bool {
        if self.plan.dma_fault_rate_ppm == 0 || attempt >= self.plan.max_retries {
            return false;
        }
        let word = self.decision_word(
            STREAM_FAULT,
            task as u64,
            job,
            seg as u64,
            u64::from(attempt),
        );
        // Modulo keeps the decision word rate-independent, so the fault
        // set only grows as the rate rises (common random numbers).
        word % 1_000_000 < self.plan.dma_fault_rate_ppm.min(1_000_000)
    }

    /// Extra bus latency of attempt `attempt` of staging
    /// `(task, job, seg)`, uniform over `[0, jitter_max_cycles]`.
    pub fn transfer_jitter(&self, task: usize, job: u64, seg: usize, attempt: u32) -> Cycles {
        if self.plan.jitter_max_cycles == 0 {
            return Cycles::ZERO;
        }
        let word = self.decision_word(
            STREAM_JITTER,
            task as u64,
            job,
            seg as u64,
            u64::from(attempt),
        );
        Cycles::new(word % (self.plan.jitter_max_cycles + 1))
    }

    /// Worst-case extra staging cycles for one segment whose clean
    /// transfer takes `transfer` cycles: every tolerated fault re-pays
    /// the full transfer plus maximal jitter, and the final successful
    /// attempt still pays its own jitter.
    pub fn worst_case_extra(&self, transfer: Cycles) -> Cycles {
        if !self.is_active() {
            return Cycles::ZERO;
        }
        let jitter = Cycles::new(self.plan.jitter_max_cycles);
        let retries = if self.plan.dma_fault_rate_ppm > 0 {
            u64::from(self.plan.max_retries)
        } else {
            0
        };
        Cycles::new(
            (transfer.get().saturating_add(jitter.get()))
                .saturating_mul(retries)
                .saturating_add(jitter.get()),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn injector(rate: u64) -> FaultInjector {
        FaultInjector::new(FaultPlan::with_rate(7, rate))
    }

    #[test]
    fn inactive_plan_never_faults_or_jitters() {
        let inj = FaultInjector::new(FaultPlan::NONE);
        assert!(!inj.is_active());
        for seg in 0..64 {
            assert!(!inj.transfer_faults(0, 0, seg, 0));
            assert_eq!(inj.transfer_jitter(0, 0, seg, 0), Cycles::ZERO);
        }
        assert_eq!(inj.worst_case_extra(Cycles::new(1000)), Cycles::ZERO);
    }

    #[test]
    fn decisions_are_reproducible_and_keyed() {
        let a = injector(500_000);
        let b = injector(500_000);
        let mut distinct = 0;
        for seg in 0..256 {
            assert_eq!(
                a.transfer_faults(1, 2, seg, 0),
                b.transfer_faults(1, 2, seg, 0)
            );
            if a.transfer_faults(1, 2, seg, 0) != a.transfer_faults(1, 3, seg, 0) {
                distinct += 1;
            }
        }
        // Different jobs see different fault patterns.
        assert!(distinct > 0);
    }

    #[test]
    fn fault_sets_grow_monotonically_with_rate() {
        let lo = injector(50_000);
        let hi = injector(400_000);
        for task in 0..4 {
            for job in 0..32 {
                for seg in 0..8 {
                    if lo.transfer_faults(task, job, seg, 0) {
                        assert!(
                            hi.transfer_faults(task, job, seg, 0),
                            "fault set must be a superset at the higher rate"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn retry_bound_caps_consecutive_faults() {
        let inj = FaultInjector::new(FaultPlan {
            seed: 1,
            dma_fault_rate_ppm: 1_000_000,
            max_retries: 2,
            jitter_max_cycles: 0,
        });
        // Rate 100%: the first `max_retries` attempts fault, then the
        // bound forces success.
        assert!(inj.transfer_faults(0, 0, 0, 0));
        assert!(inj.transfer_faults(0, 0, 0, 1));
        assert!(!inj.transfer_faults(0, 0, 0, 2));
        assert!(!inj.transfer_faults(0, 0, 0, 99));
    }

    #[test]
    fn observed_fault_frequency_tracks_the_rate() {
        let inj = injector(250_000);
        let n = 4000;
        let faults = (0..n).filter(|&j| inj.transfer_faults(0, j, 0, 0)).count();
        let freq_ppm = faults as u64 * 1_000_000 / n;
        assert!(
            (200_000..=300_000).contains(&freq_ppm),
            "250000 ppm requested, observed {freq_ppm}"
        );
    }

    #[test]
    fn jitter_stays_within_bound_and_varies() {
        let inj = FaultInjector::new(FaultPlan {
            seed: 3,
            dma_fault_rate_ppm: 0,
            max_retries: DEFAULT_MAX_RETRIES,
            jitter_max_cycles: 100,
        });
        assert!(inj.is_active());
        let mut seen_nonzero = false;
        for job in 0..64 {
            let j = inj.transfer_jitter(0, job, 0, 0);
            assert!(j <= Cycles::new(100));
            seen_nonzero |= !j.is_zero();
        }
        assert!(seen_nonzero, "jitter must actually perturb transfers");
    }

    #[test]
    fn worst_case_extra_covers_all_tolerated_faults() {
        let inj = FaultInjector::new(FaultPlan {
            seed: 0,
            dma_fault_rate_ppm: 10_000,
            max_retries: 3,
            jitter_max_cycles: 50,
        });
        // 3 retries × (1000 + 50) + final attempt's jitter 50.
        assert_eq!(inj.worst_case_extra(Cycles::new(1000)), Cycles::new(3200));
    }
}
