//! Platform configurations: the MCU the framework runs on.

use serde::{Deserialize, Serialize};

use crate::error::ConfigError;
use crate::time::{Cycles, Frequency};
use crate::xbus::{ContentionModel, ExtMemConfig, ExtMemKind};

/// Minimum SRAM any platform must offer (enough for one tiny buffer).
const MIN_SRAM_BYTES: u64 = 4 * 1024;
/// Maximum supported inflation factor (2× slowdown).
const MAX_INFLATION_PPM: u32 = 1_000_000;

/// Complete description of the simulated MCU platform.
///
/// A `PlatformConfig` bundles everything timing-relevant: CPU clock, SRAM
/// budget, external-memory transfer costs, bus-contention factors, and
/// scheduler overheads. Construct one with a preset
/// (e.g. [`PlatformConfig::stm32f746_qspi`]) or with [`PlatformConfig::builder`].
///
/// # Examples
///
/// ```rust
/// use rtmdm_mcusim::{Cycles, Frequency, PlatformConfig, ExtMemKind};
///
/// # fn main() -> Result<(), rtmdm_mcusim::ConfigError> {
/// let p = PlatformConfig::builder()
///     .name("my-board")
///     .cpu(Frequency::mhz(160))
///     .sram_bytes(256 * 1024)
///     .ext_mem_bandwidth(ExtMemKind::Psram, 120_000_000, Cycles::new(90))
///     .build()?;
/// assert_eq!(p.cpu, Frequency::mhz(160));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PlatformConfig {
    /// Human-readable preset name (appears in result tables).
    pub name: String,
    /// CPU clock.
    pub cpu: Frequency,
    /// On-chip SRAM available to the framework, in bytes.
    pub sram_bytes: u64,
    /// On-chip flash (code + resident constants), in bytes. Informational
    /// for capacity reports; weights live in external memory.
    pub flash_bytes: u64,
    /// External weight memory.
    pub ext_mem: ExtMemConfig,
    /// CPU/DMA mutual slowdown while overlapped.
    pub contention: ContentionModel,
    /// Number of DMA channels usable for weight staging (≥ 1).
    pub dma_channels: u8,
    /// Scheduler context-switch overhead charged at every segment
    /// boundary where the running task changes.
    pub context_switch_cycles: Cycles,
}

impl PlatformConfig {
    /// Starts building a custom platform.
    pub fn builder() -> PlatformBuilder {
        PlatformBuilder::new()
    }

    /// STM32F746-class board: 200 MHz Cortex-M7, 320 KiB SRAM, weights in
    /// QSPI NOR flash at ≈40 MB/s, moderate bus contention.
    ///
    /// This is the default evaluation platform of the reproduction.
    pub fn stm32f746_qspi() -> Self {
        let cpu = Frequency::mhz(200);
        PlatformConfig {
            name: "stm32f746-qspi".to_owned(),
            cpu,
            sram_bytes: 320 * 1024,
            flash_bytes: 1024 * 1024,
            ext_mem: ExtMemConfig::from_bandwidth(
                ExtMemKind::QspiFlash,
                cpu,
                40_000_000,
                Cycles::new(120),
            ),
            contention: ContentionModel {
                cpu_inflation_ppm: 150_000, // 15% CPU slowdown under DMA traffic
                dma_inflation_ppm: 100_000, // 10% DMA slowdown under CPU traffic
            },
            dma_channels: 1,
            context_switch_cycles: Cycles::new(400),
        }
    }

    /// STM32H743-class board: 400 MHz Cortex-M7, 1 MiB SRAM, octal-SPI
    /// PSRAM at ≈200 MB/s, light contention (separate AXI masters).
    pub fn stm32h743_ospi() -> Self {
        let cpu = Frequency::mhz(400);
        PlatformConfig {
            name: "stm32h743-ospi".to_owned(),
            cpu,
            sram_bytes: 1024 * 1024,
            flash_bytes: 2 * 1024 * 1024,
            ext_mem: ExtMemConfig::from_bandwidth(
                ExtMemKind::Psram,
                cpu,
                200_000_000,
                Cycles::new(80),
            ),
            contention: ContentionModel {
                cpu_inflation_ppm: 80_000,
                dma_inflation_ppm: 50_000,
            },
            dma_channels: 1,
            context_switch_cycles: Cycles::new(300),
        }
    }

    /// Low-end Cortex-M4 board: 80 MHz, 128 KiB SRAM, slow QSPI flash at
    /// ≈16 MB/s, heavy contention (single AHB bus).
    pub fn cortex_m4_lowend() -> Self {
        let cpu = Frequency::mhz(80);
        PlatformConfig {
            name: "cortex-m4-lowend".to_owned(),
            cpu,
            sram_bytes: 128 * 1024,
            flash_bytes: 512 * 1024,
            ext_mem: ExtMemConfig::from_bandwidth(
                ExtMemKind::QspiFlash,
                cpu,
                16_000_000,
                Cycles::new(160),
            ),
            contention: ContentionModel {
                cpu_inflation_ppm: 300_000,
                dma_inflation_ppm: 200_000,
            },
            dma_channels: 1,
            context_switch_cycles: Cycles::new(500),
        }
    }

    /// The "all weights resident in SRAM" idealisation: identical CPU to
    /// [`PlatformConfig::stm32f746_qspi`] but with a free external memory.
    /// Used as the upper-bound baseline (B3).
    pub fn ideal_sram() -> Self {
        let mut p = PlatformConfig::stm32f746_qspi();
        p.name = "ideal-sram".to_owned();
        p.ext_mem = ExtMemConfig::ideal();
        p.contention = ContentionModel::NONE;
        p
    }

    /// All built-in presets, for sweeps and tables.
    pub fn presets() -> Vec<PlatformConfig> {
        vec![
            PlatformConfig::cortex_m4_lowend(),
            PlatformConfig::stm32f746_qspi(),
            PlatformConfig::stm32h743_ospi(),
            PlatformConfig::ideal_sram(),
        ]
    }

    /// Checks configuration invariants.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] if the SRAM is too small, the
    /// external-memory rate has a zero denominator, an inflation factor
    /// exceeds 1 000 000 ppm, or no DMA channel is available.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.sram_bytes < MIN_SRAM_BYTES {
            return Err(ConfigError::SramTooSmall {
                bytes: self.sram_bytes,
            });
        }
        if self.ext_mem.cycles_per_byte_den == 0 {
            return Err(ConfigError::ZeroBandwidth);
        }
        for ppm in [
            self.contention.cpu_inflation_ppm,
            self.contention.dma_inflation_ppm,
        ] {
            if ppm > MAX_INFLATION_PPM {
                return Err(ConfigError::InflationOutOfRange { ppm });
            }
        }
        if self.dma_channels == 0 && self.ext_mem.kind != ExtMemKind::Ideal {
            return Err(ConfigError::NoDmaChannel);
        }
        Ok(())
    }

    /// Returns a copy with the external memory swapped (used by the
    /// bandwidth-sweep experiment F5).
    pub fn with_ext_mem(&self, ext_mem: ExtMemConfig) -> Self {
        let mut p = self.clone();
        p.ext_mem = ext_mem;
        p
    }

    /// Returns a copy with a different SRAM size (experiment F4).
    pub fn with_sram_bytes(&self, sram_bytes: u64) -> Self {
        let mut p = self.clone();
        p.sram_bytes = sram_bytes;
        p
    }
}

/// Builder for [`PlatformConfig`] (see [`PlatformConfig::builder`]).
#[derive(Debug, Clone)]
pub struct PlatformBuilder {
    config: PlatformConfig,
}

impl PlatformBuilder {
    fn new() -> Self {
        PlatformBuilder {
            config: PlatformConfig::stm32f746_qspi(),
        }
    }

    /// Sets the preset name.
    pub fn name(mut self, name: impl Into<String>) -> Self {
        self.config.name = name.into();
        self
    }

    /// Sets the CPU clock.
    pub fn cpu(mut self, cpu: Frequency) -> Self {
        self.config.cpu = cpu;
        self
    }

    /// Sets the SRAM budget in bytes.
    pub fn sram_bytes(mut self, bytes: u64) -> Self {
        self.config.sram_bytes = bytes;
        self
    }

    /// Sets the internal-flash size in bytes.
    pub fn flash_bytes(mut self, bytes: u64) -> Self {
        self.config.flash_bytes = bytes;
        self
    }

    /// Configures the external memory from a sustained bandwidth.
    pub fn ext_mem_bandwidth(
        mut self,
        kind: ExtMemKind,
        bytes_per_second: u64,
        setup: Cycles,
    ) -> Self {
        self.config.ext_mem =
            ExtMemConfig::from_bandwidth(kind, self.config.cpu, bytes_per_second, setup);
        self
    }

    /// Sets the external memory config directly.
    pub fn ext_mem(mut self, ext_mem: ExtMemConfig) -> Self {
        self.config.ext_mem = ext_mem;
        self
    }

    /// Sets the bus-contention model.
    pub fn contention(mut self, contention: ContentionModel) -> Self {
        self.config.contention = contention;
        self
    }

    /// Sets the number of DMA channels.
    pub fn dma_channels(mut self, channels: u8) -> Self {
        self.config.dma_channels = channels;
        self
    }

    /// Sets the context-switch overhead.
    pub fn context_switch(mut self, cycles: Cycles) -> Self {
        self.config.context_switch_cycles = cycles;
        self
    }

    /// Validates and returns the configuration.
    ///
    /// # Errors
    ///
    /// Propagates [`PlatformConfig::validate`] failures.
    pub fn build(self) -> Result<PlatformConfig, ConfigError> {
        self.config.validate()?;
        Ok(self.config)
    }
}

impl Default for PlatformBuilder {
    fn default() -> Self {
        PlatformBuilder::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_valid() {
        for p in PlatformConfig::presets() {
            p.validate().unwrap_or_else(|e| panic!("{}: {e}", p.name));
        }
    }

    #[test]
    fn builder_overrides_fields() {
        let p = PlatformConfig::builder()
            .name("x")
            .cpu(Frequency::mhz(100))
            .sram_bytes(64 * 1024)
            .dma_channels(2)
            .context_switch(Cycles::new(10))
            .build()
            .expect("valid");
        assert_eq!(p.name, "x");
        assert_eq!(p.cpu, Frequency::mhz(100));
        assert_eq!(p.sram_bytes, 64 * 1024);
        assert_eq!(p.dma_channels, 2);
        assert_eq!(p.context_switch_cycles, Cycles::new(10));
    }

    #[test]
    fn tiny_sram_is_rejected() {
        let err = PlatformConfig::builder()
            .sram_bytes(1024)
            .build()
            .unwrap_err();
        assert!(matches!(err, ConfigError::SramTooSmall { bytes: 1024 }));
    }

    #[test]
    fn excessive_inflation_is_rejected() {
        let err = PlatformConfig::builder()
            .contention(ContentionModel::symmetric(1_500_000))
            .build()
            .unwrap_err();
        assert!(matches!(err, ConfigError::InflationOutOfRange { .. }));
    }

    #[test]
    fn zero_dma_channels_rejected_unless_ideal() {
        let err = PlatformConfig::builder()
            .dma_channels(0)
            .build()
            .unwrap_err();
        assert!(matches!(err, ConfigError::NoDmaChannel));
        // Ideal memory needs no DMA.
        let mut p = PlatformConfig::ideal_sram();
        p.dma_channels = 0;
        p.validate().expect("ideal memory needs no dma");
    }

    #[test]
    fn ideal_platform_has_free_ext_mem() {
        let p = PlatformConfig::ideal_sram();
        assert_eq!(p.ext_mem.transfer_cycles(1 << 20), Cycles::ZERO);
        assert_eq!(p.contention, ContentionModel::NONE);
    }

    #[test]
    fn with_helpers_produce_modified_copies() {
        let p = PlatformConfig::stm32f746_qspi();
        let q = p.with_sram_bytes(64 * 1024);
        assert_eq!(q.sram_bytes, 64 * 1024);
        assert_eq!(p.sram_bytes, 320 * 1024);
        let r = p.with_ext_mem(ExtMemConfig::ideal());
        assert_eq!(r.ext_mem.kind, ExtMemKind::Ideal);
    }

    #[test]
    fn f746_qspi_costs_are_sensible() {
        let p = PlatformConfig::stm32f746_qspi();
        // 40 MB/s at 200 MHz = 5 cycles/byte; 32 KiB ≈ 164k cycles ≈ 820 µs.
        let t = p.ext_mem.transfer_cycles(32 * 1024);
        assert_eq!(t, Cycles::new(120 + 5 * 32 * 1024));
    }
}
