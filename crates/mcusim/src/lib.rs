//! # rtmdm-mcusim — discrete-event MCU platform model
//!
//! This crate is the hardware substrate of the RT-MDM reproduction. The
//! original paper evaluates on a physical microcontroller with external
//! memory; this crate replaces that testbed with a deterministic,
//! cycle-granular model of the components that matter to the scheduling
//! problem:
//!
//! - a single in-order **CPU** clocked at a configurable frequency,
//! - a **DMA engine** that streams weight blocks from external memory
//!   (QSPI NOR flash, octal PSRAM, …) into SRAM,
//! - a **shared bus** on which concurrent CPU compute and DMA traffic slow
//!   each other down by configurable inflation factors,
//! - **memory regions** (SRAM / internal flash / external memory) with
//!   sizes and transfer-cost parameters,
//! - an **event queue** and **execution trace** used by the scheduler
//!   simulator in `rtmdm-sched`.
//!
//! The model is *timing-level*, not instruction-level: callers describe
//! work in CPU cycles and transfers in bytes; the platform answers "when
//! does this finish, given contention". All arithmetic is integer
//! (parts-per-million inflation factors, ceiling division) so simulations
//! are exactly reproducible across hosts.
//!
//! ## Example
//!
//! ```rust
//! use rtmdm_mcusim::{Cycles, PlatformConfig};
//!
//! # fn main() -> Result<(), rtmdm_mcusim::ConfigError> {
//! let platform = PlatformConfig::stm32f746_qspi();
//! platform.validate()?;
//! // How long does the DMA need for a 32 KiB weight block?
//! let fetch = platform.ext_mem.transfer_cycles(32 * 1024);
//! assert!(fetch > Cycles::ZERO);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod energy;
mod error;
mod event;
mod fault;
mod platform;
mod time;
mod trace;
mod xbus;

pub use energy::{EnergyModel, EnergyReport};
pub use error::ConfigError;
pub use event::EventQueue;
pub use fault::{FaultInjector, FaultPlan, DEFAULT_MAX_RETRIES};
pub use platform::{PlatformBuilder, PlatformConfig};
pub use time::{Cycles, Frequency};
pub use trace::{JobId, SegmentId, TaskId, Trace, TraceEvent, TraceKind};
pub use xbus::{ContentionModel, ExtMemConfig, ExtMemKind, OverlapOutcome};
