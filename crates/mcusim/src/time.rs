//! Cycle-count time base and clock-frequency conversions.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Rem, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// A duration or instant measured in CPU clock cycles.
///
/// `Cycles` is the single time base of the whole simulator: the scheduler,
/// the DMA model, and the trace all speak cycles. Wall-clock durations
/// (task periods in microseconds, memory bandwidth in MB/s) are converted
/// once at configuration time via [`Frequency`].
///
/// Arithmetic is checked in debug builds (overflow panics) and the type
/// offers explicit `saturating_sub`/`checked_add` helpers for the places
/// where wrap-around would be a logic error.
///
/// # Examples
///
/// ```rust
/// use rtmdm_mcusim::Cycles;
///
/// let a = Cycles::new(1_000);
/// let b = a + Cycles::new(500);
/// assert_eq!(b.get(), 1_500);
/// assert_eq!(b.saturating_sub(Cycles::new(9_999)), Cycles::ZERO);
/// ```
#[derive(
    Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct Cycles(u64);

impl Cycles {
    /// Zero cycles — the simulation epoch and the additive identity.
    pub const ZERO: Cycles = Cycles(0);
    /// The largest representable cycle count (used as "never" sentinel).
    pub const MAX: Cycles = Cycles(u64::MAX);

    /// Creates a cycle count from a raw `u64`.
    #[inline]
    pub const fn new(raw: u64) -> Self {
        Cycles(raw)
    }

    /// Returns the raw cycle count.
    #[inline]
    pub const fn get(self) -> u64 {
        self.0
    }

    /// Returns `true` if this is exactly zero cycles.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction: `max(self - rhs, 0)`.
    #[inline]
    pub const fn saturating_sub(self, rhs: Cycles) -> Cycles {
        Cycles(self.0.saturating_sub(rhs.0))
    }

    /// Saturating addition, clamping at [`Cycles::MAX`].
    #[inline]
    pub const fn saturating_add(self, rhs: Cycles) -> Cycles {
        Cycles(self.0.saturating_add(rhs.0))
    }

    /// Checked addition, `None` on overflow.
    #[inline]
    pub fn checked_add(self, rhs: Cycles) -> Option<Cycles> {
        self.0.checked_add(rhs.0).map(Cycles)
    }

    /// Checked multiplication by a scalar, `None` on overflow.
    #[inline]
    pub fn checked_mul(self, rhs: u64) -> Option<Cycles> {
        self.0.checked_mul(rhs).map(Cycles)
    }

    /// Ceiling division by a scalar.
    ///
    /// # Panics
    ///
    /// Panics if `rhs` is zero.
    #[inline]
    pub fn div_ceil(self, rhs: u64) -> Cycles {
        Cycles(self.0.div_ceil(rhs))
    }

    /// Multiplies by the rational `num/den`, rounding **up** (conservative
    /// for worst-case timing). Intermediate math is 128-bit so the full
    /// `u64` range is safe for any `num, den ≤ u64::MAX`.
    ///
    /// # Panics
    ///
    /// Panics if `den` is zero or the result exceeds `u64::MAX`. Library
    /// paths reachable from untrusted inputs (admission-service queries,
    /// sensitivity scaling) must use [`Cycles::checked_mul_ratio_ceil`]
    /// or [`Cycles::saturating_mul_ratio_ceil`] instead.
    #[inline]
    pub fn mul_ratio_ceil(self, num: u64, den: u64) -> Cycles {
        assert!(den != 0, "mul_ratio_ceil: zero denominator");
        let wide = u128::from(self.0) * u128::from(num);
        let out = wide.div_ceil(u128::from(den));
        Cycles(u64::try_from(out).expect("mul_ratio_ceil overflow"))
    }

    /// [`Cycles::mul_ratio_ceil`] that reports overflow instead of
    /// panicking: `None` when the rounded-up product exceeds `u64::MAX`.
    ///
    /// # Panics
    ///
    /// Panics if `den` is zero (a structural bug, never data-dependent).
    #[inline]
    pub fn checked_mul_ratio_ceil(self, num: u64, den: u64) -> Option<Cycles> {
        assert!(den != 0, "mul_ratio_ceil: zero denominator");
        let wide = u128::from(self.0) * u128::from(num);
        u64::try_from(wide.div_ceil(u128::from(den)))
            .ok()
            .map(Cycles)
    }

    /// [`Cycles::mul_ratio_ceil`] that clamps at [`Cycles::MAX`] instead
    /// of panicking. Saturation keeps scaling **monotone** in `num`
    /// (a larger numerator never yields a smaller result) and is
    /// conservative for worst-case timing: an unrepresentable WCET is
    /// over-reported as "never finishes", which can only turn an admit
    /// into a reject.
    ///
    /// # Panics
    ///
    /// Panics if `den` is zero (a structural bug, never data-dependent).
    #[inline]
    pub fn saturating_mul_ratio_ceil(self, num: u64, den: u64) -> Cycles {
        self.checked_mul_ratio_ceil(num, den).unwrap_or(Cycles::MAX)
    }

    /// Returns the larger of two cycle counts.
    #[inline]
    pub fn max(self, other: Cycles) -> Cycles {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// Returns the smaller of two cycle counts.
    #[inline]
    pub fn min(self, other: Cycles) -> Cycles {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }
}

impl fmt::Display for Cycles {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}cy", self.0)
    }
}

impl From<u64> for Cycles {
    fn from(raw: u64) -> Self {
        Cycles(raw)
    }
}

impl From<Cycles> for u64 {
    fn from(c: Cycles) -> Self {
        c.0
    }
}

impl Add for Cycles {
    type Output = Cycles;
    #[inline]
    fn add(self, rhs: Cycles) -> Cycles {
        Cycles(self.0 + rhs.0)
    }
}

impl AddAssign for Cycles {
    #[inline]
    fn add_assign(&mut self, rhs: Cycles) {
        self.0 += rhs.0;
    }
}

impl Sub for Cycles {
    type Output = Cycles;
    #[inline]
    fn sub(self, rhs: Cycles) -> Cycles {
        Cycles(self.0 - rhs.0)
    }
}

impl SubAssign for Cycles {
    #[inline]
    fn sub_assign(&mut self, rhs: Cycles) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for Cycles {
    type Output = Cycles;
    #[inline]
    fn mul(self, rhs: u64) -> Cycles {
        Cycles(self.0 * rhs)
    }
}

impl Div<u64> for Cycles {
    type Output = Cycles;
    #[inline]
    fn div(self, rhs: u64) -> Cycles {
        Cycles(self.0 / rhs)
    }
}

impl Rem<Cycles> for Cycles {
    type Output = Cycles;
    #[inline]
    fn rem(self, rhs: Cycles) -> Cycles {
        Cycles(self.0 % rhs.0)
    }
}

impl Sum for Cycles {
    fn sum<I: Iterator<Item = Cycles>>(iter: I) -> Cycles {
        iter.fold(Cycles::ZERO, Add::add)
    }
}

/// A clock frequency in hertz, used to convert wall-clock quantities into
/// [`Cycles`].
///
/// # Examples
///
/// ```rust
/// use rtmdm_mcusim::Frequency;
///
/// let f = Frequency::mhz(200);
/// // A 100 µs period at 200 MHz is 20 000 cycles.
/// assert_eq!(f.cycles_from_micros(100).get(), 20_000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Frequency(u64);

impl Frequency {
    /// Creates a frequency from hertz.
    ///
    /// # Panics
    ///
    /// Panics if `hz` is zero — a zero-frequency clock cannot make
    /// progress and every conversion would divide by zero.
    pub fn hz(hz: u64) -> Self {
        assert!(hz > 0, "frequency must be positive");
        Frequency(hz)
    }

    /// Creates a frequency from megahertz.
    pub fn mhz(mhz: u64) -> Self {
        Frequency::hz(mhz * 1_000_000)
    }

    /// Returns the frequency in hertz.
    #[inline]
    pub const fn as_hz(self) -> u64 {
        self.0
    }

    /// Converts a duration in microseconds to cycles, rounding up.
    ///
    /// Durations too long to represent saturate at [`Cycles::MAX`] (the
    /// "never" sentinel) instead of panicking — conservative for timing
    /// (time is over-, never under-reported) and total, so a malformed
    /// admission-service query with an absurd period cannot kill the
    /// process.
    pub fn cycles_from_micros(self, micros: u64) -> Cycles {
        let wide = u128::from(micros) * u128::from(self.0);
        u64::try_from(wide.div_ceil(1_000_000)).map_or(Cycles::MAX, Cycles::new)
    }

    /// Converts a duration in milliseconds to cycles, rounding up.
    /// Saturates at [`Cycles::MAX`] like [`Frequency::cycles_from_micros`].
    pub fn cycles_from_millis(self, millis: u64) -> Cycles {
        match millis.checked_mul(1_000) {
            Some(micros) => self.cycles_from_micros(micros),
            None => Cycles::MAX,
        }
    }

    /// Converts a cycle count back to microseconds, rounding up.
    /// Saturates at `u64::MAX` for cycle counts too large to express in
    /// microseconds at this frequency (only reachable below ~18.4 GHz
    /// when `cycles` is already near the [`Cycles::MAX`] sentinel).
    pub fn micros_from_cycles(self, cycles: Cycles) -> u64 {
        let wide = u128::from(cycles.get()) * 1_000_000u128;
        u64::try_from(wide.div_ceil(u128::from(self.0))).unwrap_or(u64::MAX)
    }

    /// Cycles consumed per byte at a given sustained bandwidth, expressed
    /// as the exact rational `(num, den) = (hz, bytes_per_second)`.
    ///
    /// # Panics
    ///
    /// Panics if `bytes_per_second` is zero.
    pub fn cycles_per_byte_ratio(self, bytes_per_second: u64) -> (u64, u64) {
        assert!(bytes_per_second > 0, "bandwidth must be positive");
        (self.0, bytes_per_second)
    }
}

impl fmt::Display for Frequency {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0.is_multiple_of(1_000_000) {
            write!(f, "{} MHz", self.0 / 1_000_000)
        } else {
            write!(f, "{} Hz", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycles_basic_arithmetic() {
        let a = Cycles::new(10);
        let b = Cycles::new(3);
        assert_eq!((a + b).get(), 13);
        assert_eq!((a - b).get(), 7);
        assert_eq!((a * 4).get(), 40);
        assert_eq!((a / 3).get(), 3);
        assert_eq!(a.div_ceil(3).get(), 4);
    }

    #[test]
    fn cycles_saturating_sub_floors_at_zero() {
        assert_eq!(Cycles::new(5).saturating_sub(Cycles::new(9)), Cycles::ZERO);
        assert_eq!(
            Cycles::new(9).saturating_sub(Cycles::new(5)),
            Cycles::new(4)
        );
    }

    #[test]
    fn cycles_mul_ratio_ceil_rounds_up() {
        // 10 * 1/3 = 3.33… → 4
        assert_eq!(Cycles::new(10).mul_ratio_ceil(1, 3), Cycles::new(4));
        // exact division stays exact
        assert_eq!(Cycles::new(9).mul_ratio_ceil(1, 3), Cycles::new(3));
        // large operands do not overflow
        let big = Cycles::new(u64::MAX / 2);
        assert_eq!(big.mul_ratio_ceil(2, 2), big);
    }

    #[test]
    #[should_panic(expected = "zero denominator")]
    fn mul_ratio_ceil_rejects_zero_denominator() {
        let _ = Cycles::new(1).mul_ratio_ceil(1, 0);
    }

    #[test]
    fn checked_mul_ratio_ceil_reports_overflow() {
        assert_eq!(
            Cycles::new(10).checked_mul_ratio_ceil(1, 3),
            Some(Cycles::new(4))
        );
        assert_eq!(Cycles::MAX.checked_mul_ratio_ceil(2, 1), None);
        // The exact boundary: u64::MAX * 1 / 1 still fits.
        assert_eq!(Cycles::MAX.checked_mul_ratio_ceil(1, 1), Some(Cycles::MAX));
    }

    #[test]
    fn saturating_mul_ratio_ceil_clamps_and_stays_monotone() {
        assert_eq!(Cycles::MAX.saturating_mul_ratio_ceil(2, 1), Cycles::MAX);
        // Monotone in the numerator across the saturation boundary:
        // once the product clamps, larger numerators keep it clamped.
        let near = Cycles::new(u64::MAX / 2 + 1);
        let mut prev = Cycles::ZERO;
        for num in [1u64, 2, 3, 4, u64::MAX] {
            let scaled = near.saturating_mul_ratio_ceil(num, 2);
            assert!(scaled >= prev, "num={num} shrank the result");
            prev = scaled;
        }
        assert_eq!(prev, Cycles::MAX);
    }

    #[test]
    fn cycles_sum_and_ordering() {
        let total: Cycles = [1u64, 2, 3].iter().map(|&c| Cycles::new(c)).sum();
        assert_eq!(total, Cycles::new(6));
        assert!(Cycles::new(2) < Cycles::new(3));
        assert_eq!(Cycles::new(2).max(Cycles::new(3)), Cycles::new(3));
        assert_eq!(Cycles::new(2).min(Cycles::new(3)), Cycles::new(2));
    }

    #[test]
    fn frequency_conversions_round_trip_conservatively() {
        let f = Frequency::mhz(200);
        assert_eq!(f.cycles_from_micros(1).get(), 200);
        assert_eq!(f.cycles_from_millis(1).get(), 200_000);
        assert_eq!(f.micros_from_cycles(Cycles::new(200)), 1);
        // Rounding is up: 201 cycles is "2 µs" (never under-reports time).
        assert_eq!(f.micros_from_cycles(Cycles::new(201)), 2);
    }

    #[test]
    fn duration_conversions_saturate_instead_of_panicking() {
        let f = Frequency::mhz(200);
        // 200 MHz · u64::MAX µs overflows u64 cycles → "never".
        assert_eq!(f.cycles_from_micros(u64::MAX), Cycles::MAX);
        assert_eq!(f.cycles_from_millis(u64::MAX), Cycles::MAX);
        // Below 1 MHz the reverse direction can overflow too.
        let slow = Frequency::hz(1);
        assert_eq!(slow.micros_from_cycles(Cycles::MAX), u64::MAX);
    }

    #[test]
    fn frequency_cycles_per_byte_ratio() {
        let f = Frequency::mhz(200);
        // 50 MB/s at 200 MHz = 4 cycles per byte.
        let (num, den) = f.cycles_per_byte_ratio(50_000_000);
        assert_eq!(num / den, 4);
    }

    #[test]
    #[should_panic(expected = "frequency must be positive")]
    fn frequency_rejects_zero() {
        let _ = Frequency::hz(0);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Cycles::new(12).to_string(), "12cy");
        assert_eq!(Frequency::mhz(80).to_string(), "80 MHz");
        assert_eq!(Frequency::hz(1_500).to_string(), "1500 Hz");
    }
}
