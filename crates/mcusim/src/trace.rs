//! Execution traces: the ground truth every experiment is computed from.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use serde::{Deserialize, Serialize};

use crate::time::Cycles;

/// Index of a task within a task set (assigned at admission, dense from 0).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
#[serde(transparent)]
pub struct TaskId(pub usize);

/// Index of a job (the `k`-th release of its task, from 0).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
#[serde(transparent)]
pub struct JobId(pub u64);

/// Index of a segment within a task's segmented execution (from 0).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
#[serde(transparent)]
pub struct SegmentId(pub usize);

impl std::fmt::Display for TaskId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "T{}", self.0)
    }
}
impl std::fmt::Display for JobId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "J{}", self.0)
    }
}
impl std::fmt::Display for SegmentId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "S{}", self.0)
    }
}

/// What happened at one instant of the simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum TraceKind {
    /// A periodic job arrived and became ready.
    JobReleased {
        /// Task that released the job.
        task: TaskId,
        /// Job index.
        job: JobId,
        /// Absolute deadline of the job.
        deadline: Cycles,
    },
    /// A segment began computing on the CPU.
    SegmentStarted {
        /// Owning task.
        task: TaskId,
        /// Owning job.
        job: JobId,
        /// Segment index.
        segment: SegmentId,
    },
    /// A segment finished its compute phase.
    SegmentCompleted {
        /// Owning task.
        task: TaskId,
        /// Owning job.
        job: JobId,
        /// Segment index.
        segment: SegmentId,
    },
    /// A DMA fetch of a segment's weights started.
    FetchStarted {
        /// Owning task.
        task: TaskId,
        /// Owning job.
        job: JobId,
        /// Segment whose weights are being staged.
        segment: SegmentId,
        /// Transfer size in bytes.
        bytes: u64,
    },
    /// A DMA fetch completed.
    FetchCompleted {
        /// Owning task.
        task: TaskId,
        /// Owning job.
        job: JobId,
        /// Segment whose weights were staged.
        segment: SegmentId,
    },
    /// An injected fault corrupted a DMA fetch; the transfer must be
    /// re-issued in full. Followed by a fresh
    /// [`TraceKind::FetchStarted`] for the retry.
    FetchFaulted {
        /// Owning task.
        task: TaskId,
        /// Owning job.
        job: JobId,
        /// Segment whose transfer faulted.
        segment: SegmentId,
        /// Which attempt faulted (0 = the first transfer).
        attempt: u32,
    },
    /// A job retired its last segment.
    JobCompleted {
        /// Owning task.
        task: TaskId,
        /// Job index.
        job: JobId,
        /// Release-to-completion response time.
        response: Cycles,
    },
    /// A job was still unfinished at its absolute deadline.
    DeadlineMissed {
        /// Owning task.
        task: TaskId,
        /// Job index.
        job: JobId,
    },
    /// A ready higher-priority job took the CPU at a segment boundary.
    Preempted {
        /// Task that lost the CPU.
        task: TaskId,
        /// Task that took it.
        by: TaskId,
    },
    /// A job was dropped mid-flight by the `Abort` deadline-miss policy.
    JobAborted {
        /// Owning task.
        task: TaskId,
        /// Job index.
        job: JobId,
    },
    /// A release was shed by the `SkipNextRelease` deadline-miss policy:
    /// the job was never created. The job index is the one the skipped
    /// release would have had.
    ReleaseShed {
        /// Owning task.
        task: TaskId,
        /// Job index that was skipped.
        job: JobId,
    },
    /// The CPU went idle (no ready segment). Paired with the next
    /// [`TraceKind::CpuIdleEnd`]; a trace may end mid-idle, in which
    /// case consumers clamp the interval at their analysis horizon
    /// (see [`Trace::idle_intervals`]).
    CpuIdle,
    /// The CPU left idle (a segment is about to start). Closes the most
    /// recent [`TraceKind::CpuIdle`].
    CpuIdleEnd,
    /// Attribution anchor: the head job of `task` cannot compute its
    /// next segment because its weights are not staged yet — the job is
    /// blocked on the DMA pipeline. Paired with the next
    /// [`TraceKind::FetchWaitEnded`] of the same job and segment.
    /// Emitted only when the simulator runs with attribution enabled.
    FetchWaitBegan {
        /// Waiting task.
        task: TaskId,
        /// Waiting job.
        job: JobId,
        /// Segment whose staging the job is blocked on.
        segment: SegmentId,
    },
    /// Attribution anchor: the blocking segment was staged (or the
    /// waiting job left the system) and the fetch wait opened by the
    /// matching [`TraceKind::FetchWaitBegan`] is over. Emitted only
    /// when the simulator runs with attribution enabled.
    FetchWaitEnded {
        /// Task that was waiting.
        task: TaskId,
        /// Job that was waiting.
        job: JobId,
        /// Segment the job was blocked on.
        segment: SegmentId,
    },
    /// Attribution anchor: the segment completing at this instant spent
    /// `stall` wall cycles of its CPU occupancy losing bus arbitration
    /// to a concurrent DMA transfer (occupancies are non-preemptive, so
    /// the stall is exactly wall time minus nominal work). Emitted just
    /// before the matching [`TraceKind::SegmentCompleted`], only when
    /// the stall is nonzero and attribution is enabled.
    SegmentStalled {
        /// Owning task.
        task: TaskId,
        /// Owning job.
        job: JobId,
        /// Segment index.
        segment: SegmentId,
        /// Wall cycles lost to bus contention within the occupancy.
        stall: Cycles,
    },
    /// Attribution anchor: a previously-started job re-claims the CPU
    /// after having been preempted, identifying which task ran in
    /// between (the most recent CPU occupant). Emitted at the resuming
    /// dispatch, only when attribution is enabled.
    Resumed {
        /// Task resuming execution.
        task: TaskId,
        /// Resuming job.
        job: JobId,
        /// The task that held the CPU before this dispatch.
        after: TaskId,
    },
}

/// A timestamped [`TraceKind`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Simulation instant.
    pub time: Cycles,
    /// What happened.
    pub kind: TraceKind,
}

/// An append-only log of simulation events with query helpers.
///
/// The scheduler simulator appends; experiments and tests query. Events
/// are appended in nondecreasing time order (enforced in debug builds).
///
/// # Examples
///
/// ```rust
/// use rtmdm_mcusim::{Cycles, TaskId, JobId, Trace, TraceKind};
///
/// let mut trace = Trace::new();
/// trace.push(Cycles::new(0), TraceKind::JobReleased {
///     task: TaskId(0), job: JobId(0), deadline: Cycles::new(100),
/// });
/// trace.push(Cycles::new(42), TraceKind::JobCompleted {
///     task: TaskId(0), job: JobId(0), response: Cycles::new(42),
/// });
/// assert_eq!(trace.max_response(TaskId(0)), Some(Cycles::new(42)));
/// assert_eq!(trace.deadline_misses(), 0);
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Trace {
    events: Vec<TraceEvent>,
}

impl Trace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Trace { events: Vec::new() }
    }

    /// Appends an event at `time`.
    ///
    /// # Panics
    ///
    /// In debug builds, panics if `time` precedes the last appended
    /// event (the simulator must emit monotone timestamps).
    pub fn push(&mut self, time: Cycles, kind: TraceKind) {
        debug_assert!(
            self.events.last().is_none_or(|e| e.time <= time),
            "trace timestamps must be nondecreasing"
        );
        self.events.push(TraceEvent { time, kind });
    }

    /// All events in order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// A new trace holding only the first `len` events — the
    /// restore-from-snapshot primitive: traces are append-only, so a
    /// simulator state captured mid-run is re-entered by truncating the
    /// finished run's trace back to the captured length instead of
    /// re-simulating (and re-emitting) the whole prefix. `len` is
    /// clamped to the recorded length.
    pub fn truncated(&self, len: usize) -> Trace {
        Trace {
            events: self.events[..len.min(self.events.len())].to_vec(),
        }
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Response times of every completed job of `task`, in job order.
    pub fn response_times(&self, task: TaskId) -> Vec<Cycles> {
        self.events
            .iter()
            .filter_map(|e| match e.kind {
                TraceKind::JobCompleted {
                    task: t, response, ..
                } if t == task => Some(response),
                _ => None,
            })
            .collect()
    }

    /// The largest observed response time of `task`, if any job completed.
    pub fn max_response(&self, task: TaskId) -> Option<Cycles> {
        self.response_times(task).into_iter().max()
    }

    /// Total deadline misses across all tasks.
    pub fn deadline_misses(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e.kind, TraceKind::DeadlineMissed { .. }))
            .count()
    }

    /// Deadline misses of one task.
    pub fn deadline_misses_of(&self, task: TaskId) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e.kind, TraceKind::DeadlineMissed { task: t, .. } if t == task))
            .count()
    }

    /// Total injected DMA transfer faults across all tasks.
    pub fn injected_faults(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e.kind, TraceKind::FetchFaulted { .. }))
            .count()
    }

    /// Total shed releases plus aborted jobs — the work the
    /// deadline-miss policies dropped.
    pub fn shed_or_aborted(&self) -> usize {
        self.events
            .iter()
            .filter(|e| {
                matches!(
                    e.kind,
                    TraceKind::ReleaseShed { .. } | TraceKind::JobAborted { .. }
                )
            })
            .count()
    }

    /// Number of jobs released per task.
    pub fn releases(&self) -> BTreeMap<TaskId, u64> {
        let mut out = BTreeMap::new();
        for e in &self.events {
            if let TraceKind::JobReleased { task, .. } = e.kind {
                *out.entry(task).or_insert(0) += 1;
            }
        }
        out
    }

    /// Number of segment-boundary preemptions suffered per task.
    pub fn preemptions(&self) -> BTreeMap<TaskId, u64> {
        let mut out = BTreeMap::new();
        for e in &self.events {
            if let TraceKind::Preempted { task, .. } = e.kind {
                *out.entry(task).or_insert(0) += 1;
            }
        }
        out
    }

    /// Total cycles the CPU spent executing segments, derived from
    /// start/complete pairs.
    pub fn cpu_busy_cycles(&self) -> Cycles {
        let mut busy = Cycles::ZERO;
        let mut open: BTreeMap<(TaskId, JobId, SegmentId), Cycles> = BTreeMap::new();
        for e in &self.events {
            match e.kind {
                TraceKind::SegmentStarted { task, job, segment } => {
                    open.insert((task, job, segment), e.time);
                }
                TraceKind::SegmentCompleted { task, job, segment } => {
                    if let Some(start) = open.remove(&(task, job, segment)) {
                        busy += e.time - start;
                    }
                }
                _ => {}
            }
        }
        busy
    }

    /// CPU cycles spent executing each task's segments, by task.
    pub fn cpu_busy_by_task(&self) -> BTreeMap<TaskId, Cycles> {
        let mut busy: BTreeMap<TaskId, Cycles> = BTreeMap::new();
        let mut open: BTreeMap<(TaskId, JobId, SegmentId), Cycles> = BTreeMap::new();
        for e in &self.events {
            match e.kind {
                TraceKind::SegmentStarted { task, job, segment } => {
                    open.insert((task, job, segment), e.time);
                }
                TraceKind::SegmentCompleted { task, job, segment } => {
                    if let Some(start) = open.remove(&(task, job, segment)) {
                        *busy.entry(task).or_insert(Cycles::ZERO) += e.time - start;
                    }
                }
                _ => {}
            }
        }
        busy
    }

    /// Observed CPU utilization of `task` over `horizon`, in parts per
    /// million (100 % = 1 000 000).
    pub fn cpu_utilization_ppm(&self, task: TaskId, horizon: Cycles) -> u64 {
        if horizon.is_zero() {
            return 0;
        }
        let busy = self
            .cpu_busy_by_task()
            .get(&task)
            .copied()
            .unwrap_or(Cycles::ZERO);
        ((u128::from(busy.get()) * 1_000_000) / u128::from(horizon.get())) as u64
    }

    /// CPU idle periods as `(start, end)` pairs derived from
    /// [`TraceKind::CpuIdle`]/[`TraceKind::CpuIdleEnd`] events, without
    /// scanning ahead past the pair. An idle period still open when the
    /// trace ends is clamped to `horizon` (the simulator stops emitting
    /// events at the horizon, so a trailing `CpuIdle` has no paired
    /// end). Periods starting at or after `horizon` are dropped.
    pub fn idle_intervals(&self, horizon: Cycles) -> Vec<(Cycles, Cycles)> {
        let mut out = Vec::new();
        let mut open: Option<Cycles> = None;
        for e in &self.events {
            match e.kind {
                TraceKind::CpuIdle => {
                    // Duplicate opens keep the earliest start.
                    open.get_or_insert(e.time);
                }
                TraceKind::CpuIdleEnd => {
                    if let Some(start) = open.take() {
                        let end = e.time.min(horizon);
                        if start < end {
                            out.push((start, end));
                        }
                    }
                }
                _ => {}
            }
        }
        if let Some(start) = open {
            if start < horizon {
                out.push((start, horizon));
            }
        }
        out
    }

    /// Total idle cycles over `[0, horizon)` (the sum of
    /// [`Trace::idle_intervals`]).
    pub fn cpu_idle_cycles(&self, horizon: Cycles) -> Cycles {
        self.idle_intervals(horizon)
            .iter()
            .map(|(s, e)| e.saturating_sub(*s))
            .sum()
    }

    /// Renders a compact ASCII Gantt chart of segment executions, one row
    /// per task, `width` columns spanning `[0, horizon]`. Intended for
    /// debugging and example output, not for parsing.
    pub fn gantt(&self, horizon: Cycles, width: usize) -> String {
        assert!(width > 0, "gantt width must be positive");
        let mut rows: BTreeMap<TaskId, Vec<char>> = BTreeMap::new();
        let mut open: BTreeMap<(TaskId, JobId, SegmentId), Cycles> = BTreeMap::new();
        let scale = |t: Cycles| -> usize {
            if horizon.is_zero() {
                0
            } else {
                ((u128::from(t.get()) * width as u128) / u128::from(horizon.get()))
                    .min(width as u128 - 1) as usize
            }
        };
        for e in &self.events {
            match e.kind {
                TraceKind::SegmentStarted { task, job, segment } => {
                    open.insert((task, job, segment), e.time);
                }
                TraceKind::SegmentCompleted { task, job, segment } => {
                    if let Some(start) = open.remove(&(task, job, segment)) {
                        let row = rows.entry(task).or_insert_with(|| vec!['.'; width]);
                        for cell in row.iter_mut().take(scale(e.time) + 1).skip(scale(start)) {
                            *cell = '#';
                        }
                    }
                }
                TraceKind::JobReleased { task, .. } => {
                    let row = rows.entry(task).or_insert_with(|| vec!['.'; width]);
                    let col = scale(e.time);
                    if row[col] == '.' {
                        row[col] = '^';
                    }
                }
                TraceKind::DeadlineMissed { task, .. } => {
                    let row = rows.entry(task).or_insert_with(|| vec!['.'; width]);
                    row[scale(e.time)] = 'X';
                }
                _ => {}
            }
        }
        let mut out = String::new();
        for (task, row) in rows {
            let _ = writeln!(
                out,
                "{:>4} |{}|",
                task.to_string(),
                row.iter().collect::<String>()
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn truncated_keeps_exactly_the_prefix() {
        let mut t = Trace::new();
        for i in 0..5u64 {
            t.push(Cycles::new(i * 10), TraceKind::CpuIdle);
        }
        let head = t.truncated(3);
        assert_eq!(head.len(), 3);
        assert_eq!(head.events(), &t.events()[..3]);
        // Clamped, not panicking, past the end; zero yields empty.
        assert_eq!(t.truncated(99).events(), t.events());
        assert!(t.truncated(0).is_empty());
    }

    fn cy(n: u64) -> Cycles {
        Cycles::new(n)
    }

    fn sample_trace() -> Trace {
        let mut t = Trace::new();
        let (t0, j0, s0) = (TaskId(0), JobId(0), SegmentId(0));
        t.push(
            cy(0),
            TraceKind::JobReleased {
                task: t0,
                job: j0,
                deadline: cy(100),
            },
        );
        t.push(
            cy(5),
            TraceKind::FetchStarted {
                task: t0,
                job: j0,
                segment: s0,
                bytes: 1024,
            },
        );
        t.push(
            cy(15),
            TraceKind::FetchCompleted {
                task: t0,
                job: j0,
                segment: s0,
            },
        );
        t.push(
            cy(15),
            TraceKind::SegmentStarted {
                task: t0,
                job: j0,
                segment: s0,
            },
        );
        t.push(
            cy(55),
            TraceKind::SegmentCompleted {
                task: t0,
                job: j0,
                segment: s0,
            },
        );
        t.push(
            cy(55),
            TraceKind::JobCompleted {
                task: t0,
                job: j0,
                response: cy(55),
            },
        );
        t
    }

    #[test]
    fn response_times_and_max() {
        let t = sample_trace();
        assert_eq!(t.response_times(TaskId(0)), vec![cy(55)]);
        assert_eq!(t.max_response(TaskId(0)), Some(cy(55)));
        assert_eq!(t.max_response(TaskId(1)), None);
    }

    #[test]
    fn miss_and_release_counters() {
        let mut t = sample_trace();
        assert_eq!(t.deadline_misses(), 0);
        t.push(
            cy(100),
            TraceKind::DeadlineMissed {
                task: TaskId(0),
                job: JobId(1),
            },
        );
        assert_eq!(t.deadline_misses(), 1);
        assert_eq!(t.deadline_misses_of(TaskId(0)), 1);
        assert_eq!(t.deadline_misses_of(TaskId(1)), 0);
        assert_eq!(t.releases().get(&TaskId(0)), Some(&1));
    }

    #[test]
    fn busy_cycles_from_segment_pairs() {
        let t = sample_trace();
        assert_eq!(t.cpu_busy_cycles(), cy(40));
    }

    #[test]
    fn per_task_busy_and_utilization() {
        let t = sample_trace();
        let busy = t.cpu_busy_by_task();
        assert_eq!(busy.get(&TaskId(0)), Some(&cy(40)));
        assert_eq!(t.cpu_utilization_ppm(TaskId(0), cy(100)), 400_000);
        assert_eq!(t.cpu_utilization_ppm(TaskId(1), cy(100)), 0);
        assert_eq!(t.cpu_utilization_ppm(TaskId(0), Cycles::ZERO), 0);
    }

    #[test]
    fn gantt_renders_rows() {
        let t = sample_trace();
        let g = t.gantt(cy(100), 20);
        assert!(g.contains("T0"));
        assert!(g.contains('#'));
        assert!(g.contains('^'));
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "nondecreasing")]
    fn out_of_order_push_panics_in_debug() {
        let mut t = Trace::new();
        t.push(cy(10), TraceKind::CpuIdle);
        t.push(cy(5), TraceKind::CpuIdle);
    }

    #[test]
    fn idle_intervals_pair_up_without_scanning_ahead() {
        let mut t = Trace::new();
        t.push(cy(10), TraceKind::CpuIdle);
        t.push(cy(25), TraceKind::CpuIdleEnd);
        t.push(cy(40), TraceKind::CpuIdle);
        t.push(cy(60), TraceKind::CpuIdleEnd);
        assert_eq!(
            t.idle_intervals(cy(100)),
            vec![(cy(10), cy(25)), (cy(40), cy(60))]
        );
        assert_eq!(t.cpu_idle_cycles(cy(100)), cy(35));
    }

    #[test]
    fn trace_ending_mid_idle_clamps_to_horizon() {
        // Regression: the simulator stops at the horizon, so a trailing
        // CpuIdle has no paired end — the interval must clamp, not
        // vanish or panic.
        let mut t = Trace::new();
        t.push(cy(10), TraceKind::CpuIdle);
        t.push(cy(30), TraceKind::CpuIdleEnd);
        t.push(cy(70), TraceKind::CpuIdle);
        assert_eq!(
            t.idle_intervals(cy(100)),
            vec![(cy(10), cy(30)), (cy(70), cy(100))]
        );
        assert_eq!(t.cpu_idle_cycles(cy(100)), cy(50));
        // An idle period opening exactly at the horizon is dropped, and
        // an unmatched end is ignored.
        let mut u = Trace::new();
        u.push(cy(5), TraceKind::CpuIdleEnd);
        u.push(cy(100), TraceKind::CpuIdle);
        assert_eq!(u.idle_intervals(cy(100)), vec![]);
    }

    #[test]
    fn preemption_counter() {
        let mut t = Trace::new();
        t.push(
            cy(1),
            TraceKind::Preempted {
                task: TaskId(2),
                by: TaskId(0),
            },
        );
        assert_eq!(t.preemptions().get(&TaskId(2)), Some(&1));
    }
}
