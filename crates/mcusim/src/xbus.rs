//! External-memory transfer costs and shared-bus contention.
//!
//! An MCU staging DNN weights from external memory has two active masters
//! on its bus matrix: the CPU (fetching instructions/activations from
//! SRAM and internal flash) and the DMA engine (streaming weight blocks
//! from QSPI/OSPI memory). When both are active they contend for the bus
//! and each makes less progress per wall-clock cycle. This module models:
//!
//! - [`ExtMemConfig`]: the cost of one DMA transfer — a fixed setup
//!   latency plus an exact-rational cycles-per-byte rate;
//! - [`ContentionModel`]: symmetric inflation factors (parts per million)
//!   applied to CPU work and DMA work while they overlap;
//! - [`ContentionModel::overlap`]: a closed-form solver for "compute `C`
//!   and fetch `F` start together; when does each finish?" used both by
//!   the cycle simulator and (as an upper bound) by the schedulability
//!   analysis.

use serde::{Deserialize, Serialize};

use crate::time::{Cycles, Frequency};

/// One million — the denominator of all parts-per-million factors.
pub(crate) const PPM: u64 = 1_000_000;

/// The technology behind the external weight store.
///
/// The kind is informational (it names rows in result tables); timing is
/// fully determined by the numeric fields of [`ExtMemConfig`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum ExtMemKind {
    /// Quad-SPI NOR flash (tens of MB/s, read-only at run time).
    QspiFlash,
    /// Octal-SPI flash (≈2× QSPI bandwidth).
    OctalFlash,
    /// External pseudo-SRAM over octal SPI or FMC.
    Psram,
    /// An idealised memory with zero transfer cost — models the
    /// "everything fits in SRAM" baseline.
    Ideal,
    /// Anything else; timing comes from the numeric fields.
    Custom,
}

impl std::fmt::Display for ExtMemKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            ExtMemKind::QspiFlash => "qspi-flash",
            ExtMemKind::OctalFlash => "octal-flash",
            ExtMemKind::Psram => "psram",
            ExtMemKind::Ideal => "ideal",
            ExtMemKind::Custom => "custom",
        };
        f.write_str(name)
    }
}

/// Transfer-cost model of the external weight memory.
///
/// A transfer of `n` bytes costs
/// `setup_cycles + ceil(n * cycles_per_byte_num / cycles_per_byte_den)`
/// cycles on an otherwise idle bus. The rational rate keeps the model
/// exact for non-integer cycles-per-byte (e.g. 200 MHz CPU with an
/// 80 MB/s memory is 2.5 cycles per byte).
///
/// # Examples
///
/// ```rust
/// use rtmdm_mcusim::{ExtMemConfig, ExtMemKind, Frequency, Cycles};
///
/// let qspi = ExtMemConfig::from_bandwidth(
///     ExtMemKind::QspiFlash,
///     Frequency::mhz(200),
///     40_000_000, // 40 MB/s
///     Cycles::new(120),
/// );
/// // 1 KiB: 120 setup + 1024 * 5 cycles/byte.
/// assert_eq!(qspi.transfer_cycles(1024), Cycles::new(120 + 5 * 1024));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ExtMemConfig {
    /// Memory technology label.
    pub kind: ExtMemKind,
    /// Fixed per-transfer latency: DMA channel programming, command
    /// phase, address phase, memory dead time.
    pub setup_cycles: Cycles,
    /// Numerator of the cycles-per-byte rational.
    pub cycles_per_byte_num: u64,
    /// Denominator of the cycles-per-byte rational.
    pub cycles_per_byte_den: u64,
}

impl ExtMemConfig {
    /// Builds a config from a sustained bandwidth in bytes per second at
    /// the given CPU frequency.
    ///
    /// # Panics
    ///
    /// Panics if `bytes_per_second` is zero.
    pub fn from_bandwidth(
        kind: ExtMemKind,
        cpu: Frequency,
        bytes_per_second: u64,
        setup_cycles: Cycles,
    ) -> Self {
        let (num, den) = cpu.cycles_per_byte_ratio(bytes_per_second);
        ExtMemConfig {
            kind,
            setup_cycles,
            cycles_per_byte_num: num,
            cycles_per_byte_den: den,
        }
    }

    /// The idealised zero-cost memory (the all-in-SRAM baseline).
    pub fn ideal() -> Self {
        ExtMemConfig {
            kind: ExtMemKind::Ideal,
            setup_cycles: Cycles::ZERO,
            cycles_per_byte_num: 0,
            cycles_per_byte_den: 1,
        }
    }

    /// Cycles to transfer `bytes` on an otherwise idle bus (no CPU
    /// contention), including the setup latency.
    pub fn transfer_cycles(&self, bytes: u64) -> Cycles {
        if bytes == 0 {
            return Cycles::ZERO;
        }
        let stream =
            Cycles::new(bytes).mul_ratio_ceil(self.cycles_per_byte_num, self.cycles_per_byte_den);
        self.setup_cycles + stream
    }

    /// The streaming-only portion of a transfer (no setup), used by the
    /// analysis when charging setup once per segment.
    pub fn stream_cycles(&self, bytes: u64) -> Cycles {
        Cycles::new(bytes).mul_ratio_ceil(self.cycles_per_byte_num, self.cycles_per_byte_den)
    }

    /// Effective bandwidth in bytes per second at the given CPU
    /// frequency, ignoring setup (0 for the ideal memory means
    /// "infinite"; callers should special-case [`ExtMemKind::Ideal`]).
    pub fn bandwidth_bytes_per_second(&self, cpu: Frequency) -> u64 {
        if self.cycles_per_byte_num == 0 {
            return u64::MAX;
        }
        let wide = u128::from(cpu.as_hz()) * u128::from(self.cycles_per_byte_den)
            / u128::from(self.cycles_per_byte_num);
        u64::try_from(wide).unwrap_or(u64::MAX)
    }
}

/// Mutual slowdown of CPU compute and DMA traffic while both use the bus.
///
/// While a DMA transfer is in flight, each cycle of CPU work takes
/// `1 + cpu_inflation_ppm / 1e6` wall cycles, and symmetrically each DMA
/// streaming cycle takes `1 + dma_inflation_ppm / 1e6` wall cycles. The
/// factors are bounded at 1 000 000 ppm (a 2× slowdown) — beyond that the
/// shared-bus abstraction would be the wrong model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ContentionModel {
    /// Extra CPU time while DMA is active, in parts per million.
    pub cpu_inflation_ppm: u32,
    /// Extra DMA time while the CPU is computing, in parts per million.
    pub dma_inflation_ppm: u32,
}

impl ContentionModel {
    /// No contention: CPU and DMA are fully independent (e.g. weights
    /// stream into a dedicated SRAM bank over a private port).
    pub const NONE: ContentionModel = ContentionModel {
        cpu_inflation_ppm: 0,
        dma_inflation_ppm: 0,
    };

    /// A symmetric model where both masters pay the same inflation.
    pub fn symmetric(ppm: u32) -> Self {
        ContentionModel {
            cpu_inflation_ppm: ppm,
            dma_inflation_ppm: ppm,
        }
    }

    /// Worst-case inflated duration of `work` cycles of CPU compute,
    /// assuming DMA is active for the whole duration. Used by the
    /// schedulability analysis as a safe upper bound.
    pub fn inflate_cpu(&self, work: Cycles) -> Cycles {
        work.mul_ratio_ceil(PPM + u64::from(self.cpu_inflation_ppm), PPM)
    }

    /// Worst-case inflated duration of `work` cycles of DMA streaming,
    /// assuming the CPU computes for the whole duration.
    pub fn inflate_dma(&self, work: Cycles) -> Cycles {
        work.mul_ratio_ceil(PPM + u64::from(self.dma_inflation_ppm), PPM)
    }

    /// Wall cycles `work` cycles of CPU compute *loses* to bus
    /// contention under a fully concurrent DMA transfer:
    /// `inflate_cpu(work) - work`. This is the contention-stall metric
    /// the simulator accumulates while both masters are active.
    pub fn cpu_stall_cycles(&self, work: Cycles) -> Cycles {
        self.inflate_cpu(work).saturating_sub(work)
    }

    /// Wall cycles `work` cycles of DMA streaming loses to bus
    /// contention under fully concurrent CPU compute:
    /// `inflate_dma(work) - work`.
    pub fn dma_stall_cycles(&self, work: Cycles) -> Cycles {
        self.inflate_dma(work).saturating_sub(work)
    }

    /// Solves the overlap of a compute phase of `compute` work-cycles and
    /// a DMA phase of `fetch` work-cycles that start at the same instant.
    ///
    /// While both are active each progresses at its inflated rate; once
    /// one finishes the other continues at full speed. Rounding is chosen
    /// conservatively (finish times round up, work completed rounds
    /// down), so the returned finish times never undercut a real
    /// interleaving with the same parameters.
    ///
    /// # Examples
    ///
    /// ```rust
    /// use rtmdm_mcusim::{ContentionModel, Cycles};
    ///
    /// // 10% mutual slowdown, equal work: both finish at 1.1×.
    /// let m = ContentionModel::symmetric(100_000);
    /// let out = m.overlap(Cycles::new(1000), Cycles::new(1000));
    /// assert_eq!(out.cpu_finish, Cycles::new(1100));
    /// assert_eq!(out.dma_finish, Cycles::new(1100));
    /// ```
    pub fn overlap(&self, compute: Cycles, fetch: Cycles) -> OverlapOutcome {
        let a = PPM + u64::from(self.cpu_inflation_ppm); // cpu cost per work unit (ppm)
        let b = PPM + u64::from(self.dma_inflation_ppm); // dma cost per work unit (ppm)

        if compute.is_zero() {
            return OverlapOutcome {
                cpu_finish: Cycles::ZERO,
                dma_finish: fetch,
            };
        }
        if fetch.is_zero() {
            return OverlapOutcome {
                cpu_finish: compute,
                dma_finish: Cycles::ZERO,
            };
        }

        // Finish times if contention lasted forever.
        let cpu_contended = compute.mul_ratio_ceil(a, PPM);
        let dma_contended = fetch.mul_ratio_ceil(b, PPM);

        if cpu_contended <= dma_contended {
            // CPU finishes first; DMA then continues at full speed.
            let cpu_finish = cpu_contended;
            // Work the DMA completed during the contended interval
            // (round down: conservative, leaves more residual work).
            let done = u128::from(cpu_finish.get()) * u128::from(PPM) / u128::from(b);
            let done = Cycles::new(u64::try_from(done).expect("overlap overflow"));
            let residual = fetch.saturating_sub(done);
            OverlapOutcome {
                cpu_finish,
                dma_finish: cpu_finish + residual,
            }
        } else {
            let dma_finish = dma_contended;
            let done = u128::from(dma_finish.get()) * u128::from(PPM) / u128::from(a);
            let done = Cycles::new(u64::try_from(done).expect("overlap overflow"));
            let residual = compute.saturating_sub(done);
            OverlapOutcome {
                cpu_finish: dma_finish + residual,
                dma_finish,
            }
        }
    }
}

impl Default for ContentionModel {
    fn default() -> Self {
        ContentionModel::NONE
    }
}

/// Finish times of an overlapped compute/fetch pair (see
/// [`ContentionModel::overlap`]). Both are offsets from the common start
/// instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct OverlapOutcome {
    /// When the compute phase retires its last work cycle.
    pub cpu_finish: Cycles,
    /// When the DMA phase streams its last byte.
    pub dma_finish: Cycles,
}

impl OverlapOutcome {
    /// The instant both phases are done — the pipeline-stage length.
    pub fn stage_finish(&self) -> Cycles {
        self.cpu_finish.max(self.dma_finish)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cy(n: u64) -> Cycles {
        Cycles::new(n)
    }

    #[test]
    fn transfer_cost_is_setup_plus_stream() {
        let m = ExtMemConfig::from_bandwidth(
            ExtMemKind::QspiFlash,
            Frequency::mhz(200),
            50_000_000,
            cy(100),
        );
        // 4 cycles/byte.
        assert_eq!(m.transfer_cycles(256), cy(100 + 1024));
        assert_eq!(m.stream_cycles(256), cy(1024));
        assert_eq!(m.transfer_cycles(0), Cycles::ZERO);
    }

    #[test]
    fn fractional_cycles_per_byte_round_up() {
        // 200 MHz / 80 MB/s = 2.5 cycles per byte.
        let m = ExtMemConfig::from_bandwidth(
            ExtMemKind::Psram,
            Frequency::mhz(200),
            80_000_000,
            Cycles::ZERO,
        );
        assert_eq!(m.transfer_cycles(2), cy(5));
        assert_eq!(m.transfer_cycles(3), cy(8)); // 7.5 → 8
    }

    #[test]
    fn ideal_memory_is_free() {
        let m = ExtMemConfig::ideal();
        assert_eq!(m.transfer_cycles(1 << 20), Cycles::ZERO);
        assert_eq!(m.bandwidth_bytes_per_second(Frequency::mhz(100)), u64::MAX);
    }

    #[test]
    fn bandwidth_round_trips() {
        let cpu = Frequency::mhz(200);
        let m = ExtMemConfig::from_bandwidth(ExtMemKind::QspiFlash, cpu, 40_000_000, Cycles::ZERO);
        assert_eq!(m.bandwidth_bytes_per_second(cpu), 40_000_000);
    }

    #[test]
    fn overlap_without_contention_is_elementwise() {
        let out = ContentionModel::NONE.overlap(cy(700), cy(300));
        assert_eq!(out.cpu_finish, cy(700));
        assert_eq!(out.dma_finish, cy(300));
        assert_eq!(out.stage_finish(), cy(700));
    }

    #[test]
    fn overlap_cpu_finishes_first_dma_speeds_up_after() {
        // 100% DMA inflation while CPU computes: DMA at half speed.
        let m = ContentionModel {
            cpu_inflation_ppm: 0,
            dma_inflation_ppm: 1_000_000,
        };
        // CPU: 100 cycles. DMA: 100 work cycles.
        // During [0,100): DMA completes 50. Residual 50 at full speed.
        let out = m.overlap(cy(100), cy(100));
        assert_eq!(out.cpu_finish, cy(100));
        assert_eq!(out.dma_finish, cy(150));
    }

    #[test]
    fn overlap_dma_finishes_first_cpu_speeds_up_after() {
        let m = ContentionModel {
            cpu_inflation_ppm: 1_000_000,
            dma_inflation_ppm: 0,
        };
        let out = m.overlap(cy(100), cy(100));
        assert_eq!(out.dma_finish, cy(100));
        assert_eq!(out.cpu_finish, cy(150));
    }

    #[test]
    fn overlap_zero_phases() {
        let m = ContentionModel::symmetric(250_000);
        let a = m.overlap(Cycles::ZERO, cy(40));
        assert_eq!(a.cpu_finish, Cycles::ZERO);
        assert_eq!(a.dma_finish, cy(40));
        let b = m.overlap(cy(40), Cycles::ZERO);
        assert_eq!(b.cpu_finish, cy(40));
        assert_eq!(b.dma_finish, Cycles::ZERO);
    }

    #[test]
    fn overlap_never_exceeds_fully_inflated_bounds() {
        // The analysis uses C*(1+ρc) and F*(1+ρd) as safe bounds; the
        // solver must stay within them.
        let m = ContentionModel {
            cpu_inflation_ppm: 300_000,
            dma_inflation_ppm: 450_000,
        };
        for &(c, f) in &[(1u64, 1u64), (10, 1000), (1000, 10), (12345, 6789)] {
            let out = m.overlap(cy(c), cy(f));
            assert!(out.cpu_finish <= m.inflate_cpu(cy(c)));
            assert!(out.dma_finish <= m.inflate_dma(cy(f)));
            assert!(out.cpu_finish >= cy(c));
            assert!(out.dma_finish >= cy(f));
        }
    }

    #[test]
    fn stall_cycles_are_inflation_minus_work() {
        let m = ContentionModel {
            cpu_inflation_ppm: 250_000,
            dma_inflation_ppm: 100_000,
        };
        assert_eq!(m.cpu_stall_cycles(cy(1000)), cy(250));
        assert_eq!(m.dma_stall_cycles(cy(1000)), cy(100));
        assert_eq!(
            ContentionModel::NONE.cpu_stall_cycles(cy(1000)),
            Cycles::ZERO
        );
        assert_eq!(m.cpu_stall_cycles(Cycles::ZERO), Cycles::ZERO);
    }

    #[test]
    fn symmetric_equal_work_finishes_together() {
        let m = ContentionModel::symmetric(100_000);
        let out = m.overlap(cy(1000), cy(1000));
        assert_eq!(out.cpu_finish, out.dma_finish);
        assert_eq!(out.stage_finish(), cy(1100));
    }

    #[test]
    fn ext_mem_kind_display() {
        assert_eq!(ExtMemKind::QspiFlash.to_string(), "qspi-flash");
        assert_eq!(ExtMemKind::Ideal.to_string(), "ideal");
    }
}
