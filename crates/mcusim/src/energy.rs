//! Platform energy model: joules from traces.
//!
//! Always-on multi-DNN nodes are battery devices; the scheduler's
//! dispatch discipline changes where cycles go (compute, gated idle,
//! DMA) and therefore energy. The model is a simple per-cycle /
//! per-byte accounting — deliberately coarse (datasheet-granularity),
//! but enough to rank strategies: it charges
//!
//! - CPU active cycles (segment execution, from the trace),
//! - CPU idle cycles (everything else up to the horizon; the gated
//!   dispatcher idles in WFI at a fraction of active power),
//! - DMA/external-memory traffic per byte staged,
//! - a base (always-on) floor per cycle.

use serde::{Deserialize, Serialize};

use crate::time::{Cycles, Frequency};
use crate::trace::{Trace, TraceKind};

/// Per-cycle and per-byte energy coefficients in picojoules.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct EnergyModel {
    /// Label for reports.
    pub name: String,
    /// CPU executing a segment, per cycle.
    pub cpu_active_pj: u64,
    /// CPU waiting (WFI / gated idle), per cycle.
    pub cpu_idle_pj: u64,
    /// External-memory read + DMA transport, per byte staged.
    pub ext_read_pj_per_byte: u64,
    /// Always-on floor (regulators, SRAM retention, peripherals), per
    /// cycle.
    pub base_pj: u64,
}

impl EnergyModel {
    /// STM32F7-class numbers at 3.3 V: ≈180 µA/MHz run current
    /// (≈590 pJ/cycle), idle at ≈25 % of run, ≈60 pJ per QSPI byte.
    pub fn stm32f7() -> Self {
        EnergyModel {
            name: "stm32f7".to_owned(),
            cpu_active_pj: 590,
            cpu_idle_pj: 150,
            ext_read_pj_per_byte: 60,
            base_pj: 40,
        }
    }

    /// Low-power Cortex-M4-class part: slower but thriftier.
    pub fn cortex_m4_lp() -> Self {
        EnergyModel {
            name: "cortex-m4-lp".to_owned(),
            cpu_active_pj: 330,
            cpu_idle_pj: 60,
            ext_read_pj_per_byte: 80,
            base_pj: 25,
        }
    }

    /// Accounts a finished trace over `horizon` cycles.
    ///
    /// CPU-active time is derived from segment start/complete pairs,
    /// staged bytes from fetch events; the rest of the horizon is idle.
    pub fn account(&self, trace: &Trace, horizon: Cycles) -> EnergyReport {
        let active = trace.cpu_busy_cycles().min(horizon);
        let idle = horizon.saturating_sub(active);
        let bytes: u64 = trace
            .events()
            .iter()
            .filter_map(|e| match e.kind {
                TraceKind::FetchStarted { bytes, .. } => Some(bytes),
                _ => None,
            })
            .sum();
        EnergyReport {
            model: self.name.clone(),
            horizon,
            cpu_active_pj: active.get().saturating_mul(self.cpu_active_pj),
            cpu_idle_pj: idle.get().saturating_mul(self.cpu_idle_pj),
            ext_mem_pj: bytes.saturating_mul(self.ext_read_pj_per_byte),
            base_pj: horizon.get().saturating_mul(self.base_pj),
            staged_bytes: bytes,
        }
    }
}

/// Energy breakdown of one run, in picojoules.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct EnergyReport {
    /// Energy-model label.
    pub model: String,
    /// Accounted horizon.
    pub horizon: Cycles,
    /// CPU active energy.
    pub cpu_active_pj: u64,
    /// CPU idle energy.
    pub cpu_idle_pj: u64,
    /// External-memory staging energy.
    pub ext_mem_pj: u64,
    /// Always-on floor energy.
    pub base_pj: u64,
    /// Bytes staged over the horizon.
    pub staged_bytes: u64,
}

impl EnergyReport {
    /// Total energy in picojoules.
    pub fn total_pj(&self) -> u64 {
        self.cpu_active_pj
            .saturating_add(self.cpu_idle_pj)
            .saturating_add(self.ext_mem_pj)
            .saturating_add(self.base_pj)
    }

    /// Total energy in microjoules (rounded).
    pub fn total_uj(&self) -> u64 {
        self.total_pj() / 1_000_000
    }

    /// Average power in microwatts on a clock.
    pub fn avg_power_uw(&self, cpu: Frequency) -> u64 {
        if self.horizon.is_zero() {
            return 0;
        }
        // pJ * (cycles/s) / cycles = pW → µW by 1e6.
        let pw =
            u128::from(self.total_pj()) * u128::from(cpu.as_hz()) / u128::from(self.horizon.get());
        (pw / 1_000_000) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{JobId, SegmentId, TaskId};

    fn cy(n: u64) -> Cycles {
        Cycles::new(n)
    }

    fn trace_with(active: u64, bytes: u64) -> Trace {
        let mut t = Trace::new();
        let (task, job, seg) = (TaskId(0), JobId(0), SegmentId(0));
        t.push(
            cy(0),
            TraceKind::FetchStarted {
                task,
                job,
                segment: seg,
                bytes,
            },
        );
        t.push(
            cy(10),
            TraceKind::SegmentStarted {
                task,
                job,
                segment: seg,
            },
        );
        t.push(
            cy(10 + active),
            TraceKind::SegmentCompleted {
                task,
                job,
                segment: seg,
            },
        );
        t
    }

    #[test]
    fn accounting_splits_active_idle_and_bytes() {
        let m = EnergyModel::stm32f7();
        let r = m.account(&trace_with(100, 1024), cy(1000));
        assert_eq!(r.cpu_active_pj, 100 * 590);
        assert_eq!(r.cpu_idle_pj, 900 * 150);
        assert_eq!(r.ext_mem_pj, 1024 * 60);
        assert_eq!(r.base_pj, 1000 * 40);
        assert_eq!(r.staged_bytes, 1024);
        assert_eq!(r.total_pj(), 100 * 590 + 900 * 150 + 1024 * 60 + 1000 * 40);
    }

    #[test]
    fn busier_traces_cost_more() {
        let m = EnergyModel::stm32f7();
        let light = m.account(&trace_with(100, 0), cy(1000));
        let heavy = m.account(&trace_with(800, 0), cy(1000));
        assert!(heavy.total_pj() > light.total_pj());
    }

    #[test]
    fn staging_costs_energy_even_when_latency_hides_it() {
        let m = EnergyModel::stm32f7();
        let none = m.account(&trace_with(500, 0), cy(1000));
        let staged = m.account(&trace_with(500, 64 * 1024), cy(1000));
        assert_eq!(
            staged.total_pj() - none.total_pj(),
            64 * 1024 * m.ext_read_pj_per_byte
        );
    }

    #[test]
    fn average_power_is_consistent() {
        let m = EnergyModel::stm32f7();
        // Fully idle trace at 200 MHz: power = (idle + base) pJ/cycle ×
        // 200 M cycles/s = 190 pJ × 200 MHz = 38 mW = 38 000 µW.
        let r = m.account(&Trace::new(), cy(200_000_000));
        assert_eq!(r.avg_power_uw(Frequency::mhz(200)), 38_000);
        // Zero horizon → zero power, no division panic.
        let z = m.account(&Trace::new(), Cycles::ZERO);
        assert_eq!(z.avg_power_uw(Frequency::mhz(200)), 0);
    }

    #[test]
    fn total_uj_rounds_down_pj() {
        let r = EnergyReport {
            model: "x".into(),
            horizon: cy(1),
            cpu_active_pj: 1_499_999,
            cpu_idle_pj: 0,
            ext_mem_pj: 0,
            base_pj: 0,
            staged_bytes: 0,
        };
        assert_eq!(r.total_uj(), 1);
    }
}
