//! Error types for platform configuration.

use std::error::Error;
use std::fmt;

/// An invalid platform configuration was supplied.
///
/// Returned by [`PlatformConfig::validate`](crate::PlatformConfig::validate)
/// and by [`PlatformBuilder::build`](crate::PlatformBuilder::build).
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ConfigError {
    /// SRAM size is zero or too small to hold any fetch buffer.
    SramTooSmall {
        /// Configured SRAM size in bytes.
        bytes: u64,
    },
    /// The external-memory transfer-cost rational has a zero denominator.
    ZeroBandwidth,
    /// A contention inflation factor exceeds the supported maximum
    /// (1 000 000 ppm, i.e. a 2× slowdown).
    InflationOutOfRange {
        /// The offending value in parts per million.
        ppm: u32,
    },
    /// The platform declares zero DMA channels, so weights could never be
    /// staged from external memory.
    NoDmaChannel,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::SramTooSmall { bytes } => {
                write!(f, "sram of {bytes} bytes is too small for any fetch buffer")
            }
            ConfigError::ZeroBandwidth => {
                write!(f, "external memory bandwidth rational has zero denominator")
            }
            ConfigError::InflationOutOfRange { ppm } => {
                write!(f, "contention inflation of {ppm} ppm exceeds 1000000 ppm")
            }
            ConfigError::NoDmaChannel => {
                write!(f, "platform has no dma channel for external-memory staging")
            }
        }
    }
}

impl Error for ConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_concise() {
        let msgs = [
            ConfigError::SramTooSmall { bytes: 16 }.to_string(),
            ConfigError::ZeroBandwidth.to_string(),
            ConfigError::InflationOutOfRange { ppm: 2_000_000 }.to_string(),
            ConfigError::NoDmaChannel.to_string(),
        ];
        for m in msgs {
            assert!(!m.is_empty());
            assert!(m.chars().next().unwrap().is_lowercase());
            assert!(!m.ends_with('.'));
        }
    }

    #[test]
    fn error_trait_is_implemented() {
        fn assert_error<E: std::error::Error + Send + Sync>() {}
        assert_error::<ConfigError>();
    }
}
