//! A deterministic discrete-event queue.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::time::Cycles;

/// A min-heap of timestamped events with deterministic FIFO tie-breaking.
///
/// Events scheduled for the same instant pop in insertion order, which
/// keeps simulations bit-reproducible regardless of heap internals. The
/// tie-break is a monotonically increasing sequence number stamped on
/// every `push`; it is never reset — not by `pop`, not by `clear` — so
/// FIFO order among ties is preserved across arbitrary interleavings of
/// push and pop, and a `clone` observes the same order as the original.
/// Simulation engines that replace a polling loop with wake events rely
/// on this: two engines that push the same same-instant events in the
/// same order must drain them identically.
///
/// # Examples
///
/// ```rust
/// use rtmdm_mcusim::{Cycles, EventQueue};
///
/// let mut q = EventQueue::new();
/// q.push(Cycles::new(20), "late");
/// q.push(Cycles::new(10), "early");
/// q.push(Cycles::new(10), "early-second");
/// assert_eq!(q.pop(), Some((Cycles::new(10), "early")));
/// assert_eq!(q.pop(), Some((Cycles::new(10), "early-second")));
/// assert_eq!(q.pop(), Some((Cycles::new(20), "late")));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<T> {
    heap: BinaryHeap<Reverse<Entry<T>>>,
    seq: u64,
}

#[derive(Debug, Clone)]
struct Entry<T> {
    time: Cycles,
    seq: u64,
    payload: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<T> Eq for Entry<T> {}
impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.time.cmp(&other.time).then(self.seq.cmp(&other.seq))
    }
}

impl<T> EventQueue<T> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Schedules `payload` at `time`.
    pub fn push(&mut self, time: Cycles, payload: T) {
        let entry = Entry {
            time,
            seq: self.seq,
            payload,
        };
        self.seq += 1;
        self.heap.push(Reverse(entry));
    }

    /// Removes and returns the earliest event, FIFO among ties.
    pub fn pop(&mut self) -> Option<(Cycles, T)> {
        self.heap.pop().map(|Reverse(e)| (e.time, e.payload))
    }

    /// The timestamp of the next event without removing it.
    pub fn peek_time(&self) -> Option<Cycles> {
        self.heap.peek().map(|Reverse(e)| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drops all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
    }

    /// A non-destructive snapshot of the pending events in exactly the
    /// order `pop` would drain them (time order, FIFO among ties).
    /// Used by state-space exploration to fingerprint the pending-event
    /// set canonically; `O(n log n)` per call, so not for hot loops.
    pub fn ordered(&self) -> Vec<(Cycles, &T)> {
        let mut entries: Vec<&Entry<T>> = self.heap.iter().map(|Reverse(e)| e).collect();
        entries.sort_by_key(|e| (e.time, e.seq));
        entries.into_iter().map(|e| (e.time, &e.payload)).collect()
    }

    /// Whether any pending event at exactly `time` satisfies `pred`.
    /// A plain `O(n)` heap scan without allocation or sorting — cheap
    /// enough for per-instant predicates (e.g. "may this instant ask
    /// the choice oracle?"), unlike [`EventQueue::ordered`].
    pub fn any_at(&self, time: Cycles, mut pred: impl FnMut(&T) -> bool) -> bool {
        self.heap
            .iter()
            .any(|Reverse(e)| e.time == time && pred(&e.payload))
    }
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        EventQueue::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        for &t in &[5u64, 1, 9, 3] {
            q.push(Cycles::new(t), t);
        }
        let mut out = Vec::new();
        while let Some((_, v)) = q.pop() {
            out.push(v);
        }
        assert_eq!(out, vec![1, 3, 5, 9]);
    }

    #[test]
    fn ties_pop_in_insertion_order() {
        let mut q = EventQueue::new();
        for i in 0..100u32 {
            q.push(Cycles::new(7), i);
        }
        for i in 0..100u32 {
            assert_eq!(q.pop().unwrap().1, i);
        }
    }

    #[test]
    fn peek_len_clear() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.push(Cycles::new(4), ());
        q.push(Cycles::new(2), ());
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(Cycles::new(2)));
        q.clear();
        assert!(q.is_empty());
    }

    #[test]
    fn interleaved_push_pop_stays_ordered() {
        let mut q = EventQueue::new();
        q.push(Cycles::new(10), 'a');
        q.push(Cycles::new(30), 'c');
        assert_eq!(q.pop().unwrap().1, 'a');
        q.push(Cycles::new(20), 'b');
        assert_eq!(q.pop().unwrap().1, 'b');
        assert_eq!(q.pop().unwrap().1, 'c');
    }

    /// Same-instant FIFO survives pops in between: an event pushed at
    /// time `t` *after* earlier `t`-events were already drained must
    /// still pop after any `t`-event pushed before it that remains.
    #[test]
    fn same_instant_fifo_survives_interleaved_pops() {
        let mut q = EventQueue::new();
        q.push(Cycles::new(5), "first");
        q.push(Cycles::new(5), "second");
        assert_eq!(q.pop().unwrap().1, "first");
        // New same-instant arrivals rank behind the survivor.
        q.push(Cycles::new(5), "third");
        q.push(Cycles::new(5), "fourth");
        assert_eq!(q.pop().unwrap().1, "second");
        assert_eq!(q.pop().unwrap().1, "third");
        assert_eq!(q.pop().unwrap().1, "fourth");
    }

    /// `clear` must not reset the sequence counter: events pushed after
    /// a clear still rank behind nothing stale, and ties among them are
    /// FIFO exactly as in a fresh queue.
    #[test]
    fn clear_preserves_fifo_for_subsequent_pushes() {
        let mut q = EventQueue::new();
        q.push(Cycles::new(1), 0u32);
        q.push(Cycles::new(1), 1);
        q.clear();
        for i in 10..15u32 {
            q.push(Cycles::new(3), i);
        }
        for i in 10..15u32 {
            assert_eq!(q.pop().unwrap().1, i);
        }
        assert!(q.is_empty());
    }

    /// A cloned queue drains in exactly the order of the original.
    #[test]
    fn clone_drains_identically() {
        let mut q = EventQueue::new();
        for (i, &t) in [4u64, 2, 4, 2, 9, 4, 2].iter().enumerate() {
            q.push(Cycles::new(t), i);
        }
        let mut c = q.clone();
        while let Some(orig) = q.pop() {
            assert_eq!(c.pop(), Some(orig));
        }
        assert_eq!(c.pop(), None);
    }

    /// `ordered` must present exactly the drain order without consuming
    /// the queue.
    #[test]
    fn ordered_matches_drain_order() {
        let mut q = EventQueue::new();
        for (i, &t) in [4u64, 2, 4, 2, 9, 4, 2].iter().enumerate() {
            q.push(Cycles::new(t), i);
        }
        let snapshot: Vec<(u64, usize)> = q.ordered().iter().map(|&(t, &v)| (t.get(), v)).collect();
        let mut drained = Vec::new();
        while let Some((t, v)) = q.pop() {
            drained.push((t.get(), v));
        }
        assert_eq!(snapshot, drained);
    }

    /// `any_at` must see exactly the events pending at the probed
    /// instant, and nothing at other instants.
    #[test]
    fn any_at_scans_only_the_probed_instant() {
        let mut q = EventQueue::new();
        q.push(Cycles::new(5), "a");
        q.push(Cycles::new(7), "b");
        q.push(Cycles::new(5), "c");
        assert!(q.any_at(Cycles::new(5), |&v| v == "c"));
        assert!(q.any_at(Cycles::new(7), |&v| v == "b"));
        assert!(!q.any_at(Cycles::new(5), |&v| v == "b"));
        assert!(!q.any_at(Cycles::new(6), |_| true));
        q.pop();
        // Popped events are no longer visible.
        assert!(!q.any_at(Cycles::new(5), |&v| v == "a"));
        assert!(q.any_at(Cycles::new(5), |&v| v == "c"));
    }

    /// Differential check against a stable-sort reference model: for a
    /// deterministic pseudo-random workload with heavy timestamp
    /// collisions, the queue must drain in exactly the order a stable
    /// sort by time would produce (stability = insertion order).
    #[test]
    fn drains_like_a_stable_sort() {
        let mut q = EventQueue::new();
        let mut reference: Vec<(u64, usize)> = Vec::new();
        // xorshift64 keeps this reproducible without external RNG deps.
        let mut state = 0x9e3779b97f4a7c15u64;
        for i in 0..500 {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let t = state % 16; // few distinct instants => many ties
            q.push(Cycles::new(t), i);
            reference.push((t, i));
        }
        reference.sort_by_key(|&(t, _)| t); // sort_by_key is stable
        for &(t, i) in &reference {
            assert_eq!(q.pop(), Some((Cycles::new(t), i)));
        }
        assert!(q.is_empty());
    }
}
