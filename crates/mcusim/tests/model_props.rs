//! Property tests on the platform model's arithmetic: the contention
//! overlap solver, transfer costs, and the event queue.

use proptest::prelude::*;

use rtmdm_mcusim::{ContentionModel, Cycles, EventQueue, ExtMemConfig, ExtMemKind, Frequency};

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, .. ProptestConfig::default() })]

    /// The overlap solver's finish times are bracketed by the raw work
    /// (no contention) and the fully inflated durations (contention for
    /// the whole span) — the exact bounds the schedulability analysis
    /// relies on.
    #[test]
    fn overlap_solver_is_bracketed(
        compute in 0u64..5_000_000,
        fetch in 0u64..5_000_000,
        cpu_ppm in 0u32..1_000_000,
        dma_ppm in 0u32..1_000_000,
    ) {
        let m = ContentionModel {
            cpu_inflation_ppm: cpu_ppm,
            dma_inflation_ppm: dma_ppm,
        };
        let out = m.overlap(Cycles::new(compute), Cycles::new(fetch));
        prop_assert!(out.cpu_finish >= Cycles::new(compute));
        prop_assert!(out.dma_finish >= Cycles::new(fetch));
        prop_assert!(out.cpu_finish <= m.inflate_cpu(Cycles::new(compute)));
        prop_assert!(out.dma_finish <= m.inflate_dma(Cycles::new(fetch)));
        prop_assert!(out.stage_finish() >= Cycles::new(compute.max(fetch)));
    }

    /// More work never finishes earlier (monotonicity in both operands).
    #[test]
    fn overlap_solver_is_monotone(
        compute in 0u64..1_000_000,
        fetch in 0u64..1_000_000,
        extra in 1u64..100_000,
        cpu_ppm in 0u32..1_000_000,
        dma_ppm in 0u32..1_000_000,
    ) {
        let m = ContentionModel {
            cpu_inflation_ppm: cpu_ppm,
            dma_inflation_ppm: dma_ppm,
        };
        let base = m.overlap(Cycles::new(compute), Cycles::new(fetch));
        let more_cpu = m.overlap(Cycles::new(compute + extra), Cycles::new(fetch));
        let more_dma = m.overlap(Cycles::new(compute), Cycles::new(fetch + extra));
        prop_assert!(more_cpu.cpu_finish >= base.cpu_finish);
        prop_assert!(more_dma.dma_finish >= base.dma_finish);
        prop_assert!(more_cpu.stage_finish() >= base.stage_finish());
        prop_assert!(more_dma.stage_finish() >= base.stage_finish());
    }

    /// Transfer cost is monotone in bytes and exactly additive in the
    /// streaming part (setup charged once).
    #[test]
    fn transfer_cost_is_monotone_and_superadditive(
        a in 0u64..1_000_000,
        b in 0u64..1_000_000,
        mbps in 1u64..500,
    ) {
        let m = ExtMemConfig::from_bandwidth(
            ExtMemKind::Custom,
            Frequency::mhz(200),
            mbps * 1_000_000,
            Cycles::new(100),
        );
        prop_assert!(m.transfer_cycles(a + b) >= m.transfer_cycles(a.max(b)));
        // Splitting a block pays the setup twice.
        if a > 0 && b > 0 {
            prop_assert!(
                m.transfer_cycles(a) + m.transfer_cycles(b)
                    >= m.transfer_cycles(a + b)
            );
        }
    }

    /// The event queue pops every pushed item exactly once, in
    /// nondecreasing time order, FIFO among ties.
    #[test]
    fn event_queue_is_a_stable_priority_queue(times in proptest::collection::vec(0u64..1000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(Cycles::new(t), i);
        }
        let mut popped = Vec::new();
        let mut last: Option<(Cycles, usize)> = None;
        while let Some((t, i)) = q.pop() {
            if let Some((lt, li)) = last {
                prop_assert!(t >= lt);
                if t == lt {
                    prop_assert!(i > li, "FIFO among equal timestamps");
                }
            }
            last = Some((t, i));
            popped.push(i);
        }
        popped.sort_unstable();
        prop_assert_eq!(popped, (0..times.len()).collect::<Vec<_>>());
    }

    /// Frequency conversions never under-report time (both directions
    /// round up).
    #[test]
    fn time_conversions_round_conservatively(us in 0u64..10_000_000, mhz in 1u64..1000) {
        let f = Frequency::mhz(mhz);
        let cycles = f.cycles_from_micros(us);
        prop_assert!(f.micros_from_cycles(cycles) >= us);
    }
}
