//! Baseline execution strategies, expressed as task transformations.
//!
//! Every evaluation baseline is an implemented system, not a thought
//! experiment. Because the simulator and the analyses operate on the
//! segmented task model, the baselines reduce to transformations:
//!
//! - **B1 — fetch-then-compute** ([`fetch_then_compute`]): the TinyML
//!   runtime pattern of copying a weight block and then running it, with
//!   the CPU held during the copy. Each segment's compute absorbs its
//!   transfer time; no DMA parallelism remains.
//! - **B2 — whole-DNN non-preemptive** ([`whole_job`]): the entire
//!   inference runs as one non-preemptive block (apply after
//!   [`fetch_then_compute`] to also charge staging).
//! - **B3 — all-in-SRAM** ([`resident`]): staging is free; the
//!   idealised upper baseline.

use rtmdm_mcusim::PlatformConfig;

use crate::task::{Segment, SporadicTask, StagingMode, TaskSet};

/// B1: folds each segment's transfer time into its compute and drops
/// DMA staging — the CPU busy-waits the copy, as a runtime without
/// asynchronous staging would.
pub fn fetch_then_compute(task: &SporadicTask, platform: &PlatformConfig) -> SporadicTask {
    let segments = task
        .segments
        .iter()
        .map(|s| {
            Segment::new(
                s.compute + platform.ext_mem.transfer_cycles(s.fetch_bytes),
                0,
            )
        })
        .collect();
    SporadicTask {
        name: task.name.clone(),
        period: task.period,
        deadline: task.deadline,
        segments,
        mode: StagingMode::Resident,
        miss_policy: task.miss_policy,
    }
}

/// B2: merges all segments into a single non-preemptive block. Fetch
/// bytes are summed, so apply [`fetch_then_compute`] first when staging
/// should be charged (the usual B2 configuration).
pub fn whole_job(task: &SporadicTask) -> SporadicTask {
    let total = Segment::new(
        task.total_compute(),
        task.segments.iter().map(|s| s.fetch_bytes).sum(),
    );
    SporadicTask {
        name: task.name.clone(),
        period: task.period,
        deadline: task.deadline,
        segments: vec![total],
        mode: task.mode,
        miss_policy: task.miss_policy,
    }
}

/// B3: marks the task resident — staging is free (all weights fit
/// SRAM). Segment structure is preserved, so preemption granularity is
/// unchanged.
pub fn resident(task: &SporadicTask) -> SporadicTask {
    let mut t = task.clone();
    t.mode = StagingMode::Resident;
    t
}

/// Applies a per-task transformation to a whole set, preserving order.
pub fn transform_set<F>(ts: &TaskSet, f: F) -> TaskSet
where
    F: Fn(&SporadicTask) -> SporadicTask,
{
    ts.tasks().iter().map(f).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtmdm_mcusim::{ContentionModel, Cycles};

    fn cy(n: u64) -> Cycles {
        Cycles::new(n)
    }

    fn bare_platform() -> PlatformConfig {
        let mut p = PlatformConfig::stm32f746_qspi();
        p.contention = ContentionModel::NONE;
        p.context_switch_cycles = Cycles::ZERO;
        p.ext_mem.setup_cycles = Cycles::ZERO;
        p.ext_mem.cycles_per_byte_num = 1;
        p.ext_mem.cycles_per_byte_den = 1;
        p
    }

    fn task() -> SporadicTask {
        SporadicTask::new(
            "t",
            cy(10_000),
            cy(10_000),
            vec![Segment::new(cy(100), 50), Segment::new(cy(200), 70)],
            StagingMode::Overlapped,
        )
        .expect("valid")
    }

    #[test]
    fn b1_folds_fetch_into_compute() {
        let b1 = fetch_then_compute(&task(), &bare_platform());
        assert_eq!(b1.mode, StagingMode::Resident);
        assert_eq!(b1.segments[0], Segment::new(cy(150), 0));
        assert_eq!(b1.segments[1], Segment::new(cy(270), 0));
        assert_eq!(b1.total_fetch_bytes(), 0);
    }

    #[test]
    fn b2_merges_into_one_block() {
        let b2 = whole_job(&task());
        assert_eq!(b2.segment_count(), 1);
        assert_eq!(b2.total_compute(), cy(300));
        assert_eq!(b2.segments[0].fetch_bytes, 120);
        // Usual composition: fold staging first, then merge.
        let b2_full = whole_job(&fetch_then_compute(&task(), &bare_platform()));
        assert_eq!(b2_full.segments[0], Segment::new(cy(420), 0));
    }

    #[test]
    fn b3_keeps_segments_but_frees_staging() {
        let b3 = resident(&task());
        assert_eq!(b3.segment_count(), 2);
        assert_eq!(b3.total_fetch_bytes(), 0);
        assert_eq!(b3.total_compute(), cy(300));
    }

    #[test]
    fn transform_set_preserves_order_and_count() {
        let ts = TaskSet::from_tasks(vec![task(), task()]);
        let p = bare_platform();
        let b1 = transform_set(&ts, |t| fetch_then_compute(t, &p));
        assert_eq!(b1.len(), 2);
        assert_eq!(b1.tasks()[0].name, "t");
    }

    #[test]
    fn timing_invariants_across_baselines() {
        // B1 occupies the CPU strictly longer than RT-MDM's compute.
        let p = bare_platform();
        let orig = task();
        let b1 = fetch_then_compute(&orig, &p);
        assert!(b1.total_compute() > orig.total_compute());
        // B3 never exceeds the original anywhere.
        let b3 = resident(&orig);
        assert_eq!(b3.total_compute(), orig.total_compute());
        assert!(b3.total_fetch_bytes() <= orig.total_fetch_bytes());
    }
}
