//! Event-driven simulation of segment-level scheduling on the MCU
//! platform: one CPU, one DMA channel, a shared bus with mutual
//! contention, preemption only at segment boundaries.
//!
//! The simulator is the ground truth the analyses are validated against:
//! the soundness property tests assert that any task set the RT-MDM
//! analysis admits runs without a deadline miss here, under worst-case
//! and jittered execution times alike.
//!
//! ## Execution semantics
//!
//! - A job is released periodically; its segments execute in order.
//! - Segment `k` may start computing only once its weights are staged.
//! - Under [`StagingMode::Overlapped`], staging keeps a two-segment
//!   window: the fetch of segment 0 is issued at release, and the fetch
//!   of segment `k` (k ≥ 2) becomes admissible once compute of segment
//!   `k−2` has completed (that segment's half of the double buffer is
//!   dead from then on). Fetched segments survive preemption — each
//!   task owns its buffers.
//! - The CPU is claimed at *scheduling points* (segment completion, or
//!   any event while the CPU is idle) by the highest-priority task whose
//!   next segment is staged. Segments are never preempted mid-flight.
//! - The single DMA channel serves the highest-priority pending
//!   request and **preempts** an in-flight lower-priority transfer when
//!   a higher-priority one arrives (weight blocks are descriptor
//!   chains, so the driver switches streams at burst granularity; the
//!   re-arm cost is folded into the per-transfer setup charge).
//! - While the CPU computes and the DMA streams simultaneously, both
//!   progress at their inflated (contended) rates. Progress is tracked
//!   with an exact sub-cycle carry (see `contended_progress`), so a
//!   contended phase retires the same total work regardless of how many
//!   event instants cut it — the simulator never runs slower than the
//!   analysis's single-ceiling inflation bound, and all arithmetic is
//!   integral, so runs are bit-reproducible.
//!
//! ## Time-advancement engines
//!
//! Two interchangeable engines drive the clock (selected by
//! [`SimConfig::engine`]); both produce byte-identical traces, stats,
//! and metrics, a property pinned by differential tests:
//!
//! - [`Engine::Legacy`] walks every event cut: each iteration
//!   recomputes both resources' finish estimates, advances to the
//!   nearest instant, and settles the elapsed interval immediately.
//! - [`Engine::Des`] (the default) is a discrete-event engine: timer
//!   releases and deadline checks live in the event heap, while the CPU
//!   and the DMA stream each post their wake instant into a
//!   two-register *wake front* merged with the heap head at the loop
//!   top (the resource wake set is bounded at two, so two registers are
//!   the degenerate — and optimal — priority queue for it). Interval
//!   settlement is deferred until a resource is mutated or completes,
//!   and the wake registers are re-derived only then: finish instants
//!   are invariant under settlement cuts, so the cache stays exact.
//!   Timer instants that change no resource state are processed without
//!   settlement arithmetic, ready-queue scans, or any heap traffic
//!   beyond their own pop — idle and uncontended stretches cut by many
//!   timer events are skipped in O(1) per event instead of paying the
//!   contended-rate division at every cut. See `DESIGN.md` for the
//!   heap contract and the settlement-exactness argument.

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use rtmdm_mcusim::{
    Cycles, EventQueue, FaultInjector, FaultPlan, JobId, PlatformConfig, SegmentId, TaskId, Trace,
    TraceKind,
};

use crate::script::{ChoicePoint, SimOracle, StableHash, StateHash};
use crate::task::{MissPolicy, StagingMode, TaskSet};

/// Scheduling policy of the CPU (and the DMA request queue).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum Policy {
    /// Fixed priority: task-set index order (0 = highest).
    FixedPriority,
    /// Earliest deadline first over head jobs' absolute deadlines.
    Edf,
}

/// Time-advancement engine of the simulator (see the module docs).
///
/// Both engines are exact and produce byte-identical results; the
/// discrete-event engine is the default because it skips quiet
/// stretches in O(1) instead of settling contended progress at every
/// event cut.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Engine {
    /// The original instant-stepping loop: every iteration recomputes
    /// both resources' finish estimates and settles up to the nearest
    /// event instant. Kept as the reference implementation the
    /// discrete-event engine is differentially tested against.
    Legacy,
    /// Discrete-event engine: resource wake instants are held in a
    /// two-register wake front merged with the timer heap, and
    /// settlement is deferred until a resource changes state.
    #[default]
    Des,
}

/// Simulation parameters.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Simulation horizon; only jobs whose absolute deadline falls
    /// within the horizon are released (so every released job gets its
    /// full window).
    pub horizon: Cycles,
    /// CPU/DMA scheduling policy.
    pub policy: Policy,
    /// Lower bound of the per-job execution-time scale in parts per
    /// million. `1_000_000` (the default) runs every job at WCET;
    /// smaller values draw each job's scale uniformly from
    /// `[exec_scale_min_ppm, 1_000_000]`.
    pub exec_scale_min_ppm: u64,
    /// RNG seed for execution-time variation and nothing else.
    pub seed: u64,
    /// Dispatch discipline at scheduling points. `false` (the RT-MDM
    /// default) is the **priority-gated, non-work-conserving** rule:
    /// while the highest-priority active job waits for its DMA, the CPU
    /// idles rather than admitting a lower-priority non-preemptive
    /// segment — each task suffers lower-priority blocking at most once
    /// per job. `true` is the work-conserving rule: any ready segment
    /// may run, trading repeated blocking for higher CPU usage.
    pub work_conserving: bool,
    /// Fault environment of the run ([`FaultPlan::NONE`] by default).
    /// When inactive, the simulator consults no fault RNG and the run
    /// is byte-identical to one without an injector at all.
    pub fault: FaultPlan,
    /// Time-advancement engine ([`Engine::Des`] by default). The choice
    /// affects wall-clock throughput only, never results.
    #[serde(default)]
    pub engine: Engine,
    /// When `true`, the simulator emits the causal-attribution anchor
    /// events ([`TraceKind::FetchWaitBegan`]/[`TraceKind::FetchWaitEnded`],
    /// [`TraceKind::SegmentStalled`], [`TraceKind::Resumed`]) that the
    /// observability layer's blame reconstruction consumes. `false`
    /// (the default) produces a trace byte-identical to one from before
    /// attribution existed — stats and metrics are unaffected either
    /// way.
    #[serde(default)]
    pub attribution: bool,
    /// Width of the staging window under [`StagingMode::Overlapped`]:
    /// fetch `k` becomes admissible once compute of segment `k − w` has
    /// retired (fetches `0..w` are admissible immediately). The default
    /// `2` is the paper's double-buffer discipline, matched to the two
    /// physical buffer halves — and the only safe width: a wider window
    /// lets the DMA write a half whose previous tenant is still staged
    /// or being read, which the always-on race monitor records in
    /// [`SimResult::races`]. Widths other than 2 exist for the
    /// schedule-space explorer's negative tests (RTM051 reachability).
    #[serde(default = "default_staging_window")]
    pub staging_window: u32,
}

fn default_staging_window() -> u32 {
    2
}

impl SimConfig {
    /// WCET run over `horizon` under the given policy, priority-gated.
    pub fn new(horizon: Cycles, policy: Policy) -> Self {
        SimConfig {
            horizon,
            policy,
            exec_scale_min_ppm: 1_000_000,
            seed: 0,
            work_conserving: false,
            fault: FaultPlan::NONE,
            engine: Engine::default(),
            attribution: false,
            staging_window: default_staging_window(),
        }
    }

    /// Switches to work-conserving dispatch.
    pub fn work_conserving(mut self) -> Self {
        self.work_conserving = true;
        self
    }

    /// Subjects the run to `fault` (builder style).
    #[must_use]
    pub fn with_fault(mut self, fault: FaultPlan) -> Self {
        self.fault = fault;
        self
    }

    /// Selects the time-advancement engine (builder style).
    #[must_use]
    pub fn with_engine(mut self, engine: Engine) -> Self {
        self.engine = engine;
        self
    }

    /// Enables or disables causal-attribution anchor events (builder
    /// style; see [`SimConfig::attribution`]).
    #[must_use]
    pub fn with_attribution(mut self, attribution: bool) -> Self {
        self.attribution = attribution;
        self
    }

    /// Overrides the staging-window width (builder style; see
    /// [`SimConfig::staging_window`]). Widths other than 2 are for
    /// directed race-reachability experiments only.
    #[must_use]
    pub fn with_staging_window(mut self, window: u32) -> Self {
        self.staging_window = window;
        self
    }
}

/// What a recorded staging race clobbered (see [`StagingRace`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RaceKind {
    /// The DMA wrote the buffer half the CPU was reading from (compute
    /// of another segment mapped to the same half was in flight).
    CpuRead,
    /// The DMA overwrote a segment that was staged but not yet
    /// consumed — its data is lost before compute ever reads it.
    StagedUnconsumed,
}

/// A double-buffer discipline violation observed by the simulator's
/// always-on race monitor: a DMA write into a buffer half whose
/// previous tenant segment was still live. Provably unreachable at the
/// default [`SimConfig::staging_window`] of 2 (the monitor is the
/// runtime witness of that claim); reachable — and recorded — under
/// wider experimental windows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StagingRace {
    /// Instant the overlap began.
    pub at: Cycles,
    /// Task whose buffers raced.
    pub task: usize,
    /// Owning job id.
    pub job: u64,
    /// Segment the DMA was writing.
    pub write_seg: usize,
    /// Live segment in the same buffer half that got clobbered.
    pub clobbered_seg: usize,
    /// Which way the half was still live.
    pub kind: RaceKind,
}

/// Per-task simulation statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct TaskStats {
    /// Jobs released.
    pub releases: u64,
    /// Jobs completed within the horizon.
    pub completions: u64,
    /// Deadline misses (each job counted at most once).
    pub misses: u64,
    /// Largest observed response time.
    pub max_response: Cycles,
    /// Sum of response times (for averaging).
    pub total_response: u64,
    /// Segment-boundary preemptions suffered.
    pub preemptions: u64,
    /// DMA transfer retries caused by injected faults.
    pub retries: u64,
    /// Releases shed by [`MissPolicy::SkipNextRelease`].
    pub shed: u64,
    /// Jobs dropped by [`MissPolicy::Abort`].
    pub aborted: u64,
    /// Log₂-bucketed response-time histogram: bucket `k` counts
    /// responses in `[2^k, 2^(k+1))` cycles (bucket 0 covers 0–1).
    pub response_hist: ResponseHist,
}

/// Number of buckets in [`ResponseHist`] — one per bit of `u64`, so
/// every representable response has its own bucket and
/// [`ResponseHist::percentile_upper`] is an upper bound unconditionally.
pub const RESPONSE_HIST_BUCKETS: usize = 64;

/// A 64-bucket logarithmic response-time histogram.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ResponseHist {
    buckets: [u64; RESPONSE_HIST_BUCKETS],
}

impl Default for ResponseHist {
    fn default() -> Self {
        ResponseHist {
            buckets: [0; RESPONSE_HIST_BUCKETS],
        }
    }
}

impl ResponseHist {
    /// Records one response time.
    pub fn record(&mut self, response: Cycles) {
        // k = floor(log2(max(response, 1))) ∈ 0..=63 — one bucket per
        // bit of u64, so no clamp is needed (or sound: the former
        // 32-bucket clamp silently broke the percentile upper bound for
        // responses ≥ 2^32).
        let k = 64 - response.get().max(1).leading_zeros() as usize - 1;
        self.buckets[k] += 1;
    }

    /// Number of recorded responses, saturating at `u64::MAX`. Merged
    /// histograms (e.g. fleet-wide telemetry buckets) can hold more
    /// than `u64::MAX` samples in total; the saturation only affects
    /// this convenience accessor — [`ResponseHist::percentile_upper`]
    /// ranks in `u128` and stays exact regardless.
    pub fn count(&self) -> u64 {
        self.buckets
            .iter()
            .fold(0u64, |acc, &c| acc.saturating_add(c))
    }

    /// An upper bound on the `pct`-th percentile response (the top of
    /// the bucket containing it). Returns `None` when the histogram is
    /// empty, and for `pct == 0`: the 0th percentile bounds an empty
    /// prefix of the samples, so it has no witness bucket — answering
    /// the minimum would silently alias it to `pct == 1`.
    ///
    /// All rank arithmetic is `u128` end to end: both `total * pct`
    /// and the bucket sum itself can overflow `u64` on merged
    /// long-horizon histograms.
    ///
    /// # Panics
    ///
    /// Panics if `pct > 100`.
    pub fn percentile_upper(&self, pct: u64) -> Option<Cycles> {
        assert!(pct <= 100, "percentile must be at most 100");
        if pct == 0 {
            return None;
        }
        let total: u128 = self.buckets.iter().map(|&c| u128::from(c)).sum();
        if total == 0 {
            return None;
        }
        let target = (total * u128::from(pct)).div_ceil(100);
        let mut seen: u128 = 0;
        for (k, &c) in self.buckets.iter().enumerate() {
            seen += u128::from(c);
            if seen >= target {
                // Top of bucket k is 2^(k+1) − 1; the last bucket's top
                // is u64::MAX exactly (2^64 − 1).
                return Some(Cycles::new(
                    2u64.checked_pow(k as u32 + 1).map_or(u64::MAX, |p| p - 1),
                ));
            }
        }
        // 1 ≤ pct ≤ 100 gives 0 < target ≤ total, and `seen` reaches
        // `total` exactly on the last bucket.
        unreachable!("percentile rank exceeds histogram total")
    }

    /// Raw bucket counts.
    pub fn buckets(&self) -> &[u64; RESPONSE_HIST_BUCKETS] {
        &self.buckets
    }
}

/// Aggregate resource metrics of one run, accounted exactly in the
/// simulator hot loop (not re-derived from the trace).
///
/// Wall time is partitioned: `cpu_busy_cycles + cpu_idle_cycles` equals
/// the horizon exactly, every run, and all values are integer sums — so
/// they are byte-identical across `RTMDM_THREADS` settings.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct SimMetrics {
    /// Wall cycles the CPU held a segment (compute + context-switch
    /// charge + contention stall).
    pub cpu_busy_cycles: Cycles,
    /// Wall cycles the CPU sat idle: exactly `horizon - cpu_busy_cycles`.
    pub cpu_idle_cycles: Cycles,
    /// Wall cycles the DMA channel was streaming a transfer.
    pub dma_busy_cycles: Cycles,
    /// CPU wall cycles lost to bus contention (wall time minus work
    /// retired while both masters were active).
    pub cpu_stall_cycles: Cycles,
    /// DMA wall cycles lost to bus contention.
    pub dma_stall_cycles: Cycles,
    /// Segment-boundary preemptions across all tasks.
    pub preemptions: u64,
    /// Segment transitions whose next weights were already staged when
    /// the previous segment retired (the double buffer hid the fetch).
    pub prefetch_hits: u64,
    /// Segment transitions (and lead-in fetches) that had to wait on
    /// the DMA before compute could proceed.
    pub blocking_fetches: u64,
    /// DMA transfers corrupted by the fault injector.
    pub injected_faults: u64,
    /// Re-issued transfers (equals `injected_faults`: every fault is
    /// retried, and the retry bound guarantees eventual success).
    pub fetch_retries: u64,
    /// Total DMA work cycles spent on re-issued transfers — the
    /// re-fetch cost the fault environment added to the bus.
    pub refetch_cycles: Cycles,
    /// Releases shed by [`MissPolicy::SkipNextRelease`] across tasks.
    pub shed_jobs: u64,
    /// Jobs dropped by [`MissPolicy::Abort`] across tasks.
    pub aborted_jobs: u64,
}

/// Outcome of a simulation run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimResult {
    /// The full event trace.
    pub trace: Trace,
    /// Horizon the run covered.
    pub horizon: Cycles,
    /// Per-task statistics, index-aligned with the task set.
    pub stats: Vec<TaskStats>,
    /// Aggregate resource metrics of the run.
    pub metrics: SimMetrics,
    /// Staging races the always-on monitor observed — empty at the
    /// default staging window (see [`StagingRace`]).
    #[serde(default)]
    pub races: Vec<StagingRace>,
}

impl SimResult {
    /// Total deadline misses across tasks.
    pub fn total_misses(&self) -> u64 {
        self.stats.iter().map(|s| s.misses).sum()
    }

    /// Whether no deadline was missed.
    pub fn no_misses(&self) -> bool {
        self.total_misses() == 0
    }

    /// Largest observed response of task `idx`.
    pub fn max_response_of(&self, idx: usize) -> Cycles {
        self.stats
            .get(idx)
            .map(|s| s.max_response)
            .unwrap_or(Cycles::ZERO)
    }
}

const PPM: u64 = 1_000_000;

#[derive(Debug, Clone, Copy)]
enum TimedEvent {
    Release(usize),
    DeadlineCheck(usize, u64),
    /// Oracle mode only: a job whose release the oracle jittered enters
    /// the system at this instant; `nominal` anchors its deadline.
    JitteredRelease {
        task: usize,
        id: u64,
        nominal: Cycles,
    },
}

#[derive(Debug, Clone)]
struct Job {
    id: u64,
    release: Cycles,
    abs_deadline: Cycles,
    seg_compute: Vec<Cycles>,
    next_seg: usize,
    staged: usize,
    fetch_requested: usize,
    miss_recorded: bool,
    /// Under [`MissPolicy::Abort`], set when the deadline passed while
    /// the job held the CPU: the in-flight segment finishes (segments
    /// are non-preemptive), then the job is dropped at the boundary.
    abort_pending: bool,
}

#[derive(Debug, Clone)]
struct TaskState {
    jobs: std::collections::VecDeque<Job>,
    next_release: Cycles,
    released: u64,
    /// Under [`MissPolicy::SkipNextRelease`], set when a job misses its
    /// deadline: the next release is shed wholesale (overload
    /// shedding), then the flag clears.
    skip_next: bool,
    /// Attribution mode only: the `(job, segment)` whose fetch wait is
    /// currently open (a [`TraceKind::FetchWaitBegan`] without its
    /// matching end). `None` otherwise.
    wait_open: Option<(u64, usize)>,
}

#[derive(Debug, Clone, Copy)]
struct CpuExec {
    task: usize,
    seg: usize,
    remaining: Cycles,
    /// Sub-cycle contended progress carried across advance boundaries,
    /// as a numerator over `PPM + cpu_inflation_ppm`. Without this
    /// carry, every event instant that cuts a contended interval would
    /// floor away up to one work cycle, and a segment crossed by many
    /// events could run longer than the analysis's single-ceiling
    /// inflated bound — an unsoundness, not a modeling choice.
    credit: u64,
    /// Instant this occupancy was dispatched. Occupancies are
    /// non-preemptive, so `now − started` at completion is the exact
    /// wall time, and `wall − nominal` the exact contention stall the
    /// settlement accounting charged this segment.
    started: Cycles,
    /// Nominal work of the occupancy (scaled compute + context-switch
    /// charge), fixed at dispatch.
    nominal: Cycles,
}

#[derive(Debug, Clone, Copy)]
struct DmaExec {
    task: usize,
    seg: usize,
    /// Owning job, so fault decisions are keyed to the exact transfer
    /// and transfers of an aborted job can be cancelled precisely.
    job: u64,
    /// 0-based retry attempt of this transfer (0 = first issue).
    attempt: u32,
    remaining: Cycles,
    deadline: Cycles, // EDF key, kept for preemption comparisons
    /// Sub-cycle contended progress (see [`CpuExec::credit`]), over
    /// `PPM + dma_inflation_ppm`.
    credit: u64,
}

#[derive(Debug, Clone, Copy)]
struct DmaRequest {
    task: usize,
    seg: usize,
    /// Owning job (see [`DmaExec::job`]).
    job: u64,
    /// 0-based retry attempt of this transfer.
    attempt: u32,
    work: Cycles,
    deadline: Cycles, // EDF key
    /// Progress credit preserved when an in-flight transfer is
    /// suspended, so preemption never discards partial work.
    credit: u64,
}

/// A resumable mid-run image of the simulator, captured at an instant
/// boundary (loop top, before the clock advances into the instant).
///
/// A snapshot holds everything that determines future behavior — the
/// pending-event heap, the DES wake front, both resource slots with
/// their sub-cycle credits, per-task job queues, the staging request
/// queue, stats/metrics accumulators — plus the *position* of the run
/// at capture: how many oracle queries were answered and how many trace
/// events were emitted before the captured instant. The trace itself is
/// not copied per snapshot: traces are append-only, so every snapshot
/// of a run shares one `Arc` of the finished trace and a resume
/// truncates it back to the captured length
/// ([`Trace::truncated`]).
///
/// Deliberately **excluded** are the engine-private dirty flags
/// (`cpu_dirty`/`dma_dirty`) — both are false at every instant boundary
/// and differ across engines mid-instant — and the RNG, which is never
/// consulted in oracle mode (the only mode snapshots exist in). A run
/// resumed from a snapshot is byte-identical to the run that captured
/// it, including the oracle fingerprint sequence, on both engines
/// (pinned by tests).
#[derive(Debug, Clone)]
pub struct SimSnapshot {
    now: Cycles,
    settled_to: Cycles,
    cpu_fin: Option<Cycles>,
    dma_fin: Option<Cycles>,
    fin_phase_both: bool,
    needs_dispatch: bool,
    idle_open: bool,
    last_cpu_task: Option<usize>,
    cpu: Option<CpuExec>,
    dma: Option<DmaExec>,
    dma_queue: Vec<DmaRequest>,
    tasks: Vec<TaskState>,
    events: EventQueue<TimedEvent>,
    stats: Vec<TaskStats>,
    metrics: SimMetrics,
    races: Vec<StagingRace>,
    trace_len: usize,
    queries_before: usize,
    /// The capturing run's full trace, attached once when that run
    /// finishes and shared by all of its snapshots.
    trace_src: Option<Arc<Trace>>,
}

impl SimSnapshot {
    /// How many oracle queries the capturing run had answered before
    /// the captured instant. A resumed run re-asks exactly the queries
    /// from this position on; callers use it to translate between
    /// absolute choice positions and snapshot-relative ones.
    pub fn queries_before(&self) -> usize {
        self.queries_before
    }

    /// The instant the snapshot was captured at (the boundary *before*
    /// this instant is processed).
    pub fn instant(&self) -> Cycles {
        self.now
    }

    /// Approximate heap footprint of the snapshot in bytes — the cost
    /// audit for the fork path (DESIGN.md §2.7). Dominated by the job
    /// queues and the event heap; the shared trace `Arc` is counted as
    /// a pointer, not as the trace.
    pub fn size_hint(&self) -> usize {
        use std::mem::size_of;
        let jobs: usize = self.tasks.iter().map(|t| t.jobs.len()).sum();
        let seg_cycles: usize = self
            .tasks
            .iter()
            .flat_map(|t| t.jobs.iter())
            .map(|j| j.seg_compute.len())
            .sum();
        size_of::<SimSnapshot>()
            + self.tasks.len() * size_of::<TaskState>()
            + jobs * size_of::<Job>()
            + seg_cycles * size_of::<Cycles>()
            + self.events.len() * (size_of::<TimedEvent>() + 2 * size_of::<u64>())
            + self.dma_queue.len() * size_of::<DmaRequest>()
            + self.stats.len() * size_of::<TaskStats>()
            + self.races.len() * size_of::<StagingRace>()
    }
}

struct Sim<'a> {
    ts: &'a TaskSet,
    platform: &'a PlatformConfig,
    config: &'a SimConfig,
    now: Cycles,
    events: EventQueue<TimedEvent>,
    tasks: Vec<TaskState>,
    cpu: Option<CpuExec>,
    dma: Option<DmaExec>,
    dma_queue: Vec<DmaRequest>,
    last_cpu_task: Option<usize>,
    trace: Trace,
    stats: Vec<TaskStats>,
    metrics: SimMetrics,
    /// Whether a [`TraceKind::CpuIdle`] is open (no `CpuIdleEnd` yet).
    idle_open: bool,
    rng: StdRng,
    /// Fault decisions for DMA transfers; inactive injectors answer
    /// every query with a constant zero and touch no RNG.
    injector: FaultInjector,
    /// Choice oracle (`simulate_with_oracle`): when present, it — not
    /// the RNG or the injector — answers every nondeterministic
    /// question, and the run consults no RNG at all.
    oracle: Option<&'a mut dyn SimOracle>,
    /// Staging-race observations (see [`StagingRace`]).
    races: Vec<StagingRace>,

    // --- deferred-settlement state (Engine::Des; see DESIGN.md) -----------
    /// Instant up to which busy/stall accounting and resource progress
    /// have been applied. Always equals `now` under the legacy engine;
    /// under DES it lags `now` across quiet stretches.
    settled_to: Cycles,
    /// Cached absolute CPU finish instant, valid as of `settled_to`.
    /// Finish instants are invariant under settlement cuts (the credit
    /// carry makes `remaining·den − credit` drop by exactly `Δ·PPM`
    /// per settled cycle), so the cache stays exact until the next
    /// resource mutation.
    cpu_fin: Option<Cycles>,
    /// Cached absolute DMA finish instant (see `cpu_fin`).
    dma_fin: Option<Cycles>,
    /// Set when the CPU execution slot was mutated this instant: its
    /// cached finish instant (half the DES wake front) must be
    /// re-derived. Tracked per resource because most instants mutate
    /// only one: the other's finish instant is exact as long as its
    /// contention phase did not change (see `fin_phase_both`).
    cpu_dirty: bool,
    /// Set when the DMA execution slot was mutated this instant (see
    /// `cpu_dirty`).
    dma_dirty: bool,
    /// Whether both resources were busy when the wake front was last
    /// derived. A flip of this phase changes *both* resources' rates
    /// (bus-contention inflation), so `refresh_fins` re-derives both
    /// registers on a flip even when only one slot was written.
    fin_phase_both: bool,
    /// Set by every handler that changes what the dispatchers see — a
    /// job entering a queue, a resource freeing, a job dropped, a fetch
    /// request enqueued. Instants that mutate nothing (a deadline check
    /// that records a miss under `Continue`, say) leave it clear, and
    /// DES skips the ready-queue scans there outright; dispatch is
    /// deterministic in queue+resource state, so an unchanged state
    /// re-derives the same no-op the previous instant concluded with.
    needs_dispatch: bool,
    /// Oracle queries answered so far in *this* run (resumed runs count
    /// from the snapshot, not from time zero). Positions snapshots
    /// relative to the choice sequence.
    queries: usize,
    /// Fork support: when present, a [`SimSnapshot`] is pushed here at
    /// every instant boundary that may reach an oracle query.
    capture: Option<&'a mut Vec<SimSnapshot>>,
}

/// Runs the simulation of `ts` on `platform` under `config`.
///
/// # Examples
///
/// ```rust
/// use rtmdm_mcusim::{Cycles, PlatformConfig};
/// use rtmdm_sched::{Segment, SporadicTask, StagingMode, TaskSet};
/// use rtmdm_sched::sim::{simulate, Policy, SimConfig};
///
/// # fn main() -> Result<(), rtmdm_sched::TaskError> {
/// let t = SporadicTask::new(
///     "t", Cycles::new(10_000), Cycles::new(10_000),
///     vec![Segment::new(Cycles::new(1_000), 256)], StagingMode::Overlapped,
/// )?;
/// let result = simulate(
///     &TaskSet::from_tasks(vec![t]),
///     &PlatformConfig::stm32f746_qspi(),
///     &SimConfig::new(Cycles::new(100_000), Policy::FixedPriority),
/// );
/// assert!(result.no_misses());
/// assert_eq!(result.stats[0].releases, 10);
/// # Ok(())
/// # }
/// ```
pub fn simulate(ts: &TaskSet, platform: &PlatformConfig, config: &SimConfig) -> SimResult {
    run_sim(ts, platform, config, None, None, None)
}

/// Runs the simulation with every nondeterministic decision answered by
/// `oracle` instead of the seeded RNG and the fault injector (see
/// [`crate::script`]). The engines consult the oracle in their shared,
/// deterministic event order, so the query sequence — and therefore a
/// replayed run — is identical under [`Engine::Legacy`] and
/// [`Engine::Des`]. An oracle that answers every query with its
/// deterministic default produces a run byte-identical to
/// [`simulate`] of the same config (pinned by tests).
pub fn simulate_with_oracle(
    ts: &TaskSet,
    platform: &PlatformConfig,
    config: &SimConfig,
    oracle: &mut dyn SimOracle,
) -> SimResult {
    run_sim(ts, platform, config, Some(oracle), None, None)
}

/// [`simulate_with_oracle`] with fork support — the incremental
/// re-execution primitive of the schedule-space explorer.
///
/// - `resume_from` re-enters a mid-run [`SimSnapshot`] instead of
///   starting at time zero: the run continues from the captured instant
///   boundary and is byte-identical (trace, stats, metrics, races,
///   fingerprints) to the suffix of the run that captured it, on either
///   engine. Its cost is proportional to the *remaining* horizon, not
///   the full one.
/// - `capture`, when provided, collects a snapshot at every instant
///   boundary that may reach an oracle query (a release entering a job,
///   or a DMA completion under an active fault environment), so a
///   caller branching at choice point `q` can fork from the latest
///   snapshot with [`SimSnapshot::queries_before`]` ≤ q` and replay at
///   most one partial instant. Snapshots are finalized (their shared
///   trace attached) before this function returns.
///
/// The predicate over-approximates: a captured instant may turn out to
/// ask nothing. It can also under-approximate only at the cost of
/// speed, never soundness — branches then fork from an earlier
/// snapshot, or from time zero if none precedes them.
pub fn simulate_with_oracle_forked(
    ts: &TaskSet,
    platform: &PlatformConfig,
    config: &SimConfig,
    oracle: &mut dyn SimOracle,
    resume_from: Option<&SimSnapshot>,
    capture: Option<&mut Vec<SimSnapshot>>,
) -> SimResult {
    run_sim(ts, platform, config, Some(oracle), resume_from, capture)
}

fn run_sim<'a>(
    ts: &'a TaskSet,
    platform: &'a PlatformConfig,
    config: &'a SimConfig,
    oracle: Option<&'a mut dyn SimOracle>,
    resume_from: Option<&SimSnapshot>,
    capture: Option<&'a mut Vec<SimSnapshot>>,
) -> SimResult {
    // Snapshots exclude the RNG (never consulted under an oracle), so
    // fork/capture are defined in oracle mode only.
    let oracle_mode = oracle.is_some();
    assert!(
        oracle_mode || (resume_from.is_none() && capture.is_none()),
        "fork/capture require an oracle"
    );
    let capture_base = capture.as_ref().map_or(0, |c| c.len());
    let mut sim = Sim {
        ts,
        platform,
        config,
        now: Cycles::ZERO,
        events: EventQueue::new(),
        tasks: ts
            .tasks()
            .iter()
            .map(|_| TaskState {
                jobs: std::collections::VecDeque::new(),
                next_release: Cycles::ZERO,
                released: 0,
                skip_next: false,
                wait_open: None,
            })
            .collect(),
        cpu: None,
        dma: None,
        dma_queue: Vec::new(),
        last_cpu_task: None,
        trace: Trace::new(),
        stats: vec![TaskStats::default(); ts.len()],
        metrics: SimMetrics::default(),
        idle_open: false,
        rng: StdRng::seed_from_u64(config.seed),
        injector: FaultInjector::new(config.fault),
        oracle,
        races: Vec::new(),
        settled_to: Cycles::ZERO,
        cpu_fin: None,
        dma_fin: None,
        cpu_dirty: false,
        dma_dirty: false,
        fin_phase_both: false,
        needs_dispatch: true,
        queries: 0,
        capture,
    };
    match resume_from {
        Some(snap) => sim.restore(snap),
        None => {
            for i in 0..ts.len() {
                sim.schedule(Cycles::ZERO, TimedEvent::Release(i));
            }
        }
    }
    match config.engine {
        Engine::Legacy => sim.run_legacy(),
        Engine::Des => sim.run_des(),
    }
    let result = SimResult {
        trace: sim.trace,
        horizon: config.horizon,
        stats: sim.stats,
        metrics: sim.metrics,
        races: sim.races,
    };
    // Finalize this run's snapshots: all of them share one Arc of the
    // finished trace, from which a resume copies back its prefix.
    if let Some(cap) = sim.capture {
        if cap.len() > capture_base {
            let shared = Arc::new(result.trace.clone());
            for snap in &mut cap[capture_base..] {
                snap.trace_src = Some(Arc::clone(&shared));
            }
        }
    }
    // Oracle-driven runs are exploration probes, not workload runs:
    // flushing them would make the registry depend on how many
    // speculative branches an explorer happened to execute. Their
    // throughput is reported by the explorer itself.
    if !oracle_mode {
        flush_global_metrics(&result, config.engine);
    }
    result
}

/// Flushes one run's totals into the process-global metrics registry
/// (`rtmdm_obs::metrics::global`). A no-op unless a telemetry consumer
/// (e.g. the benchmark harness) enabled the registry. Everything
/// recorded is a sum, so aggregate totals are independent of the order
/// (and thread count) in which runs execute.
fn flush_global_metrics(result: &SimResult, engine: Engine) {
    let g = rtmdm_obs::metrics::global();
    if !g.is_enabled() {
        return;
    }
    let m = &result.metrics;
    g.add("sim.runs", 1);
    // Only the non-default engine is labelled, so default-engine
    // snapshots stay byte-identical to pre-engine-flag telemetry.
    if engine == Engine::Legacy {
        g.add("sim.runs_legacy", 1);
    }
    g.add("sim.cycles", result.horizon.get());
    g.add("sim.trace_events", result.trace.len() as u64);
    g.add("sim.cpu_busy_cycles", m.cpu_busy_cycles.get());
    g.add("sim.cpu_idle_cycles", m.cpu_idle_cycles.get());
    g.add("sim.dma_busy_cycles", m.dma_busy_cycles.get());
    g.add("sim.cpu_stall_cycles", m.cpu_stall_cycles.get());
    g.add("sim.dma_stall_cycles", m.dma_stall_cycles.get());
    g.add("sim.preemptions", m.preemptions);
    g.add("sim.prefetch_hits", m.prefetch_hits);
    g.add("sim.blocking_fetches", m.blocking_fetches);
    // Fault-environment counters are flushed only when nonzero, so a
    // fault-free run's telemetry snapshot is byte-identical to one from
    // before fault injection existed.
    if m.injected_faults > 0 {
        g.add("sim.injected_faults", m.injected_faults);
        g.add("sim.fetch_retries", m.fetch_retries);
        g.add("sim.refetch_cycles", m.refetch_cycles.get());
    }
    if m.shed_jobs > 0 {
        g.add("sim.shed_jobs", m.shed_jobs);
    }
    if m.aborted_jobs > 0 {
        g.add("sim.aborted_jobs", m.aborted_jobs);
    }
    let mut releases = 0;
    let mut completions = 0;
    let mut misses = 0;
    for s in &result.stats {
        releases += s.releases;
        completions += s.completions;
        misses += s.misses;
        g.merge_buckets("sim.response_cycles", s.response_hist.buckets());
    }
    g.add("sim.releases", releases);
    g.add("sim.completions", completions);
    g.add("sim.deadline_misses", misses);
}

/// Work retired in `delta` wall cycles at the contended rate
/// `PPM / (PPM + inflation_ppm)`, carrying the sub-cycle remainder in
/// `credit` (a numerator over `PPM + inflation_ppm`).
///
/// Because the remainder carries over, splitting an interval at event
/// boundaries retires exactly as much total work as advancing it in one
/// step — so a fully contended segment never outlasts the analysis's
/// `inflate_cpu`/`inflate_dma` bound, no matter how many events cut it.
fn contended_progress(delta: Cycles, inflation_ppm: u32, credit: &mut u64) -> Cycles {
    let den = u128::from(PPM) + u128::from(inflation_ppm);
    let acc = u128::from(*credit) + u128::from(delta.get()) * u128::from(PPM);
    let retired = acc / den;
    *credit = (acc % den) as u64;
    Cycles::new(u64::try_from(retired).expect("retired work overflow"))
}

/// Wall cycles until `remaining` work retires at the contended rate,
/// given accumulated `credit`. With zero credit this equals
/// `ContentionModel::inflate_cpu`/`inflate_dma` of the remaining work.
fn contended_eta(remaining: Cycles, inflation_ppm: u32, credit: u64) -> Cycles {
    let den = u128::from(PPM) + u128::from(inflation_ppm);
    let need = (u128::from(remaining.get()) * den).saturating_sub(u128::from(credit));
    Cycles::new(u64::try_from(need.div_ceil(u128::from(PPM))).expect("eta overflow"))
}

impl Sim<'_> {
    /// Enqueues a timer event. Both engines share one queue, so the
    /// FIFO order among same-instant timer events — and therefore every
    /// handler side effect — is engine-independent by construction.
    fn schedule(&mut self, time: Cycles, ev: TimedEvent) {
        self.events.push(time, ev);
    }

    fn handle_timed(&mut self, ev: TimedEvent) {
        match ev {
            TimedEvent::Release(task) => self.release(task),
            TimedEvent::DeadlineCheck(task, job_id) => self.deadline_check(task, job_id),
            TimedEvent::JitteredRelease { task, id, nominal } => {
                let abs_deadline = nominal + self.ts.tasks()[task].deadline;
                // The next periodic release was already scheduled when
                // the jitter was drawn; only the job entry happens here.
                self.admit_job(task, id, nominal, abs_deadline, false);
            }
        }
    }

    /// [`Engine::Legacy`]: advance to the nearest event cut every
    /// iteration and settle the elapsed interval immediately.
    fn run_legacy(&mut self) {
        loop {
            let cpu_fin = self.cpu_finish_estimate();
            let dma_fin = self.dma_finish_estimate();
            let timed = self.events.peek_time();
            let next = [cpu_fin, dma_fin, timed].into_iter().flatten().min();
            let Some(next) = next else {
                // No events left (e.g. an empty task set): the CPU is
                // necessarily idle from here to the horizon.
                self.note_cpu_idle();
                break;
            };
            if next > self.config.horizon {
                // Account the tail [now, horizon) — resources may still
                // be busy — without processing the past-horizon event.
                self.settle_interval(self.config.horizon, cpu_fin, dma_fin);
                self.now = self.config.horizon;
                break;
            }
            if self.capture.is_some() && self.may_query_at(next, dma_fin == Some(next)) {
                self.capture_snapshot();
            }
            self.settle_interval(next, cpu_fin, dma_fin);
            self.now = next;

            // Resource completions first (they may unblock tasks), then
            // timed events at this instant.
            if self.dma.is_some_and(|d| d.remaining.is_zero()) {
                self.complete_dma();
            }
            if self.cpu.is_some_and(|c| c.remaining.is_zero()) {
                self.complete_cpu_segment();
            }
            while self.events.peek_time() == Some(self.now) {
                let (_, ev) = self.events.pop().expect("peeked");
                self.handle_timed(ev);
            }
            self.dispatch_dma();
            self.dispatch_cpu();
            self.note_cpu_idle();
        }
        // Exact partition of the horizon — the headline invariant every
        // derived utilization figure rests on.
        self.metrics.cpu_idle_cycles = self
            .config
            .horizon
            .saturating_sub(self.metrics.cpu_busy_cycles);
    }

    /// [`Engine::Des`]: jump straight to the next event — the earlier
    /// of the timer-heap head and the two wake registers. Settlement of
    /// the stretch since `settled_to` happens lazily — only when a
    /// resource completes here or a handler is about to mutate one
    /// (`touch`) — so instants that change no resource state cost no
    /// settlement arithmetic, no ready-queue scans, and no heap traffic
    /// beyond their own pop. The wake registers are re-derived only
    /// after a mutating instant (`refresh_fins`); between mutations
    /// they are exact because finish instants are invariant under
    /// settlement cuts.
    fn run_des(&mut self) {
        loop {
            let next = [self.cpu_fin, self.dma_fin, self.events.peek_time()]
                .into_iter()
                .flatten()
                .min();
            let Some(t) = next else {
                // No events left (e.g. an empty task set): the CPU is
                // necessarily idle from here to the horizon.
                self.note_cpu_idle();
                break;
            };
            if t > self.config.horizon {
                // Account the tail [settled_to, horizon) — resources
                // may still be busy — without processing the event.
                let (cf, df) = (self.cpu_fin, self.dma_fin);
                self.settle_interval(self.config.horizon, cf, df);
                self.now = self.config.horizon;
                break;
            }
            if self.capture.is_some() && self.may_query_at(t, self.dma_fin == Some(t)) {
                self.capture_snapshot();
            }
            self.now = t;

            // Resource completions first, mirroring the legacy order.
            let dma_done = self.dma_fin == Some(t);
            let cpu_done = self.cpu_fin == Some(t);
            if dma_done || cpu_done {
                let (cf, df) = (self.cpu_fin, self.dma_fin);
                self.settle_interval(t, cf, df);
            }
            if dma_done {
                debug_assert!(self.dma.is_some(), "stale DMA wake register");
                self.complete_dma();
            }
            if cpu_done {
                debug_assert!(self.cpu.is_some(), "stale CPU wake register");
                self.complete_cpu_segment();
            }
            while self.events.peek_time() == Some(t) {
                let (_, ev) = self.events.pop().expect("peeked");
                self.handle_timed(ev);
            }
            // Instants whose handlers changed nothing the dispatchers
            // read (see `needs_dispatch`) skip the ready-queue scans:
            // dispatch would re-derive the previous instant's no-op.
            if self.needs_dispatch {
                self.needs_dispatch = false;
                self.dispatch_dma();
                self.dispatch_cpu();
            }
            self.note_cpu_idle();
            self.refresh_fins();
        }
        self.metrics.cpu_idle_cycles = self
            .config
            .horizon
            .saturating_sub(self.metrics.cpu_busy_cycles);
    }

    /// Settles the deferred stretch `[settled_to, now]` using the
    /// cached finish instants. Must be called before any mutation of
    /// `cpu`/`dma` outside the completion path — dispatching,
    /// preempting, or cancelling with unsettled progress would corrupt
    /// remaining-work and stall accounting. The mutation site itself
    /// marks the resource it writes (`cpu_dirty`/`dma_dirty`). Free
    /// under the legacy engine (`settled_to == now` always) and
    /// idempotent within an instant.
    fn touch(&mut self) {
        if self.settled_to < self.now {
            let (cf, df) = (self.cpu_fin, self.dma_fin);
            self.settle_interval(self.now, cf, df);
        }
    }

    /// Re-derives the wake registers (the cached finish instants) after
    /// a dirty instant. Mutating a resource invalidates at most these
    /// two registers — there is nothing to search or unpost, which is
    /// why the wake front lives outside the heap. The registers are
    /// invalidated *per resource*: a register is exact until its slot
    /// is written or the bus-contention phase flips (which changes both
    /// resources' rates), because finish instants are invariant under
    /// settlement cuts. At the common single-resource instant — a
    /// control job completing and its successor dispatching while a DNN
    /// fetch streams — the other register is reused, saving its
    /// wide-division estimate; the legacy loop recomputes both every
    /// iteration. Invariant on exit: `cpu_fin`/`dma_fin` equal the
    /// resources' true finish instants (`None` when idle) — what the
    /// completion checks in `run_des` rely on.
    fn refresh_fins(&mut self) {
        let both = self.both_busy();
        if both != self.fin_phase_both {
            self.fin_phase_both = both;
            self.cpu_dirty = true;
            self.dma_dirty = true;
        }
        if self.cpu_dirty {
            self.cpu_dirty = false;
            debug_assert_eq!(self.settled_to, self.now, "fin refresh on unsettled state");
            self.cpu_fin = self.cpu_finish_estimate();
        }
        if self.dma_dirty {
            self.dma_dirty = false;
            debug_assert_eq!(self.settled_to, self.now, "fin refresh on unsettled state");
            self.dma_fin = self.dma_finish_estimate();
        }
    }

    /// Whether the instant `t` the engine is about to process can reach
    /// an oracle query: a (jittered) release enters a job
    /// (`ReleaseJitter`/`ExecScale`), or a DMA transfer completes while
    /// the fault environment is active with retry budget left
    /// (`TransferFault`). Over-approximation is harmless — a
    /// superfluous snapshot costs memory, never correctness — and the
    /// check is an O(pending) heap scan with no allocation.
    fn may_query_at(&self, t: Cycles, dma_done: bool) -> bool {
        if dma_done
            && self.config.fault.dma_fault_rate_ppm > 0
            && self
                .dma
                .is_some_and(|d| d.attempt < self.config.fault.max_retries)
        {
            return true;
        }
        self.events.any_at(t, |ev| {
            matches!(
                ev,
                TimedEvent::Release(_) | TimedEvent::JitteredRelease { .. }
            )
        })
    }

    /// Pushes a [`SimSnapshot`] of the current instant boundary into
    /// the capture sink. Called at the loop top, before the clock
    /// advances into the instant — the one point where both engines'
    /// states are clean (`cpu_dirty`/`dma_dirty` are semantically
    /// false, the DES wake front is exact) and re-enterable.
    fn capture_snapshot(&mut self) {
        let snap = SimSnapshot {
            now: self.now,
            settled_to: self.settled_to,
            cpu_fin: self.cpu_fin,
            dma_fin: self.dma_fin,
            fin_phase_both: self.fin_phase_both,
            needs_dispatch: self.needs_dispatch,
            idle_open: self.idle_open,
            last_cpu_task: self.last_cpu_task,
            cpu: self.cpu,
            dma: self.dma,
            dma_queue: self.dma_queue.clone(),
            tasks: self.tasks.clone(),
            events: self.events.clone(),
            stats: self.stats.clone(),
            metrics: self.metrics,
            races: self.races.clone(),
            trace_len: self.trace.len(),
            queries_before: self.queries,
            trace_src: None,
        };
        self.capture
            .as_mut()
            .expect("capture sink checked by caller")
            .push(snap);
    }

    /// Re-enters a captured instant boundary: every semantic field is
    /// restored, the trace is truncated back to the captured prefix,
    /// and the engine-private dirty flags — deliberately absent from
    /// the snapshot — are reset to their boundary value (false). The
    /// event heap clone preserves its FIFO sequence counter, so events
    /// pushed after the resume tie-break exactly as they did in the
    /// capturing run.
    fn restore(&mut self, snap: &SimSnapshot) {
        self.now = snap.now;
        self.settled_to = snap.settled_to;
        self.cpu_fin = snap.cpu_fin;
        self.dma_fin = snap.dma_fin;
        self.fin_phase_both = snap.fin_phase_both;
        self.needs_dispatch = snap.needs_dispatch;
        self.idle_open = snap.idle_open;
        self.last_cpu_task = snap.last_cpu_task;
        self.cpu = snap.cpu;
        self.dma = snap.dma;
        self.dma_queue = snap.dma_queue.clone();
        self.tasks = snap.tasks.clone();
        self.events = snap.events.clone();
        self.stats = snap.stats.clone();
        self.metrics = snap.metrics;
        self.races = snap.races.clone();
        self.trace = snap
            .trace_src
            .as_ref()
            .expect("resume from unfinalized snapshot")
            .truncated(snap.trace_len);
        self.cpu_dirty = false;
        self.dma_dirty = false;
    }

    /// Opens a [`TraceKind::CpuIdle`] interval if the CPU is idle and no
    /// interval is open. The matching [`TraceKind::CpuIdleEnd`] is
    /// emitted by `dispatch_cpu`; a trace can therefore end mid-idle,
    /// and consumers clamp the open interval at the horizon.
    fn note_cpu_idle(&mut self) {
        if self.cpu.is_none() && !self.idle_open && self.now < self.config.horizon {
            self.idle_open = true;
            self.trace.push(self.now, TraceKind::CpuIdle);
        }
    }

    // --- time advancement -------------------------------------------------

    fn both_busy(&self) -> bool {
        self.cpu.is_some() && self.dma.is_some()
    }

    fn cpu_finish_estimate(&self) -> Option<Cycles> {
        let c = self.cpu?;
        let dur = if self.both_busy() {
            contended_eta(
                c.remaining,
                self.platform.contention.cpu_inflation_ppm,
                c.credit,
            )
        } else {
            c.remaining
        };
        Some(self.now + dur)
    }

    fn dma_finish_estimate(&self) -> Option<Cycles> {
        let d = self.dma?;
        let dur = if self.both_busy() {
            contended_eta(
                d.remaining,
                self.platform.contention.dma_inflation_ppm,
                d.credit,
            )
        } else {
            d.remaining
        };
        Some(self.now + dur)
    }

    /// Settles the interval `[settled_to, to]`: charges busy wall time,
    /// retires (contended) work, and accounts stall cycles for both
    /// resources. `cpu_fin`/`dma_fin` are the resources' finish
    /// instants — recomputed fresh by the legacy loop, cached under
    /// DES (finish instants are invariant under settlement cuts, so
    /// the cache is exact).
    ///
    /// The floor-carry identity behind both engines: each settled cycle
    /// lowers `remaining·den − credit` by exactly `PPM`, so splitting a
    /// contended phase at arbitrary cuts retires the same total work
    /// and accrues the same busy/stall sums as settling it whole.
    ///
    /// **Accounting audit** (the former `advance_to` used
    /// `saturating_sub` here): a resource can never finish *strictly
    /// inside* a settled interval. The legacy loop advances to the
    /// minimum of the finish estimates, and DES settles at most up to
    /// the earliest live wake — in both cases `to ≤ fin` whenever the
    /// resource is busy. In the `fin == to` branch the stall term
    /// `delta − remaining` is likewise exact: the finish estimate
    /// satisfies `eta ≥ remaining` (den ≥ PPM and credit < den imply
    /// `remaining·den − credit > (remaining − 1)·PPM`), and `delta`
    /// spans at least the final `eta` of the phase. The saturating
    /// forms are therefore never hit; the debug assertions below turn
    /// any future violation into a loud failure instead of a silent
    /// undercount.
    fn settle_interval(&mut self, to: Cycles, cpu_fin: Option<Cycles>, dma_fin: Option<Cycles>) {
        debug_assert!(to >= self.settled_to, "settlement must move forward");
        let delta = to.saturating_sub(self.settled_to);
        self.settled_to = to;
        if delta.is_zero() {
            return;
        }
        debug_assert!(
            self.cpu.is_none() || cpu_fin.is_some_and(|f| f >= to),
            "CPU would finish strictly inside a settled interval"
        );
        debug_assert!(
            self.dma.is_none() || dma_fin.is_some_and(|f| f >= to),
            "DMA would finish strictly inside a settled interval"
        );
        let both = self.both_busy();
        let cpu_inflation = self.platform.contention.cpu_inflation_ppm;
        let dma_inflation = self.platform.contention.dma_inflation_ppm;
        if let Some(c) = self.cpu.as_mut() {
            self.metrics.cpu_busy_cycles += delta;
            if cpu_fin == Some(to) {
                // The interval retires exactly the remaining work; the
                // surplus wall time is contention stall.
                debug_assert!(delta >= c.remaining, "finish estimate below remaining");
                if both {
                    self.metrics.cpu_stall_cycles += delta.saturating_sub(c.remaining);
                }
                c.remaining = Cycles::ZERO;
            } else {
                let done = if both {
                    contended_progress(delta, cpu_inflation, &mut c.credit)
                } else {
                    delta
                };
                debug_assert!(done < c.remaining, "undetected CPU completion");
                if both {
                    self.metrics.cpu_stall_cycles += delta.saturating_sub(done);
                }
                c.remaining = c.remaining.saturating_sub(done);
            }
        }
        if let Some(d) = self.dma.as_mut() {
            self.metrics.dma_busy_cycles += delta;
            if dma_fin == Some(to) {
                debug_assert!(delta >= d.remaining, "finish estimate below remaining");
                if both {
                    self.metrics.dma_stall_cycles += delta.saturating_sub(d.remaining);
                }
                d.remaining = Cycles::ZERO;
            } else {
                let done = if both {
                    contended_progress(delta, dma_inflation, &mut d.credit)
                } else {
                    delta
                };
                debug_assert!(done < d.remaining, "undetected DMA completion");
                if both {
                    self.metrics.dma_stall_cycles += delta.saturating_sub(done);
                }
                d.remaining = d.remaining.saturating_sub(done);
            }
        }
    }

    // --- events ------------------------------------------------------------

    fn release(&mut self, task_idx: usize) {
        let task = &self.ts.tasks()[task_idx];
        let state = &mut self.tasks[task_idx];
        let release = state.next_release;
        let abs_deadline = release + task.deadline;
        if abs_deadline > self.config.horizon {
            return; // job would not get its full window
        }
        let id = state.released;
        state.released += 1;
        state.next_release = release + task.period;

        if state.skip_next {
            // Overload shedding under [`MissPolicy::SkipNextRelease`]:
            // the previous job missed, so this release is dropped
            // wholesale. It still counts as a release (the goodput
            // denominator stays stable) and the period clock still
            // advances — only the job itself never enters the system.
            state.skip_next = false;
            let next_release = state.next_release;
            self.stats[task_idx].releases += 1;
            self.stats[task_idx].shed += 1;
            self.metrics.shed_jobs += 1;
            self.trace.push(
                self.now,
                TraceKind::ReleaseShed {
                    task: TaskId(task_idx),
                    job: JobId(id),
                },
            );
            self.schedule(next_release, TimedEvent::Release(task_idx));
            return;
        }

        // Release jitter is an oracle-only capability: default runs are
        // strictly periodic, so none of this path exists for them and
        // their event order is untouched.
        if self.oracle.is_some() {
            let state = self.oracle_state_hash();
            let point = ChoicePoint::ReleaseJitter {
                task: task_idx,
                job: id,
            };
            self.queries += 1;
            let jitter = self
                .oracle
                .as_deref_mut()
                .expect("oracle checked above")
                .choose(point, state)
                .release_jitter_or_zero();
            // Clamp the entry instant into the horizon so the jittered
            // event is always processed (a past-horizon entry would
            // silently drop the job and its deadline check with it).
            let jitter = jitter.min(self.config.horizon.saturating_sub(release));
            if !jitter.is_zero() {
                let next_release = self.tasks[task_idx].next_release;
                self.schedule(
                    release + jitter,
                    TimedEvent::JitteredRelease {
                        task: task_idx,
                        id,
                        nominal: release,
                    },
                );
                self.schedule(next_release, TimedEvent::Release(task_idx));
                return;
            }
        }
        self.admit_job(task_idx, id, release, abs_deadline, true);
    }

    /// A released job enters the system: its execution-time scale is
    /// drawn (RNG, or the oracle when attached), the job joins its
    /// task's queue, and its deadline check is scheduled. `release` is
    /// the *nominal* release instant — under oracle-drawn jitter the
    /// entry instant `self.now` is later, while the deadline (and the
    /// response-time accounting) stays anchored at the nominal release.
    /// `schedule_next` preserves the original event order of the
    /// unjittered path, where the next periodic release is scheduled
    /// right after the deadline check.
    fn admit_job(
        &mut self,
        task_idx: usize,
        id: u64,
        release: Cycles,
        abs_deadline: Cycles,
        schedule_next: bool,
    ) {
        let scale = if self.config.exec_scale_min_ppm >= PPM {
            PPM
        } else if self.oracle.is_some() {
            let min_ppm = self.config.exec_scale_min_ppm;
            let state = self.oracle_state_hash();
            let point = ChoicePoint::ExecScale {
                task: task_idx,
                job: id,
                min_ppm,
            };
            self.queries += 1;
            self.oracle
                .as_deref_mut()
                .expect("oracle checked above")
                .choose(point, state)
                .exec_scale_or(PPM)
                .clamp(min_ppm, PPM)
        } else {
            self.rng.gen_range(self.config.exec_scale_min_ppm..=PPM)
        };
        let task = &self.ts.tasks()[task_idx];
        let seg_compute: Vec<Cycles> = task
            .segments
            .iter()
            .map(|s| {
                let scaled = s.compute.mul_ratio_ceil(scale, PPM);
                scaled.max(Cycles::new(1))
            })
            .collect();
        let n = task.segments.len();
        let staged = match task.mode {
            StagingMode::Resident => n,
            StagingMode::Overlapped => 0,
        };
        let state = &mut self.tasks[task_idx];
        state.jobs.push_back(Job {
            id,
            release,
            abs_deadline,
            seg_compute,
            next_seg: 0,
            staged,
            fetch_requested: staged,
            miss_recorded: false,
            abort_pending: false,
        });
        let next_release = state.next_release;
        self.needs_dispatch = true;
        self.stats[task_idx].releases += 1;
        self.trace.push(
            self.now,
            TraceKind::JobReleased {
                task: TaskId(task_idx),
                job: JobId(id),
                deadline: abs_deadline,
            },
        );
        // `max(now)`: a job entering after its deadline (jitter beyond
        // the relative deadline) must still get its check — scheduling
        // it in the past would silently drop the miss. Identical to
        // `abs_deadline` on the unjittered path, where `now == release`.
        self.schedule(
            abs_deadline.max(self.now),
            TimedEvent::DeadlineCheck(task_idx, id),
        );
        if schedule_next {
            self.schedule(next_release, TimedEvent::Release(task_idx));
        }

        // Kick off the first fetch of the *head* job only; queued-behind
        // jobs start fetching when they reach the head.
        self.maybe_request_fetch(task_idx);
        if self.tasks[task_idx].jobs.len() == 1 {
            // The released job became the head; a queued-behind job is
            // accounted when it surfaces (see `complete_cpu_segment`).
            self.note_leadin_block(task_idx);
        }
        self.update_fetch_wait(task_idx);
    }

    /// Counts the head job's lead-in fetch as a blocking fetch when its
    /// first segment cannot compute until the DMA delivers it (nothing
    /// overlaps a lead-in by construction). Called exactly when a job
    /// surfaces at the head of its task's queue, so each lead-in is
    /// counted at most once.
    fn note_leadin_block(&mut self, task_idx: usize) {
        if self.ts.tasks()[task_idx].mode != StagingMode::Overlapped {
            return;
        }
        if self.tasks[task_idx]
            .jobs
            .front()
            .is_some_and(|j| j.next_seg == 0 && j.staged == 0)
        {
            self.metrics.blocking_fetches += 1;
        }
    }

    /// Attribution-mode bookkeeping: reconciles `task_idx`'s open fetch
    /// wait with the head job's current staging state, emitting the
    /// [`TraceKind::FetchWaitBegan`]/[`TraceKind::FetchWaitEnded`] pair
    /// boundaries. A wait is open exactly while the head job's next
    /// segment is not yet staged (such a job can never hold the CPU, so
    /// wait intervals are disjoint from its own segment slices by
    /// construction). Idempotent within an instant; a no-op unless
    /// [`SimConfig::attribution`] is set, so default runs carry zero
    /// cost and byte-identical traces.
    fn update_fetch_wait(&mut self, task_idx: usize) {
        if !self.config.attribution {
            return;
        }
        let want = self.tasks[task_idx].jobs.front().and_then(|j| {
            (j.next_seg < j.seg_compute.len() && j.staged <= j.next_seg)
                .then_some((j.id, j.next_seg))
        });
        let open = self.tasks[task_idx].wait_open;
        if open == want {
            return;
        }
        if let Some((job, seg)) = open {
            self.trace.push(
                self.now,
                TraceKind::FetchWaitEnded {
                    task: TaskId(task_idx),
                    job: JobId(job),
                    segment: SegmentId(seg),
                },
            );
        }
        if let Some((job, seg)) = want {
            self.trace.push(
                self.now,
                TraceKind::FetchWaitBegan {
                    task: TaskId(task_idx),
                    job: JobId(job),
                    segment: SegmentId(seg),
                },
            );
        }
        self.tasks[task_idx].wait_open = want;
    }

    fn deadline_check(&mut self, task_idx: usize, job_id: u64) {
        let Some(pos) = self.tasks[task_idx]
            .jobs
            .iter()
            .position(|j| j.id == job_id)
        else {
            return; // already completed
        };
        let job = &mut self.tasks[task_idx].jobs[pos];
        if job.miss_recorded {
            return;
        }
        job.miss_recorded = true;
        self.stats[task_idx].misses += 1;
        self.trace.push(
            self.now,
            TraceKind::DeadlineMissed {
                task: TaskId(task_idx),
                job: JobId(job_id),
            },
        );
        match self.ts.tasks()[task_idx].miss_policy {
            MissPolicy::Continue => {}
            MissPolicy::SkipNextRelease => {
                self.tasks[task_idx].skip_next = true;
            }
            MissPolicy::Abort => {
                // Segments are non-preemptive: a job holding the CPU is
                // dropped at its next segment boundary; anything else
                // (waiting, fetching, queued behind) is dropped now.
                if pos == 0 && self.cpu.is_some_and(|c| c.task == task_idx) {
                    self.tasks[task_idx].jobs[pos].abort_pending = true;
                } else {
                    self.drop_job(task_idx, pos);
                }
            }
        }
    }

    /// Removes job `pos` of `task_idx` from the system: cancels its
    /// queued and in-flight DMA transfers, records the abort, and — when
    /// the head job changed — restarts staging for the new head.
    fn drop_job(&mut self, task_idx: usize, pos: usize) {
        self.needs_dispatch = true;
        let job = self.tasks[task_idx].jobs.remove(pos).expect("job to drop");
        self.stats[task_idx].aborted += 1;
        self.metrics.aborted_jobs += 1;
        self.trace.push(
            self.now,
            TraceKind::JobAborted {
                task: TaskId(task_idx),
                job: JobId(job.id),
            },
        );
        // Only a head job ever has staging traffic; the job id on each
        // request pins the cancellation to exactly this job's transfers.
        self.dma_queue
            .retain(|r| !(r.task == task_idx && r.job == job.id));
        if self
            .dma
            .is_some_and(|d| d.task == task_idx && d.job == job.id)
        {
            // Settle the doomed transfer's wall time (and the CPU's —
            // its contention state flips here too) before cancelling.
            self.touch();
            self.dma_dirty = true;
            self.dma = None;
        }
        if pos == 0 {
            // A new head surfaced (or the queue emptied).
            self.maybe_request_fetch(task_idx);
            self.note_leadin_block(task_idx);
        }
        self.update_fetch_wait(task_idx);
    }

    fn complete_dma(&mut self) {
        self.needs_dispatch = true;
        self.dma_dirty = true;
        let d = self.dma.take().expect("dma completion without transfer");
        let head_id = self.tasks[d.task].jobs.front().map(|j| j.id);
        let faulted = head_id == Some(d.job)
            && if self.oracle.is_some() {
                // The oracle decides, under the injector's own contract:
                // only while the fault environment is active, and never
                // at the retry budget (those attempts must succeed).
                if self.config.fault.dma_fault_rate_ppm > 0
                    && d.attempt < self.config.fault.max_retries
                {
                    let state = self.oracle_state_hash();
                    let point = ChoicePoint::TransferFault {
                        task: d.task,
                        job: d.job,
                        seg: d.seg,
                        attempt: d.attempt,
                    };
                    self.queries += 1;
                    self.oracle
                        .as_deref_mut()
                        .expect("oracle checked above")
                        .choose(point, state)
                        .transfer_fault_or_false()
                } else {
                    false
                }
            } else {
                self.injector
                    .transfer_faults(d.task, d.job, d.seg, d.attempt)
            };
        if faulted {
            // The transfer delivered corrupt data: re-issue it in full.
            // The retry re-targets the same buffer half — it *replaces*
            // fetch `d.seg` in the two-ahead window instead of advancing
            // it (`fetch_requested` stays put, `staged` is not bumped),
            // and `dma_key` sorts it before this task's fetch `d.seg+1`,
            // so per-task in-order completion and the double-buffer
            // discipline survive faults unchanged.
            let attempt = d.attempt + 1;
            let bytes = self.ts.tasks()[d.task].segments[d.seg].fetch_bytes;
            let base = self.platform.ext_mem.transfer_cycles(bytes);
            let work = base + self.injector.transfer_jitter(d.task, d.job, d.seg, attempt);
            self.stats[d.task].retries += 1;
            self.metrics.injected_faults += 1;
            self.metrics.fetch_retries += 1;
            self.metrics.refetch_cycles += work;
            self.trace.push(
                self.now,
                TraceKind::FetchFaulted {
                    task: TaskId(d.task),
                    job: JobId(d.job),
                    segment: SegmentId(d.seg),
                    attempt: d.attempt,
                },
            );
            self.trace.push(
                self.now,
                TraceKind::FetchStarted {
                    task: TaskId(d.task),
                    job: JobId(d.job),
                    segment: SegmentId(d.seg),
                    bytes,
                },
            );
            self.dma_queue.push(DmaRequest {
                task: d.task,
                seg: d.seg,
                job: d.job,
                attempt,
                work,
                deadline: d.deadline,
                credit: 0,
            });
            return;
        }
        if let Some(job) = self.tasks[d.task].jobs.front_mut() {
            // Per-task fetches complete in segment order (the queue pops
            // the lowest segment of a task first). The job guard only
            // matters under `Abort`: a transfer finishing in the same
            // instant its owner was dropped must not stage for the
            // successor job.
            if job.id == d.job {
                if job.staged == d.seg {
                    job.staged = d.seg + 1;
                }
                self.trace.push(
                    self.now,
                    TraceKind::FetchCompleted {
                        task: TaskId(d.task),
                        job: JobId(job.id),
                        segment: SegmentId(d.seg),
                    },
                );
            }
        }
        // The next fetch of this task may be admissible now.
        self.maybe_request_fetch(d.task);
        self.update_fetch_wait(d.task);
    }

    fn complete_cpu_segment(&mut self) {
        self.needs_dispatch = true;
        self.cpu_dirty = true;
        let c = self.cpu.take().expect("cpu completion without segment");
        let task_idx = c.task;
        let (job_id, job_done, abort, response) = {
            let job = self.tasks[task_idx]
                .jobs
                .front_mut()
                .expect("running task has a head job");
            job.next_seg = c.seg + 1;
            let done = job.next_seg == job.seg_compute.len();
            // A deferred abort lands here, at the segment boundary. If
            // the finished segment was the last one, the job is simply
            // complete (late) — there is no remaining work to drop.
            let abort = job.abort_pending && !done;
            // Double-buffer effectiveness: was the next segment's fetch
            // already hidden behind the compute that just retired?
            if !done && !abort && self.ts.tasks()[task_idx].mode == StagingMode::Overlapped {
                if job.staged > job.next_seg {
                    self.metrics.prefetch_hits += 1;
                } else {
                    self.metrics.blocking_fetches += 1;
                }
            }
            (job.id, done, abort, self.now.saturating_sub(job.release))
        };
        // Attribution anchor: the occupancy's exact contention stall.
        // Occupancies are non-preemptive, so wall time minus nominal
        // work is precisely what the settlement accounting charged to
        // `cpu_stall_cycles` over this stretch.
        if self.config.attribution {
            let stall = self.now.saturating_sub(c.started).saturating_sub(c.nominal);
            if !stall.is_zero() {
                self.trace.push(
                    self.now,
                    TraceKind::SegmentStalled {
                        task: TaskId(task_idx),
                        job: JobId(job_id),
                        segment: SegmentId(c.seg),
                        stall,
                    },
                );
            }
        }
        self.trace.push(
            self.now,
            TraceKind::SegmentCompleted {
                task: TaskId(task_idx),
                job: JobId(job_id),
                segment: SegmentId(c.seg),
            },
        );
        if job_done {
            let job = self.tasks[task_idx].jobs.pop_front().expect("head job");
            let stats = &mut self.stats[task_idx];
            stats.completions += 1;
            stats.max_response = stats.max_response.max(response);
            stats.total_response += response.get();
            stats.response_hist.record(response);
            if !job.miss_recorded && self.now > job.abs_deadline {
                stats.misses += 1;
                self.trace.push(
                    self.now,
                    TraceKind::DeadlineMissed {
                        task: TaskId(task_idx),
                        job: JobId(job.id),
                    },
                );
            }
            self.trace.push(
                self.now,
                TraceKind::JobCompleted {
                    task: TaskId(task_idx),
                    job: JobId(job.id),
                    response,
                },
            );
        } else if abort {
            self.drop_job(task_idx, 0);
            return; // drop_job restarted staging for the new head
        }
        // The compute window advanced (or a new head job surfaced):
        // another prefetch may be admissible.
        self.maybe_request_fetch(task_idx);
        if job_done {
            self.note_leadin_block(task_idx);
        }
        self.update_fetch_wait(task_idx);
    }

    // --- staging -----------------------------------------------------------

    /// Issues the next pending fetch of `task_idx`'s head job when the
    /// double-buffer discipline allows: fetches are sequential, at most
    /// two segments ahead of compute (fetch `k` requires compute of
    /// segment `k−2` to have completed; fetches 0 and 1 are always
    /// admissible once reached).
    fn maybe_request_fetch(&mut self, task_idx: usize) {
        let task = &self.ts.tasks()[task_idx];
        if task.mode != StagingMode::Overlapped {
            return;
        }
        let Some(job) = self.tasks[task_idx].jobs.front() else {
            return;
        };
        if job.abort_pending {
            return; // doomed job: no fresh staging traffic
        }
        let n = task.segments.len();
        let next_fetch = job.fetch_requested;
        if next_fetch >= n {
            return;
        }
        // Staging window of width w (default 2, the two-ahead
        // double-buffer discipline): fetch k admissible once next_seg ≥
        // k − (w − 1), i.e. compute of k − w retired its buffer half.
        // Fetches 0..w are admissible immediately.
        let w = (self.config.staging_window.max(1)) as usize;
        let allowed = next_fetch < w || job.next_seg + w > next_fetch;
        if !allowed {
            return;
        }
        // No duplicate requests.
        let in_flight = self
            .dma
            .map(|d| d.task == task_idx && d.seg == next_fetch)
            .unwrap_or(false)
            || self
                .dma_queue
                .iter()
                .any(|r| r.task == task_idx && r.seg == next_fetch);
        if in_flight {
            return;
        }
        let bytes = task.segments[next_fetch].fetch_bytes;
        let base = self.platform.ext_mem.transfer_cycles(bytes);
        let deadline = job.abs_deadline;
        let job_id = job.id;
        if base.is_zero() {
            // Nothing to stage: mark immediately. Zero-byte segments
            // never touch the DMA, so neither faults nor jitter apply.
            let job = self.tasks[task_idx].jobs.front_mut().expect("head job");
            job.fetch_requested = next_fetch + 1;
            job.staged = job.staged.max(next_fetch + 1);
            return;
        }
        let work = base
            + self
                .injector
                .transfer_jitter(task_idx, job_id, next_fetch, 0);
        let job_mut = self.tasks[task_idx].jobs.front_mut().expect("head job");
        job_mut.fetch_requested = next_fetch + 1;
        self.dma_queue.push(DmaRequest {
            task: task_idx,
            seg: next_fetch,
            job: job_id,
            attempt: 0,
            work,
            deadline,
            credit: 0,
        });
        self.trace.push(
            self.now,
            TraceKind::FetchStarted {
                task: TaskId(task_idx),
                job: JobId(job_id),
                segment: SegmentId(next_fetch),
                bytes,
            },
        );
    }

    /// Priority key of a DMA request under the active policy.
    fn dma_key(&self, task: usize, seg: usize, deadline: Cycles) -> (Cycles, usize, usize) {
        match self.config.policy {
            Policy::FixedPriority => (Cycles::ZERO, task, seg),
            Policy::Edf => (deadline, task, seg),
        }
    }

    /// Dispatches the highest-priority pending transfer, preempting an
    /// in-flight lower-priority one. Weight blocks are descriptor
    /// chains, so the driver can switch between streams at burst
    /// granularity; the re-arm cost is folded into the per-transfer
    /// setup charge. Preemptive priority-driven DMA is what removes
    /// lower-priority transfer interference from the analysis.
    fn dispatch_dma(&mut self) {
        if self.dma_queue.is_empty() {
            return;
        }
        let best = self
            .dma_queue
            .iter()
            .enumerate()
            .min_by_key(|(_, r)| self.dma_key(r.task, r.seg, r.deadline))
            .map(|(i, _)| i);
        if let Some(i) = best {
            if self.dma.is_some() {
                let req = &self.dma_queue[i];
                let best_key = self.dma_key(req.task, req.seg, req.deadline);
                let current = self.dma.expect("checked in-flight");
                let current_key = self.dma_key(current.task, current.seg, current.deadline);
                if best_key >= current_key {
                    return; // in-flight transfer keeps the channel
                }
                // Settle in-flight progress before suspending the
                // transfer, then re-read it: its remaining work
                // (including sub-cycle progress) returns to the queue.
                self.touch();
                let current = self.dma.take().expect("checked in-flight");
                self.dma_queue.push(DmaRequest {
                    task: current.task,
                    seg: current.seg,
                    job: current.job,
                    attempt: current.attempt,
                    work: current.remaining,
                    deadline: current.deadline,
                    credit: current.credit,
                });
            } else {
                // A fresh dispatch changes the CPU's contention state:
                // settle its solo progress up to this instant first.
                self.touch();
            }
            let req = self.dma_queue.remove(i);
            self.dma_dirty = true;
            self.dma = Some(DmaExec {
                task: req.task,
                seg: req.seg,
                job: req.job,
                attempt: req.attempt,
                remaining: req.work,
                deadline: req.deadline,
                credit: req.credit,
            });
            self.note_staging_races();
        }
    }

    /// The always-on staging-race monitor: whenever a resource is
    /// (re)dispatched while the DMA streams segment `s` of some task,
    /// checks that the buffer half `s` targets (`s mod 2` of the two
    /// physical halves) holds no *live* segment of the same task — live
    /// meaning either being read by the CPU right now, or staged ahead
    /// but not yet consumed. At the default window of 2 the discipline
    /// makes this impossible (fetch `k` waits for compute of `k − 2`),
    /// so the monitor records nothing and default results are
    /// untouched; wider experimental windows make the overlap reachable
    /// and every occurrence lands in [`SimResult::races`] exactly once
    /// per `(job, write, clobbered)` triple.
    fn note_staging_races(&mut self) {
        let Some(d) = self.dma else { return };
        let Some(job) = self.tasks[d.task].jobs.front() else {
            return;
        };
        if job.id != d.job {
            return;
        }
        let mut hits: Vec<(usize, RaceKind)> = Vec::new();
        if let Some(c) = self.cpu {
            if c.task == d.task && c.seg != d.seg && c.seg % 2 == d.seg % 2 {
                hits.push((c.seg, RaceKind::CpuRead));
            }
        }
        for live in job.next_seg..job.staged {
            if live != d.seg && live % 2 == d.seg % 2 {
                hits.push((live, RaceKind::StagedUnconsumed));
            }
        }
        for (clobbered_seg, kind) in hits {
            let race = StagingRace {
                at: self.now,
                task: d.task,
                job: d.job,
                write_seg: d.seg,
                clobbered_seg,
                kind,
            };
            let dup = self.races.iter().any(|r| {
                r.task == race.task
                    && r.job == race.job
                    && r.write_seg == race.write_seg
                    && r.clobbered_seg == race.clobbered_seg
                    && r.kind == race.kind
            });
            if !dup {
                self.races.push(race);
            }
        }
    }

    // --- cpu scheduling ----------------------------------------------------

    /// Priority key of `task_idx`'s head job if it is *active*
    /// (released, incomplete), regardless of staging.
    fn active_key(&self, task_idx: usize) -> Option<(Cycles, usize)> {
        let job = self.tasks[task_idx].jobs.front()?;
        if job.next_seg >= job.seg_compute.len() {
            return None;
        }
        let key = match self.config.policy {
            Policy::FixedPriority => (Cycles::ZERO, task_idx),
            Policy::Edf => (job.abs_deadline, task_idx),
        };
        Some(key)
    }

    /// Whether `task_idx`'s next segment is staged and runnable.
    fn is_ready(&self, task_idx: usize) -> bool {
        self.tasks[task_idx]
            .jobs
            .front()
            .map(|j| j.next_seg < j.seg_compute.len() && j.staged > j.next_seg)
            .unwrap_or(false)
    }

    fn dispatch_cpu(&mut self) {
        if self.cpu.is_some() {
            return;
        }
        let chosen = if self.config.work_conserving {
            // Work-conserving: highest-priority *ready* task.
            (0..self.ts.len())
                .filter(|&i| self.is_ready(i))
                .filter_map(|i| self.active_key(i).map(|k| (k, i)))
                .min()
                .map(|(_, i)| i)
        } else {
            // Priority-gated: the highest-priority *active* task gets
            // the CPU — or, if it is waiting for its DMA, nobody does.
            (0..self.ts.len())
                .filter_map(|i| self.active_key(i).map(|k| (k, i)))
                .min()
                .map(|(_, i)| i)
                .filter(|&i| self.is_ready(i))
        };
        let Some(task_idx) = chosen else { return };

        // Claiming the CPU changes the in-flight DMA's contention
        // state: settle both resources up to this instant first.
        self.touch();
        self.cpu_dirty = true;

        // The CPU leaves idle: close the open idle interval.
        if self.idle_open {
            self.idle_open = false;
            self.trace.push(self.now, TraceKind::CpuIdleEnd);
        }

        // Preemption bookkeeping: if a different task was mid-job at the
        // last boundary, it has just been preempted.
        if let Some(prev) = self.last_cpu_task {
            if prev != task_idx && self.task_has_started_job(prev) {
                self.stats[prev].preemptions += 1;
                self.metrics.preemptions += 1;
                self.trace.push(
                    self.now,
                    TraceKind::Preempted {
                        task: TaskId(prev),
                        by: TaskId(task_idx),
                    },
                );
            }
        }

        let prev_cpu = self.last_cpu_task;
        let switch = if self.last_cpu_task == Some(task_idx) {
            Cycles::ZERO
        } else {
            self.platform.context_switch_cycles
        };
        self.last_cpu_task = Some(task_idx);

        let (seg, work, job_id) = {
            let job = self.tasks[task_idx].jobs.front().expect("ready job");
            (job.next_seg, job.seg_compute[job.next_seg], job.id)
        };
        // Attribution anchor: a mid-job task re-claiming the CPU after
        // another task held it resumes from a preemption — name the
        // most recent occupant so span reconstruction need not scan.
        if self.config.attribution && seg > 0 {
            if let Some(prev) = prev_cpu {
                if prev != task_idx {
                    self.trace.push(
                        self.now,
                        TraceKind::Resumed {
                            task: TaskId(task_idx),
                            job: JobId(job_id),
                            after: TaskId(prev),
                        },
                    );
                }
            }
        }
        self.cpu = Some(CpuExec {
            task: task_idx,
            seg,
            remaining: work + switch,
            credit: 0,
            started: self.now,
            nominal: work + switch,
        });
        self.trace.push(
            self.now,
            TraceKind::SegmentStarted {
                task: TaskId(task_idx),
                job: JobId(job_id),
                segment: SegmentId(seg),
            },
        );
        // The claim may overlap an in-flight DMA write of this task.
        self.note_staging_races();
        // Double buffer frees now: prefetch the next segment.
        self.maybe_request_fetch(task_idx);
        self.dispatch_dma();
    }

    fn task_has_started_job(&self, task_idx: usize) -> bool {
        self.tasks[task_idx]
            .jobs
            .front()
            .map(|j| j.next_seg > 0 && j.next_seg < j.seg_compute.len())
            .unwrap_or(false)
    }

    // --- state fingerprinting (oracle mode) --------------------------------

    /// Canonicalizes and fingerprints the simulator's dynamic state for
    /// an oracle query. Settles the deferred stretch first (`touch` is
    /// results-invariant by the floor-carry identity, so forcing it
    /// here never perturbs the run) so sub-cycle credits and
    /// `settled_to` are canonical, then hashes exactly the state that
    /// determines future behavior: the clock, every task's release
    /// bookkeeping and job queue, both resource slots, the DMA request
    /// queue in its tie-breaking order, the dispatcher memory
    /// (`last_cpu_task`), and the pending-event set in drain order.
    /// Traces, statistics, and metrics are deliberately excluded — they
    /// record the past. The engine-private flags `needs_dispatch` and
    /// `idle_open` are excluded too: the legacy loop dispatches every
    /// cut while the DES loop toggles them as an optimization, so they
    /// differ across engines at equal semantic states — and both are
    /// results-invariant (pinned by the legacy/DES differential tests),
    /// so equal hashes still imply identical future behavior. This is
    /// what makes the fingerprint sequence engine-identical, which the
    /// `oracle_state_hashes_are_engine_identical` test pins.
    ///
    /// Only called in oracle mode, at most once per choice point, so
    /// the `O(state)` walk never taxes default runs.
    fn oracle_state_hash(&mut self) -> StateHash {
        self.touch();
        let mut h = StableHash::new();
        h.mix(self.now.get());
        for t in &self.tasks {
            h.mix(t.next_release.get());
            h.mix(t.released);
            h.mix_bool(t.skip_next);
            match t.wait_open {
                None => h.mix_opt(None),
                Some((job, seg)) => {
                    h.mix_opt(Some(job));
                    h.mix(seg as u64);
                }
            }
            h.mix(t.jobs.len() as u64);
            for j in &t.jobs {
                h.mix(j.id);
                h.mix(j.release.get());
                h.mix(j.abs_deadline.get());
                h.mix(j.next_seg as u64);
                h.mix(j.staged as u64);
                h.mix(j.fetch_requested as u64);
                h.mix_bool(j.miss_recorded);
                h.mix_bool(j.abort_pending);
                h.mix(j.seg_compute.len() as u64);
                for c in &j.seg_compute {
                    h.mix(c.get());
                }
            }
        }
        match self.cpu {
            None => h.mix_opt(None),
            Some(c) => {
                h.mix_opt(Some(c.task as u64));
                h.mix(c.seg as u64);
                h.mix(c.remaining.get());
                h.mix(c.credit);
                h.mix(c.started.get());
                h.mix(c.nominal.get());
            }
        }
        match self.dma {
            None => h.mix_opt(None),
            Some(d) => {
                h.mix_opt(Some(d.task as u64));
                h.mix(d.seg as u64);
                h.mix(d.job);
                h.mix(u64::from(d.attempt));
                h.mix(d.remaining.get());
                h.mix(d.deadline.get());
                h.mix(d.credit);
            }
        }
        h.mix(self.dma_queue.len() as u64);
        for r in &self.dma_queue {
            h.mix(r.task as u64);
            h.mix(r.seg as u64);
            h.mix(r.job);
            h.mix(u64::from(r.attempt));
            h.mix(r.work.get());
            h.mix(r.deadline.get());
            h.mix(r.credit);
        }
        h.mix_opt(self.last_cpu_task.map(|t| t as u64));
        let pending = self.events.ordered();
        h.mix(pending.len() as u64);
        for (time, ev) in pending {
            h.mix(time.get());
            match *ev {
                TimedEvent::Release(task) => {
                    h.mix(0);
                    h.mix(task as u64);
                }
                TimedEvent::DeadlineCheck(task, job) => {
                    h.mix(1);
                    h.mix(task as u64);
                    h.mix(job);
                }
                TimedEvent::JitteredRelease { task, id, nominal } => {
                    h.mix(2);
                    h.mix(task as u64);
                    h.mix(id);
                    h.mix(nominal.get());
                }
            }
        }
        h.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::{Segment, SporadicTask};
    use rtmdm_mcusim::{ContentionModel, DEFAULT_MAX_RETRIES};

    fn cy(n: u64) -> Cycles {
        Cycles::new(n)
    }

    fn bare_platform() -> PlatformConfig {
        let mut p = PlatformConfig::stm32f746_qspi();
        p.contention = ContentionModel::NONE;
        p.context_switch_cycles = Cycles::ZERO;
        p.ext_mem.setup_cycles = Cycles::ZERO;
        p.ext_mem.cycles_per_byte_num = 1;
        p.ext_mem.cycles_per_byte_den = 1;
        p
    }

    fn resident(name: &str, period: u64, compute_segs: &[u64]) -> SporadicTask {
        SporadicTask::new(
            name,
            cy(period),
            cy(period),
            compute_segs
                .iter()
                .map(|&c| Segment::new(cy(c), 0))
                .collect(),
            StagingMode::Resident,
        )
        .expect("valid")
    }

    fn overlapped(name: &str, period: u64, segs: &[(u64, u64)]) -> SporadicTask {
        SporadicTask::new(
            name,
            cy(period),
            cy(period),
            segs.iter().map(|&(c, b)| Segment::new(cy(c), b)).collect(),
            StagingMode::Overlapped,
        )
        .expect("valid")
    }

    fn run(ts: &TaskSet, horizon: u64) -> SimResult {
        simulate(
            ts,
            &bare_platform(),
            &SimConfig::new(cy(horizon), Policy::FixedPriority),
        )
    }

    #[test]
    fn single_resident_task_runs_back_to_back() {
        let ts = TaskSet::from_tasks(vec![resident("a", 100, &[30])]);
        let r = run(&ts, 1000);
        assert_eq!(r.stats[0].releases, 10);
        assert_eq!(r.stats[0].completions, 10);
        assert_eq!(r.stats[0].misses, 0);
        assert_eq!(r.stats[0].max_response, cy(30));
    }

    #[test]
    fn overlapped_single_task_pays_lead_in_fetch_only() {
        // Two segments (C=100,F=50 bytes→50cy each). Pipeline:
        // fetch0 (50) → compute0 (100) overlapping fetch1 (50, hidden)
        // → compute1 (100). Response = 50 + 100 + 100 = 250.
        let ts = TaskSet::from_tasks(vec![overlapped("a", 1000, &[(100, 50), (100, 50)])]);
        let r = run(&ts, 10_000);
        assert_eq!(r.stats[0].max_response, cy(250));
        assert!(r.no_misses());
    }

    #[test]
    fn unhidden_fetch_stalls_the_pipeline() {
        // Fetch of segment 1 (300cy) exceeds compute of segment 0
        // (100cy): response = 50 + max(100,300) + 100 = 450.
        let ts = TaskSet::from_tasks(vec![overlapped("a", 1000, &[(100, 50), (100, 300)])]);
        let r = run(&ts, 10_000);
        assert_eq!(r.stats[0].max_response, cy(450));
    }

    #[test]
    fn higher_priority_preempts_at_segment_boundaries() {
        // lo runs 4 segments of 50; hi (period 100, C=20) arrives at 0
        // too. With FP, hi runs first (both ready at 0, hi = index 0).
        let ts = TaskSet::from_tasks(vec![
            resident("hi", 100, &[20]),
            resident("lo", 1000, &[50, 50, 50, 50]),
        ]);
        let r = run(&ts, 1000);
        assert!(r.no_misses());
        // hi's second job (release 100) arrives while lo computes a
        // 50-cycle segment: worst extra delay ≤ 50.
        assert!(r.stats[0].max_response <= cy(70));
        // lo was preempted at least once.
        assert!(r.stats[1].preemptions >= 1);
    }

    #[test]
    fn non_preemptive_segment_blocks_until_boundary() {
        // hi: C=20, T=D=300; lo: two non-preemptive 500-cycle segments.
        // Timeline: hi₀ 0..20; lo seg₁ 20..520; hi₁(rel 300) blocked
        // until 520, runs 520..540 → response 240 (meets D=300);
        // lo seg₂ 540..1040; hi₂(rel 600) blocked until 1040, runs
        // 1040..1060 → response 460 > 300: one miss caused purely by
        // non-preemptive blocking.
        let ts = TaskSet::from_tasks(vec![
            resident("hi", 300, &[20]),
            resident("lo", 3000, &[500, 500]),
        ]);
        let r = run(&ts, 3000);
        assert_eq!(r.stats[0].max_response, cy(460));
        assert_eq!(r.stats[0].misses, 1);
    }

    #[test]
    fn edf_orders_by_absolute_deadline() {
        // Two tasks, same period/deadline but task 1 released with a
        // shorter deadline would win under EDF. Construct: a (D=500),
        // b (D=100): at t=0 both ready; EDF runs b first despite index.
        let a = SporadicTask::new(
            "a",
            cy(1000),
            cy(500),
            vec![Segment::new(cy(50), 0)],
            StagingMode::Resident,
        )
        .expect("valid");
        let b = SporadicTask::new(
            "b",
            cy(1000),
            cy(100),
            vec![Segment::new(cy(50), 0)],
            StagingMode::Resident,
        )
        .expect("valid");
        let ts = TaskSet::from_tasks(vec![a, b]);
        let r = simulate(
            &ts,
            &bare_platform(),
            &SimConfig::new(cy(1000), Policy::Edf),
        );
        // b ran first: its response is 50; a's is 100.
        assert_eq!(r.stats[1].max_response, cy(50));
        assert_eq!(r.stats[0].max_response, cy(100));
    }

    #[test]
    fn overload_records_misses_and_keeps_going() {
        let ts = TaskSet::from_tasks(vec![resident("a", 100, &[150])]);
        let r = run(&ts, 2000);
        assert!(r.stats[0].misses > 0);
        // Jobs still complete eventually (late).
        assert!(r.stats[0].completions > 0);
    }

    #[test]
    fn context_switch_overhead_is_charged() {
        let mut p = bare_platform();
        p.context_switch_cycles = cy(10);
        let ts = TaskSet::from_tasks(vec![resident("a", 100, &[30])]);
        let r = simulate(&ts, &p, &SimConfig::new(cy(500), Policy::FixedPriority));
        // First job pays the switch (fresh CPU): 40. Later jobs are
        // back-to-back with themselves (no switch): 30.
        assert_eq!(r.stats[0].max_response, cy(40));
    }

    #[test]
    fn contention_slows_overlapped_execution() {
        let mut p = bare_platform();
        p.contention = ContentionModel {
            cpu_inflation_ppm: 500_000, // 50%
            dma_inflation_ppm: 0,
        };
        // fetch0 runs alone: 0..100 (idle CPU, no contention). At 100,
        // compute0 (100 work) and fetch1 (100 work) start together:
        // the DMA (uninflated) finishes its 100 at t=200; the CPU,
        // contended at 1.5×, has retired ⌊100/1.5⌋ = 66 work by then
        // and finishes the remaining 34 at t=234. compute1: 234..334.
        let ts = TaskSet::from_tasks(vec![overlapped("a", 10_000, &[(100, 100), (100, 100)])]);
        let r = simulate(&ts, &p, &SimConfig::new(cy(10_000), Policy::FixedPriority));
        assert_eq!(r.stats[0].max_response, cy(334));
    }

    #[test]
    fn determinism_same_seed_same_trace() {
        let ts = TaskSet::from_tasks(vec![
            overlapped("a", 500, &[(40, 64), (60, 32)]),
            resident("b", 700, &[100, 80]),
        ]);
        let cfg = SimConfig {
            horizon: cy(50_000),
            policy: Policy::FixedPriority,
            exec_scale_min_ppm: 600_000,
            seed: 42,
            work_conserving: false,
            fault: FaultPlan::NONE,
            engine: Engine::Des,
            attribution: false,
            staging_window: 2,
        };
        let p = bare_platform();
        let r1 = simulate(&ts, &p, &cfg);
        let r2 = simulate(&ts, &p, &cfg);
        assert_eq!(r1.trace.events(), r2.trace.events());
        assert_eq!(r1.stats, r2.stats);
    }

    #[test]
    fn different_seed_changes_jittered_run() {
        let ts = TaskSet::from_tasks(vec![overlapped("a", 500, &[(100, 64), (100, 32)])]);
        let p = bare_platform();
        let mk = |seed| SimConfig {
            horizon: cy(50_000),
            policy: Policy::FixedPriority,
            exec_scale_min_ppm: 500_000,
            seed,
            work_conserving: false,
            fault: FaultPlan::NONE,
            engine: Engine::Des,
            attribution: false,
            staging_window: 2,
        };
        let r1 = simulate(&ts, &p, &mk(1));
        let r2 = simulate(&ts, &p, &mk(2));
        assert_ne!(
            r1.stats[0].total_response, r2.stats[0].total_response,
            "jittered runs with different seeds should differ"
        );
    }

    #[test]
    fn jittered_runs_never_exceed_wcet_run() {
        let ts = TaskSet::from_tasks(vec![
            overlapped("a", 1000, &[(100, 64), (120, 128)]),
            resident("b", 1500, &[200]),
        ]);
        let p = bare_platform();
        let wcet = simulate(&ts, &p, &SimConfig::new(cy(100_000), Policy::FixedPriority));
        for seed in 0..5 {
            let jit = simulate(
                &ts,
                &p,
                &SimConfig {
                    horizon: cy(100_000),
                    policy: Policy::FixedPriority,
                    exec_scale_min_ppm: 400_000,
                    seed,
                    work_conserving: false,
                    fault: FaultPlan::NONE,
                    engine: Engine::Des,
                    attribution: false,
                    staging_window: 2,
                },
            );
            for i in 0..ts.len() {
                assert!(
                    jit.max_response_of(i) <= wcet.max_response_of(i) || wcet.stats[i].misses > 0,
                    "seed {seed} task {i}"
                );
            }
        }
    }

    #[test]
    fn trace_contains_fetch_and_segment_events() {
        let ts = TaskSet::from_tasks(vec![overlapped("a", 1000, &[(100, 64), (100, 64)])]);
        let r = run(&ts, 1000);
        let kinds: Vec<&TraceKind> = r.trace.events().iter().map(|e| &e.kind).collect();
        assert!(kinds
            .iter()
            .any(|k| matches!(k, TraceKind::FetchStarted { .. })));
        assert!(kinds
            .iter()
            .any(|k| matches!(k, TraceKind::FetchCompleted { .. })));
        assert!(kinds
            .iter()
            .any(|k| matches!(k, TraceKind::SegmentStarted { .. })));
        assert!(kinds
            .iter()
            .any(|k| matches!(k, TraceKind::JobCompleted { .. })));
    }

    #[test]
    fn response_histogram_tracks_completions() {
        let ts = TaskSet::from_tasks(vec![resident("a", 100, &[30])]);
        let r = run(&ts, 1000);
        let hist = &r.stats[0].response_hist;
        assert_eq!(hist.count(), r.stats[0].completions);
        // All responses are exactly 30 cycles → bucket [16,32).
        let p95 = hist.percentile_upper(95).expect("non-empty");
        assert!(p95 >= cy(30) && p95 <= cy(31), "{p95}");
        assert!(hist.percentile_upper(50).expect("non-empty") >= cy(30));
        // Empty histogram → None.
        assert_eq!(ResponseHist::default().percentile_upper(95), None);
    }

    #[test]
    fn percentile_rank_survives_huge_counts() {
        // Regression: `total * pct` used to be computed in u64, which
        // overflows once count() exceeds u64::MAX / 100. Populate two
        // buckets whose total sits just under u64::MAX and check both
        // percentile halves resolve to the right bucket tops.
        let mut hist = ResponseHist::default();
        hist.buckets[4] = u64::MAX / 100 * 49; // responses in [16, 32)
        hist.buckets[9] = u64::MAX / 100 * 50; // responses in [512, 1024)
        assert!(hist.count() > u64::MAX / 100);
        assert_eq!(hist.percentile_upper(25), Some(cy(31)));
        assert_eq!(hist.percentile_upper(100), Some(cy(1023)));
        // The 50th percentile falls in the upper bucket (49% below it).
        assert_eq!(hist.percentile_upper(50), Some(cy(1023)));
    }

    #[test]
    fn percentile_upper_bounds_max_response() {
        let ts = TaskSet::from_tasks(vec![
            overlapped("a", 500, &[(40, 64), (60, 32)]),
            resident("b", 700, &[100, 80]),
        ]);
        let r = run(&ts, 50_000);
        for s in &r.stats {
            if s.completions > 0 {
                let p100 = s.response_hist.percentile_upper(100).expect("non-empty");
                assert!(p100 >= s.max_response);
                let p50 = s.response_hist.percentile_upper(50).expect("non-empty");
                assert!(p50 <= p100);
            }
        }
    }

    #[test]
    fn dma_preempts_lower_priority_transfer() {
        // lo starts a 20 000-cycle transfer at t=500 (after hi's first
        // job). hi's second job (release 2000) needs a 500-cycle fetch:
        // with preemptive DMA it takes the channel immediately and hi
        // responds in 600 cycles; a non-preemptive channel would stall
        // it ≈18 500 cycles behind lo's transfer.
        let hi = overlapped("hi", 2_000, &[(100, 500)]);
        let lo = overlapped("lo", 100_000, &[(100, 20_000)]);
        let ts = TaskSet::from_tasks(vec![hi, lo]);
        let r = run(&ts, 100_000);
        assert_eq!(r.stats[0].max_response, cy(600));
        assert!(r.no_misses());
        // lo still completes: its transfer resumes after hi's fetches.
        assert_eq!(r.stats[1].completions, 1);
    }

    #[test]
    fn gated_cpu_idles_during_hp_fetch_wait() {
        // hi: two segments, each with a 1000-cycle fetch dominating its
        // 100-cycle compute. lo: a single resident 200-cycle segment.
        let hi = overlapped("hi", 100_000, &[(100, 1000), (100, 1000)]);
        let lo = resident("lo", 100_000, &[200]);
        let ts = TaskSet::from_tasks(vec![hi, lo]);
        let p = bare_platform();

        // Gated (default): lo must wait for hi to finish entirely.
        // hi: fetch0 0..1000, compute0 1000..1100 (fetch1 1000..2000),
        // compute1 2000..2100. lo: 2100..2300.
        let gated = simulate(&ts, &p, &SimConfig::new(cy(100_000), Policy::FixedPriority));
        assert_eq!(gated.stats[0].max_response, cy(2100));
        assert_eq!(gated.stats[1].max_response, cy(2300));

        // Work-conserving: lo slips into hi's fetch windows.
        let wc = simulate(
            &ts,
            &p,
            &SimConfig::new(cy(100_000), Policy::FixedPriority).work_conserving(),
        );
        assert_eq!(wc.stats[1].max_response, cy(200));
        // hi is unharmed here (lo's segment fits inside the fetch).
        assert_eq!(wc.stats[0].max_response, cy(2100));
    }

    #[test]
    fn work_conserving_can_block_hp_repeatedly() {
        // Under work-conserving dispatch, every fetch wait of hi admits
        // another long lo segment, which then blocks hi's resumed
        // compute; under gating lo never starts while hi is active.
        let hi = overlapped("hi", 100_000, &[(100, 1000), (100, 1000), (100, 100)]);
        let lo = resident("lo", 100_000, &[700, 700, 700, 700]);
        let ts = TaskSet::from_tasks(vec![hi, lo]);
        let p = bare_platform();
        let gated = simulate(&ts, &p, &SimConfig::new(cy(100_000), Policy::FixedPriority));
        let wc = simulate(
            &ts,
            &p,
            &SimConfig::new(cy(100_000), Policy::FixedPriority).work_conserving(),
        );
        assert!(
            wc.stats[0].max_response > gated.stats[0].max_response,
            "wc {} vs gated {}",
            wc.stats[0].max_response,
            gated.stats[0].max_response
        );
    }

    #[test]
    fn metrics_partition_horizon_exactly() {
        // (100,50),(100,50) per job of period 1000 over a 10 000-cycle
        // horizon: fetch0 50, compute 200, fetch1 hidden → per job the
        // CPU is busy 200 and the DMA 100.
        let ts = TaskSet::from_tasks(vec![overlapped("a", 1000, &[(100, 50), (100, 50)])]);
        let r = run(&ts, 10_000);
        let m = r.metrics;
        assert_eq!(m.cpu_busy_cycles + m.cpu_idle_cycles, r.horizon);
        assert_eq!(m.cpu_busy_cycles, cy(2000));
        assert_eq!(m.cpu_idle_cycles, cy(8000));
        assert_eq!(m.dma_busy_cycles, cy(1000));
        // No contention on the bare platform.
        assert_eq!(m.cpu_stall_cycles, Cycles::ZERO);
        assert_eq!(m.dma_stall_cycles, Cycles::ZERO);
        // Per job: one hidden prefetch (segment 1), one lead-in block.
        assert_eq!(m.prefetch_hits, 10);
        assert_eq!(m.blocking_fetches, 10);
    }

    #[test]
    fn idle_trace_events_agree_with_idle_metric() {
        // The CpuIdle/CpuIdleEnd pairs in the trace (with the open tail
        // clamped at the horizon) must sum to exactly the idle counter
        // the hot loop accounted — two independent derivations.
        for (ts, horizon) in [
            (
                TaskSet::from_tasks(vec![overlapped("a", 1000, &[(100, 50), (100, 300)])]),
                10_000,
            ),
            (
                TaskSet::from_tasks(vec![
                    overlapped("a", 500, &[(40, 64), (60, 32)]),
                    resident("b", 700, &[100, 80]),
                ]),
                50_000,
            ),
            (TaskSet::from_tasks(vec![]), 777),
        ] {
            let r = run(&ts, horizon);
            assert_eq!(
                r.trace.cpu_idle_cycles(r.horizon),
                r.metrics.cpu_idle_cycles,
                "horizon {horizon}"
            );
        }
    }

    #[test]
    fn unhidden_fetch_counts_as_blocking() {
        // Fetch of segment 1 (300) outlasts compute of segment 0 (100):
        // every inter-segment transition blocks, plus the lead-in.
        let ts = TaskSet::from_tasks(vec![overlapped("a", 1000, &[(100, 50), (100, 300)])]);
        let r = run(&ts, 10_000);
        assert_eq!(r.metrics.prefetch_hits, 0);
        assert_eq!(r.metrics.blocking_fetches, 2 * r.stats[0].completions);
    }

    #[test]
    fn contention_stall_is_accounted() {
        let mut p = bare_platform();
        p.contention = ContentionModel {
            cpu_inflation_ppm: 500_000,
            dma_inflation_ppm: 0,
        };
        let ts = TaskSet::from_tasks(vec![overlapped("a", 10_000, &[(100, 100), (100, 100)])]);
        let r = simulate(&ts, &p, &SimConfig::new(cy(10_000), Policy::FixedPriority));
        let m = r.metrics;
        // Compute0 overlaps fetch1 for 100 wall cycles at 1.5×: the CPU
        // retires 66 work cycles and stalls for the other 34 (exact,
        // sub-cycle credit included).
        assert_eq!(m.cpu_stall_cycles, cy(34));
        assert_eq!(m.dma_stall_cycles, Cycles::ZERO);
        assert_eq!(m.cpu_busy_cycles + m.cpu_idle_cycles, r.horizon);
        // Busy wall time = 234 (contended compute0 + compute1).
        assert_eq!(m.cpu_busy_cycles, cy(234));
    }

    #[test]
    fn metrics_and_preemptions_match_stats() {
        let ts = TaskSet::from_tasks(vec![
            resident("hi", 100, &[20]),
            resident("lo", 1000, &[50, 50, 50, 50]),
        ]);
        let r = run(&ts, 1000);
        let stat_preempts: u64 = r.stats.iter().map(|s| s.preemptions).sum();
        assert_eq!(r.metrics.preemptions, stat_preempts);
        assert!(r.metrics.preemptions >= 1);
    }

    #[test]
    fn global_registry_collects_run_totals_when_enabled() {
        let g = rtmdm_obs::metrics::global();
        let before = g.snapshot();
        g.enable(true);
        let ts = TaskSet::from_tasks(vec![overlapped("a", 1000, &[(100, 50), (100, 50)])]);
        let r = run(&ts, 10_000);
        g.enable(false);
        let after = g.snapshot();
        // Other tests may flush concurrently while the gate is open, so
        // assert lower bounds, not exact values.
        assert!(after.counter_delta(&before, "sim.runs") >= 1);
        assert!(after.counter_delta(&before, "sim.cycles") >= 10_000);
        assert!(
            after.counter_delta(&before, "sim.completions") >= r.stats[0].completions,
            "completions flushed"
        );
        // Disabled again: another run adds nothing.
        let mid = g.snapshot();
        let _ = run(&ts, 10_000);
        assert_eq!(g.snapshot().counter("sim.runs"), mid.counter("sim.runs"));
    }

    #[test]
    fn dma_serves_higher_priority_fetches_first() {
        // Both tasks want their lead-in fetch at t=0; task 0's goes
        // first under FP, so task 0 starts computing earlier.
        let ts = TaskSet::from_tasks(vec![
            overlapped("hi", 10_000, &[(100, 500)]),
            overlapped("lo", 10_000, &[(100, 500)]),
        ]);
        let r = run(&ts, 10_000);
        // hi: fetch 500 + compute 100 = 600.
        assert_eq!(r.stats[0].max_response, cy(600));
        // lo: waits for hi's fetch (500), fetches (500); its compute can
        // overlap hi's compute? No — single CPU: lo's fetch overlaps
        // hi's compute. lo computes at t=1000..1100.
        assert_eq!(r.stats[1].max_response, cy(1100));
    }

    #[test]
    fn histogram_resolves_responses_beyond_the_old_saturation_boundary() {
        // Regression: buckets used to clamp at index 31, so any
        // response ≥ 2^32 was folded into bucket 31 and
        // `percentile_upper` returned 2^32 − 1 — *below* the recorded
        // response, violating its upper-bound contract.
        let mut hist = ResponseHist::default();
        hist.record(cy(1u64 << 32));
        let p100 = hist.percentile_upper(100).expect("non-empty");
        assert!(p100 >= cy(1u64 << 32), "upper bound violated: {p100}");
        assert_eq!(p100, cy((1u64 << 33) - 1));
        // The very top bucket's upper bound is exactly u64::MAX.
        let mut top = ResponseHist::default();
        top.record(Cycles::new(u64::MAX));
        assert_eq!(top.percentile_upper(100), Some(Cycles::new(u64::MAX)));
    }

    fn fault_plan(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            dma_fault_rate_ppm: 300_000,
            max_retries: 3,
            jitter_max_cycles: 25,
        }
    }

    fn fault_taskset() -> TaskSet {
        TaskSet::from_tasks(vec![
            overlapped("a", 500, &[(40, 64), (60, 32)]),
            overlapped("b", 700, &[(100, 128), (80, 64)]),
        ])
    }

    #[test]
    fn zero_rate_fault_plan_is_byte_identical_to_no_plan() {
        let ts = fault_taskset();
        let p = bare_platform();
        let plain = SimConfig::new(cy(50_000), Policy::FixedPriority);
        // A zero-rate, zero-jitter plan with a nonzero seed is inactive:
        // the injector must be provably free on the disabled path.
        let zeroed = plain.clone().with_fault(FaultPlan {
            seed: 12345,
            dma_fault_rate_ppm: 0,
            max_retries: 7,
            jitter_max_cycles: 0,
        });
        let r1 = simulate(&ts, &p, &plain);
        let r2 = simulate(&ts, &p, &zeroed);
        assert_eq!(r1.trace.events(), r2.trace.events());
        assert_eq!(r1.stats, r2.stats);
        assert_eq!(r1.metrics, r2.metrics);
        assert_eq!(r2.metrics.injected_faults, 0);
        assert_eq!(r2.metrics.refetch_cycles, Cycles::ZERO);
    }

    #[test]
    fn fault_injected_runs_are_deterministic() {
        let ts = fault_taskset();
        let p = bare_platform();
        let cfg = SimConfig::new(cy(50_000), Policy::FixedPriority).with_fault(fault_plan(9));
        let r1 = simulate(&ts, &p, &cfg);
        let r2 = simulate(&ts, &p, &cfg);
        assert!(r1.metrics.injected_faults > 0, "fault rate should bite");
        assert_eq!(r1.trace.events(), r2.trace.events());
        assert_eq!(r1.stats, r2.stats);
        assert_eq!(r1.metrics, r2.metrics);
    }

    #[test]
    fn fault_injected_run_still_partitions_the_horizon() {
        // The conservation invariant (busy + idle == horizon) must
        // survive retries: a re-issued transfer adds DMA work but must
        // not double-count stall cycles or break the partition.
        let ts = fault_taskset();
        let mut p = bare_platform();
        p.contention = ContentionModel {
            cpu_inflation_ppm: 300_000,
            dma_inflation_ppm: 200_000,
        };
        let cfg = SimConfig::new(cy(50_000), Policy::FixedPriority).with_fault(fault_plan(4));
        let r = simulate(&ts, &p, &cfg);
        let m = r.metrics;
        assert!(m.injected_faults > 0);
        assert_eq!(m.fetch_retries, m.injected_faults);
        assert_eq!(m.cpu_busy_cycles + m.cpu_idle_cycles, r.horizon);
        assert!(m.dma_busy_cycles <= r.horizon);
        assert!(m.refetch_cycles > Cycles::ZERO);
        let stat_retries: u64 = r.stats.iter().map(|s| s.retries).sum();
        assert_eq!(stat_retries, m.fetch_retries);
        assert_eq!(
            r.trace.injected_faults() as u64,
            m.injected_faults,
            "every injected fault is visible in the trace"
        );
    }

    #[test]
    fn faulted_transfers_delay_but_do_not_break_staging() {
        // 100% fault rate with the default retry bound: every transfer
        // is re-fetched max_retries times, then succeeds. Jobs still
        // complete, responses only grow.
        let ts = TaskSet::from_tasks(vec![overlapped("a", 10_000, &[(100, 50), (100, 50)])]);
        let p = bare_platform();
        let clean = simulate(&ts, &p, &SimConfig::new(cy(10_000), Policy::FixedPriority));
        let faulty = simulate(
            &ts,
            &p,
            &SimConfig::new(cy(10_000), Policy::FixedPriority)
                .with_fault(FaultPlan::with_rate(1, 1_000_000)),
        );
        assert_eq!(faulty.stats[0].completions, clean.stats[0].completions);
        assert!(faulty.stats[0].max_response > clean.stats[0].max_response);
        // Each of the 2 transfers per job pays exactly max_retries
        // re-fetches at rate 100%.
        assert_eq!(
            faulty.metrics.fetch_retries,
            2 * u64::from(DEFAULT_MAX_RETRIES) * faulty.stats[0].completions
        );
    }

    #[test]
    fn abort_policy_drops_missed_jobs_at_segment_boundaries() {
        // Three 80-cycle non-preemptive segments against a 100-cycle
        // deadline: every job misses mid-segment, gets abort_pending,
        // and is dropped at the next boundary — no job ever completes.
        let t = SporadicTask::new(
            "a",
            cy(100),
            cy(100),
            (0..3).map(|_| Segment::new(cy(80), 0)).collect(),
            StagingMode::Resident,
        )
        .expect("valid")
        .with_miss_policy(MissPolicy::Abort);
        let r = run(&TaskSet::from_tasks(vec![t]), 2000);
        assert!(r.stats[0].misses > 0);
        assert!(r.stats[0].aborted > 0);
        assert_eq!(r.stats[0].completions, 0);
        assert_eq!(r.metrics.aborted_jobs, r.stats[0].aborted);
        assert_eq!(r.trace.shed_or_aborted() as u64, r.stats[0].aborted);
    }

    #[test]
    fn abort_cancels_pending_dma_of_the_dropped_job() {
        // The lead-in fetch (500) alone blows the 300-cycle deadline:
        // the job is dropped while *fetching* (not on the CPU), so its
        // in-flight transfer must be cancelled immediately.
        let t = SporadicTask::new(
            "a",
            cy(1000),
            cy(300),
            vec![Segment::new(cy(100), 500)],
            StagingMode::Overlapped,
        )
        .expect("valid")
        .with_miss_policy(MissPolicy::Abort);
        let r = run(&TaskSet::from_tasks(vec![t]), 5000);
        assert!(r.stats[0].aborted > 0);
        assert_eq!(r.stats[0].completions, 0);
        // Each job streams at most 300 cycles (release → deadline) of
        // its 500-cycle fetch before cancellation.
        assert!(r.metrics.dma_busy_cycles <= cy(300 * r.stats[0].releases));
    }

    #[test]
    fn skip_next_release_sheds_after_a_miss() {
        // 150 cycles of work per 100-cycle period: every completing job
        // misses, so every other release is shed. Shed releases still
        // count as releases (stable goodput denominator).
        let t = SporadicTask::new(
            "a",
            cy(100),
            cy(100),
            vec![Segment::new(cy(150), 0)],
            StagingMode::Resident,
        )
        .expect("valid")
        .with_miss_policy(MissPolicy::SkipNextRelease);
        let r = run(&TaskSet::from_tasks(vec![t]), 3000);
        assert!(r.stats[0].shed > 0);
        assert!(r.stats[0].completions > 0);
        assert!(r.stats[0].releases >= r.stats[0].shed + r.stats[0].completions);
        assert_eq!(r.metrics.shed_jobs, r.stats[0].shed);
        assert_eq!(r.trace.shed_or_aborted() as u64, r.stats[0].shed);
        // Shedding relieved the overload: the backlog stays bounded, so
        // fewer misses than under Continue.
        let cont = run(
            &TaskSet::from_tasks(vec![SporadicTask::new(
                "a",
                cy(100),
                cy(100),
                vec![Segment::new(cy(150), 0)],
                StagingMode::Resident,
            )
            .expect("valid")]),
            3000,
        );
        assert!(r.stats[0].misses <= cont.stats[0].misses);
    }

    /// Runs `cfg` under both engines and asserts byte-identical
    /// results — the equivalence gate in its directed form.
    fn assert_engines_agree(ts: &TaskSet, p: &PlatformConfig, cfg: &SimConfig) {
        let legacy = simulate(ts, p, &cfg.clone().with_engine(Engine::Legacy));
        let des = simulate(ts, p, &cfg.clone().with_engine(Engine::Des));
        assert_eq!(legacy.trace.events(), des.trace.events());
        assert_eq!(legacy.stats, des.stats);
        assert_eq!(legacy.metrics, des.metrics);
    }

    #[test]
    fn engines_agree_on_directed_scenarios() {
        let contended = {
            let mut p = bare_platform();
            p.contention = ContentionModel {
                cpu_inflation_ppm: 500_000,
                dma_inflation_ppm: 300_000,
            };
            p.context_switch_cycles = cy(10);
            p
        };
        for p in [bare_platform(), contended, PlatformConfig::stm32f746_qspi()] {
            // Mixed staging, preemption, and DMA-channel contention.
            let ts = TaskSet::from_tasks(vec![
                overlapped("a", 500, &[(40, 64), (60, 32)]),
                resident("b", 700, &[100, 80]),
                overlapped("c", 1300, &[(100, 500), (50, 200)]),
            ]);
            assert_engines_agree(&ts, &p, &SimConfig::new(cy(50_000), Policy::FixedPriority));
            assert_engines_agree(&ts, &p, &SimConfig::new(cy(50_000), Policy::Edf));
            assert_engines_agree(
                &ts,
                &p,
                &SimConfig::new(cy(50_000), Policy::FixedPriority).work_conserving(),
            );
            let mut jittered = SimConfig::new(cy(50_000), Policy::FixedPriority);
            jittered.exec_scale_min_ppm = 400_000;
            jittered.seed = 7;
            assert_engines_agree(&ts, &p, &jittered);
            assert_engines_agree(
                &ts,
                &p,
                &SimConfig::new(cy(50_000), Policy::FixedPriority).with_fault(fault_plan(3)),
            );
        }
    }

    #[test]
    fn engines_agree_under_miss_policies() {
        // Overloaded task sets exercising every deadline-miss policy,
        // including DMA cancellation under Abort.
        for policy in [
            MissPolicy::Continue,
            MissPolicy::SkipNextRelease,
            MissPolicy::Abort,
        ] {
            let t = SporadicTask::new(
                "a",
                cy(100),
                cy(100),
                vec![Segment::new(cy(80), 0), Segment::new(cy(80), 0)],
                StagingMode::Resident,
            )
            .expect("valid")
            .with_miss_policy(policy);
            let fetcher = SporadicTask::new(
                "b",
                cy(1000),
                cy(300),
                vec![Segment::new(cy(100), 500)],
                StagingMode::Overlapped,
            )
            .expect("valid")
            .with_miss_policy(policy);
            let ts = TaskSet::from_tasks(vec![t, fetcher]);
            let p = bare_platform();
            assert_engines_agree(&ts, &p, &SimConfig::new(cy(5000), Policy::FixedPriority));
            assert_engines_agree(
                &ts,
                &p,
                &SimConfig::new(cy(5000), Policy::FixedPriority).with_fault(fault_plan(11)),
            );
        }
    }

    #[test]
    fn des_defers_settlement_across_quiet_timer_instants() {
        // A long uncontended segment (8000 cycles) crossed by many
        // releases and deadline checks of a lower-priority task gated
        // behind it. The DES engine processes those timer cuts without
        // settling the segment's progress; it must still match the
        // legacy engine cycle for cycle.
        let long = resident("long", 100_000, &[8000]);
        let chatty = resident("chatty", 97, &[1]);
        let ts = TaskSet::from_tasks(vec![long, chatty]);
        let p = bare_platform();
        assert_engines_agree(&ts, &p, &SimConfig::new(cy(100_000), Policy::FixedPriority));
    }

    #[test]
    fn deadline_check_precedes_same_instant_release() {
        // D == T: job k's deadline check and job k+1's release share an
        // instant, and the check was scheduled first (at job k's
        // release) — FIFO ordering must process it first. Observable
        // consequence under SkipNextRelease: the very release sharing
        // the instant with the miss is the one shed.
        let t = SporadicTask::new(
            "a",
            cy(100),
            cy(100),
            vec![Segment::new(cy(150), 0)],
            StagingMode::Resident,
        )
        .expect("valid")
        .with_miss_policy(MissPolicy::SkipNextRelease);
        for engine in [Engine::Legacy, Engine::Des] {
            let r = simulate(
                &TaskSet::from_tasks(vec![t.clone()]),
                &bare_platform(),
                &SimConfig::new(cy(1000), Policy::FixedPriority).with_engine(engine),
            );
            let at_100: Vec<&TraceKind> = r
                .trace
                .events()
                .iter()
                .filter(|e| e.time == cy(100))
                .map(|e| &e.kind)
                .collect();
            let miss = at_100
                .iter()
                .position(|k| matches!(k, TraceKind::DeadlineMissed { .. }))
                .expect("job 0 misses at t=100");
            let shed = at_100
                .iter()
                .position(|k| matches!(k, TraceKind::ReleaseShed { .. }))
                .expect("release at t=100 is shed by the same-instant miss");
            assert!(miss < shed, "deadline check must precede the release");
        }
    }

    #[test]
    fn busy_idle_partition_and_stall_bounds_hold_under_both_engines() {
        let mut p = bare_platform();
        p.contention = ContentionModel {
            cpu_inflation_ppm: 700_000,
            dma_inflation_ppm: 400_000,
        };
        let ts = fault_taskset();
        for engine in [Engine::Legacy, Engine::Des] {
            let cfg = SimConfig::new(cy(50_000), Policy::FixedPriority)
                .with_fault(fault_plan(5))
                .with_engine(engine);
            let m = simulate(&ts, &p, &cfg).metrics;
            assert_eq!(m.cpu_busy_cycles + m.cpu_idle_cycles, cy(50_000));
            assert!(m.cpu_stall_cycles <= m.cpu_busy_cycles);
            assert!(m.dma_stall_cycles <= m.dma_busy_cycles);
            assert!(m.dma_busy_cycles <= cy(50_000));
        }
    }

    #[test]
    fn percentile_zero_has_no_witness() {
        let mut hist = ResponseHist::default();
        hist.record(cy(30));
        assert_eq!(hist.percentile_upper(0), None);
        assert_eq!(ResponseHist::default().percentile_upper(0), None);
    }

    #[test]
    #[should_panic(expected = "percentile must be at most 100")]
    fn percentile_above_100_panics() {
        let mut hist = ResponseHist::default();
        hist.record(cy(30));
        let _ = hist.percentile_upper(101);
    }

    #[test]
    fn percentile_stays_exact_when_count_saturates() {
        // Two full buckets: the true total (2·u64::MAX) overflows u64,
        // so `count()` saturates — but the rank walk is u128 and still
        // resolves each half to the right bucket top.
        let mut hist = ResponseHist::default();
        hist.buckets[3] = u64::MAX; // responses in [8, 16)
        hist.buckets[10] = u64::MAX; // responses in [1024, 2048)
        assert_eq!(hist.count(), u64::MAX);
        assert_eq!(hist.percentile_upper(50), Some(cy(15)));
        assert_eq!(hist.percentile_upper(51), Some(cy(2047)));
        assert_eq!(hist.percentile_upper(100), Some(cy(2047)));
    }
}
