//! Choice-scripted stepping: the simulator's nondeterminism surfaced
//! as an explicit oracle interface.
//!
//! A default [`simulate`](crate::sim::simulate) run resolves its three
//! sources of nondeterminism internally — per-job execution-time scales
//! from the seeded RNG, release jitter fixed at zero, and per-transfer
//! fault decisions from the [`FaultInjector`](rtmdm_mcusim::FaultInjector).
//! [`simulate_with_oracle`](crate::sim::simulate_with_oracle) instead
//! consults a caller-supplied [`SimOracle`] at every such point, in the
//! exact deterministic order the engines process events (the order is
//! engine-independent, pinned by the legacy/DES differential tests).
//!
//! Two consumers build on this:
//!
//! - the schedule-space explorer in `rtmdm-check` enumerates the answer
//!   lattice exhaustively, using the [`StateHash`] passed alongside each
//!   query to merge converging interleavings;
//! - [`ScriptOracle`] replays a recorded answer list verbatim — a
//!   violation witness is a `SimConfig` plus such a script, and replay
//!   reproduces the violating run step for step on either engine.

use serde::{Deserialize, Serialize};

use rtmdm_mcusim::Cycles;

/// A canonical 128-bit fingerprint of the simulator's dynamic state at
/// a choice point, computed over everything that determines future
/// behavior (clocks, job queues, resource occupancy, the pending-event
/// set) and nothing that does not (traces, statistics, metrics).
///
/// Equal hashes of states queried at the *same* [`ChoicePoint`] imply
/// identical future behavior under identical future answers, which is
/// what makes visited-state merging during exploration sound (up to the
/// 2⁻¹²⁸ collision probability, documented in `DESIGN.md` §2.5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StateHash(
    /// The two FNV-1a lanes, concatenated.
    pub u128,
);

/// A streaming FNV-1a hasher with two independently seeded 64-bit
/// lanes, used to fingerprint simulator state. FNV is used instead of
/// `std`'s `DefaultHasher` because its output must be stable across
/// Rust releases — state hashes are compared against exploration
/// budgets and logged in witnesses.
#[derive(Debug, Clone)]
pub struct StableHash {
    lo: u64,
    hi: u64,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

impl StableHash {
    /// A fresh hasher.
    #[allow(clippy::new_without_default)]
    pub fn new() -> StableHash {
        StableHash {
            lo: FNV_OFFSET,
            // A distinct offset basis decorrelates the second lane.
            hi: FNV_OFFSET ^ 0x9e37_79b9_7f4a_7c15,
        }
    }

    /// Feeds one 64-bit word.
    pub fn mix(&mut self, v: u64) {
        for byte in v.to_le_bytes() {
            self.lo = (self.lo ^ u64::from(byte)).wrapping_mul(FNV_PRIME);
            self.hi = (self.hi ^ u64::from(byte)).wrapping_mul(FNV_PRIME);
        }
    }

    /// Feeds a boolean as a full word (avoids ambiguity with adjacent
    /// small fields).
    pub fn mix_bool(&mut self, v: bool) {
        self.mix(u64::from(v));
    }

    /// Feeds an optional word, distinguishing `None` from `Some(0)`.
    pub fn mix_opt(&mut self, v: Option<u64>) {
        match v {
            None => self.mix(u64::MAX - 1),
            Some(x) => {
                self.mix(1);
                self.mix(x);
            }
        }
    }

    /// The 128-bit digest.
    pub fn finish(&self) -> StateHash {
        StateHash((u128::from(self.hi) << 64) | u128::from(self.lo))
    }
}

/// One nondeterministic decision the simulator is about to take.
///
/// The fields identify the decision site exactly (task index in the
/// simulated set's priority order, job id, and — for transfers — the
/// segment and retry attempt), so a recorded script can be audited
/// against the run it came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ChoicePoint {
    /// The execution-time scale of a job about to enter the system, in
    /// parts per million of WCET. Asked only when
    /// `SimConfig::exec_scale_min_ppm < 1_000_000`; the answer is
    /// clamped into `[min_ppm, 1_000_000]`.
    ExecScale {
        /// Task index.
        task: usize,
        /// Job id within the task.
        job: u64,
        /// Lower clamp, from `SimConfig::exec_scale_min_ppm`.
        min_ppm: u64,
    },
    /// Release jitter of a job: the job enters the system `jitter`
    /// cycles after its nominal release, while its absolute deadline
    /// stays anchored at the nominal release. Asked at every release
    /// when an oracle is attached; answering zero reproduces the
    /// default strictly-periodic arrival.
    ReleaseJitter {
        /// Task index.
        task: usize,
        /// Job id within the task.
        job: u64,
    },
    /// Whether the DMA transfer that just completed delivered corrupt
    /// data and must be re-issued. Asked only while the fault
    /// environment is active (`dma_fault_rate_ppm > 0`) and the attempt
    /// is below the retry budget — attempts at the budget never fault,
    /// mirroring the injector's contract.
    TransferFault {
        /// Task index.
        task: usize,
        /// Owning job id.
        job: u64,
        /// Segment being staged.
        seg: usize,
        /// 0-based retry attempt of the completed transfer.
        attempt: u32,
    },
}

/// An oracle's answer to one [`ChoicePoint`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Choice {
    /// Execution-time scale in parts per million of WCET.
    ExecScale(u64),
    /// Release jitter in cycles.
    ReleaseJitter(Cycles),
    /// Whether the transfer faulted.
    TransferFault(bool),
}

impl Choice {
    /// The scale answer, or `default` on a kind mismatch (a mismatched
    /// script degrades to the deterministic default rather than
    /// panicking mid-simulation).
    pub fn exec_scale_or(self, default: u64) -> u64 {
        match self {
            Choice::ExecScale(v) => v,
            _ => default,
        }
    }

    /// The jitter answer, or zero on a kind mismatch.
    pub fn release_jitter_or_zero(self) -> Cycles {
        match self {
            Choice::ReleaseJitter(v) => v,
            _ => Cycles::ZERO,
        }
    }

    /// The fault answer, or `false` on a kind mismatch.
    pub fn transfer_fault_or_false(self) -> bool {
        match self {
            Choice::TransferFault(v) => v,
            _ => false,
        }
    }

    /// The deterministic default answer for `point`: WCET scale, zero
    /// jitter, no fault — the spine every exploration starts from.
    pub fn default_for(point: &ChoicePoint) -> Choice {
        match point {
            ChoicePoint::ExecScale { .. } => Choice::ExecScale(1_000_000),
            ChoicePoint::ReleaseJitter { .. } => Choice::ReleaseJitter(Cycles::ZERO),
            ChoicePoint::TransferFault { .. } => Choice::TransferFault(false),
        }
    }
}

/// A recorded `(where, what)` pair — one line of a witness script.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScriptedChoice {
    /// The decision site, kept for auditability; replay matches answers
    /// to queries positionally, not by these fields.
    pub point: ChoicePoint,
    /// The answer given.
    pub value: Choice,
}

/// The interface the simulator consults at every nondeterministic
/// point when run through
/// [`simulate_with_oracle`](crate::sim::simulate_with_oracle).
///
/// `state` is the canonical fingerprint of the simulator's dynamic
/// state *at the query* (settled, so sub-cycle credits are canonical);
/// replay oracles ignore it, exploration oracles use it to merge
/// converging interleavings.
pub trait SimOracle {
    /// Answers one decision. Returning a mismatched [`Choice`] kind is
    /// tolerated and degrades to the deterministic default for the
    /// point.
    fn choose(&mut self, point: ChoicePoint, state: StateHash) -> Choice;
}

/// A replay oracle: answers queries from a fixed script in order, then
/// the deterministic default once the script is exhausted. This is the
/// witness-replay vehicle — the explorer serializes the choices that
/// led to a violation, and replaying them through either engine
/// reproduces the violating run exactly.
#[derive(Debug, Clone)]
pub struct ScriptOracle {
    script: Vec<ScriptedChoice>,
    cursor: usize,
}

impl ScriptOracle {
    /// An oracle replaying `script` positionally.
    pub fn new(script: Vec<ScriptedChoice>) -> ScriptOracle {
        ScriptOracle { script, cursor: 0 }
    }

    /// How many script entries were consumed so far.
    pub fn consumed(&self) -> usize {
        self.cursor.min(self.script.len())
    }
}

impl SimOracle for ScriptOracle {
    fn choose(&mut self, point: ChoicePoint, _state: StateHash) -> Choice {
        let answer = match self.script.get(self.cursor) {
            Some(entry) => entry.value,
            None => Choice::default_for(&point),
        };
        self.cursor += 1;
        answer
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn script_oracle_replays_then_defaults() {
        let script = vec![ScriptedChoice {
            point: ChoicePoint::ReleaseJitter { task: 0, job: 0 },
            value: Choice::ReleaseJitter(Cycles::new(17)),
        }];
        let mut o = ScriptOracle::new(script);
        let p = ChoicePoint::ReleaseJitter { task: 0, job: 0 };
        let h = StateHash(0);
        assert_eq!(o.choose(p, h), Choice::ReleaseJitter(Cycles::new(17)));
        assert_eq!(o.choose(p, h), Choice::ReleaseJitter(Cycles::ZERO));
        assert_eq!(o.consumed(), 1);
    }

    #[test]
    fn mismatched_choice_kinds_degrade_to_defaults() {
        let c = Choice::TransferFault(true);
        assert_eq!(c.exec_scale_or(1_000_000), 1_000_000);
        assert_eq!(c.release_jitter_or_zero(), Cycles::ZERO);
        assert!(c.transfer_fault_or_false());
        assert!(!Choice::ExecScale(5).transfer_fault_or_false());
    }

    #[test]
    fn stable_hash_is_order_sensitive_and_stable() {
        let mut a = StableHash::new();
        a.mix(1);
        a.mix(2);
        let mut b = StableHash::new();
        b.mix(2);
        b.mix(1);
        assert_ne!(a.finish(), b.finish());
        let mut c = StableHash::new();
        c.mix(1);
        c.mix(2);
        assert_eq!(a.finish(), c.finish());
        // None must differ from Some(0) and from the empty feed.
        let mut n = StableHash::new();
        n.mix_opt(None);
        let mut s = StableHash::new();
        s.mix_opt(Some(0));
        assert_ne!(n.finish(), s.finish());
        assert_ne!(n.finish(), StableHash::new().finish());
    }
}
