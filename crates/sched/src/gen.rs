//! Synthetic task-set generation for schedulability experiments.
//!
//! Follows the standard methodology of the real-time literature:
//! UUniFast utilizations, log-uniform periods, and — specific to this
//! system — per-task segment structures with a configurable
//! fetch-to-compute ratio that controls how external-memory-bound the
//! workload is.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use rtmdm_mcusim::{Cycles, PlatformConfig};

use crate::task::{Segment, SporadicTask, StagingMode, TaskSet};

/// Parameters of a random task set.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TasksetParams {
    /// Number of tasks.
    pub n_tasks: usize,
    /// Target total *compute* utilization in parts per million
    /// (UUniFast splits this across tasks).
    pub total_compute_util_ppm: u64,
    /// Period range in cycles, sampled log-uniformly.
    pub period_range: (u64, u64),
    /// Inclusive range of segment counts per task.
    pub segments_range: (usize, usize),
    /// Fetch work relative to compute work, in ppm: a segment with `C`
    /// compute cycles gets weights whose transfer costs ≈ `ratio × C`
    /// cycles on the target platform.
    pub fetch_compute_ratio_ppm: u64,
    /// Relative deadline as a fraction of the period, sampled uniformly
    /// from this ppm range (1 000 000 = implicit deadlines).
    pub deadline_factor_range_ppm: (u64, u64),
    /// Staging mode of the generated tasks.
    pub mode: StagingMode,
    /// When set, periods are drawn from this list (uniformly) instead
    /// of log-uniformly from `period_range` — useful to keep
    /// hyperperiods small for exhaustive simulation.
    pub period_choices: Option<Vec<u64>>,
}

impl TasksetParams {
    /// A sensible default shape: implicit deadlines, 4–10 segments,
    /// fetch work ≈ 40 % of compute work — a QSPI-flash-bound mix.
    pub fn baseline(n_tasks: usize, total_compute_util_ppm: u64) -> Self {
        TasksetParams {
            n_tasks,
            total_compute_util_ppm,
            period_range: (2_000_000, 80_000_000), // 10–400 ms at 200 MHz
            segments_range: (4, 10),
            fetch_compute_ratio_ppm: 400_000,
            deadline_factor_range_ppm: (1_000_000, 1_000_000),
            mode: StagingMode::Overlapped,
            period_choices: None,
        }
    }

    /// Switches to a harmonic-friendly period grid (milliseconds at
    /// 200 MHz) whose hyperperiod stays within two seconds, enabling
    /// the exhaustive synchronous-simulation acceptance check.
    pub fn with_grid_periods(mut self) -> Self {
        // 10, 20, 25, 40, 50, 80, 100, 200, 250, 400 ms — lcm 2000 ms.
        self.period_choices = Some(
            [10u64, 20, 25, 40, 50, 80, 100, 200, 250, 400]
                .iter()
                .map(|ms| ms * 200_000)
                .collect(),
        );
        self
    }
}

/// UUniFast: splits `total_ppm` across `n` values, each in
/// `[0, total_ppm]`, uniformly over the simplex. The shares sum to
/// `total_ppm` exactly: each share is floored to integer ppm and the
/// accumulated rounding deficit is folded into the final share, so the
/// generated set never systematically undershoots its utilization
/// target.
pub fn uunifast(n: usize, total_ppm: u64, rng: &mut StdRng) -> Vec<u64> {
    if n == 0 {
        return Vec::new();
    }
    let mut utils = Vec::with_capacity(n);
    let mut assigned = 0u64;
    let mut sum = total_ppm as f64 / 1e6;
    for i in 1..n {
        let next = sum * rng.gen::<f64>().powf(1.0 / (n - i) as f64);
        let share = (((sum - next) * 1e6) as u64).min(total_ppm - assigned);
        utils.push(share);
        assigned += share;
        sum = next;
    }
    utils.push(total_ppm - assigned);
    utils
}

/// Generates a deterministic random task set.
///
/// Tasks come out in no particular priority order; callers typically
/// apply [`rm_order`](crate::assign::rm_order) /
/// [`audsley`](crate::assign::audsley) before analysis. Each task's
/// total compute is `U_i × T_i`, split across its segments with
/// ±50 % relative variation; per-segment weight bytes are sized so that
/// the transfer time on `platform` matches the configured
/// fetch-to-compute ratio.
///
/// # Examples
///
/// ```rust
/// use rtmdm_mcusim::PlatformConfig;
/// use rtmdm_sched::gen::{generate, TasksetParams};
///
/// let p = PlatformConfig::stm32f746_qspi();
/// let ts = generate(&TasksetParams::baseline(5, 400_000), &p, 7);
/// assert_eq!(ts.len(), 5);
/// let again = generate(&TasksetParams::baseline(5, 400_000), &p, 7);
/// assert_eq!(ts, again);
/// ```
pub fn generate(params: &TasksetParams, platform: &PlatformConfig, seed: u64) -> TaskSet {
    let mut rng = StdRng::seed_from_u64(seed);
    let utils = uunifast(params.n_tasks, params.total_compute_util_ppm, &mut rng);
    let mut tasks = Vec::with_capacity(params.n_tasks);
    for (i, util_ppm) in utils.into_iter().enumerate() {
        let period = match &params.period_choices {
            Some(choices) => {
                assert!(!choices.is_empty(), "period_choices must be non-empty");
                choices[rng.gen_range(0..choices.len())]
            }
            None => {
                let (lo, hi) = params.period_range;
                log_uniform(lo, hi, &mut rng)
            }
        };
        let total_compute = (u128::from(period) * u128::from(util_ppm.max(1)) / 1_000_000) as u64;
        let total_compute = total_compute.max(100);

        let (smin, smax) = params.segments_range;
        let n_segs = rng.gen_range(smin..=smax.max(smin));
        let weights: Vec<f64> = (0..n_segs).map(|_| rng.gen_range(0.5..1.5)).collect();
        let wsum: f64 = weights.iter().sum();
        let mut segments = Vec::with_capacity(n_segs);
        let mut assigned = 0u64;
        for (k, w) in weights.iter().enumerate() {
            let compute = if k + 1 == n_segs {
                total_compute - assigned
            } else {
                let c = ((total_compute as f64) * w / wsum) as u64;
                assigned += c;
                c
            }
            .max(1);
            let fetch_cycles = (u128::from(compute) * u128::from(params.fetch_compute_ratio_ppm)
                / 1_000_000) as u64;
            let bytes = cycles_to_bytes(fetch_cycles, platform);
            segments.push(Segment::new(Cycles::new(compute), bytes));
        }

        let (dlo, dhi) = params.deadline_factor_range_ppm;
        let factor = if dlo >= dhi {
            dlo
        } else {
            rng.gen_range(dlo..=dhi)
        };
        let deadline =
            ((u128::from(period) * u128::from(factor.min(1_000_000)) / 1_000_000) as u64).max(1);

        tasks.push(
            SporadicTask::new(
                format!("gen{i}"),
                Cycles::new(period),
                Cycles::new(deadline),
                segments,
                params.mode,
            )
            .expect("generated task is valid by construction"),
        );
    }
    TaskSet::from_tasks(tasks)
}

/// Bytes whose streaming time is closest to `cycles` on `platform`
/// (0 for the ideal memory).
fn cycles_to_bytes(cycles: u64, platform: &PlatformConfig) -> u64 {
    let num = platform.ext_mem.cycles_per_byte_num;
    let den = platform.ext_mem.cycles_per_byte_den;
    if num == 0 {
        return 0;
    }
    (u128::from(cycles) * u128::from(den) / u128::from(num)) as u64
}

fn log_uniform(lo: u64, hi: u64, rng: &mut StdRng) -> u64 {
    assert!(lo > 0 && hi >= lo, "invalid period range");
    let (llo, lhi) = ((lo as f64).ln(), (hi as f64).ln());
    let v = rng.gen_range(llo..=lhi).exp();
    (v as u64).clamp(lo, hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn platform() -> PlatformConfig {
        PlatformConfig::stm32f746_qspi()
    }

    #[test]
    fn uunifast_sums_to_total_and_stays_positive() {
        let mut rng = StdRng::seed_from_u64(3);
        for n in [1usize, 2, 5, 20] {
            let utils = uunifast(n, 700_000, &mut rng);
            assert_eq!(utils.len(), n);
            let sum: u64 = utils.iter().sum();
            assert_eq!(sum, 700_000, "n={n}: shares must sum to total_ppm exactly");
        }
        assert!(uunifast(0, 500_000, &mut rng).is_empty());
    }

    #[test]
    fn generated_set_matches_target_utilization() {
        let params = TasksetParams::baseline(8, 500_000);
        let ts = generate(&params, &platform(), 11);
        let u = ts.compute_utilization_ppm();
        assert!(
            (450_000..=560_000).contains(&u),
            "target 0.5, got {} ppm",
            u
        );
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let params = TasksetParams::baseline(6, 400_000);
        assert_eq!(
            generate(&params, &platform(), 5),
            generate(&params, &platform(), 5)
        );
        assert_ne!(
            generate(&params, &platform(), 5),
            generate(&params, &platform(), 6)
        );
    }

    #[test]
    fn segment_counts_respect_range() {
        let mut params = TasksetParams::baseline(10, 300_000);
        params.segments_range = (3, 5);
        let ts = generate(&params, &platform(), 2);
        for t in ts.tasks() {
            assert!((3..=5).contains(&t.segment_count()), "{}", t.name);
        }
    }

    #[test]
    fn fetch_ratio_controls_weight_bytes() {
        let mut light = TasksetParams::baseline(5, 400_000);
        light.fetch_compute_ratio_ppm = 100_000;
        let mut heavy = light.clone();
        heavy.fetch_compute_ratio_ppm = 800_000;
        let p = platform();
        let tl = generate(&light, &p, 9);
        let th = generate(&heavy, &p, 9);
        let bytes =
            |ts: &TaskSet| -> u64 { ts.tasks().iter().map(|t| t.total_fetch_bytes()).sum() };
        assert!(bytes(&th) > 4 * bytes(&tl));
    }

    #[test]
    fn deadline_factor_produces_constrained_deadlines() {
        let mut params = TasksetParams::baseline(10, 300_000);
        params.deadline_factor_range_ppm = (600_000, 900_000);
        let ts = generate(&params, &platform(), 13);
        for t in ts.tasks() {
            assert!(t.deadline < t.period, "{}", t.name);
            assert!(t.deadline.get() * 10 >= t.period.get() * 5, "{}", t.name);
        }
    }

    #[test]
    fn grid_periods_come_from_the_grid() {
        let params = TasksetParams::baseline(20, 300_000).with_grid_periods();
        let ts = generate(&params, &platform(), 23);
        let grid = params.period_choices.as_ref().unwrap();
        for t in ts.tasks() {
            assert!(grid.contains(&t.period.get()), "{}", t.period);
        }
    }

    #[test]
    fn periods_stay_in_range() {
        let params = TasksetParams::baseline(30, 300_000);
        let ts = generate(&params, &platform(), 17);
        for t in ts.tasks() {
            assert!(t.period.get() >= params.period_range.0);
            assert!(t.period.get() <= params.period_range.1);
        }
    }

    #[test]
    fn ideal_memory_generates_zero_fetch() {
        let params = TasksetParams::baseline(4, 300_000);
        let ts = generate(&params, &PlatformConfig::ideal_sram(), 3);
        for t in ts.tasks() {
            assert_eq!(t.total_fetch_bytes(), 0);
        }
    }
}
