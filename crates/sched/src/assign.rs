//! Priority assignment for fixed-priority scheduling.
//!
//! - [`rm_order`] / [`dm_order`]: the classic rate- and
//!   deadline-monotonic orders;
//! - [`audsley`]: Audsley's optimal priority assignment over the RT-MDM
//!   analysis as an oracle. The analysis is OPA-compatible: a task's
//!   bound depends on *which* tasks have higher priority (through their
//!   occupancy and deadline-derived jitter) and on the lower-priority
//!   tasks only through their maximum segment lengths — not on the
//!   relative order within either group.

use rtmdm_mcusim::PlatformConfig;

use crate::analysis::rta_limited_preemption;
use crate::task::TaskSet;

/// Indices of tasks sorted rate-monotonically (shortest period first,
/// name as the deterministic tie-break).
pub fn rm_order(ts: &TaskSet) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..ts.len()).collect();
    idx.sort_by(|&a, &b| {
        let (ta, tb) = (&ts.tasks()[a], &ts.tasks()[b]);
        ta.period.cmp(&tb.period).then(ta.name.cmp(&tb.name))
    });
    idx
}

/// Indices of tasks sorted deadline-monotonically (shortest relative
/// deadline first, name as the deterministic tie-break).
pub fn dm_order(ts: &TaskSet) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..ts.len()).collect();
    idx.sort_by(|&a, &b| {
        let (ta, tb) = (&ts.tasks()[a], &ts.tasks()[b]);
        ta.deadline.cmp(&tb.deadline).then(ta.name.cmp(&tb.name))
    });
    idx
}

/// Audsley's optimal priority assignment using
/// [`rta_limited_preemption`] as the schedulability oracle.
///
/// Returns `Some(order)` — where `order[p]` is the original index of the
/// task assigned priority `p` (0 highest) — if an assignment exists
/// under which the analysis deems every task schedulable, `None`
/// otherwise. The returned order is deterministic (lowest original
/// index wins ties at each level).
///
/// # Examples
///
/// ```rust
/// use rtmdm_mcusim::{Cycles, PlatformConfig};
/// use rtmdm_sched::{Segment, SporadicTask, StagingMode, TaskSet};
/// use rtmdm_sched::assign::audsley;
///
/// # fn main() -> Result<(), rtmdm_sched::TaskError> {
/// let mk = |name: &str, period: u64, c: u64| SporadicTask::new(
///     name, Cycles::new(period), Cycles::new(period),
///     vec![rtmdm_sched::Segment::new(Cycles::new(c), 0)],
///     StagingMode::Resident,
/// );
/// let ts = TaskSet::from_tasks(vec![mk("slow", 10_000, 900)?, mk("fast", 1_000, 90)?]);
/// let order = audsley(&ts, &PlatformConfig::ideal_sram()).expect("schedulable");
/// // "fast" (original index 1) must get the top priority.
/// assert_eq!(order, vec![1, 0]);
/// # Ok(())
/// # }
/// ```
pub fn audsley(ts: &TaskSet, platform: &PlatformConfig) -> Option<Vec<usize>> {
    let n = ts.len();
    let mut unassigned: Vec<usize> = (0..n).collect();
    // Fill priorities from the lowest level upward.
    let mut order_rev: Vec<usize> = Vec::with_capacity(n);
    while !unassigned.is_empty() {
        let mut placed = None;
        for (pos, &cand) in unassigned.iter().enumerate() {
            if feasible_at_lowest(ts, &unassigned, cand, platform) {
                placed = Some(pos);
                break;
            }
        }
        let pos = placed?;
        order_rev.push(unassigned.remove(pos));
    }
    order_rev.reverse();
    Some(order_rev)
}

/// Whether task `cand` meets its deadline at the lowest priority among
/// `group` (all other group members strictly higher, in any order).
fn feasible_at_lowest(
    ts: &TaskSet,
    group: &[usize],
    cand: usize,
    platform: &PlatformConfig,
) -> bool {
    // Build a task set: higher-priority members first (arbitrary
    // internal order — the analysis is order-insensitive for them),
    // candidate last.
    let mut tasks: Vec<_> = group
        .iter()
        .filter(|&&i| i != cand)
        .map(|&i| ts.tasks()[i].clone())
        .collect();
    tasks.push(ts.tasks()[cand].clone());
    let subset = TaskSet::from_tasks(tasks);
    let outcome = rta_limited_preemption(&subset, platform);
    // Only the candidate's (last) bound matters at this level.
    match outcome.response.last().copied().flatten() {
        Some(r) => r <= ts.tasks()[cand].deadline,
        None => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::rta_limited_preemption;
    use crate::task::{Segment, SporadicTask, StagingMode};
    use rtmdm_mcusim::{ContentionModel, Cycles};

    fn cy(n: u64) -> Cycles {
        Cycles::new(n)
    }

    fn bare_platform() -> PlatformConfig {
        let mut p = PlatformConfig::stm32f746_qspi();
        p.contention = ContentionModel::NONE;
        p.context_switch_cycles = Cycles::ZERO;
        p.ext_mem.setup_cycles = Cycles::ZERO;
        p.ext_mem.cycles_per_byte_num = 1;
        p.ext_mem.cycles_per_byte_den = 1;
        p
    }

    fn t(name: &str, period: u64, deadline: u64, compute: u64) -> SporadicTask {
        SporadicTask::new(
            name,
            cy(period),
            cy(deadline),
            vec![Segment::new(cy(compute), 0)],
            StagingMode::Resident,
        )
        .expect("valid")
    }

    #[test]
    fn rm_and_dm_orders() {
        let ts = TaskSet::from_tasks(vec![
            t("a", 300, 100, 10),
            t("b", 100, 90, 10),
            t("c", 200, 200, 10),
        ]);
        assert_eq!(rm_order(&ts), vec![1, 2, 0]);
        assert_eq!(dm_order(&ts), vec![1, 0, 2]);
    }

    #[test]
    fn audsley_finds_the_obvious_order() {
        // Reverse-priority input: the long task listed first.
        let ts = TaskSet::from_tasks(vec![
            t("slow", 10_000, 10_000, 900),
            t("fast", 1_000, 1_000, 90),
        ]);
        let order = audsley(&ts, &bare_platform()).expect("schedulable");
        let reordered = ts.reordered(&order);
        assert!(rta_limited_preemption(&reordered, &bare_platform()).schedulable);
        assert_eq!(reordered.tasks()[0].name, "fast");
    }

    #[test]
    fn audsley_returns_none_for_infeasible_sets() {
        let ts = TaskSet::from_tasks(vec![t("a", 100, 100, 80), t("b", 100, 100, 80)]);
        assert_eq!(audsley(&ts, &bare_platform()), None);
    }

    #[test]
    fn audsley_beats_rm_on_constrained_deadlines() {
        // Classic DM-beats-RM shape: a long-period task with a tight
        // deadline. RM puts it last and misses; OPA can fix it.
        let ts = TaskSet::from_tasks(vec![t("loose", 100, 100, 40), t("tight", 400, 50, 9)]);
        let rm = ts.reordered(&rm_order(&ts));
        let rm_ok = rta_limited_preemption(&rm, &bare_platform()).schedulable;
        let opa = audsley(&ts, &bare_platform());
        assert!(opa.is_some(), "OPA should find an order");
        assert!(!rm_ok, "RM should fail on this set");
    }

    #[test]
    fn audsley_is_deterministic() {
        let ts = TaskSet::from_tasks(vec![
            t("a", 1000, 1000, 100),
            t("b", 1000, 1000, 100),
            t("c", 1000, 1000, 100),
        ]);
        let o1 = audsley(&ts, &bare_platform());
        let o2 = audsley(&ts, &bare_platform());
        assert_eq!(o1, o2);
    }

    #[test]
    fn empty_set_yields_empty_order() {
        assert_eq!(audsley(&TaskSet::new(), &bare_platform()), Some(vec![]));
    }
}
