//! # rtmdm-sched — real-time scheduling substrate of the RT-MDM reproduction
//!
//! Everything "RT" lives here: the segmented sporadic task model, the
//! event-driven scheduler simulator (one CPU + one DMA channel with bus
//! contention, preemption at segment boundaries), the schedulability
//! analyses that provide offline guarantees, priority assignment, the
//! synthetic task-set generator behind the schedulability-ratio
//! experiments, and the baseline strategies every comparison needs.
//!
//! The crate is deliberately independent of the DNN engine: segments are
//! raw `(compute cycles, fetch bytes)` pairs. `rtmdm-core` converts real
//! model segmentations into this form.
//!
//! ## Module map
//!
//! | module | contents |
//! |--------|----------|
//! | task model | [`Segment`], [`SporadicTask`], [`TaskSet`], [`StagingMode`] |
//! | [`sim`] | [`simulate`](sim::simulate), [`Policy`](sim::Policy), [`SimConfig`](sim::SimConfig) |
//! | [`analysis`] | RT-MDM RTA, memory-oblivious RTA, EDF demand test, utilization screens |
//! | [`assign`] | RM/DM orders, Audsley's OPA |
//! | [`gen`] | UUniFast task-set generation |
//! | [`baseline`] | B1/B2/B3 task transformations |
//!
//! ## Example: admit, then verify by simulation
//!
//! ```rust
//! use rtmdm_mcusim::{Cycles, PlatformConfig};
//! use rtmdm_sched::{Segment, SporadicTask, StagingMode, TaskSet};
//! use rtmdm_sched::analysis::rta_limited_preemption;
//! use rtmdm_sched::sim::{simulate, Policy, SimConfig};
//!
//! # fn main() -> Result<(), rtmdm_sched::TaskError> {
//! let platform = PlatformConfig::stm32f746_qspi();
//! let kws = SporadicTask::new(
//!     "kws", Cycles::new(20_000_000), Cycles::new(20_000_000),
//!     vec![Segment::new(Cycles::new(2_000_000), 12_000),
//!          Segment::new(Cycles::new(2_500_000), 11_000)],
//!     StagingMode::Overlapped,
//! )?;
//! let ts = TaskSet::from_tasks(vec![kws]);
//! let admitted = rta_limited_preemption(&ts, &platform);
//! assert!(admitted.schedulable);
//! let run = simulate(&ts, &platform,
//!     &SimConfig::new(Cycles::new(200_000_000), Policy::FixedPriority));
//! assert!(run.no_misses());
//! // The analytical bound dominates every observed response.
//! assert!(admitted.response_of(0).unwrap() >= run.max_response_of(0));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod assign;
pub mod baseline;
pub mod gen;
pub mod script;
pub mod sim;
mod task;

pub use task::{MissPolicy, Segment, SporadicTask, StagingMode, TaskError, TaskSet};
