//! Processor-demand schedulability test for segment-level EDF.
//!
//! Suspension-oblivious: each task's demand per job is its full isolated
//! pipeline latency `P_i` (suspension charged as computation), which is
//! sound for EDF. Limited preemption adds a blocking term: at any
//! absolute deadline `t`, a job with a later deadline may hold the CPU
//! for one non-preemptive segment.

use rtmdm_mcusim::{Cycles, PlatformConfig};

use crate::analysis::wcet::TaskTiming;
use crate::task::TaskSet;

/// Maximum number of deadline points the test inspects before giving up
/// and reporting "unschedulable" (a safe answer).
const MAX_CHECKPOINTS: usize = 200_000;

/// EDF processor-demand test with limited-preemption blocking.
///
/// Returns `true` only if, for every absolute deadline `t` up to the
/// analysis horizon,
///
/// ```text
/// B(t) + Σ_i max(0, ⌊(t − D_i)/T_i⌋ + 1) · P_i  ≤  t
/// ```
///
/// where `P_i` is the isolated pipeline latency and `B(t)` the largest
/// non-preemptive segment (CPU + one DMA transfer) of any task with
/// `D_l > t`. The horizon is the standard busy-period bound; if the
/// occupancy utilization is ≥ 1 the set is rejected immediately.
///
/// # Examples
///
/// ```rust
/// use rtmdm_mcusim::{Cycles, PlatformConfig};
/// use rtmdm_sched::{Segment, SporadicTask, StagingMode, TaskSet};
/// use rtmdm_sched::analysis::edf_demand_test;
///
/// # fn main() -> Result<(), rtmdm_sched::TaskError> {
/// let t = SporadicTask::new(
///     "t", Cycles::new(1_000), Cycles::new(1_000),
///     vec![Segment::new(Cycles::new(100), 0)], StagingMode::Resident,
/// )?;
/// assert!(edf_demand_test(
///     &TaskSet::from_tasks(vec![t]),
///     &PlatformConfig::ideal_sram(),
/// ));
/// # Ok(())
/// # }
/// ```
pub fn edf_demand_test(ts: &TaskSet, platform: &PlatformConfig) -> bool {
    if ts.is_empty() {
        return true;
    }
    let timings: Vec<TaskTiming> = ts
        .tasks()
        .iter()
        .map(|t| TaskTiming::derive(t, platform))
        .collect();

    // Per-job demand charge: the occupancy (CPU work + DMA work; any
    // instant a job consumes either resource is attributed to it once).
    let per_job: Vec<Cycles> = timings.iter().map(|tt| tt.occupancy).collect();

    // Charged-demand utilization must be below 1 (this also bounds the
    // busy period below).
    let util_ppm: u64 = ts
        .tasks()
        .iter()
        .zip(&per_job)
        .map(|(t, c)| crate::task::ratio_ppm(c.get(), t.period.get()))
        .sum();
    if util_ppm >= 1_000_000 {
        return false;
    }

    // Busy-period style horizon:
    //   L = max(D_max, Σ(T_i − D_i)·U_i / (1 − U)) with U in ppm.
    let d_max = ts
        .tasks()
        .iter()
        .map(|t| t.deadline)
        .max()
        .unwrap_or(Cycles::ZERO);
    let numer: u128 = ts
        .tasks()
        .iter()
        .zip(&per_job)
        .map(|(t, c)| {
            let slack = t.period.saturating_sub(t.deadline).get();
            let u = crate::task::ratio_ppm(c.get(), t.period.get());
            u128::from(slack) * u128::from(u)
        })
        .sum();
    let denom = u128::from(1_000_000 - util_ppm);
    let la = (numer / denom.max(1)) as u64;
    let horizon = d_max.max(Cycles::new(la));

    // Enumerate absolute deadlines ≤ horizon, in order, via a heap-free
    // merge: step each task's deadline sequence.
    let mut next_deadline: Vec<Cycles> = ts.tasks().iter().map(|t| t.deadline).collect();
    let mut checked = 0usize;
    loop {
        let Some((idx, &t)) = next_deadline
            .iter()
            .enumerate()
            .filter(|(_, &d)| d <= horizon)
            .min_by_key(|(_, &d)| d)
        else {
            return true; // all deadline points passed
        };
        checked += 1;
        if checked > MAX_CHECKPOINTS {
            return false; // give up safely
        }

        // Demand at t.
        let mut demand = Cycles::ZERO;
        for (task, charge) in ts.tasks().iter().zip(&per_job) {
            if t >= task.deadline {
                let jobs = (t - task.deadline).get() / task.period.get() + 1;
                demand = match charge.checked_mul(jobs).and_then(|d| demand.checked_add(d)) {
                    Some(d) => d,
                    None => return false,
                };
            }
        }
        // Blocking from tasks with later deadlines: one non-preemptive
        // segment. Their DMA traffic needs no charge — the channel is
        // priority-preemptive, so an earlier-deadline fetch takes it
        // immediately.
        let seg_blocking = ts
            .tasks()
            .iter()
            .zip(&timings)
            .filter(|(task, _)| task.deadline > t)
            .map(|(_, tt)| tt.max_exec_segment)
            .max()
            .unwrap_or(Cycles::ZERO);
        if demand
            .checked_add(seg_blocking)
            .is_none_or(|total| total > t)
        {
            return false;
        }
        next_deadline[idx] += ts.tasks()[idx].period;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::{Segment, SporadicTask, StagingMode};
    use rtmdm_mcusim::ContentionModel;

    fn cy(n: u64) -> Cycles {
        Cycles::new(n)
    }

    fn bare_platform() -> PlatformConfig {
        let mut p = PlatformConfig::stm32f746_qspi();
        p.contention = ContentionModel::NONE;
        p.context_switch_cycles = Cycles::ZERO;
        p.ext_mem.setup_cycles = Cycles::ZERO;
        p.ext_mem.cycles_per_byte_num = 1;
        p.ext_mem.cycles_per_byte_den = 1;
        p
    }

    fn resident(name: &str, period: u64, deadline: u64, compute: u64) -> SporadicTask {
        SporadicTask::new(
            name,
            cy(period),
            cy(deadline),
            vec![Segment::new(cy(compute), 0)],
            StagingMode::Resident,
        )
        .expect("valid")
    }

    #[test]
    fn light_load_is_schedulable() {
        let ts = TaskSet::from_tasks(vec![
            resident("a", 100, 100, 10),
            resident("b", 200, 200, 20),
            resident("c", 400, 400, 40),
        ]);
        assert!(edf_demand_test(&ts, &bare_platform()));
    }

    #[test]
    fn over_utilization_is_rejected() {
        let ts = TaskSet::from_tasks(vec![
            resident("a", 100, 100, 60),
            resident("b", 100, 100, 60),
        ]);
        assert!(!edf_demand_test(&ts, &bare_platform()));
    }

    /// A task whose compute is split into several short non-preemptive
    /// segments — small blocking on everyone else.
    fn segmented(name: &str, period: u64, deadline: u64, seg: u64, count: usize) -> SporadicTask {
        SporadicTask::new(
            name,
            cy(period),
            cy(deadline),
            (0..count).map(|_| Segment::new(cy(seg), 0)).collect(),
            StagingMode::Resident,
        )
        .expect("valid")
    }

    #[test]
    fn fine_segmentation_keeps_high_utilization_schedulable() {
        // a: 40/100; b: 80/200 split into 4×20 segments, so the
        // blocking at a's deadlines is only 20.
        let ts = TaskSet::from_tasks(vec![
            resident("a", 100, 100, 40),
            segmented("b", 200, 200, 20, 4),
        ]);
        assert!(edf_demand_test(&ts, &bare_platform()));
    }

    #[test]
    fn coarse_blocking_fails_where_fine_segmentation_passes() {
        // Same load, but b as one 80-cycle non-preemptive block:
        // demand(100) = 40 + blocking 80 = 120 > 100.
        let coarse = TaskSet::from_tasks(vec![
            resident("a", 100, 100, 40),
            resident("b", 200, 200, 80),
        ]);
        assert!(!edf_demand_test(&coarse, &bare_platform()));
    }

    #[test]
    fn constrained_deadlines_tighten_the_test() {
        let relaxed = TaskSet::from_tasks(vec![
            resident("a", 100, 100, 40),
            segmented("b", 200, 200, 20, 4),
        ]);
        assert!(edf_demand_test(&relaxed, &bare_platform()));
        let tight = TaskSet::from_tasks(vec![
            resident("a", 100, 45, 40),
            segmented("b", 200, 90, 20, 4),
        ]);
        assert!(!edf_demand_test(&tight, &bare_platform()));
    }

    #[test]
    fn staging_cost_counts_toward_demand() {
        let p = bare_platform();
        let heavy_fetch = SporadicTask::new(
            "f",
            cy(1_000),
            cy(1_000),
            vec![Segment::new(cy(100), 800)],
            StagingMode::Overlapped,
        )
        .expect("valid");
        // P = 800 + 100 = 900 per 1000 → fine alone…
        assert!(edf_demand_test(
            &TaskSet::from_tasks(vec![heavy_fetch.clone()]),
            &p
        ));
        // …but not alongside anything else.
        let ts = TaskSet::from_tasks(vec![heavy_fetch, resident("r", 1_000, 1_000, 200)]);
        assert!(!edf_demand_test(&ts, &p));
    }

    #[test]
    fn empty_set_is_trivially_schedulable() {
        assert!(edf_demand_test(&TaskSet::new(), &bare_platform()));
    }
}
