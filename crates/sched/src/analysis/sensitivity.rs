//! Sensitivity analysis: how much headroom does an admitted set have?
//!
//! Scales every segment's compute time by a common factor and binary
//! searches for the largest factor the RT-MDM analysis still admits —
//! the classic "critical scaling factor" a system designer uses to
//! judge robustness against WCET underestimation.

use rtmdm_mcusim::PlatformConfig;

use crate::analysis::rta::{rta_limited_preemption_with, SchedulerMode};
use crate::task::{Segment, SporadicTask, TaskSet};

/// Upper bound of the search range: 4× the nominal WCETs.
const MAX_SCALE_PPM: u64 = 4_000_000;

/// Returns a copy of the set with every segment's compute scaled by
/// `scale_ppm / 1e6` (fetch bytes unchanged), rounding up.
///
/// Scaling is **monotone**: a larger `scale_ppm` never yields a smaller
/// scaled WCET. The rounded-up 128-bit product guarantees that below
/// the `u64` boundary, and results past it saturate at `Cycles::MAX`
/// instead of panicking — conservative (an unrepresentable WCET reads
/// as "never finishes", which can only turn an admit into a reject) and
/// total, so a fleet query with absurd WCETs cannot kill a server. At
/// exactly `1_000_000` ppm the division is exact and scaling is the
/// identity.
pub fn scaled_taskset(ts: &TaskSet, scale_ppm: u64) -> TaskSet {
    ts.tasks()
        .iter()
        .map(|t| SporadicTask {
            name: t.name.clone(),
            period: t.period,
            deadline: t.deadline,
            segments: t
                .segments
                .iter()
                .map(|s| {
                    Segment::new(
                        s.compute
                            .saturating_mul_ratio_ceil(scale_ppm.max(1), 1_000_000),
                        s.fetch_bytes,
                    )
                })
                .collect(),
            mode: t.mode,
            miss_policy: t.miss_policy,
        })
        .collect()
}

/// The largest compute-scaling factor (in ppm) at which the analysis
/// still admits the set, searched to a 0.1 % resolution; 0 if even a
/// vanishing compute load is rejected (e.g. staging alone overruns a
/// deadline).
///
/// # Examples
///
/// ```rust
/// use rtmdm_mcusim::{Cycles, PlatformConfig};
/// use rtmdm_sched::{Segment, SporadicTask, StagingMode, TaskSet};
/// use rtmdm_sched::analysis::{critical_scaling_ppm, SchedulerMode};
///
/// # fn main() -> Result<(), rtmdm_sched::TaskError> {
/// let t = SporadicTask::new(
///     "t", Cycles::new(1_000), Cycles::new(1_000),
///     vec![Segment::new(Cycles::new(250), 0)], StagingMode::Resident,
/// )?;
/// let ts = TaskSet::from_tasks(vec![t]);
/// let limit = critical_scaling_ppm(&ts, &PlatformConfig::ideal_sram(), SchedulerMode::Gated);
/// // 250 cycles of compute (plus a 400-cycle context switch) per
/// // 1000-cycle deadline: ≈2.4× headroom.
/// assert!(limit > 2_000_000);
/// # Ok(())
/// # }
/// ```
pub fn critical_scaling_ppm(ts: &TaskSet, platform: &PlatformConfig, mode: SchedulerMode) -> u64 {
    let admits = |ppm: u64| -> bool {
        rta_limited_preemption_with(&scaled_taskset(ts, ppm), platform, mode).schedulable
    };
    if !admits(1_000) {
        return 0;
    }
    if admits(MAX_SCALE_PPM) {
        return MAX_SCALE_PPM;
    }
    // Invariant: admits(lo) && !admits(hi). The midpoint is computed as
    // lo + (hi - lo)/2, which cannot overflow for any u64 bounds, and
    // with hi - lo > 1_000 it satisfies lo < mid < hi, so the bracket
    // shrinks strictly every iteration — no oscillation, guaranteed
    // termination. Monotonicity of scaled_taskset (see above) makes the
    // admit predicate monotone even for WCETs that saturate at the u64
    // boundary, so the bracket stays valid.
    let (mut lo, mut hi) = (1_000u64, MAX_SCALE_PPM);
    while hi - lo > 1_000 {
        let mid = lo + (hi - lo) / 2;
        if admits(mid) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    lo
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::StagingMode;
    use rtmdm_mcusim::{ContentionModel, Cycles};

    fn cy(n: u64) -> Cycles {
        Cycles::new(n)
    }

    fn bare_platform() -> PlatformConfig {
        let mut p = PlatformConfig::stm32f746_qspi();
        p.contention = ContentionModel::NONE;
        p.context_switch_cycles = Cycles::ZERO;
        p.ext_mem.setup_cycles = Cycles::ZERO;
        p.ext_mem.cycles_per_byte_num = 1;
        p.ext_mem.cycles_per_byte_den = 1;
        p
    }

    fn resident(name: &str, period: u64, compute: u64) -> SporadicTask {
        SporadicTask::new(
            name,
            cy(period),
            cy(period),
            vec![Segment::new(cy(compute), 0)],
            StagingMode::Resident,
        )
        .expect("valid")
    }

    #[test]
    fn scaling_preserves_structure_and_rounds_up() {
        let ts = TaskSet::from_tasks(vec![resident("a", 100, 3)]);
        let double = scaled_taskset(&ts, 2_000_000);
        assert_eq!(double.tasks()[0].segments[0].compute, cy(6));
        let third = scaled_taskset(&ts, 333_334);
        assert_eq!(third.tasks()[0].segments[0].compute, cy(2)); // ceil
        assert_eq!(double.tasks()[0].period, cy(100));
    }

    #[test]
    fn limit_brackets_the_admission_boundary() {
        let p = bare_platform();
        let ts = TaskSet::from_tasks(vec![resident("a", 100, 30), resident("b", 200, 40)]);
        let limit = critical_scaling_ppm(&ts, &p, SchedulerMode::Gated);
        assert!(limit >= 1_000_000, "admitted set must have scale ≥ 1");
        assert!(
            rta_limited_preemption_with(&scaled_taskset(&ts, limit), &p, SchedulerMode::Gated)
                .schedulable
        );
        if limit < MAX_SCALE_PPM {
            assert!(
                !rta_limited_preemption_with(
                    &scaled_taskset(&ts, limit + 20_000),
                    &p,
                    SchedulerMode::Gated
                )
                .schedulable
            );
        }
    }

    #[test]
    fn identity_scale_is_a_no_op() {
        // 1_000_000 ppm is exactly 1.0: the scaled set must equal the
        // input, including a WCET at the u64 boundary where any rounding
        // slack or saturation would show.
        let boundary = SporadicTask::new(
            "b",
            cy(1_000),
            cy(1_000),
            vec![Segment::new(Cycles::MAX, 7), Segment::new(cy(3), 0)],
            StagingMode::Overlapped,
        )
        .expect("valid");
        let ts = TaskSet::from_tasks(vec![resident("a", 100, 3), boundary]);
        assert_eq!(scaled_taskset(&ts, 1_000_000), ts);
    }

    #[test]
    fn near_overflow_wcets_scale_monotonically_without_panicking() {
        let huge = resident("h", 1_000, u64::MAX - 1);
        let ts = TaskSet::from_tasks(vec![huge]);
        let mut prev = Cycles::ZERO;
        for ppm in [999_999u64, 1_000_000, 1_000_001, 2_000_000, MAX_SCALE_PPM] {
            let scaled = scaled_taskset(&ts, ppm).tasks()[0].segments[0].compute;
            assert!(scaled >= prev, "scale {ppm} ppm shrank the WCET");
            prev = scaled;
        }
        // Past the boundary the WCET saturates at the "never" sentinel.
        assert_eq!(prev, Cycles::MAX);
    }

    #[test]
    fn critical_scaling_survives_boundary_wcets() {
        // A set that is wildly infeasible because its WCET is already at
        // the u64 boundary: the search must return 0 without panicking
        // anywhere in the scaled analysis.
        let ts = TaskSet::from_tasks(vec![resident("x", 1_000, u64::MAX - 1)]);
        assert_eq!(
            critical_scaling_ppm(&ts, &bare_platform(), SchedulerMode::Gated),
            0
        );
    }

    #[test]
    fn infeasible_staging_yields_zero() {
        // Fetch time alone exceeds the deadline; no compute scale helps.
        let t = SporadicTask::new(
            "f",
            cy(1_000),
            cy(1_000),
            vec![Segment::new(cy(10), 5_000)],
            StagingMode::Overlapped,
        )
        .expect("valid");
        let ts = TaskSet::from_tasks(vec![t]);
        assert_eq!(
            critical_scaling_ppm(&ts, &bare_platform(), SchedulerMode::Gated),
            0
        );
    }

    #[test]
    fn lighter_sets_have_more_headroom() {
        let p = bare_platform();
        let light = TaskSet::from_tasks(vec![resident("a", 1000, 100)]);
        let heavy = TaskSet::from_tasks(vec![resident("a", 1000, 600)]);
        assert!(
            critical_scaling_ppm(&light, &p, SchedulerMode::Gated)
                > critical_scaling_ppm(&heavy, &p, SchedulerMode::Gated)
        );
    }
}
