//! Response-time analyses for segment-level fixed-priority scheduling.
//!
//! The RT-MDM analysis ([`rta_limited_preemption`]) is a sound,
//! deliberately conservative response-time analysis for the framework's
//! execution model:
//!
//! - **segment-level non-preemption** — a lower-priority segment in
//!   flight blocks a newly-ready higher-priority task once per point at
//!   which that task (re)claims the CPU ([`TaskTiming::resume_points`]);
//! - **DMA self-suspension** — a task whose next fetch is not hidden by
//!   its compute yields the CPU and resumes later; its own such gaps are
//!   inside [`TaskTiming::pipeline_latency`], and as an *interferer* it
//!   is charged with suspension-induced release jitter `D_j − occ_j`;
//! - **two-resource interference** — a higher-priority job can steal
//!   both CPU cycles (`Σe`) and DMA cycles (`ΣF`) from the task under
//!   analysis; the analysis charges the full occupancy `Σe + ΣF` per
//!   interfering job, which upper-bounds any interleaving;
//! - **bus contention** — every `e`/`F` is pre-inflated at the
//!   worst-case contended rate (see [`TaskTiming::derive`]).
//!
//! [`rta_memory_oblivious`] is the cautionary baseline B4: a classic
//! fully-preemptive RTA on raw compute times that ignores staging,
//! contention, and blocking entirely. It is *unsound* for this system —
//! experiment F3 demonstrates task sets it admits missing deadlines in
//! simulation.

use serde::{Deserialize, Serialize};

use rtmdm_mcusim::{Cycles, PlatformConfig};

use crate::analysis::wcet::TaskTiming;
use crate::task::TaskSet;

/// Result of a schedulability analysis over a task set.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AnalysisOutcome {
    /// Whether every task's bound meets its deadline.
    pub schedulable: bool,
    /// Per-task worst-case response-time bound; `None` when the fixed
    /// point diverged past the divergence cap (definitely unschedulable).
    pub response: Vec<Option<Cycles>>,
}

impl AnalysisOutcome {
    /// The response bound of task `idx`, if it converged.
    pub fn response_of(&self, idx: usize) -> Option<Cycles> {
        self.response.get(idx).copied().flatten()
    }
}

/// Iteration limit for each task's fixed point.
const MAX_ITERATIONS: usize = 5_000;

/// The dispatch discipline the analysis models (must match the
/// simulator's [`SimConfig::work_conserving`](crate::sim::SimConfig)).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum SchedulerMode {
    /// Priority-gated (non-work-conserving): while the highest-priority
    /// active job waits for its DMA, the CPU idles. Lower-priority
    /// blocking strikes at most once per job, but a higher-priority
    /// job's *gaps* also steal CPU time, so interference is charged at
    /// the full pipeline latency.
    #[default]
    Gated,
    /// Work-conserving: any staged segment may run. Interference is only
    /// the higher-priority occupancy, but every fetching boundary of the
    /// task under analysis is exposed to one more lower-priority
    /// non-preemptive segment.
    WorkConserving,
}

/// The RT-MDM response-time analysis for segment-level fixed-priority
/// scheduling with DMA staging, under the default priority-gated
/// dispatcher. Task index = priority (0 highest).
///
/// For each task `i` (priority order), iterates
///
/// ```text
/// R = B_i + P_i + Σ_{j < i} ⌈(R + J_j) / T_j⌉ · occ_j
/// ```
///
/// The bound rests on an attribution argument: every instant of `R` at
/// which task `i` makes no progress has exactly one cause, and each
/// cause's total is bounded —
///
/// - **own pipeline** `P_i`: `i`'s isolated fetch/compute schedule
///   (fetch-only instants included — the stage model is
///   `max(e_k, F_{k+1})`);
/// - **higher-priority occupancy** `occ_j = Σe_j + ΣF_j`: whether the
///   CPU runs `j` or the gated CPU idles while the DMA serves `j`, the
///   instant is `j`'s, and a job of `j` owns at most `occ_j` instants
///   (`J_j = D_j − occ_j` is its suspension-induced release jitter);
/// - **lower-priority segment blocking** `B_i`: gated — one segment in
///   flight at arrival, `max_lp(e)`; work-conserving — one per resume
///   point.
///
/// Lower-priority **DMA** traffic needs no term at all: the DMA channel
/// is priority-preemptive (descriptor-chained transfers switch at burst
/// granularity), so whenever `i` or a higher-priority task needs the
/// channel it takes it immediately, and any contention slowdown a
/// background transfer inflicts on compute is already inside the
/// fully-inflated `e`/`F` values.
///
/// See [`rta_limited_preemption_with`] for the work-conserving variant.
///
/// # Examples
///
/// ```rust
/// use rtmdm_mcusim::{Cycles, PlatformConfig};
/// use rtmdm_sched::{Segment, SporadicTask, StagingMode, TaskSet};
/// use rtmdm_sched::analysis::rta_limited_preemption;
///
/// # fn main() -> Result<(), rtmdm_sched::TaskError> {
/// let t = SporadicTask::new(
///     "kws",
///     Cycles::new(1_000_000),
///     Cycles::new(1_000_000),
///     vec![Segment::new(Cycles::new(50_000), 8_192)],
///     StagingMode::Overlapped,
/// )?;
/// let outcome = rta_limited_preemption(
///     &TaskSet::from_tasks(vec![t]),
///     &PlatformConfig::stm32f746_qspi(),
/// );
/// assert!(outcome.schedulable);
/// # Ok(())
/// # }
/// ```
pub fn rta_limited_preemption(ts: &TaskSet, platform: &PlatformConfig) -> AnalysisOutcome {
    rta_limited_preemption_with(ts, platform, SchedulerMode::Gated)
}

/// The RT-MDM response-time analysis under an explicit
/// [`SchedulerMode`] (see [`rta_limited_preemption`] for the formula).
pub fn rta_limited_preemption_with(
    ts: &TaskSet,
    platform: &PlatformConfig,
    mode: SchedulerMode,
) -> AnalysisOutcome {
    let timings: Vec<TaskTiming> = ts
        .tasks()
        .iter()
        .map(|t| TaskTiming::derive(t, platform))
        .collect();
    let mut response = Vec::with_capacity(ts.len());
    let mut schedulable = true;

    for (i, task) in ts.tasks().iter().enumerate() {
        let blocking = blocking_bound(&timings, i, mode);
        let r = fixed_point(
            ts,
            &timings,
            i,
            blocking + timings[i].pipeline_latency,
            mode,
        );
        match r {
            Some(r) => {
                if r > task.deadline {
                    schedulable = false;
                }
                response.push(Some(r));
            }
            None => {
                schedulable = false;
                response.push(None);
            }
        }
    }
    AnalysisOutcome {
        schedulable,
        response,
    }
}

/// Analysis-side decomposition of one task's converged response-time
/// bound — the per-cause totals behind the fixed point
/// `R = B_i + P_i + I_i`.
///
/// This is the analytical mirror of the measured blame decomposition
/// (`rtmdm explain`): `blocking` upper-bounds the lower-priority share
/// of measured preemption, `interference` upper-bounds the
/// higher-priority share plus any gated dispatch wait charged to
/// higher-priority DMA traffic, and `pipeline` upper-bounds the job's
/// own compute + contention + blocking-fetch time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct InterferenceBound {
    /// Lower-priority non-preemptive segment blocking `B_i`.
    pub blocking: Cycles,
    /// The task's own isolated pipeline latency `P_i`.
    pub pipeline: Cycles,
    /// Higher-priority occupancy at the converged response,
    /// `Σ_{j<i} ⌈(R + J_j)/T_j⌉ · occ_j`.
    pub interference: Cycles,
    /// The converged bound `R = blocking + pipeline + interference`.
    pub response: Cycles,
}

/// Per-task decomposition of the [`rta_limited_preemption_with`] bounds
/// into their blocking / pipeline / interference terms.
///
/// Entry `i` is `None` exactly when the fixed point for task `i`
/// diverged (the same tasks whose [`AnalysisOutcome::response`] entry is
/// `None`). For converged tasks the identity
/// `response == blocking + pipeline + interference` holds exactly.
///
/// # Examples
///
/// ```rust
/// use rtmdm_mcusim::{Cycles, PlatformConfig};
/// use rtmdm_sched::{Segment, SporadicTask, StagingMode, TaskSet};
/// use rtmdm_sched::analysis::{interference_bounds, SchedulerMode};
///
/// # fn main() -> Result<(), rtmdm_sched::TaskError> {
/// let t = SporadicTask::new(
///     "kws",
///     Cycles::new(1_000_000),
///     Cycles::new(1_000_000),
///     vec![Segment::new(Cycles::new(50_000), 8_192)],
///     StagingMode::Overlapped,
/// )?;
/// let ts = TaskSet::from_tasks(vec![t]);
/// let bounds = interference_bounds(
///     &ts,
///     &PlatformConfig::stm32f746_qspi(),
///     SchedulerMode::Gated,
/// );
/// let b = bounds[0].expect("converged");
/// assert_eq!(b.response, b.blocking + b.pipeline + b.interference);
/// # Ok(())
/// # }
/// ```
pub fn interference_bounds(
    ts: &TaskSet,
    platform: &PlatformConfig,
    mode: SchedulerMode,
) -> Vec<Option<InterferenceBound>> {
    let timings: Vec<TaskTiming> = ts
        .tasks()
        .iter()
        .map(|t| TaskTiming::derive(t, platform))
        .collect();
    (0..ts.len())
        .map(|i| {
            let blocking = blocking_bound(&timings, i, mode);
            let pipeline = timings[i].pipeline_latency;
            let response = fixed_point(ts, &timings, i, blocking + pipeline, mode)?;
            // At the fixed point R = base + Σ interference, so the
            // higher-priority term is exactly the remainder.
            let interference = response.saturating_sub(blocking + pipeline);
            Some(InterferenceBound {
                blocking,
                pipeline,
                interference,
                response,
            })
        })
        .collect()
}

/// Blocking bound of task `i` from lower-priority non-preemptive
/// segments.
fn blocking_bound(timings: &[TaskTiming], i: usize, mode: SchedulerMode) -> Cycles {
    let max_lp_exec = timings[i + 1..]
        .iter()
        .map(|t| t.max_exec_segment)
        .max()
        .unwrap_or(Cycles::ZERO);
    match mode {
        // Gated: lower-priority segments cannot start while i is active,
        // so only a segment already in flight at i's release blocks.
        SchedulerMode::Gated => max_lp_exec,
        // Work-conserving: every DMA wait of i lets one more
        // lower-priority segment in.
        SchedulerMode::WorkConserving => max_lp_exec * timings[i].resume_points,
    }
}

/// Iterates the response-time fixed point for task `i` with the given
/// initial value. Returns `None` if it fails to converge within
/// [`MAX_ITERATIONS`] or overflows the divergence cap (16 × period).
fn fixed_point(
    ts: &TaskSet,
    timings: &[TaskTiming],
    i: usize,
    base: Cycles,
    mode: SchedulerMode,
) -> Option<Cycles> {
    let cap = ts.tasks()[i].period.checked_mul(16)?;
    let _ = mode; // interference is mode-independent; blocking differs
    let mut r = base;
    for _ in 0..MAX_ITERATIONS {
        let mut next = base;
        // Higher-priority occupancy with suspension-induced jitter.
        for (j, hp) in ts.tasks().iter().enumerate().take(i) {
            let demand = timings[j].occupancy;
            let jitter = hp.deadline.saturating_sub(demand);
            let window = r.checked_add(jitter)?;
            let jobs = window.get().div_ceil(hp.period.get());
            next = next.checked_add(demand.checked_mul(jobs)?)?;
        }
        if next == r {
            return Some(r);
        }
        if next > cap {
            return None;
        }
        r = next;
    }
    None
}

/// Baseline B4: classic fully-preemptive response-time analysis on raw
/// compute times, ignoring staging, contention, context switches, and
/// blocking. **Unsound for this system** — provided to reproduce the
/// admits-then-misses behaviour of memory-oblivious admission.
pub fn rta_memory_oblivious(ts: &TaskSet, _platform: &PlatformConfig) -> AnalysisOutcome {
    let comps: Vec<Cycles> = ts.tasks().iter().map(|t| t.total_compute()).collect();
    let mut response = Vec::with_capacity(ts.len());
    let mut schedulable = true;
    for (i, task) in ts.tasks().iter().enumerate() {
        let cap = match task.period.checked_mul(16) {
            Some(c) => c,
            None => {
                schedulable = false;
                response.push(None);
                continue;
            }
        };
        let mut r = comps[i];
        let mut converged = None;
        for _ in 0..MAX_ITERATIONS {
            let mut next = comps[i];
            for (j, hp) in ts.tasks().iter().enumerate().take(i) {
                let jobs = r.get().div_ceil(hp.period.get());
                next += comps[j] * jobs;
            }
            if next == r {
                converged = Some(r);
                break;
            }
            if next > cap {
                break;
            }
            r = next;
        }
        match converged {
            Some(r) => {
                if r > task.deadline {
                    schedulable = false;
                }
                response.push(Some(r));
            }
            None => {
                schedulable = false;
                response.push(None);
            }
        }
    }
    AnalysisOutcome {
        schedulable,
        response,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::{Segment, SporadicTask, StagingMode};
    use rtmdm_mcusim::ContentionModel;

    fn cy(n: u64) -> Cycles {
        Cycles::new(n)
    }

    fn bare_platform() -> PlatformConfig {
        let mut p = PlatformConfig::stm32f746_qspi();
        p.contention = ContentionModel::NONE;
        p.context_switch_cycles = Cycles::ZERO;
        p.ext_mem.setup_cycles = Cycles::ZERO;
        p.ext_mem.cycles_per_byte_num = 1;
        p.ext_mem.cycles_per_byte_den = 1;
        p
    }

    fn resident(name: &str, period: u64, compute: u64) -> SporadicTask {
        SporadicTask::new(
            name,
            cy(period),
            cy(period),
            vec![Segment::new(cy(compute), 0)],
            StagingMode::Resident,
        )
        .expect("valid")
    }

    #[test]
    fn single_task_response_is_its_pipeline_latency() {
        let ts = TaskSet::from_tasks(vec![resident("a", 1000, 300)]);
        let out = rta_limited_preemption(&ts, &bare_platform());
        assert!(out.schedulable);
        assert_eq!(out.response_of(0), Some(cy(300)));
    }

    #[test]
    fn classic_two_task_example() {
        // hi (C=20, T=100) over lo (one non-preemptive 200-cycle
        // segment, T=1000): hi's bound is B (one lo segment, 200) plus
        // its own 20 = 220 — which exceeds hi's deadline of 100, so the
        // analysis must reject the set on blocking grounds alone.
        let ts = TaskSet::from_tasks(vec![resident("hi", 100, 20), resident("lo", 1000, 200)]);
        let out = rta_limited_preemption(&ts, &bare_platform());
        let r_hi = out.response_of(0).expect("converged");
        assert_eq!(r_hi, cy(220));
        assert!(!out.schedulable);
    }

    #[test]
    fn blocking_violating_deadline_flags_unschedulable() {
        let ts = TaskSet::from_tasks(vec![resident("hi", 100, 20), resident("lo", 1000, 200)]);
        let out = rta_limited_preemption(&ts, &bare_platform());
        // From the previous test: r_hi = 220 > 100 → unschedulable.
        assert!(!out.schedulable);
    }

    #[test]
    fn interference_accumulates_per_release() {
        let ts = TaskSet::from_tasks(vec![
            resident("hi", 100, 20),
            resident("mid", 400, 40),
            resident("lo", 10_000, 30),
        ]);
        let out = rta_limited_preemption(&ts, &bare_platform());
        assert!(out.schedulable, "{out:?}");
        // lo: blocking none below, P=30, interference from hi and mid
        // with their jitter. The bound is conservative but must converge
        // well under the period.
        let r_lo = out.response_of(2).expect("converged");
        assert!(r_lo >= cy(90)); // at least P + one job of each hp task
        assert!(r_lo <= cy(10_000));
    }

    #[test]
    fn overloaded_set_is_rejected() {
        // 160 % utilization: the fixed point for b lands at 720 (8 jobs
        // of a at 80 each, plus its own 80), far past its deadline.
        let ts = TaskSet::from_tasks(vec![resident("a", 100, 80), resident("b", 100, 80)]);
        let out = rta_limited_preemption(&ts, &bare_platform());
        assert!(!out.schedulable);
        // Divergence would be an equally valid rejection; a converged
        // bound must lie past the deadline.
        if let Some(r) = out.response.last().copied().flatten() {
            assert!(r > cy(100), "bound {r} must exceed the deadline");
        }
    }

    #[test]
    fn true_divergence_yields_none() {
        // b under a task with utilization 1.0 can never converge.
        let ts = TaskSet::from_tasks(vec![resident("a", 100, 100), resident("b", 1000, 10)]);
        let out = rta_limited_preemption(&ts, &bare_platform());
        assert!(!out.schedulable);
        assert_eq!(out.response.last().copied().flatten(), None);
    }

    #[test]
    fn fetch_heavy_task_pays_for_unhidden_staging() {
        let p = bare_platform();
        // One overlapped task: fetch dominates compute.
        let t = SporadicTask::new(
            "f",
            cy(10_000),
            cy(10_000),
            vec![Segment::new(cy(100), 2_000), Segment::new(cy(100), 2_000)],
            StagingMode::Overlapped,
        )
        .expect("valid");
        let ts = TaskSet::from_tasks(vec![t]);
        let out = rta_limited_preemption(&ts, &p);
        // P = F1 + max(e1,F2) + e2 = 2000 + 2000 + 100 = 4100.
        assert_eq!(out.response_of(0), Some(cy(4100)));
    }

    #[test]
    fn memory_oblivious_ignores_fetch_entirely() {
        let p = bare_platform();
        let t = SporadicTask::new(
            "f",
            cy(10_000),
            cy(10_000),
            vec![Segment::new(cy(100), 1 << 20)], // a megabyte of weights
            StagingMode::Overlapped,
        )
        .expect("valid");
        let ts = TaskSet::from_tasks(vec![t]);
        let out = rta_memory_oblivious(&ts, &p);
        assert_eq!(out.response_of(0), Some(cy(100)));
        assert!(out.schedulable);
        // The sound analysis knows better.
        let sound = rta_limited_preemption(&ts, &p);
        assert!(!sound.schedulable);
    }

    #[test]
    fn rtmdm_dominates_memory_oblivious_bounds() {
        let ts = TaskSet::from_tasks(vec![resident("a", 1000, 100), resident("b", 2000, 300)]);
        let p = bare_platform();
        let sound = rta_limited_preemption(&ts, &p);
        let oblivious = rta_memory_oblivious(&ts, &p);
        for i in 0..ts.len() {
            let (Some(rs), Some(ro)) = (sound.response_of(i), oblivious.response_of(i)) else {
                continue;
            };
            assert!(rs >= ro, "task {i}: sound {rs} < oblivious {ro}");
        }
    }

    #[test]
    fn interference_bounds_partition_the_response_bound() {
        let ts = TaskSet::from_tasks(vec![
            resident("hi", 100, 20),
            resident("mid", 400, 40),
            resident("lo", 10_000, 30),
        ]);
        let p = bare_platform();
        for mode in [SchedulerMode::Gated, SchedulerMode::WorkConserving] {
            let out = rta_limited_preemption_with(&ts, &p, mode);
            let bounds = interference_bounds(&ts, &p, mode);
            assert_eq!(bounds.len(), ts.len());
            for (i, bound) in bounds.iter().enumerate() {
                let b = bound.expect("converged");
                assert_eq!(Some(b.response), out.response_of(i), "task {i}");
                assert_eq!(
                    b.response,
                    b.blocking + b.pipeline + b.interference,
                    "task {i}"
                );
            }
            // Highest priority sees no interference; lowest, no blocking.
            assert_eq!(bounds[0].unwrap().interference, Cycles::ZERO);
            assert_eq!(bounds[2].unwrap().blocking, Cycles::ZERO);
        }
    }

    #[test]
    fn interference_bounds_mark_divergent_tasks() {
        let ts = TaskSet::from_tasks(vec![resident("a", 100, 100), resident("b", 1000, 10)]);
        let bounds = interference_bounds(&ts, &bare_platform(), SchedulerMode::Gated);
        assert!(bounds[0].is_some());
        assert_eq!(bounds[1], None);
    }

    #[test]
    fn empty_taskset_is_schedulable() {
        let out = rta_limited_preemption(&TaskSet::new(), &bare_platform());
        assert!(out.schedulable);
        assert!(out.response.is_empty());
    }
}
