//! Utilization-based quick tests.

use rtmdm_mcusim::PlatformConfig;

use crate::analysis::wcet::TaskTiming;
use crate::task::{ratio_ppm, TaskSet};

/// Occupancy utilization of the set in parts per million: each task's
/// `(Σe + ΣF) / T`, summed. This is the load the platform actually
/// carries (CPU + DMA, inflated); any value ≥ 1 000 000 is infeasible.
pub fn occupancy_utilization_ppm(ts: &TaskSet, platform: &PlatformConfig) -> u64 {
    ts.tasks()
        .iter()
        .map(|t| {
            let tt = TaskTiming::derive(t, platform);
            ratio_ppm(tt.occupancy.get(), t.period.get())
        })
        .sum()
}

/// The Liu & Layland rate-monotonic utilization bound for `n` tasks, in
/// parts per million: `n (2^{1/n} − 1)`.
pub fn rm_utilization_bound_ppm(n: usize) -> u64 {
    if n == 0 {
        return 1_000_000;
    }
    let bound = n as f64 * ((2f64).powf(1.0 / n as f64) - 1.0);
    (bound * 1_000_000.0) as u64
}

/// Sufficient RM test on occupancy utilization: schedulable if the
/// occupancy utilization is within the Liu & Layland bound. Very
/// pessimistic for this system (it ignores that fetch overlaps compute)
/// but a handy sanity screen.
pub fn rm_utilization_test(ts: &TaskSet, platform: &PlatformConfig) -> bool {
    occupancy_utilization_ppm(ts, platform) <= rm_utilization_bound_ppm(ts.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::{Segment, SporadicTask, StagingMode};
    use rtmdm_mcusim::{ContentionModel, Cycles};

    fn bare_platform() -> PlatformConfig {
        let mut p = PlatformConfig::stm32f746_qspi();
        p.contention = ContentionModel::NONE;
        p.context_switch_cycles = Cycles::ZERO;
        p.ext_mem.setup_cycles = Cycles::ZERO;
        p.ext_mem.cycles_per_byte_num = 1;
        p.ext_mem.cycles_per_byte_den = 1;
        p
    }

    fn t(period: u64, compute: u64, fetch: u64) -> SporadicTask {
        SporadicTask::new(
            format!("t{period}"),
            Cycles::new(period),
            Cycles::new(period),
            vec![Segment::new(Cycles::new(compute), fetch)],
            StagingMode::Overlapped,
        )
        .expect("valid")
    }

    #[test]
    fn occupancy_counts_compute_and_fetch() {
        let ts = TaskSet::from_tasks(vec![t(1000, 100, 150)]);
        assert_eq!(occupancy_utilization_ppm(&ts, &bare_platform()), 250_000);
    }

    #[test]
    fn ll_bound_values() {
        assert_eq!(rm_utilization_bound_ppm(0), 1_000_000);
        assert_eq!(rm_utilization_bound_ppm(1), 1_000_000);
        // n=2: 2(√2−1) ≈ 0.8284.
        let b2 = rm_utilization_bound_ppm(2);
        assert!((828_000..829_000).contains(&b2));
        // Monotone decreasing toward ln 2.
        assert!(rm_utilization_bound_ppm(10) > 693_000);
        assert!(rm_utilization_bound_ppm(10) < rm_utilization_bound_ppm(2));
    }

    #[test]
    fn rm_test_accepts_light_and_rejects_heavy() {
        let light = TaskSet::from_tasks(vec![t(1000, 100, 0), t(2000, 200, 0)]);
        assert!(rm_utilization_test(&light, &bare_platform()));
        let heavy = TaskSet::from_tasks(vec![t(1000, 600, 0), t(2000, 800, 0)]);
        assert!(!rm_utilization_test(&heavy, &bare_platform()));
    }
}
