//! Platform-dependent worst-case quantities derived from a task.
//!
//! Everything the analyses need about a task is condensed here:
//! inflated per-segment execution and fetch times, the isolated pipeline
//! latency, total resource occupancy, and the number of points at which
//! the task may self-suspend waiting for the DMA.

use serde::{Deserialize, Serialize};

use rtmdm_mcusim::{Cycles, PlatformConfig};

use crate::task::{SporadicTask, StagingMode};

/// Worst-case timing profile of one task on one platform.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TaskTiming {
    /// Inflated per-segment CPU cost `e_k` (context switch + compute at
    /// the worst-case contended rate).
    pub exec: Vec<Cycles>,
    /// Inflated per-segment DMA cost `F_k` (setup + streaming at the
    /// worst-case contended rate); all zero for resident tasks.
    pub fetch: Vec<Cycles>,
    /// Isolated worst-case latency of one job:
    /// `F_1 + Σ_k max(e_k, F_{k+1})` — the double-buffered pipeline with
    /// its unhidden lead-in fetch.
    pub pipeline_latency: Cycles,
    /// Total resource occupancy `Σ e_k + Σ F_k`: every cycle of CPU or
    /// DMA time a job of this task can take away from lower-priority
    /// work.
    pub occupancy: Cycles,
    /// Number of points at which a job may yield the CPU and later
    /// resume: 1 (initial arrival) plus every segment boundary whose
    /// next segment has a non-zero fetch. Even a fetch that is hidden
    /// in isolation can be pushed past its compute window by DMA
    /// interference, so every fetching boundary must be counted. Each
    /// such point exposes the task to one more non-preemptive
    /// lower-priority segment.
    pub resume_points: u64,
    /// Largest single `e_k` — the blocking this task imposes on others.
    pub max_exec_segment: Cycles,
    /// Largest single `F_k` — the DMA blocking this task imposes.
    pub max_fetch_segment: Cycles,
    /// Total DMA work per job, `Σ F_k`.
    pub total_fetch: Cycles,
    /// Largest sum of two adjacent fetches, `max_k (F_k + F_{k+1})` —
    /// the most DMA work a job of this task can issue *without making
    /// compute progress* (the double-buffer window holds at most two
    /// outstanding fetches). This bounds the DMA traffic a job
    /// contributes while it is denied the CPU by higher-priority work.
    pub max_adjacent_fetch: Cycles,
}

impl TaskTiming {
    /// Derives the timing profile of `task` on `platform`.
    ///
    /// All inflations use the *fully contended* rates
    /// ([`ContentionModel::inflate_cpu`](rtmdm_mcusim::ContentionModel::inflate_cpu)
    /// /
    /// [`inflate_dma`](rtmdm_mcusim::ContentionModel::inflate_dma)),
    /// which upper-bound any actual interleaving the simulator can
    /// produce.
    pub fn derive(task: &SporadicTask, platform: &PlatformConfig) -> TaskTiming {
        let cs = platform.context_switch_cycles;
        let exec: Vec<Cycles> = task
            .segments
            .iter()
            .map(|s| cs + platform.contention.inflate_cpu(s.compute))
            .collect();
        let fetch: Vec<Cycles> = match task.mode {
            StagingMode::Resident => vec![Cycles::ZERO; task.segments.len()],
            StagingMode::Overlapped => task
                .segments
                .iter()
                .map(|s| {
                    platform
                        .contention
                        .inflate_dma(platform.ext_mem.transfer_cycles(s.fetch_bytes))
                })
                .collect(),
        };

        let n = exec.len();
        let mut pipeline = fetch.first().copied().unwrap_or(Cycles::ZERO);
        let mut resume_points = 1u64;
        for k in 0..n {
            let next_fetch = if k + 1 < n {
                fetch[k + 1]
            } else {
                Cycles::ZERO
            };
            pipeline += exec[k].max(next_fetch);
            if !next_fetch.is_zero() {
                resume_points += 1;
            }
        }
        let total_fetch: Cycles = fetch.iter().copied().sum();
        let occupancy = exec.iter().copied().sum::<Cycles>() + total_fetch;
        let max_exec_segment = exec.iter().copied().max().unwrap_or(Cycles::ZERO);
        let max_fetch_segment = fetch.iter().copied().max().unwrap_or(Cycles::ZERO);
        let max_adjacent_fetch = (0..fetch.len())
            .map(|k| {
                fetch[k]
                    + if k + 1 < fetch.len() {
                        fetch[k + 1]
                    } else {
                        Cycles::ZERO
                    }
            })
            .max()
            .unwrap_or(Cycles::ZERO);
        TaskTiming {
            exec,
            fetch,
            pipeline_latency: pipeline,
            occupancy,
            resume_points,
            max_exec_segment,
            max_fetch_segment,
            total_fetch,
            max_adjacent_fetch,
        }
    }

    /// Number of non-zero fetches a job issues.
    pub fn fetch_count(&self) -> u64 {
        self.fetch.iter().filter(|f| !f.is_zero()).count() as u64
    }

    /// Release jitter this task exhibits *as an interfering task*:
    /// its latest possible start of resource consumption relative to its
    /// release, bounded by `D − occupancy` under the inductive
    /// assumption that it meets its deadline.
    pub fn interference_jitter(&self, deadline: Cycles) -> Cycles {
        deadline.saturating_sub(self.occupancy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::Segment;
    use rtmdm_mcusim::{ContentionModel, PlatformConfig};

    fn cy(n: u64) -> Cycles {
        Cycles::new(n)
    }

    fn bare_platform() -> PlatformConfig {
        // No contention, no context switch, 1 cycle/byte, no setup: makes
        // hand-computation trivial.
        let mut p = PlatformConfig::stm32f746_qspi();
        p.contention = ContentionModel::NONE;
        p.context_switch_cycles = Cycles::ZERO;
        p.ext_mem.setup_cycles = Cycles::ZERO;
        p.ext_mem.cycles_per_byte_num = 1;
        p.ext_mem.cycles_per_byte_den = 1;
        p
    }

    fn task(segs: &[(u64, u64)], mode: StagingMode) -> SporadicTask {
        SporadicTask::new(
            "t",
            cy(1_000_000),
            cy(1_000_000),
            segs.iter().map(|&(c, b)| Segment::new(cy(c), b)).collect(),
            mode,
        )
        .expect("valid")
    }

    #[test]
    fn pipeline_latency_hand_example() {
        // Segments: (C=100,F=50), (C=100,F=200), (C=100,F=30).
        // P = F1 + max(e1,F2) + max(e2,F3) + max(e3,0)
        //   = 50 + max(100,200) + max(100,30) + 100 = 450.
        let t = task(&[(100, 50), (100, 200), (100, 30)], StagingMode::Overlapped);
        let tt = TaskTiming::derive(&t, &bare_platform());
        assert_eq!(tt.pipeline_latency, cy(450));
        assert_eq!(tt.occupancy, cy(300 + 280));
        // Resume points: initial + the two fetching boundaries
        // (fetches of segments 2 and 3).
        assert_eq!(tt.resume_points, 3);
        assert_eq!(tt.max_exec_segment, cy(100));
        assert_eq!(tt.max_fetch_segment, cy(200));
        assert_eq!(tt.fetch_count(), 3);
    }

    #[test]
    fn resident_task_has_no_fetch() {
        let t = task(&[(100, 50), (200, 70)], StagingMode::Resident);
        let tt = TaskTiming::derive(&t, &bare_platform());
        assert_eq!(tt.pipeline_latency, cy(300));
        assert_eq!(tt.occupancy, cy(300));
        assert_eq!(tt.resume_points, 1);
        assert_eq!(tt.fetch_count(), 0);
        assert_eq!(tt.max_fetch_segment, Cycles::ZERO);
    }

    #[test]
    fn context_switch_and_inflation_are_charged() {
        let mut p = bare_platform();
        p.context_switch_cycles = cy(10);
        p.contention = ContentionModel {
            cpu_inflation_ppm: 100_000, // 10%
            dma_inflation_ppm: 500_000, // 50%
        };
        let t = task(&[(100, 100)], StagingMode::Overlapped);
        let tt = TaskTiming::derive(&t, &p);
        assert_eq!(tt.exec[0], cy(10 + 110));
        assert_eq!(tt.fetch[0], cy(150));
        // P = F1 + e1 (single segment, no next fetch).
        assert_eq!(tt.pipeline_latency, cy(150 + 120));
    }

    #[test]
    fn pipeline_latency_never_undercuts_compute_or_fetch_totals() {
        let t = task(
            &[(50, 400), (300, 10), (20, 500), (80, 0)],
            StagingMode::Overlapped,
        );
        let tt = TaskTiming::derive(&t, &bare_platform());
        let total_e: Cycles = tt.exec.iter().copied().sum();
        let total_f: Cycles = tt.fetch.iter().copied().sum();
        assert!(tt.pipeline_latency >= total_e);
        assert!(tt.pipeline_latency >= total_f);
        assert!(tt.pipeline_latency <= tt.occupancy);
    }

    #[test]
    fn interference_jitter_clamps_at_zero() {
        let t = task(&[(500, 0)], StagingMode::Resident);
        let tt = TaskTiming::derive(&t, &bare_platform());
        assert_eq!(tt.interference_jitter(cy(800)), cy(300));
        assert_eq!(tt.interference_jitter(cy(100)), Cycles::ZERO);
    }
}
