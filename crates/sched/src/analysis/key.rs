//! Content-addressed keys for analysis sub-problems.
//!
//! The admission service memoizes RTA fixed points, staging plans, and
//! check passes across a fleet of near-duplicate queries. Cache keys
//! must be **canonical**: two sub-problems that would produce the same
//! answer must map to the same key, and any observable difference in
//! the inputs must change it. The key is the canonical JSON rendering
//! of the complete sub-problem (the vendored serializer writes struct
//! fields in declaration order and maps in insertion order, so equal
//! values always render to equal bytes), prefixed with a schema tag so
//! keys from different sub-problem kinds (or future layout revisions)
//! can never collide.
//!
//! Keys are compared by full string equality — content addressing
//! without a hash function, so there are no collision classes to
//! reason about. Deriving `Hash` on the task/platform types would give
//! a 64-bit digest instead; at fleet scale (`≥100k` queries) a silent
//! collision would cross-wire two admission verdicts, which is exactly
//! the kind of failure a verifier must not have.

use rtmdm_mcusim::PlatformConfig;
use serde::{Content, Serialize};

use crate::analysis::rta::SchedulerMode;
use crate::task::TaskSet;

/// Version tag baked into every key produced by [`analysis_key`] /
/// [`canonical_key`]. Bump when the serialized layout of any keyed
/// type changes so stale persisted keys can never alias fresh ones.
pub const KEY_SCHEMA: &str = "rtmdm-key/1";

/// Canonical key of one RTA sub-problem: the priority-ordered task set,
/// the platform, and the dispatch discipline. Two calls agree exactly
/// when `rta_limited_preemption_with(ts, platform, mode)` is the same
/// computation.
pub fn analysis_key(ts: &TaskSet, platform: &PlatformConfig, mode: SchedulerMode) -> String {
    // The vendored derive does not support lifetime-generic structs, so
    // the key document is assembled as a `Content` map directly; field
    // order is fixed here, which is all canonicalization needs.
    let doc = Content::Map(vec![
        ("mode".to_owned(), mode.to_content()),
        ("platform".to_owned(), platform.to_content()),
        ("tasks".to_owned(), ts.to_content()),
    ]);
    canonical_key("rta", &doc)
}

/// Canonical key of an arbitrary serializable sub-problem, namespaced
/// by `kind` (e.g. `"lower"`, `"check"`, `"headroom"`). The rendering
/// is the vendored serializer's canonical JSON; equal values produce
/// equal keys and distinct kinds can never collide (the kind is length
/// prefixed into the header, so no concatenation ambiguity exists).
pub fn canonical_key<T: Serialize>(kind: &str, value: &T) -> String {
    let body = serde_json::to_string(value).expect("canonical key serialization is infallible");
    format!("{KEY_SCHEMA}:{}:{kind}:{body}", kind.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::{Segment, SporadicTask, StagingMode};
    use rtmdm_mcusim::Cycles;

    fn resident(name: &str, period: u64, compute: u64) -> SporadicTask {
        SporadicTask::new(
            name,
            Cycles::new(period),
            Cycles::new(period),
            vec![Segment::new(Cycles::new(compute), 0)],
            StagingMode::Resident,
        )
        .expect("valid")
    }

    #[test]
    fn equal_subproblems_share_a_key() {
        let a = TaskSet::from_tasks(vec![resident("t", 100, 10)]);
        let b = TaskSet::from_tasks(vec![resident("t", 100, 10)]);
        let p = PlatformConfig::stm32f746_qspi();
        assert_eq!(
            analysis_key(&a, &p, SchedulerMode::Gated),
            analysis_key(&b, &p, SchedulerMode::Gated)
        );
    }

    #[test]
    fn every_input_dimension_changes_the_key() {
        let ts = TaskSet::from_tasks(vec![resident("t", 100, 10)]);
        let p = PlatformConfig::stm32f746_qspi();
        let base = analysis_key(&ts, &p, SchedulerMode::Gated);
        // Mode.
        assert_ne!(base, analysis_key(&ts, &p, SchedulerMode::WorkConserving));
        // Task content.
        let heavier = TaskSet::from_tasks(vec![resident("t", 100, 11)]);
        assert_ne!(base, analysis_key(&heavier, &p, SchedulerMode::Gated));
        // Task order (priority order is semantic for RTA).
        let two = TaskSet::from_tasks(vec![resident("a", 100, 10), resident("b", 200, 10)]);
        let swapped = TaskSet::from_tasks(vec![resident("b", 200, 10), resident("a", 100, 10)]);
        assert_ne!(
            analysis_key(&two, &p, SchedulerMode::Gated),
            analysis_key(&swapped, &p, SchedulerMode::Gated)
        );
        // Platform.
        let other = PlatformConfig::ideal_sram();
        assert_ne!(base, analysis_key(&ts, &other, SchedulerMode::Gated));
    }

    #[test]
    fn kinds_are_namespaced_without_concatenation_ambiguity() {
        // ("ab", "c"-keyed value) vs ("a", "bc"-keyed value) style
        // collisions are ruled out by the length prefix.
        assert_ne!(canonical_key("ab", &1u64), canonical_key("a", &1u64));
        assert!(canonical_key("rta", &1u64).starts_with("rtmdm-key/1:3:rta:"));
    }
}
