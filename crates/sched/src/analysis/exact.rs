//! Empirical acceptance: exhaustive synchronous-release simulation.
//!
//! For synchronous periodic releases and a deterministic scheduler, one
//! simulation over the hyperperiod tells whether *that* release pattern
//! meets every deadline. It is an **empirical upper bound** on true
//! sporadic schedulability — for self-suspending, limited-preemption
//! systems the synchronous pattern is not provably the worst case — but
//! it is the standard yardstick for quantifying how much of the gap to
//! "actually schedulable" an analysis leaves on the table (experiment
//! F2's top curve).

use rtmdm_mcusim::{Cycles, PlatformConfig};

use crate::sim::{simulate, Policy, SimConfig};
use crate::task::TaskSet;

/// Hyperperiods longer than this many cycles are not simulated.
const MAX_HYPERPERIOD: u64 = 1 << 40; // ≈ 90 minutes at 200 MHz

fn gcd(a: u64, b: u64) -> u64 {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

/// Least common multiple of all periods, or `None` past the cap.
pub fn hyperperiod(ts: &TaskSet) -> Option<Cycles> {
    let mut h: u64 = 1;
    for t in ts.tasks() {
        let p = t.period.get();
        h = h.checked_mul(p / gcd(h, p))?;
        if h > MAX_HYPERPERIOD {
            return None;
        }
    }
    Some(Cycles::new(h))
}

/// Three-way outcome of the synchronous-release simulation, separating
/// "the hyperperiod was too long to simulate" from "a deadline was
/// missed".
///
/// Mirrors the RTM053 never-silently-safe rule from the explorer, in
/// the other direction: an inconclusive empirical check must never be
/// silently folded into *either* side of an accept/reject statistic.
/// Callers that cannot handle [`SyncVerdict::Inconclusive`] explicitly
/// must surface it (a count, a warning, an error) rather than default
/// it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncVerdict {
    /// Every job of the synchronous pattern met its deadline.
    Accepted,
    /// Some job of the synchronous pattern missed its deadline.
    Rejected,
    /// The hyperperiod exceeds the simulation cap; nothing is known.
    Inconclusive,
}

/// [`sync_simulation_accepts`] with the inconclusive case spelled out
/// as a [`SyncVerdict`] instead of an easy-to-misread `Option<bool>`.
pub fn sync_simulation_verdict(
    ts: &TaskSet,
    platform: &PlatformConfig,
    policy: Policy,
    work_conserving: bool,
) -> SyncVerdict {
    match sync_simulation_accepts(ts, platform, policy, work_conserving) {
        Some(true) => SyncVerdict::Accepted,
        Some(false) => SyncVerdict::Rejected,
        None => SyncVerdict::Inconclusive,
    }
}

/// Simulates the synchronous periodic release pattern over one
/// hyperperiod (plus the largest deadline) and reports whether every
/// job met its deadline. `None` when the hyperperiod exceeds the
/// simulation cap.
///
/// # Examples
///
/// ```rust
/// use rtmdm_mcusim::{Cycles, PlatformConfig};
/// use rtmdm_sched::{Segment, SporadicTask, StagingMode, TaskSet};
/// use rtmdm_sched::analysis::sync_simulation_accepts;
/// use rtmdm_sched::sim::Policy;
///
/// # fn main() -> Result<(), rtmdm_sched::TaskError> {
/// let t = SporadicTask::new(
///     "t", Cycles::new(1_000), Cycles::new(1_000),
///     vec![Segment::new(Cycles::new(400), 0)], StagingMode::Resident,
/// )?;
/// let ts = TaskSet::from_tasks(vec![t]);
/// let verdict = sync_simulation_accepts(
///     &ts, &PlatformConfig::ideal_sram(), Policy::FixedPriority, false,
/// );
/// assert_eq!(verdict, Some(true));
/// # Ok(())
/// # }
/// ```
pub fn sync_simulation_accepts(
    ts: &TaskSet,
    platform: &PlatformConfig,
    policy: Policy,
    work_conserving: bool,
) -> Option<bool> {
    if ts.is_empty() {
        return Some(true);
    }
    let h = hyperperiod(ts)?;
    let d_max = ts
        .tasks()
        .iter()
        .map(|t| t.deadline)
        .max()
        .unwrap_or(Cycles::ZERO);
    let config = SimConfig {
        horizon: h.checked_add(d_max)?,
        policy,
        exec_scale_min_ppm: 1_000_000,
        seed: 0,
        work_conserving,
        fault: rtmdm_mcusim::FaultPlan::NONE,
        engine: crate::sim::Engine::default(),
        attribution: false,
        staging_window: 2,
    };
    let run = simulate(ts, platform, &config);
    Some(run.no_misses())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::rta_limited_preemption;
    use crate::task::{Segment, SporadicTask, StagingMode};
    use rtmdm_mcusim::ContentionModel;

    fn cy(n: u64) -> Cycles {
        Cycles::new(n)
    }

    fn bare_platform() -> PlatformConfig {
        let mut p = PlatformConfig::stm32f746_qspi();
        p.contention = ContentionModel::NONE;
        p.context_switch_cycles = Cycles::ZERO;
        p.ext_mem.setup_cycles = Cycles::ZERO;
        p.ext_mem.cycles_per_byte_num = 1;
        p.ext_mem.cycles_per_byte_den = 1;
        p
    }

    fn resident(name: &str, period: u64, compute: u64) -> SporadicTask {
        SporadicTask::new(
            name,
            cy(period),
            cy(period),
            vec![Segment::new(cy(compute), 0)],
            StagingMode::Resident,
        )
        .expect("valid")
    }

    #[test]
    fn hyperperiod_is_lcm() {
        let ts = TaskSet::from_tasks(vec![
            resident("a", 100, 1),
            resident("b", 150, 1),
            resident("c", 40, 1),
        ]);
        assert_eq!(hyperperiod(&ts), Some(cy(600)));
    }

    #[test]
    fn coprime_large_periods_exceed_the_cap() {
        let ts = TaskSet::from_tasks(vec![
            resident("a", 1_000_003, 1),
            resident("b", 2_000_003, 1),
            resident("c", 3_000_017, 1),
        ]);
        assert_eq!(hyperperiod(&ts), None);
        assert_eq!(
            sync_simulation_accepts(&ts, &bare_platform(), Policy::FixedPriority, false),
            None
        );
    }

    #[test]
    fn accepts_feasible_and_rejects_overloaded() {
        let p = bare_platform();
        let ok = TaskSet::from_tasks(vec![resident("a", 100, 40), resident("b", 200, 60)]);
        assert_eq!(
            sync_simulation_accepts(&ok, &p, Policy::FixedPriority, false),
            Some(true)
        );
        let over = TaskSet::from_tasks(vec![resident("a", 100, 80), resident("b", 100, 80)]);
        assert_eq!(
            sync_simulation_accepts(&over, &p, Policy::FixedPriority, false),
            Some(false)
        );
    }

    #[test]
    fn empirical_acceptance_dominates_the_analysis() {
        // Anything the analysis admits must pass the synchronous
        // simulation (the converse does not hold).
        let p = bare_platform();
        for (c1, c2) in [(20u64, 100u64), (40, 200), (60, 250), (80, 350)] {
            let ts = TaskSet::from_tasks(vec![resident("a", 100, c1), resident("b", 500, c2)]);
            if rta_limited_preemption(&ts, &p).schedulable {
                assert_eq!(
                    sync_simulation_accepts(&ts, &p, Policy::FixedPriority, false),
                    Some(true),
                    "c1={c1} c2={c2}"
                );
            }
        }
    }

    #[test]
    fn empty_set_is_accepted() {
        assert_eq!(
            sync_simulation_accepts(
                &TaskSet::new(),
                &bare_platform(),
                Policy::FixedPriority,
                false
            ),
            Some(true)
        );
    }
}
