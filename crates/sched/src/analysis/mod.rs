//! Schedulability analyses: the offline timing-guarantee half of RT-MDM.
//!
//! - [`rta_limited_preemption`] — the RT-MDM fixed-priority analysis
//!   (segment-level non-preemption + DMA staging + bus contention);
//! - [`rta_memory_oblivious`] — baseline B4, a classic preemptive RTA
//!   that ignores memory (unsound for this system, by design);
//! - [`edf_demand_test`] — processor-demand test for segment-level EDF;
//! - [`occupancy_utilization_ppm`] / [`rm_utilization_test`] — quick
//!   utilization screens;
//! - [`TaskTiming`] — the per-task worst-case quantities all of the
//!   above are built from.

mod edf;
mod exact;
mod key;
mod rta;
mod sensitivity;
mod util;
mod wcet;

pub use edf::edf_demand_test;
pub use exact::{hyperperiod, sync_simulation_accepts, sync_simulation_verdict, SyncVerdict};
pub use key::{analysis_key, canonical_key, KEY_SCHEMA};
pub use rta::{
    interference_bounds, rta_limited_preemption, rta_limited_preemption_with, rta_memory_oblivious,
    AnalysisOutcome, InterferenceBound, SchedulerMode,
};
pub use sensitivity::{critical_scaling_ppm, scaled_taskset};
pub use util::{occupancy_utilization_ppm, rm_utilization_bound_ppm, rm_utilization_test};
pub use wcet::TaskTiming;
