//! The segmented sporadic task model.
//!
//! A multi-DNN workload is a set of sporadic tasks; each task's job is a
//! full inference, executed as an ordered sequence of *segments* (groups
//! of layers whose weights fit one fetch buffer). Segments are the units
//! of non-preemptive execution and of DMA staging. This module is
//! platform-independent: segments carry raw compute cycles and fetch
//! bytes; the analyses and the simulator combine them with a
//! [`PlatformConfig`](rtmdm_mcusim::PlatformConfig) to obtain inflated
//! worst-case numbers.

use serde::{Deserialize, Serialize};

use rtmdm_mcusim::Cycles;

/// How a task's weights are staged relative to its compute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum StagingMode {
    /// RT-MDM: double-buffered DMA prefetch overlapping compute.
    Overlapped,
    /// All weights resident in SRAM; `fetch_bytes` are ignored.
    Resident,
}

/// What the simulator does with a job that misses its deadline.
///
/// `Abort` and `SkipNextRelease` together constitute *overload
/// shedding*: instead of letting a late job push every successor later
/// (the `Continue` default), the runtime drops work — either the late
/// job itself, or the demand that would pile up behind it.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum MissPolicy {
    /// Let the late job run to completion; successors queue behind it.
    #[default]
    Continue,
    /// Drop the late job at the next segment boundary (an in-flight
    /// non-preemptive segment finishes first) and cancel its pending
    /// DMA transfers.
    Abort,
    /// Let the late job finish, but shed the task's next release so the
    /// backlog drains instead of compounding.
    SkipNextRelease,
}

impl std::fmt::Display for MissPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MissPolicy::Continue => write!(f, "continue"),
            MissPolicy::Abort => write!(f, "abort"),
            MissPolicy::SkipNextRelease => write!(f, "skip-next"),
        }
    }
}

/// One non-preemptive execution unit: a group of consecutive layers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Segment {
    /// CPU work in uninflated cycles.
    pub compute: Cycles,
    /// Weight bytes the DMA stages for this segment (0 under
    /// [`StagingMode::Resident`]).
    pub fetch_bytes: u64,
}

impl Segment {
    /// Creates a segment.
    pub const fn new(compute: Cycles, fetch_bytes: u64) -> Self {
        Segment {
            compute,
            fetch_bytes,
        }
    }
}

/// A sporadic task: a DNN inference released at most once per period
/// with a constrained relative deadline.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SporadicTask {
    /// Task name (appears in traces and tables).
    pub name: String,
    /// Minimum inter-release separation.
    pub period: Cycles,
    /// Relative deadline (must satisfy `deadline ≤ period`).
    pub deadline: Cycles,
    /// Segments in execution order (non-empty).
    pub segments: Vec<Segment>,
    /// Staging mode.
    pub mode: StagingMode,
    /// What the simulator does when a job of this task misses its
    /// deadline ([`MissPolicy::Continue`] by default).
    pub miss_policy: MissPolicy,
}

/// A task's parameters are inconsistent.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TaskError {
    /// The deadline exceeds the period (unconstrained deadlines are out
    /// of the model's scope).
    DeadlineExceedsPeriod {
        /// Offending task name.
        name: String,
    },
    /// The task has no segments.
    NoSegments {
        /// Offending task name.
        name: String,
    },
    /// Period or deadline is zero.
    ZeroTiming {
        /// Offending task name.
        name: String,
    },
}

impl std::fmt::Display for TaskError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TaskError::DeadlineExceedsPeriod { name } => {
                write!(f, "task {name} has deadline exceeding its period")
            }
            TaskError::NoSegments { name } => write!(f, "task {name} has no segments"),
            TaskError::ZeroTiming { name } => {
                write!(f, "task {name} has a zero period or deadline")
            }
        }
    }
}

impl std::error::Error for TaskError {}

impl SporadicTask {
    /// Creates a validated task.
    ///
    /// # Errors
    ///
    /// Returns [`TaskError`] if the deadline exceeds the period, timing
    /// parameters are zero, or no segments are given.
    pub fn new(
        name: impl Into<String>,
        period: Cycles,
        deadline: Cycles,
        segments: Vec<Segment>,
        mode: StagingMode,
    ) -> Result<Self, TaskError> {
        let name = name.into();
        if period.is_zero() || deadline.is_zero() {
            return Err(TaskError::ZeroTiming { name });
        }
        if deadline > period {
            return Err(TaskError::DeadlineExceedsPeriod { name });
        }
        if segments.is_empty() {
            return Err(TaskError::NoSegments { name });
        }
        Ok(SporadicTask {
            name,
            period,
            deadline,
            segments,
            mode,
            miss_policy: MissPolicy::Continue,
        })
    }

    /// Sets the deadline-miss policy (builder style).
    #[must_use]
    pub fn with_miss_policy(mut self, policy: MissPolicy) -> Self {
        self.miss_policy = policy;
        self
    }

    /// Number of segments.
    pub fn segment_count(&self) -> usize {
        self.segments.len()
    }

    /// Total uninflated CPU work per job.
    pub fn total_compute(&self) -> Cycles {
        self.segments.iter().map(|s| s.compute).sum()
    }

    /// Total staged bytes per job (0 when resident).
    pub fn total_fetch_bytes(&self) -> u64 {
        match self.mode {
            StagingMode::Resident => 0,
            StagingMode::Overlapped => self.segments.iter().map(|s| s.fetch_bytes).sum(),
        }
    }

    /// The longest single segment's compute — this task's worst
    /// non-preemptive blocking imposed on others.
    pub fn max_segment_compute(&self) -> Cycles {
        self.segments
            .iter()
            .map(|s| s.compute)
            .max()
            .unwrap_or(Cycles::ZERO)
    }

    /// CPU utilization in parts per million (compute only, uninflated).
    pub fn compute_utilization_ppm(&self) -> u64 {
        ratio_ppm(self.total_compute().get(), self.period.get())
    }
}

/// An ordered collection of tasks. Index order is priority order for
/// fixed-priority policies: index 0 is the highest priority.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct TaskSet {
    tasks: Vec<SporadicTask>,
}

impl TaskSet {
    /// Creates an empty task set.
    pub fn new() -> Self {
        TaskSet { tasks: Vec::new() }
    }

    /// Creates a task set from tasks in priority order.
    pub fn from_tasks(tasks: Vec<SporadicTask>) -> Self {
        TaskSet { tasks }
    }

    /// Appends a task at the lowest priority.
    pub fn push(&mut self, task: SporadicTask) {
        self.tasks.push(task);
    }

    /// Tasks in priority order.
    pub fn tasks(&self) -> &[SporadicTask] {
        &self.tasks
    }

    /// Number of tasks.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Reorders tasks by the given priority permutation: `order[p]` is
    /// the index (in the current set) of the task that gets priority `p`.
    ///
    /// # Panics
    ///
    /// Panics if `order` is not a permutation of `0..len`.
    pub fn reordered(&self, order: &[usize]) -> TaskSet {
        assert_eq!(order.len(), self.tasks.len(), "order length mismatch");
        let mut seen = vec![false; order.len()];
        for &idx in order {
            assert!(!seen[idx], "order is not a permutation");
            seen[idx] = true;
        }
        TaskSet {
            tasks: order.iter().map(|&i| self.tasks[i].clone()).collect(),
        }
    }

    /// Total compute utilization in ppm (uninflated, ignores staging).
    pub fn compute_utilization_ppm(&self) -> u64 {
        self.tasks.iter().map(|t| t.compute_utilization_ppm()).sum()
    }
}

impl FromIterator<SporadicTask> for TaskSet {
    fn from_iter<I: IntoIterator<Item = SporadicTask>>(iter: I) -> Self {
        TaskSet {
            tasks: iter.into_iter().collect(),
        }
    }
}

impl Extend<SporadicTask> for TaskSet {
    fn extend<I: IntoIterator<Item = SporadicTask>>(&mut self, iter: I) {
        self.tasks.extend(iter);
    }
}

/// `num/den` in parts per million, rounding up; 0 if `den` is 0,
/// saturating at `u64::MAX` for pathological ratios (a 2^64-scale
/// utilization is unschedulable whichever way it is reported).
pub(crate) fn ratio_ppm(num: u64, den: u64) -> u64 {
    if den == 0 {
        return 0;
    }
    u64::try_from((u128::from(num) * 1_000_000u128).div_ceil(u128::from(den))).unwrap_or(u64::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cy(n: u64) -> Cycles {
        Cycles::new(n)
    }

    fn task(name: &str, period: u64, segs: &[(u64, u64)]) -> SporadicTask {
        SporadicTask::new(
            name,
            cy(period),
            cy(period),
            segs.iter().map(|&(c, b)| Segment::new(cy(c), b)).collect(),
            StagingMode::Overlapped,
        )
        .expect("valid task")
    }

    #[test]
    fn aggregates() {
        let t = task("t", 1000, &[(100, 64), (200, 128), (50, 0)]);
        assert_eq!(t.total_compute(), cy(350));
        assert_eq!(t.total_fetch_bytes(), 192);
        assert_eq!(t.max_segment_compute(), cy(200));
        assert_eq!(t.segment_count(), 3);
        assert_eq!(t.compute_utilization_ppm(), 350_000);
    }

    #[test]
    fn resident_mode_ignores_fetch_bytes() {
        let mut t = task("t", 1000, &[(100, 64)]);
        t.mode = StagingMode::Resident;
        assert_eq!(t.total_fetch_bytes(), 0);
    }

    #[test]
    fn validation_rejects_bad_parameters() {
        let seg = vec![Segment::new(cy(10), 0)];
        assert!(matches!(
            SporadicTask::new("x", cy(10), cy(20), seg.clone(), StagingMode::Resident),
            Err(TaskError::DeadlineExceedsPeriod { .. })
        ));
        assert!(matches!(
            SporadicTask::new("x", cy(10), cy(10), vec![], StagingMode::Resident),
            Err(TaskError::NoSegments { .. })
        ));
        assert!(matches!(
            SporadicTask::new("x", cy(0), cy(0), seg, StagingMode::Resident),
            Err(TaskError::ZeroTiming { .. })
        ));
    }

    #[test]
    fn constrained_deadline_is_allowed() {
        let t = SporadicTask::new(
            "c",
            cy(100),
            cy(60),
            vec![Segment::new(cy(10), 8)],
            StagingMode::Overlapped,
        )
        .expect("valid");
        assert_eq!(t.deadline, cy(60));
    }

    #[test]
    fn taskset_utilization_sums_tasks() {
        let ts: TaskSet = vec![task("a", 1000, &[(100, 0)]), task("b", 2000, &[(400, 0)])]
            .into_iter()
            .collect();
        assert_eq!(ts.compute_utilization_ppm(), 100_000 + 200_000);
        assert_eq!(ts.len(), 2);
    }

    #[test]
    fn reorder_applies_permutation() {
        let ts: TaskSet = vec![
            task("a", 1000, &[(1, 0)]),
            task("b", 1000, &[(1, 0)]),
            task("c", 1000, &[(1, 0)]),
        ]
        .into_iter()
        .collect();
        let r = ts.reordered(&[2, 0, 1]);
        let names: Vec<&str> = r.tasks().iter().map(|t| t.name.as_str()).collect();
        assert_eq!(names, vec!["c", "a", "b"]);
    }

    #[test]
    #[should_panic(expected = "not a permutation")]
    fn reorder_rejects_duplicates() {
        let ts: TaskSet = vec![task("a", 10, &[(1, 0)]), task("b", 10, &[(1, 0)])]
            .into_iter()
            .collect();
        let _ = ts.reordered(&[0, 0]);
    }

    #[test]
    fn ratio_ppm_rounds_up_and_handles_zero() {
        assert_eq!(ratio_ppm(1, 3), 333_334);
        assert_eq!(ratio_ppm(0, 5), 0);
        assert_eq!(ratio_ppm(5, 0), 0);
        // Pathological ratios saturate instead of panicking.
        assert_eq!(ratio_ppm(u64::MAX, 1), u64::MAX);
    }
}
