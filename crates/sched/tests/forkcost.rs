//! Fork-path cost audit (ISSUE 10, satellite 2).
//!
//! Times the three ingredients of a forked exploration run on a
//! scale-sized workload — a full replay from cycle zero, the same run
//! while capturing snapshots, and a resume from a deep snapshot — and
//! asserts the ordering the fork strategy depends on: resuming past a
//! quiet interval must be cheaper than replaying it, and capture
//! overhead must stay within a small factor of the plain run.
//!
//! Wall-clock assertions are kept to coarse factors (not tight bounds)
//! so the test is immune to machine noise; the fine-grained numbers go
//! to stdout for `--nocapture` inspection.

use std::time::Instant;

use rtmdm_mcusim::{FaultPlan, PlatformConfig};
use rtmdm_sched::gen::{generate, TasksetParams};
use rtmdm_sched::script::ScriptOracle;
use rtmdm_sched::sim::{simulate_with_oracle_forked, Engine, Policy, SimConfig, SimSnapshot};
use rtmdm_sched::TaskSet;

fn workload() -> (TaskSet, PlatformConfig, SimConfig) {
    let p = PlatformConfig::stm32f746_qspi();
    let mut params = TasksetParams::baseline(8, 250_000).with_grid_periods();
    params.segments_range = (2, 4);
    let ts = generate(&params, &p, 1);
    let horizon = ts.tasks().iter().map(|t| t.period).max().unwrap() * 2;
    let cfg = SimConfig {
        horizon,
        policy: Policy::FixedPriority,
        exec_scale_min_ppm: 600_000,
        seed: 0,
        work_conserving: false,
        fault: FaultPlan::NONE,
        engine: Engine::Des,
        attribution: true,
        staging_window: 2,
    };
    (ts, p, cfg)
}

/// Median-of-N wall time of one closure call, in seconds.
fn timed<R>(reps: usize, mut f: impl FnMut() -> R) -> f64 {
    let mut samples: Vec<f64> = (0..reps)
        .map(|_| {
            let t = Instant::now();
            let _ = f();
            t.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

#[test]
fn resuming_a_quiet_interval_beats_replaying_it() {
    let (ts, p, cfg) = workload();

    // Full run with capture: the snapshot ladder the explorer forks from.
    let mut snaps: Vec<SimSnapshot> = Vec::new();
    let mut rec = ScriptOracle::new(Vec::new());
    let full = simulate_with_oracle_forked(&ts, &p, &cfg, &mut rec, None, Some(&mut snaps));
    let deep = snaps.last().expect("snapshots captured").clone();
    assert!(deep.queries_before() > 0, "deep snapshot is not mid-run");

    let t_replay = timed(5, || {
        let mut o = ScriptOracle::new(Vec::new());
        simulate_with_oracle_forked(&ts, &p, &cfg, &mut o, None, None)
    });
    let t_capture = timed(5, || {
        let mut o = ScriptOracle::new(Vec::new());
        let mut caps = Vec::new();
        simulate_with_oracle_forked(&ts, &p, &cfg, &mut o, None, Some(&mut caps))
    });
    let t_resume = timed(5, || {
        let mut o = ScriptOracle::new(Vec::new());
        simulate_with_oracle_forked(&ts, &p, &cfg, &mut o, Some(&deep), None)
    });
    let max_snap = snaps.iter().map(SimSnapshot::size_hint).max().unwrap();

    println!(
        "forkcost: replay {:.3}ms, capture {:.3}ms ({} snaps, max {} bytes), \
         deep resume {:.3}ms (skips {} of {} queries)",
        t_replay * 1e3,
        t_capture * 1e3,
        snaps.len(),
        max_snap,
        t_resume * 1e3,
        deep.queries_before(),
        full.trace.len().max(1) // context only
    );

    // The fork strategy's premise: resuming past the captured prefix is
    // decisively cheaper than re-simulating it from cycle zero.
    assert!(
        t_resume * 2.0 < t_replay,
        "deep resume ({t_resume:.6}s) is not cheaper than replay ({t_replay:.6}s)"
    );
    // And capturing the ladder may not blow up the run it rides on.
    assert!(
        t_capture < t_replay * 10.0,
        "capture overhead ({t_capture:.6}s) dwarfs the plain run ({t_replay:.6}s)"
    );
}
