//! Property tests on the scheduler simulator: structural invariants that
//! must hold for any task set, policy, and dispatch discipline.

use proptest::prelude::*;

use rtmdm_mcusim::{Cycles, FaultPlan, PlatformConfig};
use rtmdm_sched::gen::{generate, TasksetParams};
use rtmdm_sched::sim::{simulate, Engine, Policy, SimConfig};
use rtmdm_sched::{MissPolicy, StagingMode, TaskSet};

fn platform() -> PlatformConfig {
    PlatformConfig::stm32f746_qspi()
}

fn config(horizon: Cycles, policy: Policy, wc: bool, scale: u64, seed: u64) -> SimConfig {
    SimConfig {
        horizon,
        policy,
        exec_scale_min_ppm: scale,
        seed,
        work_conserving: wc,
        fault: FaultPlan::NONE,
        engine: Engine::Des,
        attribution: false,
        staging_window: 2,
    }
}

/// Re-tags every task of `ts` with `policy` (the generator always
/// produces [`MissPolicy::Continue`]).
fn with_miss_policy(ts: &TaskSet, policy: MissPolicy) -> TaskSet {
    TaskSet::from_tasks(
        ts.tasks()
            .iter()
            .map(|t| t.clone().with_miss_policy(policy))
            .collect(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, .. ProptestConfig::default() })]

    /// Accounting invariants: completions ≤ releases, misses ≤ releases,
    /// CPU-busy time ≤ horizon, every completed response positive, and
    /// release counts match the periodic pattern.
    #[test]
    fn accounting_invariants(
        seed in 0u64..100_000,
        n_tasks in 1usize..6,
        util_pct in 5u64..90,
        policy_edf in proptest::bool::ANY,
        wc in proptest::bool::ANY,
        scale in 300_000u64..=1_000_000,
    ) {
        let params = TasksetParams::baseline(n_tasks, util_pct * 10_000);
        let ts = generate(&params, &platform(), seed);
        let horizon = ts.tasks().iter().map(|t| t.period).max().unwrap() * 3;
        let policy = if policy_edf { Policy::Edf } else { Policy::FixedPriority };
        let run = simulate(&ts, &platform(), &config(horizon, policy, wc, scale, seed));
        for (i, (task, stats)) in ts.tasks().iter().zip(&run.stats).enumerate() {
            prop_assert!(stats.completions <= stats.releases, "task {i}");
            prop_assert!(stats.misses <= stats.releases, "task {i}");
            // Releases: jobs whose deadline fits in the horizon.
            let expected = if task.deadline > horizon {
                0
            } else {
                (horizon - task.deadline).get() / task.period.get() + 1
            };
            prop_assert_eq!(stats.releases, expected, "task {} releases", i);
            if stats.completions > 0 {
                prop_assert!(stats.max_response > Cycles::ZERO);
                prop_assert!(stats.total_response >= stats.max_response.get());
            }
        }
        prop_assert!(run.trace.cpu_busy_cycles() <= horizon);
    }

    /// Bit-determinism: the same configuration yields the same trace,
    /// for any policy/discipline/jitter combination.
    #[test]
    fn simulation_is_deterministic(
        seed in 0u64..100_000,
        n_tasks in 1usize..5,
        util_pct in 5u64..70,
        wc in proptest::bool::ANY,
        scale in 300_000u64..=1_000_000,
    ) {
        let params = TasksetParams::baseline(n_tasks, util_pct * 10_000);
        let ts = generate(&params, &platform(), seed);
        let horizon = ts.tasks().iter().map(|t| t.period).max().unwrap() * 2;
        let cfg = config(horizon, Policy::FixedPriority, wc, scale, seed);
        let a = simulate(&ts, &platform(), &cfg);
        let b = simulate(&ts, &platform(), &cfg);
        prop_assert_eq!(a.trace.events(), b.trace.events());
        prop_assert_eq!(a.stats, b.stats);
    }

    /// A single task in isolation responds within its analytical
    /// pipeline latency — for any structure and staging mode.
    #[test]
    fn isolated_response_within_pipeline_bound(
        seed in 0u64..100_000,
        util_pct in 5u64..80,
        resident in proptest::bool::ANY,
    ) {
        let mut params = TasksetParams::baseline(1, util_pct * 10_000);
        if resident {
            params.mode = StagingMode::Resident;
            params.fetch_compute_ratio_ppm = 0;
        }
        let ts = generate(&params, &platform(), seed);
        let horizon = ts.tasks()[0].period * 6;
        let run = simulate(
            &ts,
            &platform(),
            &config(horizon, Policy::FixedPriority, false, 1_000_000, seed),
        );
        let timing = rtmdm_sched::analysis::TaskTiming::derive(&ts.tasks()[0], &platform());
        prop_assert!(
            run.max_response_of(0) <= timing.pipeline_latency,
            "observed {} > isolated bound {}",
            run.max_response_of(0),
            timing.pipeline_latency
        );
    }

    /// The provable top-task guarantee of the gated dispatcher: the
    /// highest-priority task's response never exceeds one
    /// lower-priority non-preemptive segment plus its own isolated
    /// pipeline latency. (The tempting stronger claim — "gating never
    /// hurts the top task relative to work-conserving dispatch" — is
    /// FALSE: at 4000 cases a counterexample appears where gating
    /// shifts a lower-priority segment into an unluckier alignment
    /// with the top task's release. Per-run blocking can differ; only
    /// the bound is invariant.)
    #[test]
    fn gated_top_task_meets_its_closed_form_bound(
        seed in 0u64..100_000,
        n_tasks in 2usize..5,
        util_pct in 5u64..60,
    ) {
        let params = TasksetParams::baseline(n_tasks, util_pct * 10_000);
        let ts = generate(&params, &platform(), seed);
        let order = rtmdm_sched::assign::rm_order(&ts);
        let ts = ts.reordered(&order);
        let horizon = ts.tasks().iter().map(|t| t.period).max().unwrap() * 3;
        let gated = simulate(
            &ts,
            &platform(),
            &config(horizon, Policy::FixedPriority, false, 1_000_000, seed),
        );
        let timings: Vec<_> = ts
            .tasks()
            .iter()
            .map(|t| rtmdm_sched::analysis::TaskTiming::derive(t, &platform()))
            .collect();
        let blocking = timings[1..]
            .iter()
            .map(|t| t.max_exec_segment)
            .max()
            .unwrap_or(Cycles::ZERO);
        let bound = blocking + timings[0].pipeline_latency;
        prop_assert!(
            gated.max_response_of(0) <= bound,
            "observed {} > bound {}",
            gated.max_response_of(0),
            bound
        );
    }

    /// The fault injector's disabled path is provably free: a zero-rate,
    /// zero-jitter plan (any seed, any retry bound) yields a run
    /// byte-identical to one with no plan at all — trace, per-task
    /// stats, and aggregate metrics alike.
    #[test]
    fn inactive_fault_plan_is_byte_identical_to_no_plan(
        seed in 0u64..100_000,
        n_tasks in 1usize..5,
        util_pct in 5u64..80,
        wc in proptest::bool::ANY,
        scale in 300_000u64..=1_000_000,
        fault_seed in 0u64..u64::MAX,
        retries in 0u32..10,
    ) {
        let params = TasksetParams::baseline(n_tasks, util_pct * 10_000);
        let ts = generate(&params, &platform(), seed);
        let horizon = ts.tasks().iter().map(|t| t.period).max().unwrap() * 2;
        let plain = config(horizon, Policy::FixedPriority, wc, scale, seed);
        let mut zeroed = plain.clone();
        zeroed.fault = FaultPlan {
            seed: fault_seed,
            dma_fault_rate_ppm: 0,
            max_retries: retries,
            jitter_max_cycles: 0,
        };
        let a = simulate(&ts, &platform(), &plain);
        let b = simulate(&ts, &platform(), &zeroed);
        prop_assert_eq!(a.trace.events(), b.trace.events());
        prop_assert_eq!(a.stats, b.stats);
        prop_assert_eq!(a.metrics, b.metrics);
    }

    /// Under any fault environment: runs stay deterministic, the
    /// horizon partition (busy + idle == horizon) holds, retry counts
    /// agree between the trace, per-task stats, and aggregate metrics,
    /// and the staging discipline still delivers completed jobs.
    #[test]
    fn fault_environment_preserves_core_invariants(
        seed in 0u64..100_000,
        n_tasks in 1usize..5,
        util_pct in 5u64..60,
        rate_ppm in 1u64..=1_000_000,
        jitter in 0u64..200,
    ) {
        let params = TasksetParams::baseline(n_tasks, util_pct * 10_000);
        let ts = generate(&params, &platform(), seed);
        let horizon = ts.tasks().iter().map(|t| t.period).max().unwrap() * 2;
        let mut cfg = config(horizon, Policy::FixedPriority, false, 1_000_000, seed);
        cfg.fault = FaultPlan {
            seed,
            dma_fault_rate_ppm: rate_ppm,
            max_retries: 3,
            jitter_max_cycles: jitter,
        };
        let a = simulate(&ts, &platform(), &cfg);
        let b = simulate(&ts, &platform(), &cfg);
        prop_assert_eq!(a.trace.events(), b.trace.events());
        prop_assert_eq!(&a.stats, &b.stats);
        let m = a.metrics;
        prop_assert_eq!(m.cpu_busy_cycles + m.cpu_idle_cycles, horizon);
        prop_assert_eq!(m.fetch_retries, m.injected_faults);
        prop_assert_eq!(a.trace.injected_faults() as u64, m.injected_faults);
        let stat_retries: u64 = a.stats.iter().map(|s| s.retries).sum();
        prop_assert_eq!(stat_retries, m.fetch_retries);
        // Faults delay but never wedge: released work still completes
        // (the last release may legitimately still be in flight).
        for (i, s) in a.stats.iter().enumerate() {
            prop_assert!(
                s.completions + 1 >= s.releases.min(1),
                "task {i} starved: {} completions of {} releases",
                s.completions,
                s.releases
            );
        }
    }

    /// The equivalence gate: the discrete-event engine is byte-identical
    /// to the legacy instant-stepping loop — trace, per-task stats, and
    /// aggregate metrics — over random task sets, execution-time jitter,
    /// fault environments, and every deadline-miss policy.
    #[test]
    fn des_engine_is_byte_identical_to_legacy(
        seed in 0u64..100_000,
        n_tasks in 1usize..6,
        util_pct in 5u64..90,
        policy_edf in proptest::bool::ANY,
        wc in proptest::bool::ANY,
        scale in 300_000u64..=1_000_000,
        fault_rate_sel in 0u64..=1_000_000,
        fault_jitter in 0u64..200,
        miss_sel in 0u8..3,
    ) {
        // Map the low fifth of the range to zero so fault-free runs
        // (the golden-path regime) stay well represented.
        let fault_rate_ppm = if fault_rate_sel < 200_000 { 0 } else { fault_rate_sel };
        let params = TasksetParams::baseline(n_tasks, util_pct * 10_000);
        let miss_policy = [
            MissPolicy::Continue,
            MissPolicy::Abort,
            MissPolicy::SkipNextRelease,
        ][miss_sel as usize];
        let ts = with_miss_policy(&generate(&params, &platform(), seed), miss_policy);
        let horizon = ts.tasks().iter().map(|t| t.period).max().unwrap() * 3;
        let policy = if policy_edf { Policy::Edf } else { Policy::FixedPriority };
        let mut cfg = config(horizon, policy, wc, scale, seed);
        cfg.fault = FaultPlan {
            seed,
            dma_fault_rate_ppm: fault_rate_ppm,
            max_retries: 3,
            jitter_max_cycles: fault_jitter,
        };
        let legacy = simulate(&ts, &platform(), &cfg.clone().with_engine(Engine::Legacy));
        let des = simulate(&ts, &platform(), &cfg.with_engine(Engine::Des));
        prop_assert_eq!(legacy.trace.events(), des.trace.events());
        prop_assert_eq!(&legacy.stats, &des.stats);
        prop_assert_eq!(legacy.metrics, des.metrics);
    }

    /// The forensics equivalence gate: with attribution anchors on, the
    /// per-job blame decomposition reconstructed from the trace is
    /// byte-identical between the two engines — across random task
    /// sets, execution-time jitter, fault environments, and every
    /// deadline-miss policy. (Stronger than trace equality alone: it
    /// also pins the obs-side reconstruction to a deterministic
    /// function of the trace.)
    #[test]
    fn blame_decomposition_is_byte_identical_between_engines(
        seed in 0u64..100_000,
        n_tasks in 1usize..6,
        util_pct in 5u64..90,
        wc in proptest::bool::ANY,
        scale in 300_000u64..=1_000_000,
        fault_rate_sel in 0u64..=1_000_000,
        miss_sel in 0u8..3,
    ) {
        let fault_rate_ppm = if fault_rate_sel < 200_000 { 0 } else { fault_rate_sel };
        let params = TasksetParams::baseline(n_tasks, util_pct * 10_000);
        let miss_policy = [
            MissPolicy::Continue,
            MissPolicy::Abort,
            MissPolicy::SkipNextRelease,
        ][miss_sel as usize];
        let ts = with_miss_policy(&generate(&params, &platform(), seed), miss_policy);
        let horizon = ts.tasks().iter().map(|t| t.period).max().unwrap() * 3;
        let mut cfg = config(horizon, Policy::FixedPriority, wc, scale, seed);
        cfg.attribution = true;
        cfg.fault = FaultPlan {
            seed,
            dma_fault_rate_ppm: fault_rate_ppm,
            max_retries: 3,
            jitter_max_cycles: 50,
        };
        let legacy = simulate(&ts, &platform(), &cfg.clone().with_engine(Engine::Legacy));
        let des = simulate(&ts, &platform(), &cfg.with_engine(Engine::Des));
        let blame_legacy = rtmdm_obs::attribute(&legacy.trace)
            .expect("legacy trace conserves response time");
        let blame_des = rtmdm_obs::attribute(&des.trace)
            .expect("des trace conserves response time");
        prop_assert_eq!(blame_legacy, blame_des);
    }

    /// Conservation of wall time under both engines: CPU busy and idle
    /// partition the horizon exactly, and the stall share of each
    /// resource's busy time never exceeds it — the property that pins
    /// the settlement accounting (stall = wall − work, never
    /// saturated away) for completions landing anywhere in an interval.
    #[test]
    fn settlement_conserves_wall_time(
        seed in 0u64..100_000,
        n_tasks in 1usize..6,
        util_pct in 5u64..90,
        scale in 300_000u64..=1_000_000,
        fault_rate_sel in 0u64..=1_000_000,
        engine_des in proptest::bool::ANY,
    ) {
        let fault_rate_ppm = if fault_rate_sel < 200_000 { 0 } else { fault_rate_sel };
        let params = TasksetParams::baseline(n_tasks, util_pct * 10_000);
        let ts = generate(&params, &platform(), seed);
        let horizon = ts.tasks().iter().map(|t| t.period).max().unwrap() * 3;
        let mut cfg = config(horizon, Policy::FixedPriority, false, scale, seed);
        cfg.engine = if engine_des { Engine::Des } else { Engine::Legacy };
        cfg.fault = FaultPlan {
            seed,
            dma_fault_rate_ppm: fault_rate_ppm,
            max_retries: 3,
            jitter_max_cycles: 50,
        };
        let m = simulate(&ts, &platform(), &cfg).metrics;
        prop_assert_eq!(m.cpu_busy_cycles + m.cpu_idle_cycles, horizon);
        prop_assert!(m.cpu_stall_cycles <= m.cpu_busy_cycles);
        prop_assert!(m.dma_stall_cycles <= m.dma_busy_cycles);
        prop_assert!(m.dma_busy_cycles <= horizon);
    }
}
