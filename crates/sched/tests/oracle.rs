//! Choice-oracle contract tests: the oracle hook must be invisible when
//! it answers every query with the deterministic default, and a recorded
//! script must replay identically on both engines — these two properties
//! are what make explorer witnesses trustworthy.

use rtmdm_mcusim::{Cycles, FaultPlan, PlatformConfig, TraceKind};
use rtmdm_sched::gen::{generate, TasksetParams};
use rtmdm_sched::script::{
    Choice, ChoicePoint, ScriptOracle, ScriptedChoice, SimOracle, StateHash,
};
use rtmdm_sched::sim::{
    simulate, simulate_with_oracle, simulate_with_oracle_forked, Engine, Policy, RaceKind,
    SimConfig, SimResult,
};
use rtmdm_sched::{Segment, SporadicTask, StagingMode, TaskSet};

fn cy(n: u64) -> Cycles {
    Cycles::new(n)
}

fn platform() -> PlatformConfig {
    PlatformConfig::stm32f746_qspi()
}

fn config(horizon: u64, engine: Engine) -> SimConfig {
    SimConfig {
        horizon: cy(horizon),
        policy: Policy::FixedPriority,
        exec_scale_min_ppm: 1_000_000,
        seed: 0,
        work_conserving: false,
        fault: FaultPlan::NONE,
        engine,
        attribution: false,
        staging_window: 2,
    }
}

fn overlapped(name: &str, period: u64, segs: &[(u64, u64)]) -> SporadicTask {
    SporadicTask::new(
        name,
        cy(period),
        cy(period),
        segs.iter().map(|&(c, b)| Segment::new(cy(c), b)).collect(),
        StagingMode::Overlapped,
    )
    .expect("valid task")
}

fn resident(name: &str, period: u64, deadline: u64, compute: u64) -> SporadicTask {
    SporadicTask::new(
        name,
        cy(period),
        cy(deadline),
        vec![Segment::new(cy(compute), 0)],
        StagingMode::Resident,
    )
    .expect("valid task")
}

fn assert_same_run(a: &SimResult, b: &SimResult, ctx: &str) {
    assert_eq!(a.trace.events(), b.trace.events(), "{ctx}: trace");
    assert_eq!(a.stats, b.stats, "{ctx}: stats");
    assert_eq!(a.races, b.races, "{ctx}: races");
}

/// An oracle that always answers the deterministic default.
struct DefaultOracle;

impl SimOracle for DefaultOracle {
    fn choose(&mut self, point: ChoicePoint, _state: StateHash) -> Choice {
        Choice::default_for(&point)
    }
}

/// A default-answering oracle must be invisible: the run is
/// byte-identical to a plain `simulate` of the same config, on both
/// engines, for generated task sets. This is the foundation the
/// explorer's "default spine" rests on.
#[test]
fn default_oracle_run_is_byte_identical_to_plain() {
    let p = platform();
    for seed in 0..8u64 {
        let params = TasksetParams::baseline(3, 500_000);
        let ts = generate(&params, &p, seed);
        let horizon = ts.tasks().iter().map(|t| t.period.get()).max().unwrap() * 3;
        for engine in [Engine::Legacy, Engine::Des] {
            let cfg = config(horizon, engine);
            let plain = simulate(&ts, &p, &cfg);
            let mut oracle = DefaultOracle;
            let oracled = simulate_with_oracle(&ts, &p, &cfg, &mut oracle);
            assert_same_run(&plain, &oracled, &format!("seed {seed} {engine:?}"));
        }
    }
}

/// With `exec_scale_min_ppm < 1_000_000` the oracle's default answer is
/// WCET, so the oracled run must match a plain run whose scale floor is
/// pinned at WCET (the RNG never fires under an oracle).
#[test]
fn default_oracle_pins_exec_scale_at_wcet() {
    let p = platform();
    let ts = TaskSet::from_tasks(vec![
        overlapped("a", 40_000, &[(3_000, 2_048), (4_000, 1_024)]),
        resident("b", 70_000, 70_000, 9_000),
    ]);
    let mut scaled = config(200_000, Engine::Des);
    scaled.exec_scale_min_ppm = 400_000;
    let mut oracle = DefaultOracle;
    let oracled = simulate_with_oracle(&ts, &p, &scaled, &mut oracle);
    let wcet = simulate(&ts, &p, &config(200_000, Engine::Des));
    assert_eq!(oracled.trace.events(), wcet.trace.events());
    assert_eq!(oracled.stats, wcet.stats);
}

/// Scripted release jitter delays a job's entry while its deadline stays
/// anchored at the nominal release: enough jitter turns an easily
/// feasible job into a deadline miss.
#[test]
fn scripted_jitter_keeps_deadline_anchored() {
    let p = platform();
    let ts = TaskSet::from_tasks(vec![resident("t", 100_000, 50_000, 20_000)]);
    let cfg = config(100_000, Engine::Des);
    // No jitter: finishes well inside the deadline.
    assert!(simulate(&ts, &p, &cfg).no_misses());
    // 40k cycles of jitter: entry at 40k + ~20k compute > 50k deadline.
    let script = vec![ScriptedChoice {
        point: ChoicePoint::ReleaseJitter { task: 0, job: 0 },
        value: Choice::ReleaseJitter(cy(40_000)),
    }];
    let mut oracle = ScriptOracle::new(script);
    let run = simulate_with_oracle(&ts, &p, &cfg, &mut oracle);
    assert!(run.stats[0].misses >= 1, "anchored deadline must be missed");
    assert!(run
        .trace
        .events()
        .iter()
        .any(|e| matches!(e.kind, TraceKind::DeadlineMissed { .. })));
}

/// A scripted transfer fault forces the re-issue path: the trace carries
/// the `FetchFaulted` event and the faulted run finishes strictly later
/// than the clean one.
#[test]
fn scripted_transfer_fault_forces_retry() {
    let p = platform();
    let ts = TaskSet::from_tasks(vec![overlapped(
        "a",
        400_000,
        &[(3_000, 4_096), (3_000, 4_096)],
    )]);
    let mut cfg = config(400_000, Engine::Des);
    // A live fault environment is required for the oracle to be asked;
    // the rate itself is ignored under an oracle.
    cfg.fault = FaultPlan {
        seed: 1,
        dma_fault_rate_ppm: 1,
        max_retries: 3,
        jitter_max_cycles: 0,
    };
    struct FaultFirst;
    impl SimOracle for FaultFirst {
        fn choose(&mut self, point: ChoicePoint, _state: StateHash) -> Choice {
            match point {
                ChoicePoint::TransferFault {
                    seg: 0, attempt: 0, ..
                } => Choice::TransferFault(true),
                _ => Choice::default_for(&point),
            }
        }
    }
    let mut faulty = FaultFirst;
    let run = simulate_with_oracle(&ts, &p, &cfg, &mut faulty);
    assert!(run
        .trace
        .events()
        .iter()
        .any(|e| matches!(e.kind, TraceKind::FetchFaulted { attempt: 0, .. })));
    let mut clean = DefaultOracle;
    let clean_run = simulate_with_oracle(&ts, &p, &cfg, &mut clean);
    assert!(clean_run
        .trace
        .events()
        .iter()
        .all(|e| !matches!(e.kind, TraceKind::FetchFaulted { .. })));
    assert!(run.stats[0].total_response > clean_run.stats[0].total_response);
}

/// The default two-ahead staging window provably excludes buffer-half
/// overlap, so the always-on race monitor must stay silent; a widened
/// window of 3 lets the DMA write segment `k + 2` into the half the CPU
/// is still reading segment `k` from, and the monitor must report it.
#[test]
fn staging_window_three_reaches_buffer_race() {
    let p = platform();
    // Long computes with small fetches: the DMA runs far ahead of the
    // CPU as soon as the window allows it.
    let ts = TaskSet::from_tasks(vec![overlapped(
        "a",
        2_000_000,
        &[
            (200_000, 256),
            (200_000, 256),
            (200_000, 256),
            (200_000, 256),
        ],
    )]);
    let safe = simulate(&ts, &p, &config(2_000_000, Engine::Des));
    assert!(safe.races.is_empty(), "window 2 must be race-free");
    for engine in [Engine::Legacy, Engine::Des] {
        let mut wide = config(2_000_000, engine);
        wide.staging_window = 3;
        let racy = simulate(&ts, &p, &wide);
        assert!(
            !racy.races.is_empty(),
            "window 3 must reach a staging race ({engine:?})"
        );
        let r = &racy.races[0];
        assert_eq!(r.write_seg % 2, r.clobbered_seg % 2, "same buffer half");
        assert_ne!(r.write_seg, r.clobbered_seg);
        assert!(matches!(
            r.kind,
            RaceKind::CpuRead | RaceKind::StagedUnconsumed
        ));
    }
}

/// Script replay is deterministic and engine-independent: the same
/// script produces byte-identical runs under Legacy and DES, and across
/// repeated replays. This is the witness-replay guarantee.
#[test]
fn script_replay_is_engine_identical() {
    let p = platform();
    let ts = TaskSet::from_tasks(vec![
        overlapped("a", 60_000, &[(4_000, 2_048), (5_000, 2_048)]),
        resident("b", 90_000, 90_000, 12_000),
    ]);
    let mut cfg = config(360_000, Engine::Des);
    cfg.exec_scale_min_ppm = 500_000;
    cfg.fault = FaultPlan {
        seed: 0,
        dma_fault_rate_ppm: 1,
        max_retries: 2,
        jitter_max_cycles: 0,
    };
    // A deliberately mixed script; positional replay tolerates kind
    // mismatches by degrading to defaults, so any script is replayable.
    let script = vec![
        ScriptedChoice {
            point: ChoicePoint::ReleaseJitter { task: 0, job: 0 },
            value: Choice::ReleaseJitter(cy(1_500)),
        },
        ScriptedChoice {
            point: ChoicePoint::ExecScale {
                task: 0,
                job: 0,
                min_ppm: 500_000,
            },
            value: Choice::ExecScale(700_000),
        },
        ScriptedChoice {
            point: ChoicePoint::TransferFault {
                task: 0,
                job: 0,
                seg: 0,
                attempt: 0,
            },
            value: Choice::TransferFault(true),
        },
        ScriptedChoice {
            point: ChoicePoint::ReleaseJitter { task: 1, job: 0 },
            value: Choice::ReleaseJitter(cy(900)),
        },
    ];
    let run_with = |engine: Engine| {
        let mut cfg = cfg.clone();
        cfg.engine = engine;
        let mut oracle = ScriptOracle::new(script.clone());
        simulate_with_oracle(&ts, &p, &cfg, &mut oracle)
    };
    let legacy = run_with(Engine::Legacy);
    let des = run_with(Engine::Des);
    assert_same_run(&legacy, &des, "legacy vs des");
    let des_again = run_with(Engine::Des);
    assert_same_run(&des, &des_again, "replay determinism");
}

/// The state hash handed to the oracle is identical across engines at
/// every query: recording the hashes of a DES run and replaying the
/// same choices under Legacy must observe the same sequence.
#[test]
fn oracle_state_hashes_are_engine_identical() {
    struct Recorder {
        hashes: Vec<StateHash>,
    }
    impl SimOracle for Recorder {
        fn choose(&mut self, point: ChoicePoint, state: StateHash) -> Choice {
            self.hashes.push(state);
            Choice::default_for(&point)
        }
    }
    let p = platform();
    let ts = TaskSet::from_tasks(vec![
        overlapped("a", 50_000, &[(4_000, 2_048), (4_000, 1_024)]),
        resident("b", 80_000, 80_000, 10_000),
    ]);
    let cfg = config(400_000, Engine::Des);
    let run = |engine: Engine| {
        let mut cfg = cfg.clone();
        cfg.engine = engine;
        let mut rec = Recorder { hashes: Vec::new() };
        simulate_with_oracle(&ts, &p, &cfg, &mut rec);
        rec.hashes
    };
    let des = run(Engine::Des);
    let legacy = run(Engine::Legacy);
    assert!(!des.is_empty());
    assert_eq!(des, legacy);
}

/// Fork contract, part 1: a run resumed from any captured snapshot is
/// byte-identical — trace, stats, metrics, races — to the run that
/// captured it, on both engines, including under scripted jitter,
/// scale, and fault choices. This is what lets the explorer branch
/// from a snapshot instead of replaying from time zero.
#[test]
fn forked_resume_reproduces_the_capturing_run() {
    let p = platform();
    let ts = TaskSet::from_tasks(vec![
        overlapped("a", 60_000, &[(4_000, 2_048), (5_000, 2_048)]),
        resident("b", 90_000, 90_000, 12_000),
    ]);
    let script = vec![
        ScriptedChoice {
            point: ChoicePoint::ReleaseJitter { task: 0, job: 0 },
            value: Choice::ReleaseJitter(cy(1_500)),
        },
        ScriptedChoice {
            point: ChoicePoint::ExecScale {
                task: 0,
                job: 0,
                min_ppm: 500_000,
            },
            value: Choice::ExecScale(700_000),
        },
        ScriptedChoice {
            point: ChoicePoint::TransferFault {
                task: 0,
                job: 0,
                seg: 0,
                attempt: 0,
            },
            value: Choice::TransferFault(true),
        },
        ScriptedChoice {
            point: ChoicePoint::ReleaseJitter { task: 1, job: 0 },
            value: Choice::ReleaseJitter(cy(900)),
        },
    ];
    for engine in [Engine::Legacy, Engine::Des] {
        let mut cfg = config(360_000, engine);
        cfg.exec_scale_min_ppm = 500_000;
        cfg.fault = FaultPlan {
            seed: 0,
            dma_fault_rate_ppm: 1,
            max_retries: 2,
            jitter_max_cycles: 0,
        };
        let mut snaps = Vec::new();
        let mut oracle = ScriptOracle::new(script.clone());
        let full = simulate_with_oracle_forked(&ts, &p, &cfg, &mut oracle, None, Some(&mut snaps));
        assert!(!snaps.is_empty(), "{engine:?}: no snapshots captured");
        for snap in &snaps {
            assert!(snap.size_hint() > 0);
            let suffix = script[snap.queries_before().min(script.len())..].to_vec();
            let mut resume_oracle = ScriptOracle::new(suffix);
            let resumed =
                simulate_with_oracle_forked(&ts, &p, &cfg, &mut resume_oracle, Some(snap), None);
            let ctx = format!("{engine:?} @ {:?}", snap.instant());
            assert_same_run(&full, &resumed, &ctx);
            assert_eq!(full.metrics, resumed.metrics, "{ctx}: metrics");
        }
    }
}

/// Fork contract, part 2 (the ISSUE pin): snapshots exclude the
/// engine-private dirty flags, so the oracle fingerprint sequence a
/// forked run observes is identical across engines — resuming a DES
/// snapshot under DES and a legacy snapshot under legacy sees the same
/// state hashes at the same choice positions.
#[test]
fn forked_fingerprints_are_engine_identical() {
    struct Recorder {
        hashes: Vec<StateHash>,
    }
    impl SimOracle for Recorder {
        fn choose(&mut self, point: ChoicePoint, state: StateHash) -> Choice {
            self.hashes.push(state);
            Choice::default_for(&point)
        }
    }
    let p = platform();
    let ts = TaskSet::from_tasks(vec![
        overlapped("a", 50_000, &[(4_000, 2_048), (4_000, 1_024)]),
        resident("b", 80_000, 80_000, 10_000),
    ]);
    let run = |engine: Engine| {
        let cfg = config(400_000, engine);
        let mut snaps = Vec::new();
        let mut rec = Recorder { hashes: Vec::new() };
        simulate_with_oracle_forked(&ts, &p, &cfg, &mut rec, None, Some(&mut snaps));
        let full = rec.hashes;
        // Resume from a mid-run snapshot and record the suffix.
        let snap = &snaps[snaps.len() / 2];
        let mut rec = Recorder { hashes: Vec::new() };
        simulate_with_oracle_forked(&ts, &p, &cfg, &mut rec, Some(snap), None);
        (full, snap.queries_before(), rec.hashes)
    };
    let (full_des, qb_des, suffix_des) = run(Engine::Des);
    let (full_legacy, qb_legacy, suffix_legacy) = run(Engine::Legacy);
    assert!(!suffix_des.is_empty());
    // The forked suffix equals the capturing run's tail...
    assert_eq!(suffix_des, full_des[qb_des..].to_vec());
    assert_eq!(suffix_legacy, full_legacy[qb_legacy..].to_vec());
    // ...and is engine-identical, like the full sequence.
    assert_eq!(full_des, full_legacy);
    assert_eq!(qb_des, qb_legacy);
    assert_eq!(suffix_des, suffix_legacy);
}

/// Fork contract, part 3 (cost): resuming past a quiet prefix re-does
/// only suffix work — the resumed run answers exactly the queries after
/// the snapshot instead of the whole sequence. Deliberately a
/// work-based assertion (query count), not wall clock, so it cannot
/// flake.
#[test]
fn resume_answers_only_suffix_queries() {
    struct Counter {
        n: usize,
    }
    impl SimOracle for Counter {
        fn choose(&mut self, point: ChoicePoint, _state: StateHash) -> Choice {
            self.n += 1;
            Choice::default_for(&point)
        }
    }
    let p = platform();
    // A long horizon over many releases: the last snapshot sits deep in
    // the run, so its suffix is a small fraction of the whole.
    let ts = TaskSet::from_tasks(vec![overlapped("a", 20_000, &[(2_000, 1_024)])]);
    let cfg = config(400_000, Engine::Des);
    let mut snaps = Vec::new();
    let mut full = Counter { n: 0 };
    simulate_with_oracle_forked(&ts, &p, &cfg, &mut full, None, Some(&mut snaps));
    let last = snaps.last().expect("snapshots captured");
    assert!(last.queries_before() > 0, "last snapshot is not mid-run");
    let mut resumed = Counter { n: 0 };
    simulate_with_oracle_forked(&ts, &p, &cfg, &mut resumed, Some(last), None);
    assert_eq!(resumed.n, full.n - last.queries_before());
    assert!(resumed.n < full.n);
}
