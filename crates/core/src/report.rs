//! Plain-text table rendering for experiment output.

/// Renders an aligned ASCII table. The first row width is taken from
/// `headers`; every row must have the same number of columns.
///
/// # Panics
///
/// Panics if a row's column count differs from the header's.
///
/// # Examples
///
/// ```rust
/// use rtmdm_core::report::table;
///
/// let t = table(
///     &["task", "misses"],
///     &[vec!["kws".into(), "0".into()], vec!["vww".into(), "2".into()]],
/// );
/// assert!(t.contains("kws"));
/// assert!(t.lines().count() >= 4);
/// ```
pub fn table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(row.len(), cols, "row column count mismatch");
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let sep: String = widths
        .iter()
        .map(|w| format!("-{}-", "-".repeat(*w)))
        .collect::<Vec<_>>()
        .join("+");
    let fmt_row = |cells: &[String]| -> String {
        cells
            .iter()
            .zip(&widths)
            .map(|(c, w)| format!(" {c:<w$} "))
            .collect::<Vec<_>>()
            .join("|")
    };
    let mut out = String::new();
    out.push_str(&fmt_row(
        &headers.iter().map(|h| h.to_string()).collect::<Vec<_>>(),
    ));
    out.push('\n');
    out.push_str(&sep);
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row));
        out.push('\n');
    }
    out
}

/// Formats parts-per-million as a percentage with two decimals.
pub fn ppm_as_pct(ppm: u64) -> String {
    format!("{}.{:02}%", ppm / 10_000, (ppm % 10_000) / 100)
}

/// Formats cycles as milliseconds against a clock frequency.
pub fn cycles_as_ms(cycles: rtmdm_mcusim::Cycles, cpu: rtmdm_mcusim::Frequency) -> String {
    let us = cpu.micros_from_cycles(cycles);
    format!("{}.{:03} ms", us / 1000, us % 1000)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtmdm_mcusim::{Cycles, Frequency};

    #[test]
    fn table_aligns_columns() {
        let t = table(&["a", "longheader"], &[vec!["xxxxxx".into(), "1".into()]]);
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 3);
        // All lines equal width.
        assert_eq!(lines[0].len(), lines[2].len());
    }

    #[test]
    #[should_panic(expected = "column count mismatch")]
    fn ragged_rows_panic() {
        let _ = table(&["a", "b"], &[vec!["only-one".into()]]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(ppm_as_pct(1_000_000), "100.00%");
        assert_eq!(ppm_as_pct(123_456), "12.34%");
        assert_eq!(
            cycles_as_ms(Cycles::new(200_000), Frequency::mhz(200)),
            "1.000 ms"
        );
    }
}
