//! Admission-as-a-service: batch/online admission queries over a
//! content-addressed analysis cache.
//!
//! The `rtmdm serve` subcommand feeds JSONL admission requests (one
//! JSON object per line) through a [`Service`]. A fleet of
//! near-identical device configurations asks the same sub-questions over and
//! over — lowering the same spec against the same platform, running the
//! same RTA fixed point, scaling the same set for headroom — so the
//! service memoizes each sub-problem under a canonical key
//! ([`rtmdm_sched::analysis::canonical_key`]) and answers repeats from
//! the cache.
//!
//! # Wire format
//!
//! Request (one per line; unknown fields are rejected, not ignored):
//!
//! ```json
//! {"id":"q1","platform":"stm32f746-qspi",
//!  "options":{"policy":"fixed-priority","work_conserving":false},
//!  "tasks":[{"name":"kws","model":"ds-cnn","period_us":100000}]}
//! ```
//!
//! Response (schema [`SERVE_SCHEMA`]): `id` echo, `ok`, `verdict`
//! (`admit`/`reject`), the RTA table, occupancy and headroom in ppm,
//! and the static verifier's findings. Malformed lines produce an
//! error record (`ok: false` with an `error` message) instead of
//! killing the stream — the never-silently-fail counterpart of RTM053.
//!
//! # The cache-correctness invariant
//!
//! Responses carry **no** marker distinguishing a cache hit from a
//! fresh computation, and every cached value is the exact value the
//! direct computation produces. Warm answers are therefore
//! byte-identical to cold ones, which is what makes sharding a batch
//! across worker threads over one shared cache safe: output depends
//! only on input order, never on thread count or arrival order
//! (`RTMDM_THREADS=1` and `=8` produce identical bytes).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{OnceLock, PoisonError, RwLock, RwLockReadGuard, RwLockWriteGuard};

use rtmdm_check::Report;
use rtmdm_dnn::zoo;
use rtmdm_mcusim::{Cycles, PlatformConfig};
use rtmdm_sched::analysis::{
    analysis_key, canonical_key, critical_scaling_ppm, AnalysisOutcome, SchedulerMode,
};
use rtmdm_sched::sim::Policy;
use rtmdm_sched::{MissPolicy, TaskSet};
use serde::{Content, Serialize};

use crate::check::SystemSpec;
use crate::error::AdmitError;
use crate::framework::{
    direct_analysis, lower_spec, AdmissionHooks, FrameworkOptions, Lowered, PriorityAssignment,
    RtMdm,
};
use crate::spec::{Strategy, TaskSpec};

pub use rtmdm_check::JsonReport;

/// Schema tag stamped into every response line.
pub const SERVE_SCHEMA: &str = "rtmdm-serve/1";

/// Takes a shared read lock, recovering the guard if a previous holder
/// panicked. Every cached value is immutable once inserted, so a
/// poisoned map is still internally consistent — dropping the whole
/// cache over a worker panic would only cost recomputation, not
/// correctness.
fn read<T>(m: &RwLock<T>) -> RwLockReadGuard<'_, T> {
    m.read().unwrap_or_else(PoisonError::into_inner)
}

/// Takes the exclusive write lock (see [`read`] for poison recovery).
/// Held only for the insert itself, never across a computation.
fn write<T>(m: &RwLock<T>) -> RwLockWriteGuard<'_, T> {
    m.write().unwrap_or_else(PoisonError::into_inner)
}

/// Monotone hit counters, updated with relaxed atomics (they are
/// telemetry, never part of an answer).
#[derive(Debug, Default)]
struct Counters {
    queries: AtomicU64,
    answers_reused: AtomicU64,
    lowerings_reused: AtomicU64,
    analyses_reused: AtomicU64,
    headrooms_reused: AtomicU64,
}

/// A point-in-time snapshot of the service's cache telemetry.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lines answered (including error records).
    pub queries: u64,
    /// Full queries answered straight from the response cache.
    pub answers_reused: u64,
    /// Spec lowerings (segmentation + strategy transform) reused.
    pub lowerings_reused: u64,
    /// Schedulability-analysis fixed points reused.
    pub analyses_reused: u64,
    /// Headroom (critical-scaling) binary searches reused.
    pub headrooms_reused: u64,
}

/// One fully parsed admission request.
#[derive(Debug, Clone)]
struct ParsedRequest {
    id: String,
    platform: PlatformConfig,
    options: FrameworkOptions,
    tasks: Vec<TaskSpec>,
}

/// One row of the response's RTA table (priority order).
#[derive(Debug, Clone, Serialize)]
struct RtaRow {
    priority: usize,
    task: String,
    deadline_cycles: u64,
    wcrt_cycles: Option<u64>,
    meets: bool,
}

/// The id-independent part of an answer — exactly what the response
/// cache stores. Re-serialized per query with the request's own `id`,
/// so a cache hit still echoes the right identifier.
#[derive(Debug, Clone)]
struct Answer {
    verdict: &'static str,
    schedulable: bool,
    reject_reason: Option<String>,
    occupancy_ppm: u64,
    headroom_ppm: u64,
    rta: Vec<RtaRow>,
    findings: JsonReport,
}

/// A successful (well-formed request) response line.
#[derive(Debug, Serialize)]
struct Response {
    schema: String,
    id: String,
    ok: bool,
    verdict: String,
    schedulable: bool,
    reject_reason: Option<String>,
    occupancy_ppm: u64,
    headroom_ppm: u64,
    rta: Vec<RtaRow>,
    findings: JsonReport,
}

/// An error record for a malformed request line.
#[derive(Debug, Serialize)]
struct ErrorRecord {
    schema: String,
    id: String,
    ok: bool,
    error: String,
}

/// The admission service: a shared, content-addressed memo of every
/// sub-problem the admission pipeline computes.
///
/// All methods take `&self`; the caches are interior-mutable behind
/// reader-writer locks, so one `Service` can be shared by the worker
/// threads of a sharded batch, and the warm path — a fleet of repeats
/// hitting keys that are already cached — takes only shared read
/// locks, never serializing the workers behind one another. The write
/// lock is held for the insert alone, never across a computation. Two
/// workers racing on the same missing key may both compute it — the
/// computation is deterministic, so whichever insert lands first wins
/// and both return the same value.
///
/// # Examples
///
/// ```rust
/// use rtmdm_core::Service;
///
/// let service = Service::new();
/// let line = r#"{"id":"q1","tasks":[{"name":"kws","model":"ds-cnn","period_us":100000}]}"#;
/// let cold = service.answer_line(line);
/// let warm = service.answer_line(line);
/// assert_eq!(cold, warm, "warm answers are byte-identical to cold");
/// assert!(cold.contains("\"verdict\":\"admit\""));
/// ```
#[derive(Debug, Default)]
pub struct Service {
    /// `canonical_key("lower", …)` → lowered spec. Only successful
    /// lowerings are cached; errors are rare and cheap to recompute
    /// (and [`AdmitError`] is deliberately not `Clone`).
    lowerings: RwLock<HashMap<String, Lowered>>,
    /// Analysis key (policy + dma-awareness + RTA sub-problem) → RTA /
    /// EDF fixed point.
    analyses: RwLock<HashMap<String, AnalysisOutcome>>,
    /// `headroom:` + RTA sub-problem key → critical scaling factor.
    headrooms: RwLock<HashMap<String, u64>>,
    /// Normalized request (id stripped) → finished answer.
    answers: RwLock<HashMap<String, Answer>>,
    stats: Counters,
}

impl Service {
    /// Creates an empty service.
    pub fn new() -> Service {
        Service::default()
    }

    /// Answers one JSONL request line. Always returns exactly one JSON
    /// response line: a verdict for well-formed requests, an error
    /// record (`ok: false`) for malformed ones. Never panics on bad
    /// input and never terminates the stream.
    pub fn answer_line(&self, line: &str) -> String {
        self.stats.queries.fetch_add(1, Ordering::Relaxed);
        match parse_request(line) {
            Err((id, error)) => to_json(&ErrorRecord {
                schema: SERVE_SCHEMA.to_owned(),
                id,
                ok: false,
                error,
            }),
            Ok(req) => {
                let answer = self.answer_for(&req);
                to_json(&Response {
                    schema: SERVE_SCHEMA.to_owned(),
                    id: req.id.clone(),
                    ok: true,
                    verdict: answer.verdict.to_owned(),
                    schedulable: answer.schedulable,
                    reject_reason: answer.reject_reason,
                    occupancy_ppm: answer.occupancy_ppm,
                    headroom_ppm: answer.headroom_ppm,
                    rta: answer.rta,
                    findings: answer.findings,
                })
            }
        }
    }

    /// Answers a batch of request lines, sharded across the
    /// `RTMDM_THREADS` worker pool. Results come back in input order
    /// regardless of which worker answered which line.
    pub fn answer_batch(&self, lines: Vec<String>) -> Vec<String> {
        rtmdm_par::par_map_seeded(lines, |line| self.answer_line(&line))
    }

    /// [`Service::answer_batch`] with an explicit worker count,
    /// bypassing `RTMDM_THREADS` (the determinism gate compares
    /// one-thread output against many-thread output byte for byte).
    pub fn answer_batch_with_threads(&self, threads: usize, lines: Vec<String>) -> Vec<String> {
        rtmdm_par::par_map_with_threads(threads, lines, |line| self.answer_line(&line))
    }

    /// Snapshot of the cache telemetry.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            queries: self.stats.queries.load(Ordering::Relaxed),
            answers_reused: self.stats.answers_reused.load(Ordering::Relaxed),
            lowerings_reused: self.stats.lowerings_reused.load(Ordering::Relaxed),
            analyses_reused: self.stats.analyses_reused.load(Ordering::Relaxed),
            headrooms_reused: self.stats.headrooms_reused.load(Ordering::Relaxed),
        }
    }

    /// The answer for a parsed request, via the full-query cache.
    fn answer_for(&self, req: &ParsedRequest) -> Answer {
        let key = request_key(req);
        if let Some(hit) = read(&self.answers).get(&key).cloned() {
            self.stats.answers_reused.fetch_add(1, Ordering::Relaxed);
            return hit;
        }
        let answer = self.evaluate(req);
        write(&self.answers)
            .entry(key)
            .or_insert_with(|| answer.clone());
        answer
    }

    /// Runs the admission pipeline with the memoizing hooks installed.
    fn evaluate(&self, req: &ParsedRequest) -> Answer {
        let hooks = CachedHooks { service: self };
        let mut fw = match RtMdm::with_options(req.platform.clone(), req.options.clone()) {
            Ok(fw) => fw,
            Err(e) => return self.rejected(req, &hooks, e),
        };
        for spec in &req.tasks {
            if let Err(e) = fw.add_task(spec.clone()) {
                return self.rejected(req, &hooks, e);
            }
        }
        match fw.admit_hooked(&hooks) {
            Ok((admission, ordered, report)) => {
                let schedulable = admission.schedulable();
                let headroom_ppm = if schedulable {
                    self.headroom_ppm(&ordered, &req.platform, &req.options)
                } else {
                    0
                };
                Answer {
                    verdict: if schedulable { "admit" } else { "reject" },
                    schedulable,
                    reject_reason: (!schedulable)
                        .then(|| "schedulability analysis rejected the set".to_owned()),
                    occupancy_ppm: admission.occupancy_ppm,
                    headroom_ppm,
                    rta: rta_rows(&admission),
                    findings: embed_report(&report),
                }
            }
            Err(e) => self.rejected(req, &hooks, e),
        }
    }

    /// The answer for a request admission refuses outright (memory,
    /// timing, blocking findings, …). The static verifier still runs —
    /// through the same caching hooks — so the caller gets findings
    /// explaining *why*, not just an error string.
    fn rejected(&self, req: &ParsedRequest, hooks: &dyn AdmissionHooks, e: AdmitError) -> Answer {
        let findings = match &e {
            AdmitError::Check(report) => embed_report(report),
            _ => {
                let sys = SystemSpec {
                    platform: req.platform.clone(),
                    options: req.options.clone(),
                    tasks: req.tasks.clone(),
                };
                embed_report(&sys.check_hooked(hooks))
            }
        };
        Answer {
            verdict: "reject",
            schedulable: false,
            reject_reason: Some(e.to_string()),
            occupancy_ppm: 0,
            headroom_ppm: 0,
            rta: Vec::new(),
            findings,
        }
    }

    /// Memoized headroom: the largest uniform WCET scaling (ppm) the
    /// RT-MDM analysis still admits. Only meaningful for the analysis
    /// the binary search runs ([`critical_scaling_ppm`] is
    /// fixed-priority, dma-aware); other policies report zero.
    fn headroom_ppm(
        &self,
        ordered: &TaskSet,
        platform: &PlatformConfig,
        options: &FrameworkOptions,
    ) -> u64 {
        if options.policy != Policy::FixedPriority || !options.dma_aware_analysis {
            return 0;
        }
        let mode = scheduler_mode(options);
        let key = format!("headroom:{}", analysis_key(ordered, platform, mode));
        if let Some(&hit) = read(&self.headrooms).get(&key) {
            self.stats.headrooms_reused.fetch_add(1, Ordering::Relaxed);
            return hit;
        }
        let value = critical_scaling_ppm(ordered, platform, mode);
        write(&self.headrooms).insert(key, value);
        value
    }
}

/// The memoizing [`AdmissionHooks`] implementation: lowering and
/// analysis consult the service's caches before computing.
struct CachedHooks<'a> {
    service: &'a Service,
}

impl AdmissionHooks for CachedHooks<'_> {
    fn lower(
        &self,
        platform: &PlatformConfig,
        options: &FrameworkOptions,
        spec: &TaskSpec,
        cap: Option<Cycles>,
    ) -> Result<Lowered, AdmitError> {
        // The cap is derived from the *whole* spec set (shortest
        // deadline), so it is an input of this sub-problem, not a
        // function of `spec` alone.
        let doc = Content::Map(vec![
            ("cap".to_owned(), cap.to_content()),
            ("options".to_owned(), options.to_content()),
            ("platform".to_owned(), platform.to_content()),
            ("spec".to_owned(), spec.to_content()),
        ]);
        let key = canonical_key("lower", &doc);
        if let Some(hit) = read(&self.service.lowerings).get(&key).cloned() {
            self.service
                .stats
                .lowerings_reused
                .fetch_add(1, Ordering::Relaxed);
            return Ok(hit);
        }
        let lowered = lower_spec(platform, options, spec, cap)?;
        write(&self.service.lowerings).insert(key, lowered.clone());
        Ok(lowered)
    }

    fn analyze(
        &self,
        ordered: &TaskSet,
        platform: &PlatformConfig,
        options: &FrameworkOptions,
    ) -> AnalysisOutcome {
        // The RTA key covers (tasks, platform, mode); the analysis
        // admission actually runs additionally depends on the policy
        // and the dma-awareness ablation flag, so both join the key.
        let doc = Content::Map(vec![
            (
                "dma_aware".to_owned(),
                Content::Bool(options.dma_aware_analysis),
            ),
            ("policy".to_owned(), options.policy.to_content()),
            (
                "rta".to_owned(),
                Content::Str(analysis_key(ordered, platform, scheduler_mode(options))),
            ),
        ]);
        let key = canonical_key("analysis", &doc);
        if let Some(hit) = read(&self.service.analyses).get(&key).cloned() {
            self.service
                .stats
                .analyses_reused
                .fetch_add(1, Ordering::Relaxed);
            return hit;
        }
        let outcome = direct_analysis(ordered, platform, options);
        write(&self.service.analyses).insert(key, outcome.clone());
        outcome
    }
}

/// The dispatch discipline the options select.
fn scheduler_mode(options: &FrameworkOptions) -> SchedulerMode {
    if options.work_conserving {
        SchedulerMode::WorkConserving
    } else {
        SchedulerMode::Gated
    }
}

/// Canonical full-query key: the resolved request with the `id`
/// stripped, so textual variations (field order, defaults spelled out
/// or omitted) of the same question share one cache entry.
///
/// Tasks are keyed on the model's zoo *name*, not its layer list:
/// parsing only ever resolves models from the zoo, where names are a
/// bijection, and canonically serializing every layer of every model
/// would dominate the per-query cost of a cache hit.
fn request_key(req: &ParsedRequest) -> String {
    let task_content = |spec: &TaskSpec| {
        Content::Map(vec![
            (
                "activation_budget_bytes".to_owned(),
                spec.activation_budget_bytes.to_content(),
            ),
            ("buffer_bytes".to_owned(), spec.buffer_bytes.to_content()),
            ("deadline_us".to_owned(), spec.deadline_us.to_content()),
            ("miss_policy".to_owned(), spec.miss_policy.to_content()),
            (
                "model".to_owned(),
                Content::Str(spec.model.name().to_owned()),
            ),
            ("name".to_owned(), Content::Str(spec.name.clone())),
            ("period_us".to_owned(), spec.period_us.to_content()),
            ("strategy".to_owned(), spec.strategy.to_content()),
        ])
    };
    let doc = Content::Map(vec![
        ("options".to_owned(), req.options.to_content()),
        ("platform".to_owned(), req.platform.to_content()),
        (
            "tasks".to_owned(),
            Content::Seq(req.tasks.iter().map(task_content).collect()),
        ),
    ]);
    canonical_key("query", &doc)
}

/// RTA table rows mirroring [`crate::Admission::to_table`]'s verdict
/// logic (retry budgets charged, EDF's set-level verdict spread over
/// its bound-less rows).
fn rta_rows(a: &crate::Admission) -> Vec<RtaRow> {
    a.names
        .iter()
        .enumerate()
        .map(|(p, name)| {
            let response = a.analysis.response_of(p);
            let meets = match (a.policy, response) {
                (_, Some(r)) => r + a.retry_budget_of(p) <= a.deadlines[p],
                (Policy::Edf, None) => a.analysis.schedulable,
                (_, None) => false,
            };
            RtaRow {
                priority: p,
                task: name.clone(),
                deadline_cycles: a.deadlines[p].get(),
                wcrt_cycles: response.map(Cycles::get),
                meets,
            }
        })
        .collect()
}

/// Embeds a verifier report as its JSON document. The round trip
/// through the renderer cannot fail for reports the verifier itself
/// produced; if it ever does, the response still goes out, carrying an
/// empty findings document rather than killing the stream.
fn embed_report(report: &Report) -> JsonReport {
    serde_json::from_str(&report.to_json()).unwrap_or_else(|_| JsonReport {
        schema: rtmdm_check::SCHEMA.to_owned(),
        errors: 0,
        warnings: 0,
        findings: Vec::new(),
    })
}

/// Serializes a response value. Infallible for the derived response
/// types (no maps with non-string keys, no NaN floats).
fn to_json<T: Serialize>(value: &T) -> String {
    serde_json::to_string(value).expect("response serialization is infallible")
}

// ---------------------------------------------------------------------
// Request parsing.
//
// The derived `Deserialize` of the vendored serde requires every field
// to be present, which is wrong for a wire format full of optional
// knobs — so requests are parsed by hand from the raw `Content` tree,
// with unknown fields rejected (a typo'd option silently meaning "use
// the default" would be an unsound admission service).
// ---------------------------------------------------------------------

/// One-word description of a content node, for error messages.
fn kind_of(c: &Content) -> &'static str {
    match c {
        Content::Null => "null",
        Content::Bool(_) => "bool",
        Content::U64(_) | Content::I64(_) => "integer",
        Content::F64(_) => "float",
        Content::Str(_) => "string",
        Content::Seq(_) => "array",
        Content::Map(_) => "object",
    }
}

fn want_str<'c>(v: &'c Content, field: &str) -> Result<&'c str, String> {
    match v {
        Content::Str(s) => Ok(s),
        other => Err(format!(
            "field `{field}` must be a string, found {}",
            kind_of(other)
        )),
    }
}

fn want_u64(v: &Content, field: &str) -> Result<u64, String> {
    match v {
        Content::U64(n) => Ok(*n),
        other => Err(format!(
            "field `{field}` must be a non-negative integer, found {}",
            kind_of(other)
        )),
    }
}

fn want_bool(v: &Content, field: &str) -> Result<bool, String> {
    match v {
        Content::Bool(b) => Ok(*b),
        other => Err(format!(
            "field `{field}` must be a boolean, found {}",
            kind_of(other)
        )),
    }
}

fn parse_policy(v: &Content) -> Result<Policy, String> {
    match want_str(v, "options.policy")? {
        "fixed-priority" => Ok(Policy::FixedPriority),
        "edf" => Ok(Policy::Edf),
        other => Err(format!(
            "unknown policy `{other}` (known: fixed-priority, edf)"
        )),
    }
}

fn parse_assignment(v: &Content) -> Result<PriorityAssignment, String> {
    match want_str(v, "options.assignment")? {
        "deadline-monotonic" => Ok(PriorityAssignment::DeadlineMonotonic),
        "rate-monotonic" => Ok(PriorityAssignment::RateMonotonic),
        "insertion-order" => Ok(PriorityAssignment::InsertionOrder),
        "audsley" => Ok(PriorityAssignment::Audsley),
        other => Err(format!(
            "unknown assignment `{other}` (known: deadline-monotonic, \
             rate-monotonic, insertion-order, audsley)"
        )),
    }
}

fn parse_strategy(v: &Content, field: &str) -> Result<Strategy, String> {
    match want_str(v, field)? {
        "rt-mdm" => Ok(Strategy::RtMdm),
        "fetch-then-compute" => Ok(Strategy::FetchThenCompute),
        "whole-dnn" => Ok(Strategy::WholeDnn),
        "all-in-sram" => Ok(Strategy::AllInSram),
        other => Err(format!(
            "unknown strategy `{other}` (known: rt-mdm, fetch-then-compute, \
             whole-dnn, all-in-sram)"
        )),
    }
}

fn parse_miss_policy(v: &Content, field: &str) -> Result<MissPolicy, String> {
    match want_str(v, field)? {
        "continue" => Ok(MissPolicy::Continue),
        "abort" => Ok(MissPolicy::Abort),
        "skip-next" => Ok(MissPolicy::SkipNextRelease),
        other => Err(format!(
            "unknown miss policy `{other}` (known: continue, abort, skip-next)"
        )),
    }
}

fn parse_platform(v: &Content) -> Result<PlatformConfig, String> {
    let name = want_str(v, "platform")?;
    PlatformConfig::presets()
        .into_iter()
        .find(|p| p.name == name)
        .ok_or_else(|| {
            let known: Vec<String> = PlatformConfig::presets()
                .into_iter()
                .map(|p| p.name)
                .collect();
            format!("unknown platform `{name}` (known: {})", known.join(", "))
        })
}

fn parse_options(v: &Content) -> Result<FrameworkOptions, String> {
    let Content::Map(entries) = v else {
        return Err(format!(
            "field `options` must be an object, found {}",
            kind_of(v)
        ));
    };
    let mut options = FrameworkOptions::default();
    for (key, value) in entries {
        match key.as_str() {
            "policy" => options.policy = parse_policy(value)?,
            "assignment" => options.assignment = parse_assignment(value)?,
            "dma_aware_analysis" => {
                options.dma_aware_analysis = want_bool(value, "options.dma_aware_analysis")?;
            }
            "work_conserving" => {
                options.work_conserving = want_bool(value, "options.work_conserving")?;
            }
            "force_strategy" => {
                options.force_strategy = Some(parse_strategy(value, "options.force_strategy")?);
            }
            "segment_compute_cap_us" => {
                options.segment_compute_cap_us =
                    Some(want_u64(value, "options.segment_compute_cap_us")?);
            }
            "tile_oversized_layers" => {
                options.tile_oversized_layers = want_bool(value, "options.tile_oversized_layers")?;
            }
            "miss_policy" => {
                options.miss_policy = parse_miss_policy(value, "options.miss_policy")?;
            }
            other => return Err(format!("unknown option `{other}`")),
        }
    }
    Ok(options)
}

/// The model zoo, built once. [`zoo::by_name`] constructs the model's
/// layer list on every call, which is far too slow for the per-query
/// hot path; a lookup against this table plus a clone is microseconds.
fn zoo_table() -> &'static [rtmdm_dnn::Model] {
    static ZOO: OnceLock<Vec<rtmdm_dnn::Model>> = OnceLock::new();
    ZOO.get_or_init(zoo::all)
}

/// Resolves a zoo model by name from the memoized table.
fn zoo_model(name: &str) -> Option<rtmdm_dnn::Model> {
    zoo_table().iter().find(|m| m.name() == name).cloned()
}

fn parse_task(v: &Content, index: usize) -> Result<TaskSpec, String> {
    let Content::Map(entries) = v else {
        return Err(format!(
            "tasks[{index}] must be an object, found {}",
            kind_of(v)
        ));
    };
    let mut name = None;
    let mut model = None;
    let mut period_us = None;
    let mut deadline_us = None;
    let mut buffer_bytes = None;
    let mut activation_budget_bytes = None;
    let mut strategy = None;
    let mut miss_policy = None;
    for (key, value) in entries {
        let field = format!("tasks[{index}].{key}");
        match key.as_str() {
            "name" => name = Some(want_str(value, &field)?.to_owned()),
            "model" => {
                let model_name = want_str(value, &field)?;
                model = Some(zoo_model(model_name).ok_or_else(|| {
                    let known: Vec<String> =
                        zoo_table().iter().map(|m| m.name().to_owned()).collect();
                    format!("unknown model `{model_name}` (known: {})", known.join(", "))
                })?);
            }
            "period_us" => period_us = Some(want_u64(value, &field)?),
            "deadline_us" => deadline_us = Some(want_u64(value, &field)?),
            "buffer_bytes" => buffer_bytes = Some(want_u64(value, &field)?),
            "activation_budget_bytes" => {
                activation_budget_bytes = Some(want_u64(value, &field)?);
            }
            "strategy" => strategy = Some(parse_strategy(value, &field)?),
            "miss_policy" => miss_policy = Some(parse_miss_policy(value, &field)?),
            other => return Err(format!("unknown task field `{other}` in tasks[{index}]")),
        }
    }
    let name = name.ok_or_else(|| format!("tasks[{index}] is missing required field `name`"))?;
    let model = model.ok_or_else(|| format!("tasks[{index}] is missing required field `model`"))?;
    let period_us =
        period_us.ok_or_else(|| format!("tasks[{index}] is missing required field `period_us`"))?;
    let mut spec = TaskSpec::new(name, model, period_us, deadline_us.unwrap_or(period_us));
    if let Some(bytes) = buffer_bytes {
        spec = spec.with_buffer_bytes(bytes);
    }
    if let Some(bytes) = activation_budget_bytes {
        spec = spec.with_activation_budget(bytes);
    }
    if let Some(s) = strategy {
        spec = spec.with_strategy(s);
    }
    if let Some(p) = miss_policy {
        spec = spec.with_miss_policy(p);
    }
    Ok(spec)
}

/// Parses one request line. On error, returns the request `id` (when
/// the line was at least valid JSON with a readable `id`) plus the
/// message, so the error record can still be correlated.
fn parse_request(line: &str) -> Result<ParsedRequest, (String, String)> {
    let doc: Content = serde_json::from_str(line.trim())
        .map_err(|e| (String::new(), format!("invalid JSON: {e}")))?;
    let Content::Map(entries) = &doc else {
        return Err((
            String::new(),
            format!("request must be a JSON object, found {}", kind_of(&doc)),
        ));
    };
    let id = match doc.get("id") {
        None => String::new(),
        Some(Content::Str(s)) => s.clone(),
        Some(Content::U64(n)) => n.to_string(),
        Some(other) => {
            return Err((
                String::new(),
                format!("field `id` must be a string, found {}", kind_of(other)),
            ));
        }
    };
    let fail = |msg: String| (id.clone(), msg);
    for (key, _) in entries {
        if !matches!(key.as_str(), "id" | "platform" | "options" | "tasks") {
            return Err(fail(format!("unknown request field `{key}`")));
        }
    }
    let platform = match doc.get("platform") {
        None => PlatformConfig::stm32f746_qspi(),
        Some(v) => parse_platform(v).map_err(&fail)?,
    };
    let options = match doc.get("options") {
        None => FrameworkOptions::default(),
        Some(v) => parse_options(v).map_err(&fail)?,
    };
    let tasks_doc = doc
        .get("tasks")
        .ok_or_else(|| fail("missing required field `tasks`".to_owned()))?;
    let Content::Seq(items) = tasks_doc else {
        return Err(fail(format!(
            "field `tasks` must be an array, found {}",
            kind_of(tasks_doc)
        )));
    };
    let tasks = items
        .iter()
        .enumerate()
        .map(|(i, item)| parse_task(item, i))
        .collect::<Result<Vec<_>, _>>()
        .map_err(&fail)?;
    Ok(ParsedRequest {
        id,
        platform,
        options,
        tasks,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(id: &str, tasks: &str) -> String {
        format!(r#"{{"id":"{id}","platform":"stm32f746-qspi","tasks":[{tasks}]}}"#)
    }

    const KWS: &str = r#"{"name":"kws","model":"ds-cnn","period_us":100000}"#;

    #[test]
    fn well_formed_query_admits_with_rta_table() {
        let s = Service::new();
        let out = s.answer_line(&line("q1", KWS));
        assert!(out.contains(r#""schema":"rtmdm-serve/1""#), "{out}");
        assert!(out.contains(r#""id":"q1""#), "{out}");
        assert!(out.contains(r#""ok":true"#), "{out}");
        assert!(out.contains(r#""verdict":"admit""#), "{out}");
        assert!(out.contains(r#""task":"kws""#), "{out}");
        assert!(out.contains(r#""meets":true"#), "{out}");
    }

    #[test]
    fn warm_answers_are_byte_identical_to_cold() {
        let s = Service::new();
        let q = line("q1", KWS);
        let cold = s.answer_line(&q);
        let warm = s.answer_line(&q);
        assert_eq!(cold, warm);
        assert_eq!(s.stats().answers_reused, 1);
    }

    #[test]
    fn textual_variants_of_one_question_share_the_cache_but_echo_their_id() {
        let s = Service::new();
        // Same question: different id, explicit default deadline, and
        // reordered fields.
        let a = s.answer_line(&line("a", KWS));
        let b = s.answer_line(
            r#"{"tasks":[{"period_us":100000,"model":"ds-cnn","name":"kws","deadline_us":100000}],"platform":"stm32f746-qspi","id":"b"}"#,
        );
        assert_eq!(s.stats().answers_reused, 1, "normalized key must match");
        assert!(a.contains(r#""id":"a""#));
        assert!(b.contains(r#""id":"b""#));
        assert_eq!(a.replace(r#""id":"a""#, r#""id":"b""#), b);
    }

    #[test]
    fn single_task_mutation_reuses_unchanged_lowerings() {
        let s = Service::new();
        let two = r#"{"name":"kws","model":"ds-cnn","period_us":100000},{"name":"ic","model":"resnet8","period_us":400000}"#;
        let three = r#"{"name":"kws","model":"ds-cnn","period_us":100000},{"name":"ic","model":"resnet8","period_us":400000},{"name":"ae","model":"autoencoder","period_us":400000}"#;
        s.answer_line(&line("base", two));
        let before = s.stats().lowerings_reused;
        s.answer_line(&line("grown", three));
        // kws and ic lower identically in the grown set (the derived
        // segment cap is the same 25 ms), so both come from the cache.
        assert!(
            s.stats().lowerings_reused >= before + 2,
            "stats: {:?}",
            s.stats()
        );
    }

    #[test]
    fn overload_rejects_with_reason_and_infeasible_request_gets_findings() {
        let s = Service::new();
        let out = s.answer_line(&line(
            "over",
            r#"{"name":"ae","model":"autoencoder","period_us":4000}"#,
        ));
        assert!(out.contains(r#""verdict":"reject""#), "{out}");
        assert!(out.contains(r#""schedulable":false"#), "{out}");
        let out = s.answer_line(
            r#"{"id":"tight","tasks":[{"name":"vww","model":"mobilenet-v1-025","period_us":500000,"buffer_bytes":4096}]}"#,
        );
        assert!(out.contains(r#""verdict":"reject""#), "{out}");
        assert!(out.contains("memory planning"), "{out}");
    }

    #[test]
    fn malformed_lines_get_error_records_not_panics() {
        let s = Service::new();
        for (bad, needle) in [
            ("{not json", "invalid JSON"),
            ("[1,2,3]", "must be a JSON object"),
            (
                r#"{"id":"x","tasks":[],"bogus":1}"#,
                "unknown request field",
            ),
            (r#"{"id":"x"}"#, "missing required field `tasks`"),
            (
                r#"{"id":"x","platform":"zx81","tasks":[]}"#,
                "unknown platform",
            ),
            (
                r#"{"id":"x","tasks":[{"name":"t","model":"gpt-5","period_us":1}]}"#,
                "unknown model",
            ),
            (
                r#"{"id":"x","options":{"polciy":"edf"},"tasks":[]}"#,
                "unknown option",
            ),
            (
                r#"{"id":"x","tasks":[{"name":"t","model":"ds-cnn"}]}"#,
                "missing required field `period_us`",
            ),
        ] {
            let out = s.answer_line(bad);
            assert!(out.contains(r#""ok":false"#), "{bad} -> {out}");
            assert!(out.contains(needle), "{bad} -> {out}");
        }
        // The id is still echoed when the line was readable JSON.
        let out = s.answer_line(r#"{"id":"x","tasks":0}"#);
        assert!(out.contains(r#""id":"x""#), "{out}");
    }

    #[test]
    fn empty_task_list_is_a_reject_not_a_crash() {
        let s = Service::new();
        let out = s.answer_line(r#"{"id":"none","tasks":[]}"#);
        assert!(out.contains(r#""ok":true"#), "{out}");
        assert!(out.contains(r#""verdict":"reject""#), "{out}");
        assert!(out.contains("no tasks"), "{out}");
    }

    #[test]
    fn options_parse_and_change_the_answer() {
        let s = Service::new();
        let aware = s.answer_line(
            r#"{"id":"q","tasks":[{"name":"ae","model":"autoencoder","period_us":4000}]}"#,
        );
        let oblivious = s.answer_line(
            r#"{"id":"q","options":{"dma_aware_analysis":false},"tasks":[{"name":"ae","model":"autoencoder","period_us":4000}]}"#,
        );
        assert!(aware.contains(r#""verdict":"reject""#), "{aware}");
        assert!(oblivious.contains(r#""verdict":"admit""#), "{oblivious}");
        let edf = s.answer_line(
            r#"{"id":"q","options":{"policy":"edf"},"tasks":[{"name":"kws","model":"ds-cnn","period_us":100000}]}"#,
        );
        assert!(edf.contains(r#""verdict":"admit""#), "{edf}");
        assert!(edf.contains(r#""headroom_ppm":0"#), "{edf}");
    }

    #[test]
    fn batches_preserve_input_order_at_any_thread_count() {
        let s = Service::new();
        let lines: Vec<String> = (0..12)
            .map(|i| {
                line(
                    &format!("q{i}"),
                    // Two distinct questions interleaved.
                    if i % 2 == 0 {
                        KWS
                    } else {
                        r#"{"name":"ic","model":"resnet8","period_us":400000}"#
                    },
                )
            })
            .collect();
        let one = s.answer_batch_with_threads(1, lines.clone());
        let many = s.answer_batch_with_threads(8, lines.clone());
        assert_eq!(one, many, "thread count must not change output bytes");
        for (i, out) in one.iter().enumerate() {
            assert!(out.contains(&format!(r#""id":"q{i}""#)), "{out}");
        }
    }

    #[test]
    fn headroom_is_positive_and_memoized_for_admitted_sets() {
        let s = Service::new();
        let q = line("h", KWS);
        let out = s.answer_line(&q);
        let ppm: u64 = out
            .split(r#""headroom_ppm":"#)
            .nth(1)
            .and_then(|rest| rest.split(',').next())
            .and_then(|n| n.parse().ok())
            .expect("headroom field present");
        assert!(
            ppm >= 1_000_000,
            "an admitted set tolerates at least identity scaling: {out}"
        );
        s.answer_line(&line("h2", KWS));
        // Second query hits the full-response cache, not the headroom
        // memo; a *mutated* set that re-derives the same ordered tasks
        // would hit it. Force a recompute path via a distinct option
        // that does not change the ordered set or analysis mode.
        assert_eq!(s.stats().answers_reused, 1);
    }
}
