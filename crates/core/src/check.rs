//! Static verification of a full system specification.
//!
//! [`SystemSpec`] bundles everything admission consumes — a platform,
//! framework options, and task specifications — and [`SystemSpec::check`]
//! runs every `rtmdm-check` pass over it in dependency order:
//!
//! 1. **platform** sanity (`RTM040`);
//! 2. per-task **graph** lints (`RTM03x`) and spec-level **timing**
//!    lints (`RTM020`/`RTM021`), which need no platform;
//! 3. per-task **plan** well-formedness (`RTM01x`) and **staging** race
//!    detection (`RTM00x`) over the same lowering admission would use;
//! 4. the **SRAM layout** replayed through the arena allocator and
//!    checked for aliasing and overflow (`RTM003`/`RTM004`);
//! 5. set-level **admission** lints (`RTM02x`, `RTM041`) over the
//!    priority-ordered task set.
//!
//! [`RtMdm::admit`] runs the same verification first and refuses
//! admission with [`AdmitError::Check`](crate::AdmitError::Check) when
//! any *structural* error is present (see
//! [`Rule::blocks_admission`](rtmdm_check::Rule::blocks_admission));
//! feasibility lints never block, so an overloaded-but-well-formed set
//! still admits to an unschedulable verdict.

use rtmdm_check::{
    check_model, check_plan, check_platform, check_sram_regions, check_staging, check_taskset,
    check_timing, AdmissionContext, ExploreLimits, ExploreStats, ExploreStrategy, Finding, Report,
    Rule, SramRegion, Witness,
};
use rtmdm_mcusim::{Cycles, PlatformConfig};
use rtmdm_sched::analysis::hyperperiod;
use rtmdm_sched::sim::{Policy, SimConfig};
use rtmdm_sched::TaskSet;
use rtmdm_xmem::SramArena;

use crate::error::AdmitError;
use crate::framework::{
    compute_cap_for, lower_spec, priority_order_for, weight_region_bytes, AdmissionHooks,
    DirectHooks, FrameworkOptions, RtMdm,
};
use crate::spec::{Strategy, TaskSpec};

/// Parameters of the opt-in exhaustive schedule-space exploration
/// (`RTM05x`), run by [`SystemSpec::check_with`] after the static
/// passes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExploreOptions {
    /// Budget on distinct canonical `(state, choice-point)` pairs;
    /// exceeding it yields `RTM053` (inconclusive, never silently
    /// safe).
    pub max_states: usize,
    /// Upper endpoint of the release-jitter dimension, in microseconds;
    /// zero (the default) keeps arrivals strictly periodic.
    pub jitter_max_us: u64,
    /// Lower endpoint of the per-job execution-time interval, in ppm of
    /// WCET; `1_000_000` (the default) pins every job at WCET.
    pub exec_scale_min_ppm: u64,
    /// Exploration horizon in microseconds. `None` (the default)
    /// derives it as one hyperperiod plus the largest deadline, falling
    /// back to three times the largest period when the hyperperiod
    /// overflows (that fallback is a bounded probe, not full coverage —
    /// the admission lint `RTM025` already flags such sets).
    pub horizon_us: Option<u64>,
    /// Staging-window width handed to the simulator; the default `2` is
    /// the double-buffer discipline. Wider windows exist for `RTM051`
    /// reachability experiments.
    pub staging_window: u32,
    /// Path-execution strategy (`--strategy replay|fork`). Verdicts,
    /// counters, and witnesses are byte-identical across strategies;
    /// `Fork` (the default) is the cheaper one.
    pub strategy: ExploreStrategy,
    /// Worker threads for speculative path execution (`--threads`);
    /// `0` (the default) defers to `RTMDM_THREADS` / available
    /// parallelism. Outputs are byte-identical at any count.
    pub threads: usize,
}

impl Default for ExploreOptions {
    fn default() -> ExploreOptions {
        ExploreOptions {
            max_states: 20_000,
            jitter_max_us: 0,
            exec_scale_min_ppm: 1_000_000,
            horizon_us: None,
            staging_window: 2,
            strategy: ExploreStrategy::default(),
            threads: 0,
        }
    }
}

/// Options for [`SystemSpec::check_with`]; the default runs exactly the
/// static passes of [`SystemSpec::check`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CheckOptions {
    /// When set, runs the exhaustive schedule-space explorer after the
    /// static passes (on a spec free of blocking structural errors).
    pub explore: Option<ExploreOptions>,
}

/// The result of [`SystemSpec::check_with`]: the diagnostic report plus
/// the exploration artifacts when exploration ran.
#[derive(Debug, Clone)]
pub struct CheckOutcome {
    /// All findings — static passes first, exploration verdicts after.
    pub report: Report,
    /// The replayable counterexample behind an `RTM050`–`RTM052`
    /// finding.
    pub witness: Option<Witness>,
    /// Search counters; `None` when exploration did not run (not
    /// requested, or the spec had blocking structural errors).
    pub explore_stats: Option<ExploreStats>,
}

/// A complete system specification for static verification: what
/// [`RtMdm`] admission consumes, but constructible without going
/// through (and being rejected by) `add_task`'s eager validation — the
/// verifier's job is to explain broken specs, not to refuse them.
#[derive(Debug, Clone)]
pub struct SystemSpec {
    /// Target platform (checked, not assumed valid).
    pub platform: PlatformConfig,
    /// Framework options the admission would run with.
    pub options: FrameworkOptions,
    /// Task specifications in insertion order.
    pub tasks: Vec<TaskSpec>,
}

impl SystemSpec {
    /// Creates a spec for `platform` with default options and no tasks.
    pub fn new(platform: PlatformConfig) -> Self {
        SystemSpec::with_options(platform, FrameworkOptions::default())
    }

    /// Creates a spec with explicit options and no tasks.
    pub fn with_options(platform: PlatformConfig, options: FrameworkOptions) -> Self {
        SystemSpec {
            platform,
            options,
            tasks: Vec::new(),
        }
    }

    /// Adds a task specification (no validation — that is `check`'s
    /// job).
    pub fn push(&mut self, spec: TaskSpec) -> &mut Self {
        self.tasks.push(spec);
        self
    }

    /// Runs every static pass and returns the combined report.
    pub fn check(&self) -> Report {
        self.check_hooked(&DirectHooks)
    }

    /// [`SystemSpec::check`] with lowering routed through `hooks`: the
    /// admission service substitutes its content-addressed lowering
    /// cache so the plan/staging passes run on cached artifacts instead
    /// of re-segmenting every model per query.
    pub(crate) fn check_hooked(&self, hooks: &dyn AdmissionHooks) -> Report {
        let mut report = Report::new();

        report.extend(check_platform(&self.platform));
        let platform_ok = report.is_clean();

        // Platform-independent passes run unconditionally.
        for spec in &self.tasks {
            report.extend(
                check_model(&spec.model)
                    .into_iter()
                    .map(|f| f.with_task(spec.name.clone())),
            );
            report.extend(check_timing(&spec.name, spec.period_us, spec.deadline_us));
        }
        if !platform_ok {
            // Cycle conversions and bus timings are meaningless (or
            // divide by zero) on an invalid platform.
            return report;
        }

        // Lower each task exactly as admission would and check the
        // resulting plans. Staging-race analysis applies to the
        // pre-spill plan: spill extras are additional staging traffic,
        // not part of the double-buffered weight discipline.
        let cap = compute_cap_for(&self.platform, &self.options, &self.tasks);
        let mut tasks = Vec::with_capacity(self.tasks.len());
        for spec in &self.tasks {
            match hooks.lower(&self.platform, &self.options, spec, cap) {
                Ok(lowered) => {
                    report.extend(
                        check_plan(&lowered.pre_plan, &spec.model, &self.options.cost_model)
                            .into_iter()
                            .map(|f| f.with_task(spec.name.clone())),
                    );
                    if lowered.strategy == Strategy::RtMdm {
                        report.extend(
                            check_staging(&lowered.pre_plan, &self.platform)
                                .into_iter()
                                .map(|f| f.with_task(spec.name.clone())),
                        );
                    }
                    tasks.push(lowered.task);
                }
                Err(AdmitError::Memory(e)) => {
                    // An unrealizable segmentation is a plan error.
                    report.push(
                        Finding::new(Rule::Rtm012, e.to_string())
                            .with_task(spec.name.clone())
                            .with_model(spec.model.name().to_owned()),
                    );
                }
                // Timing inconsistencies are already covered by
                // `check_timing` above.
                Err(_) => {}
            }
        }

        report.extend(self.check_sram());

        // Set-level lints need every task lowered.
        if !tasks.is_empty() && tasks.len() == self.tasks.len() {
            let ts = TaskSet::from_tasks(tasks);
            let order = priority_order_for(&self.platform, &self.options, &ts);
            let ordered = ts.reordered(&order);
            let ctx = AdmissionContext {
                edf: matches!(self.options.policy, Policy::Edf),
                work_conserving: self.options.work_conserving,
                dma_aware: self.options.dma_aware_analysis,
            };
            report.extend(check_taskset(&ordered, &self.platform, &ctx));
        }

        report
    }

    /// Runs the static passes, then — when requested and the spec has
    /// no blocking structural errors — the exhaustive schedule-space
    /// explorer over the lowered, priority-ordered task set.
    ///
    /// Exploration findings (`RTM050`–`RTM053`) are appended to the
    /// report; a violation additionally carries a self-contained
    /// [`Witness`] that replays the violating run byte for byte.
    pub fn check_with(&self, options: &CheckOptions) -> CheckOutcome {
        let report = self.check();
        let Some(x) = &options.explore else {
            return CheckOutcome {
                report,
                witness: None,
                explore_stats: None,
            };
        };
        // A structurally broken spec cannot be lowered and simulated;
        // the blocking findings already tell the whole story.
        let ordered = if report.blocks_admission() {
            None
        } else {
            self.lowered_ordered()
        };
        let Some(ordered) = ordered else {
            return CheckOutcome {
                report,
                witness: None,
                explore_stats: None,
            };
        };
        let horizon = match x.horizon_us {
            Some(us) => self.platform.cpu.cycles_from_micros(us),
            None => auto_horizon(&ordered),
        };
        let config = SimConfig {
            horizon,
            policy: self.options.policy,
            exec_scale_min_ppm: x.exec_scale_min_ppm,
            seed: 0,
            work_conserving: self.options.work_conserving,
            fault: self.options.fault,
            engine: self.options.engine,
            attribution: true,
            staging_window: x.staging_window,
        };
        let limits = ExploreLimits {
            max_states: x.max_states,
            jitter_max_cycles: self.platform.cpu.cycles_from_micros(x.jitter_max_us).get(),
            strategy: x.strategy,
            threads: x.threads,
            ..ExploreLimits::default()
        };
        let outcome = rtmdm_check::explore(&ordered, &self.platform, &config, &limits);
        let mut report = report;
        report.extend(outcome.findings);
        CheckOutcome {
            report,
            witness: outcome.witness,
            explore_stats: Some(outcome.stats),
        }
    }

    /// Lowers every task exactly as admission would and returns the
    /// priority-ordered set, or `None` when any task fails to lower or
    /// the spec is empty (the static passes report why).
    fn lowered_ordered(&self) -> Option<TaskSet> {
        let cap = compute_cap_for(&self.platform, &self.options, &self.tasks);
        let mut tasks = Vec::with_capacity(self.tasks.len());
        for spec in &self.tasks {
            tasks.push(
                lower_spec(&self.platform, &self.options, spec, cap)
                    .ok()?
                    .task,
            );
        }
        if tasks.is_empty() {
            return None;
        }
        let ts = TaskSet::from_tasks(tasks);
        let order = priority_order_for(&self.platform, &self.options, &ts);
        Some(ts.reordered(&order))
    }

    /// Replays the SRAM layout through the arena allocator and checks
    /// the placed regions for aliasing and overflow.
    fn check_sram(&self) -> Vec<Finding> {
        let mut arena = SramArena::new(self.platform.sram_bytes);
        let mut regions = Vec::new();
        let mut place = |arena: &mut SramArena, label: String, bytes: u64| {
            // The arena rejects zero-size requests; a degenerate spec
            // still gets a 1-byte region so layout checking proceeds.
            match arena.alloc(label.clone(), bytes.max(1), 8) {
                Ok(handle) => {
                    if let Some(offset) = arena.offset_of(handle) {
                        regions.push(SramRegion::new(label, offset, bytes.max(1)));
                    }
                    None
                }
                Err(e) => Some(Finding::new(
                    Rule::Rtm004,
                    format!("SRAM layout fails at region `{label}`: {e}"),
                )),
            }
        };
        let reserve = rtmdm_xmem::SramLayout::RUNTIME_RESERVE;
        if let Some(f) = place(&mut arena, "runtime-reserve".to_owned(), reserve) {
            return vec![f];
        }
        for spec in &self.tasks {
            let act = spec.resolved_activation_bytes();
            if let Some(f) = place(&mut arena, format!("{}-activations", spec.name), act) {
                return vec![f];
            }
            let weights = weight_region_bytes(&self.options, spec);
            if let Some(f) = place(&mut arena, format!("{}-weights", spec.name), weights) {
                return vec![f];
            }
        }
        check_sram_regions(&regions, self.platform.sram_bytes)
    }
}

/// One hyperperiod plus the largest deadline — the synchronous-pattern
/// coverage horizon — or three times the largest period when the
/// hyperperiod overflows the simulation cap.
fn auto_horizon(ts: &TaskSet) -> Cycles {
    let d_max = ts
        .tasks()
        .iter()
        .map(|t| t.deadline)
        .max()
        .unwrap_or(Cycles::ZERO);
    let p_max = ts
        .tasks()
        .iter()
        .map(|t| t.period)
        .max()
        .unwrap_or(Cycles::ZERO);
    match hyperperiod(ts).and_then(|h| h.checked_add(d_max)) {
        Some(h) => h,
        None => p_max * 3,
    }
}

impl RtMdm {
    /// Runs the static verifier over this framework's platform, options,
    /// and task specifications. [`RtMdm::admit`] calls this implicitly
    /// and rejects on error-level structural findings.
    pub fn check(&self) -> Report {
        self.system_spec().check()
    }

    /// [`RtMdm::check`] plus the opt-in exhaustive schedule-space
    /// exploration (see [`SystemSpec::check_with`]).
    pub fn check_with(&self, options: &CheckOptions) -> CheckOutcome {
        self.system_spec().check_with(options)
    }

    /// [`RtMdm::check`] with lowering routed through `hooks` — the step
    /// [`RtMdm::admit_hooked`](RtMdm) runs before analysis so the
    /// admission service's cache also covers the verifier passes.
    pub(crate) fn check_hooked(&self, hooks: &dyn AdmissionHooks) -> Report {
        self.system_spec().check_hooked(hooks)
    }

    fn system_spec(&self) -> SystemSpec {
        SystemSpec {
            platform: self.platform().clone(),
            options: self.options().clone(),
            tasks: self.specs().to_vec(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtmdm_dnn::zoo;

    fn platform() -> PlatformConfig {
        PlatformConfig::stm32f746_qspi()
    }

    #[test]
    fn shipped_configurations_check_clean() {
        let mut spec = SystemSpec::new(platform());
        spec.push(TaskSpec::new("kws", zoo::ds_cnn(), 100_000, 100_000));
        spec.push(TaskSpec::new("ic", zoo::resnet8(), 400_000, 400_000));
        let report = spec.check();
        assert!(report.is_clean(), "{}", report.render_text());
    }

    #[test]
    fn bad_deadline_is_a_non_blocking_error_free_zone() {
        let mut spec = SystemSpec::new(platform());
        spec.push(TaskSpec::new("kws", zoo::ds_cnn(), 100_000, 200_000));
        let report = spec.check();
        assert!(report.findings.iter().any(|f| f.rule == Rule::Rtm020));
        assert!(report.blocks_admission());
    }

    #[test]
    fn invalid_platform_reports_rtm040_and_stops() {
        let mut spec = SystemSpec::new(platform().with_sram_bytes(16));
        spec.push(TaskSpec::new("kws", zoo::ds_cnn(), 100_000, 100_000));
        let report = spec.check();
        assert!(report.findings.iter().any(|f| f.rule == Rule::Rtm040));
        assert!(report.findings.iter().all(|f| matches!(
            f.rule,
            Rule::Rtm040 | Rule::Rtm020 | Rule::Rtm021
        ) || f.rule.category()
            == rtmdm_check::Category::Graph));
    }

    #[test]
    fn sram_overflow_is_reported_as_rtm004() {
        let mut spec = SystemSpec::new(platform().with_sram_bytes(48 * 1024));
        spec.push(
            TaskSpec::new("vww", zoo::mobilenet_v1_025(), 500_000, 500_000)
                .with_strategy(Strategy::AllInSram),
        );
        let report = spec.check();
        assert!(
            report.findings.iter().any(|f| f.rule == Rule::Rtm004),
            "{}",
            report.render_text()
        );
    }

    #[test]
    fn undersized_buffer_is_reported_as_rtm012() {
        let mut spec = SystemSpec::new(platform());
        spec.push(
            TaskSpec::new("vww", zoo::mobilenet_v1_025(), 500_000, 500_000)
                .with_buffer_bytes(4 * 1024),
        );
        let report = spec.check();
        assert!(
            report.findings.iter().any(|f| f.rule == Rule::Rtm012),
            "{}",
            report.render_text()
        );
    }

    #[test]
    fn overload_lints_do_not_block_admission() {
        // resnet8 every 10 ms is hopeless but structurally fine: the
        // report carries feasibility lints yet admission still runs to
        // an unschedulable verdict (CLI exit-2 semantics).
        let mut f = RtMdm::new(platform()).expect("platform");
        f.add_task(TaskSpec::new("ic", zoo::resnet8(), 10_000, 10_000))
            .expect("add");
        let report = f.check();
        assert!(!report.is_clean());
        assert!(!report.blocks_admission(), "{}", report.render_text());
        let admission = f.admit().expect("admission proceeds");
        assert!(!admission.schedulable());
    }

    #[test]
    fn explore_admitted_cell_is_proven_safe() {
        let mut spec = SystemSpec::new(platform());
        spec.push(TaskSpec::new("kws", zoo::ds_cnn(), 100_000, 100_000));
        spec.push(TaskSpec::new("ic", zoo::resnet8(), 400_000, 400_000));
        let outcome = spec.check_with(&CheckOptions {
            explore: Some(ExploreOptions::default()),
        });
        assert!(
            outcome.report.is_clean(),
            "{}",
            outcome.report.render_text()
        );
        let stats = outcome.explore_stats.expect("exploration ran");
        assert!(stats.complete, "default lattice must be covered");
        assert!(outcome.witness.is_none());
    }

    #[test]
    fn explore_overload_yields_rtm050_with_replayable_witness() {
        let mut spec = SystemSpec::new(platform());
        spec.push(TaskSpec::new("ic", zoo::resnet8(), 10_000, 10_000));
        let outcome = spec.check_with(&CheckOptions {
            explore: Some(ExploreOptions::default()),
        });
        assert!(
            outcome
                .report
                .findings
                .iter()
                .any(|f| f.rule == Rule::Rtm050),
            "{}",
            outcome.report.render_text()
        );
        let w = outcome.witness.expect("violation carries a witness");
        let replay = w.replay();
        let miss = replay
            .trace
            .events()
            .iter()
            .find(|e| matches!(e.kind, rtmdm_mcusim::TraceKind::DeadlineMissed { .. }))
            .expect("replay reproduces the miss");
        assert_eq!(miss.time.get(), w.at);
    }

    #[test]
    fn explore_skips_structurally_broken_specs() {
        let mut spec = SystemSpec::new(platform());
        spec.push(TaskSpec::new("kws", zoo::ds_cnn(), 100_000, 200_000));
        let outcome = spec.check_with(&CheckOptions {
            explore: Some(ExploreOptions::default()),
        });
        assert!(outcome.report.blocks_admission());
        assert!(outcome.explore_stats.is_none(), "nothing to simulate");
        assert!(outcome.witness.is_none());
    }

    #[test]
    fn framework_check_matches_system_spec_check() {
        let mut f = RtMdm::new(platform()).expect("platform");
        f.add_task(TaskSpec::new("kws", zoo::ds_cnn(), 100_000, 100_000))
            .expect("add");
        let mut spec = SystemSpec::new(platform());
        spec.push(TaskSpec::new("kws", zoo::ds_cnn(), 100_000, 100_000));
        assert_eq!(f.check().to_json(), spec.check().to_json());
    }
}
