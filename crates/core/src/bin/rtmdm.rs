//! `rtmdm` — command-line front end of the framework.
//!
//! ```text
//! rtmdm platforms
//! rtmdm models
//! rtmdm admit    --platform stm32f746-qspi --task kws=ds-cnn@100 --task ic=resnet8@400
//! rtmdm simulate --platform stm32f746-qspi --task kws=ds-cnn@100 --seconds 2
//! rtmdm optimize --platform stm32f746-qspi --task kws=ds-cnn@100 --task ic=resnet8@400
//! rtmdm trace    --platform stm32f746-qspi --task kws=ds-cnn@100 --out t.json --format chrome
//! rtmdm explain  --platform stm32f746-qspi --task kws=ds-cnn@100 --seconds 2
//! rtmdm check    --platform stm32f746-qspi --task kws=ds-cnn@100 --json --deny-warnings
//! rtmdm serve    --once --input queries.jsonl
//! ```
//!
//! Task syntax: `name=model@period_ms[/deadline_ms][:strategy]` with
//! strategy one of `rt-mdm`, `fetch-then-compute`, `whole-dnn`,
//! `all-in-sram`. The `trace` subcommand simulates like `simulate`,
//! then exports the event trace as Chrome trace-event JSON (load it in
//! Perfetto / `chrome://tracing`) or JSONL, and with `--gantt` renders
//! an ASCII Gantt chart. `--fault-rate PPM` (with `--fault-seed`,
//! `--fault-retries`, `--fault-jitter`) turns on seeded DMA fault
//! injection for `simulate`/`trace`, and `--miss-policy
//! continue|abort|skip-next` selects what the runtime does with jobs
//! that miss their deadline. `--engine legacy|des` picks the
//! simulator's time-advancement engine; both produce byte-identical
//! results (the default `des` is faster), so the knob exists for the
//! equivalence gate and throughput comparisons. `--attribution on|off`
//! (default `off`) makes `simulate`/`trace` record the causal anchor
//! events the attribution layer consumes; the default keeps traces
//! byte-identical to previous releases. The `explain` subcommand
//! simulates like `trace` with attribution forced on, then prints the
//! exact six-term response-time decomposition (`response = compute +
//! blocking_fetch + preemption + bus_contention + fault_refetch +
//! dispatch_wait`, conserved cycle-for-cycle): a ranked per-task blame
//! table, per-task response percentiles, and the dominant interference
//! source of every missed job; `--json` emits the machine-readable
//! report instead. The `check` subcommand runs the static
//! verifier without admitting: `--json` emits the machine-readable
//! report, `--deny-warnings` escalates warnings to errors, and
//! `--allow RTM0xx` / `--deny RTM0xx` tune individual rules.
//! `check --explain RTM0xx` prints one rule's severity, category,
//! and description instead of verifying anything (unknown IDs are a
//! usage error). The `serve` subcommand runs the admission service:
//! it reads JSONL admission requests (one JSON object per line) from
//! stdin or `--input PATH`, answers each on stdout (schema
//! `rtmdm-serve/1`), and memoizes analysis sub-problems across
//! queries so fleets of near-identical requests answer from the
//! cache; `--once` reads the whole input and answers it as one
//! sharded batch (input-order output), the default streams
//! line-by-line. Malformed lines produce `"ok":false` error records,
//! not a dead stream; `serve` exits 0 even when some lines were
//! malformed (1 only on I/O failure). A cache-hit summary goes to
//! stderr at EOF. `check --explore` additionally runs the exhaustive
//! schedule-space explorer over the admissible interleavings
//! (`RTM050`–`RTM053`): `--max-states N` bounds the search (the
//! default is 20000; exceeding the bound reports `RTM053`,
//! inconclusive rather than silently safe) and `--witness PATH`
//! writes the replayable counterexample JSON when a violation is
//! reached. `--strategy replay|fork` picks how the explorer executes
//! each path (`fork`, the default, resumes branches from mid-run
//! snapshots; `replay` re-runs each path from time zero) and
//! `--threads N` sets the speculative path-execution workers (0, the
//! default, defers to `RTMDM_THREADS`); neither changes a single
//! output byte. Exit status: 0 on success (schedulable for `admit`, no
//! errors for `check`), 2 when admission or verification rejects, 1
//! on usage errors.

use std::process::ExitCode;

use rtmdm_core::{report, FrameworkOptions, RtMdm, Strategy, TaskSpec};
use rtmdm_dnn::zoo;
use rtmdm_mcusim::PlatformConfig;
use rtmdm_obs::Timeline;
use rtmdm_sched::sim::{Engine, Policy};
use rtmdm_sched::MissPolicy;

fn usage() -> ExitCode {
    eprintln!(
        "usage: rtmdm <platforms|models|admit|simulate|optimize|trace|explain|check|serve> \
         [--platform NAME] [--task name=model@period_ms[/deadline_ms][:strategy]]… \
         [--seconds S] [--jitter PCT] [--seed N] [--edf] [--work-conserving] \
         [--fault-rate PPM] [--fault-seed N] [--fault-retries N] [--fault-jitter CYCLES] \
         [--miss-policy continue|abort|skip-next] [--engine legacy|des] \
         [--attribution on|off] [--out PATH] [--format chrome|jsonl] [--gantt] \
         [--json] [--deny-warnings] [--allow RULE] [--deny RULE] [--explain RULE] \
         [--explore] [--max-states N] [--strategy replay|fork] [--threads N] [--witness PATH] \
         (serve: [--once] [--input PATH])"
    );
    ExitCode::from(1)
}

/// Trace export encodings accepted by `--format`.
#[derive(Clone, Copy, PartialEq, Eq)]
enum TraceFormat {
    Chrome,
    Jsonl,
}

/// Why argument parsing failed: a malformed invocation (print the
/// usage string) or a specific mistake worth a targeted diagnostic.
enum CliError {
    Usage,
    Msg(String),
}

struct Cli {
    platform: PlatformConfig,
    tasks: Vec<TaskSpec>,
    seconds: u64,
    jitter_pct: u64,
    seed: u64,
    options: FrameworkOptions,
    out: Option<String>,
    format: TraceFormat,
    gantt: bool,
    json: bool,
    deny_warnings: bool,
    allow: Vec<String>,
    deny: Vec<String>,
    explain: Option<String>,
    explore: bool,
    max_states: Option<usize>,
    explore_strategy: rtmdm_core::ExploreStrategy,
    threads: usize,
    witness: Option<String>,
}

fn parse_strategy(s: &str) -> Option<Strategy> {
    match s {
        "rt-mdm" => Some(Strategy::RtMdm),
        "fetch-then-compute" => Some(Strategy::FetchThenCompute),
        "whole-dnn" => Some(Strategy::WholeDnn),
        "all-in-sram" => Some(Strategy::AllInSram),
        _ => None,
    }
}

fn parse_task(arg: &str) -> Option<TaskSpec> {
    // name=model@period_ms[/deadline_ms][:strategy]
    let (name, rest) = arg.split_once('=')?;
    let (model_name, rest) = rest.split_once('@')?;
    let (timing, strategy) = match rest.split_once(':') {
        Some((t, s)) => (t, Some(s)),
        None => (rest, None),
    };
    let (period_ms, deadline_ms) = match timing.split_once('/') {
        Some((p, d)) => (p.parse::<u64>().ok()?, d.parse::<u64>().ok()?),
        None => {
            let p = timing.parse::<u64>().ok()?;
            (p, p)
        }
    };
    let model = zoo::by_name(model_name)?;
    let mut spec = TaskSpec::new(name, model, period_ms * 1000, deadline_ms * 1000);
    if let Some(s) = strategy {
        spec = spec.with_strategy(parse_strategy(s)?);
    }
    Some(spec)
}

fn parse(args: &[String]) -> Result<Cli, CliError> {
    let mut platform = PlatformConfig::stm32f746_qspi();
    let mut tasks = Vec::new();
    let mut seconds = 2u64;
    let mut jitter_pct = 0u64;
    let mut seed = 0u64;
    let mut options = FrameworkOptions::default();
    let mut out = None;
    let mut format = TraceFormat::Chrome;
    let mut gantt = false;
    let mut json = false;
    let mut deny_warnings = false;
    let mut allow = Vec::new();
    let mut deny = Vec::new();
    let mut explain = None;
    let mut explore = false;
    let mut max_states = None;
    let mut explore_strategy = rtmdm_core::ExploreStrategy::default();
    let mut threads = 0;
    let mut witness = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--platform" => {
                let name = it.next().ok_or(CliError::Usage)?;
                platform = PlatformConfig::presets()
                    .into_iter()
                    .find(|p| &p.name == name)
                    .ok_or_else(|| CliError::Msg(format!("unknown platform `{name}`")))?;
            }
            "--task" => {
                let spec = it.next().ok_or(CliError::Usage)?;
                tasks.push(parse_task(spec).ok_or(CliError::Usage)?);
            }
            "--seconds" => {
                seconds = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or(CliError::Usage)?;
            }
            "--jitter" => {
                jitter_pct = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or(CliError::Usage)?;
            }
            "--seed" => {
                seed = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or(CliError::Usage)?;
            }
            "--edf" => options.policy = Policy::Edf,
            "--work-conserving" => options.work_conserving = true,
            "--fault-rate" => {
                options.fault.dma_fault_rate_ppm = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or(CliError::Usage)?;
            }
            "--fault-seed" => {
                options.fault.seed = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or(CliError::Usage)?;
            }
            "--fault-retries" => {
                options.fault.max_retries = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or(CliError::Usage)?;
            }
            "--fault-jitter" => {
                options.fault.jitter_max_cycles = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or(CliError::Usage)?;
            }
            "--miss-policy" => {
                let p = it.next().ok_or(CliError::Usage)?;
                options.miss_policy = match p.as_str() {
                    "continue" => MissPolicy::Continue,
                    "abort" => MissPolicy::Abort,
                    "skip-next" => MissPolicy::SkipNextRelease,
                    _ => {
                        return Err(CliError::Msg(format!(
                            "unknown --miss-policy `{p}` (expected `continue`, `abort`, or `skip-next`)"
                        )))
                    }
                };
            }
            "--engine" => {
                let e = it.next().ok_or(CliError::Usage)?;
                options.engine = match e.as_str() {
                    "legacy" => Engine::Legacy,
                    "des" => Engine::Des,
                    _ => {
                        return Err(CliError::Msg(format!(
                            "unknown --engine `{e}` (expected `legacy` or `des`)"
                        )))
                    }
                };
            }
            "--attribution" => {
                let v = it.next().ok_or(CliError::Usage)?;
                options.attribution = match v.as_str() {
                    "on" => true,
                    "off" => false,
                    _ => {
                        return Err(CliError::Msg(format!(
                            "unknown --attribution `{v}` (expected `on` or `off`)"
                        )))
                    }
                };
            }
            "--out" => out = Some(it.next().ok_or(CliError::Usage)?.clone()),
            "--format" => {
                let f = it.next().ok_or(CliError::Usage)?;
                format = match f.as_str() {
                    "chrome" => TraceFormat::Chrome,
                    "jsonl" => TraceFormat::Jsonl,
                    _ => {
                        return Err(CliError::Msg(format!(
                            "unknown --format `{f}` (expected `chrome` or `jsonl`)"
                        )))
                    }
                };
            }
            "--gantt" => gantt = true,
            "--json" => json = true,
            "--deny-warnings" => deny_warnings = true,
            "--allow" => allow.push(it.next().ok_or(CliError::Usage)?.clone()),
            "--deny" => deny.push(it.next().ok_or(CliError::Usage)?.clone()),
            "--explain" => explain = Some(it.next().ok_or(CliError::Usage)?.clone()),
            "--explore" => explore = true,
            "--max-states" => {
                max_states = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .ok_or(CliError::Usage)?,
                );
            }
            "--strategy" => {
                let s = it.next().ok_or(CliError::Usage)?;
                explore_strategy = match s.as_str() {
                    "replay" => rtmdm_core::ExploreStrategy::Replay,
                    "fork" => rtmdm_core::ExploreStrategy::Fork,
                    _ => {
                        return Err(CliError::Msg(format!(
                            "unknown --strategy `{s}` (expected `replay` or `fork`)"
                        )))
                    }
                };
            }
            "--threads" => {
                threads = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or(CliError::Usage)?;
            }
            "--witness" => witness = Some(it.next().ok_or(CliError::Usage)?.clone()),
            _ => return Err(CliError::Usage),
        }
    }
    Ok(Cli {
        platform,
        tasks,
        seconds,
        jitter_pct: jitter_pct.min(99),
        seed,
        options,
        out,
        format,
        gantt,
        json,
        deny_warnings,
        allow,
        deny,
        explain,
        explore,
        max_states,
        explore_strategy,
        threads,
        witness,
    })
}

fn build(cli: &Cli) -> Result<RtMdm, String> {
    let mut fw = RtMdm::with_options(cli.platform.clone(), cli.options.clone())
        .map_err(|e| e.to_string())?;
    for t in &cli.tasks {
        fw.add_task(t.clone()).map_err(|e| e.to_string())?;
    }
    Ok(fw)
}

fn cmd_platforms() -> ExitCode {
    let rows: Vec<Vec<String>> = PlatformConfig::presets()
        .iter()
        .map(|p| {
            vec![
                p.name.clone(),
                p.cpu.to_string(),
                format!("{} KiB", p.sram_bytes / 1024),
                p.ext_mem.kind.to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        report::table(&["platform", "cpu", "sram", "ext-mem"], &rows)
    );
    ExitCode::SUCCESS
}

fn cmd_models() -> ExitCode {
    let rows: Vec<Vec<String>> = zoo::all()
        .iter()
        .map(|m| {
            vec![
                m.name().to_owned(),
                m.len().to_string(),
                format!("{} KiB", m.total_weight_bytes() / 1024),
                format!("{}k", m.total_macs() / 1000),
            ]
        })
        .collect();
    println!(
        "{}",
        report::table(&["model", "layers", "weights", "MACs"], &rows)
    );
    ExitCode::SUCCESS
}

/// Export a finished run's trace per `--format`/`--out`/`--gantt`.
///
/// The written JSON is re-parsed with the bundled `serde_json` before
/// the command reports success, so a malformed export fails loudly
/// rather than producing a file Perfetto rejects.
fn cmd_trace(cli: &Cli, run: &rtmdm_core::RunReport) -> ExitCode {
    let payload = match cli.format {
        TraceFormat::Chrome => {
            let json = rtmdm_obs::chrome_trace_json(&run.result.trace, &run.names);
            if let Err(e) = serde_json::from_str::<rtmdm_obs::ChromeTrace>(&json) {
                eprintln!("rtmdm: exported JSON failed validation: {e:?}");
                return ExitCode::from(2);
            }
            json
        }
        TraceFormat::Jsonl => {
            let lines = rtmdm_obs::jsonl(&run.result.trace);
            for line in lines.lines() {
                if let Err(e) = serde_json::from_str::<rtmdm_mcusim::TraceEvent>(line) {
                    eprintln!("rtmdm: exported JSONL failed validation: {e:?}");
                    return ExitCode::from(2);
                }
            }
            lines
        }
    };
    match &cli.out {
        Some(path) => {
            if let Err(e) = std::fs::write(path, &payload) {
                eprintln!("rtmdm: cannot write {path}: {e}");
                return ExitCode::from(2);
            }
            println!(
                "wrote {} ({} events, {} bytes)",
                path,
                run.result.trace.len(),
                payload.len()
            );
        }
        None => print!("{payload}"),
    }
    if cli.gantt {
        let tl = Timeline::from_trace(&run.result.trace, run.result.horizon);
        println!("{}", rtmdm_obs::gantt::render(&tl, 72, &run.names));
        let s = tl.summary();
        println!(
            "cpu {} busy / {} idle, dma {} busy, overlap {} of {} horizon",
            s.cpu_busy, s.cpu_idle, s.dma_busy, s.overlap, s.horizon
        );
    }
    ExitCode::SUCCESS
}

/// Machine-readable payload of `rtmdm explain --json`: the validated
/// blame report plus the per-task response percentiles. Round-tripped
/// through the bundled `serde_json` before printing, like the other
/// JSON outputs.
#[derive(serde::Serialize, serde::Deserialize)]
struct ExplainJson {
    percentiles: Vec<TaskPercentiles>,
    blame: rtmdm_obs::BlameReport,
}

/// Response-time percentile upper bounds of one task (log₂-bucket tops
/// from the simulator's `ResponseHist`; `None` when no job completed).
#[derive(serde::Serialize, serde::Deserialize)]
struct TaskPercentiles {
    task: String,
    completions: u64,
    p50_upper: Option<u64>,
    p95_upper: Option<u64>,
    p99_upper: Option<u64>,
    max: u64,
}

/// Attribute the finished run and print the blame forensics.
///
/// The conservation invariant (terms sum exactly to each job's
/// response) is validated for every job before anything is printed; a
/// violation is a bug in the reconstruction or the simulator's anchor
/// emission and fails the command.
fn cmd_explain(cli: &Cli, run: &rtmdm_core::RunReport) -> ExitCode {
    let blame = match rtmdm_obs::attribute(&run.result.trace) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("rtmdm: attribution failed: {e}");
            return ExitCode::from(2);
        }
    };
    let name =
        |t: rtmdm_mcusim::TaskId| run.names.get(t.0).cloned().unwrap_or_else(|| t.to_string());
    let percentiles: Vec<TaskPercentiles> = run
        .result
        .stats
        .iter()
        .enumerate()
        .map(|(k, s)| TaskPercentiles {
            task: name(rtmdm_mcusim::TaskId(k)),
            completions: s.completions,
            p50_upper: s.response_hist.percentile_upper(50).map(|c| c.get()),
            p95_upper: s.response_hist.percentile_upper(95).map(|c| c.get()),
            p99_upper: s.response_hist.percentile_upper(99).map(|c| c.get()),
            max: s.max_response.get(),
        })
        .collect();

    if cli.json {
        let payload = ExplainJson { percentiles, blame };
        let json = serde_json::to_string(&payload).expect("explain report serializes");
        if let Err(e) = serde_json::from_str::<ExplainJson>(&json) {
            eprintln!("rtmdm: explain report failed JSON validation: {e:?}");
            return ExitCode::from(2);
        }
        println!("{json}");
        return ExitCode::SUCCESS;
    }

    let dominant = |d: Option<(rtmdm_obs::BlameSource, rtmdm_mcusim::Cycles)>| match d {
        Some((src, c)) => format!("{src} ({c})"),
        None => "none (compute-bound)".to_owned(),
    };

    // Blame table: tasks ranked by misses, then by lost (non-compute)
    // cycles, so the task most in trouble tops the table.
    let mut ranked: Vec<_> = blame.tasks.iter().collect();
    ranked.sort_by_key(|(t, b)| {
        (
            std::cmp::Reverse(b.misses),
            std::cmp::Reverse(b.total().saturating_sub(b.compute)),
            **t,
        )
    });
    let rows: Vec<Vec<String>> = ranked
        .iter()
        .map(|(t, b)| {
            vec![
                name(**t),
                b.jobs.to_string(),
                b.misses.to_string(),
                b.max_response.to_string(),
                b.compute.to_string(),
                b.preemption_total().to_string(),
                b.blocking_fetch.to_string(),
                b.bus_contention.to_string(),
                b.fault_refetch.to_string(),
                b.dispatch_wait.to_string(),
                dominant(b.dominant_interference()),
            ]
        })
        .collect();
    println!(
        "{}",
        report::table(
            &[
                "task", "jobs", "miss", "max-resp", "compute", "preempt", "blocking", "bus",
                "refetch", "dispatch", "dominant",
            ],
            &rows,
        )
    );

    let pct_rows: Vec<Vec<String>> = percentiles
        .iter()
        .map(|p| {
            let cy = |v: Option<u64>| v.map_or_else(|| "-".to_owned(), |v| v.to_string());
            vec![
                p.task.clone(),
                p.completions.to_string(),
                cy(p.p50_upper),
                cy(p.p95_upper),
                cy(p.p99_upper),
                p.max.to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        report::table(
            &["task", "done", "p50<=", "p95<=", "p99<=", "max"],
            &pct_rows
        )
    );

    let missed = blame.missed_jobs();
    println!(
        "jobs attributed: {} ({} missed); conservation: exact",
        blame.jobs.len(),
        missed.len()
    );
    const MISS_LIMIT: usize = 12;
    for j in missed.iter().take(MISS_LIMIT) {
        println!(
            "miss {} {}: response {} = compute {} + interference {}, dominant {}",
            name(j.task),
            j.job,
            j.response,
            j.compute,
            j.response.saturating_sub(j.compute),
            dominant(j.dominant_interference()),
        );
    }
    if missed.len() > MISS_LIMIT {
        println!("… and {} more missed jobs", missed.len() - MISS_LIMIT);
    }
    ExitCode::SUCCESS
}

/// Lower-case category label for `check --explain` output.
fn category_name(c: rtmdm_check::Category) -> &'static str {
    match c {
        rtmdm_check::Category::Staging => "staging",
        rtmdm_check::Category::Plan => "plan",
        rtmdm_check::Category::Admission => "admission",
        rtmdm_check::Category::Graph => "graph",
        rtmdm_check::Category::Platform => "platform",
        rtmdm_check::Category::Explore => "exploration",
    }
}

/// `check --explain RTM0xx`: print one rule's metadata and description.
///
/// An unknown ID is a usage error (exit 1), matching `--allow`/`--deny`.
fn cmd_explain_rule(id: &str) -> ExitCode {
    let Some(rule) = rtmdm_check::Rule::from_id(id) else {
        eprintln!("rtmdm: unknown rule `{id}` in --explain");
        return ExitCode::from(1);
    };
    println!(
        "{} ({}, {}, {})",
        rule.id(),
        rule.default_severity(),
        category_name(rule.category()),
        if rule.blocks_admission() {
            "blocks admission"
        } else {
            "non-blocking"
        }
    );
    println!("  {}", rule.summary());
    ExitCode::SUCCESS
}

/// Run the static verifier over the spec without admitting it.
///
/// Unlike the other subcommands, `check` does not go through
/// `RtMdm::add_task` — eager validation there would reject exactly the
/// broken specs the verifier exists to explain. JSON output is
/// re-parsed with the bundled `serde_json` before printing, mirroring
/// the `trace` export validation.
fn cmd_check(cli: &Cli) -> ExitCode {
    if let Some(id) = &cli.explain {
        return cmd_explain_rule(id);
    }
    if cli.tasks.is_empty() {
        eprintln!("rtmdm: at least one --task is required");
        return usage();
    }
    let mut filter = rtmdm_check::RuleFilter::new();
    for id in &cli.allow {
        match rtmdm_check::Rule::from_id(id) {
            Some(rule) => filter = filter.allow(rule),
            None => {
                eprintln!("rtmdm: unknown rule `{id}` in --allow");
                return ExitCode::from(1);
            }
        }
    }
    for id in &cli.deny {
        match rtmdm_check::Rule::from_id(id) {
            Some(rule) => filter = filter.deny(rule),
            None => {
                eprintln!("rtmdm: unknown rule `{id}` in --deny");
                return ExitCode::from(1);
            }
        }
    }
    if cli.deny_warnings {
        filter = filter.deny_warnings(true);
    }
    let mut spec = rtmdm_core::SystemSpec::with_options(cli.platform.clone(), cli.options.clone());
    for task in &cli.tasks {
        spec.push(task.clone());
    }
    let check_options = rtmdm_core::CheckOptions {
        explore: cli.explore.then(|| rtmdm_core::ExploreOptions {
            max_states: cli
                .max_states
                .unwrap_or_else(|| rtmdm_core::ExploreOptions::default().max_states),
            // `--jitter PCT` means the same thing it means for
            // `simulate`: jobs may run anywhere down to this fraction
            // below WCET. The explorer turns that into a per-job
            // execution-time choice dimension.
            exec_scale_min_ppm: 1_000_000 - cli.jitter_pct * 10_000,
            strategy: cli.explore_strategy,
            threads: cli.threads,
            ..rtmdm_core::ExploreOptions::default()
        }),
    };
    let outcome = spec.check_with(&check_options);
    let report = filter.apply(&outcome.report);
    // The witness export mirrors the trace export: round-tripped
    // through the bundled `serde_json` before the file is trusted.
    if let Some(path) = &cli.witness {
        match &outcome.witness {
            Some(w) => {
                let json = serde_json::to_string(w).expect("witness serializes");
                if let Err(e) = serde_json::from_str::<rtmdm_check::Witness>(&json) {
                    eprintln!("rtmdm: witness failed JSON validation: {e:?}");
                    return ExitCode::from(2);
                }
                if let Err(e) = std::fs::write(path, &json) {
                    eprintln!("rtmdm: cannot write {path}: {e}");
                    return ExitCode::from(2);
                }
                eprintln!("rtmdm: wrote witness to {path}");
            }
            None => eprintln!("rtmdm: no witness to write (no violation reached)"),
        }
    }
    if cli.json {
        let json = report.to_json();
        if let Err(e) = serde_json::from_str::<rtmdm_check::JsonReport>(&json) {
            eprintln!("rtmdm: check report failed JSON validation: {e:?}");
            return ExitCode::from(2);
        }
        println!("{json}");
    } else {
        println!("{}", report.render_text());
        if let Some(stats) = &outcome.explore_stats {
            println!(
                "explored {} states over {} runs ({} transitions): {}",
                stats.states,
                stats.runs,
                stats.transitions,
                if stats.complete {
                    "complete"
                } else if outcome.witness.is_some() {
                    "stopped at first violation"
                } else {
                    "state budget exceeded"
                }
            );
        }
    }
    if report.error_count() > 0 {
        ExitCode::from(2)
    } else {
        ExitCode::SUCCESS
    }
}

/// Feeds JSONL admission requests through one [`rtmdm_core::Service`]:
/// all at once
/// as a sharded batch (`--once`), or line-by-line as they arrive.
/// Blank lines are skipped; every other input line produces exactly
/// one output line (a verdict or an `"ok":false` error record).
fn serve_loop<R: std::io::BufRead>(
    service: &rtmdm_core::Service,
    reader: R,
    once: bool,
) -> std::io::Result<()> {
    use std::io::Write;
    let stdout = std::io::stdout();
    if once {
        let lines: Vec<String> = reader
            .lines()
            .collect::<std::io::Result<Vec<String>>>()?
            .into_iter()
            .filter(|l| !l.trim().is_empty())
            .collect();
        let mut out = stdout.lock();
        for answer in service.answer_batch(lines) {
            writeln!(out, "{answer}")?;
        }
        out.flush()
    } else {
        for line in reader.lines() {
            let line = line?;
            if line.trim().is_empty() {
                continue;
            }
            let mut out = stdout.lock();
            writeln!(out, "{}", service.answer_line(&line))?;
            out.flush()?;
        }
        Ok(())
    }
}

fn cmd_serve(args: &[String]) -> ExitCode {
    let mut once = false;
    let mut input: Option<String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--once" => once = true,
            "--input" => match it.next() {
                Some(path) => input = Some(path.clone()),
                None => {
                    eprintln!("rtmdm: --input requires a path");
                    return ExitCode::from(1);
                }
            },
            _ => return usage(),
        }
    }
    let service = rtmdm_core::Service::new();
    let result = match &input {
        Some(path) => match std::fs::File::open(path) {
            Ok(f) => serve_loop(&service, std::io::BufReader::new(f), once),
            Err(e) => {
                eprintln!("rtmdm: cannot open {path}: {e}");
                return ExitCode::from(1);
            }
        },
        None => serve_loop(&service, std::io::stdin().lock(), once),
    };
    let stats = service.stats();
    eprintln!(
        "serve: {} queries; reused {} answers, {} lowerings, {} analyses, {} headrooms",
        stats.queries,
        stats.answers_reused,
        stats.lowerings_reused,
        stats.analyses_reused,
        stats.headrooms_reused
    );
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("rtmdm: {e}");
            ExitCode::from(1)
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first().cloned() else {
        return usage();
    };
    match cmd.as_str() {
        "platforms" => return cmd_platforms(),
        "models" => return cmd_models(),
        "serve" => return cmd_serve(&args[1..]),
        "admit" | "simulate" | "optimize" | "trace" | "explain" | "check" => {}
        _ => return usage(),
    }
    let mut cli = match parse(&args[1..]) {
        Ok(cli) => cli,
        Err(CliError::Usage) => return usage(),
        Err(CliError::Msg(m)) => {
            eprintln!("rtmdm: {m}");
            return ExitCode::from(1);
        }
    };
    // Forensics need the causal anchors: explain always records them.
    if cmd == "explain" {
        cli.options.attribution = true;
    }
    // `check` validates its own task requirement so that
    // `check --explain RTM0xx` works without a spec.
    if cmd == "check" {
        return cmd_check(&cli);
    }
    if cli.tasks.is_empty() {
        eprintln!("rtmdm: at least one --task is required");
        return usage();
    }
    let fw = match build(&cli) {
        Ok(fw) => fw,
        Err(e) => {
            eprintln!("rtmdm: {e}");
            return ExitCode::from(2);
        }
    };
    match cmd.as_str() {
        "admit" => match fw.admit() {
            Ok(a) => {
                println!("{}", a.to_table());
                println!("occupancy: {}", report::ppm_as_pct(a.occupancy_ppm));
                println!(
                    "sram: {} / {} bytes",
                    a.sram_total(),
                    fw.platform().sram_bytes
                );
                if a.schedulable() {
                    println!("verdict: SCHEDULABLE");
                    ExitCode::SUCCESS
                } else {
                    println!("verdict: NOT SCHEDULABLE");
                    ExitCode::from(2)
                }
            }
            Err(e) => {
                eprintln!("rtmdm: {e}");
                ExitCode::from(2)
            }
        },
        "simulate" => {
            let scale_min = 1_000_000 - cli.jitter_pct * 10_000;
            match fw.simulate_with(cli.seconds * 1_000_000, scale_min, cli.seed) {
                Ok(run) => {
                    println!("{}", run.to_table());
                    println!("misses: {}", run.deadline_misses());
                    // Only fault/policy runs grow the extra line, so
                    // default invocations stay byte-identical.
                    if fw.options().fault.is_active()
                        || fw.options().miss_policy != MissPolicy::Continue
                    {
                        let m = &run.result.metrics;
                        println!(
                            "faults: {} injected, {} retries ({} refetch cycles), {} shed, {} aborted",
                            m.injected_faults,
                            m.fetch_retries,
                            m.refetch_cycles.get(),
                            m.shed_jobs,
                            m.aborted_jobs
                        );
                    }
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("rtmdm: {e}");
                    ExitCode::from(2)
                }
            }
        }
        "trace" => {
            let scale_min = 1_000_000 - cli.jitter_pct * 10_000;
            match fw.simulate_with(cli.seconds * 1_000_000, scale_min, cli.seed) {
                Ok(run) => cmd_trace(&cli, &run),
                Err(e) => {
                    eprintln!("rtmdm: {e}");
                    ExitCode::from(2)
                }
            }
        }
        "explain" => {
            let scale_min = 1_000_000 - cli.jitter_pct * 10_000;
            match fw.simulate_with(cli.seconds * 1_000_000, scale_min, cli.seed) {
                Ok(run) => cmd_explain(&cli, &run),
                Err(e) => {
                    eprintln!("rtmdm: {e}");
                    ExitCode::from(2)
                }
            }
        }
        "optimize" => match fw.optimize() {
            Ok(Some(out)) => {
                let rows: Vec<Vec<String>> = fw
                    .specs()
                    .iter()
                    .zip(&out.strategies)
                    .map(|(spec, s)| vec![spec.name.clone(), s.to_string()])
                    .collect();
                println!("{}", report::table(&["task", "strategy"], &rows));
                println!(
                    "sram: {} bytes, headroom: {}, candidates admitted: {}",
                    out.sram_used,
                    report::ppm_as_pct(out.scaling_ppm),
                    out.admissible_count
                );
                ExitCode::SUCCESS
            }
            Ok(None) => {
                println!("no admissible configuration found");
                ExitCode::from(2)
            }
            Err(e) => {
                eprintln!("rtmdm: {e}");
                ExitCode::from(2)
            }
        },
        _ => usage(),
    }
}
