//! `rtmdm` — command-line front end of the framework.
//!
//! ```text
//! rtmdm platforms
//! rtmdm models
//! rtmdm admit    --platform stm32f746-qspi --task kws=ds-cnn@100 --task ic=resnet8@400
//! rtmdm simulate --platform stm32f746-qspi --task kws=ds-cnn@100 --seconds 2
//! rtmdm optimize --platform stm32f746-qspi --task kws=ds-cnn@100 --task ic=resnet8@400
//! ```
//!
//! Task syntax: `name=model@period_ms[/deadline_ms][:strategy]` with
//! strategy one of `rt-mdm`, `fetch-then-compute`, `whole-dnn`,
//! `all-in-sram`. Exit status: 0 on success (and schedulable for
//! `admit`), 2 when admission rejects, 1 on usage errors.

use std::process::ExitCode;

use rtmdm_core::{report, FrameworkOptions, RtMdm, Strategy, TaskSpec};
use rtmdm_dnn::zoo;
use rtmdm_mcusim::PlatformConfig;
use rtmdm_sched::sim::Policy;

fn usage() -> ExitCode {
    eprintln!(
        "usage: rtmdm <platforms|models|admit|simulate|optimize> \
         [--platform NAME] [--task name=model@period_ms[/deadline_ms][:strategy]]… \
         [--seconds S] [--jitter PCT] [--seed N] [--edf] [--work-conserving]"
    );
    ExitCode::from(1)
}

struct Cli {
    platform: PlatformConfig,
    tasks: Vec<TaskSpec>,
    seconds: u64,
    jitter_pct: u64,
    seed: u64,
    options: FrameworkOptions,
}

fn parse_strategy(s: &str) -> Option<Strategy> {
    match s {
        "rt-mdm" => Some(Strategy::RtMdm),
        "fetch-then-compute" => Some(Strategy::FetchThenCompute),
        "whole-dnn" => Some(Strategy::WholeDnn),
        "all-in-sram" => Some(Strategy::AllInSram),
        _ => None,
    }
}

fn parse_task(arg: &str) -> Option<TaskSpec> {
    // name=model@period_ms[/deadline_ms][:strategy]
    let (name, rest) = arg.split_once('=')?;
    let (model_name, rest) = rest.split_once('@')?;
    let (timing, strategy) = match rest.split_once(':') {
        Some((t, s)) => (t, Some(s)),
        None => (rest, None),
    };
    let (period_ms, deadline_ms) = match timing.split_once('/') {
        Some((p, d)) => (p.parse::<u64>().ok()?, d.parse::<u64>().ok()?),
        None => {
            let p = timing.parse::<u64>().ok()?;
            (p, p)
        }
    };
    let model = zoo::by_name(model_name)?;
    let mut spec = TaskSpec::new(name, model, period_ms * 1000, deadline_ms * 1000);
    if let Some(s) = strategy {
        spec = spec.with_strategy(parse_strategy(s)?);
    }
    Some(spec)
}

fn parse(args: &[String]) -> Option<Cli> {
    let mut platform = PlatformConfig::stm32f746_qspi();
    let mut tasks = Vec::new();
    let mut seconds = 2u64;
    let mut jitter_pct = 0u64;
    let mut seed = 0u64;
    let mut options = FrameworkOptions::default();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--platform" => {
                let name = it.next()?;
                platform = PlatformConfig::presets()
                    .into_iter()
                    .find(|p| &p.name == name)?;
            }
            "--task" => tasks.push(parse_task(it.next()?)?),
            "--seconds" => seconds = it.next()?.parse().ok()?,
            "--jitter" => jitter_pct = it.next()?.parse().ok()?,
            "--seed" => seed = it.next()?.parse().ok()?,
            "--edf" => options.policy = Policy::Edf,
            "--work-conserving" => options.work_conserving = true,
            _ => return None,
        }
    }
    Some(Cli {
        platform,
        tasks,
        seconds,
        jitter_pct: jitter_pct.min(99),
        seed,
        options,
    })
}

fn build(cli: &Cli) -> Result<RtMdm, String> {
    let mut fw = RtMdm::with_options(cli.platform.clone(), cli.options.clone())
        .map_err(|e| e.to_string())?;
    for t in &cli.tasks {
        fw.add_task(t.clone()).map_err(|e| e.to_string())?;
    }
    Ok(fw)
}

fn cmd_platforms() -> ExitCode {
    let rows: Vec<Vec<String>> = PlatformConfig::presets()
        .iter()
        .map(|p| {
            vec![
                p.name.clone(),
                p.cpu.to_string(),
                format!("{} KiB", p.sram_bytes / 1024),
                p.ext_mem.kind.to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        report::table(&["platform", "cpu", "sram", "ext-mem"], &rows)
    );
    ExitCode::SUCCESS
}

fn cmd_models() -> ExitCode {
    let rows: Vec<Vec<String>> = zoo::all()
        .iter()
        .map(|m| {
            vec![
                m.name().to_owned(),
                m.len().to_string(),
                format!("{} KiB", m.total_weight_bytes() / 1024),
                format!("{}k", m.total_macs() / 1000),
            ]
        })
        .collect();
    println!(
        "{}",
        report::table(&["model", "layers", "weights", "MACs"], &rows)
    );
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first().cloned() else {
        return usage();
    };
    match cmd.as_str() {
        "platforms" => return cmd_platforms(),
        "models" => return cmd_models(),
        "admit" | "simulate" | "optimize" => {}
        _ => return usage(),
    }
    let Some(cli) = parse(&args[1..]) else {
        return usage();
    };
    if cli.tasks.is_empty() {
        eprintln!("rtmdm: at least one --task is required");
        return usage();
    }
    let fw = match build(&cli) {
        Ok(fw) => fw,
        Err(e) => {
            eprintln!("rtmdm: {e}");
            return ExitCode::from(2);
        }
    };
    match cmd.as_str() {
        "admit" => match fw.admit() {
            Ok(a) => {
                println!("{}", a.to_table());
                println!("occupancy: {}", report::ppm_as_pct(a.occupancy_ppm));
                println!(
                    "sram: {} / {} bytes",
                    a.sram_total(),
                    fw.platform().sram_bytes
                );
                if a.schedulable() {
                    println!("verdict: SCHEDULABLE");
                    ExitCode::SUCCESS
                } else {
                    println!("verdict: NOT SCHEDULABLE");
                    ExitCode::from(2)
                }
            }
            Err(e) => {
                eprintln!("rtmdm: {e}");
                ExitCode::from(2)
            }
        },
        "simulate" => {
            let scale_min = 1_000_000 - cli.jitter_pct * 10_000;
            match fw.simulate_with(cli.seconds * 1_000_000, scale_min, cli.seed) {
                Ok(run) => {
                    println!("{}", run.to_table());
                    println!("misses: {}", run.deadline_misses());
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("rtmdm: {e}");
                    ExitCode::from(2)
                }
            }
        }
        "optimize" => match fw.optimize() {
            Ok(Some(out)) => {
                let rows: Vec<Vec<String>> = fw
                    .specs()
                    .iter()
                    .zip(&out.strategies)
                    .map(|(spec, s)| vec![spec.name.clone(), s.to_string()])
                    .collect();
                println!("{}", report::table(&["task", "strategy"], &rows));
                println!(
                    "sram: {} bytes, headroom: {}, candidates admitted: {}",
                    out.sram_used,
                    report::ppm_as_pct(out.scaling_ppm),
                    out.admissible_count
                );
                ExitCode::SUCCESS
            }
            Ok(None) => {
                println!("no admissible configuration found");
                ExitCode::from(2)
            }
            Err(e) => {
                eprintln!("rtmdm: {e}");
                ExitCode::from(2)
            }
        },
        _ => usage(),
    }
}
