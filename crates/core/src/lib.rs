//! # rtmdm-core — the RT-MDM framework
//!
//! The paper's primary contribution as a public API: admission control
//! and execution of multiple periodic DNN inference tasks on an MCU
//! whose weights live in external memory.
//!
//! A framework instance binds together the four substrates:
//!
//! 1. the **platform model** (`rtmdm-mcusim`) — CPU, DMA, bus, SRAM;
//! 2. the **DNN engine** (`rtmdm-dnn`) — models and their per-layer
//!    costs;
//! 3. the **memory planner** (`rtmdm-xmem`) — segmentation, SRAM layout,
//!    double-buffered prefetch;
//! 4. the **scheduler** (`rtmdm-sched`) — segment-level limited
//!    preemption, schedulability analysis, simulation.
//!
//! ## Lifecycle
//!
//! ```text
//! RtMdm::new(platform)
//!   └─ add_task(TaskSpec)…      — segmentation validated eagerly
//!   └─ admit()                  — SRAM layout + RT-MDM analysis
//!   └─ simulate(horizon)        — execution on the platform model
//! ```
//!
//! ## Example
//!
//! ```rust
//! use rtmdm_core::{RtMdm, TaskSpec, Strategy};
//! use rtmdm_dnn::zoo;
//! use rtmdm_mcusim::PlatformConfig;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut fw = RtMdm::new(PlatformConfig::stm32f746_qspi())?;
//! fw.add_task(TaskSpec::new("kws", zoo::ds_cnn(), 100_000, 100_000))?;
//! fw.add_task(TaskSpec::new("ic", zoo::resnet8(), 400_000, 400_000))?;
//! let admission = fw.admit()?;
//! println!("{}", admission.to_table());
//! if admission.schedulable() {
//!     let run = fw.simulate(4_000_000)?;
//!     assert_eq!(run.deadline_misses(), 0);
//! }
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod advisor;
mod check;
mod error;
mod framework;
pub mod report;
mod service;
mod spec;

pub use advisor::OptimizeOutcome;
pub use check::{CheckOptions, CheckOutcome, ExploreOptions, SystemSpec};
pub use error::AdmitError;
pub use framework::{Admission, FrameworkOptions, PriorityAssignment, RtMdm, RunReport, SramRow};
pub use rtmdm_check::ExploreStrategy;
pub use service::{CacheStats, Service, SERVE_SCHEMA};
pub use spec::{Strategy, TaskSpec};
