//! Configuration advisor: search per-task strategies for the cheapest
//! admissible deployment.
//!
//! A small model may be cheaper to keep resident (its whole parameter
//! set is smaller than a double fetch buffer); a large one must stream.
//! The advisor enumerates per-task strategy assignments
//! (`RtMdm` vs `AllInSram`), keeps those that pass admission, and
//! returns the one using the least SRAM — with the critical compute
//! scaling factor as the reported timing headroom.

use serde::{Deserialize, Serialize};

use rtmdm_sched::analysis::{critical_scaling_ppm, SchedulerMode};

use crate::error::AdmitError;
use crate::framework::RtMdm;
use crate::spec::Strategy;

/// Upper bound on tasks the exhaustive strategy search accepts.
const MAX_TASKS: usize = 12;

/// Outcome of [`RtMdm::optimize`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OptimizeOutcome {
    /// Chosen strategy per task, in insertion order.
    pub strategies: Vec<Strategy>,
    /// SRAM the chosen configuration consumes (bytes).
    pub sram_used: u64,
    /// Critical compute-scaling factor of the chosen configuration
    /// (ppm; ≥ 1 000 000 means real headroom).
    pub scaling_ppm: u64,
    /// Number of assignments that passed admission.
    pub admissible_count: u32,
}

impl RtMdm {
    /// Searches per-task strategy assignments (`RtMdm` / `AllInSram`)
    /// for the admissible configuration with the smallest SRAM
    /// footprint.
    ///
    /// # Errors
    ///
    /// [`AdmitError::NoTasks`] on an empty framework,
    /// [`AdmitError::TooManyTasks`] past the exhaustive-search cap;
    /// propagates platform errors. Returns `Ok(None)` when no
    /// assignment is admissible.
    pub fn optimize(&self) -> Result<Option<OptimizeOutcome>, AdmitError> {
        let n = self.specs().len();
        if n == 0 {
            return Err(AdmitError::NoTasks);
        }
        if n > MAX_TASKS {
            return Err(AdmitError::TooManyTasks {
                count: n,
                max: MAX_TASKS,
            });
        }
        let mode = if self.options().work_conserving {
            SchedulerMode::WorkConserving
        } else {
            SchedulerMode::Gated
        };

        let mut best: Option<OptimizeOutcome> = None;
        let mut admissible = 0u32;
        for mask in 0u32..(1 << n) {
            let mut candidate = self.clone();
            let strategies: Vec<Strategy> = (0..n)
                .map(|i| {
                    if mask & (1 << i) != 0 {
                        Strategy::AllInSram
                    } else {
                        Strategy::RtMdm
                    }
                })
                .collect();
            candidate.set_strategies(&strategies);
            let admission = match candidate.admit() {
                Ok(a) => a,
                Err(AdmitError::Memory(_)) => continue, // does not fit
                Err(e) => return Err(e),
            };
            if !admission.schedulable() {
                continue;
            }
            admissible += 1;
            let sram_used = admission.sram_total();
            if best.as_ref().is_none_or(|b| sram_used < b.sram_used) {
                let (ts, _) = candidate.build_public()?;
                let order = candidate.priority_order_public(&ts);
                let scaling =
                    critical_scaling_ppm(&ts.reordered(&order), candidate.platform(), mode);
                best = Some(OptimizeOutcome {
                    strategies,
                    sram_used,
                    scaling_ppm: scaling,
                    admissible_count: 0, // patched below
                });
            }
        }
        Ok(best.map(|mut b| {
            b.admissible_count = admissible;
            b
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::TaskSpec;
    use rtmdm_dnn::zoo;
    use rtmdm_mcusim::PlatformConfig;

    fn fw() -> RtMdm {
        let mut f = RtMdm::new(PlatformConfig::stm32f746_qspi()).expect("platform");
        f.add_task(TaskSpec::new("control", zoo::micro_mlp(), 20_000, 20_000))
            .expect("control");
        f.add_task(TaskSpec::new("kws", zoo::ds_cnn(), 100_000, 100_000))
            .expect("kws");
        f.add_task(TaskSpec::new("ic", zoo::resnet8(), 400_000, 400_000))
            .expect("ic");
        f
    }

    #[test]
    fn optimizer_finds_an_admissible_minimum() {
        let outcome = fw().optimize().expect("search").expect("admissible");
        assert_eq!(outcome.strategies.len(), 3);
        assert!(outcome.admissible_count >= 1);
        assert!(
            outcome.scaling_ppm >= 1_000_000,
            "chosen config has headroom"
        );
        // The tiny control model is cheaper resident than with an 8 KiB
        // double buffer.
        assert_eq!(outcome.strategies[0], Strategy::AllInSram);
    }

    #[test]
    fn chosen_sram_is_minimal_among_candidates() {
        let f = fw();
        let outcome = f.optimize().expect("search").expect("admissible");
        // Brute-force re-check: no admitted assignment is cheaper.
        for mask in 0u32..8 {
            let mut candidate = f.clone();
            let strategies: Vec<Strategy> = (0..3)
                .map(|i| {
                    if mask & (1 << i) != 0 {
                        Strategy::AllInSram
                    } else {
                        Strategy::RtMdm
                    }
                })
                .collect();
            candidate.set_strategies(&strategies);
            if let Ok(a) = candidate.admit() {
                if a.schedulable() {
                    assert!(a.sram_total() >= outcome.sram_used);
                }
            }
        }
    }

    #[test]
    fn oversized_frameworks_error_instead_of_panicking() {
        let mut f = RtMdm::new(PlatformConfig::stm32f746_qspi()).expect("platform");
        for i in 0..13 {
            f.add_task(TaskSpec::new(
                format!("t{i}"),
                zoo::micro_mlp(),
                1_000_000,
                1_000_000,
            ))
            .expect("add");
        }
        let err = f.optimize().unwrap_err();
        assert!(matches!(
            err,
            AdmitError::TooManyTasks { count: 13, max: 12 }
        ));
    }

    #[test]
    fn impossible_workloads_yield_none() {
        let mut f = RtMdm::new(PlatformConfig::stm32f746_qspi()).expect("platform");
        // 10 ms period with 80 ms of work: no strategy helps.
        f.add_task(TaskSpec::new("ic", zoo::resnet8(), 10_000, 10_000))
            .expect("ic");
        assert!(f.optimize().expect("search").is_none());
    }
}
