//! User-facing task specifications.

use serde::{Deserialize, Serialize};

use rtmdm_dnn::Model;
use rtmdm_sched::MissPolicy;

/// Framework-level execution strategy of one task (maps onto the
/// staging modes and baseline transformations of `rtmdm-sched`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
#[non_exhaustive]
pub enum Strategy {
    /// RT-MDM: segment-level preemption + overlapped DMA prefetch.
    #[default]
    RtMdm,
    /// Baseline B1: fetch a segment, busy-wait the copy, compute it.
    FetchThenCompute,
    /// Baseline B2: whole-DNN non-preemptive execution with busy-wait
    /// staging (the TinyML-runtime default).
    WholeDnn,
    /// Baseline B3: all weights resident in SRAM (staging is free; SRAM
    /// accounting still reserves activations only).
    AllInSram,
}

impl std::fmt::Display for Strategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Strategy::RtMdm => "rt-mdm",
            Strategy::FetchThenCompute => "fetch-then-compute",
            Strategy::WholeDnn => "whole-dnn",
            Strategy::AllInSram => "all-in-sram",
        };
        f.write_str(s)
    }
}

/// Specification of one periodic DNN inference task.
///
/// Times are in microseconds and converted to cycles against the
/// platform clock at admission.
///
/// # Examples
///
/// ```rust
/// use rtmdm_core::TaskSpec;
/// use rtmdm_dnn::zoo;
///
/// let spec = TaskSpec::new("kws", zoo::ds_cnn(), 100_000, 100_000)
///     .with_buffer_bytes(16 * 1024);
/// assert_eq!(spec.name, "kws");
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TaskSpec {
    /// Task name, unique within the framework.
    pub name: String,
    /// The DNN this task runs.
    pub model: Model,
    /// Period in microseconds.
    pub period_us: u64,
    /// Relative deadline in microseconds (≤ period).
    pub deadline_us: u64,
    /// Fetch-buffer size in bytes; `None` selects the smallest buffer
    /// that fits the model's largest layer, rounded up to 4 KiB.
    pub buffer_bytes: Option<u64>,
    /// Execution strategy.
    pub strategy: Strategy,
    /// SRAM budget for this task's activations, in bytes. `None`
    /// reserves the full `2 × max activation`; a smaller budget makes
    /// the framework spill oversized feature maps to external memory
    /// (extra staging traffic priced into the affected segments).
    pub activation_budget_bytes: Option<u64>,
    /// Per-task deadline-miss policy; `None` inherits the framework's
    /// [`FrameworkOptions::miss_policy`](crate::FrameworkOptions::miss_policy).
    #[serde(default)]
    pub miss_policy: Option<MissPolicy>,
}

impl TaskSpec {
    /// Creates a spec with the default RT-MDM strategy and automatic
    /// buffer sizing.
    pub fn new(name: impl Into<String>, model: Model, period_us: u64, deadline_us: u64) -> Self {
        TaskSpec {
            name: name.into(),
            model,
            period_us,
            deadline_us,
            buffer_bytes: None,
            strategy: Strategy::RtMdm,
            activation_budget_bytes: None,
            miss_policy: None,
        }
    }

    /// Overrides the fetch-buffer size.
    pub fn with_buffer_bytes(mut self, bytes: u64) -> Self {
        self.buffer_bytes = Some(bytes);
        self
    }

    /// Overrides the execution strategy.
    pub fn with_strategy(mut self, strategy: Strategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Caps this task's activation SRAM, enabling spilling of oversized
    /// feature maps to external memory.
    pub fn with_activation_budget(mut self, bytes: u64) -> Self {
        self.activation_budget_bytes = Some(bytes);
        self
    }

    /// Overrides the deadline-miss policy for this task only.
    pub fn with_miss_policy(mut self, policy: MissPolicy) -> Self {
        self.miss_policy = Some(policy);
        self
    }

    /// The activation SRAM this spec reserves.
    pub fn resolved_activation_bytes(&self) -> u64 {
        self.activation_budget_bytes
            .unwrap_or_else(|| 2 * self.model.max_activation_bytes())
            .max(1)
    }

    /// The buffer size this spec resolves to: the explicit override, or
    /// the model's largest layer rounded up to a 4 KiB multiple.
    pub fn resolved_buffer_bytes(&self) -> u64 {
        self.buffer_bytes.unwrap_or_else(|| {
            let min = self.model.max_layer_weight_bytes().max(1);
            min.div_ceil(4096) * 4096
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtmdm_dnn::zoo;

    #[test]
    fn auto_buffer_covers_largest_layer() {
        let spec = TaskSpec::new("vww", zoo::mobilenet_v1_025(), 1000, 1000);
        let buf = spec.resolved_buffer_bytes();
        assert!(buf >= spec.model.max_layer_weight_bytes());
        assert_eq!(buf % 4096, 0);
        // Not absurdly larger than needed (within one page).
        assert!(buf < spec.model.max_layer_weight_bytes() + 4096);
    }

    #[test]
    fn explicit_buffer_wins() {
        let spec = TaskSpec::new("kws", zoo::ds_cnn(), 1000, 1000).with_buffer_bytes(12 * 1024);
        assert_eq!(spec.resolved_buffer_bytes(), 12 * 1024);
    }

    #[test]
    fn strategy_builder_and_display() {
        let spec = TaskSpec::new("a", zoo::micro_mlp(), 10, 10).with_strategy(Strategy::WholeDnn);
        assert_eq!(spec.strategy, Strategy::WholeDnn);
        assert_eq!(Strategy::RtMdm.to_string(), "rt-mdm");
        assert_eq!(Strategy::default(), Strategy::RtMdm);
    }
}
