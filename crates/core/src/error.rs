//! Framework-level errors.

use std::error::Error;
use std::fmt;

use rtmdm_mcusim::ConfigError;
use rtmdm_sched::TaskError;
use rtmdm_xmem::PlanError;

/// A task could not be added or the set could not be admitted.
#[derive(Debug)]
#[non_exhaustive]
pub enum AdmitError {
    /// The platform configuration is invalid.
    Platform(ConfigError),
    /// Memory planning (segmentation or SRAM layout) failed.
    Memory(PlanError),
    /// A task's timing parameters are inconsistent.
    Task(TaskError),
    /// A task name was used twice.
    DuplicateName {
        /// The offending name.
        name: String,
    },
    /// `simulate` or `admit` was called on an empty framework.
    NoTasks,
}

impl fmt::Display for AdmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdmitError::Platform(e) => write!(f, "platform configuration: {e}"),
            AdmitError::Memory(e) => write!(f, "memory planning: {e}"),
            AdmitError::Task(e) => write!(f, "task parameters: {e}"),
            AdmitError::DuplicateName { name } => {
                write!(f, "a task named {name} already exists")
            }
            AdmitError::NoTasks => write!(f, "no tasks have been added"),
        }
    }
}

impl Error for AdmitError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            AdmitError::Platform(e) => Some(e),
            AdmitError::Memory(e) => Some(e),
            AdmitError::Task(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ConfigError> for AdmitError {
    fn from(e: ConfigError) -> Self {
        AdmitError::Platform(e)
    }
}

impl From<PlanError> for AdmitError {
    fn from(e: PlanError) -> Self {
        AdmitError::Memory(e)
    }
}

impl From<TaskError> for AdmitError {
    fn from(e: TaskError) -> Self {
        AdmitError::Task(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_and_sources() {
        let e = AdmitError::from(PlanError::ZeroBuffer);
        assert!(e.to_string().contains("memory planning"));
        assert!(e.source().is_some());
        let d = AdmitError::DuplicateName { name: "kws".into() };
        assert!(d.to_string().contains("kws"));
        assert!(d.source().is_none());
    }

    #[test]
    fn error_bounds() {
        fn assert_error<E: std::error::Error + Send + Sync + 'static>() {}
        assert_error::<AdmitError>();
    }
}
