//! Framework-level errors.

use std::error::Error;
use std::fmt;

use rtmdm_check::Report;
use rtmdm_mcusim::ConfigError;
use rtmdm_sched::TaskError;
use rtmdm_xmem::PlanError;

/// A task could not be added or the set could not be admitted.
#[derive(Debug)]
#[non_exhaustive]
pub enum AdmitError {
    /// The platform configuration is invalid.
    Platform(ConfigError),
    /// Memory planning (segmentation or SRAM layout) failed.
    Memory(PlanError),
    /// A task's timing parameters are inconsistent.
    Task(TaskError),
    /// A task name was used twice.
    DuplicateName {
        /// The offending name.
        name: String,
    },
    /// `simulate` or `admit` was called on an empty framework.
    NoTasks,
    /// The static verifier found error-level structural findings; the
    /// full report is attached.
    Check(Report),
    /// The exhaustive strategy search cannot handle this many tasks.
    TooManyTasks {
        /// Number of tasks in the framework.
        count: usize,
        /// The search's task cap.
        max: usize,
    },
}

impl fmt::Display for AdmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdmitError::Platform(e) => write!(f, "platform configuration: {e}"),
            AdmitError::Memory(e) => write!(f, "memory planning: {e}"),
            AdmitError::Task(e) => write!(f, "task parameters: {e}"),
            AdmitError::DuplicateName { name } => {
                write!(f, "a task named {name} already exists")
            }
            AdmitError::NoTasks => write!(f, "no tasks have been added"),
            AdmitError::Check(report) => {
                let mut rules: Vec<&str> = report
                    .findings
                    .iter()
                    .filter(|x| x.severity == rtmdm_check::Severity::Error)
                    .map(|x| x.rule.id())
                    .collect();
                rules.sort_unstable();
                rules.dedup();
                write!(
                    f,
                    "static verification failed with {} error(s) [{}]",
                    report.error_count(),
                    rules.join(", ")
                )
            }
            AdmitError::TooManyTasks { count, max } => {
                write!(
                    f,
                    "strategy search is exhaustive; {count} tasks exceed the {max}-task cap"
                )
            }
        }
    }
}

impl Error for AdmitError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            AdmitError::Platform(e) => Some(e),
            AdmitError::Memory(e) => Some(e),
            AdmitError::Task(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ConfigError> for AdmitError {
    fn from(e: ConfigError) -> Self {
        AdmitError::Platform(e)
    }
}

impl From<PlanError> for AdmitError {
    fn from(e: PlanError) -> Self {
        AdmitError::Memory(e)
    }
}

impl From<TaskError> for AdmitError {
    fn from(e: TaskError) -> Self {
        AdmitError::Task(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_and_sources() {
        let e = AdmitError::from(PlanError::ZeroBuffer);
        assert!(e.to_string().contains("memory planning"));
        assert!(e.source().is_some());
        let d = AdmitError::DuplicateName { name: "kws".into() };
        assert!(d.to_string().contains("kws"));
        assert!(d.source().is_none());
    }

    #[test]
    fn check_and_cap_variants_display() {
        use rtmdm_check::{Finding, Rule};
        let mut report = Report::new();
        report.push(Finding::new(Rule::Rtm020, "deadline beyond period"));
        let e = AdmitError::Check(report);
        assert!(e.to_string().contains("RTM020"), "{e}");
        let t = AdmitError::TooManyTasks { count: 13, max: 12 };
        assert!(t.to_string().contains("13"), "{t}");
    }

    #[test]
    fn error_bounds() {
        fn assert_error<E: std::error::Error + Send + Sync + 'static>() {}
        assert_error::<AdmitError>();
    }
}
