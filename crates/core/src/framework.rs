//! The RT-MDM framework: admission control and execution.

use serde::{Deserialize, Serialize};

use rtmdm_dnn::CostModel;
use rtmdm_mcusim::{Cycles, FaultPlan, PlatformConfig};
use rtmdm_mcusim::{EnergyModel, EnergyReport};
use rtmdm_sched::analysis::{
    edf_demand_test, occupancy_utilization_ppm, rta_limited_preemption_with, rta_memory_oblivious,
    AnalysisOutcome, SchedulerMode,
};
use rtmdm_sched::assign::{audsley, dm_order, rm_order};
use rtmdm_sched::baseline;
use rtmdm_sched::sim::{simulate, Engine, Policy, SimConfig, SimResult};
use rtmdm_sched::{MissPolicy, Segment, SporadicTask, StagingMode, TaskSet};
use rtmdm_xmem::{
    segment_model, segments_retry_budget, ModelSegmentation, PlanError, RetryPolicy, SramArena,
};

use crate::error::AdmitError;
use crate::report;
use crate::spec::{Strategy, TaskSpec};

/// How priorities are assigned before analysis and simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
#[non_exhaustive]
pub enum PriorityAssignment {
    /// Deadline-monotonic (the framework default).
    #[default]
    DeadlineMonotonic,
    /// Rate-monotonic.
    RateMonotonic,
    /// The order tasks were added in.
    InsertionOrder,
    /// Audsley's optimal assignment over the RT-MDM analysis; falls
    /// back to deadline-monotonic when no feasible assignment exists
    /// (admission will then report unschedulable).
    Audsley,
}

/// Framework configuration knobs (also the levers of the ablation
/// study, experiment F8).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FrameworkOptions {
    /// CPU/DMA scheduling policy.
    pub policy: Policy,
    /// Priority-assignment rule (fixed-priority policies only).
    pub assignment: PriorityAssignment,
    /// Cost model translating layers into cycles.
    pub cost_model: CostModel,
    /// When `false`, admission uses the memory-oblivious analysis
    /// (ablation (iii): demonstrates unsound admission).
    pub dma_aware_analysis: bool,
    /// When set, every task's strategy is overridden (ablation (i)/(ii):
    /// force `FetchThenCompute` to disable prefetch, `WholeDnn` to
    /// disable segment-level preemption).
    pub force_strategy: Option<Strategy>,
    /// Dispatch discipline: `false` (default) is RT-MDM's priority-gated
    /// non-work-conserving rule; `true` is work-conserving dispatch
    /// (ablation (iv): repeated lower-priority blocking).
    pub work_conserving: bool,
    /// Cap on any segment's compute time, in microseconds. `None`
    /// (default) derives the cap automatically as a quarter of the
    /// shortest deadline in the set, which bounds the non-preemptive
    /// blocking any task can impose.
    pub segment_compute_cap_us: Option<u64>,
    /// When `true` (default), layers whose compute alone exceeds the
    /// segment cap are tiled into row-slices with intra-layer preemption
    /// points, lifting the blocking floor of layer granularity.
    pub tile_oversized_layers: bool,
    /// The fault environment the simulator injects and admission charges
    /// for ([`FaultPlan::NONE`] by default — provably free when
    /// inactive).
    #[serde(default)]
    pub fault: FaultPlan,
    /// Framework-wide deadline-miss policy; individual specs can
    /// override it via [`TaskSpec::with_miss_policy`].
    #[serde(default)]
    pub miss_policy: MissPolicy,
    /// Time-advancement engine of the bound simulator. The default
    /// discrete-event engine and the legacy instant-stepping loop
    /// produce byte-identical results; the knob exists for the
    /// equivalence gate and for throughput comparisons.
    #[serde(default)]
    pub engine: Engine,
    /// When `true`, simulation traces carry the causal-attribution
    /// anchor events the blame reconstruction (`rtmdm-obs`) consumes.
    /// `false` (the default) keeps traces byte-identical to
    /// pre-attribution output; stats and metrics are unaffected either
    /// way.
    #[serde(default)]
    pub attribution: bool,
}

impl Default for FrameworkOptions {
    fn default() -> Self {
        FrameworkOptions {
            policy: Policy::FixedPriority,
            assignment: PriorityAssignment::DeadlineMonotonic,
            cost_model: CostModel::cmsis_nn_m7(),
            dma_aware_analysis: true,
            force_strategy: None,
            work_conserving: false,
            segment_compute_cap_us: None,
            tile_oversized_layers: true,
            fault: FaultPlan::NONE,
            miss_policy: MissPolicy::Continue,
            engine: Engine::default(),
            attribution: false,
        }
    }
}

/// The RT-MDM framework instance: a platform, a set of DNN task
/// specifications, admission control, and a simulator binding.
///
/// # Examples
///
/// ```rust
/// use rtmdm_core::{RtMdm, TaskSpec};
/// use rtmdm_dnn::zoo;
/// use rtmdm_mcusim::PlatformConfig;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut fw = RtMdm::new(PlatformConfig::stm32f746_qspi())?;
/// fw.add_task(TaskSpec::new("kws", zoo::ds_cnn(), 100_000, 100_000))?;
/// let admission = fw.admit()?;
/// assert!(admission.schedulable());
/// let run = fw.simulate(1_000_000)?;
/// assert_eq!(run.deadline_misses(), 0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct RtMdm {
    platform: PlatformConfig,
    options: FrameworkOptions,
    specs: Vec<TaskSpec>,
}

impl RtMdm {
    /// Creates a framework with default options.
    ///
    /// # Errors
    ///
    /// Returns [`AdmitError::Platform`] if the platform is invalid.
    pub fn new(platform: PlatformConfig) -> Result<Self, AdmitError> {
        RtMdm::with_options(platform, FrameworkOptions::default())
    }

    /// Creates a framework with explicit options.
    ///
    /// # Errors
    ///
    /// Returns [`AdmitError::Platform`] if the platform is invalid.
    pub fn with_options(
        platform: PlatformConfig,
        options: FrameworkOptions,
    ) -> Result<Self, AdmitError> {
        platform.validate()?;
        Ok(RtMdm {
            platform,
            options,
            specs: Vec::new(),
        })
    }

    /// The platform this framework targets.
    pub fn platform(&self) -> &PlatformConfig {
        &self.platform
    }

    /// The active options.
    pub fn options(&self) -> &FrameworkOptions {
        &self.options
    }

    /// The task specifications added so far.
    pub fn specs(&self) -> &[TaskSpec] {
        &self.specs
    }

    /// Adds a DNN task. Fails fast on duplicate names, inconsistent
    /// timing, or a model whose largest layer exceeds its fetch buffer.
    ///
    /// # Errors
    ///
    /// [`AdmitError::DuplicateName`], [`AdmitError::Task`], or
    /// [`AdmitError::Memory`].
    pub fn add_task(&mut self, spec: TaskSpec) -> Result<(), AdmitError> {
        if self.specs.iter().any(|s| s.name == spec.name) {
            return Err(AdmitError::DuplicateName {
                name: spec.name.clone(),
            });
        }
        // Validate segmentation eagerly so the caller learns about an
        // undersized buffer at add time, not at admission.
        let _ = segment_model(
            &spec.model,
            &self.options.cost_model,
            spec.resolved_buffer_bytes(),
        )?;
        // Validate timing by constructing a throwaway task.
        let period = self.platform.cpu.cycles_from_micros(spec.period_us);
        let deadline = self.platform.cpu.cycles_from_micros(spec.deadline_us);
        let _ = SporadicTask::new(
            spec.name.clone(),
            period,
            deadline,
            vec![Segment::new(Cycles::new(1), 0)],
            StagingMode::Resident,
        )?;
        self.specs.push(spec);
        Ok(())
    }

    /// Replaces every spec's strategy (advisor support).
    ///
    /// # Panics
    ///
    /// Panics if `strategies.len()` differs from the task count.
    pub(crate) fn set_strategies(&mut self, strategies: &[Strategy]) {
        assert_eq!(strategies.len(), self.specs.len());
        for (spec, &s) in self.specs.iter_mut().zip(strategies) {
            spec.strategy = s;
        }
    }

    /// Crate-internal access to the built task set (advisor support).
    pub(crate) fn build_public(&self) -> Result<(TaskSet, Vec<ModelSegmentation>), AdmitError> {
        self.build()
    }

    /// Crate-internal access to the priority permutation.
    pub(crate) fn priority_order_public(&self, ts: &TaskSet) -> Vec<usize> {
        self.priority_order(ts)
    }

    /// The per-segment compute cap used when segmenting: the explicit
    /// option, or a quarter of the shortest deadline in the set.
    fn compute_cap(&self) -> Option<Cycles> {
        compute_cap_for(&self.platform, &self.options, &self.specs)
    }

    /// Builds the scheduler task set (insertion order) plus each task's
    /// segmentation plan.
    fn build(&self) -> Result<(TaskSet, Vec<ModelSegmentation>), AdmitError> {
        self.build_hooked(&DirectHooks)
    }

    /// [`RtMdm::build`] with lowering routed through `hooks` so the
    /// admission service can substitute its content-addressed cache.
    fn build_hooked(
        &self,
        hooks: &dyn AdmissionHooks,
    ) -> Result<(TaskSet, Vec<ModelSegmentation>), AdmitError> {
        let cap = self.compute_cap();
        let mut tasks = Vec::with_capacity(self.specs.len());
        let mut plans = Vec::with_capacity(self.specs.len());
        for spec in &self.specs {
            let lowered = hooks.lower(&self.platform, &self.options, spec, cap)?;
            tasks.push(lowered.task);
            plans.push(lowered.plan);
        }
        Ok((TaskSet::from_tasks(tasks), plans))
    }

    /// The priority permutation for the built (insertion-order) set.
    fn priority_order(&self, ts: &TaskSet) -> Vec<usize> {
        priority_order_for(&self.platform, &self.options, ts)
    }

    /// Plans SRAM for the task set, honouring each task's strategy.
    fn plan_sram(&self) -> Result<Vec<SramRow>, AdmitError> {
        let mut arena = SramArena::new(self.platform.sram_bytes);
        arena.alloc(
            "runtime-reserve",
            rtmdm_xmem::SramLayout::RUNTIME_RESERVE,
            8,
        )?;
        let mut rows = Vec::with_capacity(self.specs.len());
        for spec in &self.specs {
            let act = spec.resolved_activation_bytes();
            arena.alloc(format!("{}-activations", spec.name), act, 8)?;
            let weights = weight_region_bytes(&self.options, spec);
            arena.alloc(format!("{}-weights", spec.name), weights, 8)?;
            rows.push(SramRow {
                task: spec.name.clone(),
                activation_bytes: act,
                weight_bytes: weights,
            });
        }
        if arena.used() > self.platform.sram_bytes {
            return Err(AdmitError::Memory(PlanError::SramOverflow {
                demanded: arena.used(),
                available: self.platform.sram_bytes,
            }));
        }
        Ok(rows)
    }

    /// Runs admission control: static verification, SRAM layout, and
    /// the schedulability analysis.
    ///
    /// # Errors
    ///
    /// [`AdmitError::NoTasks`] on an empty framework, memory/task errors
    /// from planning, or [`AdmitError::Check`] when the static verifier
    /// (see [`RtMdm::check`]) reports error-level structural findings.
    /// An admission that *fails the analysis* is not an error — inspect
    /// [`Admission::schedulable`].
    pub fn admit(&self) -> Result<Admission, AdmitError> {
        self.admit_hooked(&DirectHooks)
            .map(|(admission, _, _)| admission)
    }

    /// [`RtMdm::admit`] with lowering and analysis routed through
    /// `hooks` (the admission service substitutes memoized versions),
    /// additionally returning the lowered, priority-ordered task set —
    /// so the caller can run follow-up analyses (e.g. sensitivity)
    /// without re-lowering — and the non-blocking verifier report that
    /// `admit` computes and discards.
    pub(crate) fn admit_hooked(
        &self,
        hooks: &dyn AdmissionHooks,
    ) -> Result<(Admission, TaskSet, rtmdm_check::Report), AdmitError> {
        if self.specs.is_empty() {
            return Err(AdmitError::NoTasks);
        }
        let sram = self.plan_sram()?;
        let report = self.check_hooked(hooks);
        if report.blocks_admission() {
            return Err(AdmitError::Check(report));
        }
        let (ts, plans) = self.build_hooked(hooks)?;
        let order = self.priority_order(&ts);
        let ordered = ts.reordered(&order);
        let mut analysis = hooks.analyze(&ordered, &self.platform, &self.options);
        // Retry-budget admission: under an active fault plan each task
        // must still meet its deadline after paying the worst tolerated
        // re-fetch pattern (bounded by `max_retries` per transfer).
        // Resident tasks stage nothing and are immune. EDF yields no
        // per-task bounds, so its verdict cannot be budget-adjusted —
        // a documented limitation of the demand test.
        let retry = RetryPolicy::from_plan(&self.options.fault);
        let retry_budgets: Vec<Cycles> = ordered
            .tasks()
            .iter()
            .map(|t| {
                if t.mode == StagingMode::Resident {
                    Cycles::ZERO
                } else {
                    segments_retry_budget(
                        t.segments.iter().map(|s| s.fetch_bytes),
                        &self.platform.ext_mem,
                        &retry,
                    )
                }
            })
            .collect();
        if !retry.is_none() {
            analysis.schedulable = analysis.schedulable
                && ordered.tasks().iter().enumerate().all(|(p, t)| {
                    analysis
                        .response_of(p)
                        .is_none_or(|r| r + retry_budgets[p] <= t.deadline)
                });
        }
        let occupancy_ppm = occupancy_utilization_ppm(&ordered, &self.platform);
        let admission = Admission {
            order,
            names: ordered.tasks().iter().map(|t| t.name.clone()).collect(),
            deadlines: ordered.tasks().iter().map(|t| t.deadline).collect(),
            policy: self.options.policy,
            analysis,
            sram,
            occupancy_ppm,
            plans,
            retry_budgets,
        };
        Ok((admission, ordered, report))
    }

    /// Simulates the task set for `horizon_us` microseconds at
    /// worst-case execution times.
    ///
    /// # Errors
    ///
    /// Same conditions as [`RtMdm::admit`].
    pub fn simulate(&self, horizon_us: u64) -> Result<RunReport, AdmitError> {
        self.simulate_with(horizon_us, 1_000_000, 0)
    }

    /// Simulates with execution-time variation: each job draws a scale
    /// uniformly from `[exec_scale_min_ppm, 1e6]` using `seed`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`RtMdm::admit`].
    pub fn simulate_with(
        &self,
        horizon_us: u64,
        exec_scale_min_ppm: u64,
        seed: u64,
    ) -> Result<RunReport, AdmitError> {
        if self.specs.is_empty() {
            return Err(AdmitError::NoTasks);
        }
        let (ts, _) = self.build()?;
        let order = self.priority_order(&ts);
        let ordered = ts.reordered(&order);
        let config = SimConfig {
            horizon: self.platform.cpu.cycles_from_micros(horizon_us),
            policy: self.options.policy,
            exec_scale_min_ppm,
            seed,
            work_conserving: self.options.work_conserving,
            fault: self.options.fault,
            engine: self.options.engine,
            attribution: self.options.attribution,
            staging_window: 2,
        };
        let result = simulate(&ordered, &self.platform, &config);
        Ok(RunReport {
            names: ordered.tasks().iter().map(|t| t.name.clone()).collect(),
            cpu: self.platform.cpu,
            result,
        })
    }
}

/// One spec lowered to scheduler form: its segmentation before and
/// after activation-spill pricing, plus the strategy-transformed task.
/// Shared between [`RtMdm::build`] and the static verifier, which needs
/// the pre-spill plan (spill extras are staging traffic, not part of
/// the double-buffered weight discipline). `Clone` so the admission
/// service can hand out cached copies of the artifact.
#[derive(Debug, Clone)]
pub(crate) struct Lowered {
    /// Segmentation as planned, before spill extras.
    pub pre_plan: ModelSegmentation,
    /// Segmentation with spill traffic priced in (what execution uses).
    pub plan: ModelSegmentation,
    /// The strategy-transformed sporadic task.
    pub task: SporadicTask,
    /// The effective strategy (after any forced override).
    pub strategy: Strategy,
}

/// Substitution points of the admission pipeline: lowering specs to
/// scheduler form and running the schedulability analysis. The default
/// implementations compute directly; the admission service overrides
/// them with content-addressed caches (see `crate::service`). `Sync`
/// because the service shards query batches across worker threads that
/// share one hook instance.
pub(crate) trait AdmissionHooks: Sync {
    /// Lowers one spec (defaults to [`lower_spec`]).
    fn lower(
        &self,
        platform: &PlatformConfig,
        options: &FrameworkOptions,
        spec: &TaskSpec,
        cap: Option<Cycles>,
    ) -> Result<Lowered, AdmitError> {
        lower_spec(platform, options, spec, cap)
    }

    /// Runs the schedulability analysis on the priority-ordered set
    /// (defaults to [`direct_analysis`]).
    fn analyze(
        &self,
        ordered: &TaskSet,
        platform: &PlatformConfig,
        options: &FrameworkOptions,
    ) -> AnalysisOutcome {
        direct_analysis(ordered, platform, options)
    }
}

/// The hook set every one-shot entry point uses: no caching, straight
/// computation.
pub(crate) struct DirectHooks;

impl AdmissionHooks for DirectHooks {}

/// The schedulability analysis admission runs on the priority-ordered
/// set, selected by policy and analysis options.
pub(crate) fn direct_analysis(
    ordered: &TaskSet,
    platform: &PlatformConfig,
    options: &FrameworkOptions,
) -> AnalysisOutcome {
    let mode = if options.work_conserving {
        SchedulerMode::WorkConserving
    } else {
        SchedulerMode::Gated
    };
    match options.policy {
        Policy::Edf => AnalysisOutcome {
            // The EDF processor-demand test yields a yes/no verdict,
            // not per-task bounds.
            schedulable: edf_demand_test(ordered, platform),
            response: vec![None; ordered.len()],
        },
        Policy::FixedPriority if options.dma_aware_analysis => {
            rta_limited_preemption_with(ordered, platform, mode)
        }
        Policy::FixedPriority => rta_memory_oblivious(ordered, platform),
        // Policy is non_exhaustive upstream; treat unknown policies
        // like fixed priority.
        _ => rta_limited_preemption_with(ordered, platform, mode),
    }
}

/// The per-segment compute cap for a spec set: the explicit option
/// (clamped to at least one cycle), or a quarter of the shortest
/// deadline.
pub(crate) fn compute_cap_for(
    platform: &PlatformConfig,
    options: &FrameworkOptions,
    specs: &[TaskSpec],
) -> Option<Cycles> {
    if let Some(us) = options.segment_compute_cap_us {
        return Some(platform.cpu.cycles_from_micros(us).max(Cycles::new(1)));
    }
    specs
        .iter()
        .map(|s| platform.cpu.cycles_from_micros(s.deadline_us))
        .min()
        .map(|d| (d / 4).max(Cycles::new(1)))
}

/// Lowers one spec: segmentation (tiled or capped), activation-spill
/// pricing, and the strategy transformation into a [`SporadicTask`].
pub(crate) fn lower_spec(
    platform: &PlatformConfig,
    options: &FrameworkOptions,
    spec: &TaskSpec,
    cap: Option<Cycles>,
) -> Result<Lowered, AdmitError> {
    let pre_plan = match (cap, options.tile_oversized_layers) {
        (Some(cap), true) => rtmdm_xmem::segment_model_tiled(
            &spec.model,
            &options.cost_model,
            spec.resolved_buffer_bytes(),
            cap,
        )?,
        _ => rtmdm_xmem::segment_model_capped(
            &spec.model,
            &options.cost_model,
            spec.resolved_buffer_bytes(),
            cap,
        )?,
    };
    // Activation spilling: a capped activation budget turns oversized
    // feature maps into extra staging traffic, priced into the segment
    // that produces each spilled tensor.
    let mut plan = pre_plan.clone();
    if let Some(budget) = spec.activation_budget_bytes {
        let spill = rtmdm_xmem::spill::plan_spill(&spec.model, budget);
        for &layer in &spill.spilled_layers {
            let extra = 2 * spec.model.nodes()[layer].out_shape.len() as u64;
            if let Some(s) = plan
                .segments
                .iter_mut()
                .find(|s| s.first_layer <= layer && layer <= s.last_layer)
            {
                s.fetch_bytes += extra;
            }
        }
    }
    let segments: Vec<Segment> = plan
        .segments
        .iter()
        .map(|s| Segment::new(s.compute_cycles, s.fetch_bytes))
        .collect();
    let base = SporadicTask::new(
        spec.name.clone(),
        platform.cpu.cycles_from_micros(spec.period_us),
        platform.cpu.cycles_from_micros(spec.deadline_us),
        segments,
        StagingMode::Overlapped,
    )?;
    let strategy = options.force_strategy.unwrap_or(spec.strategy);
    let task = match strategy {
        Strategy::RtMdm => base,
        Strategy::FetchThenCompute => baseline::fetch_then_compute(&base, platform),
        Strategy::WholeDnn => baseline::whole_job(&baseline::fetch_then_compute(&base, platform)),
        Strategy::AllInSram => baseline::resident(&base),
    }
    .with_miss_policy(spec.miss_policy.unwrap_or(options.miss_policy));
    Ok(Lowered {
        pre_plan,
        plan,
        task,
        strategy,
    })
}

/// The priority permutation of `ts` under the configured assignment.
pub(crate) fn priority_order_for(
    platform: &PlatformConfig,
    options: &FrameworkOptions,
    ts: &TaskSet,
) -> Vec<usize> {
    match options.assignment {
        PriorityAssignment::InsertionOrder => (0..ts.len()).collect(),
        PriorityAssignment::DeadlineMonotonic => dm_order(ts),
        PriorityAssignment::RateMonotonic => rm_order(ts),
        PriorityAssignment::Audsley => audsley(ts, platform).unwrap_or_else(|| dm_order(ts)),
    }
}

/// The SRAM weight region a spec reserves under its effective strategy:
/// a double buffer for streaming strategies, the full parameter
/// footprint for whole-DNN staging and resident weights.
pub(crate) fn weight_region_bytes(options: &FrameworkOptions, spec: &TaskSpec) -> u64 {
    match options.force_strategy.unwrap_or(spec.strategy) {
        Strategy::RtMdm | Strategy::FetchThenCompute => 2 * spec.resolved_buffer_bytes(),
        Strategy::WholeDnn | Strategy::AllInSram => spec.model.total_weight_bytes().max(1),
    }
}

/// One SRAM-plan row.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SramRow {
    /// Task name.
    pub task: String,
    /// Activation scratch bytes.
    pub activation_bytes: u64,
    /// Weight-buffer bytes (double buffer, or full footprint for
    /// whole-DNN/resident strategies).
    pub weight_bytes: u64,
}

/// Outcome of admission control.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Admission {
    /// Priority permutation over the insertion order.
    pub order: Vec<usize>,
    /// Task names in priority order.
    pub names: Vec<String>,
    /// Relative deadlines in priority order.
    pub deadlines: Vec<Cycles>,
    /// Policy the admission was computed for.
    pub policy: Policy,
    /// The schedulability analysis outcome (priority order).
    pub analysis: AnalysisOutcome,
    /// SRAM plan rows (insertion order).
    pub sram: Vec<SramRow>,
    /// Occupancy utilization in ppm.
    pub occupancy_ppm: u64,
    /// Per-task segmentation plans (insertion order).
    pub plans: Vec<ModelSegmentation>,
    /// Worst-case extra staging cycles each task may pay for bounded
    /// re-fetches under the configured fault plan (priority order; all
    /// zero when the plan is inactive).
    #[serde(default)]
    pub retry_budgets: Vec<Cycles>,
}

impl Admission {
    /// Whether the task set passed both memory planning and the timing
    /// analysis (with retry budgets charged when a fault plan is
    /// active).
    pub fn schedulable(&self) -> bool {
        self.analysis.schedulable
    }

    /// The retry budget of priority `p`, zero when none was computed
    /// (inactive fault plan, or an admission deserialized from an older
    /// schema).
    pub fn retry_budget_of(&self, p: usize) -> Cycles {
        self.retry_budgets.get(p).copied().unwrap_or(Cycles::ZERO)
    }

    /// Total SRAM the plan consumes (activations + weight buffers +
    /// runtime reserve).
    pub fn sram_total(&self) -> u64 {
        rtmdm_xmem::SramLayout::RUNTIME_RESERVE
            + self
                .sram
                .iter()
                .map(|r| r.activation_bytes + r.weight_bytes)
                .sum::<u64>()
    }

    /// Renders the admission report as an ASCII table.
    pub fn to_table(&self) -> String {
        let rows: Vec<Vec<String>> = self
            .names
            .iter()
            .enumerate()
            .map(|(p, name)| {
                vec![
                    p.to_string(),
                    name.clone(),
                    self.deadlines[p].to_string(),
                    match (self.policy, self.analysis.response_of(p)) {
                        (_, Some(r)) => r.to_string(),
                        (Policy::Edf, None) => "n/a (edf)".to_owned(),
                        (_, None) => "diverged".to_owned(),
                    },
                    match (self.policy, self.analysis.response_of(p)) {
                        // The bound must hold with the task's retry
                        // budget charged against its slack (zero when
                        // no fault plan is active).
                        (_, Some(r)) if r + self.retry_budget_of(p) <= self.deadlines[p] => {
                            "yes".to_owned()
                        }
                        (Policy::Edf, None) if self.analysis.schedulable => "yes".to_owned(),
                        _ => "NO".to_owned(),
                    },
                ]
            })
            .collect();
        report::table(&["prio", "task", "deadline", "wcrt-bound", "meets"], &rows)
    }
}

/// Outcome of a simulation run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Task names in priority order (aligned with stats).
    pub names: Vec<String>,
    /// Clock for time conversions.
    pub cpu: rtmdm_mcusim::Frequency,
    /// Raw simulation result.
    pub result: SimResult,
}

impl RunReport {
    /// Total deadline misses across tasks.
    pub fn deadline_misses(&self) -> u64 {
        self.result.total_misses()
    }

    /// The largest observed response of a task, by name.
    pub fn max_response_of(&self, name: &str) -> Option<Cycles> {
        let idx = self.names.iter().position(|n| n == name)?;
        Some(self.result.max_response_of(idx))
    }

    /// Energy accounting of the run under an [`EnergyModel`]. The
    /// report is trace-based: CPU-active cycles from segment events,
    /// staged bytes from fetch events (strategies that busy-wait their
    /// staging show it as CPU-active energy instead).
    pub fn energy(&self, model: &EnergyModel) -> EnergyReport {
        model.account(&self.result.trace, self.result.horizon)
    }

    /// Renders per-task statistics as an ASCII table.
    pub fn to_table(&self) -> String {
        let rows: Vec<Vec<String>> = self
            .names
            .iter()
            .zip(&self.result.stats)
            .map(|(name, s)| {
                vec![
                    name.clone(),
                    s.releases.to_string(),
                    s.completions.to_string(),
                    s.misses.to_string(),
                    report::cycles_as_ms(s.max_response, self.cpu),
                    s.preemptions.to_string(),
                ]
            })
            .collect();
        report::table(
            &[
                "task",
                "released",
                "completed",
                "misses",
                "max-response",
                "preempted",
            ],
            &rows,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtmdm_dnn::zoo;

    fn fw() -> RtMdm {
        RtMdm::new(PlatformConfig::stm32f746_qspi()).expect("platform")
    }

    #[test]
    fn quickstart_flow_admits_and_runs_clean() {
        let mut f = fw();
        f.add_task(TaskSpec::new("kws", zoo::ds_cnn(), 100_000, 100_000))
            .expect("add");
        let admission = f.admit().expect("admit");
        assert!(admission.schedulable(), "{}", admission.to_table());
        let run = f.simulate(1_000_000).expect("simulate");
        assert_eq!(run.deadline_misses(), 0);
        assert!(run.max_response_of("kws").is_some());
        // The analytical bound dominates the observed maximum.
        let bound = admission.analysis.response_of(0).expect("bound");
        assert!(bound >= run.max_response_of("kws").expect("observed"));
    }

    #[test]
    fn duplicate_names_are_rejected() {
        let mut f = fw();
        f.add_task(TaskSpec::new("a", zoo::micro_mlp(), 1_000, 1_000))
            .expect("add");
        let err = f
            .add_task(TaskSpec::new("a", zoo::micro_mlp(), 1_000, 1_000))
            .unwrap_err();
        assert!(matches!(err, AdmitError::DuplicateName { .. }));
    }

    #[test]
    fn undersized_buffer_fails_at_add_time() {
        let mut f = fw();
        let err = f
            .add_task(
                TaskSpec::new("vww", zoo::mobilenet_v1_025(), 500_000, 500_000)
                    .with_buffer_bytes(4 * 1024),
            )
            .unwrap_err();
        assert!(matches!(
            err,
            AdmitError::Memory(PlanError::LayerTooLarge { .. })
        ));
    }

    #[test]
    fn bad_timing_fails_at_add_time() {
        let mut f = fw();
        let err = f
            .add_task(TaskSpec::new("a", zoo::micro_mlp(), 1_000, 2_000))
            .unwrap_err();
        assert!(matches!(err, AdmitError::Task(_)));
    }

    #[test]
    fn empty_framework_cannot_admit_or_simulate() {
        let f = fw();
        assert!(matches!(f.admit(), Err(AdmitError::NoTasks)));
        assert!(matches!(f.simulate(1000), Err(AdmitError::NoTasks)));
    }

    #[test]
    fn sram_overflow_is_reported() {
        let platform = PlatformConfig::stm32f746_qspi().with_sram_bytes(48 * 1024);
        let mut f = RtMdm::new(platform).expect("platform");
        f.add_task(
            TaskSpec::new("vww", zoo::mobilenet_v1_025(), 500_000, 500_000)
                .with_strategy(Strategy::AllInSram),
        )
        .expect("add");
        let err = f.admit().unwrap_err();
        assert!(matches!(err, AdmitError::Memory(_)), "{err}");
    }

    #[test]
    fn deadline_monotonic_ordering_is_applied() {
        let mut f = fw();
        f.add_task(TaskSpec::new("slow", zoo::lenet5(), 500_000, 500_000))
            .expect("add");
        f.add_task(TaskSpec::new("fast", zoo::micro_mlp(), 10_000, 10_000))
            .expect("add");
        let admission = f.admit().expect("admit");
        assert_eq!(admission.names[0], "fast");
        assert_eq!(admission.order, vec![1, 0]);
    }

    #[test]
    fn forced_strategy_overrides_specs() {
        let options = FrameworkOptions {
            force_strategy: Some(Strategy::WholeDnn),
            ..FrameworkOptions::default()
        };
        let mut f =
            RtMdm::with_options(PlatformConfig::stm32f746_qspi(), options).expect("platform");
        f.add_task(TaskSpec::new("kws", zoo::ds_cnn(), 100_000, 100_000))
            .expect("add");
        let run = f.simulate(500_000).expect("simulate");
        // Whole-DNN: exactly one segment per job → no preemptions ever.
        assert_eq!(
            run.result.stats.iter().map(|s| s.preemptions).sum::<u64>(),
            0
        );
    }

    #[test]
    fn memory_oblivious_admission_can_be_fooled() {
        // A fetch-dominated task: staging makes it unschedulable, but
        // the oblivious analysis happily admits it.
        // The autoencoder is fetch-dominated on QSPI: ≈268 kB of weights
        // at 5 cycles/byte is ≈1.4 M cycles of staging versus ≈0.5 M of
        // compute. A 4 ms period (800 k cycles at 200 MHz) leaves room
        // for the compute but not for the staging.
        let platform = PlatformConfig::stm32f746_qspi();
        let period_us = 4_000;
        let mk = |aware: bool| {
            let options = FrameworkOptions {
                dma_aware_analysis: aware,
                ..FrameworkOptions::default()
            };
            let mut f = RtMdm::with_options(platform.clone(), options).expect("platform");
            f.add_task(TaskSpec::new(
                "ae",
                zoo::autoencoder(),
                period_us,
                period_us,
            ))
            .expect("add");
            f.admit().expect("admit")
        };
        assert!(!mk(true).schedulable(), "sound analysis must reject");
        assert!(mk(false).schedulable(), "oblivious analysis admits");
    }

    #[test]
    fn activation_budget_triggers_spilling() {
        // mobilenet's peak feature map is 36 kB; a 32 kB budget forces
        // spilling, which shows up as extra staged bytes and a smaller
        // SRAM reservation.
        let spec_full = TaskSpec::new("vww", zoo::mobilenet_v1_025(), 500_000, 500_000);
        let spec_budget = spec_full.clone().with_activation_budget(32 * 1024);
        let fetch_of = |spec: TaskSpec| {
            let mut f = fw();
            f.add_task(spec).expect("add");
            let admission = f.admit().expect("admit");
            (
                admission.plans[0].total_fetch_bytes(),
                admission.sram[0].activation_bytes,
            )
        };
        let (fetch_full, act_full) = fetch_of(spec_full);
        let (fetch_budget, act_budget) = fetch_of(spec_budget);
        assert!(fetch_budget > fetch_full, "spilling adds staging traffic");
        assert!(act_budget < act_full, "budget shrinks the reservation");
        assert_eq!(act_budget, 32 * 1024);
    }

    #[test]
    fn spilled_runs_remain_sound() {
        let mut f = fw();
        f.add_task(
            TaskSpec::new("vww", zoo::mobilenet_v1_025(), 500_000, 500_000)
                .with_activation_budget(32 * 1024),
        )
        .expect("add");
        let admission = f.admit().expect("admit");
        assert!(admission.schedulable(), "{}", admission.to_table());
        let run = f.simulate(2_000_000).expect("simulate");
        assert_eq!(run.deadline_misses(), 0);
        let bound = admission.analysis.response_of(0).expect("bound");
        assert!(bound >= run.max_response_of("vww").expect("ran"));
    }

    #[test]
    fn edf_admission_gives_a_verdict_without_bounds() {
        let options = FrameworkOptions {
            policy: rtmdm_sched::sim::Policy::Edf,
            ..FrameworkOptions::default()
        };
        let mut f =
            RtMdm::with_options(PlatformConfig::stm32f746_qspi(), options).expect("platform");
        f.add_task(TaskSpec::new("kws", zoo::ds_cnn(), 100_000, 100_000))
            .expect("kws");
        f.add_task(TaskSpec::new("ic", zoo::resnet8(), 400_000, 400_000))
            .expect("ic");
        let admission = f.admit().expect("admit");
        assert!(admission.schedulable(), "{}", admission.to_table());
        assert!(admission.analysis.response.iter().all(Option::is_none));
        assert!(admission.to_table().contains("n/a (edf)"));
        // EDF admission is honoured by the EDF runtime.
        let run = f.simulate(2_000_000).expect("simulate");
        assert_eq!(run.deadline_misses(), 0);
    }

    #[test]
    fn tiling_lifts_the_blocking_floor() {
        // A 10 ms control deadline next to resnet8 is infeasible at
        // layer granularity (its widest conv computes for ≈15 ms) but
        // admissible once oversized layers are tiled.
        let build = |tiling: bool| {
            let options = FrameworkOptions {
                tile_oversized_layers: tiling,
                ..FrameworkOptions::default()
            };
            let mut f =
                RtMdm::with_options(PlatformConfig::stm32f746_qspi(), options).expect("platform");
            f.add_task(TaskSpec::new("control", zoo::micro_mlp(), 10_000, 10_000))
                .expect("control");
            f.add_task(TaskSpec::new("ic", zoo::resnet8(), 400_000, 400_000))
                .expect("ic");
            f
        };
        assert!(!build(false).admit().expect("admit").schedulable());
        let tiled = build(true);
        let admission = tiled.admit().expect("admit");
        assert!(admission.schedulable(), "{}", admission.to_table());
        let run = tiled.simulate(4_000_000).expect("simulate");
        assert_eq!(run.deadline_misses(), 0);
        // Bound dominance still holds with tiled continuation segments.
        let idx = admission.names.iter().position(|n| n == "control").unwrap();
        let bound = admission.analysis.response_of(idx).expect("bound");
        assert!(bound >= run.max_response_of("control").expect("ran"));
    }

    #[test]
    fn inactive_fault_plan_leaves_admission_untouched() {
        let mk = |fault: FaultPlan| {
            let options = FrameworkOptions {
                fault,
                ..FrameworkOptions::default()
            };
            let mut f =
                RtMdm::with_options(PlatformConfig::stm32f746_qspi(), options).expect("platform");
            f.add_task(TaskSpec::new("kws", zoo::ds_cnn(), 100_000, 100_000))
                .expect("add");
            f.admit().expect("admit")
        };
        let plain = mk(FaultPlan::NONE);
        // Zero rate and zero jitter with any seed/retry bound: free.
        let idle = mk(FaultPlan {
            seed: 1234,
            dma_fault_rate_ppm: 0,
            max_retries: 9,
            jitter_max_cycles: 0,
        });
        assert_eq!(plain.to_table(), idle.to_table());
        assert_eq!(plain.analysis, idle.analysis);
        assert!(idle.retry_budgets.iter().all(|b| b.is_zero()));
    }

    #[test]
    fn retry_budget_charges_slack_and_can_flip_admission() {
        let mk = |fault: FaultPlan| {
            let options = FrameworkOptions {
                fault,
                ..FrameworkOptions::default()
            };
            let mut f =
                RtMdm::with_options(PlatformConfig::stm32f746_qspi(), options).expect("platform");
            f.add_task(TaskSpec::new("kws", zoo::ds_cnn(), 100_000, 100_000))
                .expect("add");
            f.admit().expect("admit")
        };
        assert!(mk(FaultPlan::NONE).schedulable());
        // A modest plan leaves plenty of slack: still schedulable, but
        // the budget is visible and positive.
        let modest = mk(FaultPlan::with_rate(7, 1_000));
        assert!(modest.schedulable(), "{}", modest.to_table());
        assert!(modest.retry_budget_of(0) > Cycles::ZERO);
        // A pathological plan (huge per-attempt jitter) exhausts the
        // slack: same task set, admission now refuses.
        let harsh = mk(FaultPlan {
            seed: 7,
            dma_fault_rate_ppm: 1_000,
            max_retries: 3,
            jitter_max_cycles: 2_000_000,
        });
        assert!(!harsh.schedulable(), "{}", harsh.to_table());
        assert!(harsh.to_table().contains("NO"));
    }

    #[test]
    fn resident_tasks_carry_no_retry_budget() {
        let options = FrameworkOptions {
            fault: FaultPlan::with_rate(3, 10_000),
            ..FrameworkOptions::default()
        };
        let mut f =
            RtMdm::with_options(PlatformConfig::stm32f746_qspi(), options).expect("platform");
        f.add_task(
            TaskSpec::new("ctl", zoo::micro_mlp(), 10_000, 10_000)
                .with_strategy(Strategy::AllInSram),
        )
        .expect("ctl");
        f.add_task(TaskSpec::new("kws", zoo::ds_cnn(), 100_000, 100_000))
            .expect("kws");
        let admission = f.admit().expect("admit");
        let ctl = admission.names.iter().position(|n| n == "ctl").unwrap();
        let kws = admission.names.iter().position(|n| n == "kws").unwrap();
        assert_eq!(admission.retry_budget_of(ctl), Cycles::ZERO);
        assert!(admission.retry_budget_of(kws) > Cycles::ZERO);
    }

    #[test]
    fn miss_policy_flows_from_options_and_spec_override() {
        let options = FrameworkOptions {
            miss_policy: MissPolicy::Abort,
            ..FrameworkOptions::default()
        };
        let mut f =
            RtMdm::with_options(PlatformConfig::stm32f746_qspi(), options).expect("platform");
        f.add_task(TaskSpec::new("kws", zoo::ds_cnn(), 100_000, 100_000))
            .expect("kws");
        f.add_task(
            TaskSpec::new("ic", zoo::resnet8(), 400_000, 400_000)
                .with_miss_policy(MissPolicy::SkipNextRelease),
        )
        .expect("ic");
        let (ts, _) = f.build_public().expect("build");
        let policy_of = |name: &str| {
            ts.tasks()
                .iter()
                .find(|t| t.name == name)
                .map(|t| t.miss_policy)
                .unwrap()
        };
        assert_eq!(policy_of("kws"), MissPolicy::Abort);
        assert_eq!(policy_of("ic"), MissPolicy::SkipNextRelease);
    }

    #[test]
    fn fault_options_thread_into_simulation() {
        let options = FrameworkOptions {
            fault: FaultPlan::with_rate(11, 500_000),
            ..FrameworkOptions::default()
        };
        let mut f =
            RtMdm::with_options(PlatformConfig::stm32f746_qspi(), options).expect("platform");
        f.add_task(TaskSpec::new("kws", zoo::ds_cnn(), 100_000, 100_000))
            .expect("add");
        let a = f.simulate(500_000).expect("simulate");
        let b = f.simulate(500_000).expect("simulate");
        assert!(a.result.metrics.injected_faults > 0, "faults must fire");
        assert_eq!(a.result.metrics, b.result.metrics, "seeded ⇒ reproducible");
        assert_eq!(
            a.result.metrics.fetch_retries,
            a.result.metrics.injected_faults
        );
    }

    #[test]
    fn admission_table_renders() {
        let mut f = fw();
        f.add_task(TaskSpec::new("kws", zoo::ds_cnn(), 100_000, 100_000))
            .expect("add");
        let admission = f.admit().expect("admit");
        let table = admission.to_table();
        assert!(table.contains("kws"));
        assert!(table.contains("wcrt-bound"));
        let run = f.simulate(500_000).expect("simulate");
        assert!(run.to_table().contains("max-response"));
    }
}
