//! End-to-end tests of the `rtmdm` CLI binary.

use std::process::Command;

fn rtmdm(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_rtmdm"))
        .args(args)
        .output()
        .expect("binary runs")
}

#[test]
fn admit_schedulable_mix_exits_zero() {
    let out = rtmdm(&[
        "admit",
        "--platform",
        "stm32f746-qspi",
        "--task",
        "kws=ds-cnn@100",
        "--task",
        "ic=resnet8@400",
    ]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "{stdout}");
    assert!(stdout.contains("SCHEDULABLE"));
    assert!(stdout.contains("kws"));
}

#[test]
fn admit_infeasible_mix_exits_two() {
    let out = rtmdm(&["admit", "--task", "ic=resnet8@10"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stdout).contains("NOT SCHEDULABLE"));
}

#[test]
fn simulate_reports_misses() {
    let out = rtmdm(&[
        "simulate",
        "--task",
        "kws=ds-cnn@100",
        "--seconds",
        "1",
        "--jitter",
        "25",
        "--seed",
        "7",
    ]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("misses: 0"));
}

#[test]
fn optimize_prefers_resident_for_tiny_models() {
    let out = rtmdm(&[
        "optimize",
        "--task",
        "control=micro-mlp@20",
        "--task",
        "kws=ds-cnn@100",
    ]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("all-in-sram"), "{stdout}");
    assert!(stdout.contains("headroom"));
}

#[test]
fn listing_subcommands_work() {
    let p = rtmdm(&["platforms"]);
    assert!(p.status.success());
    assert!(String::from_utf8_lossy(&p.stdout).contains("stm32f746-qspi"));
    let m = rtmdm(&["models"]);
    assert!(m.status.success());
    assert!(String::from_utf8_lossy(&m.stdout).contains("mobilenet-v1-025"));
}

#[test]
fn bad_usage_exits_one() {
    assert_eq!(rtmdm(&[]).status.code(), Some(1));
    assert_eq!(rtmdm(&["frobnicate"]).status.code(), Some(1));
    assert_eq!(
        rtmdm(&["admit", "--task", "not-a-task-spec"]).status.code(),
        Some(1)
    );
    // Unknown model name.
    assert_eq!(
        rtmdm(&["admit", "--task", "x=no-such-model@100"])
            .status
            .code(),
        Some(1)
    );
}

#[test]
fn trace_exports_chrome_json() {
    let dir = std::env::temp_dir().join("rtmdm-cli-trace-test");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("trace.json");
    let out = rtmdm(&[
        "trace",
        "--platform",
        "stm32f746-qspi",
        "--task",
        "kws=ds-cnn@100",
        "--seconds",
        "1",
        "--out",
        path.to_str().expect("utf-8 path"),
        "--format",
        "chrome",
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let json = std::fs::read_to_string(&path).expect("trace written");
    assert!(json.starts_with("{\"traceEvents\":["));
    assert!(json.contains("\"ph\":\"X\""));
    std::fs::remove_file(&path).ok();
}

#[test]
fn trace_jsonl_and_gantt_go_to_stdout() {
    let out = rtmdm(&[
        "trace",
        "--task",
        "kws=ds-cnn@100",
        "--seconds",
        "1",
        "--format",
        "jsonl",
        "--gantt",
    ]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    let first = stdout.lines().next().expect("nonempty");
    assert!(first.starts_with('{') && first.ends_with('}'), "{first}");
    assert!(stdout.contains("CPU |"), "{stdout}");
    assert!(stdout.contains("DMA |"), "{stdout}");
}

#[test]
fn unknown_trace_format_gets_specific_error() {
    let out = rtmdm(&["trace", "--task", "kws=ds-cnn@100", "--format", "yaml"]);
    assert_eq!(out.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("unknown --format `yaml` (expected `chrome` or `jsonl`)"),
        "{stderr}"
    );
    // Specific diagnostic, not the generic usage banner.
    assert!(!stderr.contains("usage:"), "{stderr}");
}

#[test]
fn strategy_suffix_is_honoured() {
    let out = rtmdm(&[
        "admit",
        "--task",
        "ic=resnet8@400:whole-dnn",
        "--task",
        "control=micro-mlp@25",
    ]);
    // Whole-DNN staging of resnet8 next to a 25 ms control task is
    // rejected on timing (blocking).
    assert_eq!(
        out.status.code(),
        Some(2),
        "{}",
        String::from_utf8_lossy(&out.stdout)
    );
}
