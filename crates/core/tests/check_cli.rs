//! End-to-end tests of `rtmdm check`: golden-pinned JSON reports and a
//! zoo × platform sweep.

use std::process::Command;

fn rtmdm(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_rtmdm"))
        .args(args)
        .output()
        .expect("binary runs")
}

/// The machine-readable report format is pinned byte-for-byte: tooling
/// downstream (CI scripts, dashboards) parses it, so accidental schema
/// drift must fail a test, not a consumer.
#[test]
fn check_clean_spec_matches_golden_json() {
    let out = rtmdm(&[
        "check",
        "--platform",
        "stm32f746-qspi",
        "--task",
        "kws=ds-cnn@100",
        "--json",
    ]);
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(
        stdout.trim(),
        include_str!("golden/check_clean.json").trim()
    );
}

#[test]
fn check_broken_spec_matches_golden_json_and_exits_two() {
    let out = rtmdm(&[
        "check",
        "--platform",
        "stm32f746-qspi",
        "--task",
        "bad=ds-cnn@100/200",
        "--json",
    ]);
    assert_eq!(out.status.code(), Some(2));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(
        stdout.trim(),
        include_str!("golden/check_broken.json").trim()
    );
}

#[test]
fn check_text_report_names_the_rule_and_locus() {
    let out = rtmdm(&["check", "--task", "bad=ds-cnn@100/200"]);
    assert_eq!(out.status.code(), Some(2));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("RTM020"), "{stdout}");
    assert!(stdout.contains("task bad"), "{stdout}");
    assert!(stdout.contains("1 error(s)"), "{stdout}");
}

#[test]
fn check_allow_suppresses_and_deny_warnings_escalates() {
    let allowed = rtmdm(&["check", "--task", "bad=ds-cnn@100/200", "--allow", "RTM020"]);
    assert_eq!(allowed.status.code(), Some(0));

    // resnet8 every 140 ms next to ds-cnn every 100 ms sits between the
    // 2-task RM bound (~82.8%) and full load: a warning normally, an
    // error under --deny-warnings.
    let args = [
        "check",
        "--task",
        "ic=resnet8@140",
        "--task",
        "kws=ds-cnn@100",
    ];
    let plain = rtmdm(&args);
    assert_eq!(plain.status.code(), Some(0));
    let plain_out = String::from_utf8_lossy(&plain.stdout);
    assert!(plain_out.contains("warn[RTM024]"), "{plain_out}");
    let strict_args: Vec<_> = args.iter().chain(&["--deny-warnings"]).copied().collect();
    let strict = rtmdm(&strict_args);
    assert_eq!(strict.status.code(), Some(2), "{plain_out}");
}

#[test]
fn check_unknown_rule_is_a_usage_error() {
    let out = rtmdm(&["check", "--task", "kws=ds-cnn@100", "--deny", "RTM999"]);
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("RTM999"));
}

/// Every zoo model on every platform preset: the verifier must always
/// produce parseable JSON and exit 0 (clean) or 2 (findings) — never
/// crash, never emit garbage. Relaxed 1 s periods keep feasibility
/// lints quiet where the configuration actually fits.
#[test]
fn check_sweeps_zoo_times_platforms() {
    let models = [
        "micro-mlp",
        "ds-cnn",
        "lenet5",
        "resnet8",
        "mobilenet-v1-025",
        "autoencoder",
    ];
    let platforms = [
        "cortex-m4-lowend",
        "stm32f746-qspi",
        "stm32h743-ospi",
        "ideal-sram",
    ];
    for platform in platforms {
        for model in models {
            let task = format!("t={model}@1000");
            let out = rtmdm(&["check", "--platform", platform, "--task", &task, "--json"]);
            let code = out.status.code();
            assert!(
                code == Some(0) || code == Some(2),
                "{platform}/{model}: exit {code:?}"
            );
            let stdout = String::from_utf8_lossy(&out.stdout);
            assert!(
                stdout
                    .trim_start()
                    .starts_with("{\"schema\":\"rtmdm-check/1\""),
                "{platform}/{model}: {stdout}"
            );
            // Big-SRAM platforms fit everything at a relaxed period.
            if platform == "stm32h743-ospi" || platform == "ideal-sram" {
                assert_eq!(code, Some(0), "{platform}/{model}: {stdout}");
            }
        }
    }
}
