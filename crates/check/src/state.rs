//! Exploration state: canonical visited-state bookkeeping, choice
//! domains, the path oracle that drives one scripted run, and the
//! replayable violation witness.
//!
//! Each explored path is one simulator run driven by a [`PathOracle`]
//! — a forced prefix of choices replayed positionally, then the
//! deterministic default answer for every further query, with every
//! query logged together with its untaken candidates. The oracle is
//! deliberately **pure**: a path's entire behavior is a function of its
//! forced prefix alone, which is what lets the explorer execute paths
//! speculatively in parallel (and resume them from mid-run snapshots)
//! without any result depending on execution order or thread count.
//!
//! The shared [`VisitedSet`] is consulted at *merge time* instead —
//! when the explorer consumes a finished path, it walks the logged
//! free-region queries in order ([`merge_path`]), keyed on the
//! canonical state fingerprint *and* the choice point: once a
//! `(state, point)` pair has been expanded on some path, every
//! alternative at that pair is already scheduled, so a later path
//! reaching it stops branching (it keeps running on defaults — a
//! violation in the tail is still real and still reported). Because
//! paths are consumed in one canonical order, this is step-for-step the
//! same bookkeeping a sequential in-run oracle would do.
//!
//! Keying on the pair rather than the state alone matters: consecutive
//! choice points within one instant (a release's jitter query followed
//! by its exec-scale query) can observe identical state fingerprints,
//! and merging those would silently drop the second dimension.

use std::collections::HashSet;

use serde::{Deserialize, Serialize};

use rtmdm_mcusim::{Cycles, PlatformConfig};
use rtmdm_sched::script::{
    Choice, ChoicePoint, ScriptOracle, ScriptedChoice, SimOracle, StateHash,
};
use rtmdm_sched::sim::{simulate_with_oracle, SimConfig, SimResult};
use rtmdm_sched::TaskSet;

/// Version tag of the witness JSON layout.
pub const WITNESS_SCHEMA: &str = "rtmdm-witness/1";

/// The candidate answers the explorer considers at each kind of choice
/// point. The continuous dimensions (execution scale, jitter) are
/// discretized to their interval endpoints; `DESIGN.md` §2.5 spells out
/// why the verdict is exhaustive over this lattice and what that does
/// and does not imply about the continuum.
#[derive(Debug, Clone)]
pub struct Domains {
    /// Lower execution-scale endpoint in ppm of WCET (from
    /// `SimConfig::exec_scale_min_ppm`); the other endpoint is WCET.
    pub exec_scale_min_ppm: u64,
    /// Upper release-jitter endpoint in cycles; the other endpoint is
    /// zero. Zero disables the dimension.
    pub jitter_max_cycles: u64,
    /// Whether transfer-fault queries branch (they only occur when the
    /// config's fault environment is active).
    pub explore_faults: bool,
}

impl Domains {
    /// The candidate answers at `point`, deterministic default first.
    pub fn candidates(&self, point: &ChoicePoint) -> Vec<Choice> {
        match point {
            ChoicePoint::ExecScale { min_ppm, .. } => {
                let min = (*min_ppm).max(self.exec_scale_min_ppm);
                if min >= 1_000_000 {
                    vec![Choice::ExecScale(1_000_000)]
                } else {
                    vec![Choice::ExecScale(1_000_000), Choice::ExecScale(min)]
                }
            }
            ChoicePoint::ReleaseJitter { .. } => {
                if self.jitter_max_cycles == 0 {
                    vec![Choice::ReleaseJitter(Cycles::ZERO)]
                } else {
                    vec![
                        Choice::ReleaseJitter(Cycles::ZERO),
                        Choice::ReleaseJitter(Cycles::new(self.jitter_max_cycles)),
                    ]
                }
            }
            ChoicePoint::TransferFault { .. } => {
                if self.explore_faults {
                    vec![Choice::TransferFault(false), Choice::TransferFault(true)]
                } else {
                    vec![Choice::TransferFault(false)]
                }
            }
        }
    }
}

/// One logged oracle query of an explored run.
#[derive(Debug, Clone)]
pub struct QueryRecord {
    /// The decision site.
    pub point: ChoicePoint,
    /// The answer given on this path.
    pub chosen: Choice,
    /// The canonical state fingerprint at the query, for merge-time
    /// visited bookkeeping.
    pub state: StateHash,
    /// Untaken candidate answers. Empty in the forced region (those
    /// branch points belong to the run that scheduled the prefix) and
    /// at single-candidate points; whether a non-empty set actually
    /// branches is decided at merge time against the visited set.
    pub branches: Vec<Choice>,
}

/// The shared dominance store: `(state, point)` pairs already expanded.
///
/// Exact-fingerprint equality is the dominance relation implemented —
/// a state dominates (subsumes) another exactly when their canonical
/// fingerprints at the same choice point are equal, which by the
/// fingerprint's contract implies identical reachable futures.
#[derive(Debug, Default)]
pub struct VisitedSet {
    seen: HashSet<(StateHash, ChoicePoint)>,
}

impl VisitedSet {
    /// An empty store.
    pub fn new() -> VisitedSet {
        VisitedSet::default()
    }

    /// Marks `(state, point)` expanded; `true` when it was novel.
    pub fn insert(&mut self, state: StateHash, point: ChoicePoint) -> bool {
        self.seen.insert((state, point))
    }

    /// Number of distinct expanded pairs — the explorer's state count.
    pub fn len(&self) -> usize {
        self.seen.len()
    }

    /// Whether nothing has been expanded yet.
    pub fn is_empty(&self) -> bool {
        self.seen.is_empty()
    }
}

/// The oracle that drives one explored path: replays the forced prefix
/// positionally, then answers deterministic defaults, logging every
/// query with its untaken candidates and the state fingerprint it
/// observed.
///
/// The oracle holds no shared state — a path's log (and therefore its
/// run) is a pure function of its prefix. Visited bookkeeping happens
/// when the explorer consumes the log (see [`merge_path`]), which is
/// what makes speculative parallel path execution exact.
pub struct PathOracle<'a> {
    prefix: Vec<Choice>,
    domains: &'a Domains,
    /// Every query of the run, in order.
    pub log: Vec<QueryRecord>,
}

impl<'a> PathOracle<'a> {
    /// An oracle forcing `prefix`, then defaults.
    pub fn new(prefix: Vec<Choice>, domains: &'a Domains) -> Self {
        PathOracle {
            prefix,
            domains,
            log: Vec::new(),
        }
    }
}

impl SimOracle for PathOracle<'_> {
    fn choose(&mut self, point: ChoicePoint, state: StateHash) -> Choice {
        let index = self.log.len();
        let (chosen, branches) = if index < self.prefix.len() {
            // Forced region: replay; its branch points were expanded by
            // the run that scheduled this prefix.
            (self.prefix[index], Vec::new())
        } else {
            let mut cands = self.domains.candidates(&point);
            let chosen = cands.remove(0);
            (chosen, cands)
        };
        self.log.push(QueryRecord {
            point,
            chosen,
            state,
            branches,
        });
        chosen
    }
}

/// Merge-time visited bookkeeping over one consumed path: walks the
/// logged queries in order, expands each novel multi-candidate
/// `(state, point)` pair into `visited`, and stops at the first
/// already-expanded pair — the path *merges*; its remaining subtrees
/// were covered from the pair's first visit. Returns the log indices
/// whose branches the explorer must schedule.
///
/// Paths are consumed in one canonical order regardless of how many
/// threads executed them, so this reproduces exactly the insertions an
/// in-run sequential oracle would have made.
pub fn merge_path(log: &[QueryRecord], visited: &mut VisitedSet) -> Vec<usize> {
    let mut expansions = Vec::new();
    for (i, rec) in log.iter().enumerate() {
        if rec.branches.is_empty() {
            continue;
        }
        if visited.insert(rec.state, rec.point) {
            expansions.push(i);
        } else {
            break;
        }
    }
    expansions
}

/// Counters of one exploration.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExploreStats {
    /// Complete simulator runs executed (paths).
    pub runs: usize,
    /// Distinct canonical `(state, choice-point)` pairs expanded.
    pub states: usize,
    /// Oracle queries answered across all runs.
    pub transitions: u64,
    /// Whether the schedule space was covered to the horizon. `false`
    /// means the budget cut exploration short — RTM053, never silently
    /// safe.
    pub complete: bool,
}

/// A replayable counterexample: everything needed to reproduce a
/// violating run, self-contained.
///
/// Replaying `script` through [`Witness::replay`] on either engine
/// reproduces the violating event at the predicted instant, byte for
/// byte — the differential cross-validation suite pins this.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Witness {
    /// Layout tag, always [`WITNESS_SCHEMA`].
    pub schema: String,
    /// The violated rule's stable ID (`"RTM050"`, `"RTM051"`, `"RTM052"`).
    pub rule: String,
    /// Task index (in the explored set's priority order) of the victim.
    pub task: usize,
    /// Job id of the victim.
    pub job: u64,
    /// Predicted violation instant in cycles.
    pub at: u64,
    /// Dominant interference source of the victim job per the blame
    /// decomposition of the violating run, when attributable (the
    /// victim must complete within the horizon to be decomposable).
    pub dominant_blame: Option<String>,
    /// The explored task set, in the explored priority order.
    pub task_set: TaskSet,
    /// The platform the violation was found on.
    pub platform: PlatformConfig,
    /// The exact simulator configuration of the violating run.
    pub config: SimConfig,
    /// The full choice script of the violating run, in query order.
    pub script: Vec<ScriptedChoice>,
}

impl Witness {
    /// Re-executes the witnessed run and returns its result. The
    /// engine is taken from `self.config`; callers cross-validating
    /// engines override it on a clone of the config.
    pub fn replay(&self) -> SimResult {
        self.replay_on(&self.config)
    }

    /// Re-executes the witnessed run under an alternative simulator
    /// configuration (typically the same config with the other engine).
    pub fn replay_on(&self, config: &SimConfig) -> SimResult {
        let mut oracle = ScriptOracle::new(self.script.clone());
        simulate_with_oracle(&self.task_set, &self.platform, config, &mut oracle)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn jitter_domains(max: u64) -> Domains {
        Domains {
            exec_scale_min_ppm: 1_000_000,
            jitter_max_cycles: max,
            explore_faults: false,
        }
    }

    #[test]
    fn single_candidate_points_do_not_branch() {
        let d = jitter_domains(0);
        let p = ChoicePoint::ReleaseJitter { task: 0, job: 0 };
        assert_eq!(d.candidates(&p).len(), 1);
        let mut oracle = PathOracle::new(Vec::new(), &d);
        let c = oracle.choose(p, StateHash(1));
        assert_eq!(c, Choice::ReleaseJitter(Cycles::ZERO));
        assert!(oracle.log[0].branches.is_empty());
        let mut visited = VisitedSet::new();
        assert!(merge_path(&oracle.log, &mut visited).is_empty());
        assert!(visited.is_empty(), "non-branching points cost no budget");
    }

    #[test]
    fn novel_branch_points_expand_once() {
        let d = jitter_domains(50);
        let p = ChoicePoint::ReleaseJitter { task: 0, job: 0 };
        let mut visited = VisitedSet::new();
        {
            let mut oracle = PathOracle::new(Vec::new(), &d);
            assert_eq!(
                oracle.choose(p, StateHash(1)),
                Choice::ReleaseJitter(Cycles::ZERO)
            );
            assert_eq!(
                oracle.log[0].branches,
                vec![Choice::ReleaseJitter(Cycles::new(50))]
            );
            assert_eq!(merge_path(&oracle.log, &mut visited), vec![0]);
        }
        // A second path reaching the same (state, point) merges: its
        // branches are not scheduled, and the rest of that path stops
        // expanding — even a novel later pair.
        {
            let mut oracle = PathOracle::new(Vec::new(), &d);
            oracle.choose(p, StateHash(1));
            let later = ChoicePoint::ReleaseJitter { task: 0, job: 1 };
            oracle.choose(later, StateHash(2));
            assert!(merge_path(&oracle.log, &mut visited).is_empty());
        }
        assert_eq!(visited.len(), 1);
    }

    #[test]
    fn same_state_different_points_are_distinct() {
        // The regression the pair key exists for: a jitter query and an
        // exec query can see the same fingerprint within one instant.
        let d = Domains {
            exec_scale_min_ppm: 500_000,
            jitter_max_cycles: 50,
            explore_faults: false,
        };
        let mut oracle = PathOracle::new(Vec::new(), &d);
        let jitter = ChoicePoint::ReleaseJitter { task: 0, job: 0 };
        let exec = ChoicePoint::ExecScale {
            task: 0,
            job: 0,
            min_ppm: 500_000,
        };
        oracle.choose(jitter, StateHash(7));
        oracle.choose(exec, StateHash(7));
        let mut visited = VisitedSet::new();
        assert_eq!(
            merge_path(&oracle.log, &mut visited),
            vec![0, 1],
            "not merged away"
        );
        assert_eq!(visited.len(), 2);
    }

    #[test]
    fn prefix_region_is_forced_verbatim() {
        let d = jitter_domains(50);
        let forced = vec![Choice::ReleaseJitter(Cycles::new(50))];
        let mut oracle = PathOracle::new(forced, &d);
        let p = ChoicePoint::ReleaseJitter { task: 0, job: 0 };
        assert_eq!(
            oracle.choose(p, StateHash(3)),
            Choice::ReleaseJitter(Cycles::new(50))
        );
        assert!(oracle.log[0].branches.is_empty());
        let mut visited = VisitedSet::new();
        assert!(merge_path(&oracle.log, &mut visited).is_empty());
        assert!(visited.is_empty(), "forced region does no bookkeeping");
    }

    /// The purity contract the parallel frontier rests on: two oracles
    /// with the same prefix over the same query sequence produce
    /// identical logs — no shared state, no order dependence.
    #[test]
    fn path_logs_are_a_pure_function_of_the_prefix() {
        let d = jitter_domains(50);
        let drive = || {
            let mut oracle = PathOracle::new(vec![Choice::ReleaseJitter(Cycles::new(50))], &d);
            for job in 0..4 {
                oracle.choose(
                    ChoicePoint::ReleaseJitter { task: 0, job },
                    StateHash(job as u128),
                );
            }
            oracle.log
        };
        let a = drive();
        let b = drive();
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!((x.point, x.chosen, x.state), (y.point, y.chosen, y.state));
            assert_eq!(x.branches, y.branches);
        }
    }
}
