//! Exploration state: canonical visited-state bookkeeping, choice
//! domains, the path oracle that drives one scripted run, and the
//! replayable violation witness.
//!
//! The explorer (see [`mod@crate::explore`]) is *stateless* in the CHESS
//! tradition: it never snapshots or restores simulator state. Each
//! explored path is one complete simulator run driven by a
//! [`PathOracle`] — a forced prefix of choices replayed positionally,
//! then the deterministic default answer for every further query. While
//! answering, the oracle logs every query together with the untaken
//! alternatives, and consults a shared visited set keyed on the
//! canonical state fingerprint *and* the choice point: once a
//! `(state, point)` pair has been expanded on some path, every
//! alternative at that pair is already scheduled, so a later path
//! reaching it stops branching (it keeps running on defaults — a
//! violation in the tail is still real and still reported).
//!
//! Keying on the pair rather than the state alone matters: consecutive
//! choice points within one instant (a release's jitter query followed
//! by its exec-scale query) can observe identical state fingerprints,
//! and merging those would silently drop the second dimension.

use std::collections::HashSet;

use serde::{Deserialize, Serialize};

use rtmdm_mcusim::{Cycles, PlatformConfig};
use rtmdm_sched::script::{
    Choice, ChoicePoint, ScriptOracle, ScriptedChoice, SimOracle, StateHash,
};
use rtmdm_sched::sim::{simulate_with_oracle, SimConfig, SimResult};
use rtmdm_sched::TaskSet;

/// Version tag of the witness JSON layout.
pub const WITNESS_SCHEMA: &str = "rtmdm-witness/1";

/// The candidate answers the explorer considers at each kind of choice
/// point. The continuous dimensions (execution scale, jitter) are
/// discretized to their interval endpoints; `DESIGN.md` §2.5 spells out
/// why the verdict is exhaustive over this lattice and what that does
/// and does not imply about the continuum.
#[derive(Debug, Clone)]
pub struct Domains {
    /// Lower execution-scale endpoint in ppm of WCET (from
    /// `SimConfig::exec_scale_min_ppm`); the other endpoint is WCET.
    pub exec_scale_min_ppm: u64,
    /// Upper release-jitter endpoint in cycles; the other endpoint is
    /// zero. Zero disables the dimension.
    pub jitter_max_cycles: u64,
    /// Whether transfer-fault queries branch (they only occur when the
    /// config's fault environment is active).
    pub explore_faults: bool,
}

impl Domains {
    /// The candidate answers at `point`, deterministic default first.
    pub fn candidates(&self, point: &ChoicePoint) -> Vec<Choice> {
        match point {
            ChoicePoint::ExecScale { min_ppm, .. } => {
                let min = (*min_ppm).max(self.exec_scale_min_ppm);
                if min >= 1_000_000 {
                    vec![Choice::ExecScale(1_000_000)]
                } else {
                    vec![Choice::ExecScale(1_000_000), Choice::ExecScale(min)]
                }
            }
            ChoicePoint::ReleaseJitter { .. } => {
                if self.jitter_max_cycles == 0 {
                    vec![Choice::ReleaseJitter(Cycles::ZERO)]
                } else {
                    vec![
                        Choice::ReleaseJitter(Cycles::ZERO),
                        Choice::ReleaseJitter(Cycles::new(self.jitter_max_cycles)),
                    ]
                }
            }
            ChoicePoint::TransferFault { .. } => {
                if self.explore_faults {
                    vec![Choice::TransferFault(false), Choice::TransferFault(true)]
                } else {
                    vec![Choice::TransferFault(false)]
                }
            }
        }
    }
}

/// One logged oracle query of an explored run.
#[derive(Debug, Clone)]
pub struct ChoiceRecord {
    /// The decision site.
    pub point: ChoicePoint,
    /// The answer given on this path.
    pub chosen: Choice,
    /// Untaken candidates, recorded only at novel branch points (a
    /// revisited or single-candidate point records none).
    pub alternatives: Vec<Choice>,
}

/// The shared dominance store: `(state, point)` pairs already expanded.
///
/// Exact-fingerprint equality is the dominance relation implemented —
/// a state dominates (subsumes) another exactly when their canonical
/// fingerprints at the same choice point are equal, which by the
/// fingerprint's contract implies identical reachable futures.
#[derive(Debug, Default)]
pub struct VisitedSet {
    seen: HashSet<(StateHash, ChoicePoint)>,
}

impl VisitedSet {
    /// An empty store.
    pub fn new() -> VisitedSet {
        VisitedSet::default()
    }

    /// Marks `(state, point)` expanded; `true` when it was novel.
    pub fn insert(&mut self, state: StateHash, point: ChoicePoint) -> bool {
        self.seen.insert((state, point))
    }

    /// Number of distinct expanded pairs — the explorer's state count.
    pub fn len(&self) -> usize {
        self.seen.len()
    }

    /// Whether nothing has been expanded yet.
    pub fn is_empty(&self) -> bool {
        self.seen.is_empty()
    }
}

/// The oracle that drives one explored path: replays the forced prefix
/// positionally, then answers deterministic defaults, logging every
/// query and expanding novel branch points into the visited set.
pub struct PathOracle<'a> {
    prefix: Vec<Choice>,
    domains: &'a Domains,
    visited: &'a mut VisitedSet,
    /// Every query of the run, in order, with untaken alternatives.
    pub log: Vec<ChoiceRecord>,
    /// Set when a free query hit an already-expanded `(state, point)`:
    /// the rest of the run stops branching (its subtrees are covered
    /// from the first visit).
    pub merged: bool,
}

impl<'a> PathOracle<'a> {
    /// An oracle forcing `prefix`, then defaults, against the shared
    /// `visited` store.
    pub fn new(prefix: Vec<Choice>, domains: &'a Domains, visited: &'a mut VisitedSet) -> Self {
        PathOracle {
            prefix,
            domains,
            visited,
            log: Vec::new(),
            merged: false,
        }
    }
}

impl SimOracle for PathOracle<'_> {
    fn choose(&mut self, point: ChoicePoint, state: StateHash) -> Choice {
        let index = self.log.len();
        let (chosen, alternatives) = if index < self.prefix.len() {
            // Forced region: replay; its branch points were expanded by
            // the run that scheduled this prefix.
            (self.prefix[index], Vec::new())
        } else {
            let mut cands = self.domains.candidates(&point);
            let chosen = cands[0];
            let alternatives =
                if cands.len() > 1 && !self.merged && self.visited.insert(state, point) {
                    cands.remove(0);
                    cands
                } else {
                    if cands.len() > 1 && !self.merged {
                        self.merged = true;
                    }
                    Vec::new()
                };
            (chosen, alternatives)
        };
        self.log.push(ChoiceRecord {
            point,
            chosen,
            alternatives,
        });
        chosen
    }
}

/// Counters of one exploration.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExploreStats {
    /// Complete simulator runs executed (paths).
    pub runs: usize,
    /// Distinct canonical `(state, choice-point)` pairs expanded.
    pub states: usize,
    /// Oracle queries answered across all runs.
    pub transitions: u64,
    /// Whether the schedule space was covered to the horizon. `false`
    /// means the budget cut exploration short — RTM053, never silently
    /// safe.
    pub complete: bool,
}

/// A replayable counterexample: everything needed to reproduce a
/// violating run, self-contained.
///
/// Replaying `script` through [`Witness::replay`] on either engine
/// reproduces the violating event at the predicted instant, byte for
/// byte — the differential cross-validation suite pins this.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Witness {
    /// Layout tag, always [`WITNESS_SCHEMA`].
    pub schema: String,
    /// The violated rule's stable ID (`"RTM050"`, `"RTM051"`, `"RTM052"`).
    pub rule: String,
    /// Task index (in the explored set's priority order) of the victim.
    pub task: usize,
    /// Job id of the victim.
    pub job: u64,
    /// Predicted violation instant in cycles.
    pub at: u64,
    /// Dominant interference source of the victim job per the blame
    /// decomposition of the violating run, when attributable (the
    /// victim must complete within the horizon to be decomposable).
    pub dominant_blame: Option<String>,
    /// The explored task set, in the explored priority order.
    pub task_set: TaskSet,
    /// The platform the violation was found on.
    pub platform: PlatformConfig,
    /// The exact simulator configuration of the violating run.
    pub config: SimConfig,
    /// The full choice script of the violating run, in query order.
    pub script: Vec<ScriptedChoice>,
}

impl Witness {
    /// Re-executes the witnessed run and returns its result. The
    /// engine is taken from `self.config`; callers cross-validating
    /// engines override it on a clone of the config.
    pub fn replay(&self) -> SimResult {
        self.replay_on(&self.config)
    }

    /// Re-executes the witnessed run under an alternative simulator
    /// configuration (typically the same config with the other engine).
    pub fn replay_on(&self, config: &SimConfig) -> SimResult {
        let mut oracle = ScriptOracle::new(self.script.clone());
        simulate_with_oracle(&self.task_set, &self.platform, config, &mut oracle)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn jitter_domains(max: u64) -> Domains {
        Domains {
            exec_scale_min_ppm: 1_000_000,
            jitter_max_cycles: max,
            explore_faults: false,
        }
    }

    #[test]
    fn single_candidate_points_do_not_branch() {
        let d = jitter_domains(0);
        let p = ChoicePoint::ReleaseJitter { task: 0, job: 0 };
        assert_eq!(d.candidates(&p).len(), 1);
        let mut visited = VisitedSet::new();
        let mut oracle = PathOracle::new(Vec::new(), &d, &mut visited);
        let c = oracle.choose(p, StateHash(1));
        assert_eq!(c, Choice::ReleaseJitter(Cycles::ZERO));
        assert!(oracle.log[0].alternatives.is_empty());
        assert!(visited.is_empty(), "non-branching points cost no budget");
    }

    #[test]
    fn novel_branch_points_expand_once() {
        let d = jitter_domains(50);
        let p = ChoicePoint::ReleaseJitter { task: 0, job: 0 };
        let mut visited = VisitedSet::new();
        {
            let mut oracle = PathOracle::new(Vec::new(), &d, &mut visited);
            assert_eq!(
                oracle.choose(p, StateHash(1)),
                Choice::ReleaseJitter(Cycles::ZERO)
            );
            assert_eq!(
                oracle.log[0].alternatives,
                vec![Choice::ReleaseJitter(Cycles::new(50))]
            );
        }
        // A second path reaching the same (state, point) merges: no
        // alternatives, and the rest of that path stops expanding.
        {
            let mut oracle = PathOracle::new(Vec::new(), &d, &mut visited);
            oracle.choose(p, StateHash(1));
            assert!(oracle.log[0].alternatives.is_empty());
            assert!(oracle.merged);
            let later = ChoicePoint::ReleaseJitter { task: 0, job: 1 };
            oracle.choose(later, StateHash(2));
            assert!(oracle.log[1].alternatives.is_empty());
        }
        assert_eq!(visited.len(), 1);
    }

    #[test]
    fn same_state_different_points_are_distinct() {
        // The regression the pair key exists for: a jitter query and an
        // exec query can see the same fingerprint within one instant.
        let d = Domains {
            exec_scale_min_ppm: 500_000,
            jitter_max_cycles: 50,
            explore_faults: false,
        };
        let mut visited = VisitedSet::new();
        let mut oracle = PathOracle::new(Vec::new(), &d, &mut visited);
        let jitter = ChoicePoint::ReleaseJitter { task: 0, job: 0 };
        let exec = ChoicePoint::ExecScale {
            task: 0,
            job: 0,
            min_ppm: 500_000,
        };
        oracle.choose(jitter, StateHash(7));
        oracle.choose(exec, StateHash(7));
        assert_eq!(oracle.log[0].alternatives.len(), 1);
        assert_eq!(oracle.log[1].alternatives.len(), 1, "not merged away");
        assert_eq!(visited.len(), 2);
    }

    #[test]
    fn prefix_region_is_forced_verbatim() {
        let d = jitter_domains(50);
        let mut visited = VisitedSet::new();
        let forced = vec![Choice::ReleaseJitter(Cycles::new(50))];
        let mut oracle = PathOracle::new(forced, &d, &mut visited);
        let p = ChoicePoint::ReleaseJitter { task: 0, job: 0 };
        assert_eq!(
            oracle.choose(p, StateHash(3)),
            Choice::ReleaseJitter(Cycles::new(50))
        );
        assert!(oracle.log[0].alternatives.is_empty());
        assert!(visited.is_empty(), "forced region does no bookkeeping");
    }
}
