//! Admission lints (`RTM020`–`RTM026`, `RTM041`).
//!
//! Spec-level timing sanity ([`check_timing`]) plus set-level
//! schedulability lints over a built, priority-ordered [`TaskSet`]
//! ([`check_taskset`]). The set-level lints re-derive the same numbers
//! the admission analysis uses — occupancy utilization, the
//! rate-monotonic bound, the hyperperiod, the response-time fixed
//! point — and report *why* a set is hopeless before (or independent
//! of) a full admission run. They are feasibility verdicts, not
//! structural errors, so none of them block admission (see
//! [`Rule::blocks_admission`]).

use rtmdm_mcusim::PlatformConfig;
use rtmdm_sched::analysis::{
    hyperperiod, occupancy_utilization_ppm, rm_utilization_bound_ppm, rta_limited_preemption_with,
    rta_memory_oblivious, SchedulerMode, TaskTiming,
};
use rtmdm_sched::TaskSet;

use crate::diag::{ppm_pct, Finding, Rule};

/// How the verified system schedules, mirrored from the framework's
/// options so the lints model the same analysis admission runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AdmissionContext {
    /// EDF policy (RM-bound and response-time lints are FP-only).
    pub edf: bool,
    /// Work-conserving dispatch (changes the RTA mode).
    pub work_conserving: bool,
    /// DMA-aware analysis; when `false` the memory-oblivious RTA is
    /// linted instead, matching what admission will actually run.
    pub dma_aware: bool,
}

/// Spec-level timing lints of one task: zero parameters (`RTM021`) and
/// deadline beyond period (`RTM020`). Times are in microseconds.
pub fn check_timing(task: &str, period_us: u64, deadline_us: u64) -> Vec<Finding> {
    let mut out = Vec::new();
    if period_us == 0 || deadline_us == 0 {
        out.push(
            Finding::new(
                Rule::Rtm021,
                format!("period {period_us} us / deadline {deadline_us} us must be nonzero"),
            )
            .with_task(task),
        );
    } else if deadline_us > period_us {
        out.push(
            Finding::new(
                Rule::Rtm020,
                format!("deadline {deadline_us} us exceeds period {period_us} us"),
            )
            .with_task(task),
        );
    }
    out
}

/// Set-level lints over a priority-ordered task set.
pub fn check_taskset(
    ts: &TaskSet,
    platform: &PlatformConfig,
    ctx: &AdmissionContext,
) -> Vec<Finding> {
    let mut out = Vec::new();
    if ts.is_empty() {
        return out;
    }

    for task in ts.tasks() {
        if task.total_compute().is_zero() {
            out.push(
                Finding::new(Rule::Rtm022, "task has zero worst-case execution time")
                    .with_task(task.name.clone()),
            );
        }
        let timing = TaskTiming::derive(task, platform);
        if timing.total_fetch > task.deadline {
            out.push(
                Finding::new(
                    Rule::Rtm041,
                    format!(
                        "staging {} cycles of weights alone exceeds the {} cycle deadline \
                         on this bus",
                        timing.total_fetch, task.deadline
                    ),
                )
                .with_task(task.name.clone()),
            );
        }
    }

    let occupancy = occupancy_utilization_ppm(ts, platform);
    if occupancy > 1_000_000 {
        out.push(Finding::new(
            Rule::Rtm023,
            format!(
                "occupancy utilization {} exceeds 100% of the platform",
                ppm_pct(occupancy)
            ),
        ));
    } else if !ctx.edf && ts.len() >= 2 {
        let bound = rm_utilization_bound_ppm(ts.len());
        if occupancy > bound {
            out.push(Finding::new(
                Rule::Rtm024,
                format!(
                    "occupancy utilization {} exceeds the {}-task rate-monotonic bound {}",
                    ppm_pct(occupancy),
                    ts.len(),
                    ppm_pct(bound)
                ),
            ));
        }
    }

    if hyperperiod(ts).is_none() {
        out.push(Finding::new(
            Rule::Rtm025,
            "hyperperiod overflows the exact-analysis cap; period-based arguments \
             (synchronous simulation, demand bounds) are unavailable"
                .to_owned(),
        ));
    }

    if !ctx.edf {
        let mode = if ctx.work_conserving {
            SchedulerMode::WorkConserving
        } else {
            SchedulerMode::Gated
        };
        let outcome = if ctx.dma_aware {
            rta_limited_preemption_with(ts, platform, mode)
        } else {
            rta_memory_oblivious(ts, platform)
        };
        for (i, response) in outcome.response.iter().enumerate() {
            if response.is_none() {
                out.push(
                    Finding::new(
                        Rule::Rtm026,
                        "response-time iteration diverges past the cap (definitely \
                         unschedulable at this priority)",
                    )
                    .with_task(ts.tasks()[i].name.clone()),
                );
            }
        }
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtmdm_mcusim::Cycles;
    use rtmdm_sched::{Segment, SporadicTask, StagingMode};

    fn platform() -> PlatformConfig {
        PlatformConfig::stm32f746_qspi()
    }

    fn task(name: &str, period: u64, compute: u64, fetch: u64) -> SporadicTask {
        SporadicTask::new(
            name,
            Cycles::new(period),
            Cycles::new(period),
            vec![Segment::new(Cycles::new(compute), fetch)],
            StagingMode::Overlapped,
        )
        .expect("valid task")
    }

    #[test]
    fn rtm020_fires_once_on_deadline_beyond_period() {
        let hits = check_timing("kws", 100_000, 200_000);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].rule, Rule::Rtm020);
        assert!(check_timing("kws", 100_000, 100_000).is_empty());
    }

    #[test]
    fn rtm021_fires_once_on_zero_timing() {
        let hits = check_timing("kws", 0, 100);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].rule, Rule::Rtm021);
    }

    #[test]
    fn rtm022_fires_once_on_zero_wcet() {
        let ts = TaskSet::from_tasks(vec![task("idle", 1_000_000, 0, 0)]);
        let hits: Vec<_> = check_taskset(&ts, &platform(), &AdmissionContext::default())
            .into_iter()
            .filter(|f| f.rule == Rule::Rtm022)
            .collect();
        assert_eq!(hits.len(), 1, "{hits:?}");
    }

    #[test]
    fn rtm023_fires_once_on_overload() {
        let ts = TaskSet::from_tasks(vec![task("hog", 100_000, 200_000, 0)]);
        let ctx = AdmissionContext {
            dma_aware: true,
            ..AdmissionContext::default()
        };
        let findings = check_taskset(&ts, &platform(), &ctx);
        let hits: Vec<_> = findings.iter().filter(|f| f.rule == Rule::Rtm023).collect();
        assert_eq!(hits.len(), 1, "{findings:?}");
    }

    #[test]
    fn rtm024_fires_once_between_rm_bound_and_full_load() {
        // Two tasks whose occupancy (compute plus contention inflation
        // and switch costs) lands between the 2-task rate-monotonic
        // bound (~82.8%) and 100%.
        let ts = TaskSet::from_tasks(vec![
            task("a", 100_000, 38_000, 0),
            task("b", 100_000, 38_000, 0),
        ]);
        let ctx = AdmissionContext {
            dma_aware: true,
            ..AdmissionContext::default()
        };
        let findings = check_taskset(&ts, &platform(), &ctx);
        let hits: Vec<_> = findings.iter().filter(|f| f.rule == Rule::Rtm024).collect();
        assert_eq!(hits.len(), 1, "{findings:?}");
        // Under EDF the RM bound does not apply.
        let edf = AdmissionContext {
            edf: true,
            dma_aware: true,
            ..AdmissionContext::default()
        };
        assert!(check_taskset(&ts, &platform(), &edf)
            .iter()
            .all(|f| f.rule != Rule::Rtm024));
    }

    #[test]
    fn rtm025_fires_once_on_an_overflowing_hyperperiod() {
        // Two coprime ~2^21 periods: the lcm exceeds the 2^40 cap.
        let ts = TaskSet::from_tasks(vec![
            task("a", (1 << 21) + 1, 10, 0),
            task("b", (1 << 21) - 1, 10, 0),
        ]);
        let hits: Vec<_> = check_taskset(&ts, &platform(), &AdmissionContext::default())
            .into_iter()
            .filter(|f| f.rule == Rule::Rtm025)
            .collect();
        assert_eq!(hits.len(), 1, "{hits:?}");
    }

    #[test]
    fn rtm026_fires_once_per_diverging_task() {
        // A higher-priority task with utilization above 1 makes the
        // victim's interference grow without bound: its fixed point
        // blows past the divergence cap.
        let ts = TaskSet::from_tasks(vec![
            task("hog", 100_000, 200_000, 0),
            task("victim", 1_000_000, 10_000, 0),
        ]);
        let ctx = AdmissionContext {
            dma_aware: true,
            ..AdmissionContext::default()
        };
        let hits: Vec<_> = check_taskset(&ts, &platform(), &ctx)
            .into_iter()
            .filter(|f| f.rule == Rule::Rtm026)
            .collect();
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert_eq!(hits[0].task.as_deref(), Some("victim"));
    }

    #[test]
    fn rtm041_fires_once_on_a_fetch_bound_task() {
        // 1 MiB of weights against a 10k-cycle deadline: staging alone
        // cannot finish in time on any realistic bus.
        let ts = TaskSet::from_tasks(vec![task("fetchy", 10_000, 1_000, 1 << 20)]);
        let ctx = AdmissionContext {
            dma_aware: true,
            ..AdmissionContext::default()
        };
        let hits: Vec<_> = check_taskset(&ts, &platform(), &ctx)
            .into_iter()
            .filter(|f| f.rule == Rule::Rtm041)
            .collect();
        assert_eq!(hits.len(), 1, "{hits:?}");
    }

    #[test]
    fn comfortable_sets_lint_clean() {
        let ts = TaskSet::from_tasks(vec![
            task("a", 10_000_000, 100_000, 1024),
            task("b", 20_000_000, 200_000, 2048),
        ]);
        let ctx = AdmissionContext {
            dma_aware: true,
            ..AdmissionContext::default()
        };
        let findings = check_taskset(&ts, &platform(), &ctx);
        assert!(findings.is_empty(), "{findings:?}");
    }
}
