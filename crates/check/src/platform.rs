//! Platform sanity (`RTM040`).
//!
//! A thin adapter over [`PlatformConfig::validate`]: configuration
//! invariant violations (undersized SRAM, zero external-memory
//! bandwidth, out-of-range contention inflation, missing DMA channel)
//! become a single `RTM040` diagnostic so they render and filter like
//! every other rule instead of aborting the pipeline with a bare
//! `Result`.

use rtmdm_mcusim::PlatformConfig;

use crate::diag::{Finding, Rule};

/// The platform pass: maps configuration invariant violations to
/// `RTM040`.
pub fn check_platform(platform: &PlatformConfig) -> Vec<Finding> {
    match platform.validate() {
        Ok(()) => Vec::new(),
        Err(err) => vec![Finding::new(Rule::Rtm040, err.to_string())],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_sane() {
        for preset in PlatformConfig::presets() {
            assert!(check_platform(&preset).is_empty(), "{}", preset.name);
        }
    }

    #[test]
    fn rtm040_fires_once_on_an_undersized_sram() {
        let platform = PlatformConfig::stm32f746_qspi().with_sram_bytes(1024);
        let hits = check_platform(&platform);
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert_eq!(hits[0].rule, Rule::Rtm040);
        assert!(hits[0].message.contains("sram"));
    }
}
