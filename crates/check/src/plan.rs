//! Plan well-formedness (`RTM010`–`RTM013`).
//!
//! A [`ModelSegmentation`] is well-formed when its segments are densely
//! indexed in execution order (`RTM010`), their layer ranges tile the
//! model contiguously — with tiled continuation slices allowed to
//! repeat their base segment's range at zero fetch — (`RTM011`), the
//! plan is realizable against its staging buffer (`RTM012`), and its
//! compute/fetch totals agree with the [`CostModel`] that priced it
//! (`RTM013`).

use std::collections::BTreeMap;

use rtmdm_dnn::{CostModel, Model};
use rtmdm_xmem::ModelSegmentation;

use crate::diag::{Finding, Rule};

/// The plan pass: structural and cost-consistency checks of one
/// segmentation plan against its model and cost model.
pub fn check_plan(plan: &ModelSegmentation, model: &Model, cost_model: &CostModel) -> Vec<Finding> {
    let mut out = Vec::new();
    let anchored = |f: Finding| f.with_model(plan.model.clone());

    if plan.segments.is_empty() {
        out.push(anchored(Finding::new(
            Rule::Rtm010,
            "plan has no segments".to_owned(),
        )));
        return out;
    }

    for (i, s) in plan.segments.iter().enumerate() {
        if s.index != i {
            out.push(anchored(
                Finding::new(
                    Rule::Rtm010,
                    format!("segment at position {i} carries index {}", s.index),
                )
                .with_segment(i),
            ));
        }
    }

    // Layer coverage: in-bounds, ordered ranges that tile the model.
    let mut ranges_ok = true;
    for (i, s) in plan.segments.iter().enumerate() {
        if s.first_layer > s.last_layer || s.last_layer >= model.len() {
            out.push(anchored(
                Finding::new(
                    Rule::Rtm011,
                    format!(
                        "segment covers layers {}..={} but the model has {} layers",
                        s.first_layer,
                        s.last_layer,
                        model.len()
                    ),
                )
                .with_segment(i),
            ));
            ranges_ok = false;
        }
    }
    if ranges_ok {
        let first = &plan.segments[0];
        if first.first_layer != 0 {
            out.push(anchored(
                Finding::new(
                    Rule::Rtm011,
                    format!("coverage starts at layer {}, not 0", first.first_layer),
                )
                .with_segment(0),
            ));
        }
        for i in 1..plan.segments.len() {
            let (prev, s) = (&plan.segments[i - 1], &plan.segments[i]);
            let continuation = s.first_layer == prev.first_layer && s.last_layer == prev.last_layer;
            if continuation {
                if s.fetch_bytes != 0 {
                    out.push(anchored(
                        Finding::new(
                            Rule::Rtm011,
                            format!(
                                "tiled continuation of layers {}..={} re-fetches {} B",
                                s.first_layer, s.last_layer, s.fetch_bytes
                            ),
                        )
                        .with_segment(i),
                    ));
                }
            } else if s.first_layer != prev.last_layer + 1 {
                out.push(anchored(
                    Finding::new(
                        Rule::Rtm011,
                        format!(
                            "layers {}..={} do not follow the previous segment's {}..={}",
                            s.first_layer, s.last_layer, prev.first_layer, prev.last_layer
                        ),
                    )
                    .with_segment(i),
                ));
            }
        }
        let last = plan.segments.last().expect("non-empty");
        if last.last_layer + 1 != model.len() {
            out.push(anchored(
                Finding::new(
                    Rule::Rtm011,
                    format!(
                        "coverage ends at layer {} but the model has {} layers",
                        last.last_layer,
                        model.len()
                    ),
                )
                .with_segment(plan.segments.len() - 1),
            ));
        }
    }

    // Realizability against the staging buffer.
    let cost = cost_model.model_cost(model);
    if plan.buffer_bytes == 0 && plan.total_fetch_bytes() > 0 {
        out.push(anchored(Finding::new(
            Rule::Rtm012,
            format!(
                "plan stages {} B through a zero-byte buffer",
                plan.total_fetch_bytes()
            ),
        )));
    } else if plan.buffer_bytes > 0 {
        for (li, layer) in cost.layers.iter().enumerate() {
            if layer.weight_bytes > plan.buffer_bytes {
                out.push(anchored(
                    Finding::new(
                        Rule::Rtm012,
                        format!(
                            "layer `{}` needs {} B of parameters but the buffer holds {} B",
                            layer.name, layer.weight_bytes, plan.buffer_bytes
                        ),
                    )
                    .with_layer(li),
                ));
            }
        }
    }

    // Cost-model consistency. Tiled continuation slices split a range's
    // compute across segments, so compare per covered range: the sum of
    // all slices over `first..=last` must equal the cost model's total
    // for those layers.
    if ranges_ok {
        let mut per_range: BTreeMap<(usize, usize), (u64, usize)> = BTreeMap::new();
        for (i, s) in plan.segments.iter().enumerate() {
            let entry = per_range
                .entry((s.first_layer, s.last_layer))
                .or_insert((0, i));
            entry.0 += s.compute_cycles.get();
        }
        for (&(first, last), &(total, seg)) in &per_range {
            let expected: u64 = cost.layers[first..=last]
                .iter()
                .map(|l| l.compute.get())
                .sum();
            if total != expected {
                out.push(anchored(
                    Finding::new(
                        Rule::Rtm013,
                        format!(
                            "layers {first}..={last} are planned at {total} cycles but the cost \
                             model prices them at {expected}"
                        ),
                    )
                    .with_segment(seg),
                ));
            }
        }
        if plan.total_fetch_bytes() < model.total_weight_bytes() {
            out.push(anchored(Finding::new(
                Rule::Rtm013,
                format!(
                    "plan stages {} B but the model carries {} B of parameters",
                    plan.total_fetch_bytes(),
                    model.total_weight_bytes()
                ),
            )));
        }
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtmdm_dnn::zoo;
    use rtmdm_xmem::segment_model;

    fn fixture() -> (ModelSegmentation, Model, CostModel) {
        let model = zoo::ds_cnn();
        let cost = CostModel::cmsis_nn_m7();
        let plan = segment_model(&model, &cost, 8 * 1024).expect("plan");
        assert!(plan.segments.len() >= 2, "fixture must be multi-segment");
        (plan, model, cost)
    }

    #[test]
    fn real_plans_are_well_formed() {
        let (plan, model, cost) = fixture();
        assert!(check_plan(&plan, &model, &cost).is_empty());
    }

    #[test]
    fn tiled_plans_are_well_formed() {
        let model = zoo::resnet8();
        let cost = CostModel::cmsis_nn_m7();
        let plan = rtmdm_xmem::segment_model_tiled(
            &model,
            &cost,
            64 * 1024,
            rtmdm_mcusim::Cycles::new(500_000),
        )
        .expect("tiled");
        assert!(check_plan(&plan, &model, &cost).is_empty());
    }

    #[test]
    fn rtm010_fires_once_on_a_shuffled_index() {
        let (mut plan, model, cost) = fixture();
        plan.segments[1].index = 5;
        let hits: Vec<_> = check_plan(&plan, &model, &cost)
            .into_iter()
            .filter(|f| f.rule == Rule::Rtm010)
            .collect();
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert_eq!(hits[0].segment, Some(1));
    }

    #[test]
    fn rtm011_fires_once_on_a_coverage_gap() {
        let (mut plan, model, cost) = fixture();
        // Open a one-layer gap between segments 0 and 1.
        plan.segments[1].first_layer += 1;
        let hits: Vec<_> = check_plan(&plan, &model, &cost)
            .into_iter()
            .filter(|f| f.rule == Rule::Rtm011)
            .collect();
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert!(hits[0].message.contains("do not follow"));
    }

    #[test]
    fn rtm012_fires_once_on_a_zero_buffer() {
        let (mut plan, model, cost) = fixture();
        plan.buffer_bytes = 0;
        let hits: Vec<_> = check_plan(&plan, &model, &cost)
            .into_iter()
            .filter(|f| f.rule == Rule::Rtm012)
            .collect();
        assert_eq!(hits.len(), 1, "{hits:?}");
    }

    #[test]
    fn rtm013_fires_once_on_a_doctored_compute() {
        let (mut plan, model, cost) = fixture();
        plan.segments[0].compute_cycles = rtmdm_mcusim::Cycles::new(1);
        let hits: Vec<_> = check_plan(&plan, &model, &cost)
            .into_iter()
            .filter(|f| f.rule == Rule::Rtm013)
            .collect();
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert!(hits[0].message.contains("cost"));
    }
}
