//! # rtmdm-check — static verifier and lint engine
//!
//! RT-MDM's promise is admission-time *guarantees*: a task set is only
//! accepted if worst-case response times, SRAM layouts, and DMA staging
//! schedules are provably safe. This crate turns those invariants into
//! a first-class static analysis that runs before a single simulated
//! cycle: a battery of passes over the existing IR (models, segmentation
//! plans, task sets, platform configs) producing diagnostics with stable
//! rule IDs (`RTM0xx`), severities, and machine-readable JSON.
//!
//! ## Passes
//!
//! | Pass | Module | Rules |
//! |------|--------|-------|
//! | staging race / aliasing | [`staging`] | `RTM001`–`RTM004` |
//! | plan well-formedness | [`plan`] | `RTM010`–`RTM013` |
//! | admission lints | [`admission`] | `RTM020`–`RTM026`, `RTM041` |
//! | graph lints | [`graph`] | `RTM030`–`RTM033` |
//! | platform sanity | [`platform`] | `RTM040` |
//! | schedule-space exploration | [`mod@explore`] | `RTM050`–`RTM053` |
//!
//! The passes are deliberately decoupled from `rtmdm-core`: each one
//! takes the lower-level IR it inspects (`rtmdm-core` orchestrates them
//! behind `SystemSpec::check()` and rejects admission on blocking
//! errors). Every *static* pass is pure — no simulation, no I/O, no
//! panics on user-supplied input. The one deliberate exception is the
//! opt-in [`mod@explore`] pass, which drives the scheduler simulator
//! exhaustively over its nondeterministic choices and returns replayable
//! counterexamples ([`Witness`]).
//!
//! ```rust
//! use rtmdm_check::{check_timing, Rule};
//!
//! let findings = check_timing("kws", 100_000, 200_000);
//! assert_eq!(findings.len(), 1);
//! assert_eq!(findings[0].rule, Rule::Rtm020);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod admission;
pub mod diag;
pub mod explore;
pub mod graph;
pub mod plan;
pub mod platform;
pub mod staging;
pub mod state;

pub use admission::{check_taskset, check_timing, AdmissionContext};
pub use diag::{
    Category, Finding, JsonFinding, JsonReport, Report, Rule, RuleFilter, Severity, SCHEMA,
};
pub use explore::{explore, ExploreLimits, ExploreOrder, ExploreOutcome, ExploreStrategy};
pub use graph::check_model;
pub use plan::check_plan;
pub use platform::check_platform;
pub use staging::{check_sram_regions, check_staging, staging_races, SramRegion, StagingRace};
pub use state::{ExploreStats, Witness, WITNESS_SCHEMA};
