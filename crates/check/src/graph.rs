//! DNN graph lints (`RTM030`–`RTM033`).
//!
//! Models built through [`rtmdm_dnn::ModelBuilder`] are
//! shape-consistent by construction, but models can also arrive through
//! `Model::from_json`, which faithfully restores whatever the document
//! says. This pass re-derives every node's operand and output shapes
//! from scratch and cross-checks them against the declared graph
//! (`RTM030`), finds dead layers (`RTM031`), validates quantization
//! parameters (`RTM032`), and flags layers that stage weights without
//! contributing MACs (`RTM033`).

use rtmdm_dnn::{Model, NodeInput, Shape};

use crate::diag::{Finding, Rule};

/// The graph pass: shape, reachability, and quantization lints of one
/// model.
pub fn check_model(model: &Model) -> Vec<Finding> {
    let mut out = Vec::new();
    let anchored = |f: Finding| f.with_model(model.name().to_owned());
    let nodes = model.nodes();
    let mut consumed = vec![false; nodes.len()];

    for (i, node) in nodes.iter().enumerate() {
        if node.id.0 != i {
            out.push(anchored(
                Finding::new(
                    Rule::Rtm030,
                    format!("node at position {i} declares id {}", node.id.0),
                )
                .with_layer(i),
            ));
        }

        // Re-derive operand shapes from the declared edges.
        let mut operands: Vec<Shape> = Vec::with_capacity(node.inputs.len());
        let mut edges_ok = true;
        for input in &node.inputs {
            match *input {
                NodeInput::ModelInput => operands.push(model.input_shape()),
                NodeInput::Node(id) if id.0 < i => {
                    consumed[id.0] = true;
                    operands.push(nodes[id.0].out_shape);
                }
                NodeInput::Node(id) => {
                    out.push(anchored(
                        Finding::new(
                            Rule::Rtm030,
                            format!(
                                "layer `{}` consumes node {} which is not an earlier node",
                                node.layer.name, id.0
                            ),
                        )
                        .with_layer(i),
                    ));
                    edges_ok = false;
                }
            }
        }
        if edges_ok && operands.is_empty() {
            out.push(anchored(
                Finding::new(
                    Rule::Rtm030,
                    format!("layer `{}` has no inputs", node.layer.name),
                )
                .with_layer(i),
            ));
            edges_ok = false;
        }
        if edges_ok && operands.windows(2).any(|w| w[0] != w[1]) {
            out.push(anchored(
                Finding::new(
                    Rule::Rtm030,
                    format!(
                        "layer `{}` mixes operand shapes {:?}",
                        node.layer.name, operands
                    ),
                )
                .with_layer(i),
            ));
            edges_ok = false;
        }
        if edges_ok {
            let input = operands[0];
            match node.layer.kind.out_shape(input) {
                None => out.push(anchored(
                    Finding::new(
                        Rule::Rtm030,
                        format!(
                            "layer `{}` cannot consume its operand shape \
                             {}x{}x{}",
                            node.layer.name, input.h, input.w, input.c
                        ),
                    )
                    .with_layer(i),
                )),
                Some(s) if s != node.out_shape => out.push(anchored(
                    Finding::new(
                        Rule::Rtm030,
                        format!(
                            "layer `{}` declares output {}x{}x{} but computes {}x{}x{}",
                            node.layer.name,
                            node.out_shape.h,
                            node.out_shape.w,
                            node.out_shape.c,
                            s.h,
                            s.w,
                            s.c
                        ),
                    )
                    .with_layer(i),
                )),
                Some(_) => {
                    // Shapes check out; the MAC lint is only meaningful
                    // on a consistent edge.
                    if node.layer.kind.macs(input) == 0 && node.layer.weight_bytes() > 0 {
                        out.push(anchored(
                            Finding::new(
                                Rule::Rtm033,
                                format!(
                                    "layer `{}` contributes no MACs yet stages {} B of parameters",
                                    node.layer.name,
                                    node.layer.weight_bytes()
                                ),
                            )
                            .with_layer(i),
                        ));
                    }
                }
            }
        }

        // Quantization ranges: scales must be positive finite, zero
        // points must fit int8.
        if node.layer.kind.has_weights()
            && !(node.layer.weight_scale.is_finite() && node.layer.weight_scale > 0.0)
        {
            out.push(anchored(
                Finding::new(
                    Rule::Rtm032,
                    format!(
                        "layer `{}` has weight scale {}",
                        node.layer.name, node.layer.weight_scale
                    ),
                )
                .with_layer(i),
            ));
        }
        let q = node.layer.out_quant;
        if !(q.scale.is_finite() && q.scale > 0.0 && (-128..=127).contains(&q.zero_point)) {
            out.push(anchored(
                Finding::new(
                    Rule::Rtm032,
                    format!(
                        "layer `{}` has output quantization scale {} / zero point {}",
                        node.layer.name, q.scale, q.zero_point
                    ),
                )
                .with_layer(i),
            ));
        }
    }

    for (i, node) in nodes.iter().enumerate() {
        if i + 1 != nodes.len() && !consumed[i] {
            out.push(anchored(
                Finding::new(
                    Rule::Rtm031,
                    format!(
                        "layer `{}` is computed but its output is never consumed",
                        node.layer.name
                    ),
                )
                .with_layer(i),
            ));
        }
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtmdm_dnn::{zoo, ModelBuilder};

    /// Replaces the value of `"key":<scalar>` in a serialized model.
    fn patch_scalar(json: &str, key: &str, new: &str) -> String {
        let needle = format!("\"{key}\":");
        let at = json.find(&needle).expect("key present") + needle.len();
        let end = json[at..]
            .find([',', '}'])
            .map(|e| at + e)
            .expect("scalar terminates");
        format!("{}{}{}", &json[..at], new, &json[end..])
    }

    fn two_dense() -> Model {
        ModelBuilder::new("tiny", Shape::new(4, 4, 1))
            .dense(4, true)
            .dense(2, false)
            .build()
    }

    #[test]
    fn zoo_models_lint_clean() {
        for model in zoo::all() {
            let findings = check_model(&model);
            assert!(findings.is_empty(), "{}: {findings:?}", model.name());
        }
    }

    #[test]
    fn rtm030_fires_once_on_a_shape_mismatch() {
        // Widen the model input: the first dense layer now sees 32
        // features but expects 16.
        let json = two_dense().to_json().expect("encode");
        let doctored = patch_scalar(&json, "c", "2");
        let model = Model::from_json(&doctored).expect("decode");
        let hits: Vec<_> = check_model(&model)
            .into_iter()
            .filter(|f| f.rule == Rule::Rtm030)
            .collect();
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert_eq!(hits[0].layer, Some(0));
    }

    #[test]
    fn rtm031_fires_once_on_a_dead_layer() {
        // Append a copy of the output layer that reads node 0; the
        // original node 1 is then computed but never consumed.
        let json = two_dense().to_json().expect("encode");
        let at = json.rfind("{\"id\":1").expect("last node");
        let node = &json[at..json.len() - 2];
        let dup = node.replacen("\"id\":1", "\"id\":2", 1);
        let doctored = format!("{},{}]{}", &json[..json.len() - 2], dup, "}");
        let model = Model::from_json(&doctored).expect("decode");
        let hits: Vec<_> = check_model(&model)
            .into_iter()
            .filter(|f| f.rule == Rule::Rtm031)
            .collect();
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert_eq!(hits[0].layer, Some(1));
    }

    #[test]
    fn rtm032_fires_once_on_a_non_positive_weight_scale() {
        let json = two_dense().to_json().expect("encode");
        let doctored = patch_scalar(&json, "weight_scale", "-1.0");
        let model = Model::from_json(&doctored).expect("decode");
        let hits: Vec<_> = check_model(&model)
            .into_iter()
            .filter(|f| f.rule == Rule::Rtm032)
            .collect();
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert_eq!(hits[0].layer, Some(0));
    }

    #[test]
    fn rtm033_fires_once_on_a_bias_only_zero_mac_layer() {
        // Dense with zero input features: weight matrix is empty but the
        // biases still stage, with zero MACs contributed.
        let model = ModelBuilder::new("degenerate", Shape::new(1, 1, 0))
            .dense(5, false)
            .build();
        let hits: Vec<_> = check_model(&model)
            .into_iter()
            .filter(|f| f.rule == Rule::Rtm033)
            .collect();
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert!(hits[0].message.contains("no MACs"));
    }
}
