//! The diagnostics engine: rules, severities, findings, reports, and
//! per-rule filters.
//!
//! Every diagnostic the verifier can emit is declared here with a
//! stable identifier (`RTM0xx`), a default severity, the category of
//! invariant it guards, and whether an Error-level instance blocks
//! framework admission. Rule IDs are part of the tool's contract: they
//! appear verbatim in the JSON schema (see [`SCHEMA`]) and may be
//! referenced by `--allow` / `--deny` flags, so they are never reused
//! or renumbered.

use std::collections::BTreeSet;
use std::fmt;

use serde::{Deserialize, Serialize};

/// Version tag of the JSON report layout ([`Report::to_json`]).
pub const SCHEMA: &str = "rtmdm-check/1";

/// How serious a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Informational note; never affects exit status.
    Info,
    /// Suspicious but not provably wrong; fails only under `--deny-warnings`.
    Warn,
    /// A proven violation of a checked invariant.
    Error,
}

impl Severity {
    /// Lower-case name used in JSON and text renderings.
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warn => "warn",
            Severity::Error => "error",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// The family of invariant a rule guards (also the rule-ID decade).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Category {
    /// Double-buffer staging races and SRAM aliasing (`RTM00x`).
    Staging,
    /// Segmentation-plan well-formedness (`RTM01x`).
    Plan,
    /// Admission and schedulability lints (`RTM02x`).
    Admission,
    /// DNN graph consistency (`RTM03x`).
    Graph,
    /// Platform configuration sanity (`RTM04x`).
    Platform,
    /// Exhaustive schedule-space exploration verdicts (`RTM05x`).
    Explore,
}

macro_rules! rules {
    ($( $variant:ident = $id:literal, $sev:ident, $cat:ident, $blocking:literal, $summary:literal; )+) => {
        /// Every diagnostic the verifier can emit, by stable identifier.
        ///
        /// IDs are grouped by decade: `RTM00x` staging/aliasing, `RTM01x`
        /// plan well-formedness, `RTM02x` admission, `RTM03x` graph,
        /// `RTM04x` platform, `RTM05x` schedule-space exploration.
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub enum Rule {
            $( #[doc = $summary] $variant, )+
        }

        impl Rule {
            /// Every rule, in ID order (drives the README rule table).
            pub const ALL: &'static [Rule] = &[ $( Rule::$variant, )+ ];

            /// The stable `RTM0xx` identifier.
            pub fn id(self) -> &'static str {
                match self { $( Rule::$variant => $id, )+ }
            }

            /// Severity the rule fires at unless a filter escalates it.
            pub fn default_severity(self) -> Severity {
                match self { $( Rule::$variant => Severity::$sev, )+ }
            }

            /// The invariant family the rule belongs to.
            pub fn category(self) -> Category {
                match self { $( Rule::$variant => Category::$cat, )+ }
            }

            /// Whether an Error-level finding of this rule is *structural*
            /// — a malformed spec, plan, graph, or platform — and must
            /// reject framework admission outright. Feasibility verdicts
            /// (over-utilization, diverging RTA, fetch-bound deadlines)
            /// are deliberately non-blocking: they remain the
            /// schedulability analysis's own answer, which callers may
            /// legitimately probe with infeasible sets.
            pub fn blocks_admission(self) -> bool {
                match self { $( Rule::$variant => $blocking, )+ }
            }

            /// One-line description of what the rule detects.
            pub fn summary(self) -> &'static str {
                match self { $( Rule::$variant => $summary, )+ }
            }

            /// Parses an `RTM0xx` identifier (as accepted by
            /// `--allow`/`--deny`).
            pub fn from_id(id: &str) -> Option<Rule> {
                match id { $( $id => Some(Rule::$variant), )+ _ => None }
            }
        }
    };
}

rules! {
    Rtm001 = "RTM001", Error, Staging, true,
        "a segment's fetch overruns its double-buffer half, spilling into the live half";
    Rtm002 = "RTM002", Error, Staging, true,
        "a DMA-write window overlaps a CPU-read window of the same staging bytes";
    Rtm003 = "RTM003", Error, Staging, true,
        "two SRAM regions alias (weight ping/pong overlapping activations or another task)";
    Rtm004 = "RTM004", Error, Staging, true,
        "the SRAM plan does not fit the platform's SRAM";
    Rtm010 = "RTM010", Error, Plan, true,
        "the segmentation plan is empty or its segment indices are not dense and ordered";
    Rtm011 = "RTM011", Error, Plan, true,
        "segment layer ranges are not contiguous in execution order";
    Rtm012 = "RTM012", Error, Plan, true,
        "the plan is unrealizable: zero staging buffer, or a layer exceeding the buffer";
    Rtm013 = "RTM013", Error, Plan, true,
        "plan compute/fetch totals are inconsistent with the cost model";
    Rtm020 = "RTM020", Error, Admission, true,
        "a task's deadline exceeds its period";
    Rtm021 = "RTM021", Error, Admission, true,
        "a task has a zero period or deadline";
    Rtm022 = "RTM022", Warn, Admission, false,
        "a task has zero worst-case execution time";
    Rtm023 = "RTM023", Error, Admission, false,
        "occupancy utilization exceeds 100%";
    Rtm024 = "RTM024", Warn, Admission, false,
        "occupancy utilization exceeds the rate-monotonic bound under fixed priorities";
    Rtm025 = "RTM025", Warn, Admission, false,
        "the hyperperiod overflows; exact period-based arguments are unavailable";
    Rtm026 = "RTM026", Error, Admission, false,
        "the response-time fixed point diverges (definitely unschedulable)";
    Rtm030 = "RTM030", Error, Graph, true,
        "tensor shapes disagree across a graph edge";
    Rtm031 = "RTM031", Warn, Graph, false,
        "a layer's output is never consumed and is not the model output";
    Rtm032 = "RTM032", Error, Graph, true,
        "a quantization parameter is out of range";
    Rtm033 = "RTM033", Warn, Graph, false,
        "a zero-MAC layer still stages weights";
    Rtm040 = "RTM040", Error, Platform, true,
        "the platform configuration is invalid";
    Rtm041 = "RTM041", Error, Platform, false,
        "staging a job's weights alone exceeds the task's deadline on this bus";
    Rtm050 = "RTM050", Error, Explore, false,
        "exhaustive exploration reached a deadline miss under some admissible interleaving";
    Rtm051 = "RTM051", Error, Explore, true,
        "exhaustive exploration reached a double-buffer staging race";
    Rtm052 = "RTM052", Error, Explore, false,
        "the DMA retry budget is insufficient on some explored fault path";
    Rtm053 = "RTM053", Warn, Explore, false,
        "exploration exceeded its state budget before covering the space; the verdict is inconclusive, not safe";
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.id())
    }
}

/// One diagnostic: a rule instance anchored to a location in the spec.
///
/// The locus fields (`task`, `model`, `segment`, `layer`) are the
/// verifier's span equivalent — each is filled when the finding can be
/// pinned to that granularity.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Which rule fired.
    pub rule: Rule,
    /// Effective severity (the rule default, unless a filter escalated).
    pub severity: Severity,
    /// Human-readable explanation with the concrete numbers.
    pub message: String,
    /// Task name the finding is about, when known.
    pub task: Option<String>,
    /// Model name the finding is about, when known.
    pub model: Option<String>,
    /// Segment index within the task's plan, when applicable.
    pub segment: Option<usize>,
    /// Layer (node) index within the model, when applicable.
    pub layer: Option<usize>,
}

impl Finding {
    /// Creates a finding at the rule's default severity.
    pub fn new(rule: Rule, message: impl Into<String>) -> Finding {
        Finding {
            rule,
            severity: rule.default_severity(),
            message: message.into(),
            task: None,
            model: None,
            segment: None,
            layer: None,
        }
    }

    /// Anchors the finding to a task.
    pub fn with_task(mut self, task: impl Into<String>) -> Finding {
        self.task = Some(task.into());
        self
    }

    /// Anchors the finding to a model.
    pub fn with_model(mut self, model: impl Into<String>) -> Finding {
        self.model = Some(model.into());
        self
    }

    /// Anchors the finding to a plan segment.
    pub fn with_segment(mut self, segment: usize) -> Finding {
        self.segment = Some(segment);
        self
    }

    /// Anchors the finding to a model layer.
    pub fn with_layer(mut self, layer: usize) -> Finding {
        self.layer = Some(layer);
        self
    }

    /// The locus rendered for the text format, e.g. `task kws, segment 3`.
    fn locus(&self) -> String {
        let mut parts = Vec::new();
        if let Some(t) = &self.task {
            parts.push(format!("task {t}"));
        }
        if let Some(m) = &self.model {
            parts.push(format!("model {m}"));
        }
        if let Some(s) = self.segment {
            parts.push(format!("segment {s}"));
        }
        if let Some(l) = self.layer {
            parts.push(format!("layer {l}"));
        }
        parts.join(", ")
    }
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let locus = self.locus();
        if locus.is_empty() {
            write!(f, "{}[{}] {}", self.severity, self.rule, self.message)
        } else {
            write!(
                f,
                "{}[{}] {}: {}",
                self.severity, self.rule, locus, self.message
            )
        }
    }
}

/// The outcome of a verification run: every finding, in pass order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Report {
    /// All findings, in the deterministic order the passes emitted them.
    pub findings: Vec<Finding>,
}

impl Report {
    /// An empty report.
    pub fn new() -> Report {
        Report::default()
    }

    /// Appends one finding.
    pub fn push(&mut self, finding: Finding) {
        self.findings.push(finding);
    }

    /// Appends a batch of findings (typically one pass's output).
    pub fn extend(&mut self, findings: impl IntoIterator<Item = Finding>) {
        self.findings.extend(findings);
    }

    /// Number of Error-level findings.
    pub fn error_count(&self) -> usize {
        self.findings
            .iter()
            .filter(|f| f.severity == Severity::Error)
            .count()
    }

    /// Number of Warn-level findings.
    pub fn warning_count(&self) -> usize {
        self.findings
            .iter()
            .filter(|f| f.severity == Severity::Warn)
            .count()
    }

    /// No findings at all.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Whether any Error-level finding is of a rule that must reject
    /// framework admission (see [`Rule::blocks_admission`]).
    pub fn blocks_admission(&self) -> bool {
        self.findings
            .iter()
            .any(|f| f.severity == Severity::Error && f.rule.blocks_admission())
    }

    /// Renders the machine-readable JSON document (schema [`SCHEMA`]).
    pub fn to_json(&self) -> String {
        let doc = JsonReport {
            schema: SCHEMA.to_owned(),
            errors: self.error_count(),
            warnings: self.warning_count(),
            findings: self.findings.iter().map(JsonFinding::from).collect(),
        };
        serde_json::to_string(&doc).expect("report serialization is infallible")
    }

    /// Renders the human-readable listing, one finding per line plus a
    /// summary tail.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            out.push_str(&f.to_string());
            out.push('\n');
        }
        out.push_str(&format!(
            "{} error(s), {} warning(s)",
            self.error_count(),
            self.warning_count()
        ));
        out
    }
}

/// Serialized form of a [`Finding`] (stable JSON field order).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct JsonFinding {
    /// Stable rule ID, e.g. `"RTM020"`.
    pub rule: String,
    /// `"error"`, `"warn"`, or `"info"`.
    pub severity: String,
    /// Human-readable message.
    pub message: String,
    /// Task locus, when known.
    pub task: Option<String>,
    /// Model locus, when known.
    pub model: Option<String>,
    /// Segment locus, when known.
    pub segment: Option<usize>,
    /// Layer locus, when known.
    pub layer: Option<usize>,
}

impl From<&Finding> for JsonFinding {
    fn from(f: &Finding) -> JsonFinding {
        JsonFinding {
            rule: f.rule.id().to_owned(),
            severity: f.severity.as_str().to_owned(),
            message: f.message.clone(),
            task: f.task.clone(),
            model: f.model.clone(),
            segment: f.segment,
            layer: f.layer,
        }
    }
}

/// Serialized form of a [`Report`]; also the type the CLI re-parses
/// exported JSON through before printing it.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct JsonReport {
    /// Schema tag, always [`SCHEMA`].
    pub schema: String,
    /// Error-level finding count.
    pub errors: usize,
    /// Warn-level finding count.
    pub warnings: usize,
    /// The findings, in emission order.
    pub findings: Vec<JsonFinding>,
}

/// Per-rule allow/deny policy applied after the passes run.
///
/// `allow` drops a rule's findings entirely; `deny` (or the blanket
/// `deny_warnings`) escalates Warn-level findings to Error so they fail
/// the run.
#[derive(Debug, Clone, Default)]
pub struct RuleFilter {
    allowed: BTreeSet<Rule>,
    denied: BTreeSet<Rule>,
    deny_warnings: bool,
}

impl RuleFilter {
    /// A filter that passes everything through unchanged.
    pub fn new() -> RuleFilter {
        RuleFilter::default()
    }

    /// Suppresses all findings of `rule`.
    pub fn allow(mut self, rule: Rule) -> RuleFilter {
        self.allowed.insert(rule);
        self
    }

    /// Escalates `rule` findings to Error severity.
    pub fn deny(mut self, rule: Rule) -> RuleFilter {
        self.denied.insert(rule);
        self
    }

    /// Escalates every Warn-level finding to Error.
    pub fn deny_warnings(mut self, yes: bool) -> RuleFilter {
        self.deny_warnings = yes;
        self
    }

    /// Applies the policy, producing the filtered report.
    pub fn apply(&self, report: &Report) -> Report {
        let findings = report
            .findings
            .iter()
            .filter(|f| !self.allowed.contains(&f.rule))
            .map(|f| {
                let mut f = f.clone();
                if f.severity == Severity::Warn
                    && (self.deny_warnings || self.denied.contains(&f.rule))
                {
                    f.severity = Severity::Error;
                }
                f
            })
            .collect();
        Report { findings }
    }
}

/// Formats parts-per-million as a percentage with two decimals.
pub(crate) fn ppm_pct(ppm: u64) -> String {
    format!("{}.{:02}%", ppm / 10_000, (ppm % 10_000) / 100)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rule_ids_round_trip_and_match_categories() {
        for &rule in Rule::ALL {
            assert_eq!(Rule::from_id(rule.id()), Some(rule));
            let decade = rule.id().as_bytes()[4] - b'0';
            let expected = match rule.category() {
                Category::Staging => 0,
                Category::Plan => 1,
                Category::Admission if rule == Rule::Rtm041 => 4,
                Category::Admission => 2,
                Category::Graph => 3,
                Category::Platform => 4,
                Category::Explore => 5,
            };
            assert_eq!(decade, expected, "{rule} decade");
        }
        assert_eq!(Rule::from_id("RTM999"), None);
    }

    #[test]
    fn feasibility_rules_never_block_admission() {
        for rule in [
            Rule::Rtm022,
            Rule::Rtm023,
            Rule::Rtm024,
            Rule::Rtm026,
            Rule::Rtm041,
            // Exploration feasibility verdicts mirror the analytic ones:
            // a reachable miss or an insufficient retry budget is the
            // analysis's answer, not a malformed spec. The reachable
            // *race* (RTM051) is structural and blocks below.
            Rule::Rtm050,
            Rule::Rtm052,
            Rule::Rtm053,
        ] {
            assert!(!rule.blocks_admission(), "{rule}");
        }
        for rule in [
            Rule::Rtm001,
            Rule::Rtm010,
            Rule::Rtm020,
            Rule::Rtm030,
            Rule::Rtm040,
            Rule::Rtm051,
        ] {
            assert!(rule.blocks_admission(), "{rule}");
        }
    }

    #[test]
    fn json_report_round_trips() {
        let mut report = Report::new();
        report.push(
            Finding::new(Rule::Rtm020, "deadline 200000 us exceeds period 100000 us")
                .with_task("kws"),
        );
        let json = report.to_json();
        let parsed: JsonReport = serde_json::from_str(&json).expect("round trip");
        assert_eq!(parsed.schema, SCHEMA);
        assert_eq!(parsed.errors, 1);
        assert_eq!(parsed.warnings, 0);
        assert_eq!(parsed.findings[0].rule, "RTM020");
        assert_eq!(parsed.findings[0].task.as_deref(), Some("kws"));
        assert_eq!(parsed.findings[0].segment, None);
    }

    #[test]
    fn filter_allows_and_escalates() {
        let mut report = Report::new();
        report.push(Finding::new(Rule::Rtm024, "over the RM bound"));
        report.push(Finding::new(Rule::Rtm031, "dead layer"));
        let allowed = RuleFilter::new().allow(Rule::Rtm031).apply(&report);
        assert_eq!(allowed.findings.len(), 1);
        assert_eq!(allowed.findings[0].rule, Rule::Rtm024);
        let denied = RuleFilter::new().deny_warnings(true).apply(&report);
        assert_eq!(denied.error_count(), 2);
        let one = RuleFilter::new().deny(Rule::Rtm024).apply(&report);
        assert_eq!(one.error_count(), 1);
        assert_eq!(one.warning_count(), 1);
    }

    #[test]
    fn text_rendering_names_the_locus() {
        let f = Finding::new(Rule::Rtm001, "overrun")
            .with_task("kws")
            .with_segment(3);
        assert_eq!(f.to_string(), "error[RTM001] task kws, segment 3: overrun");
    }
}
