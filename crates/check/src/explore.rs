//! The bounded exhaustive schedule-space explorer (`RTM050`–`RTM053`).
//!
//! Where every other pass in this crate reasons *analytically*, this one
//! reasons *operationally*: it enumerates every interleaving of the
//! simulator's nondeterministic choices — per-job execution times over
//! `[BCET, WCET]` endpoints, release jitter, and per-transfer fault
//! injection up to the retry budget — and proves either that no
//! reachable interleaving misses a deadline or races the double buffer,
//! or produces a concrete violating path as a replayable [`Witness`].
//!
//! The transition function is not a model of the scheduler: it *is* the
//! scheduler, driven through the
//! [`SimOracle`](rtmdm_sched::script::SimOracle) hook. That makes every
//! counterexample exact by construction — replaying the witness script
//! through [`simulate_with_oracle`] reproduces the violating run byte
//! for byte on either engine.
//!
//! Search is depth-first over forced-choice prefixes, with converging
//! interleavings merged through the canonical state fingerprint (see
//! [`crate::state`]). Two orthogonal levers set how each path is
//! executed, neither of which changes a single output byte:
//!
//! - **Strategy** ([`ExploreStrategy`]): under `Fork` (the default),
//!   each run captures a [`SimSnapshot`] at every instant boundary that
//!   may reach a choice point, and every branch resumes from the latest
//!   snapshot at or before its branched query instead of replaying the
//!   whole prefix from time zero. `Replay` keeps the from-zero
//!   re-execution as the differential reference; an equivalence
//!   property test pins that the two produce identical verdicts, stats,
//!   and witness JSON.
//! - **Threads** ([`ExploreLimits::threads`]): paths near the top of
//!   the work stack are executed *speculatively* in parallel. Because a
//!   path's run is a pure function of its prefix (the oracle holds no
//!   shared state; visited bookkeeping happens at merge time, in one
//!   canonical stack order), speculation changes only when a run is
//!   computed, never what it contains — verdicts, state counts, and
//!   witnesses are byte-identical at any thread count.
//!
//! The search is bounded: when the state budget is hit, the verdict is
//! `RTM053` — explicitly inconclusive, never silently safe.

use std::collections::HashMap;
use std::sync::Arc;

use rtmdm_mcusim::{Cycles, JobId, PlatformConfig, TaskId, TraceKind};
use rtmdm_obs::attribute;
use rtmdm_par::par_map_with_threads;
use rtmdm_sched::script::{Choice, ScriptedChoice};
use rtmdm_sched::sim::{
    simulate_with_oracle, simulate_with_oracle_forked, RaceKind, SimConfig, SimResult, SimSnapshot,
};
use rtmdm_sched::TaskSet;

use crate::diag::{Finding, Rule};
use crate::state::WITNESS_SCHEMA;
use crate::state::{
    merge_path, Domains, ExploreStats, PathOracle, QueryRecord, VisitedSet, Witness,
};

/// How the explorer executes each path of the search tree.
///
/// Strategies differ only in cost: every verdict, counter, and witness
/// byte is identical across them (pinned by the differential property
/// suite and the CI `cmp` smoke).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExploreStrategy {
    /// Re-execute every path from time zero. The semantic reference:
    /// each run's cost is the full horizon regardless of where it
    /// branched.
    Replay,
    /// Fork each branch from a mid-run [`SimSnapshot`] captured by the
    /// run that scheduled it, paying only for the path suffix past the
    /// branched choice.
    #[default]
    Fork,
}

/// Which scheduled branch of the current run the search takes next.
///
/// Unlike strategy and thread count, the order is a *semantic* knob:
/// it changes which paths execute (and therefore run/transition
/// counters and which violation is reached first in an unsafe space),
/// though never the safety verdict of a completed search — the covered
/// state lattice is order-independent. Fork-versus-replay and
/// thread-count byte-identity hold within either order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExploreOrder {
    /// Explore the shallowest scheduled branch of the current run
    /// next. The historical order; every pinned table was produced
    /// under it, so it stays the default.
    #[default]
    ShallowFirst,
    /// Explore the deepest scheduled branch next. Keeps the frontier
    /// at the far end of the horizon, where a forked branch resumes
    /// just before its divergence and pays almost nothing for the
    /// prefix — the order that lets `Fork` realize its asymptotic
    /// advantage (see the F14 scale probe).
    DeepFirst,
}

/// Bound on cached speculative runs; past it the explorer stops
/// batching ahead (memory backstop, not a correctness knob).
const SPECULATION_CAP: usize = 128;

/// Exploration bounds and the extra nondeterminism dimensions that have
/// no [`SimConfig`] field of their own.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExploreLimits {
    /// Budget on distinct canonical `(state, choice-point)` pairs; when
    /// exceeded the verdict is `RTM053` (inconclusive).
    pub max_states: usize,
    /// Upper endpoint of the release-jitter dimension, in cycles; zero
    /// keeps arrivals strictly periodic.
    pub jitter_max_cycles: u64,
    /// Path-execution strategy (`rtmdm check --strategy`). Outputs are
    /// byte-identical across strategies; `Fork` is the default because
    /// it is asymptotically cheaper on deep search trees.
    pub strategy: ExploreStrategy,
    /// Worker threads for speculative path execution (`rtmdm check
    /// --threads`); `0` defers to `RTMDM_THREADS` / available
    /// parallelism. Outputs are byte-identical at any count.
    pub threads: usize,
    /// Branch scheduling order (see [`ExploreOrder`]).
    pub order: ExploreOrder,
}

impl Default for ExploreLimits {
    fn default() -> ExploreLimits {
        ExploreLimits {
            max_states: 20_000,
            jitter_max_cycles: 0,
            strategy: ExploreStrategy::default(),
            threads: 0,
            order: ExploreOrder::default(),
        }
    }
}

/// What one exploration concluded.
#[derive(Debug, Clone)]
pub struct ExploreOutcome {
    /// Zero findings = proven safe over the explored lattice; `RTM050`/
    /// `RTM051`/`RTM052` = violation reached; `RTM053` = budget hit.
    pub findings: Vec<Finding>,
    /// The replayable counterexample behind a violation finding.
    pub witness: Option<Witness>,
    /// Search counters (also reported by `rtmdm check --explore`).
    pub stats: ExploreStats,
}

impl ExploreOutcome {
    /// Whether exploration covered the space and found nothing.
    pub fn proven_safe(&self) -> bool {
        self.findings.is_empty() && self.stats.complete
    }
}

/// One scheduled path: its absolute forced-choice prefix and the
/// snapshot the run may resume from instead of starting at time zero.
#[derive(Clone)]
struct WorkItem {
    /// Forced choices from time zero (absolute positions `0..len`).
    prefix: Vec<Choice>,
    /// Latest snapshot whose capturing run agrees with `prefix` up to
    /// the snapshot's query position; `None` runs from time zero.
    base: Option<ForkBase>,
}

/// A shareable resume point: a snapshot plus its *absolute* position in
/// the choice sequence (snapshots themselves count queries relative to
/// the run that captured them).
#[derive(Clone)]
struct ForkBase {
    snap: Arc<SimSnapshot>,
    /// Absolute oracle queries answered before the captured instant.
    consumed: usize,
}

/// The executed form of a [`WorkItem`], produced speculatively or on
/// demand — a pure function of the item, which is what lets the
/// parallel frontier run ahead of the sequential merge order.
struct PathRun {
    result: SimResult,
    /// Records for queries `consumed..` (snapshot-relative log).
    log: Vec<QueryRecord>,
    /// Absolute queries answered before the resume point (`0` when the
    /// run started at time zero).
    consumed: usize,
    /// Snapshots this run captured, ascending by absolute position.
    snaps: Vec<ForkBase>,
}

/// The violating event of one explored run, before rule classification.
#[derive(Debug, Clone, Copy)]
struct RawViolation {
    at: Cycles,
    task: usize,
    job: u64,
    race: Option<(usize, usize, RaceKind)>,
}

/// Executes one path. Under `Fork` the run resumes from the item's
/// base snapshot (when it has one) and captures snapshots for the
/// branches it will schedule; under `Replay` it runs the full horizon
/// from time zero and captures nothing.
fn run_path(
    ts: &TaskSet,
    platform: &PlatformConfig,
    cfg: &SimConfig,
    domains: &Domains,
    item: &WorkItem,
    fork: bool,
) -> PathRun {
    let consumed = item.base.as_ref().map_or(0, |b| b.consumed);
    let mut caps: Vec<SimSnapshot> = Vec::new();
    let mut oracle = PathOracle::new(item.prefix[consumed..].to_vec(), domains);
    let result = simulate_with_oracle_forked(
        ts,
        platform,
        cfg,
        &mut oracle,
        item.base.as_ref().map(|b| b.snap.as_ref()),
        if fork { Some(&mut caps) } else { None },
    );
    let snaps = caps
        .into_iter()
        .map(|s| ForkBase {
            consumed: consumed + s.queries_before(),
            snap: Arc::new(s),
        })
        .collect();
    PathRun {
        result,
        log: oracle.log,
        consumed,
        snaps,
    }
}

/// Explores the schedule space of `ts` on `platform` exhaustively over
/// the choice lattice induced by `base` and `limits`, up to
/// `base.horizon`.
///
/// `base` supplies the scheduling policy, dispatch discipline, staging
/// window, horizon, and the fault environment (a zero
/// `dma_fault_rate_ppm` disables the fault dimension; a nonzero rate
/// enables it — the rate itself is ignored, since the explorer decides
/// each fault outcome, honoring only `max_retries`). Attribution is
/// forced on so a violating run decomposes into blame terms.
///
/// Returns zero findings only when the entire bounded lattice was
/// covered without reaching a violation.
pub fn explore(
    ts: &TaskSet,
    platform: &PlatformConfig,
    base: &SimConfig,
    limits: &ExploreLimits,
) -> ExploreOutcome {
    let mut cfg = base.clone();
    cfg.attribution = true;
    let domains = Domains {
        exec_scale_min_ppm: cfg.exec_scale_min_ppm,
        jitter_max_cycles: limits.jitter_max_cycles,
        explore_faults: cfg.fault.dma_fault_rate_ppm > 0,
    };
    let fork = limits.strategy == ExploreStrategy::Fork;
    let threads = match limits.threads {
        0 => rtmdm_par::num_threads(),
        n => n,
    };
    let mut visited = VisitedSet::new();
    let mut stats = ExploreStats::default();
    // The work stack: ids are assigned in push order and key the
    // speculation cache; the pop order (and therefore every merge,
    // counter, and verdict) is a deterministic function of the runs
    // alone.
    let mut next_id: u64 = 1;
    let mut stack: Vec<(u64, WorkItem)> = vec![(
        0,
        WorkItem {
            prefix: Vec::new(),
            base: None,
        },
    )];
    let mut cache: HashMap<u64, PathRun> = HashMap::new();
    // Each scheduled branch is an untaken alternative of a novel pair,
    // so runs are bounded by states; the cap is a backstop only.
    let run_cap = limits.max_states.saturating_mul(2).saturating_add(1);
    let mut exhausted = false;

    while let Some((id, item)) = stack.pop() {
        if visited.len() >= limits.max_states || stats.runs >= run_cap {
            exhausted = true;
            break;
        }
        let run = cache.remove(&id).unwrap_or_else(|| {
            if threads > 1 && !stack.is_empty() && cache.len() < SPECULATION_CAP {
                // Speculate: the popped item plus the next uncached
                // items from the top of the stack run concurrently.
                // Pure path execution makes the results independent of
                // this batching; only the wall clock notices.
                let mut batch: Vec<(u64, &WorkItem)> = vec![(id, &item)];
                for (sid, sitem) in stack.iter().rev() {
                    if batch.len() >= threads.saturating_mul(2) {
                        break;
                    }
                    if !cache.contains_key(sid) {
                        batch.push((*sid, sitem));
                    }
                }
                let runs = par_map_with_threads(threads, batch, |(bid, bitem)| {
                    (bid, run_path(ts, platform, &cfg, &domains, bitem, fork))
                });
                let mut popped = None;
                for (bid, brun) in runs {
                    if bid == id {
                        popped = Some(brun);
                    } else {
                        cache.insert(bid, brun);
                    }
                }
                popped.expect("the popped item is always in the batch")
            } else {
                run_path(ts, platform, &cfg, &domains, &item, fork)
            }
        });
        stats.runs += 1;
        stats.transitions += (run.consumed + run.log.len()) as u64;

        // Merge before the violation check: the canonical sequential
        // consume order expands each path's novel pairs even on a
        // violating run, exactly as an in-run oracle would have.
        let expansions = merge_path(&run.log, &mut visited);

        if let Some(raw) = first_violation(&run.result) {
            stats.states = visited.len();
            let outcome = violation_outcome(ts, platform, &cfg, &domains, &item, &run, raw, stats);
            flush_explore_metrics(&outcome.stats);
            return outcome;
        }
        // Push order decides which scheduled branch pops next (LIFO):
        // pushing deepest-first leaves the shallowest on top.
        let scheduled: Vec<usize> = match limits.order {
            ExploreOrder::ShallowFirst => expansions.iter().rev().copied().collect(),
            ExploreOrder::DeepFirst => expansions.clone(),
        };
        for i in scheduled {
            for &alt in &run.log[i].branches {
                let mut prefix: Vec<Choice> = Vec::with_capacity(run.consumed + i + 1);
                prefix.extend_from_slice(&item.prefix[..run.consumed]);
                prefix.extend(run.log[..i].iter().map(|r| r.chosen));
                prefix.push(alt);
                // The latest snapshot at or before the branched choice
                // agrees with the child's prefix on everything before
                // it (the child diverges only at position
                // `consumed + i`), so the child replays at most one
                // captured instant's worth of forced choices.
                let base = run
                    .snaps
                    .iter()
                    .rev()
                    .find(|fb| fb.consumed <= run.consumed + i)
                    .cloned()
                    .or_else(|| item.base.clone());
                stack.push((next_id, WorkItem { prefix, base }));
                next_id += 1;
            }
        }
    }

    stats.states = visited.len();
    stats.complete = !exhausted;
    let mut findings = Vec::new();
    if exhausted {
        findings.push(Finding::new(
            Rule::Rtm053,
            format!(
                "exploration budget exceeded ({} states, {} runs, {} unexplored branches): \
                 the verdict is inconclusive, not safe — raise --max-states to cover the space",
                stats.states,
                stats.runs,
                stack.len(),
            ),
        ));
    }
    flush_explore_metrics(&stats);
    ExploreOutcome {
        findings,
        witness: None,
        stats,
    }
}

/// Flushes one exploration's counters into the process-global metrics
/// registry (a no-op unless a telemetry consumer enabled it). Counters
/// are merge-order totals, so they are identical for any thread count
/// and either strategy — unlike per-run simulator metrics, which
/// oracle-driven probes deliberately do not flush.
fn flush_explore_metrics(stats: &ExploreStats) {
    let g = rtmdm_obs::metrics::global();
    if !g.is_enabled() {
        return;
    }
    g.add("explore.explorations", 1);
    g.add("explore.runs", stats.runs as u64);
    g.add("explore.states", stats.states as u64);
    g.add("explore.transitions", stats.transitions);
}

/// The chronologically first violating event of a run: a staging race
/// or a deadline miss, races winning ties (they are structural).
fn first_violation(result: &SimResult) -> Option<RawViolation> {
    let race = result.races.first().map(|r| RawViolation {
        at: r.at,
        task: r.task,
        job: r.job,
        race: Some((r.write_seg, r.clobbered_seg, r.kind)),
    });
    let miss = result.trace.events().iter().find_map(|e| match e.kind {
        TraceKind::DeadlineMissed { task, job } => Some(RawViolation {
            at: e.time,
            task: task.0,
            job: job.0,
            race: None,
        }),
        _ => None,
    });
    match (race, miss) {
        (Some(r), Some(m)) if m.at < r.at => Some(m),
        (Some(r), _) => Some(r),
        (None, m) => m,
    }
}

/// Builds the finding and witness for a violating run.
#[allow(clippy::too_many_arguments)]
fn violation_outcome(
    ts: &TaskSet,
    platform: &PlatformConfig,
    cfg: &SimConfig,
    domains: &Domains,
    item: &WorkItem,
    run: &PathRun,
    raw: RawViolation,
    stats: ExploreStats,
) -> ExploreOutcome {
    // A forked run's log starts at its snapshot: recover the absolute
    // record sequence (choice points from time zero, as the witness
    // schema requires) by replaying the complete path once. Replay-
    // strategy runs and from-zero forked runs already have it.
    let full: Option<(SimResult, Vec<QueryRecord>)> = (run.consumed > 0).then(|| {
        let mut forced: Vec<Choice> = item.prefix[..run.consumed].to_vec();
        forced.extend(run.log.iter().map(|r| r.chosen));
        let mut oracle = PathOracle::new(forced, domains);
        let result = simulate_with_oracle(ts, platform, cfg, &mut oracle);
        (result, oracle.log)
    });
    let (result, log) = match &full {
        Some((result, log)) => (result, log.as_slice()),
        None => (&run.result, run.log.as_slice()),
    };
    let name = &ts.tasks()[raw.task].name;
    let forced_faults = log
        .iter()
        .filter(|r| r.chosen == Choice::TransferFault(true))
        .count();
    let (rule, message) = match raw.race {
        Some((write, clobbered, kind)) => (
            Rule::Rtm051,
            format!(
                "a double-buffer staging race is reachable at cycle {}: the DMA writes \
                 segment {write} over {} segment {clobbered} of job {} \
                 (staging window {}, {} runs, {} states explored)",
                raw.at.get(),
                match kind {
                    RaceKind::CpuRead => "the CPU-read",
                    RaceKind::StagedUnconsumed => "staged-unconsumed",
                },
                raw.job,
                cfg.staging_window,
                stats.runs,
                stats.states,
            ),
        ),
        None if forced_faults > 0 => (
            Rule::Rtm052,
            format!(
                "the DMA retry budget (max_retries = {}) is insufficient: job {} misses \
                 its deadline at cycle {} on a path with {forced_faults} injected fault(s) \
                 ({} runs, {} states explored)",
                cfg.fault.max_retries,
                raw.job,
                raw.at.get(),
                stats.runs,
                stats.states,
            ),
        ),
        None => (
            Rule::Rtm050,
            format!(
                "a deadline miss is reachable: job {} misses at cycle {} under an \
                 admissible interleaving ({} runs, {} states explored)",
                raw.job,
                raw.at.get(),
                stats.runs,
                stats.states,
            ),
        ),
    };
    let dominant_blame = attribute(&result.trace).ok().and_then(|report| {
        report
            .jobs
            .iter()
            .find(|j| j.task == TaskId(raw.task) && j.job == JobId(raw.job))
            .and_then(|j| j.dominant_interference())
            .map(|(src, _)| src.to_string())
    });
    let witness = Witness {
        schema: WITNESS_SCHEMA.to_owned(),
        rule: rule.id().to_owned(),
        task: raw.task,
        job: raw.job,
        at: raw.at.get(),
        dominant_blame,
        task_set: ts.clone(),
        platform: platform.clone(),
        config: cfg.clone(),
        script: log
            .iter()
            .map(|r| ScriptedChoice {
                point: r.point,
                value: r.chosen,
            })
            .collect(),
    };
    ExploreOutcome {
        findings: vec![Finding::new(rule, message).with_task(name.clone())],
        witness: Some(witness),
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtmdm_mcusim::{ContentionModel, FaultPlan};
    use rtmdm_sched::sim::{Engine, Policy};
    use rtmdm_sched::{Segment, SporadicTask, StagingMode};

    fn cy(n: u64) -> Cycles {
        Cycles::new(n)
    }

    fn bare_platform() -> PlatformConfig {
        let mut p = PlatformConfig::stm32f746_qspi();
        p.contention = ContentionModel::NONE;
        p.context_switch_cycles = Cycles::ZERO;
        p.ext_mem.setup_cycles = Cycles::ZERO;
        p.ext_mem.cycles_per_byte_num = 1;
        p.ext_mem.cycles_per_byte_den = 1;
        p
    }

    fn resident(name: &str, period: u64, deadline: u64, compute: u64) -> SporadicTask {
        SporadicTask::new(
            name,
            cy(period),
            cy(deadline),
            vec![Segment::new(cy(compute), 0)],
            StagingMode::Resident,
        )
        .expect("valid task")
    }

    fn overlapped(name: &str, period: u64, segs: &[(u64, u64)]) -> SporadicTask {
        SporadicTask::new(
            name,
            cy(period),
            cy(period),
            segs.iter().map(|&(c, b)| Segment::new(cy(c), b)).collect(),
            StagingMode::Overlapped,
        )
        .expect("valid task")
    }

    fn config(horizon: u64) -> SimConfig {
        SimConfig {
            horizon: cy(horizon),
            policy: Policy::FixedPriority,
            exec_scale_min_ppm: 1_000_000,
            seed: 0,
            work_conserving: false,
            fault: FaultPlan::NONE,
            engine: Engine::Des,
            attribution: false,
            staging_window: 2,
        }
    }

    #[test]
    fn feasible_set_is_proven_safe() {
        let ts = TaskSet::from_tasks(vec![
            resident("a", 1_000, 1_000, 200),
            resident("b", 2_000, 2_000, 400),
        ]);
        let mut cfg = config(4_000);
        cfg.exec_scale_min_ppm = 500_000;
        let limits = ExploreLimits {
            max_states: 10_000,
            jitter_max_cycles: 100,
            ..ExploreLimits::default()
        };
        let out = explore(&ts, &bare_platform(), &cfg, &limits);
        assert!(out.proven_safe(), "findings: {:?}", out.findings);
        assert!(out.witness.is_none());
        assert!(out.stats.runs > 1, "jitter/scale dimensions must branch");
    }

    #[test]
    fn jitter_reachable_miss_is_found_with_replayable_witness() {
        // Feasible when periodic: 600 compute in a 1000 deadline. A
        // 500-cycle jitter on the release pushes completion past the
        // anchored deadline.
        let ts = TaskSet::from_tasks(vec![resident("t", 2_000, 1_000, 600)]);
        let cfg = config(8_000);
        let limits = ExploreLimits {
            max_states: 10_000,
            jitter_max_cycles: 500,
            ..ExploreLimits::default()
        };
        let out = explore(&ts, &bare_platform(), &cfg, &limits);
        assert_eq!(out.findings.len(), 1);
        assert_eq!(out.findings[0].rule, Rule::Rtm050);
        let w = out.witness.expect("violation carries a witness");
        assert_eq!(w.rule, "RTM050");
        let replay = w.replay();
        let miss = replay
            .trace
            .events()
            .iter()
            .find(|e| matches!(e.kind, TraceKind::DeadlineMissed { .. }))
            .expect("replay reproduces the miss");
        assert_eq!(miss.time.get(), w.at, "predicted == replayed instant");
    }

    #[test]
    fn widened_staging_window_reaches_rtm051() {
        let ts = TaskSet::from_tasks(vec![overlapped(
            "a",
            2_000_000,
            &[
                (200_000, 256),
                (200_000, 256),
                (200_000, 256),
                (200_000, 256),
            ],
        )]);
        let mut cfg = config(2_000_000);
        cfg.staging_window = 3;
        let out = explore(&ts, &bare_platform(), &cfg, &ExploreLimits::default());
        assert_eq!(out.findings.len(), 1);
        assert_eq!(out.findings[0].rule, Rule::Rtm051);
        let w = out.witness.expect("witness");
        let replay = w.replay();
        assert!(!replay.races.is_empty());
        assert_eq!(replay.races[0].at.get(), w.at);
    }

    #[test]
    fn insufficient_retry_budget_is_rtm052() {
        // One fetch-heavy task whose deadline only holds when no
        // transfer faults: each injected fault re-issues a 4096-cycle
        // transfer, and two of them push the job past its deadline.
        let ts = TaskSet::from_tasks(vec![overlapped(
            "a",
            40_000,
            &[(1_000, 4_096), (1_000, 4_096), (1_000, 4_096)],
        )]);
        let mut cfg = config(40_000);
        cfg.fault = FaultPlan {
            seed: 0,
            dma_fault_rate_ppm: 1,
            max_retries: 3,
            jitter_max_cycles: 0,
        };
        let out = explore(&ts, &bare_platform(), &cfg, &ExploreLimits::default());
        assert_eq!(out.findings.len(), 1, "findings: {:?}", out.findings);
        assert_eq!(out.findings[0].rule, Rule::Rtm052);
        let w = out.witness.expect("witness");
        assert!(w
            .script
            .iter()
            .any(|s| s.value == Choice::TransferFault(true)));
        let replay = w.replay();
        assert!(replay
            .trace
            .events()
            .iter()
            .any(|e| matches!(e.kind, TraceKind::DeadlineMissed { .. })));
    }

    #[test]
    fn tiny_budget_is_inconclusive_not_safe() {
        let ts = TaskSet::from_tasks(vec![
            resident("a", 1_000, 1_000, 200),
            resident("b", 1_500, 1_500, 300),
        ]);
        let mut cfg = config(30_000);
        cfg.exec_scale_min_ppm = 400_000;
        let limits = ExploreLimits {
            max_states: 3,
            jitter_max_cycles: 100,
            ..ExploreLimits::default()
        };
        let out = explore(&ts, &bare_platform(), &cfg, &limits);
        assert!(!out.stats.complete);
        assert_eq!(out.findings.len(), 1);
        assert_eq!(out.findings[0].rule, Rule::Rtm053);
        assert!(!out.proven_safe());
    }

    #[test]
    fn safe_verdict_requires_no_unexplored_branches() {
        // An empty task set explores trivially and completely.
        let out = explore(
            &TaskSet::new(),
            &bare_platform(),
            &config(1_000),
            &ExploreLimits::default(),
        );
        assert!(out.proven_safe());
        assert_eq!(out.stats.runs, 1);
        assert_eq!(out.stats.states, 0);
    }

    /// Renders an outcome into one comparable blob: findings, witness
    /// JSON, and counters. Byte-equality of these blobs is the cross-
    /// strategy / cross-thread-count contract.
    fn fingerprint(out: &ExploreOutcome) -> String {
        let findings: Vec<String> = out
            .findings
            .iter()
            .map(|f| format!("{:?}|{}|{:?}", f.rule, f.message, f.task))
            .collect();
        let witness = out
            .witness
            .as_ref()
            .map(|w| serde_json::to_string(w).expect("witness serializes"));
        format!("{findings:?}\n{witness:?}\n{:?}", out.stats)
    }

    fn strategy_outcomes(
        ts: &TaskSet,
        cfg: &SimConfig,
        limits: &ExploreLimits,
    ) -> (ExploreOutcome, ExploreOutcome) {
        let forked = explore(
            ts,
            &bare_platform(),
            cfg,
            &ExploreLimits {
                strategy: ExploreStrategy::Fork,
                ..*limits
            },
        );
        let replayed = explore(
            ts,
            &bare_platform(),
            cfg,
            &ExploreLimits {
                strategy: ExploreStrategy::Replay,
                ..*limits
            },
        );
        (forked, replayed)
    }

    #[test]
    fn fork_and_replay_agree_on_a_safe_space() {
        let ts = TaskSet::from_tasks(vec![
            resident("a", 1_000, 1_000, 200),
            resident("b", 2_000, 2_000, 400),
        ]);
        let mut cfg = config(4_000);
        cfg.exec_scale_min_ppm = 500_000;
        let limits = ExploreLimits {
            max_states: 10_000,
            jitter_max_cycles: 100,
            ..ExploreLimits::default()
        };
        let (forked, replayed) = strategy_outcomes(&ts, &cfg, &limits);
        assert!(forked.proven_safe());
        assert_eq!(fingerprint(&forked), fingerprint(&replayed));
    }

    #[test]
    fn fork_and_replay_agree_on_a_violation_and_its_witness() {
        let ts = TaskSet::from_tasks(vec![resident("t", 2_000, 1_000, 600)]);
        let cfg = config(8_000);
        let limits = ExploreLimits {
            max_states: 10_000,
            jitter_max_cycles: 500,
            ..ExploreLimits::default()
        };
        let (forked, replayed) = strategy_outcomes(&ts, &cfg, &limits);
        assert_eq!(forked.findings.len(), 1);
        assert_eq!(fingerprint(&forked), fingerprint(&replayed));
    }

    #[test]
    fn fork_and_replay_agree_under_fault_exploration() {
        let ts = TaskSet::from_tasks(vec![overlapped(
            "a",
            40_000,
            &[(1_000, 4_096), (1_000, 4_096), (1_000, 4_096)],
        )]);
        let mut cfg = config(40_000);
        cfg.fault = FaultPlan {
            seed: 0,
            dma_fault_rate_ppm: 1,
            max_retries: 3,
            jitter_max_cycles: 0,
        };
        let (forked, replayed) = strategy_outcomes(&ts, &cfg, &limits_default());
        assert_eq!(forked.findings[0].rule, Rule::Rtm052);
        assert_eq!(fingerprint(&forked), fingerprint(&replayed));
    }

    fn limits_default() -> ExploreLimits {
        ExploreLimits::default()
    }

    #[test]
    fn deep_first_order_preserves_the_verdict_and_strategy_identity() {
        // The order changes run/transition counters (which branch pops
        // next), never the safety verdict of a completed search — and
        // fork-versus-replay byte-identity must hold within the order.
        let ts = TaskSet::from_tasks(vec![
            resident("a", 1_000, 1_000, 200),
            resident("b", 2_000, 2_000, 400),
        ]);
        let mut cfg = config(4_000);
        cfg.exec_scale_min_ppm = 500_000;
        let shallow = ExploreLimits {
            max_states: 10_000,
            jitter_max_cycles: 100,
            ..ExploreLimits::default()
        };
        let deep = ExploreLimits {
            order: ExploreOrder::DeepFirst,
            ..shallow
        };
        let (s_fork, s_replay) = strategy_outcomes(&ts, &cfg, &shallow);
        let (d_fork, d_replay) = strategy_outcomes(&ts, &cfg, &deep);
        assert!(s_fork.proven_safe());
        assert!(d_fork.proven_safe());
        // Both orders cover the same lattice.
        assert_eq!(s_fork.stats.states, d_fork.stats.states);
        assert_eq!(fingerprint(&s_fork), fingerprint(&s_replay));
        assert_eq!(fingerprint(&d_fork), fingerprint(&d_replay));
    }

    #[test]
    fn outcomes_are_byte_identical_at_any_thread_count() {
        let ts = TaskSet::from_tasks(vec![
            resident("a", 1_000, 1_000, 200),
            resident("b", 1_500, 1_500, 300),
            resident("c", 3_000, 3_000, 250),
        ]);
        let mut cfg = config(6_000);
        cfg.exec_scale_min_ppm = 500_000;
        for strategy in [ExploreStrategy::Fork, ExploreStrategy::Replay] {
            let runs: Vec<String> = [1usize, 2, 8]
                .iter()
                .map(|&threads| {
                    let out = explore(
                        &ts,
                        &bare_platform(),
                        &cfg,
                        &ExploreLimits {
                            max_states: 10_000,
                            jitter_max_cycles: 100,
                            strategy,
                            threads,
                            ..ExploreLimits::default()
                        },
                    );
                    fingerprint(&out)
                })
                .collect();
            assert_eq!(runs[0], runs[1], "{strategy:?}: 1 vs 2 threads");
            assert_eq!(runs[0], runs[2], "{strategy:?}: 1 vs 8 threads");
        }
    }

    #[test]
    fn budget_cut_is_identical_across_strategies_and_threads() {
        // The RTM053 message embeds states, runs, and the residual
        // stack depth — all three must survive forking and speculation.
        let ts = TaskSet::from_tasks(vec![
            resident("a", 1_000, 1_000, 200),
            resident("b", 1_500, 1_500, 300),
        ]);
        let mut cfg = config(30_000);
        cfg.exec_scale_min_ppm = 400_000;
        let mut blobs = Vec::new();
        for strategy in [ExploreStrategy::Fork, ExploreStrategy::Replay] {
            for threads in [1usize, 8] {
                let out = explore(
                    &ts,
                    &bare_platform(),
                    &cfg,
                    &ExploreLimits {
                        max_states: 3,
                        jitter_max_cycles: 100,
                        strategy,
                        threads,
                        ..ExploreLimits::default()
                    },
                );
                assert_eq!(out.findings[0].rule, Rule::Rtm053);
                blobs.push(fingerprint(&out));
            }
        }
        assert!(blobs.windows(2).all(|w| w[0] == w[1]));
    }
}
