//! The bounded exhaustive schedule-space explorer (`RTM050`–`RTM053`).
//!
//! Where every other pass in this crate reasons *analytically*, this one
//! reasons *operationally*: it enumerates every interleaving of the
//! simulator's nondeterministic choices — per-job execution times over
//! `[BCET, WCET]` endpoints, release jitter, and per-transfer fault
//! injection up to the retry budget — and proves either that no
//! reachable interleaving misses a deadline or races the double buffer,
//! or produces a concrete violating path as a replayable [`Witness`].
//!
//! The transition function is not a model of the scheduler: it *is* the
//! scheduler, driven through the
//! [`SimOracle`](rtmdm_sched::script::SimOracle) hook. That makes every
//! counterexample exact by construction — replaying the witness script
//! through [`simulate_with_oracle`] reproduces the violating run byte
//! for byte on either engine.
//!
//! Search is stateless depth-first over forced-choice prefixes, with
//! converging interleavings merged through the canonical state
//! fingerprint (see [`crate::state`]). The search is bounded: when the
//! state budget is hit, the verdict is `RTM053` — explicitly
//! inconclusive, never silently safe.

use rtmdm_mcusim::{Cycles, JobId, PlatformConfig, TaskId, TraceKind};
use rtmdm_obs::attribute;
use rtmdm_sched::script::{Choice, ScriptedChoice};
use rtmdm_sched::sim::{simulate_with_oracle, RaceKind, SimConfig, SimResult};
use rtmdm_sched::TaskSet;

use crate::diag::{Finding, Rule};
use crate::state::WITNESS_SCHEMA;
use crate::state::{ChoiceRecord, Domains, ExploreStats, PathOracle, VisitedSet, Witness};

/// Exploration bounds and the extra nondeterminism dimensions that have
/// no [`SimConfig`] field of their own.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExploreLimits {
    /// Budget on distinct canonical `(state, choice-point)` pairs; when
    /// exceeded the verdict is `RTM053` (inconclusive).
    pub max_states: usize,
    /// Upper endpoint of the release-jitter dimension, in cycles; zero
    /// keeps arrivals strictly periodic.
    pub jitter_max_cycles: u64,
}

impl Default for ExploreLimits {
    fn default() -> ExploreLimits {
        ExploreLimits {
            max_states: 20_000,
            jitter_max_cycles: 0,
        }
    }
}

/// What one exploration concluded.
#[derive(Debug, Clone)]
pub struct ExploreOutcome {
    /// Zero findings = proven safe over the explored lattice; `RTM050`/
    /// `RTM051`/`RTM052` = violation reached; `RTM053` = budget hit.
    pub findings: Vec<Finding>,
    /// The replayable counterexample behind a violation finding.
    pub witness: Option<Witness>,
    /// Search counters (also reported by `rtmdm check --explore`).
    pub stats: ExploreStats,
}

impl ExploreOutcome {
    /// Whether exploration covered the space and found nothing.
    pub fn proven_safe(&self) -> bool {
        self.findings.is_empty() && self.stats.complete
    }
}

/// The violating event of one explored run, before rule classification.
#[derive(Debug, Clone, Copy)]
struct RawViolation {
    at: Cycles,
    task: usize,
    job: u64,
    race: Option<(usize, usize, RaceKind)>,
}

/// Explores the schedule space of `ts` on `platform` exhaustively over
/// the choice lattice induced by `base` and `limits`, up to
/// `base.horizon`.
///
/// `base` supplies the scheduling policy, dispatch discipline, staging
/// window, horizon, and the fault environment (a zero
/// `dma_fault_rate_ppm` disables the fault dimension; a nonzero rate
/// enables it — the rate itself is ignored, since the explorer decides
/// each fault outcome, honoring only `max_retries`). Attribution is
/// forced on so a violating run decomposes into blame terms.
///
/// Returns zero findings only when the entire bounded lattice was
/// covered without reaching a violation.
pub fn explore(
    ts: &TaskSet,
    platform: &PlatformConfig,
    base: &SimConfig,
    limits: &ExploreLimits,
) -> ExploreOutcome {
    let mut cfg = base.clone();
    cfg.attribution = true;
    let domains = Domains {
        exec_scale_min_ppm: cfg.exec_scale_min_ppm,
        jitter_max_cycles: limits.jitter_max_cycles,
        explore_faults: cfg.fault.dma_fault_rate_ppm > 0,
    };
    let mut visited = VisitedSet::new();
    let mut stats = ExploreStats::default();
    let mut stack: Vec<Vec<Choice>> = vec![Vec::new()];
    // Each scheduled branch is an untaken alternative of a novel pair,
    // so runs are bounded by states; the cap is a backstop only.
    let run_cap = limits.max_states.saturating_mul(2).saturating_add(1);
    let mut exhausted = false;

    while let Some(prefix) = stack.pop() {
        if visited.len() >= limits.max_states || stats.runs >= run_cap {
            exhausted = true;
            break;
        }
        let mut oracle = PathOracle::new(prefix, &domains, &mut visited);
        let result = simulate_with_oracle(ts, platform, &cfg, &mut oracle);
        let log = std::mem::take(&mut oracle.log);
        drop(oracle);
        stats.runs += 1;
        stats.transitions += log.len() as u64;

        if let Some(raw) = first_violation(&result) {
            stats.states = visited.len();
            return violation_outcome(ts, platform, &cfg, &result, &log, raw, stats);
        }
        // Deepest branch points first keeps the stack depth-first.
        for i in (0..log.len()).rev() {
            for &alt in &log[i].alternatives {
                let mut branch: Vec<Choice> = log[..i].iter().map(|r| r.chosen).collect();
                branch.push(alt);
                stack.push(branch);
            }
        }
    }

    stats.states = visited.len();
    stats.complete = !exhausted;
    let mut findings = Vec::new();
    if exhausted {
        findings.push(Finding::new(
            Rule::Rtm053,
            format!(
                "exploration budget exceeded ({} states, {} runs, {} unexplored branches): \
                 the verdict is inconclusive, not safe — raise --max-states to cover the space",
                stats.states,
                stats.runs,
                stack.len(),
            ),
        ));
    }
    ExploreOutcome {
        findings,
        witness: None,
        stats,
    }
}

/// The chronologically first violating event of a run: a staging race
/// or a deadline miss, races winning ties (they are structural).
fn first_violation(result: &SimResult) -> Option<RawViolation> {
    let race = result.races.first().map(|r| RawViolation {
        at: r.at,
        task: r.task,
        job: r.job,
        race: Some((r.write_seg, r.clobbered_seg, r.kind)),
    });
    let miss = result.trace.events().iter().find_map(|e| match e.kind {
        TraceKind::DeadlineMissed { task, job } => Some(RawViolation {
            at: e.time,
            task: task.0,
            job: job.0,
            race: None,
        }),
        _ => None,
    });
    match (race, miss) {
        (Some(r), Some(m)) if m.at < r.at => Some(m),
        (Some(r), _) => Some(r),
        (None, m) => m,
    }
}

/// Builds the finding and witness for a violating run.
fn violation_outcome(
    ts: &TaskSet,
    platform: &PlatformConfig,
    cfg: &SimConfig,
    result: &SimResult,
    log: &[ChoiceRecord],
    raw: RawViolation,
    stats: ExploreStats,
) -> ExploreOutcome {
    let name = &ts.tasks()[raw.task].name;
    let forced_faults = log
        .iter()
        .filter(|r| r.chosen == Choice::TransferFault(true))
        .count();
    let (rule, message) = match raw.race {
        Some((write, clobbered, kind)) => (
            Rule::Rtm051,
            format!(
                "a double-buffer staging race is reachable at cycle {}: the DMA writes \
                 segment {write} over {} segment {clobbered} of job {} \
                 (staging window {}, {} runs, {} states explored)",
                raw.at.get(),
                match kind {
                    RaceKind::CpuRead => "the CPU-read",
                    RaceKind::StagedUnconsumed => "staged-unconsumed",
                },
                raw.job,
                cfg.staging_window,
                stats.runs,
                stats.states,
            ),
        ),
        None if forced_faults > 0 => (
            Rule::Rtm052,
            format!(
                "the DMA retry budget (max_retries = {}) is insufficient: job {} misses \
                 its deadline at cycle {} on a path with {forced_faults} injected fault(s) \
                 ({} runs, {} states explored)",
                cfg.fault.max_retries,
                raw.job,
                raw.at.get(),
                stats.runs,
                stats.states,
            ),
        ),
        None => (
            Rule::Rtm050,
            format!(
                "a deadline miss is reachable: job {} misses at cycle {} under an \
                 admissible interleaving ({} runs, {} states explored)",
                raw.job,
                raw.at.get(),
                stats.runs,
                stats.states,
            ),
        ),
    };
    let dominant_blame = attribute(&result.trace).ok().and_then(|report| {
        report
            .jobs
            .iter()
            .find(|j| j.task == TaskId(raw.task) && j.job == JobId(raw.job))
            .and_then(|j| j.dominant_interference())
            .map(|(src, _)| src.to_string())
    });
    let witness = Witness {
        schema: WITNESS_SCHEMA.to_owned(),
        rule: rule.id().to_owned(),
        task: raw.task,
        job: raw.job,
        at: raw.at.get(),
        dominant_blame,
        task_set: ts.clone(),
        platform: platform.clone(),
        config: cfg.clone(),
        script: log
            .iter()
            .map(|r| ScriptedChoice {
                point: r.point,
                value: r.chosen,
            })
            .collect(),
    };
    ExploreOutcome {
        findings: vec![Finding::new(rule, message).with_task(name.clone())],
        witness: Some(witness),
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtmdm_mcusim::{ContentionModel, FaultPlan};
    use rtmdm_sched::sim::{Engine, Policy};
    use rtmdm_sched::{Segment, SporadicTask, StagingMode};

    fn cy(n: u64) -> Cycles {
        Cycles::new(n)
    }

    fn bare_platform() -> PlatformConfig {
        let mut p = PlatformConfig::stm32f746_qspi();
        p.contention = ContentionModel::NONE;
        p.context_switch_cycles = Cycles::ZERO;
        p.ext_mem.setup_cycles = Cycles::ZERO;
        p.ext_mem.cycles_per_byte_num = 1;
        p.ext_mem.cycles_per_byte_den = 1;
        p
    }

    fn resident(name: &str, period: u64, deadline: u64, compute: u64) -> SporadicTask {
        SporadicTask::new(
            name,
            cy(period),
            cy(deadline),
            vec![Segment::new(cy(compute), 0)],
            StagingMode::Resident,
        )
        .expect("valid task")
    }

    fn overlapped(name: &str, period: u64, segs: &[(u64, u64)]) -> SporadicTask {
        SporadicTask::new(
            name,
            cy(period),
            cy(period),
            segs.iter().map(|&(c, b)| Segment::new(cy(c), b)).collect(),
            StagingMode::Overlapped,
        )
        .expect("valid task")
    }

    fn config(horizon: u64) -> SimConfig {
        SimConfig {
            horizon: cy(horizon),
            policy: Policy::FixedPriority,
            exec_scale_min_ppm: 1_000_000,
            seed: 0,
            work_conserving: false,
            fault: FaultPlan::NONE,
            engine: Engine::Des,
            attribution: false,
            staging_window: 2,
        }
    }

    #[test]
    fn feasible_set_is_proven_safe() {
        let ts = TaskSet::from_tasks(vec![
            resident("a", 1_000, 1_000, 200),
            resident("b", 2_000, 2_000, 400),
        ]);
        let mut cfg = config(4_000);
        cfg.exec_scale_min_ppm = 500_000;
        let limits = ExploreLimits {
            max_states: 10_000,
            jitter_max_cycles: 100,
        };
        let out = explore(&ts, &bare_platform(), &cfg, &limits);
        assert!(out.proven_safe(), "findings: {:?}", out.findings);
        assert!(out.witness.is_none());
        assert!(out.stats.runs > 1, "jitter/scale dimensions must branch");
    }

    #[test]
    fn jitter_reachable_miss_is_found_with_replayable_witness() {
        // Feasible when periodic: 600 compute in a 1000 deadline. A
        // 500-cycle jitter on the release pushes completion past the
        // anchored deadline.
        let ts = TaskSet::from_tasks(vec![resident("t", 2_000, 1_000, 600)]);
        let cfg = config(8_000);
        let limits = ExploreLimits {
            max_states: 10_000,
            jitter_max_cycles: 500,
        };
        let out = explore(&ts, &bare_platform(), &cfg, &limits);
        assert_eq!(out.findings.len(), 1);
        assert_eq!(out.findings[0].rule, Rule::Rtm050);
        let w = out.witness.expect("violation carries a witness");
        assert_eq!(w.rule, "RTM050");
        let replay = w.replay();
        let miss = replay
            .trace
            .events()
            .iter()
            .find(|e| matches!(e.kind, TraceKind::DeadlineMissed { .. }))
            .expect("replay reproduces the miss");
        assert_eq!(miss.time.get(), w.at, "predicted == replayed instant");
    }

    #[test]
    fn widened_staging_window_reaches_rtm051() {
        let ts = TaskSet::from_tasks(vec![overlapped(
            "a",
            2_000_000,
            &[
                (200_000, 256),
                (200_000, 256),
                (200_000, 256),
                (200_000, 256),
            ],
        )]);
        let mut cfg = config(2_000_000);
        cfg.staging_window = 3;
        let out = explore(&ts, &bare_platform(), &cfg, &ExploreLimits::default());
        assert_eq!(out.findings.len(), 1);
        assert_eq!(out.findings[0].rule, Rule::Rtm051);
        let w = out.witness.expect("witness");
        let replay = w.replay();
        assert!(!replay.races.is_empty());
        assert_eq!(replay.races[0].at.get(), w.at);
    }

    #[test]
    fn insufficient_retry_budget_is_rtm052() {
        // One fetch-heavy task whose deadline only holds when no
        // transfer faults: each injected fault re-issues a 4096-cycle
        // transfer, and two of them push the job past its deadline.
        let ts = TaskSet::from_tasks(vec![overlapped(
            "a",
            40_000,
            &[(1_000, 4_096), (1_000, 4_096), (1_000, 4_096)],
        )]);
        let mut cfg = config(40_000);
        cfg.fault = FaultPlan {
            seed: 0,
            dma_fault_rate_ppm: 1,
            max_retries: 3,
            jitter_max_cycles: 0,
        };
        let out = explore(&ts, &bare_platform(), &cfg, &ExploreLimits::default());
        assert_eq!(out.findings.len(), 1, "findings: {:?}", out.findings);
        assert_eq!(out.findings[0].rule, Rule::Rtm052);
        let w = out.witness.expect("witness");
        assert!(w
            .script
            .iter()
            .any(|s| s.value == Choice::TransferFault(true)));
        let replay = w.replay();
        assert!(replay
            .trace
            .events()
            .iter()
            .any(|e| matches!(e.kind, TraceKind::DeadlineMissed { .. })));
    }

    #[test]
    fn tiny_budget_is_inconclusive_not_safe() {
        let ts = TaskSet::from_tasks(vec![
            resident("a", 1_000, 1_000, 200),
            resident("b", 1_500, 1_500, 300),
        ]);
        let mut cfg = config(30_000);
        cfg.exec_scale_min_ppm = 400_000;
        let limits = ExploreLimits {
            max_states: 3,
            jitter_max_cycles: 100,
        };
        let out = explore(&ts, &bare_platform(), &cfg, &limits);
        assert!(!out.stats.complete);
        assert_eq!(out.findings.len(), 1);
        assert_eq!(out.findings[0].rule, Rule::Rtm053);
        assert!(!out.proven_safe());
    }

    #[test]
    fn safe_verdict_requires_no_unexplored_branches() {
        // An empty task set explores trivially and completely.
        let out = explore(
            &TaskSet::new(),
            &bare_platform(),
            &config(1_000),
            &ExploreLimits::default(),
        );
        assert!(out.proven_safe());
        assert_eq!(out.stats.runs, 1);
        assert_eq!(out.stats.states, 0);
    }
}
