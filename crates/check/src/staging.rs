//! Staging race / aliasing detection (`RTM001`–`RTM004`).
//!
//! Under RT-MDM's overlapped staging, a task's weight area is a double
//! buffer of two `buffer_bytes` halves: fetch group `g` streams into
//! half `g mod 2` while the CPU computes group `g − 1` out of the other
//! half, and the fetch of group `g` may only begin once the compute of
//! group `g − 2` has retired its half (the simulator's two-ahead
//! window). [`staging_races`] reconstructs that isolated pipeline
//! schedule from a [`ModelSegmentation`] — per-group DMA-write windows
//! and per-segment CPU-read windows, each tagged with the byte region
//! it touches — and reports every pair where a write window overlaps a
//! read window of intersecting bytes.
//!
//! For a well-formed plan no such pair exists: the window discipline
//! keeps same-half groups temporally disjoint and opposite halves are
//! spatially disjoint. A race therefore implies a spatial violation —
//! in practice a fetch that overruns its declared half (`RTM001`) and
//! thereby spills into the half the previous group is still reading
//! (`RTM002`).
//!
//! [`check_sram_regions`] covers the arena level: the planned weight
//! ping/pong and activation regions must be pairwise disjoint
//! (`RTM003`) and inside the platform's SRAM (`RTM004`).

use rtmdm_mcusim::PlatformConfig;
use rtmdm_xmem::ModelSegmentation;

use crate::diag::{Finding, Rule};

/// A statically detected staging race: a DMA write temporally
/// overlapping a CPU read of the same staging bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StagingRace {
    /// Segment whose fetch performs the offending DMA write.
    pub write_segment: usize,
    /// Segment whose compute reads the overlapped bytes.
    pub read_segment: usize,
    /// DMA-write window in cycles, half-open.
    pub write_window: (u64, u64),
    /// CPU-read window in cycles, half-open.
    pub read_window: (u64, u64),
    /// Overlapping byte range within the double-buffer area, half-open.
    pub region: (u64, u64),
}

/// One fetch group: a segment with a (possibly zero-byte) fetch plus
/// the zero-fetch continuation slices that reuse its weights.
struct Group {
    first_seg: usize,
    bytes: u64,
    /// `(segment index, inflated compute cycles)` in execution order.
    computes: Vec<(usize, u64)>,
}

fn groups_of(plan: &ModelSegmentation, platform: &PlatformConfig) -> Vec<Group> {
    let mut groups: Vec<Group> = Vec::new();
    for (i, s) in plan.segments.iter().enumerate() {
        let cpu = platform.contention.inflate_cpu(s.compute_cycles).get();
        match groups.last_mut() {
            Some(last) if s.fetch_bytes == 0 => last.computes.push((i, cpu)),
            _ => groups.push(Group {
                first_seg: i,
                bytes: s.fetch_bytes,
                computes: vec![(i, cpu)],
            }),
        }
    }
    groups
}

/// Computes every staging race in `plan`'s isolated double-buffered
/// pipeline on `platform`. Empty for well-formed plans.
pub fn staging_races(plan: &ModelSegmentation, platform: &PlatformConfig) -> Vec<StagingRace> {
    let buffer = plan.buffer_bytes;
    if buffer == 0 {
        // Unrealizable plan; flagged RTM012 by the plan pass.
        return Vec::new();
    }
    let groups = groups_of(plan, platform);

    // Isolated pipeline schedule under the two-ahead window: fetch g
    // starts once the DMA is free and compute g−2 has retired its half;
    // compute g starts once its fetch and compute g−1 are done.
    let mut fetch_windows: Vec<(u64, u64)> = Vec::with_capacity(groups.len());
    let mut compute_windows: Vec<Vec<(usize, (u64, u64))>> = Vec::with_capacity(groups.len());
    let mut group_compute_end: Vec<u64> = Vec::with_capacity(groups.len());
    let mut dma_free = 0u64;
    for (g, grp) in groups.iter().enumerate() {
        let dma = if grp.bytes == 0 {
            0
        } else {
            platform
                .contention
                .inflate_dma(platform.ext_mem.transfer_cycles(grp.bytes))
                .get()
        };
        let gate = if g >= 2 { group_compute_end[g - 2] } else { 0 };
        let fs = dma_free.max(gate);
        let fe = fs.saturating_add(dma);
        dma_free = fe;
        fetch_windows.push((fs, fe));
        let mut t = fe.max(if g >= 1 { group_compute_end[g - 1] } else { 0 });
        let mut windows = Vec::with_capacity(grp.computes.len());
        for &(seg, c) in &grp.computes {
            windows.push((seg, (t, t.saturating_add(c))));
            t = t.saturating_add(c);
        }
        compute_windows.push(windows);
        group_compute_end.push(t);
    }

    // A group's byte region within the [0, 2·buffer) staging area; an
    // overrun extends past its half into the other one.
    let region = |g: usize| {
        let off = (g as u64 % 2) * buffer;
        (off, off.saturating_add(groups[g].bytes))
    };

    let mut races = Vec::new();
    for g in 0..groups.len() {
        if groups[g].bytes == 0 {
            continue;
        }
        let (w0, w1) = region(g);
        for (h, windows) in compute_windows.iter().enumerate() {
            if h == g || groups[h].bytes == 0 {
                continue;
            }
            let (r0, r1) = region(h);
            let (o0, o1) = (w0.max(r0), w1.min(r1));
            if o0 >= o1 {
                continue;
            }
            let (f0, f1) = fetch_windows[g];
            for &(seg, (c0, c1)) in windows {
                if f0 < c1 && c0 < f1 {
                    races.push(StagingRace {
                        write_segment: groups[g].first_seg,
                        read_segment: seg,
                        write_window: (f0, f1),
                        read_window: (c0, c1),
                        region: (o0, o1),
                    });
                    break; // one race per (writer, reader-group) pair
                }
            }
        }
    }
    races
}

/// The staging pass: double-buffer overruns (`RTM001`) and DMA/CPU
/// staging races (`RTM002`) of one overlapped-prefetch plan.
pub fn check_staging(plan: &ModelSegmentation, platform: &PlatformConfig) -> Vec<Finding> {
    let mut out = Vec::new();
    if plan.buffer_bytes > 0 {
        for (i, s) in plan.segments.iter().enumerate() {
            if s.fetch_bytes > plan.buffer_bytes {
                out.push(
                    Finding::new(
                        Rule::Rtm001,
                        format!(
                            "fetch of {} B overruns the {} B double-buffer half by {} B",
                            s.fetch_bytes,
                            plan.buffer_bytes,
                            s.fetch_bytes - plan.buffer_bytes
                        ),
                    )
                    .with_model(plan.model.clone())
                    .with_segment(i),
                );
            }
        }
    }
    for race in staging_races(plan, platform) {
        out.push(
            Finding::new(
                Rule::Rtm002,
                format!(
                    "DMA write for segment {} (cycles {}..{}) overlaps CPU reads of segment {} \
                     (cycles {}..{}) over staging bytes {}..{}",
                    race.write_segment,
                    race.write_window.0,
                    race.write_window.1,
                    race.read_segment,
                    race.read_window.0,
                    race.read_window.1,
                    race.region.0,
                    race.region.1
                ),
            )
            .with_model(plan.model.clone())
            .with_segment(race.write_segment),
        );
    }
    out
}

/// One planned SRAM region, as placed by the arena allocator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SramRegion {
    /// Region label (e.g. `kws-weights`, `kws-activations`).
    pub label: String,
    /// Byte offset within SRAM.
    pub offset: u64,
    /// Region size in bytes.
    pub bytes: u64,
}

impl SramRegion {
    /// Creates a region record.
    pub fn new(label: impl Into<String>, offset: u64, bytes: u64) -> SramRegion {
        SramRegion {
            label: label.into(),
            offset,
            bytes,
        }
    }
}

/// The arena-level aliasing pass: planned regions must be pairwise
/// disjoint (`RTM003`) and end inside the platform's SRAM (`RTM004`).
pub fn check_sram_regions(regions: &[SramRegion], sram_bytes: u64) -> Vec<Finding> {
    let mut out = Vec::new();
    for (i, a) in regions.iter().enumerate() {
        for b in &regions[i + 1..] {
            let o0 = a.offset.max(b.offset);
            let o1 = (a.offset + a.bytes).min(b.offset + b.bytes);
            if o0 < o1 {
                out.push(Finding::new(
                    Rule::Rtm003,
                    format!(
                        "SRAM region `{}` ({}..{}) aliases `{}` ({}..{})",
                        a.label,
                        a.offset,
                        a.offset + a.bytes,
                        b.label,
                        b.offset,
                        b.offset + b.bytes
                    ),
                ));
            }
        }
    }
    let high_water = regions
        .iter()
        .map(|r| r.offset + r.bytes)
        .max()
        .unwrap_or(0);
    if high_water > sram_bytes {
        out.push(Finding::new(
            Rule::Rtm004,
            format!("SRAM plan ends at {high_water} B but the platform has {sram_bytes} B"),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtmdm_dnn::{zoo, CostModel};
    use rtmdm_xmem::segment_model;

    fn platform() -> PlatformConfig {
        PlatformConfig::stm32f746_qspi()
    }

    fn clean_plan() -> ModelSegmentation {
        let model = zoo::ds_cnn();
        let plan = segment_model(&model, &CostModel::cmsis_nn_m7(), 8 * 1024).expect("plan");
        assert!(plan.segments.len() >= 2, "fixture must be multi-segment");
        plan
    }

    #[test]
    fn well_formed_plans_have_no_races() {
        let plan = clean_plan();
        assert!(staging_races(&plan, &platform()).is_empty());
        assert!(check_staging(&plan, &platform()).is_empty());
    }

    #[test]
    fn rtm001_fires_once_on_a_single_overrunning_fetch() {
        let mut plan = clean_plan();
        // Shrink the declared half so exactly the largest fetch overruns.
        let max = plan
            .segments
            .iter()
            .map(|s| s.fetch_bytes)
            .max()
            .unwrap_or(0);
        assert!(
            plan.segments
                .iter()
                .filter(|s| s.fetch_bytes == max)
                .count()
                == 1
        );
        plan.buffer_bytes = max - 1;
        let overruns: Vec<_> = check_staging(&plan, &platform())
            .into_iter()
            .filter(|f| f.rule == Rule::Rtm001)
            .collect();
        assert_eq!(overruns.len(), 1, "{overruns:?}");
        assert!(overruns[0].message.contains("overruns"));
    }

    #[test]
    fn rtm002_fires_when_an_overrun_spills_into_the_live_half() {
        // Three-segment plan: segment 2's fetch is larger than the half,
        // so its DMA write into half 0 spills over into half 1 while the
        // CPU is still computing segment 1 out of it.
        let seg = |index, fetch_bytes| rtmdm_xmem::SegmentPlan {
            index,
            first_layer: index,
            last_layer: index,
            fetch_bytes,
            compute_cycles: rtmdm_mcusim::Cycles::new(100_000),
        };
        let plan = ModelSegmentation {
            model: "synthetic".to_owned(),
            buffer_bytes: 1024,
            segments: vec![seg(0, 512), seg(1, 512), seg(2, 1536)],
        };
        let races = staging_races(&plan, &platform());
        assert_eq!(races.len(), 1, "{races:?}");
        assert_eq!(races[0].write_segment, 2);
        assert_eq!(races[0].read_segment, 1);
        let rtm002 = check_staging(&plan, &platform())
            .into_iter()
            .filter(|f| f.rule == Rule::Rtm002)
            .count();
        assert_eq!(rtm002, 1);
    }

    #[test]
    fn tiled_continuations_do_not_race() {
        let model = zoo::resnet8();
        let cap = rtmdm_mcusim::Cycles::new(500_000);
        let plan =
            rtmdm_xmem::segment_model_tiled(&model, &CostModel::cmsis_nn_m7(), 64 * 1024, cap)
                .expect("tiled plan");
        assert!(
            plan.segments.iter().any(|s| s.fetch_bytes == 0),
            "has continuations"
        );
        assert!(check_staging(&plan, &platform()).is_empty());
    }

    #[test]
    fn rtm003_fires_once_on_one_aliased_pair() {
        let regions = vec![
            SramRegion::new("runtime-reserve", 0, 8192),
            SramRegion::new("kws-weights", 8192, 4096),
            SramRegion::new("kws-activations", 10_000, 1024),
        ];
        let findings = check_sram_regions(&regions, 1 << 20);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].rule, Rule::Rtm003);
        assert!(findings[0].message.contains("kws-weights"));
    }

    #[test]
    fn rtm004_fires_once_when_the_plan_exceeds_sram() {
        let regions = vec![
            SramRegion::new("runtime-reserve", 0, 8192),
            SramRegion::new("vww-weights", 8192, 120 * 1024),
        ];
        let findings = check_sram_regions(&regions, 64 * 1024);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].rule, Rule::Rtm004);
    }
}
