//! ASCII Gantt rendering of a [`Timeline`].
//!
//! One row per task (`#` = computing), one aggregate CPU row, and one
//! DMA row (`=` = streaming), all over the same `[0, horizon)` axis so
//! stalls and overlap line up visually. Intended for terminals and
//! docs, not for parsing.

use std::fmt::Write as _;

use rtmdm_mcusim::Cycles;

use crate::timeline::Timeline;

/// Renders `timeline` as an ASCII Gantt chart `width` columns wide.
///
/// `task_names` labels task rows by index (tasks beyond the slice fall
/// back to `T{k}`).
///
/// # Panics
///
/// Panics if `width` is zero.
///
/// # Examples
///
/// ```rust
/// use rtmdm_mcusim::{Cycles, JobId, SegmentId, TaskId, Trace, TraceKind};
/// use rtmdm_obs::{gantt, Timeline};
///
/// let mut trace = Trace::new();
/// let (t, j, s) = (TaskId(0), JobId(0), SegmentId(0));
/// trace.push(Cycles::new(0), TraceKind::SegmentStarted { task: t, job: j, segment: s });
/// trace.push(Cycles::new(50), TraceKind::SegmentCompleted { task: t, job: j, segment: s });
/// let tl = Timeline::from_trace(&trace, Cycles::new(100));
/// let chart = gantt::render(&tl, 20, &["kws".to_owned()]);
/// assert!(chart.contains("kws"));
/// assert!(chart.contains('#'));
/// ```
pub fn render(timeline: &Timeline, width: usize, task_names: &[String]) -> String {
    assert!(width > 0, "gantt width must be positive");
    let horizon = timeline.horizon();
    let col = |t: Cycles| -> usize {
        if horizon.is_zero() {
            0
        } else {
            ((u128::from(t.get()) * width as u128) / u128::from(horizon.get()))
                .min(width as u128 - 1) as usize
        }
    };
    let paint = |row: &mut [char], start: Cycles, end: Cycles, mark: char| {
        if end <= start {
            return;
        }
        for cell in row
            .iter_mut()
            .take(col(end.saturating_sub(Cycles::new(1))) + 1)
            .skip(col(start))
        {
            *cell = mark;
        }
    };

    let mut labels: Vec<String> = Vec::new();
    let mut rows: Vec<Vec<char>> = Vec::new();

    // Aggregate CPU row, then one row per task, then the DMA row.
    let mut cpu = vec!['.'; width];
    for iv in timeline.cpu_intervals() {
        paint(&mut cpu, iv.start, iv.end, '#');
    }
    labels.push("CPU".to_owned());
    rows.push(cpu);

    for &task in timeline.tasks().keys() {
        let mut row = vec!['.'; width];
        for s in timeline.segments().iter().filter(|s| s.task == task) {
            paint(&mut row, s.start, s.end, '#');
        }
        let label = task_names
            .get(task.0)
            .cloned()
            .unwrap_or_else(|| task.to_string());
        labels.push(label);
        rows.push(row);
    }

    let mut dma = vec!['.'; width];
    for iv in timeline.dma_intervals() {
        paint(&mut dma, iv.start, iv.end, '=');
    }
    labels.push("DMA".to_owned());
    rows.push(dma);

    let pad = labels.iter().map(String::len).max().unwrap_or(3);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:>pad$}  0 .. {} cycles ({} per column)",
        "",
        horizon.get(),
        horizon.get().div_ceil(width as u64),
    );
    for (label, row) in labels.iter().zip(&rows) {
        let _ = writeln!(out, "{label:>pad$} |{}|", row.iter().collect::<String>());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtmdm_mcusim::{JobId, SegmentId, TaskId, Trace, TraceKind};

    fn cy(n: u64) -> Cycles {
        Cycles::new(n)
    }

    fn trace_two_tasks() -> Trace {
        let mut t = Trace::new();
        for (task, start, end) in [(0usize, 0u64, 50u64), (1, 50, 100)] {
            t.push(
                cy(start),
                TraceKind::SegmentStarted {
                    task: TaskId(task),
                    job: JobId(0),
                    segment: SegmentId(0),
                },
            );
            t.push(
                cy(end),
                TraceKind::SegmentCompleted {
                    task: TaskId(task),
                    job: JobId(0),
                    segment: SegmentId(0),
                },
            );
        }
        t.push(
            cy(100),
            TraceKind::FetchStarted {
                task: TaskId(0),
                job: JobId(1),
                segment: SegmentId(0),
                bytes: 64,
            },
        );
        t.push(
            cy(150),
            TraceKind::FetchCompleted {
                task: TaskId(0),
                job: JobId(1),
                segment: SegmentId(0),
            },
        );
        t
    }

    #[test]
    fn renders_cpu_task_and_dma_rows() {
        let tl = Timeline::from_trace(&trace_two_tasks(), cy(200));
        let chart = render(&tl, 40, &["kws".to_owned(), "vww".to_owned()]);
        let lines: Vec<&str> = chart.lines().collect();
        assert_eq!(lines.len(), 5); // header + CPU + 2 tasks + DMA
        assert!(lines[1].trim_start().starts_with("CPU"));
        assert!(lines[2].trim_start().starts_with("kws"));
        assert!(lines[3].trim_start().starts_with("vww"));
        assert!(lines[4].trim_start().starts_with("DMA"));
        assert!(lines[1].contains('#'));
        assert!(lines[4].contains('='));
    }

    #[test]
    fn unnamed_tasks_fall_back_to_ids() {
        let tl = Timeline::from_trace(&trace_two_tasks(), cy(200));
        let chart = render(&tl, 10, &[]);
        assert!(chart.contains("T0"));
        assert!(chart.contains("T1"));
    }

    #[test]
    fn columns_scale_with_time() {
        let tl = Timeline::from_trace(&trace_two_tasks(), cy(200));
        let chart = render(&tl, 4, &[]);
        // Task 0 computes in [0,50) → exactly the first of 4 columns.
        let t0_row = chart
            .lines()
            .find(|l| l.trim_start().starts_with("T0"))
            .expect("row");
        assert!(t0_row.contains("|#...|"), "{chart}");
    }

    #[test]
    #[should_panic(expected = "width must be positive")]
    fn zero_width_panics() {
        let tl = Timeline::from_trace(&Trace::new(), cy(10));
        let _ = render(&tl, 0, &[]);
    }
}
