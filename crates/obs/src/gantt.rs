//! ASCII Gantt rendering of a [`Timeline`].
//!
//! One row per task (`#` = computing), one aggregate CPU row, and one
//! DMA row (`=` = streaming), all over the same `[0, horizon)` axis so
//! stalls and overlap line up visually. Instant markers overlay the
//! rows: `!` on the DMA row where an injected transfer fault forced a
//! retry, `x` on a task row where the `Abort` miss policy dropped a
//! job, and `s` where `SkipNextRelease` shed a release. Intended for
//! terminals and docs, not for parsing.

use std::fmt::Write as _;

use rtmdm_mcusim::Cycles;

use crate::timeline::Timeline;

/// Renders `timeline` as an ASCII Gantt chart `width` columns wide.
///
/// `task_names` labels task rows by index (tasks beyond the slice fall
/// back to `T{k}`).
///
/// # Panics
///
/// Panics if `width` is zero.
///
/// # Examples
///
/// ```rust
/// use rtmdm_mcusim::{Cycles, JobId, SegmentId, TaskId, Trace, TraceKind};
/// use rtmdm_obs::{gantt, Timeline};
///
/// let mut trace = Trace::new();
/// let (t, j, s) = (TaskId(0), JobId(0), SegmentId(0));
/// trace.push(Cycles::new(0), TraceKind::SegmentStarted { task: t, job: j, segment: s });
/// trace.push(Cycles::new(50), TraceKind::SegmentCompleted { task: t, job: j, segment: s });
/// let tl = Timeline::from_trace(&trace, Cycles::new(100));
/// let chart = gantt::render(&tl, 20, &["kws".to_owned()]);
/// assert!(chart.contains("kws"));
/// assert!(chart.contains('#'));
/// ```
pub fn render(timeline: &Timeline, width: usize, task_names: &[String]) -> String {
    assert!(width > 0, "gantt width must be positive");
    let horizon = timeline.horizon();
    let col = |t: Cycles| -> usize {
        if horizon.is_zero() {
            0
        } else {
            ((u128::from(t.get()) * width as u128) / u128::from(horizon.get()))
                .min(width as u128 - 1) as usize
        }
    };
    let paint = |row: &mut [char], start: Cycles, end: Cycles, mark: char| {
        if end <= start {
            return;
        }
        for cell in row
            .iter_mut()
            .take(col(end.saturating_sub(Cycles::new(1))) + 1)
            .skip(col(start))
        {
            *cell = mark;
        }
    };

    let mut labels: Vec<String> = Vec::new();
    let mut rows: Vec<Vec<char>> = Vec::new();

    // Aggregate CPU row, then one row per task, then the DMA row.
    let mut cpu = vec!['.'; width];
    for iv in timeline.cpu_intervals() {
        paint(&mut cpu, iv.start, iv.end, '#');
    }
    labels.push("CPU".to_owned());
    rows.push(cpu);

    let mut task_row = std::collections::BTreeMap::new();
    for &task in timeline.tasks().keys() {
        let mut row = vec!['.'; width];
        for s in timeline.segments().iter().filter(|s| s.task == task) {
            paint(&mut row, s.start, s.end, '#');
        }
        let label = task_names
            .get(task.0)
            .cloned()
            .unwrap_or_else(|| task.to_string());
        labels.push(label);
        task_row.insert(task, rows.len());
        rows.push(row);
    }

    // Miss-policy markers overlay the owning task's row — they mark
    // instants, so they win over segment fill.
    for (markers, glyph) in [(timeline.aborts(), 'x'), (timeline.sheds(), 's')] {
        for &(time, task) in markers {
            if let Some(&r) = task_row.get(&task) {
                rows[r][col(time)] = glyph;
            }
        }
    }

    let mut dma = vec!['.'; width];
    for iv in timeline.dma_intervals() {
        paint(&mut dma, iv.start, iv.end, '=');
    }
    // Fault markers overlay the DMA row: each `!` is a transfer the
    // fault injector forced to retry.
    for &(time, _) in timeline.faults() {
        dma[col(time)] = '!';
    }
    labels.push("DMA".to_owned());
    rows.push(dma);

    let pad = labels.iter().map(String::len).max().unwrap_or(3);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:>pad$}  0 .. {} cycles ({} per column)",
        "",
        horizon.get(),
        horizon.get().div_ceil(width as u64),
    );
    for (label, row) in labels.iter().zip(&rows) {
        let _ = writeln!(out, "{label:>pad$} |{}|", row.iter().collect::<String>());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtmdm_mcusim::{JobId, SegmentId, TaskId, Trace, TraceKind};

    fn cy(n: u64) -> Cycles {
        Cycles::new(n)
    }

    fn trace_two_tasks() -> Trace {
        let mut t = Trace::new();
        for (task, start, end) in [(0usize, 0u64, 50u64), (1, 50, 100)] {
            t.push(
                cy(start),
                TraceKind::SegmentStarted {
                    task: TaskId(task),
                    job: JobId(0),
                    segment: SegmentId(0),
                },
            );
            t.push(
                cy(end),
                TraceKind::SegmentCompleted {
                    task: TaskId(task),
                    job: JobId(0),
                    segment: SegmentId(0),
                },
            );
        }
        t.push(
            cy(100),
            TraceKind::FetchStarted {
                task: TaskId(0),
                job: JobId(1),
                segment: SegmentId(0),
                bytes: 64,
            },
        );
        t.push(
            cy(150),
            TraceKind::FetchCompleted {
                task: TaskId(0),
                job: JobId(1),
                segment: SegmentId(0),
            },
        );
        t
    }

    #[test]
    fn renders_cpu_task_and_dma_rows() {
        let tl = Timeline::from_trace(&trace_two_tasks(), cy(200));
        let chart = render(&tl, 40, &["kws".to_owned(), "vww".to_owned()]);
        let lines: Vec<&str> = chart.lines().collect();
        assert_eq!(lines.len(), 5); // header + CPU + 2 tasks + DMA
        assert!(lines[1].trim_start().starts_with("CPU"));
        assert!(lines[2].trim_start().starts_with("kws"));
        assert!(lines[3].trim_start().starts_with("vww"));
        assert!(lines[4].trim_start().starts_with("DMA"));
        assert!(lines[1].contains('#'));
        assert!(lines[4].contains('='));
    }

    #[test]
    fn unnamed_tasks_fall_back_to_ids() {
        let tl = Timeline::from_trace(&trace_two_tasks(), cy(200));
        let chart = render(&tl, 10, &[]);
        assert!(chart.contains("T0"));
        assert!(chart.contains("T1"));
    }

    #[test]
    fn columns_scale_with_time() {
        let tl = Timeline::from_trace(&trace_two_tasks(), cy(200));
        let chart = render(&tl, 4, &[]);
        // Task 0 computes in [0,50) → exactly the first of 4 columns.
        let t0_row = chart
            .lines()
            .find(|l| l.trim_start().starts_with("T0"))
            .expect("row");
        assert!(t0_row.contains("|#...|"), "{chart}");
    }

    #[test]
    fn fault_abort_and_shed_markers_pin_their_columns() {
        let mut t = Trace::new();
        let (t0, j0, s0) = (TaskId(0), JobId(0), SegmentId(0));
        t.push(
            cy(0),
            TraceKind::SegmentStarted {
                task: t0,
                job: j0,
                segment: s0,
            },
        );
        t.push(
            cy(30),
            TraceKind::SegmentCompleted {
                task: t0,
                job: j0,
                segment: s0,
            },
        );
        t.push(
            cy(40),
            TraceKind::FetchStarted {
                task: t0,
                job: JobId(1),
                segment: s0,
                bytes: 64,
            },
        );
        t.push(
            cy(45),
            TraceKind::FetchFaulted {
                task: t0,
                job: JobId(1),
                segment: s0,
                attempt: 0,
            },
        );
        t.push(
            cy(45),
            TraceKind::FetchStarted {
                task: t0,
                job: JobId(1),
                segment: s0,
                bytes: 64,
            },
        );
        t.push(
            cy(60),
            TraceKind::FetchCompleted {
                task: t0,
                job: JobId(1),
                segment: s0,
            },
        );
        t.push(cy(70), TraceKind::JobAborted { task: t0, job: j0 });
        t.push(
            cy(90),
            TraceKind::ReleaseShed {
                task: t0,
                job: JobId(2),
            },
        );
        let tl = Timeline::from_trace(&t, cy(100));
        let chart = render(&tl, 10, &[]);
        let row = |prefix: &str| {
            chart
                .lines()
                .find(|l| l.trim_start().starts_with(prefix))
                .unwrap_or_else(|| panic!("missing {prefix} row in {chart}"))
        };
        // Segment [0,30) fills columns 0–2; abort at 70 → column 7;
        // shed at 90 → column 9.
        assert!(row("T0").contains("|###....x.s|"), "{chart}");
        // Fetch [40,60) fills columns 4–5; the fault at 45 overlays
        // column 4.
        assert!(row("DMA").contains("|....!=....|"), "{chart}");
    }

    #[test]
    #[should_panic(expected = "width must be positive")]
    fn zero_width_panics() {
        let tl = Timeline::from_trace(&Trace::new(), cy(10));
        let _ = render(&tl, 0, &[]);
    }
}
