//! Causal span reconstruction: partitioning each completed job's
//! response window into attributed intervals.
//!
//! [`reconstruct`] replays one [`Trace`] and, for every completed job,
//! partitions the half-open response window `[release, completion)`
//! into disjoint [`Span`]s whose kinds explain where the cycles went.
//! The partition is exact and exhaustive by construction — the span
//! lengths of a job sum to its measured response time, cycle for cycle
//! — which is what lets [`crate::blame`] enforce its conservation
//! invariant with zero tolerance.
//!
//! The precedence rule, applied within each job's window:
//!
//! 1. the job's **own segment slices** become [`SpanKind::Compute`],
//!    with the tail `stall` cycles reported by
//!    [`TraceKind::SegmentStalled`] carved off as
//!    [`SpanKind::BusContention`] (occupancies are non-preemptive, so
//!    the stall total is exact; drawing it at the slice tail is a
//!    visualization choice — the per-kind totals do not depend on it);
//! 2. **other jobs' slices** clipped to the window become
//!    [`SpanKind::Preempted`] naming the occupant (the CPU is unique,
//!    so slices never overlap; earlier jobs of the same task count too,
//!    as happens under the `Continue` deadline-miss policy);
//! 3. the job's **fetch-wait intervals**
//!    ([`TraceKind::FetchWaitBegan`]/[`TraceKind::FetchWaitEnded`])
//!    minus the time already attributed above, split by the job's own
//!    fault episodes (first [`TraceKind::FetchFaulted`] to the next
//!    [`TraceKind::FetchCompleted`] of the same transfer) into
//!    [`SpanKind::FaultRefetch`] and [`SpanKind::BlockingFetch`];
//! 4. whatever remains is [`SpanKind::DispatchWait`] — ready but
//!    neither running, preempted, nor provably blocked on the DMA
//!    pipeline (priority gating, queueing, release phasing).
//!
//! Traces recorded **without** attribution anchors (the simulator's
//! `attribution` flag off, the default) still reconstruct exactly:
//! steps 1–2 and 4 need only the base events, so the decomposition
//! degenerates to compute + preemption + dispatch-wait with the fetch
//! and contention terms at zero. Aborted jobs never complete and have
//! no response time, so they carry no spans (their slices still show up
//! as preemption inside other jobs' windows).

use std::collections::{BTreeMap, BTreeSet};

use serde::{Deserialize, Serialize};

use rtmdm_mcusim::{Cycles, JobId, SegmentId, TaskId, Trace, TraceKind};

use crate::timeline::Interval;

/// Why a span of a job's response window elapsed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum SpanKind {
    /// The job's own segment was computing (nominal work plus context
    /// switch).
    Compute,
    /// The job's own segment held the CPU but the cycles were lost to
    /// bus arbitration against a concurrent DMA transfer.
    BusContention,
    /// The job was blocked because its next segment's weights were not
    /// staged yet — the fetch pipeline failed to hide the transfer.
    BlockingFetch,
    /// Blocked-on-fetch time spent re-transferring after an injected
    /// DMA fault (a sub-case of blocking carved out separately).
    FaultRefetch,
    /// Another job held the CPU.
    Preempted {
        /// The task whose job occupied the CPU.
        by: TaskId,
    },
    /// Ready but neither running, preempted, nor provably blocked on
    /// the DMA pipeline: dispatcher gating, queueing, release phasing.
    DispatchWait,
}

/// One attributed interval of a job's response window.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Span {
    /// Attributed cause.
    pub kind: SpanKind,
    /// The half-open interval `[start, end)` the cause covers.
    pub interval: Interval,
}

impl Span {
    /// Length of the span.
    pub fn len(&self) -> Cycles {
        self.interval.len()
    }

    /// Whether the span is empty (never produced by [`reconstruct`]).
    pub fn is_empty(&self) -> bool {
        self.interval.is_empty()
    }
}

/// The exact span partition of one completed job's response window.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct JobSpans {
    /// Owning task.
    pub task: TaskId,
    /// Job index.
    pub job: JobId,
    /// Release instant (start of the window).
    pub release: Cycles,
    /// Measured response time (window length).
    pub response: Cycles,
    /// Whether the job missed its deadline.
    pub missed: bool,
    /// Disjoint spans covering `[release, release + response)` exactly,
    /// sorted by start.
    pub spans: Vec<Span>,
}

impl JobSpans {
    /// Completion instant (end of the window).
    pub fn completion(&self) -> Cycles {
        self.release + self.response
    }

    /// Total attributed cycles — equal to `response` by construction.
    pub fn attributed(&self) -> Cycles {
        self.spans.iter().map(Span::len).sum()
    }
}

/// One CPU occupancy extracted from the trace.
struct Slice {
    start: Cycles,
    end: Cycles,
    task: TaskId,
    job: JobId,
    /// Tail cycles lost to bus contention (zero without attribution).
    stall: Cycles,
}

/// Reconstructs the exact span partition of every completed job in
/// `trace`, in completion order.
///
/// See the module docs for the partition rule. The returned partitions
/// satisfy `attributed() == response` for every job, exactly.
pub fn reconstruct(trace: &Trace) -> Vec<JobSpans> {
    let mut slices: Vec<Slice> = Vec::new();
    let mut open_seg: BTreeMap<(TaskId, JobId, SegmentId), Cycles> = BTreeMap::new();
    let mut stalls: BTreeMap<(TaskId, JobId, SegmentId), Cycles> = BTreeMap::new();
    let mut waits: BTreeMap<(TaskId, JobId), Vec<Interval>> = BTreeMap::new();
    let mut open_wait: BTreeMap<(TaskId, JobId), Cycles> = BTreeMap::new();
    let mut episodes: BTreeMap<(TaskId, JobId), Vec<Interval>> = BTreeMap::new();
    let mut open_episode: BTreeMap<(TaskId, JobId, SegmentId), Cycles> = BTreeMap::new();
    let mut missed: BTreeSet<(TaskId, JobId)> = BTreeSet::new();
    let mut completed: Vec<(TaskId, JobId, Cycles, Cycles)> = Vec::new();

    for e in trace.events() {
        match e.kind {
            TraceKind::SegmentStarted { task, job, segment } => {
                open_seg.insert((task, job, segment), e.time);
            }
            TraceKind::SegmentStalled {
                task,
                job,
                segment,
                stall,
            } => {
                stalls.insert((task, job, segment), stall);
            }
            TraceKind::SegmentCompleted { task, job, segment } => {
                if let Some(start) = open_seg.remove(&(task, job, segment)) {
                    let stall = stalls
                        .remove(&(task, job, segment))
                        .unwrap_or(Cycles::ZERO)
                        .min(e.time.saturating_sub(start));
                    slices.push(Slice {
                        start,
                        end: e.time,
                        task,
                        job,
                        stall,
                    });
                }
            }
            TraceKind::FetchWaitBegan { task, job, .. } => {
                open_wait.insert((task, job), e.time);
            }
            TraceKind::FetchWaitEnded { task, job, .. } => {
                if let Some(start) = open_wait.remove(&(task, job)) {
                    if start < e.time {
                        waits
                            .entry((task, job))
                            .or_default()
                            .push(Interval { start, end: e.time });
                    }
                }
            }
            TraceKind::FetchFaulted {
                task, job, segment, ..
            } => {
                // Episode opens at the first fault of the transfer and
                // closes at its eventual successful completion; retries
                // in between extend the same episode.
                open_episode.entry((task, job, segment)).or_insert(e.time);
            }
            TraceKind::FetchCompleted { task, job, segment } => {
                if let Some(start) = open_episode.remove(&(task, job, segment)) {
                    if start < e.time {
                        episodes
                            .entry((task, job))
                            .or_default()
                            .push(Interval { start, end: e.time });
                    }
                }
            }
            TraceKind::DeadlineMissed { task, job } => {
                missed.insert((task, job));
            }
            TraceKind::JobCompleted {
                task,
                job,
                response,
            } => {
                completed.push((task, job, e.time, response));
            }
            _ => {}
        }
    }
    // The CPU is unique and occupancies retire in order, so slices are
    // globally disjoint and already sorted by start == sorted by end.
    slices.sort_by_key(|s| s.start);

    let mut out = Vec::with_capacity(completed.len());
    for (task, job, completion, response) in completed {
        let release = completion.saturating_sub(response);
        let window = Interval {
            start: release,
            end: completion,
        };

        // Steps 1–2: every CPU occupancy intersecting the window.
        let mut spans: Vec<Span> = Vec::new();
        let mut covered: Vec<Interval> = Vec::new();
        let first = slices.partition_point(|s| s.end <= window.start);
        for s in &slices[first..] {
            if s.start >= window.end {
                break;
            }
            let clipped = Interval {
                start: s.start.max(window.start),
                end: s.end.min(window.end),
            };
            if clipped.is_empty() {
                continue;
            }
            covered.push(clipped);
            if (s.task, s.job) == (task, job) {
                // Stall drawn at the slice tail; clip against the
                // window the same way the slice was.
                let split = s
                    .end
                    .saturating_sub(s.stall)
                    .clamp(clipped.start, clipped.end);
                push_span(&mut spans, SpanKind::Compute, clipped.start, split);
                push_span(&mut spans, SpanKind::BusContention, split, clipped.end);
            } else {
                push_span(
                    &mut spans,
                    SpanKind::Preempted { by: s.task },
                    clipped.start,
                    clipped.end,
                );
            }
        }

        // Step 3: uncovered fetch-wait time, split by fault episodes.
        let gaps = subtract(&[window], &covered);
        let wait = intersect(
            waits.get(&(task, job)).map_or(&[][..], Vec::as_slice),
            &gaps,
        );
        let fault = intersect(
            &wait,
            episodes.get(&(task, job)).map_or(&[][..], Vec::as_slice),
        );
        let blocking = subtract(&wait, &fault);
        for iv in &fault {
            push_span(&mut spans, SpanKind::FaultRefetch, iv.start, iv.end);
        }
        for iv in &blocking {
            push_span(&mut spans, SpanKind::BlockingFetch, iv.start, iv.end);
        }

        // Step 4: the remainder.
        for iv in subtract(&gaps, &wait) {
            push_span(&mut spans, SpanKind::DispatchWait, iv.start, iv.end);
        }

        spans.sort_by_key(|s| (s.interval.start, s.interval.end));
        out.push(JobSpans {
            task,
            job,
            release,
            response,
            missed: missed.contains(&(task, job)),
            spans,
        });
    }
    out
}

fn push_span(spans: &mut Vec<Span>, kind: SpanKind, start: Cycles, end: Cycles) {
    if start < end {
        spans.push(Span {
            kind,
            interval: Interval { start, end },
        });
    }
}

/// `base − cut` for disjoint ascending interval lists (cut need not be
/// sorted relative to base gaps; both must be internally disjoint and
/// ascending).
fn subtract(base: &[Interval], cut: &[Interval]) -> Vec<Interval> {
    let mut out = Vec::new();
    let mut j = 0;
    for b in base {
        let mut cursor = b.start;
        while j < cut.len() && cut[j].end <= cursor {
            j += 1;
        }
        let mut k = j;
        while k < cut.len() && cut[k].start < b.end {
            if cut[k].start > cursor {
                out.push(Interval {
                    start: cursor,
                    end: cut[k].start.min(b.end),
                });
            }
            cursor = cursor.max(cut[k].end);
            k += 1;
        }
        if cursor < b.end {
            out.push(Interval {
                start: cursor,
                end: b.end,
            });
        }
    }
    out.retain(|iv| !iv.is_empty());
    out
}

/// `a ∩ b` for disjoint ascending interval lists (two-pointer sweep).
fn intersect(a: &[Interval], b: &[Interval]) -> Vec<Interval> {
    let (mut i, mut j) = (0, 0);
    let mut out = Vec::new();
    while i < a.len() && j < b.len() {
        let start = a[i].start.max(b[j].start);
        let end = a[i].end.min(b[j].end);
        if start < end {
            out.push(Interval { start, end });
        }
        if a[i].end <= b[j].end {
            i += 1;
        } else {
            j += 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cy(n: u64) -> Cycles {
        Cycles::new(n)
    }

    fn iv(s: u64, e: u64) -> Interval {
        Interval {
            start: cy(s),
            end: cy(e),
        }
    }

    #[test]
    fn subtract_carves_gaps() {
        assert_eq!(
            subtract(&[iv(0, 100)], &[iv(10, 20), iv(40, 60)]),
            vec![iv(0, 10), iv(20, 40), iv(60, 100)]
        );
        assert_eq!(subtract(&[iv(0, 10)], &[iv(0, 10)]), vec![]);
        assert_eq!(subtract(&[iv(5, 10)], &[]), vec![iv(5, 10)]);
        // Cut spilling over both edges.
        assert_eq!(subtract(&[iv(10, 20)], &[iv(0, 15)]), vec![iv(15, 20)]);
        // Multiple base intervals against one long cut.
        assert_eq!(
            subtract(&[iv(0, 10), iv(20, 30)], &[iv(5, 25)]),
            vec![iv(0, 5), iv(25, 30)]
        );
    }

    #[test]
    fn intersect_is_exact() {
        assert_eq!(
            intersect(&[iv(0, 10), iv(20, 30)], &[iv(5, 25)]),
            vec![iv(5, 10), iv(20, 25)]
        );
        assert_eq!(intersect(&[iv(0, 10)], &[iv(10, 20)]), vec![]);
    }

    /// A hand-built trace exercising all six kinds:
    /// release at 0; fetch wait [0, 30) with a fault episode [10, 30);
    /// preemption by T1 during [30, 50); own segment [50, 100) with a
    /// 10-cycle tail stall; dispatch wait [100, 110); final segment
    /// [110, 120); completion at 120.
    fn full_trace() -> Trace {
        let mut t = Trace::new();
        let (t0, t1, j0) = (TaskId(0), TaskId(1), JobId(0));
        t.push(
            cy(0),
            TraceKind::JobReleased {
                task: t0,
                job: j0,
                deadline: cy(90),
            },
        );
        t.push(
            cy(0),
            TraceKind::FetchWaitBegan {
                task: t0,
                job: j0,
                segment: SegmentId(0),
            },
        );
        t.push(
            cy(10),
            TraceKind::FetchFaulted {
                task: t0,
                job: j0,
                segment: SegmentId(0),
                attempt: 0,
            },
        );
        t.push(
            cy(30),
            TraceKind::FetchCompleted {
                task: t0,
                job: j0,
                segment: SegmentId(0),
            },
        );
        t.push(
            cy(30),
            TraceKind::FetchWaitEnded {
                task: t0,
                job: j0,
                segment: SegmentId(0),
            },
        );
        t.push(
            cy(30),
            TraceKind::SegmentStarted {
                task: t1,
                job: j0,
                segment: SegmentId(0),
            },
        );
        t.push(
            cy(50),
            TraceKind::SegmentCompleted {
                task: t1,
                job: j0,
                segment: SegmentId(0),
            },
        );
        t.push(
            cy(50),
            TraceKind::SegmentStarted {
                task: t0,
                job: j0,
                segment: SegmentId(0),
            },
        );
        t.push(cy(90), TraceKind::DeadlineMissed { task: t0, job: j0 });
        t.push(
            cy(100),
            TraceKind::SegmentStalled {
                task: t0,
                job: j0,
                segment: SegmentId(0),
                stall: cy(10),
            },
        );
        t.push(
            cy(100),
            TraceKind::SegmentCompleted {
                task: t0,
                job: j0,
                segment: SegmentId(0),
            },
        );
        t
    }

    #[test]
    fn all_six_kinds_partition_the_window() {
        let mut t = full_trace();
        // Trailing dispatch wait, then the last segment and completion.
        let (t0, j0) = (TaskId(0), JobId(0));
        t.push(
            cy(110),
            TraceKind::SegmentStarted {
                task: t0,
                job: j0,
                segment: SegmentId(1),
            },
        );
        t.push(
            cy(120),
            TraceKind::SegmentCompleted {
                task: t0,
                job: j0,
                segment: SegmentId(1),
            },
        );
        t.push(
            cy(120),
            TraceKind::JobCompleted {
                task: t0,
                job: j0,
                response: cy(120),
            },
        );
        let all = reconstruct(&t);
        assert_eq!(all.len(), 1);
        let js = &all[0];
        assert!(js.missed);
        assert_eq!(js.release, cy(0));
        assert_eq!(js.attributed(), cy(120));
        assert_eq!(
            js.spans,
            vec![
                Span {
                    kind: SpanKind::BlockingFetch,
                    interval: iv(0, 10)
                },
                Span {
                    kind: SpanKind::FaultRefetch,
                    interval: iv(10, 30)
                },
                Span {
                    kind: SpanKind::Preempted { by: TaskId(1) },
                    interval: iv(30, 50)
                },
                Span {
                    kind: SpanKind::Compute,
                    interval: iv(50, 90)
                },
                Span {
                    kind: SpanKind::BusContention,
                    interval: iv(90, 100)
                },
                Span {
                    kind: SpanKind::DispatchWait,
                    interval: iv(100, 110)
                },
                Span {
                    kind: SpanKind::Compute,
                    interval: iv(110, 120)
                },
            ]
        );
    }

    /// The deadline-miss event must not mark other jobs of the task.
    #[test]
    fn miss_flag_is_per_job() {
        let mut t = Trace::new();
        let (t0, j0, j1) = (TaskId(0), JobId(0), JobId(1));
        t.push(cy(90), TraceKind::DeadlineMissed { task: t0, job: j0 });
        t.push(
            cy(100),
            TraceKind::JobCompleted {
                task: t0,
                job: j0,
                response: cy(100),
            },
        );
        t.push(
            cy(150),
            TraceKind::JobCompleted {
                task: t0,
                job: j1,
                response: cy(50),
            },
        );
        let all = reconstruct(&t);
        assert!(all[0].missed);
        assert!(!all[1].missed);
    }

    /// Without attribution anchors the decomposition degenerates to
    /// compute + preemption + dispatch-wait and still sums exactly.
    #[test]
    fn base_events_alone_reconstruct_exactly() {
        let mut t = Trace::new();
        let (t0, j0) = (TaskId(0), JobId(0));
        t.push(
            cy(0),
            TraceKind::JobReleased {
                task: t0,
                job: j0,
                deadline: cy(200),
            },
        );
        t.push(
            cy(20),
            TraceKind::SegmentStarted {
                task: t0,
                job: j0,
                segment: SegmentId(0),
            },
        );
        t.push(
            cy(60),
            TraceKind::SegmentCompleted {
                task: t0,
                job: j0,
                segment: SegmentId(0),
            },
        );
        t.push(
            cy(60),
            TraceKind::JobCompleted {
                task: t0,
                job: j0,
                response: cy(60),
            },
        );
        let all = reconstruct(&t);
        assert_eq!(
            all[0].spans,
            vec![
                Span {
                    kind: SpanKind::DispatchWait,
                    interval: iv(0, 20)
                },
                Span {
                    kind: SpanKind::Compute,
                    interval: iv(20, 60)
                },
            ]
        );
        assert_eq!(all[0].attributed(), cy(60));
    }
}
