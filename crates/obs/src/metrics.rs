//! Dependency-free metrics registry: monotonic counters, gauges, and
//! fixed-bucket histograms, with a zero-overhead disabled mode.
//!
//! Two flavours cover the workspace's needs:
//!
//! - [`Registry`]: a plain, single-owner registry for code that threads a
//!   `&mut Registry` through (the staging pipeline, experiment probes).
//!   A disabled registry turns every record operation into a branch on
//!   one `bool` and nothing else — no allocation, no map lookup.
//! - [`global`]: a process-wide registry behind atomics, for
//!   instrumentation points that cannot thread a registry through
//!   (the simulator flushes per-run totals here, the DNN engine counts
//!   inferences). Disabled (the default) it costs one relaxed atomic
//!   load per record call; all recorded quantities are sums, so totals
//!   are identical for any worker-thread count or interleaving.
//!
//! Snapshots ([`Snapshot`]) are plain serializable data: experiments
//! diff them to attribute counts, and `run_all` embeds them in
//! `results/metrics.json`.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock};

use serde::{Deserialize, Serialize};

/// Number of buckets in a [`Histogram`] (log₂ buckets over the `u64`
/// range, matching the simulator's response histograms). One bucket per
/// bit of `u64`: every representable value has its own bucket, so
/// [`Histogram::percentile_upper`] is an upper bound unconditionally.
pub const HISTOGRAM_BUCKETS: usize = 64;

/// A fixed-bucket logarithmic histogram: bucket `k` counts values in
/// `[2^k, 2^(k+1))`; bucket 0 covers `0..2`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Histogram {
    buckets: [u64; HISTOGRAM_BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [0; HISTOGRAM_BUCKETS],
        }
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Index of the bucket `value` falls into:
    /// `floor(log2(max(value, 1)))`, always in `0..HISTOGRAM_BUCKETS`.
    fn bucket_of(value: u64) -> usize {
        64 - value.max(1).leading_zeros() as usize - 1
    }

    /// Records one observation.
    pub fn record(&mut self, value: u64) {
        self.buckets[Self::bucket_of(value)] += 1;
    }

    /// Records `n` observations of `value` at once.
    pub fn record_n(&mut self, value: u64, n: u64) {
        self.buckets[Self::bucket_of(value)] += n;
    }

    /// Adds another histogram's counts bucket-wise (exact merge).
    pub fn merge(&mut self, other: &Histogram) {
        for (b, o) in self.buckets.iter_mut().zip(&other.buckets) {
            *b += o;
        }
    }

    /// Adds raw bucket counts (e.g. from the simulator's per-task
    /// response histograms, which use the same log₂ bucketing).
    pub fn merge_buckets(&mut self, counts: &[u64; HISTOGRAM_BUCKETS]) {
        for (b, o) in self.buckets.iter_mut().zip(counts) {
            *b += o;
        }
    }

    /// Total number of recorded observations.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Raw bucket counts.
    pub fn buckets(&self) -> &[u64; HISTOGRAM_BUCKETS] {
        &self.buckets
    }

    /// Upper bound of the bucket containing the `pct`-th percentile
    /// observation (inclusive bucket top), or `None` when empty.
    ///
    /// # Panics
    ///
    /// Panics if `pct` is not in `1..=100`.
    pub fn percentile_upper(&self, pct: u64) -> Option<u64> {
        assert!((1..=100).contains(&pct), "percentile must be 1..=100");
        let total = self.count();
        if total == 0 {
            return None;
        }
        // The rank always fits: ceil(total·pct/100) ≤ total ≤ u64::MAX
        // since pct ≤ 100, so the narrowing is infallible.
        let target = (u128::from(total) * u128::from(pct)).div_ceil(100) as u64;
        let mut seen = 0;
        for (k, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                // Top of bucket k is 2^(k+1) − 1; the last bucket's top
                // is u64::MAX exactly.
                return Some(2u64.checked_pow(k as u32 + 1).map_or(u64::MAX, |p| p - 1));
            }
        }
        None
    }
}

/// A single-owner metrics registry.
///
/// Names are free-form dotted strings (`"sim.cpu_busy_cycles"`).
/// Counters are monotonic `u64` sums, gauges are last-write-wins `i64`
/// levels, histograms are [`Histogram`]s. A registry created with
/// [`Registry::disabled`] ignores every record call.
#[derive(Debug, Clone, Default)]
pub struct Registry {
    enabled: bool,
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, i64>,
    histograms: BTreeMap<String, Histogram>,
}

impl Registry {
    /// Creates an enabled, empty registry.
    pub fn new() -> Self {
        Registry {
            enabled: true,
            ..Registry::default()
        }
    }

    /// Creates a registry whose record operations are no-ops.
    pub fn disabled() -> Self {
        Registry::default()
    }

    /// Whether record operations have any effect.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Adds `delta` to the counter `name` (created at zero on first use).
    pub fn add(&mut self, name: &str, delta: u64) {
        if !self.enabled {
            return;
        }
        if let Some(c) = self.counters.get_mut(name) {
            *c += delta;
        } else {
            self.counters.insert(name.to_owned(), delta);
        }
    }

    /// Sets the gauge `name` to `value`.
    pub fn set_gauge(&mut self, name: &str, value: i64) {
        if !self.enabled {
            return;
        }
        self.gauges.insert(name.to_owned(), value);
    }

    /// Records `value` into the histogram `name`.
    pub fn observe(&mut self, name: &str, value: u64) {
        if !self.enabled {
            return;
        }
        if let Some(h) = self.histograms.get_mut(name) {
            h.record(value);
        } else {
            let mut h = Histogram::new();
            h.record(value);
            self.histograms.insert(name.to_owned(), h);
        }
    }

    /// Merges another histogram bucket-wise into the histogram `name`.
    pub fn merge_histogram(&mut self, name: &str, other: &Histogram) {
        if !self.enabled {
            return;
        }
        self.histograms
            .entry(name.to_owned())
            .or_default()
            .merge(other);
    }

    /// Current value of the counter `name` (0 when never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// A serializable copy of everything recorded so far.
    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            counters: self.counters.clone(),
            gauges: self.gauges.clone(),
            histograms: self.histograms.clone(),
        }
    }

    /// Adds every count of `snap` into this registry (counters and
    /// histograms sum; gauges take `snap`'s value).
    pub fn merge_snapshot(&mut self, snap: &Snapshot) {
        if !self.enabled {
            return;
        }
        for (name, v) in &snap.counters {
            self.add(name, *v);
        }
        for (name, v) in &snap.gauges {
            self.gauges.insert(name.clone(), *v);
        }
        for (name, h) in &snap.histograms {
            self.merge_histogram(name, h);
        }
    }
}

/// A point-in-time, serializable copy of a registry's contents.
///
/// Snapshots support exact diffing ([`Snapshot::counter_delta`]) so the
/// benchmark harness can attribute counter growth to individual
/// experiments.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Snapshot {
    /// Monotonic counter totals, by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge levels, by name.
    pub gauges: BTreeMap<String, i64>,
    /// Histogram contents, by name.
    pub histograms: BTreeMap<String, Histogram>,
}

impl Snapshot {
    /// Value of the counter `name` (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Growth of the counter `name` since `earlier` (saturating).
    pub fn counter_delta(&self, earlier: &Snapshot, name: &str) -> u64 {
        self.counter(name).saturating_sub(earlier.counter(name))
    }
}

/// The process-wide registry (see [`global`]).
///
/// Record calls are no-ops until [`GlobalRegistry::enable`] is called;
/// the disabled fast path is a single relaxed atomic load. Enabled, each
/// call takes a short mutex — instrumentation sites are expected to
/// batch (the simulator flushes one set of totals per run, not per
/// event), so the lock is not on any hot path.
#[derive(Debug, Default)]
pub struct GlobalRegistry {
    enabled: AtomicBool,
    inner: Mutex<Registry>,
}

impl GlobalRegistry {
    /// Turns recording on or off. Counts recorded so far are kept.
    pub fn enable(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
        // The inner registry must accept merges while the global switch
        // is on; its own flag mirrors the atomic one.
        let mut inner = self.inner.lock().expect("metrics registry poisoned");
        inner.enabled = on;
    }

    /// Whether recording is currently on.
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Adds `delta` to the counter `name`. No-op while disabled.
    pub fn add(&self, name: &str, delta: u64) {
        if !self.is_enabled() {
            return;
        }
        self.inner
            .lock()
            .expect("metrics registry poisoned")
            .add(name, delta);
    }

    /// Records `value` into the histogram `name`. No-op while disabled.
    pub fn observe(&self, name: &str, value: u64) {
        if !self.is_enabled() {
            return;
        }
        self.inner
            .lock()
            .expect("metrics registry poisoned")
            .observe(name, value);
    }

    /// Merges raw log₂ bucket counts into the histogram `name` (exact;
    /// used by the simulator to flush its per-task response histograms).
    pub fn merge_buckets(&self, name: &str, counts: &[u64; HISTOGRAM_BUCKETS]) {
        if !self.is_enabled() {
            return;
        }
        let mut inner = self.inner.lock().expect("metrics registry poisoned");
        if inner.enabled {
            inner
                .histograms
                .entry(name.to_owned())
                .or_default()
                .merge_buckets(counts);
        }
    }

    /// A copy of everything recorded so far (works while disabled too).
    pub fn snapshot(&self) -> Snapshot {
        self.inner
            .lock()
            .expect("metrics registry poisoned")
            .snapshot()
    }

    /// Clears every recorded value, keeping the enabled state.
    pub fn reset(&self) {
        let mut inner = self.inner.lock().expect("metrics registry poisoned");
        let enabled = inner.enabled;
        *inner = Registry::default();
        inner.enabled = enabled;
    }
}

/// The process-wide registry. Disabled by default; `run_all` and other
/// telemetry consumers call `global().enable(true)` up front.
pub fn global() -> &'static GlobalRegistry {
    static GLOBAL: OnceLock<GlobalRegistry> = OnceLock::new();
    GLOBAL.get_or_init(GlobalRegistry::default)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_snapshot() {
        let mut r = Registry::new();
        r.add("a", 2);
        r.add("a", 3);
        r.add("b", 1);
        assert_eq!(r.counter("a"), 5);
        assert_eq!(r.counter("missing"), 0);
        let snap = r.snapshot();
        assert_eq!(snap.counter("a"), 5);
        r.add("a", 10);
        assert_eq!(r.snapshot().counter_delta(&snap, "a"), 10);
    }

    #[test]
    fn disabled_registry_records_nothing() {
        let mut r = Registry::disabled();
        r.add("a", 7);
        r.set_gauge("g", -3);
        r.observe("h", 100);
        let snap = r.snapshot();
        assert!(snap.counters.is_empty());
        assert!(snap.gauges.is_empty());
        assert!(snap.histograms.is_empty());
    }

    #[test]
    fn gauges_are_last_write_wins() {
        let mut r = Registry::new();
        r.set_gauge("level", 4);
        r.set_gauge("level", -2);
        assert_eq!(r.snapshot().gauges.get("level"), Some(&-2));
    }

    #[test]
    fn histogram_buckets_and_percentiles() {
        let mut h = Histogram::new();
        for _ in 0..99 {
            h.record(30); // bucket [16, 32)
        }
        h.record(1_000); // bucket [512, 1024)
        assert_eq!(h.count(), 100);
        assert_eq!(h.percentile_upper(50), Some(31));
        assert_eq!(h.percentile_upper(100), Some(1023));
        assert_eq!(Histogram::new().percentile_upper(95), None);
    }

    #[test]
    fn histogram_resolves_values_beyond_the_old_saturation_boundary() {
        // Regression: 32 buckets clamped everything ≥ 2^32 into bucket
        // 31, making percentile_upper report 2^32 − 1 for arbitrarily
        // large values — below the recorded observation.
        let mut h = Histogram::new();
        h.record(1u64 << 32);
        assert_eq!(h.percentile_upper(100), Some((1u64 << 33) - 1));
        let mut top = Histogram::new();
        top.record(u64::MAX);
        assert_eq!(top.percentile_upper(100), Some(u64::MAX));
    }

    #[test]
    fn histogram_merge_is_bucketwise() {
        let mut a = Histogram::new();
        a.record(5);
        let mut b = Histogram::new();
        b.record(5);
        b.record(700);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        let mut c = Histogram::new();
        c.merge_buckets(a.buckets());
        assert_eq!(c, a);
    }

    #[test]
    fn snapshot_serializes_and_round_trips() {
        let mut r = Registry::new();
        r.add("sim.runs", 3);
        r.observe("lat", 250);
        r.set_gauge("workers", 8);
        let snap = r.snapshot();
        let json = serde_json::to_string(&snap).expect("serialize");
        let back: Snapshot = serde_json::from_str(&json).expect("parse");
        assert_eq!(back, snap);
    }

    #[test]
    fn merge_snapshot_sums_counters() {
        let mut a = Registry::new();
        a.add("x", 1);
        let mut b = Registry::new();
        b.add("x", 2);
        b.observe("h", 9);
        a.merge_snapshot(&b.snapshot());
        assert_eq!(a.counter("x"), 3);
        assert_eq!(
            a.snapshot().histograms.get("h").map(Histogram::count),
            Some(1)
        );
    }

    #[test]
    fn global_registry_is_gated_by_enable() {
        // Note: the global registry is shared across the test binary;
        // use unique names and restore the disabled state.
        let g = global();
        g.add("test.gated", 5);
        assert_eq!(g.snapshot().counter("test.gated"), 0);
        g.enable(true);
        g.add("test.gated", 5);
        g.observe("test.hist", 16);
        assert_eq!(g.snapshot().counter("test.gated"), 5);
        assert_eq!(
            g.snapshot()
                .histograms
                .get("test.hist")
                .map(Histogram::count),
            Some(1)
        );
        g.enable(false);
        g.add("test.gated", 5);
        assert_eq!(g.snapshot().counter("test.gated"), 5);
    }
}
