//! # rtmdm-obs — observability for the RT-MDM reproduction
//!
//! RT-MDM's claim is that compute scheduling and DMA weight staging can
//! be co-scheduled under deadlines; proving that (and every future
//! performance change) needs structured visibility into the schedule,
//! not eyeballs on ASCII tables. This crate provides the instrumentation
//! layer the rest of the workspace records into:
//!
//! - [`metrics`] — a dependency-free registry of monotonic counters,
//!   gauges, and fixed-bucket histograms with a zero-overhead disabled
//!   mode, plus a process-global instance ([`metrics::global`]) the
//!   simulator and DNN engine flush into;
//! - [`timeline`] — exact interval analytics over a
//!   [`Trace`](rtmdm_mcusim::Trace): per-task Gantt slices, CPU/DMA
//!   utilization, idle intervals, and the fetch/compute overlap ratio,
//!   with the invariant `cpu_busy + cpu_idle == horizon` by construction;
//! - [`gantt`] — an ASCII Gantt renderer over a timeline (the `rtmdm
//!   trace --gantt` output);
//! - [`export`] — serializers to Chrome trace-event JSON (loadable in
//!   Perfetto / `chrome://tracing`) and JSONL;
//! - [`spans`] — exact causal partition of each completed job's
//!   response window (compute, bus contention, blocking fetch, fault
//!   re-fetch, preemption, dispatch wait);
//! - [`blame`] — the six-term response-time decomposition built on
//!   those spans, validated job-by-job against the hard conservation
//!   invariant `response = Σ terms` (zero tolerance) — the engine
//!   behind `rtmdm explain`.
//!
//! Everything here is integer-exact and deterministic: derived metrics
//! are pure functions of the trace, and registry totals are sums, so
//! results are byte-identical for any `RTMDM_THREADS` setting.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod blame;
pub mod export;
pub mod gantt;
pub mod metrics;
pub mod spans;
pub mod timeline;

pub use blame::{attribute, BlameReport, BlameSource, ConservationError, JobBlame, TaskBlame};
pub use export::{
    chrome_trace, chrome_trace_json, chrome_trace_with_blame, jsonl, ChromeEvent, ChromeTrace,
};
pub use metrics::{global, GlobalRegistry, Histogram, Registry, Snapshot, HISTOGRAM_BUCKETS};
pub use spans::{reconstruct, JobSpans, Span, SpanKind};
pub use timeline::{FetchSlice, Interval, SegmentSlice, TaskTimeline, Timeline, TimelineSummary};
