//! Per-job response-time attribution with an exact conservation
//! invariant.
//!
//! [`attribute`] folds the span partition of [`crate::spans`] into one
//! [`JobBlame`] per completed job — the six-term decomposition
//!
//! ```text
//! response = compute + blocking_fetch + preemption_by[task]
//!          + bus_contention + fault_refetch + dispatch_wait
//! ```
//!
//! — and **validates conservation for every job**: the terms must sum
//! exactly to the job's measured response time, with zero tolerance.
//! A violation means the reconstruction (or the simulator's anchor
//! emission) is wrong, so it is surfaced as a [`ConservationError`]
//! rather than a fudged report. Per-task aggregates ([`TaskBlame`])
//! sum the same terms across jobs and rank the dominant interference
//! source, which is what `rtmdm explain` and the F13 experiment print.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use rtmdm_mcusim::{Cycles, JobId, TaskId, Trace};

use crate::spans::{reconstruct, SpanKind};

/// An interference source a job's lost cycles can be charged to —
/// every term of the decomposition except useful compute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum BlameSource {
    /// Higher- (or, under miss policies, earlier-) priority jobs held
    /// the CPU.
    Preemption,
    /// The job sat blocked on an unstaged segment.
    BlockingFetch,
    /// The job's own occupancy lost cycles to bus arbitration.
    BusContention,
    /// Blocked-on-fetch time caused by injected DMA faults.
    FaultRefetch,
    /// Ready but not dispatched (gating, queueing, phasing).
    DispatchWait,
}

impl std::fmt::Display for BlameSource {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            BlameSource::Preemption => "preemption",
            BlameSource::BlockingFetch => "blocking-fetch",
            BlameSource::BusContention => "bus-contention",
            BlameSource::FaultRefetch => "fault-refetch",
            BlameSource::DispatchWait => "dispatch-wait",
        })
    }
}

/// The exact six-term decomposition of one completed job's response.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct JobBlame {
    /// Owning task.
    pub task: TaskId,
    /// Job index.
    pub job: JobId,
    /// Release instant.
    pub release: Cycles,
    /// Measured response time.
    pub response: Cycles,
    /// Whether the job missed its deadline.
    pub missed: bool,
    /// Cycles the job's own segments computed (work + switch).
    pub compute: Cycles,
    /// Cycles blocked on unstaged segments (fault time excluded).
    pub blocking_fetch: Cycles,
    /// Cycles the job's own occupancies lost to bus arbitration.
    pub bus_contention: Cycles,
    /// Blocked-on-fetch cycles attributable to injected DMA faults.
    pub fault_refetch: Cycles,
    /// Cycles ready but not dispatched.
    pub dispatch_wait: Cycles,
    /// Cycles other jobs held the CPU, by occupying task.
    pub preemption_by: BTreeMap<TaskId, Cycles>,
}

impl JobBlame {
    /// Total preemption across all occupying tasks.
    pub fn preemption_total(&self) -> Cycles {
        self.preemption_by.values().copied().sum()
    }

    /// Sum of all six terms — equals `response` (enforced by
    /// [`attribute`]).
    pub fn total(&self) -> Cycles {
        self.compute
            + self.blocking_fetch
            + self.bus_contention
            + self.fault_refetch
            + self.dispatch_wait
            + self.preemption_total()
    }

    /// The largest nonzero interference term, or `None` when the job
    /// is purely compute-bound. Ties break in [`BlameSource`] order,
    /// deterministically.
    pub fn dominant_interference(&self) -> Option<(BlameSource, Cycles)> {
        [
            (BlameSource::Preemption, self.preemption_total()),
            (BlameSource::BlockingFetch, self.blocking_fetch),
            (BlameSource::BusContention, self.bus_contention),
            (BlameSource::FaultRefetch, self.fault_refetch),
            (BlameSource::DispatchWait, self.dispatch_wait),
        ]
        .into_iter()
        .filter(|(_, c)| !c.is_zero())
        .max_by_key(|&(src, c)| (c, std::cmp::Reverse(src)))
    }
}

/// Per-task sums of the decomposition across all completed jobs.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TaskBlame {
    /// Completed jobs aggregated.
    pub jobs: u64,
    /// Jobs that missed their deadline.
    pub misses: u64,
    /// Largest observed response time.
    pub max_response: Cycles,
    /// Summed compute cycles.
    pub compute: Cycles,
    /// Summed blocking-fetch cycles.
    pub blocking_fetch: Cycles,
    /// Summed bus-contention cycles.
    pub bus_contention: Cycles,
    /// Summed fault-refetch cycles.
    pub fault_refetch: Cycles,
    /// Summed dispatch-wait cycles.
    pub dispatch_wait: Cycles,
    /// Summed preemption cycles, by occupying task.
    pub preemption_by: BTreeMap<TaskId, Cycles>,
}

impl TaskBlame {
    /// Total preemption across all occupying tasks.
    pub fn preemption_total(&self) -> Cycles {
        self.preemption_by.values().copied().sum()
    }

    /// Summed response time of all aggregated jobs.
    pub fn total(&self) -> Cycles {
        self.compute
            + self.blocking_fetch
            + self.bus_contention
            + self.fault_refetch
            + self.dispatch_wait
            + self.preemption_total()
    }

    /// The largest nonzero aggregate interference term, or `None` when
    /// the task is purely compute-bound.
    pub fn dominant_interference(&self) -> Option<(BlameSource, Cycles)> {
        [
            (BlameSource::Preemption, self.preemption_total()),
            (BlameSource::BlockingFetch, self.blocking_fetch),
            (BlameSource::BusContention, self.bus_contention),
            (BlameSource::FaultRefetch, self.fault_refetch),
            (BlameSource::DispatchWait, self.dispatch_wait),
        ]
        .into_iter()
        .filter(|(_, c)| !c.is_zero())
        .max_by_key(|&(src, c)| (c, std::cmp::Reverse(src)))
    }
}

/// The conservation-validated attribution of one trace.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BlameReport {
    /// One decomposition per completed job, in completion order.
    pub jobs: Vec<JobBlame>,
    /// Per-task aggregates, keyed by task.
    pub tasks: BTreeMap<TaskId, TaskBlame>,
}

impl BlameReport {
    /// Completed jobs that missed their deadline, worst response first.
    pub fn missed_jobs(&self) -> Vec<&JobBlame> {
        let mut out: Vec<&JobBlame> = self.jobs.iter().filter(|j| j.missed).collect();
        out.sort_by_key(|j| (std::cmp::Reverse(j.response), j.task, j.job));
        out
    }

    /// The worst-response completed job of each task, keyed by task.
    pub fn worst_jobs(&self) -> BTreeMap<TaskId, &JobBlame> {
        let mut out: BTreeMap<TaskId, &JobBlame> = BTreeMap::new();
        for j in &self.jobs {
            let cur = out.entry(j.task).or_insert(j);
            if j.response > cur.response {
                *cur = j;
            }
        }
        out
    }
}

/// A job whose blame terms failed to sum to its response time.
///
/// Never produced by a correct reconstruction over a well-formed
/// trace; surfacing it (instead of clamping) is the point of the
/// conservation invariant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConservationError {
    /// Offending task.
    pub task: TaskId,
    /// Offending job.
    pub job: JobId,
    /// The job's measured response time.
    pub response: Cycles,
    /// What the six terms summed to instead.
    pub attributed: Cycles,
}

impl std::fmt::Display for ConservationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "conservation violated for {} {}: terms sum to {} but response is {}",
            self.task, self.job, self.attributed, self.response
        )
    }
}

impl std::error::Error for ConservationError {}

/// Attributes every completed job in `trace` and validates the
/// conservation invariant for each one, with zero tolerance.
///
/// Works on traces with or without attribution anchors (without them
/// the fetch and contention terms are zero and the lost cycles land in
/// dispatch-wait; see [`crate::spans`]).
pub fn attribute(trace: &Trace) -> Result<BlameReport, ConservationError> {
    let mut jobs = Vec::new();
    let mut tasks: BTreeMap<TaskId, TaskBlame> = BTreeMap::new();
    for js in reconstruct(trace) {
        let mut b = JobBlame {
            task: js.task,
            job: js.job,
            release: js.release,
            response: js.response,
            missed: js.missed,
            compute: Cycles::ZERO,
            blocking_fetch: Cycles::ZERO,
            bus_contention: Cycles::ZERO,
            fault_refetch: Cycles::ZERO,
            dispatch_wait: Cycles::ZERO,
            preemption_by: BTreeMap::new(),
        };
        for s in &js.spans {
            let len = s.len();
            match s.kind {
                SpanKind::Compute => b.compute += len,
                SpanKind::BusContention => b.bus_contention += len,
                SpanKind::BlockingFetch => b.blocking_fetch += len,
                SpanKind::FaultRefetch => b.fault_refetch += len,
                SpanKind::DispatchWait => b.dispatch_wait += len,
                SpanKind::Preempted { by } => {
                    *b.preemption_by.entry(by).or_insert(Cycles::ZERO) += len;
                }
            }
        }
        if b.total() != b.response {
            return Err(ConservationError {
                task: b.task,
                job: b.job,
                response: b.response,
                attributed: b.total(),
            });
        }
        let t = tasks.entry(b.task).or_default();
        t.jobs += 1;
        t.misses += u64::from(b.missed);
        t.max_response = t.max_response.max(b.response);
        t.compute += b.compute;
        t.blocking_fetch += b.blocking_fetch;
        t.bus_contention += b.bus_contention;
        t.fault_refetch += b.fault_refetch;
        t.dispatch_wait += b.dispatch_wait;
        for (&by, &c) in &b.preemption_by {
            *t.preemption_by.entry(by).or_insert(Cycles::ZERO) += c;
        }
        jobs.push(b);
    }
    Ok(BlameReport { jobs, tasks })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtmdm_mcusim::{SegmentId, TraceKind};

    fn cy(n: u64) -> Cycles {
        Cycles::new(n)
    }

    fn seg(trace: &mut Trace, task: usize, job: u64, s: usize, start: u64, end: u64) {
        trace.push(
            cy(start),
            TraceKind::SegmentStarted {
                task: TaskId(task),
                job: JobId(job),
                segment: SegmentId(s),
            },
        );
        trace.push(
            cy(end),
            TraceKind::SegmentCompleted {
                task: TaskId(task),
                job: JobId(job),
                segment: SegmentId(s),
            },
        );
    }

    /// T0 J0: released 0, preempted by T1 [10, 40), computes [40, 90),
    /// completes at 90.
    fn preempted_trace() -> Trace {
        let mut t = Trace::new();
        t.push(
            cy(0),
            TraceKind::JobReleased {
                task: TaskId(0),
                job: JobId(0),
                deadline: cy(200),
            },
        );
        seg(&mut t, 1, 0, 0, 10, 40);
        seg(&mut t, 0, 0, 0, 40, 90);
        t.push(
            cy(90),
            TraceKind::JobCompleted {
                task: TaskId(0),
                job: JobId(0),
                response: cy(90),
            },
        );
        t
    }

    #[test]
    fn terms_conserve_and_aggregate() {
        let report = attribute(&preempted_trace()).expect("conserves");
        assert_eq!(report.jobs.len(), 1);
        let j = &report.jobs[0];
        assert_eq!(j.compute, cy(50));
        assert_eq!(j.preemption_by[&TaskId(1)], cy(30));
        assert_eq!(j.dispatch_wait, cy(10));
        assert_eq!(j.total(), j.response);
        assert_eq!(
            j.dominant_interference(),
            Some((BlameSource::Preemption, cy(30)))
        );
        let t = &report.tasks[&TaskId(0)];
        assert_eq!(t.jobs, 1);
        assert_eq!(t.misses, 0);
        assert_eq!(t.max_response, cy(90));
        assert_eq!(t.total(), cy(90));
    }

    #[test]
    fn compute_bound_job_has_no_dominant_source() {
        let mut t = Trace::new();
        t.push(
            cy(0),
            TraceKind::JobReleased {
                task: TaskId(0),
                job: JobId(0),
                deadline: cy(100),
            },
        );
        seg(&mut t, 0, 0, 0, 0, 60);
        t.push(
            cy(60),
            TraceKind::JobCompleted {
                task: TaskId(0),
                job: JobId(0),
                response: cy(60),
            },
        );
        let report = attribute(&t).expect("conserves");
        assert_eq!(report.jobs[0].dominant_interference(), None);
    }

    #[test]
    fn missed_jobs_rank_worst_first() {
        let mut t = Trace::new();
        for (job, miss_at, done, resp) in [(0u64, 90u64, 100u64, 100u64), (1, 190, 250, 150)] {
            t.push(
                cy(miss_at),
                TraceKind::DeadlineMissed {
                    task: TaskId(0),
                    job: JobId(job),
                },
            );
            t.push(
                cy(done),
                TraceKind::JobCompleted {
                    task: TaskId(0),
                    job: JobId(job),
                    response: cy(resp),
                },
            );
        }
        let report = attribute(&t).expect("conserves");
        let missed = report.missed_jobs();
        assert_eq!(missed.len(), 2);
        assert_eq!(missed[0].job, JobId(1));
        assert_eq!(report.worst_jobs()[&TaskId(0)].job, JobId(1));
        assert_eq!(report.tasks[&TaskId(0)].misses, 2);
    }

    #[test]
    fn conservation_error_displays_ids() {
        let e = ConservationError {
            task: TaskId(2),
            job: JobId(7),
            response: cy(100),
            attributed: cy(90),
        };
        let msg = e.to_string();
        assert!(msg.contains("T2") && msg.contains("J7"), "{msg}");
    }
}
