//! Timeline analytics over execution traces.
//!
//! [`Timeline::from_trace`] performs one pass over a [`Trace`] and
//! derives exact interval data: per-task Gantt slices, CPU/DMA busy
//! unions, idle intervals, and the fetch/compute overlap. All arithmetic
//! is integer-exact over the event stream, so the headline invariant
//! `cpu_busy + cpu_idle == horizon` holds by construction and every
//! derived number is identical regardless of worker-thread settings.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use rtmdm_mcusim::{Cycles, JobId, SegmentId, TaskId, Trace, TraceKind};

/// A half-open interval of simulation time `[start, end)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Interval {
    /// First cycle of the interval.
    pub start: Cycles,
    /// One past the last cycle of the interval.
    pub end: Cycles,
}

impl Interval {
    /// Length of the interval.
    pub fn len(&self) -> Cycles {
        self.end.saturating_sub(self.start)
    }

    /// Whether the interval is empty.
    pub fn is_empty(&self) -> bool {
        self.end <= self.start
    }
}

/// One contiguous run of a segment on the CPU.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SegmentSlice {
    /// Owning task.
    pub task: TaskId,
    /// Owning job.
    pub job: JobId,
    /// Segment index.
    pub segment: SegmentId,
    /// When the CPU started the segment.
    pub start: Cycles,
    /// When the segment retired (clamped to the horizon if the trace
    /// ended mid-segment).
    pub end: Cycles,
}

/// One DMA transfer staging a segment's weights.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FetchSlice {
    /// Owning task.
    pub task: TaskId,
    /// Owning job.
    pub job: JobId,
    /// Segment whose weights were staged.
    pub segment: SegmentId,
    /// Transfer size in bytes.
    pub bytes: u64,
    /// When the DMA started.
    pub start: Cycles,
    /// When the transfer finished (clamped to the horizon if the trace
    /// ended mid-transfer).
    pub end: Cycles,
}

/// Per-task aggregates derived from the trace.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TaskTimeline {
    /// CPU cycles spent executing this task's segments.
    pub busy: Cycles,
    /// Jobs released.
    pub releases: u64,
    /// Jobs completed.
    pub completions: u64,
    /// Deadline misses.
    pub misses: u64,
    /// Segment-boundary preemptions suffered.
    pub preemptions: u64,
    /// Largest observed response time, if any job completed.
    pub max_response: Option<Cycles>,
}

impl TaskTimeline {
    /// Observed CPU utilization over `horizon`, in parts per million.
    pub fn utilization_ppm(&self, horizon: Cycles) -> u64 {
        ratio_ppm(self.busy, horizon)
    }
}

/// A compact, serializable digest of a timeline — what the benchmark
/// telemetry embeds in `results/metrics.json`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TimelineSummary {
    /// Analysis horizon in cycles.
    pub horizon: Cycles,
    /// Cycles the CPU executed segments.
    pub cpu_busy: Cycles,
    /// Cycles the CPU was idle (`horizon - cpu_busy`, exact).
    pub cpu_idle: Cycles,
    /// Cycles the DMA was streaming.
    pub dma_busy: Cycles,
    /// Cycles during which CPU compute and a DMA fetch overlapped.
    pub overlap: Cycles,
    /// `cpu_busy / horizon` in parts per million.
    pub cpu_utilization_ppm: u64,
    /// `dma_busy / horizon` in parts per million.
    pub dma_utilization_ppm: u64,
    /// Fraction of DMA streaming hidden under compute, in parts per
    /// million of `dma_busy` (≤ 1 000 000).
    pub overlap_ratio_ppm: u64,
}

/// Exact interval analytics over one trace (see the module docs).
///
/// # Examples
///
/// ```rust
/// use rtmdm_mcusim::{Cycles, JobId, SegmentId, TaskId, Trace, TraceKind};
/// use rtmdm_obs::Timeline;
///
/// let mut trace = Trace::new();
/// let (t, j, s) = (TaskId(0), JobId(0), SegmentId(0));
/// trace.push(Cycles::new(10), TraceKind::SegmentStarted { task: t, job: j, segment: s });
/// trace.push(Cycles::new(40), TraceKind::SegmentCompleted { task: t, job: j, segment: s });
/// let tl = Timeline::from_trace(&trace, Cycles::new(100));
/// assert_eq!(tl.cpu_busy(), Cycles::new(30));
/// assert_eq!(tl.cpu_busy() + tl.cpu_idle(), Cycles::new(100));
/// ```
#[derive(Debug, Clone)]
pub struct Timeline {
    horizon: Cycles,
    segments: Vec<SegmentSlice>,
    fetches: Vec<FetchSlice>,
    cpu_intervals: Vec<Interval>,
    dma_intervals: Vec<Interval>,
    cpu_busy: Cycles,
    dma_busy: Cycles,
    overlap: Cycles,
    tasks: BTreeMap<TaskId, TaskTimeline>,
    traced_idle: Vec<Interval>,
    faults: Vec<(Cycles, TaskId)>,
    aborts: Vec<(Cycles, TaskId)>,
    sheds: Vec<(Cycles, TaskId)>,
}

impl Timeline {
    /// Builds the timeline from `trace` over `[0, horizon)`.
    ///
    /// Intervals still open when the trace ends (a segment, fetch, or
    /// idle period the simulator never closed because the horizon hit)
    /// are clamped to `horizon`; events at or beyond the horizon are
    /// ignored.
    pub fn from_trace(trace: &Trace, horizon: Cycles) -> Self {
        let mut segments = Vec::new();
        let mut fetches = Vec::new();
        let mut tasks: BTreeMap<TaskId, TaskTimeline> = BTreeMap::new();
        let mut open_seg: BTreeMap<(TaskId, JobId, SegmentId), Cycles> = BTreeMap::new();
        let mut open_fetch: BTreeMap<(TaskId, JobId, SegmentId), (Cycles, u64)> = BTreeMap::new();
        let mut traced_idle = Vec::new();
        let mut open_idle: Option<Cycles> = None;
        let mut faults = Vec::new();
        let mut aborts = Vec::new();
        let mut sheds = Vec::new();

        for e in trace.events() {
            let time = e.time.min(horizon);
            match e.kind {
                TraceKind::SegmentStarted { task, job, segment } => {
                    open_seg.insert((task, job, segment), time);
                }
                TraceKind::SegmentCompleted { task, job, segment } => {
                    if let Some(start) = open_seg.remove(&(task, job, segment)) {
                        segments.push(SegmentSlice {
                            task,
                            job,
                            segment,
                            start,
                            end: time,
                        });
                    }
                }
                TraceKind::FetchStarted {
                    task,
                    job,
                    segment,
                    bytes,
                } => {
                    open_fetch.insert((task, job, segment), (time, bytes));
                }
                TraceKind::FetchCompleted { task, job, segment } => {
                    if let Some((start, bytes)) = open_fetch.remove(&(task, job, segment)) {
                        fetches.push(FetchSlice {
                            task,
                            job,
                            segment,
                            bytes,
                            start,
                            end: time,
                        });
                    }
                }
                TraceKind::JobReleased { task, .. } => {
                    tasks.entry(task).or_default().releases += 1;
                }
                TraceKind::JobCompleted { task, response, .. } => {
                    let t = tasks.entry(task).or_default();
                    t.completions += 1;
                    t.max_response = Some(t.max_response.map_or(response, |m| m.max(response)));
                }
                TraceKind::DeadlineMissed { task, .. } => {
                    tasks.entry(task).or_default().misses += 1;
                }
                TraceKind::Preempted { task, .. } => {
                    tasks.entry(task).or_default().preemptions += 1;
                }
                TraceKind::CpuIdle => {
                    // Duplicate opens keep the earliest start.
                    open_idle.get_or_insert(time);
                }
                TraceKind::CpuIdleEnd => {
                    if let Some(start) = open_idle.take() {
                        if start < time {
                            traced_idle.push(Interval { start, end: time });
                        }
                    }
                }
                TraceKind::FetchFaulted { task, .. } => {
                    faults.push((time, task));
                }
                TraceKind::JobAborted { task, .. } => {
                    aborts.push((time, task));
                }
                TraceKind::ReleaseShed { task, .. } => {
                    sheds.push((time, task));
                }
                _ => {}
            }
        }
        // A trace that ends mid-idle has no paired `CpuIdleEnd`:
        // synthesize the closing cut at the horizon so traced idle
        // still complements CPU busy exactly.
        if let Some(start) = open_idle {
            if start < horizon {
                traced_idle.push(Interval {
                    start,
                    end: horizon,
                });
            }
        }
        // Clamp whatever the horizon cut off mid-flight.
        for ((task, job, segment), start) in open_seg {
            segments.push(SegmentSlice {
                task,
                job,
                segment,
                start,
                end: horizon,
            });
        }
        for ((task, job, segment), (start, bytes)) in open_fetch {
            fetches.push(FetchSlice {
                task,
                job,
                segment,
                bytes,
                start,
                end: horizon,
            });
        }
        segments.sort_by_key(|s| (s.start, s.task, s.job, s.segment));
        fetches.sort_by_key(|f| (f.start, f.task, f.job, f.segment));

        for s in &segments {
            tasks.entry(s.task).or_default().busy += s.end.saturating_sub(s.start);
        }

        let cpu_intervals = merge_intervals(
            segments
                .iter()
                .map(|s| Interval {
                    start: s.start,
                    end: s.end,
                })
                .collect(),
        );
        let dma_intervals = merge_intervals(
            fetches
                .iter()
                .map(|f| Interval {
                    start: f.start,
                    end: f.end,
                })
                .collect(),
        );
        let cpu_busy = total(&cpu_intervals);
        let dma_busy = total(&dma_intervals);
        let overlap = intersection_cycles(&cpu_intervals, &dma_intervals);

        Timeline {
            horizon,
            segments,
            fetches,
            cpu_intervals,
            dma_intervals,
            cpu_busy,
            dma_busy,
            overlap,
            tasks,
            traced_idle,
            faults,
            aborts,
            sheds,
        }
    }

    /// Analysis horizon.
    pub fn horizon(&self) -> Cycles {
        self.horizon
    }

    /// All segment executions, sorted by start time.
    pub fn segments(&self) -> &[SegmentSlice] {
        &self.segments
    }

    /// All DMA transfers, sorted by start time.
    pub fn fetches(&self) -> &[FetchSlice] {
        &self.fetches
    }

    /// Per-task aggregates, keyed by task.
    pub fn tasks(&self) -> &BTreeMap<TaskId, TaskTimeline> {
        &self.tasks
    }

    /// Merged intervals during which the CPU executed segments.
    pub fn cpu_intervals(&self) -> &[Interval] {
        &self.cpu_intervals
    }

    /// Merged intervals during which the DMA was streaming.
    pub fn dma_intervals(&self) -> &[Interval] {
        &self.dma_intervals
    }

    /// Total cycles the CPU executed segments.
    pub fn cpu_busy(&self) -> Cycles {
        self.cpu_busy
    }

    /// Total cycles the CPU sat idle: exactly `horizon - cpu_busy`.
    pub fn cpu_idle(&self) -> Cycles {
        self.horizon.saturating_sub(self.cpu_busy)
    }

    /// Total cycles the DMA was streaming.
    pub fn dma_busy(&self) -> Cycles {
        self.dma_busy
    }

    /// Cycles during which compute and a fetch were in flight together.
    pub fn overlap_cycles(&self) -> Cycles {
        self.overlap
    }

    /// The complement of the CPU busy union within `[0, horizon)`.
    pub fn idle_intervals(&self) -> Vec<Interval> {
        let mut out = Vec::new();
        let mut cursor = Cycles::ZERO;
        for iv in &self.cpu_intervals {
            if iv.start > cursor {
                out.push(Interval {
                    start: cursor,
                    end: iv.start.min(self.horizon),
                });
            }
            cursor = cursor.max(iv.end);
        }
        if cursor < self.horizon {
            out.push(Interval {
                start: cursor,
                end: self.horizon,
            });
        }
        out.retain(|iv| !iv.is_empty());
        out
    }

    /// CPU idle periods as the simulator recorded them
    /// ([`TraceKind::CpuIdle`]/[`TraceKind::CpuIdleEnd`] pairs), with
    /// an idle period still open when the trace ends closed at the
    /// horizon. On a trace whose idle events are complete these
    /// complement [`Timeline::cpu_intervals`], so
    /// `cpu_busy + traced_idle_cycles == horizon` holds even when the
    /// horizon lands mid-idle.
    pub fn traced_idle_intervals(&self) -> &[Interval] {
        &self.traced_idle
    }

    /// Total recorded idle cycles (sum of
    /// [`Timeline::traced_idle_intervals`]).
    pub fn traced_idle_cycles(&self) -> Cycles {
        total(&self.traced_idle)
    }

    /// Injected DMA fault instants with the task whose transfer
    /// faulted, in trace order.
    pub fn faults(&self) -> &[(Cycles, TaskId)] {
        &self.faults
    }

    /// Job-abort instants (the `Abort` deadline-miss policy), in trace
    /// order.
    pub fn aborts(&self) -> &[(Cycles, TaskId)] {
        &self.aborts
    }

    /// Shed-release instants (the `SkipNextRelease` deadline-miss
    /// policy), in trace order.
    pub fn sheds(&self) -> &[(Cycles, TaskId)] {
        &self.sheds
    }

    /// `cpu_busy / horizon` in parts per million (0 for a zero horizon).
    pub fn cpu_utilization_ppm(&self) -> u64 {
        ratio_ppm(self.cpu_busy, self.horizon)
    }

    /// `dma_busy / horizon` in parts per million (0 for a zero horizon).
    pub fn dma_utilization_ppm(&self) -> u64 {
        ratio_ppm(self.dma_busy, self.horizon)
    }

    /// Fraction of DMA streaming time hidden under compute, in parts
    /// per million of `dma_busy`. By construction ≤ 1 000 000; 0 when
    /// nothing was fetched.
    pub fn overlap_ratio_ppm(&self) -> u64 {
        ratio_ppm(self.overlap, self.dma_busy)
    }

    /// The serializable digest of this timeline.
    pub fn summary(&self) -> TimelineSummary {
        TimelineSummary {
            horizon: self.horizon,
            cpu_busy: self.cpu_busy,
            cpu_idle: self.cpu_idle(),
            dma_busy: self.dma_busy,
            overlap: self.overlap,
            cpu_utilization_ppm: self.cpu_utilization_ppm(),
            dma_utilization_ppm: self.dma_utilization_ppm(),
            overlap_ratio_ppm: self.overlap_ratio_ppm(),
        }
    }
}

fn ratio_ppm(num: Cycles, den: Cycles) -> u64 {
    if den.is_zero() {
        return 0;
    }
    ((u128::from(num.get()) * 1_000_000) / u128::from(den.get())) as u64
}

/// Sorts and merges overlapping or touching intervals into a disjoint,
/// ascending list; empty intervals are dropped.
fn merge_intervals(mut ivs: Vec<Interval>) -> Vec<Interval> {
    ivs.retain(|iv| !iv.is_empty());
    ivs.sort();
    let mut out: Vec<Interval> = Vec::with_capacity(ivs.len());
    for iv in ivs {
        match out.last_mut() {
            Some(last) if iv.start <= last.end => last.end = last.end.max(iv.end),
            _ => out.push(iv),
        }
    }
    out
}

fn total(ivs: &[Interval]) -> Cycles {
    ivs.iter().map(Interval::len).sum()
}

/// Total length of the intersection of two disjoint, ascending interval
/// lists (two-pointer sweep).
fn intersection_cycles(a: &[Interval], b: &[Interval]) -> Cycles {
    let (mut i, mut j) = (0, 0);
    let mut out = Cycles::ZERO;
    while i < a.len() && j < b.len() {
        let start = a[i].start.max(b[j].start);
        let end = a[i].end.min(b[j].end);
        out += end.saturating_sub(start);
        if a[i].end <= b[j].end {
            i += 1;
        } else {
            j += 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cy(n: u64) -> Cycles {
        Cycles::new(n)
    }

    fn seg(t: usize, j: u64, s: usize) -> (TaskId, JobId, SegmentId) {
        (TaskId(t), JobId(j), SegmentId(s))
    }

    fn push_seg(trace: &mut Trace, ids: (TaskId, JobId, SegmentId), start: u64, end: u64) {
        let (task, job, segment) = ids;
        trace.push(cy(start), TraceKind::SegmentStarted { task, job, segment });
        trace.push(cy(end), TraceKind::SegmentCompleted { task, job, segment });
    }

    #[test]
    fn busy_idle_partition_horizon() {
        let mut t = Trace::new();
        push_seg(&mut t, seg(0, 0, 0), 10, 40);
        push_seg(&mut t, seg(1, 0, 0), 40, 70);
        let tl = Timeline::from_trace(&t, cy(100));
        assert_eq!(tl.cpu_busy(), cy(60));
        assert_eq!(tl.cpu_idle(), cy(40));
        assert_eq!(tl.cpu_busy() + tl.cpu_idle(), tl.horizon());
        assert_eq!(tl.cpu_utilization_ppm(), 600_000);
        assert_eq!(
            tl.idle_intervals(),
            vec![
                Interval {
                    start: cy(0),
                    end: cy(10)
                },
                Interval {
                    start: cy(70),
                    end: cy(100)
                },
            ]
        );
    }

    #[test]
    fn unterminated_segment_clamps_to_horizon() {
        let mut t = Trace::new();
        let (task, job, segment) = seg(0, 0, 0);
        t.push(cy(80), TraceKind::SegmentStarted { task, job, segment });
        let tl = Timeline::from_trace(&t, cy(100));
        assert_eq!(tl.cpu_busy(), cy(20));
        assert_eq!(tl.cpu_busy() + tl.cpu_idle(), cy(100));
        assert_eq!(tl.segments().len(), 1);
        assert_eq!(tl.segments()[0].end, cy(100));
    }

    #[test]
    fn overlap_is_exact_intersection() {
        let mut t = Trace::new();
        let (task, job, segment) = seg(0, 0, 1);
        // Fetch [20, 60); compute [40, 80) → overlap [40, 60) = 20.
        t.push(
            cy(20),
            TraceKind::FetchStarted {
                task,
                job,
                segment,
                bytes: 512,
            },
        );
        let (ct, cj, cs) = seg(0, 0, 0);
        t.push(
            cy(40),
            TraceKind::SegmentStarted {
                task: ct,
                job: cj,
                segment: cs,
            },
        );
        t.push(cy(60), TraceKind::FetchCompleted { task, job, segment });
        t.push(
            cy(80),
            TraceKind::SegmentCompleted {
                task: ct,
                job: cj,
                segment: cs,
            },
        );
        let tl = Timeline::from_trace(&t, cy(100));
        assert_eq!(tl.dma_busy(), cy(40));
        assert_eq!(tl.overlap_cycles(), cy(20));
        assert_eq!(tl.overlap_ratio_ppm(), 500_000);
        assert_eq!(tl.dma_utilization_ppm(), 400_000);
        assert_eq!(tl.fetches()[0].bytes, 512);
    }

    #[test]
    fn per_task_aggregates() {
        let mut t = Trace::new();
        t.push(
            cy(0),
            TraceKind::JobReleased {
                task: TaskId(0),
                job: JobId(0),
                deadline: cy(90),
            },
        );
        push_seg(&mut t, seg(0, 0, 0), 0, 30);
        t.push(
            cy(30),
            TraceKind::Preempted {
                task: TaskId(0),
                by: TaskId(1),
            },
        );
        t.push(
            cy(30),
            TraceKind::JobCompleted {
                task: TaskId(0),
                job: JobId(0),
                response: cy(30),
            },
        );
        t.push(
            cy(90),
            TraceKind::DeadlineMissed {
                task: TaskId(0),
                job: JobId(1),
            },
        );
        let tl = Timeline::from_trace(&t, cy(100));
        let t0 = tl.tasks()[&TaskId(0)];
        assert_eq!(t0.busy, cy(30));
        assert_eq!(t0.releases, 1);
        assert_eq!(t0.completions, 1);
        assert_eq!(t0.misses, 1);
        assert_eq!(t0.preemptions, 1);
        assert_eq!(t0.max_response, Some(cy(30)));
        assert_eq!(t0.utilization_ppm(cy(100)), 300_000);
    }

    #[test]
    fn empty_trace_is_all_idle() {
        let tl = Timeline::from_trace(&Trace::new(), cy(50));
        assert_eq!(tl.cpu_busy(), Cycles::ZERO);
        assert_eq!(tl.cpu_idle(), cy(50));
        assert_eq!(tl.overlap_ratio_ppm(), 0);
        assert_eq!(
            tl.idle_intervals(),
            vec![Interval {
                start: cy(0),
                end: cy(50)
            }]
        );
        let zero = Timeline::from_trace(&Trace::new(), Cycles::ZERO);
        assert_eq!(zero.cpu_utilization_ppm(), 0);
    }

    #[test]
    fn open_idle_at_horizon_closes_exactly() {
        // Regression: the simulator stops emitting at the horizon, so a
        // trace can end with an open `CpuIdle`. The timeline must
        // synthesize the closing cut so busy and traced idle still
        // partition the horizon.
        let mut t = Trace::new();
        t.push(cy(0), TraceKind::CpuIdle);
        t.push(cy(10), TraceKind::CpuIdleEnd);
        push_seg(&mut t, seg(0, 0, 0), 10, 40);
        t.push(cy(40), TraceKind::CpuIdle); // never closed: horizon mid-idle
        let tl = Timeline::from_trace(&t, cy(100));
        assert_eq!(
            tl.traced_idle_intervals(),
            &[
                Interval {
                    start: cy(0),
                    end: cy(10)
                },
                Interval {
                    start: cy(40),
                    end: cy(100)
                },
            ]
        );
        assert_eq!(tl.traced_idle_cycles(), cy(70));
        assert_eq!(tl.cpu_busy() + tl.traced_idle_cycles(), tl.horizon());
        assert_eq!(tl.cpu_busy() + tl.cpu_idle(), tl.horizon());
        // An idle period opening at or beyond the horizon is dropped.
        let mut u = Trace::new();
        u.push(cy(100), TraceKind::CpuIdle);
        let ul = Timeline::from_trace(&u, cy(100));
        assert!(ul.traced_idle_intervals().is_empty());
    }

    #[test]
    fn fault_abort_and_shed_markers_are_collected() {
        let mut t = Trace::new();
        t.push(
            cy(5),
            TraceKind::FetchFaulted {
                task: TaskId(0),
                job: JobId(0),
                segment: SegmentId(0),
                attempt: 0,
            },
        );
        t.push(
            cy(20),
            TraceKind::JobAborted {
                task: TaskId(1),
                job: JobId(0),
            },
        );
        t.push(
            cy(30),
            TraceKind::ReleaseShed {
                task: TaskId(1),
                job: JobId(1),
            },
        );
        let tl = Timeline::from_trace(&t, cy(100));
        assert_eq!(tl.faults(), &[(cy(5), TaskId(0))]);
        assert_eq!(tl.aborts(), &[(cy(20), TaskId(1))]);
        assert_eq!(tl.sheds(), &[(cy(30), TaskId(1))]);
    }

    #[test]
    fn summary_round_trips_through_json() {
        let mut t = Trace::new();
        push_seg(&mut t, seg(0, 0, 0), 5, 25);
        let tl = Timeline::from_trace(&t, cy(100));
        let s = tl.summary();
        assert_eq!(s.cpu_busy + s.cpu_idle, s.horizon);
        let json = serde_json::to_string(&s).expect("serialize");
        let back: TimelineSummary = serde_json::from_str(&json).expect("parse");
        assert_eq!(back, s);
    }

    #[test]
    fn interval_merging_handles_overlap_and_touching() {
        let merged = merge_intervals(vec![
            Interval {
                start: cy(10),
                end: cy(20),
            },
            Interval {
                start: cy(20),
                end: cy(30),
            },
            Interval {
                start: cy(15),
                end: cy(25),
            },
            Interval {
                start: cy(40),
                end: cy(40),
            },
            Interval {
                start: cy(50),
                end: cy(60),
            },
        ]);
        assert_eq!(
            merged,
            vec![
                Interval {
                    start: cy(10),
                    end: cy(30)
                },
                Interval {
                    start: cy(50),
                    end: cy(60)
                },
            ]
        );
        assert_eq!(total(&merged), cy(30));
    }
}
