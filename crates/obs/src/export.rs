//! Trace exporters: Chrome trace-event JSON (Perfetto-loadable) and
//! line-delimited JSON (JSONL).
//!
//! The Chrome export lays the schedule out on fixed lanes:
//!
//! - `tid 1` (**CPU**): one complete event (`ph: "X"`) per
//!   `SegmentStarted`/`SegmentCompleted` pair — the CPU's view of the
//!   schedule;
//! - `tid 2` (**DMA**): one complete event per
//!   `FetchStarted`/`FetchCompleted` pair, plus instant events for
//!   injected transfer faults;
//! - `tid 10 + k` (one lane per task `k`): one complete event per
//!   finished job (aborted jobs get a release→abort slice instead),
//!   plus instant events (`ph: "i"`) for deadline misses, preemptions,
//!   and shed releases.
//!
//! Timestamps and durations are raw simulation cycles (Perfetto treats
//! them as microseconds; relative magnitudes are what matters).
//! Intervals left open at the end of the trace are omitted. Export is a
//! pure function of the trace, so output bytes are deterministic.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use rtmdm_mcusim::{Cycles, JobId, SegmentId, TaskId, Trace, TraceKind};

/// Lane (`tid`) of the aggregate CPU row in the Chrome export.
pub const TID_CPU: u64 = 1;
/// Lane (`tid`) of the DMA row in the Chrome export.
pub const TID_DMA: u64 = 2;
/// Lane of task `k` is `TID_TASK_BASE + k` in the Chrome export.
pub const TID_TASK_BASE: u64 = 10;

/// One event in the Chrome trace-event format.
///
/// The subset of fields emitted here (`name`, `cat`, `ph`, `ts`, `dur`,
/// `pid`, `tid`) is what Perfetto's JSON importer needs; instant events
/// carry `dur: 0`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChromeEvent {
    /// Human-readable slice label.
    pub name: String,
    /// Event category: `segment`, `fetch`, `job`, `miss`, `preempt`,
    /// `fault`, `abort`, or `shed`.
    pub cat: String,
    /// Phase: `X` (complete) or `i` (instant).
    pub ph: String,
    /// Start timestamp in simulation cycles.
    pub ts: u64,
    /// Duration in simulation cycles (0 for instants).
    pub dur: u64,
    /// Process id (always 0 — one simulated MCU).
    pub pid: u64,
    /// Lane id (see [`TID_CPU`], [`TID_DMA`], [`TID_TASK_BASE`]).
    pub tid: u64,
}

/// Root object of a Chrome trace-event file.
#[allow(non_snake_case)]
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChromeTrace {
    /// The event list (field name fixed by the Chrome trace format).
    pub traceEvents: Vec<ChromeEvent>,
}

fn task_label(names: &[String], task: TaskId) -> String {
    names
        .get(task.0)
        .cloned()
        .unwrap_or_else(|| task.to_string())
}

/// Converts a trace to the Chrome trace-event object.
///
/// `task_names` labels lanes and slices by task index; tasks beyond the
/// slice fall back to `T{k}`.
pub fn chrome_trace(trace: &Trace, task_names: &[String]) -> ChromeTrace {
    let mut events = Vec::new();
    let mut open_seg: BTreeMap<(TaskId, JobId, SegmentId), Cycles> = BTreeMap::new();
    let mut open_fetch: BTreeMap<(TaskId, JobId, SegmentId), Cycles> = BTreeMap::new();
    let mut open_job: BTreeMap<(TaskId, JobId), Cycles> = BTreeMap::new();

    for e in trace.events() {
        match e.kind {
            TraceKind::SegmentStarted { task, job, segment } => {
                open_seg.insert((task, job, segment), e.time);
            }
            TraceKind::SegmentCompleted { task, job, segment } => {
                if let Some(start) = open_seg.remove(&(task, job, segment)) {
                    events.push(ChromeEvent {
                        name: format!("{} {}", task_label(task_names, task), segment),
                        cat: "segment".to_owned(),
                        ph: "X".to_owned(),
                        ts: start.get(),
                        dur: e.time.saturating_sub(start).get(),
                        pid: 0,
                        tid: TID_CPU,
                    });
                }
            }
            TraceKind::FetchStarted {
                task, job, segment, ..
            } => {
                open_fetch.insert((task, job, segment), e.time);
            }
            TraceKind::FetchCompleted { task, job, segment } => {
                if let Some(start) = open_fetch.remove(&(task, job, segment)) {
                    events.push(ChromeEvent {
                        name: format!("fetch {} {}", task_label(task_names, task), segment),
                        cat: "fetch".to_owned(),
                        ph: "X".to_owned(),
                        ts: start.get(),
                        dur: e.time.saturating_sub(start).get(),
                        pid: 0,
                        tid: TID_DMA,
                    });
                }
            }
            TraceKind::JobReleased { task, job, .. } => {
                open_job.insert((task, job), e.time);
            }
            TraceKind::JobCompleted { task, job, .. } => {
                if let Some(release) = open_job.remove(&(task, job)) {
                    events.push(ChromeEvent {
                        name: format!("{} {}", task_label(task_names, task), job),
                        cat: "job".to_owned(),
                        ph: "X".to_owned(),
                        ts: release.get(),
                        dur: e.time.saturating_sub(release).get(),
                        pid: 0,
                        tid: TID_TASK_BASE + task.0 as u64,
                    });
                }
            }
            TraceKind::DeadlineMissed { task, job } => {
                events.push(ChromeEvent {
                    name: format!("miss {} {}", task_label(task_names, task), job),
                    cat: "miss".to_owned(),
                    ph: "i".to_owned(),
                    ts: e.time.get(),
                    dur: 0,
                    pid: 0,
                    tid: TID_TASK_BASE + task.0 as u64,
                });
            }
            TraceKind::Preempted { task, by } => {
                events.push(ChromeEvent {
                    name: format!(
                        "{} preempted by {}",
                        task_label(task_names, task),
                        task_label(task_names, by)
                    ),
                    cat: "preempt".to_owned(),
                    ph: "i".to_owned(),
                    ts: e.time.get(),
                    dur: 0,
                    pid: 0,
                    tid: TID_TASK_BASE + task.0 as u64,
                });
            }
            TraceKind::FetchFaulted {
                task,
                job,
                segment,
                attempt,
            } => {
                // Instant on the DMA lane. The simulator re-emits
                // `FetchStarted` for the retry, so the open-fetch entry
                // is overwritten and the final `fetch` slice spans the
                // successful attempt only — faulted spans are visible
                // as the gap between this marker and that slice.
                events.push(ChromeEvent {
                    name: format!(
                        "fault {} {} {} attempt {}",
                        task_label(task_names, task),
                        job,
                        segment,
                        attempt
                    ),
                    cat: "fault".to_owned(),
                    ph: "i".to_owned(),
                    ts: e.time.get(),
                    dur: 0,
                    pid: 0,
                    tid: TID_DMA,
                });
            }
            TraceKind::JobAborted { task, job } => {
                // The job never completes, so close its open interval
                // here: the slice spans release → abort.
                if let Some(release) = open_job.remove(&(task, job)) {
                    events.push(ChromeEvent {
                        name: format!("{} {} aborted", task_label(task_names, task), job),
                        cat: "abort".to_owned(),
                        ph: "X".to_owned(),
                        ts: release.get(),
                        dur: e.time.saturating_sub(release).get(),
                        pid: 0,
                        tid: TID_TASK_BASE + task.0 as u64,
                    });
                }
            }
            TraceKind::ReleaseShed { task, job } => {
                events.push(ChromeEvent {
                    name: format!("shed {} {}", task_label(task_names, task), job),
                    cat: "shed".to_owned(),
                    ph: "i".to_owned(),
                    ts: e.time.get(),
                    dur: 0,
                    pid: 0,
                    tid: TID_TASK_BASE + task.0 as u64,
                });
            }
            _ => {}
        }
    }
    ChromeTrace {
        traceEvents: events,
    }
}

/// Converts a trace to the Chrome trace-event object with one extra
/// `cat: "blame"` complete event per attributed span, nested under the
/// owning task's lane so each job slice decomposes visually into
/// compute / bus-contention / blocking-fetch / fault-refetch /
/// preempted-by / dispatch-wait (see [`crate::spans`]).
///
/// The base events are exactly those of [`chrome_trace`]; the default
/// export stays byte-identical when this function is not used.
pub fn chrome_trace_with_blame(trace: &Trace, task_names: &[String]) -> ChromeTrace {
    use crate::spans::SpanKind;
    let mut ct = chrome_trace(trace, task_names);
    for js in crate::spans::reconstruct(trace) {
        for span in &js.spans {
            let name = match span.kind {
                SpanKind::Compute => "compute".to_owned(),
                SpanKind::BusContention => "bus-contention".to_owned(),
                SpanKind::BlockingFetch => "blocking-fetch".to_owned(),
                SpanKind::FaultRefetch => "fault-refetch".to_owned(),
                SpanKind::DispatchWait => "dispatch-wait".to_owned(),
                SpanKind::Preempted { by } => {
                    format!("preempted by {}", task_label(task_names, by))
                }
            };
            ct.traceEvents.push(ChromeEvent {
                name,
                cat: "blame".to_owned(),
                ph: "X".to_owned(),
                ts: span.interval.start.get(),
                dur: span.len().get(),
                pid: 0,
                tid: TID_TASK_BASE + js.task.0 as u64,
            });
        }
    }
    ct
}

/// Serializes a trace straight to Chrome trace-event JSON text.
pub fn chrome_trace_json(trace: &Trace, task_names: &[String]) -> String {
    serde_json::to_string(&chrome_trace(trace, task_names))
        .expect("chrome trace serialization is infallible")
}

/// Serializes a trace to JSONL: one raw [`rtmdm_mcusim::TraceEvent`]
/// JSON object per line (newline-terminated). Each line round-trips
/// through the vendored serde_json back into a `TraceEvent`.
pub fn jsonl(trace: &Trace) -> String {
    let mut out = String::new();
    for e in trace.events() {
        out.push_str(&serde_json::to_string(e).expect("trace event serialization is infallible"));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtmdm_mcusim::TraceEvent;

    fn cy(n: u64) -> Cycles {
        Cycles::new(n)
    }

    fn sample() -> Trace {
        let mut t = Trace::new();
        let (t0, j0) = (TaskId(0), JobId(0));
        t.push(
            cy(0),
            TraceKind::JobReleased {
                task: t0,
                job: j0,
                deadline: cy(200),
            },
        );
        t.push(
            cy(0),
            TraceKind::FetchStarted {
                task: t0,
                job: j0,
                segment: SegmentId(0),
                bytes: 256,
            },
        );
        t.push(
            cy(20),
            TraceKind::FetchCompleted {
                task: t0,
                job: j0,
                segment: SegmentId(0),
            },
        );
        t.push(
            cy(20),
            TraceKind::SegmentStarted {
                task: t0,
                job: j0,
                segment: SegmentId(0),
            },
        );
        t.push(
            cy(70),
            TraceKind::SegmentCompleted {
                task: t0,
                job: j0,
                segment: SegmentId(0),
            },
        );
        t.push(
            cy(70),
            TraceKind::JobCompleted {
                task: t0,
                job: j0,
                response: cy(70),
            },
        );
        t.push(
            cy(90),
            TraceKind::Preempted {
                task: t0,
                by: TaskId(1),
            },
        );
        t
    }

    #[test]
    fn one_complete_event_per_segment_pair() {
        let ct = chrome_trace(&sample(), &["kws".to_owned()]);
        let segs: Vec<_> = ct
            .traceEvents
            .iter()
            .filter(|e| e.cat == "segment")
            .collect();
        assert_eq!(segs.len(), 1);
        assert_eq!(segs[0].ph, "X");
        assert_eq!(segs[0].ts, 20);
        assert_eq!(segs[0].dur, 50);
        assert_eq!(segs[0].tid, TID_CPU);
        assert_eq!(segs[0].name, "kws S0");
    }

    #[test]
    fn lanes_and_categories_are_assigned() {
        let ct = chrome_trace(&sample(), &[]);
        let fetch = ct
            .traceEvents
            .iter()
            .find(|e| e.cat == "fetch")
            .expect("fetch lane");
        assert_eq!(fetch.tid, TID_DMA);
        assert_eq!(fetch.dur, 20);
        let job = ct
            .traceEvents
            .iter()
            .find(|e| e.cat == "job")
            .expect("job lane");
        assert_eq!(job.tid, TID_TASK_BASE);
        assert_eq!(job.dur, 70);
        assert_eq!(job.name, "T0 J0");
        let preempt = ct
            .traceEvents
            .iter()
            .find(|e| e.cat == "preempt")
            .expect("instant");
        assert_eq!(preempt.ph, "i");
        assert_eq!(preempt.dur, 0);
    }

    #[test]
    fn fault_abort_and_shed_events_are_exported() {
        let mut t = Trace::new();
        let (t0, j0) = (TaskId(0), JobId(0));
        t.push(
            cy(0),
            TraceKind::JobReleased {
                task: t0,
                job: j0,
                deadline: cy(100),
            },
        );
        t.push(
            cy(0),
            TraceKind::FetchStarted {
                task: t0,
                job: j0,
                segment: SegmentId(0),
                bytes: 256,
            },
        );
        t.push(
            cy(20),
            TraceKind::FetchFaulted {
                task: t0,
                job: j0,
                segment: SegmentId(0),
                attempt: 0,
            },
        );
        t.push(
            cy(20),
            TraceKind::FetchStarted {
                task: t0,
                job: j0,
                segment: SegmentId(0),
                bytes: 256,
            },
        );
        t.push(
            cy(40),
            TraceKind::FetchCompleted {
                task: t0,
                job: j0,
                segment: SegmentId(0),
            },
        );
        t.push(cy(110), TraceKind::JobAborted { task: t0, job: j0 });
        t.push(
            cy(120),
            TraceKind::ReleaseShed {
                task: t0,
                job: JobId(1),
            },
        );
        let ct = chrome_trace(&t, &["kws".to_owned()]);
        let fault = ct
            .traceEvents
            .iter()
            .find(|e| e.cat == "fault")
            .expect("fault instant");
        assert_eq!(fault.ph, "i");
        assert_eq!(fault.tid, TID_DMA);
        assert_eq!(fault.name, "fault kws J0 S0 attempt 0");
        // The retry re-opened the fetch: the final slice spans the
        // successful attempt only (20..40).
        let fetch = ct
            .traceEvents
            .iter()
            .find(|e| e.cat == "fetch")
            .expect("fetch slice");
        assert_eq!((fetch.ts, fetch.dur), (20, 20));
        let abort = ct
            .traceEvents
            .iter()
            .find(|e| e.cat == "abort")
            .expect("abort slice");
        assert_eq!(abort.ph, "X");
        assert_eq!((abort.ts, abort.dur), (0, 110));
        // No `job` slice for the aborted job.
        assert!(ct.traceEvents.iter().all(|e| e.cat != "job"));
        let shed = ct
            .traceEvents
            .iter()
            .find(|e| e.cat == "shed")
            .expect("shed instant");
        assert_eq!(shed.ph, "i");
        assert_eq!(shed.ts, 120);
    }

    #[test]
    fn unpaired_opens_are_omitted() {
        let mut t = Trace::new();
        t.push(
            cy(10),
            TraceKind::SegmentStarted {
                task: TaskId(0),
                job: JobId(0),
                segment: SegmentId(0),
            },
        );
        let ct = chrome_trace(&t, &[]);
        assert!(ct.traceEvents.is_empty());
    }

    #[test]
    fn blame_spans_nest_under_task_lanes() {
        let names = vec!["kws".to_owned()];
        let base = chrome_trace(&sample(), &names);
        let with = chrome_trace_with_blame(&sample(), &names);
        // The base events are exactly the default export's.
        assert_eq!(
            &with.traceEvents[..base.traceEvents.len()],
            &base.traceEvents[..]
        );
        let blame: Vec<_> = with
            .traceEvents
            .iter()
            .filter(|e| e.cat == "blame")
            .collect();
        // Window [0, 70): dispatch-wait [0, 20), compute [20, 70).
        assert_eq!(blame.len(), 2);
        assert_eq!(blame[0].name, "dispatch-wait");
        assert_eq!((blame[0].ts, blame[0].dur), (0, 20));
        assert_eq!(blame[1].name, "compute");
        assert_eq!((blame[1].ts, blame[1].dur), (20, 50));
        assert!(blame.iter().all(|e| e.tid == TID_TASK_BASE && e.ph == "X"));
        // The attributed spans partition the job slice's window.
        let total: u64 = blame.iter().map(|e| e.dur).sum();
        assert_eq!(total, 70);
    }

    #[test]
    fn chrome_json_round_trips() {
        let names = vec!["kws".to_owned()];
        let json = chrome_trace_json(&sample(), &names);
        let back: ChromeTrace = serde_json::from_str(&json).expect("parse");
        assert_eq!(back, chrome_trace(&sample(), &names));
        assert!(json.starts_with("{\"traceEvents\":["));
    }

    #[test]
    fn jsonl_lines_round_trip() {
        let trace = sample();
        let text = jsonl(&trace);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), trace.len());
        for (line, original) in lines.iter().zip(trace.events()) {
            let back: TraceEvent = serde_json::from_str(line).expect("parse line");
            assert_eq!(back, *original);
        }
    }
}
