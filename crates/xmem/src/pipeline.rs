//! Closed-form timing of the fetch/compute pipeline for a job running in
//! isolation (no other tasks). This is the model behind experiment F1 and
//! the per-segment worst-case numbers the schedulability analysis builds
//! on.

use serde::{Deserialize, Serialize};

use rtmdm_mcusim::{Cycles, PlatformConfig};
use rtmdm_obs::Registry;

use crate::plan::ModelSegmentation;

/// How a task stages weights relative to compute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum ExecutionStrategy {
    /// RT-MDM: double-buffered prefetch — while segment *k* computes, the
    /// DMA stages segment *k+1*; compute and fetch contend on the bus.
    OverlappedPrefetch,
    /// Baseline B1: stage a segment, then compute it, strictly
    /// alternating with no overlap (TinyML-runtime style).
    FetchThenCompute,
    /// Baseline B3: all weights resident in SRAM; no staging at all.
    AllInSram,
}

impl std::fmt::Display for ExecutionStrategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            ExecutionStrategy::OverlappedPrefetch => "overlapped-prefetch",
            ExecutionStrategy::FetchThenCompute => "fetch-then-compute",
            ExecutionStrategy::AllInSram => "all-in-sram",
        };
        f.write_str(s)
    }
}

/// Wall-clock timing of one pipeline stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StageTiming {
    /// Segment index the stage computes.
    pub segment: usize,
    /// CPU work retired in this stage (uninflated cycles).
    pub compute_work: Cycles,
    /// DMA work performed during this stage (uninflated cycles): the
    /// *next* segment's fetch under overlapped prefetch, the *own*
    /// segment's fetch under fetch-then-compute, zero for all-in-SRAM.
    pub fetch_work: Cycles,
    /// Wall-clock duration of the stage including contention.
    pub stage: Cycles,
    /// Whether the stage's DMA work finishes at or before its compute
    /// (true also when there is nothing to fetch): a hidden fetch adds
    /// no wall time beyond contention; an exposed one stalls the
    /// pipeline until the transfer lands.
    pub fetch_hidden: bool,
}

/// Per-stage timings of a single job in isolation.
///
/// Under [`ExecutionStrategy::OverlappedPrefetch`] the list excludes the
/// lead-in fetch of segment 0 (no compute overlaps it); use
/// [`isolated_latency`] for the end-to-end number.
pub fn stage_timings(
    seg: &ModelSegmentation,
    platform: &PlatformConfig,
    strategy: ExecutionStrategy,
) -> Vec<StageTiming> {
    let n = seg.segments.len();
    let mut out = Vec::with_capacity(n);
    for (k, s) in seg.segments.iter().enumerate() {
        let compute_work = s.compute_cycles;
        match strategy {
            ExecutionStrategy::OverlappedPrefetch => {
                let fetch_work = if k + 1 < n {
                    platform
                        .ext_mem
                        .transfer_cycles(seg.segments[k + 1].fetch_bytes)
                } else {
                    Cycles::ZERO
                };
                let overlap = platform.contention.overlap(compute_work, fetch_work);
                out.push(StageTiming {
                    segment: k,
                    compute_work,
                    fetch_work,
                    stage: overlap.stage_finish(),
                    fetch_hidden: overlap.dma_finish <= overlap.cpu_finish,
                });
            }
            ExecutionStrategy::FetchThenCompute => {
                let fetch_work = platform.ext_mem.transfer_cycles(s.fetch_bytes);
                out.push(StageTiming {
                    segment: k,
                    compute_work,
                    fetch_work,
                    stage: fetch_work + compute_work,
                    fetch_hidden: fetch_work.is_zero(),
                });
            }
            ExecutionStrategy::AllInSram => out.push(StageTiming {
                segment: k,
                compute_work,
                fetch_work: Cycles::ZERO,
                stage: compute_work,
                fetch_hidden: true,
            }),
        }
    }
    out
}

/// End-to-end latency of one inference in isolation, including the
/// lead-in fetch where the strategy has one.
///
/// # Examples
///
/// ```rust
/// use rtmdm_dnn::{zoo, CostModel};
/// use rtmdm_mcusim::PlatformConfig;
/// use rtmdm_xmem::{segment_model, pipeline, ExecutionStrategy};
///
/// # fn main() -> Result<(), rtmdm_xmem::PlanError> {
/// let seg = segment_model(&zoo::ds_cnn(), &CostModel::cmsis_nn_m7(), 16 * 1024)?;
/// let p = PlatformConfig::stm32f746_qspi();
/// let ideal = pipeline::isolated_latency(&seg, &p, ExecutionStrategy::AllInSram);
/// let rtmdm = pipeline::isolated_latency(&seg, &p, ExecutionStrategy::OverlappedPrefetch);
/// let naive = pipeline::isolated_latency(&seg, &p, ExecutionStrategy::FetchThenCompute);
/// assert!(ideal <= rtmdm && rtmdm <= naive);
/// # Ok(())
/// # }
/// ```
pub fn isolated_latency(
    seg: &ModelSegmentation,
    platform: &PlatformConfig,
    strategy: ExecutionStrategy,
) -> Cycles {
    let stages = stage_timings(seg, platform, strategy);
    let body: Cycles = stages.iter().map(|s| s.stage).sum();
    let lead_in = match strategy {
        ExecutionStrategy::OverlappedPrefetch => seg
            .segments
            .first()
            .map(|s| platform.ext_mem.transfer_cycles(s.fetch_bytes))
            .unwrap_or(Cycles::ZERO),
        _ => Cycles::ZERO,
    };
    lead_in + body
}

/// Record pipeline stage telemetry into a metrics [`Registry`].
///
/// Counters: `pipeline.stages`, `pipeline.compute_cycles`,
/// `pipeline.fetch_cycles`, `pipeline.stage_cycles`, and — for stages
/// that actually transfer data — `pipeline.hidden_fetches` vs.
/// `pipeline.exposed_fetches`. Stage wall times also feed the
/// `pipeline.stage_cycles_hist` histogram. A disabled registry makes
/// this a no-op.
pub fn record_stage_metrics(stages: &[StageTiming], registry: &mut Registry) {
    if !registry.is_enabled() {
        return;
    }
    for st in stages {
        registry.add("pipeline.stages", 1);
        registry.add("pipeline.compute_cycles", st.compute_work.get());
        registry.add("pipeline.fetch_cycles", st.fetch_work.get());
        registry.add("pipeline.stage_cycles", st.stage.get());
        if !st.fetch_work.is_zero() {
            if st.fetch_hidden {
                registry.add("pipeline.hidden_fetches", 1);
            } else {
                registry.add("pipeline.exposed_fetches", 1);
            }
        }
        registry.observe("pipeline.stage_cycles_hist", st.stage.get());
    }
}

/// The fraction of staging time hidden by overlap, in percent:
/// `100 * (naive - overlapped) / (naive - ideal)`, clamped to `[0, 100]`.
/// Returns `None` when staging is free (ideal memory), where hiding is
/// undefined.
pub fn overlap_efficiency_pct(seg: &ModelSegmentation, platform: &PlatformConfig) -> Option<u64> {
    let naive = isolated_latency(seg, platform, ExecutionStrategy::FetchThenCompute);
    let ideal = isolated_latency(seg, platform, ExecutionStrategy::AllInSram);
    let rtmdm = isolated_latency(seg, platform, ExecutionStrategy::OverlappedPrefetch);
    let staging = naive.saturating_sub(ideal);
    if staging.is_zero() {
        return None;
    }
    let hidden = naive.saturating_sub(rtmdm);
    Some((hidden.get() * 100 / staging.get()).min(100))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::segment_model;
    use rtmdm_dnn::{zoo, CostModel};

    fn seg(buffer: u64) -> ModelSegmentation {
        segment_model(&zoo::resnet8(), &CostModel::cmsis_nn_m7(), buffer).expect("plan")
    }

    #[test]
    fn strategy_ordering_holds_on_every_preset() {
        let s = seg(48 * 1024);
        for p in PlatformConfig::presets() {
            let ideal = isolated_latency(&s, &p, ExecutionStrategy::AllInSram);
            let rtmdm = isolated_latency(&s, &p, ExecutionStrategy::OverlappedPrefetch);
            let naive = isolated_latency(&s, &p, ExecutionStrategy::FetchThenCompute);
            assert!(ideal <= rtmdm, "{}", p.name);
            assert!(rtmdm <= naive, "{}", p.name);
        }
    }

    #[test]
    fn ideal_memory_collapses_all_strategies() {
        let s = seg(48 * 1024);
        let p = PlatformConfig::ideal_sram();
        let a = isolated_latency(&s, &p, ExecutionStrategy::AllInSram);
        let b = isolated_latency(&s, &p, ExecutionStrategy::OverlappedPrefetch);
        let c = isolated_latency(&s, &p, ExecutionStrategy::FetchThenCompute);
        assert_eq!(a, b);
        assert_eq!(b, c);
        assert_eq!(a, s.total_compute());
    }

    #[test]
    fn overlapped_latency_is_at_least_compute_and_fetch_bounds() {
        let s = seg(40 * 1024);
        let p = PlatformConfig::stm32f746_qspi();
        let l = isolated_latency(&s, &p, ExecutionStrategy::OverlappedPrefetch);
        assert!(l >= s.total_compute());
        // Total fetch time is also a lower bound (single DMA channel).
        let total_fetch: Cycles = s
            .segments
            .iter()
            .map(|x| p.ext_mem.transfer_cycles(x.fetch_bytes))
            .sum();
        assert!(l >= total_fetch);
    }

    #[test]
    fn fetch_then_compute_is_exactly_sum_of_parts() {
        let s = seg(40 * 1024);
        let p = PlatformConfig::stm32f746_qspi();
        let expected: Cycles = s
            .segments
            .iter()
            .map(|x| p.ext_mem.transfer_cycles(x.fetch_bytes) + x.compute_cycles)
            .sum();
        assert_eq!(
            isolated_latency(&s, &p, ExecutionStrategy::FetchThenCompute),
            expected
        );
    }

    #[test]
    fn stage_timings_align_with_segments() {
        let s = seg(40 * 1024);
        let p = PlatformConfig::stm32f746_qspi();
        for strategy in [
            ExecutionStrategy::OverlappedPrefetch,
            ExecutionStrategy::FetchThenCompute,
            ExecutionStrategy::AllInSram,
        ] {
            let stages = stage_timings(&s, &p, strategy);
            assert_eq!(stages.len(), s.len());
            for (k, st) in stages.iter().enumerate() {
                assert_eq!(st.segment, k);
                assert!(st.stage >= st.compute_work);
            }
        }
        // Last overlapped stage has no next fetch.
        let stages = stage_timings(&s, &p, ExecutionStrategy::OverlappedPrefetch);
        assert_eq!(stages.last().unwrap().fetch_work, Cycles::ZERO);
    }

    #[test]
    fn overlap_efficiency_grows_with_segmentation() {
        // A whole-model single segment has nothing to overlap: 0%.
        let model = zoo::resnet8();
        let whole = segment_model(
            &model,
            &CostModel::cmsis_nn_m7(),
            model.total_weight_bytes(),
        )
        .expect("plan");
        let p = PlatformConfig::stm32f746_qspi();
        assert_eq!(whole.len(), 1);
        assert_eq!(overlap_efficiency_pct(&whole, &p), Some(0));
        // Finer segmentation hides a meaningful fraction (the lead-in
        // fetch of segment 0 can never be hidden, so 100% is unreachable).
        let fine = seg(40 * 1024);
        let eff = overlap_efficiency_pct(&fine, &p).expect("staging not free");
        assert!(eff >= 30, "efficiency {eff}%");
        // Ideal memory → undefined.
        assert_eq!(
            overlap_efficiency_pct(&fine, &PlatformConfig::ideal_sram()),
            None
        );
    }

    #[test]
    fn smaller_buffers_mean_more_but_smaller_stages() {
        let coarse = seg(80 * 1024);
        let fine = seg(40 * 1024);
        assert!(fine.len() > coarse.len());
        assert!(fine.max_segment_compute() <= coarse.max_segment_compute());
    }

    #[test]
    fn fetch_hidden_flags_match_strategy_semantics() {
        let s = seg(40 * 1024);
        let p = PlatformConfig::stm32f746_qspi();
        // All-in-SRAM never fetches, so every stage is trivially hidden.
        for st in stage_timings(&s, &p, ExecutionStrategy::AllInSram) {
            assert!(st.fetch_hidden);
            assert!(st.fetch_work.is_zero());
        }
        // Fetch-then-compute exposes every nonzero fetch by construction.
        for st in stage_timings(&s, &p, ExecutionStrategy::FetchThenCompute) {
            assert_eq!(st.fetch_hidden, st.fetch_work.is_zero());
        }
        // Overlapped: the flag agrees with the contention model's finish
        // times, and the last stage (no next fetch) is always hidden.
        let stages = stage_timings(&s, &p, ExecutionStrategy::OverlappedPrefetch);
        for st in &stages {
            let out = p.contention.overlap(st.compute_work, st.fetch_work);
            assert_eq!(st.fetch_hidden, out.dma_finish <= out.cpu_finish);
        }
        assert!(stages.last().unwrap().fetch_hidden);
        // Ideal memory hides everything (fetches are free).
        let ideal = PlatformConfig::ideal_sram();
        for st in stage_timings(&s, &ideal, ExecutionStrategy::OverlappedPrefetch) {
            assert!(st.fetch_hidden);
        }
    }

    #[test]
    fn record_stage_metrics_accumulates_counters() {
        let s = seg(40 * 1024);
        let p = PlatformConfig::stm32f746_qspi();
        let stages = stage_timings(&s, &p, ExecutionStrategy::OverlappedPrefetch);
        let mut reg = Registry::new();
        record_stage_metrics(&stages, &mut reg);
        assert_eq!(reg.counter("pipeline.stages"), stages.len() as u64);
        let compute: u64 = stages.iter().map(|st| st.compute_work.get()).sum();
        let fetch: u64 = stages.iter().map(|st| st.fetch_work.get()).sum();
        let wall: u64 = stages.iter().map(|st| st.stage.get()).sum();
        assert_eq!(reg.counter("pipeline.compute_cycles"), compute);
        assert_eq!(reg.counter("pipeline.fetch_cycles"), fetch);
        assert_eq!(reg.counter("pipeline.stage_cycles"), wall);
        let fetching = stages.iter().filter(|st| !st.fetch_work.is_zero()).count() as u64;
        assert_eq!(
            reg.counter("pipeline.hidden_fetches") + reg.counter("pipeline.exposed_fetches"),
            fetching
        );
    }

    #[test]
    fn record_stage_metrics_is_noop_when_disabled() {
        let s = seg(40 * 1024);
        let p = PlatformConfig::stm32f746_qspi();
        let stages = stage_timings(&s, &p, ExecutionStrategy::OverlappedPrefetch);
        let mut reg = Registry::disabled();
        record_stage_metrics(&stages, &mut reg);
        assert_eq!(reg.counter("pipeline.stages"), 0);
    }

    #[test]
    fn display_names_strategies() {
        assert_eq!(
            ExecutionStrategy::OverlappedPrefetch.to_string(),
            "overlapped-prefetch"
        );
    }
}
