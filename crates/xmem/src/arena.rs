//! A deterministic first-fit SRAM allocator.
//!
//! The framework lays SRAM out at admission time: activation scratch,
//! per-task double buffers, and a runtime reserve. Allocation happens
//! once and the layout then stays fixed for the mission — exactly how a
//! static real-time deployment works — but the arena also supports
//! freeing so the design-space-exploration tools can try layouts.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::error::PlanError;

/// Handle to a live allocation in a [`SramArena`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct AllocHandle(u64);

#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
struct Region {
    offset: u64,
    bytes: u64,
    label: String,
}

/// A fixed-capacity byte arena with first-fit allocation and coalescing
/// free — deterministic across runs (no address-space randomness).
///
/// # Examples
///
/// ```rust
/// use rtmdm_xmem::SramArena;
///
/// # fn main() -> Result<(), rtmdm_xmem::PlanError> {
/// let mut arena = SramArena::new(1024);
/// let a = arena.alloc("bufA", 256, 4)?;
/// let b = arena.alloc("bufB", 256, 4)?;
/// assert_eq!(arena.offset_of(a), Some(0));
/// assert_eq!(arena.offset_of(b), Some(256));
/// arena.free(a);
/// let c = arena.alloc("bufC", 128, 4)?; // reuses the freed hole
/// assert_eq!(arena.offset_of(c), Some(0));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SramArena {
    capacity: u64,
    live: BTreeMap<u64, Region>, // keyed by handle id
    next_handle: u64,
}

impl SramArena {
    /// Creates an arena over `capacity` bytes.
    pub fn new(capacity: u64) -> Self {
        SramArena {
            capacity,
            live: BTreeMap::new(),
            next_handle: 0,
        }
    }

    /// Total capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Bytes currently allocated.
    pub fn used(&self) -> u64 {
        self.live.values().map(|r| r.bytes).sum()
    }

    /// Bytes currently free (may be fragmented).
    pub fn free_bytes(&self) -> u64 {
        self.capacity - self.used()
    }

    /// Highest allocated offset + size — the layout's high-water mark.
    pub fn high_water(&self) -> u64 {
        self.live
            .values()
            .map(|r| r.offset + r.bytes)
            .max()
            .unwrap_or(0)
    }

    /// Allocates `bytes` aligned to `align` using first fit.
    ///
    /// # Errors
    ///
    /// Returns [`PlanError::ArenaExhausted`] if no aligned hole fits.
    ///
    /// # Panics
    ///
    /// Panics if `align` is not a power of two or `bytes` is zero.
    pub fn alloc(
        &mut self,
        label: impl Into<String>,
        bytes: u64,
        align: u64,
    ) -> Result<AllocHandle, PlanError> {
        assert!(align.is_power_of_two(), "alignment must be a power of two");
        assert!(bytes > 0, "zero-byte allocations are meaningless");
        let label = label.into();

        // Collect live regions sorted by offset to find holes.
        let mut regions: Vec<&Region> = self.live.values().collect();
        regions.sort_by_key(|r| r.offset);

        let mut cursor = 0u64;
        let mut chosen: Option<u64> = None;
        for r in &regions {
            let aligned = align_up(cursor, align);
            if aligned + bytes <= r.offset {
                chosen = Some(aligned);
                break;
            }
            cursor = cursor.max(r.offset + r.bytes);
        }
        if chosen.is_none() {
            let aligned = align_up(cursor, align);
            if aligned + bytes <= self.capacity {
                chosen = Some(aligned);
            }
        }
        let Some(offset) = chosen else {
            return Err(PlanError::ArenaExhausted {
                label,
                bytes,
                free: self.free_bytes(),
            });
        };
        let handle = AllocHandle(self.next_handle);
        self.next_handle += 1;
        self.live.insert(
            handle.0,
            Region {
                offset,
                bytes,
                label,
            },
        );
        Ok(handle)
    }

    /// Releases an allocation; unknown handles are ignored (idempotent).
    pub fn free(&mut self, handle: AllocHandle) {
        self.live.remove(&handle.0);
    }

    /// Byte offset of a live allocation.
    pub fn offset_of(&self, handle: AllocHandle) -> Option<u64> {
        self.live.get(&handle.0).map(|r| r.offset)
    }

    /// Size of a live allocation.
    pub fn size_of(&self, handle: AllocHandle) -> Option<u64> {
        self.live.get(&handle.0).map(|r| r.bytes)
    }

    /// `(offset, bytes, label)` of every live allocation, by offset.
    pub fn layout(&self) -> Vec<(u64, u64, String)> {
        let mut rows: Vec<(u64, u64, String)> = self
            .live
            .values()
            .map(|r| (r.offset, r.bytes, r.label.clone()))
            .collect();
        rows.sort();
        rows
    }
}

fn align_up(value: u64, align: u64) -> u64 {
    (value + align - 1) & !(align - 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_allocations_pack_tightly() {
        let mut a = SramArena::new(1000);
        let h1 = a.alloc("x", 100, 1).unwrap();
        let h2 = a.alloc("y", 200, 1).unwrap();
        assert_eq!(a.offset_of(h1), Some(0));
        assert_eq!(a.offset_of(h2), Some(100));
        assert_eq!(a.used(), 300);
        assert_eq!(a.high_water(), 300);
    }

    #[test]
    fn alignment_is_respected() {
        let mut a = SramArena::new(1000);
        let _ = a.alloc("pad", 3, 1).unwrap();
        let h = a.alloc("aligned", 16, 8).unwrap();
        assert_eq!(a.offset_of(h), Some(8));
    }

    #[test]
    fn first_fit_reuses_holes() {
        let mut a = SramArena::new(1000);
        let h1 = a.alloc("a", 100, 1).unwrap();
        let _h2 = a.alloc("b", 100, 1).unwrap();
        a.free(h1);
        let h3 = a.alloc("c", 80, 1).unwrap();
        assert_eq!(a.offset_of(h3), Some(0));
        // Too big for the hole → goes after b.
        let h4 = a.alloc("d", 150, 1).unwrap();
        assert_eq!(a.offset_of(h4), Some(200));
    }

    #[test]
    fn exhaustion_is_an_error_not_a_panic() {
        let mut a = SramArena::new(128);
        let _ = a.alloc("x", 100, 1).unwrap();
        let err = a.alloc("y", 64, 1).unwrap_err();
        assert!(matches!(err, PlanError::ArenaExhausted { free: 28, .. }));
    }

    #[test]
    fn fragmentation_can_block_large_allocs() {
        let mut a = SramArena::new(300);
        let h1 = a.alloc("a", 100, 1).unwrap();
        let _h2 = a.alloc("b", 100, 1).unwrap();
        let _h3 = a.alloc("c", 100, 1).unwrap();
        a.free(h1);
        // 100 bytes free but a 100-byte hole exists at offset 0, so this fits.
        assert!(a.alloc("d", 100, 1).is_ok());
        // Now full again; 150 cannot fit anywhere.
        let h = a.alloc("e", 1, 1);
        assert!(h.is_err());
    }

    #[test]
    fn free_is_idempotent() {
        let mut a = SramArena::new(100);
        let h = a.alloc("x", 50, 1).unwrap();
        a.free(h);
        a.free(h);
        assert_eq!(a.used(), 0);
    }

    #[test]
    fn layout_lists_regions_in_offset_order() {
        let mut a = SramArena::new(1000);
        let _ = a.alloc("first", 10, 1).unwrap();
        let _ = a.alloc("second", 20, 1).unwrap();
        let rows = a.layout();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].2, "first");
        assert_eq!(rows[1], (10, 20, "second".to_owned()));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_alignment_panics() {
        let mut a = SramArena::new(100);
        let _ = a.alloc("x", 10, 3);
    }

    #[test]
    fn deterministic_across_identical_sequences() {
        let run = || {
            let mut a = SramArena::new(4096);
            let h1 = a.alloc("a", 700, 4).unwrap();
            let _ = a.alloc("b", 300, 4).unwrap();
            a.free(h1);
            let _ = a.alloc("c", 500, 8).unwrap();
            a.layout()
        };
        assert_eq!(run(), run());
    }
}
