//! # rtmdm-xmem — external-memory weight staging
//!
//! The mechanism at the heart of RT-MDM: DNN weights live in external
//! memory and are staged into on-chip SRAM by DMA, segment by segment,
//! overlapping the fetch of segment *k+1* with the compute of segment
//! *k* (double buffering). This crate provides:
//!
//! - [`SramArena`]: a deterministic first-fit SRAM allocator used to lay
//!   out activation buffers and per-task fetch buffers,
//! - [`SramLayout`]: the admission-time SRAM plan for a set of models,
//! - [`segment_model`]: the layer→segment fetch planner — greedy grouping
//!   of consecutive layers whose weights fit one fetch buffer,
//! - [`pipeline`]: closed-form timing of the fetch/compute pipeline for a
//!   job running in isolation, under three execution strategies
//!   (overlapped prefetch, fetch-then-compute, all-in-SRAM),
//! - [`spill`]: the activation-spilling extension for models whose
//!   feature maps exceed SRAM.
//!
//! ## Example
//!
//! ```rust
//! use rtmdm_dnn::{zoo, CostModel};
//! use rtmdm_mcusim::PlatformConfig;
//! use rtmdm_xmem::{segment_model, pipeline, ExecutionStrategy};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let model = zoo::resnet8();
//! let seg = segment_model(&model, &CostModel::cmsis_nn_m7(), 40 * 1024)?;
//! let platform = PlatformConfig::stm32f746_qspi();
//! let overlapped = pipeline::isolated_latency(&seg, &platform, ExecutionStrategy::OverlappedPrefetch);
//! let sequential = pipeline::isolated_latency(&seg, &platform, ExecutionStrategy::FetchThenCompute);
//! assert!(overlapped <= sequential);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod arena;
mod error;
pub mod pipeline;
mod plan;
pub mod retry;
pub mod spill;

pub use arena::{AllocHandle, SramArena};
pub use error::PlanError;
pub use pipeline::{stage_timings, ExecutionStrategy, StageTiming};
pub use plan::{
    segment_model, segment_model_capped, segment_model_tiled, ModelSegmentation, SegmentPlan,
    SramLayout,
};
pub use retry::{job_retry_budget, segments_retry_budget, RetryPolicy};
