//! Activation spilling — the extension for models whose feature maps
//! exceed the SRAM activation budget.
//!
//! When a model's peak activation footprint does not fit its SRAM
//! allotment, the framework can spill the producing layer's output to
//! external memory and fetch it back before the consuming layer runs.
//! Spilling converts SRAM pressure into extra external-memory traffic;
//! this module quantifies that trade so admission can price it into the
//! per-segment fetch volume.

use serde::{Deserialize, Serialize};

use rtmdm_dnn::Model;
use rtmdm_mcusim::{Cycles, PlatformConfig};

/// The spill decision for one model under one activation budget.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SpillPlan {
    /// Model name.
    pub model: String,
    /// Activation budget the plan was computed for (bytes).
    pub budget_bytes: u64,
    /// Node indices whose outputs must round-trip to external memory.
    pub spilled_layers: Vec<usize>,
    /// Extra external-memory traffic per inference (bytes, write + read).
    pub extra_bytes: u64,
}

impl SpillPlan {
    /// Whether any spilling is required.
    pub fn is_spill_free(&self) -> bool {
        self.spilled_layers.is_empty()
    }

    /// Extra external-memory time per inference on `platform` (the
    /// spilled tensors are written out and read back, each a transfer).
    pub fn extra_cycles(&self, platform: &PlatformConfig) -> Cycles {
        if self.is_spill_free() {
            return Cycles::ZERO;
        }
        // One setup per spilled tensor per direction.
        let per_transfer_setups = 2 * self.spilled_layers.len() as u64;
        platform.ext_mem.stream_cycles(self.extra_bytes)
            + platform.ext_mem.setup_cycles * per_transfer_setups
    }
}

/// Plans activation spilling for `model` under an activation budget.
///
/// The policy is the standard greedy one: walk layers in execution
/// order; whenever the transient footprint (input + output of the
/// current layer) exceeds the budget, spill that layer's *output*
/// (it is written to external memory after production and read back
/// before consumption, so only one of the pair is resident at a time).
///
/// A double-buffered deployment needs `input + output` live at once;
/// spilling the output halves the requirement to `max(input, output)`.
/// Layers that still do not fit after spilling are counted too — the
/// caller decides whether to reject the model.
pub fn plan_spill(model: &Model, budget_bytes: u64) -> SpillPlan {
    let mut spilled = Vec::new();
    let mut extra_bytes = 0u64;
    let input_of = |idx: usize| -> u64 {
        match model.nodes()[idx].inputs[0] {
            rtmdm_dnn::NodeInput::ModelInput => model.input_shape().len() as u64,
            rtmdm_dnn::NodeInput::Node(id) => model.nodes()[id.0].out_shape.len() as u64,
        }
    };
    for (idx, node) in model.nodes().iter().enumerate() {
        let in_bytes = input_of(idx);
        let out_bytes = node.out_shape.len() as u64;
        if in_bytes + out_bytes > budget_bytes {
            spilled.push(idx);
            // Written once after production, read once before the next
            // consumer → 2 × tensor size of extra traffic.
            extra_bytes += 2 * out_bytes;
        }
    }
    SpillPlan {
        model: model.name().to_owned(),
        budget_bytes,
        spilled_layers: spilled,
        extra_bytes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtmdm_dnn::zoo;

    #[test]
    fn generous_budget_never_spills() {
        for model in zoo::all() {
            let budget = 4 * model.max_activation_bytes().max(1);
            let plan = plan_spill(&model, budget);
            assert!(plan.is_spill_free(), "{}", model.name());
            assert_eq!(plan.extra_bytes, 0);
        }
    }

    #[test]
    fn tight_budget_spills_the_big_layers() {
        let model = zoo::mobilenet_v1_025();
        // The 48×48×16 feature map is 36 kB; a 32 kB budget must spill.
        let plan = plan_spill(&model, 32 * 1024);
        assert!(!plan.is_spill_free());
        assert!(plan.extra_bytes > 0);
        // Spilled indices are valid and sorted.
        let mut sorted = plan.spilled_layers.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, plan.spilled_layers);
        assert!(plan.spilled_layers.iter().all(|&i| i < model.len()));
    }

    #[test]
    fn extra_cycles_scale_with_traffic() {
        let model = zoo::mobilenet_v1_025();
        let p = PlatformConfig::stm32f746_qspi();
        let tight = plan_spill(&model, 24 * 1024);
        let tighter = plan_spill(&model, 12 * 1024);
        assert!(tighter.extra_bytes >= tight.extra_bytes);
        assert!(tighter.extra_cycles(&p) >= tight.extra_cycles(&p));
        // Free external memory → spilling costs nothing in time.
        let ideal = PlatformConfig::ideal_sram();
        assert_eq!(tight.extra_cycles(&ideal), Cycles::ZERO);
    }

    #[test]
    fn spill_free_plan_costs_zero_cycles() {
        let model = zoo::micro_mlp();
        let plan = plan_spill(&model, 1 << 20);
        assert_eq!(
            plan.extra_cycles(&PlatformConfig::stm32f746_qspi()),
            Cycles::ZERO
        );
    }
}
