//! Bounded re-fetch cost accounting for the staging pipeline.
//!
//! The fault environment ([`rtmdm_mcusim::FaultPlan`]) can corrupt a
//! DMA transfer, forcing the whole segment to be fetched again. Faults
//! are transient and tolerated at most [`RetryPolicy::max_retries`]
//! consecutive times per transfer, so the worst-case extra staging cost
//! of a segment — and of a whole job — is a closed-form bound this
//! module computes. The admission analysis charges that bound against a
//! task's slack (retry-budget admission), so a system admitted under a
//! fault plan still meets its deadlines when every tolerated fault
//! actually happens.
//!
//! ## Double-buffer discipline under retries
//!
//! A retried fetch *replaces* the faulted transfer in the two-ahead
//! staging window instead of advancing it: it re-targets the same
//! buffer half, and the DMA queue orders it before the task's next
//! fetch (same `(task, segment)` priority key). The invariant the
//! static verifier checks (`rtmdm-check` RTM001–RTM004) — a fetch never
//! aliases the buffer half the CPU is computing from — is therefore
//! untouched by fault injection: retries add latency, never aliasing.

use serde::{Deserialize, Serialize};

use rtmdm_mcusim::{Cycles, ExtMemConfig, FaultPlan};

use crate::plan::ModelSegmentation;

/// Bounded-retry parameters of the staging pipeline, the xmem-side view
/// of a [`FaultPlan`] (which fixes seed and rate as well).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Consecutive re-fetches tolerated per transfer before the
    /// transient-fault model guarantees success.
    pub max_retries: u32,
    /// Worst-case extra bus latency per transfer attempt, in cycles.
    pub jitter_max_cycles: u64,
}

impl RetryPolicy {
    /// The no-retry policy: faults are not modelled, transfers never
    /// re-issue, and every bound in this module collapses to zero.
    pub const NONE: RetryPolicy = RetryPolicy {
        max_retries: 0,
        jitter_max_cycles: 0,
    };

    /// The staging-side view of a fault plan. An inactive plan maps to
    /// [`RetryPolicy::NONE`] (no faults ⇒ no re-fetch cost, even if the
    /// plan nominally tolerates retries).
    pub fn from_plan(plan: &FaultPlan) -> Self {
        if plan.dma_fault_rate_ppm == 0 && plan.jitter_max_cycles == 0 {
            return RetryPolicy::NONE;
        }
        RetryPolicy {
            max_retries: if plan.dma_fault_rate_ppm > 0 {
                plan.max_retries
            } else {
                0
            },
            jitter_max_cycles: plan.jitter_max_cycles,
        }
    }

    /// Whether this policy adds any staging cost at all.
    pub fn is_none(&self) -> bool {
        self.max_retries == 0 && self.jitter_max_cycles == 0
    }

    /// Worst-case *extra* staging cycles of one transfer whose clean
    /// duration is `transfer`: each of the `max_retries` tolerated
    /// faults re-pays the full transfer plus maximal jitter, and the
    /// final successful attempt still pays its own jitter.
    pub fn worst_case_extra(&self, transfer: Cycles) -> Cycles {
        if self.is_none() {
            return Cycles::ZERO;
        }
        let jitter = self.jitter_max_cycles;
        Cycles::new(
            transfer
                .get()
                .saturating_add(jitter)
                .saturating_mul(u64::from(self.max_retries))
                .saturating_add(jitter),
        )
    }

    /// Worst-case staged duration of one transfer *including* retries:
    /// `transfer + worst_case_extra(transfer)`.
    pub fn worst_case_transfer(&self, transfer: Cycles) -> Cycles {
        transfer + self.worst_case_extra(transfer)
    }
}

/// Worst-case extra staging cycles a whole job pays under `policy`:
/// the sum of [`RetryPolicy::worst_case_extra`] over every segment of
/// the plan, with transfer durations taken from `ext_mem`.
///
/// This is the *retry budget* the admission test charges against the
/// task's slack: if the response bound plus this budget still meets the
/// deadline, the task survives the worst tolerated fault pattern.
pub fn job_retry_budget(
    seg: &ModelSegmentation,
    ext_mem: &ExtMemConfig,
    policy: &RetryPolicy,
) -> Cycles {
    if policy.is_none() {
        return Cycles::ZERO;
    }
    seg.segments
        .iter()
        .map(|s| {
            let transfer = ext_mem.transfer_cycles(s.fetch_bytes);
            if transfer.is_zero() {
                // Zero-byte segments never touch the DMA: no faults,
                // no jitter.
                Cycles::ZERO
            } else {
                policy.worst_case_extra(transfer)
            }
        })
        .sum()
}

/// Worst-case extra staging cycles for a task described directly by
/// per-segment fetch sizes (the scheduler-level view, where no
/// [`ModelSegmentation`] exists).
pub fn segments_retry_budget(
    fetch_bytes: impl IntoIterator<Item = u64>,
    ext_mem: &ExtMemConfig,
    policy: &RetryPolicy,
) -> Cycles {
    if policy.is_none() {
        return Cycles::ZERO;
    }
    fetch_bytes
        .into_iter()
        .map(|b| {
            let transfer = ext_mem.transfer_cycles(b);
            if transfer.is_zero() {
                Cycles::ZERO
            } else {
                policy.worst_case_extra(transfer)
            }
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtmdm_dnn::{zoo, CostModel};
    use rtmdm_mcusim::PlatformConfig;

    fn policy() -> RetryPolicy {
        RetryPolicy {
            max_retries: 2,
            jitter_max_cycles: 10,
        }
    }

    #[test]
    fn none_policy_costs_nothing() {
        assert_eq!(
            RetryPolicy::NONE.worst_case_extra(Cycles::new(5000)),
            Cycles::ZERO
        );
        assert_eq!(
            RetryPolicy::NONE.worst_case_transfer(Cycles::new(5000)),
            Cycles::new(5000)
        );
    }

    #[test]
    fn inactive_plan_maps_to_none() {
        let p = RetryPolicy::from_plan(&FaultPlan::NONE);
        assert!(p.is_none());
        // A plan with retries configured but nothing injected is still
        // free: tolerance without faults costs nothing.
        let idle = FaultPlan {
            seed: 9,
            dma_fault_rate_ppm: 0,
            max_retries: 5,
            jitter_max_cycles: 0,
        };
        assert!(RetryPolicy::from_plan(&idle).is_none());
    }

    #[test]
    fn active_plan_carries_retries_and_jitter() {
        let p = RetryPolicy::from_plan(&FaultPlan {
            seed: 1,
            dma_fault_rate_ppm: 50_000,
            max_retries: 4,
            jitter_max_cycles: 25,
        });
        assert_eq!(p.max_retries, 4);
        assert_eq!(p.jitter_max_cycles, 25);
        // 4 × (1000 + 25) + 25 = 4125.
        assert_eq!(p.worst_case_extra(Cycles::new(1000)), Cycles::new(4125));
    }

    #[test]
    fn jitter_only_plan_still_charges_jitter() {
        let p = RetryPolicy::from_plan(&FaultPlan {
            seed: 1,
            dma_fault_rate_ppm: 0,
            max_retries: 3,
            jitter_max_cycles: 40,
        });
        assert_eq!(p.max_retries, 0, "no faults ⇒ no re-fetches");
        // Extra = 0 retries + final attempt's jitter.
        assert_eq!(p.worst_case_extra(Cycles::new(1000)), Cycles::new(40));
    }

    #[test]
    fn job_budget_sums_per_segment_bounds() {
        let model = zoo::ds_cnn();
        let seg = crate::segment_model(&model, &CostModel::cmsis_nn_m7(), 64 * 1024)
            .expect("segmentable");
        let ext = PlatformConfig::stm32f746_qspi().ext_mem;
        let budget = job_retry_budget(&seg, &ext, &policy());
        let by_hand: Cycles = seg
            .segments
            .iter()
            .map(|s| policy().worst_case_extra(ext.transfer_cycles(s.fetch_bytes)))
            .sum();
        assert_eq!(budget, by_hand);
        assert!(budget > Cycles::ZERO);
        assert_eq!(
            job_retry_budget(&seg, &ext, &RetryPolicy::NONE),
            Cycles::ZERO
        );
    }

    #[test]
    fn segment_budget_matches_byte_level_view() {
        let ext = PlatformConfig::stm32f746_qspi().ext_mem;
        let bytes = [4096u64, 0, 16 * 1024];
        let budget = segments_retry_budget(bytes, &ext, &policy());
        let by_hand = policy().worst_case_extra(ext.transfer_cycles(4096))
            + policy().worst_case_extra(ext.transfer_cycles(16 * 1024));
        // The zero-byte segment contributes nothing.
        assert_eq!(budget, by_hand);
    }
}
