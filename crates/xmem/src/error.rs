//! Planning errors.

use std::error::Error;
use std::fmt;

/// Memory planning failed.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum PlanError {
    /// A single layer's weights exceed the fetch buffer — no segmentation
    /// can stage it. Grow the buffer (or shrink the model).
    LayerTooLarge {
        /// Model name.
        model: String,
        /// Offending layer name.
        layer: String,
        /// The layer's weight bytes.
        bytes: u64,
        /// The configured fetch-buffer size.
        buffer_bytes: u64,
    },
    /// The fetch buffer size is zero.
    ZeroBuffer,
    /// The combined SRAM demand (activations + double buffers + runtime
    /// reserve) exceeds the platform's SRAM.
    SramOverflow {
        /// Bytes demanded.
        demanded: u64,
        /// Bytes available.
        available: u64,
    },
    /// An arena allocation failed (out of space or name collision).
    ArenaExhausted {
        /// Allocation label.
        label: String,
        /// Requested bytes.
        bytes: u64,
        /// Bytes still free (possibly fragmented).
        free: u64,
    },
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanError::LayerTooLarge {
                model,
                layer,
                bytes,
                buffer_bytes,
            } => write!(
                f,
                "layer {layer} of {model} needs {bytes} bytes, exceeding the {buffer_bytes}-byte fetch buffer"
            ),
            PlanError::ZeroBuffer => write!(f, "fetch buffer size must be positive"),
            PlanError::SramOverflow {
                demanded,
                available,
            } => write!(f, "sram demand of {demanded} bytes exceeds {available} available"),
            PlanError::ArenaExhausted { label, bytes, free } => write!(
                f,
                "cannot allocate {bytes} bytes for {label}; {free} bytes free"
            ),
        }
    }
}

impl Error for PlanError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_informative() {
        let e = PlanError::LayerTooLarge {
            model: "resnet8".into(),
            layer: "conv3".into(),
            bytes: 40_000,
            buffer_bytes: 16_384,
        };
        let msg = e.to_string();
        assert!(msg.contains("conv3") && msg.contains("resnet8") && msg.contains("16384"));
    }

    #[test]
    fn error_trait_bounds() {
        fn assert_error<E: std::error::Error + Send + Sync + 'static>() {}
        assert_error::<PlanError>();
    }
}
