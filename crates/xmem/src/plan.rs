//! Layer→segment fetch planning and admission-time SRAM layout.

use serde::{Deserialize, Serialize};

use rtmdm_dnn::{CostModel, Model};
use rtmdm_mcusim::Cycles;

use crate::arena::SramArena;
use crate::error::PlanError;

/// One fetch segment: a run of consecutive layers whose weights are
/// staged into the fetch buffer with a single DMA transfer and then
/// executed back to back without further external-memory traffic.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SegmentPlan {
    /// Segment index within its model (0-based, execution order).
    pub index: usize,
    /// First layer (node) index covered, inclusive.
    pub first_layer: usize,
    /// Last layer (node) index covered, inclusive.
    pub last_layer: usize,
    /// Parameter bytes the DMA stages for this segment.
    pub fetch_bytes: u64,
    /// Modelled CPU cycles to execute the covered layers.
    pub compute_cycles: Cycles,
}

impl SegmentPlan {
    /// Number of layers in the segment.
    pub fn layer_count(&self) -> usize {
        self.last_layer - self.first_layer + 1
    }
}

/// The complete fetch plan of one model under one buffer size.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ModelSegmentation {
    /// Name of the segmented model.
    pub model: String,
    /// Fetch-buffer size the plan was computed for.
    pub buffer_bytes: u64,
    /// Segments in execution order.
    pub segments: Vec<SegmentPlan>,
}

impl ModelSegmentation {
    /// Number of segments.
    pub fn len(&self) -> usize {
        self.segments.len()
    }

    /// Whether the plan is empty (a model with no layers).
    pub fn is_empty(&self) -> bool {
        self.segments.is_empty()
    }

    /// Total staged bytes per inference.
    pub fn total_fetch_bytes(&self) -> u64 {
        self.segments.iter().map(|s| s.fetch_bytes).sum()
    }

    /// Total compute cycles per inference.
    pub fn total_compute(&self) -> Cycles {
        self.segments.iter().map(|s| s.compute_cycles).sum()
    }

    /// The longest single segment's compute cycles — the non-preemptive
    /// blocking this model can impose on higher-priority tasks.
    pub fn max_segment_compute(&self) -> Cycles {
        self.segments
            .iter()
            .map(|s| s.compute_cycles)
            .max()
            .unwrap_or(Cycles::ZERO)
    }

    /// The largest single fetch in bytes.
    pub fn max_fetch_bytes(&self) -> u64 {
        self.segments
            .iter()
            .map(|s| s.fetch_bytes)
            .max()
            .unwrap_or(0)
    }
}

/// Splits `model` into fetch segments for a `buffer_bytes` fetch buffer.
///
/// The planner is greedy: it extends the current segment while the
/// accumulated weight bytes fit the buffer, and cuts a new segment
/// otherwise. Weight-less layers (pooling, add, softmax, flatten) never
/// force a cut — they execute from resident activations. Greedy grouping
/// is optimal for minimising segment count under a single-buffer
/// constraint because segments must cover consecutive layers.
///
/// # Errors
///
/// - [`PlanError::ZeroBuffer`] if `buffer_bytes == 0`.
/// - [`PlanError::LayerTooLarge`] if any single layer's weights exceed
///   the buffer.
///
/// # Examples
///
/// ```rust
/// use rtmdm_dnn::{zoo, CostModel};
/// use rtmdm_xmem::segment_model;
///
/// # fn main() -> Result<(), rtmdm_xmem::PlanError> {
/// let seg = segment_model(&zoo::ds_cnn(), &CostModel::cmsis_nn_m7(), 16 * 1024)?;
/// assert!(seg.len() >= 2); // 23 kB of weights cannot fit one 16 kB buffer
/// assert_eq!(seg.total_fetch_bytes(), zoo::ds_cnn().total_weight_bytes());
/// # Ok(())
/// # }
/// ```
pub fn segment_model(
    model: &Model,
    cost: &CostModel,
    buffer_bytes: u64,
) -> Result<ModelSegmentation, PlanError> {
    segment_model_capped(model, cost, buffer_bytes, None)
}

/// Like [`segment_model`], but additionally cuts a segment whenever its
/// accumulated compute would exceed `compute_cap` — bounding the
/// non-preemptive blocking a task can impose on higher-priority tasks.
///
/// A single layer whose compute alone exceeds the cap still forms its
/// own segment (layers are indivisible); callers that need a hard
/// blocking bound should check
/// [`ModelSegmentation::max_segment_compute`] afterwards.
///
/// # Errors
///
/// Same conditions as [`segment_model`].
pub fn segment_model_capped(
    model: &Model,
    cost: &CostModel,
    buffer_bytes: u64,
    compute_cap: Option<Cycles>,
) -> Result<ModelSegmentation, PlanError> {
    if buffer_bytes == 0 {
        return Err(PlanError::ZeroBuffer);
    }
    let costs = cost.model_cost(model);

    let mut segments: Vec<SegmentPlan> = Vec::new();
    let mut first_layer = 0usize;
    let mut acc_bytes = 0u64;
    let mut acc_compute = Cycles::ZERO;
    let mut any_open = false;

    for (idx, layer_cost) in costs.layers.iter().enumerate() {
        let bytes = layer_cost.weight_bytes;
        if bytes > buffer_bytes {
            return Err(PlanError::LayerTooLarge {
                model: model.name().to_owned(),
                layer: layer_cost.name.clone(),
                bytes,
                buffer_bytes,
            });
        }
        let over_compute = compute_cap.is_some_and(|cap| acc_compute + layer_cost.compute > cap);
        if any_open && (acc_bytes + bytes > buffer_bytes || over_compute) {
            segments.push(SegmentPlan {
                index: segments.len(),
                first_layer,
                last_layer: idx - 1,
                fetch_bytes: acc_bytes,
                compute_cycles: acc_compute,
            });
            first_layer = idx;
            acc_bytes = 0;
            acc_compute = Cycles::ZERO;
        }
        any_open = true;
        acc_bytes += bytes;
        acc_compute += layer_cost.compute;
    }
    if any_open {
        segments.push(SegmentPlan {
            index: segments.len(),
            first_layer,
            last_layer: costs.layers.len() - 1,
            fetch_bytes: acc_bytes,
            compute_cycles: acc_compute,
        });
    }
    Ok(ModelSegmentation {
        model: model.name().to_owned(),
        buffer_bytes,
        segments,
    })
}

/// Like [`segment_model_capped`], but additionally **tiles** any segment
/// whose compute still exceeds the cap — splitting its compute into
/// equal preemption-point slices. This lifts the blocking floor of
/// layer-granularity segmentation: every operator in the engine computes
/// output rows independently, so a layer's MAC loop can yield at row
/// boundaries with its weights kept resident.
///
/// Tiling is represented as *continuation segments*: the first slice
/// carries the whole group's fetch bytes, continuations carry zero. The
/// double-buffer discipline stays safe (the simulator's prefetch window
/// advances through zero-byte fetches instantly, and the next real fetch
/// only becomes admissible once the tiled group's buffer half is dead).
/// The covered layer range is repeated on each slice.
///
/// # Errors
///
/// Same conditions as [`segment_model`].
pub fn segment_model_tiled(
    model: &Model,
    cost: &CostModel,
    buffer_bytes: u64,
    compute_cap: Cycles,
) -> Result<ModelSegmentation, PlanError> {
    assert!(!compute_cap.is_zero(), "tiling cap must be positive");
    let base = segment_model_capped(model, cost, buffer_bytes, Some(compute_cap))?;
    let mut segments = Vec::with_capacity(base.segments.len());
    for seg in base.segments {
        if seg.compute_cycles <= compute_cap {
            segments.push(SegmentPlan {
                index: segments.len(),
                ..seg
            });
            continue;
        }
        let slices = seg.compute_cycles.get().div_ceil(compute_cap.get());
        let mut remaining = seg.compute_cycles;
        for s in 0..slices {
            let slice = if s + 1 == slices {
                remaining
            } else {
                remaining.min(compute_cap)
            };
            remaining = remaining.saturating_sub(slice);
            segments.push(SegmentPlan {
                index: segments.len(),
                first_layer: seg.first_layer,
                last_layer: seg.last_layer,
                fetch_bytes: if s == 0 { seg.fetch_bytes } else { 0 },
                compute_cycles: slice,
            });
        }
    }
    Ok(ModelSegmentation {
        model: base.model,
        buffer_bytes: base.buffer_bytes,
        segments,
    })
}

/// Admission-time SRAM layout for a set of tasks.
///
/// Each task gets a private double fetch buffer (2 × buffer size, so a
/// prefetched segment survives preemption at segment boundaries) plus
/// activation scratch sized for its model's two largest live tensors.
/// A fixed runtime reserve models stacks and the scheduler itself.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SramLayout {
    /// Per-task rows: `(task name, activation bytes, double-buffer bytes)`.
    pub entries: Vec<(String, u64, u64)>,
    /// Runtime reserve in bytes.
    pub reserve: u64,
    /// Total bytes consumed.
    pub total_used: u64,
    /// Platform SRAM capacity.
    pub capacity: u64,
}

impl SramLayout {
    /// Bytes the runtime keeps for stacks and bookkeeping.
    pub const RUNTIME_RESERVE: u64 = 8 * 1024;

    /// Plans SRAM for `tasks` (model + fetch-buffer size pairs) on a
    /// platform with `sram_bytes` of SRAM.
    ///
    /// # Errors
    ///
    /// Returns [`PlanError::SramOverflow`] if the demand exceeds
    /// capacity, and propagates arena errors (which also indicate
    /// overflow, with the failing allocation named).
    pub fn plan(sram_bytes: u64, tasks: &[(&Model, u64)]) -> Result<SramLayout, PlanError> {
        let mut arena = SramArena::new(sram_bytes);
        arena.alloc("runtime-reserve", Self::RUNTIME_RESERVE, 8)?;
        let mut entries = Vec::with_capacity(tasks.len());
        for (model, buffer_bytes) in tasks {
            // In-flight activations: producing layer's input and output
            // coexist; 2 × the largest tensor is a safe static bound.
            let act = 2 * model.max_activation_bytes();
            arena.alloc(format!("{}-activations", model.name()), act.max(1), 8)?;
            let dbuf = 2 * *buffer_bytes;
            arena.alloc(format!("{}-double-buffer", model.name()), dbuf.max(1), 8)?;
            entries.push((model.name().to_owned(), act, dbuf));
        }
        let total_used = arena.used();
        if total_used > sram_bytes {
            return Err(PlanError::SramOverflow {
                demanded: total_used,
                available: sram_bytes,
            });
        }
        Ok(SramLayout {
            entries,
            reserve: Self::RUNTIME_RESERVE,
            total_used,
            capacity: sram_bytes,
        })
    }

    /// Fraction of SRAM used, in percent (rounded up).
    pub fn utilization_pct(&self) -> u64 {
        if self.capacity == 0 {
            return 100;
        }
        (self.total_used * 100).div_ceil(self.capacity)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtmdm_dnn::zoo;

    fn m7() -> CostModel {
        CostModel::cmsis_nn_m7()
    }

    #[test]
    fn segmentation_covers_every_layer_exactly_once() {
        for model in zoo::all() {
            let seg = segment_model(&model, &m7(), 96 * 1024).expect("plan");
            let mut next = 0usize;
            for s in &seg.segments {
                assert_eq!(s.first_layer, next, "{}", model.name());
                assert!(s.last_layer >= s.first_layer);
                next = s.last_layer + 1;
            }
            assert_eq!(next, model.len(), "{}", model.name());
            assert_eq!(seg.total_fetch_bytes(), model.total_weight_bytes());
        }
    }

    #[test]
    fn every_segment_fits_the_buffer() {
        for buffer in [8 * 1024u64, 16 * 1024, 64 * 1024] {
            for model in zoo::all() {
                match segment_model(&model, &m7(), buffer) {
                    Ok(seg) => {
                        assert!(
                            seg.max_fetch_bytes() <= buffer,
                            "{} @ {buffer}",
                            model.name()
                        );
                    }
                    Err(PlanError::LayerTooLarge { bytes, .. }) => {
                        assert!(bytes > buffer);
                    }
                    Err(e) => panic!("unexpected error: {e}"),
                }
            }
        }
    }

    #[test]
    fn bigger_buffers_never_increase_segment_count() {
        let model = zoo::mobilenet_v1_025();
        let mut last = usize::MAX;
        for buffer in [72 * 1024u64, 96 * 1024, 128 * 1024, 512 * 1024] {
            let seg = segment_model(&model, &m7(), buffer).expect("plan");
            assert!(seg.len() <= last, "buffer {buffer}");
            last = seg.len();
        }
        // A buffer big enough for the whole model → one segment.
        let whole = segment_model(&model, &m7(), model.total_weight_bytes()).expect("plan");
        assert_eq!(whole.len(), 1);
    }

    #[test]
    fn zero_buffer_is_rejected() {
        assert_eq!(
            segment_model(&zoo::micro_mlp(), &m7(), 0).unwrap_err(),
            PlanError::ZeroBuffer
        );
    }

    #[test]
    fn oversized_layer_is_reported_with_its_name() {
        // The autoencoder's 640×128 dense layer needs >80 kB.
        let err = segment_model(&zoo::autoencoder(), &m7(), 4 * 1024).unwrap_err();
        match err {
            PlanError::LayerTooLarge { layer, bytes, .. } => {
                assert!(bytes > 4 * 1024);
                assert!(layer.starts_with("dense"));
            }
            other => panic!("unexpected: {other}"),
        }
    }

    #[test]
    fn weightless_layers_attach_to_segments() {
        // lenet5 has pools between convs; they must not create
        // zero-fetch segments of their own.
        let seg = segment_model(&zoo::lenet5(), &m7(), 64 * 1024).expect("plan");
        for s in &seg.segments {
            assert!(s.fetch_bytes > 0, "segment {} fetches nothing", s.index);
        }
    }

    #[test]
    fn segment_compute_sums_to_model_compute() {
        let model = zoo::resnet8();
        let seg = segment_model(&model, &m7(), 40 * 1024).expect("plan");
        let total = m7().model_cost(&model).total_compute;
        assert_eq!(seg.total_compute(), total);
    }

    #[test]
    fn sram_layout_fits_reasonable_mixes() {
        let kws = zoo::ds_cnn();
        let vww = zoo::mobilenet_v1_025();
        let layout =
            SramLayout::plan(320 * 1024, &[(&kws, 16 * 1024), (&vww, 32 * 1024)]).expect("layout");
        assert_eq!(layout.entries.len(), 2);
        assert!(layout.total_used <= layout.capacity);
        assert!(layout.utilization_pct() <= 100);
    }

    #[test]
    fn sram_layout_rejects_overflow() {
        let vww = zoo::mobilenet_v1_025();
        let err = SramLayout::plan(32 * 1024, &[(&vww, 16 * 1024)]).unwrap_err();
        assert!(matches!(err, PlanError::ArenaExhausted { .. }));
    }

    #[test]
    fn tiling_conserves_work_and_respects_the_cap() {
        let model = zoo::resnet8();
        let cap = Cycles::new(500_000); // 2.5 ms at 200 MHz
        let capped = segment_model_capped(&model, &m7(), 40 * 1024, Some(cap)).expect("plan");
        let tiled = segment_model_tiled(&model, &m7(), 40 * 1024, cap).expect("plan");
        // Conservation.
        assert_eq!(tiled.total_compute(), capped.total_compute());
        assert_eq!(tiled.total_fetch_bytes(), capped.total_fetch_bytes());
        // The capped plan is floored by resnet8's widest layer; tiling
        // actually meets the cap.
        assert!(capped.max_segment_compute() > cap);
        assert!(tiled.max_segment_compute() <= cap);
        assert!(tiled.len() > capped.len());
        // Continuation slices carry no fetch.
        let zero_fetch = tiled.segments.iter().filter(|s| s.fetch_bytes == 0).count();
        assert!(zero_fetch > 0);
        // Indices are dense.
        for (i, s) in tiled.segments.iter().enumerate() {
            assert_eq!(s.index, i);
        }
    }

    #[test]
    fn tiling_is_identity_when_nothing_exceeds_the_cap() {
        let model = zoo::ds_cnn();
        let cap = Cycles::new(50_000_000);
        let capped = segment_model_capped(&model, &m7(), 16 * 1024, Some(cap)).expect("plan");
        let tiled = segment_model_tiled(&model, &m7(), 16 * 1024, cap).expect("plan");
        assert_eq!(capped, tiled);
    }

    #[test]
    fn max_segment_compute_bounds_each_segment() {
        let seg = segment_model(&zoo::resnet8(), &m7(), 40 * 1024).expect("plan");
        let max = seg.max_segment_compute();
        assert!(seg.segments.iter().all(|s| s.compute_cycles <= max));
        assert!(max > Cycles::ZERO);
    }
}
