//! Property tests on the int8 engine: kernel invariants that must hold
//! for any input tensor, and whole-model construction/inference
//! round-trips on randomly assembled graphs.

use proptest::prelude::*;

use rtmdm_dnn::kernels;
use rtmdm_dnn::{CostModel, Layer, LayerKind, ModelBuilder, Padding, QuantParams, Shape, Tensor};

fn tensor(shape: Shape, seed: u64) -> Tensor {
    let mut t = Tensor::filled_pattern(shape, seed);
    t.set_quant(QuantParams::symmetric(0.1));
    t
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, .. ProptestConfig::default() })]

    /// All-zero weights make every output element equal to the
    /// requantized bias, regardless of the input.
    #[test]
    fn zero_weight_conv_ignores_input(
        seed in 0u64..u64::MAX,
        h in 2usize..8,
        w in 2usize..8,
        c in 1usize..4,
        bias in -2000i32..2000,
    ) {
        let kind = LayerKind::Conv2d {
            in_c: c,
            out_c: 2,
            kernel: (3, 3),
            stride: (1, 1),
            padding: Padding::Same,
            relu: false,
        };
        let layer = Layer::with_weights(
            "z",
            kind,
            vec![0; kind.weight_len()],
            vec![bias; 2],
            0.02,
            QuantParams::symmetric(0.1),
        ).expect("layer");
        let out = kernels::conv2d(&tensor(Shape::new(h, w, c), seed), &layer);
        let first = out.data()[0];
        prop_assert!(out.data().iter().all(|&v| v == first));
    }

    /// ReLU outputs never fall below the output zero point.
    #[test]
    fn relu_clamps_everywhere(seed in 0u64..u64::MAX, h in 2usize..6, w in 2usize..6) {
        let kind = LayerKind::Conv2d {
            in_c: 2,
            out_c: 3,
            kernel: (3, 3),
            stride: (1, 1),
            padding: Padding::Same,
            relu: true,
        };
        let layer = Layer::with_synthetic_weights("r", kind, seed);
        let out = kernels::conv2d(&tensor(Shape::new(h, w, 2), seed), &layer);
        let zp = layer.out_quant.zero_point;
        prop_assert!(out.data().iter().all(|&v| i32::from(v) >= zp));
    }

    /// Max pooling dominates average pooling element-wise (up to the
    /// average's round-to-nearest).
    #[test]
    fn max_pool_dominates_avg_pool(seed in 0u64..u64::MAX, h in 2usize..8, w in 2usize..8) {
        let h = h & !1; // even extents for a clean 2×2 grid
        let w = w & !1;
        prop_assume!(h >= 2 && w >= 2);
        let x = tensor(Shape::new(h, w, 3), seed);
        let mx = kernels::max_pool2d(&x, (2, 2), (2, 2));
        let av = kernels::avg_pool2d(&x, (2, 2), (2, 2));
        for (m, a) in mx.data().iter().zip(av.data()) {
            prop_assert!(m >= a, "max {m} < avg {a}");
        }
    }

    /// Softmax outputs a (quantized) probability distribution: entries
    /// in range, total ≈ 1.
    #[test]
    fn softmax_is_a_distribution(values in proptest::collection::vec(-128i8..=127, 2..32)) {
        let n = values.len();
        let t = Tensor::from_data(Shape::flat(n), values, QuantParams::symmetric(0.1));
        let out = kernels::softmax(&t);
        let probs: Vec<i32> = out.data().iter().map(|&q| i32::from(q) + 128).collect();
        let total: i32 = probs.iter().sum();
        prop_assert!(probs.iter().all(|&p| (0..=256).contains(&p)));
        prop_assert!((total - 256).abs() <= n as i32, "total {total}");
    }

    /// Randomly assembled sequential models build, infer, and cost
    /// consistently: output shape matches, inference is deterministic,
    /// per-layer costs are positive and sum to the model cost.
    #[test]
    fn random_models_build_and_infer(
        seed in 0u64..u64::MAX,
        channels in 1usize..5,
        blocks in proptest::collection::vec(0u8..4, 1..5),
        classes in 2usize..8,
    ) {
        let mut b = ModelBuilder::new(format!("prop{seed}"), Shape::new(16, 16, channels));
        for op in blocks {
            let cur = b.current_shape();
            b = match op {
                0 => b.conv2d(cur.c + 1, (3, 3), (1, 1), Padding::Same, true),
                1 => b.depthwise((3, 3), (1, 1), Padding::Same, true),
                2 if cur.h >= 2 && cur.w >= 2 => b.max_pool((2, 2), (2, 2)),
                _ => b.separable(cur.c, (1, 1), true),
            };
        }
        let model = b.global_avg_pool().dense(classes, false).softmax().build();
        prop_assert_eq!(model.output_shape().len(), classes);
        let input = tensor(model.input_shape(), seed);
        let a = model.infer(&input).expect("inference");
        let b2 = model.infer(&input).expect("inference");
        prop_assert_eq!(a.data(), b2.data());
        let cost = CostModel::cmsis_nn_m7().model_cost(&model);
        prop_assert_eq!(cost.layers.len(), model.len());
        prop_assert!(cost.layers.iter().all(|l| l.compute.get() > 0));
        let sum: u64 = cost.layers.iter().map(|l| l.compute.get()).sum();
        prop_assert_eq!(sum, cost.total_compute.get());
        prop_assert_eq!(cost.total_weight_bytes, model.total_weight_bytes());
    }

    /// Quantize→dequantize round trip stays within half a step.
    #[test]
    fn quantization_round_trip(real in -10.0f32..10.0, scale_m in 1u32..100) {
        let scale = scale_m as f32 / 100.0;
        let p = QuantParams::new(scale, 0);
        let q = rtmdm_dnn::quantize_value(real, p);
        let back = rtmdm_dnn::dequantize(q, p);
        // Saturation makes large values clamp; only check in range.
        if real.abs() < 120.0 * scale {
            prop_assert!((back - real).abs() <= scale / 2.0 + 1e-5);
        }
    }
}
