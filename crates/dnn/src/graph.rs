//! Model graphs: sequential chains with residual skip connections.

use serde::{Deserialize, Serialize};

use crate::kernels;
use crate::layer::{Layer, LayerKind};
use crate::tensor::{Shape, Tensor};

/// Identifier of a node within its model (dense, topological order).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
#[serde(transparent)]
pub struct NodeId(pub usize);

/// Where a node's operand comes from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NodeInput {
    /// The model's external input tensor.
    ModelInput,
    /// The output of an earlier node.
    Node(NodeId),
}

/// One operator instance in a model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Node {
    /// This node's id (equals its index in [`Model::nodes`]).
    pub id: NodeId,
    /// The layer (operator + weights).
    pub layer: Layer,
    /// Operand sources: one for most operators, two for `Add`.
    pub inputs: Vec<NodeInput>,
    /// Activation shape this node produces (validated at build time).
    pub out_shape: Shape,
}

/// Inference failed.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum InferError {
    /// The supplied input tensor does not match the model's input shape.
    InputShapeMismatch {
        /// Shape the model expects.
        expected: Shape,
        /// Shape that was supplied.
        got: Shape,
    },
}

impl std::fmt::Display for InferError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InferError::InputShapeMismatch { expected, got } => {
                write!(f, "input shape {got} does not match model input {expected}")
            }
        }
    }
}

impl std::error::Error for InferError {}

/// A validated DNN: topologically ordered nodes over one input tensor.
///
/// Models are immutable once built (via
/// [`ModelBuilder`](crate::ModelBuilder)); the last node is the output.
///
/// # Examples
///
/// ```rust
/// use rtmdm_dnn::{zoo, Tensor};
///
/// # fn main() -> Result<(), rtmdm_dnn::InferError> {
/// let model = zoo::micro_mlp();
/// let out = model.infer(&Tensor::zeros(model.input_shape()))?;
/// assert_eq!(out.len(), 4);
/// assert!(model.total_weight_bytes() > 0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Model {
    name: String,
    input_shape: Shape,
    nodes: Vec<Node>,
}

impl Model {
    /// Assembles a model from parts. Intended for
    /// [`ModelBuilder`](crate::ModelBuilder); invariants (topological
    /// order, shape agreement) are the builder's responsibility and are
    /// re-checked with debug assertions.
    pub(crate) fn from_parts(name: String, input_shape: Shape, nodes: Vec<Node>) -> Self {
        debug_assert!(nodes.iter().enumerate().all(|(i, n)| n.id.0 == i
            && n.inputs.iter().all(|inp| match inp {
                NodeInput::ModelInput => true,
                NodeInput::Node(id) => id.0 < i,
            })));
        Model {
            name,
            input_shape,
            nodes,
        }
    }

    /// The model's name (zoo identifier).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Expected input activation shape.
    pub fn input_shape(&self) -> Shape {
        self.input_shape
    }

    /// Output activation shape (the last node's shape).
    pub fn output_shape(&self) -> Shape {
        self.nodes
            .last()
            .map(|n| n.out_shape)
            .unwrap_or(self.input_shape)
    }

    /// All nodes in topological (execution) order.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Number of operator nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the model has no operators.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Total parameter bytes that must be staged from external memory.
    pub fn total_weight_bytes(&self) -> u64 {
        self.nodes.iter().map(|n| n.layer.weight_bytes()).sum()
    }

    /// Total multiply-accumulate operations per inference.
    pub fn total_macs(&self) -> u64 {
        let mut total = 0u64;
        for node in &self.nodes {
            let in_shape = self.operand_shape(node, 0);
            total += node.layer.kind.macs(in_shape);
        }
        total
    }

    /// The largest single layer's weight block in bytes — the lower bound
    /// on any SRAM fetch buffer that can run this model.
    pub fn max_layer_weight_bytes(&self) -> u64 {
        self.nodes
            .iter()
            .map(|n| n.layer.weight_bytes())
            .max()
            .unwrap_or(0)
    }

    /// The largest activation tensor (input or any node output) in bytes;
    /// this must fit in SRAM alongside the weight buffers.
    pub fn max_activation_bytes(&self) -> u64 {
        self.nodes
            .iter()
            .map(|n| n.out_shape.len() as u64)
            .chain(std::iter::once(self.input_shape.len() as u64))
            .max()
            .unwrap_or(0)
    }

    /// Shape of `node`'s `idx`-th operand.
    fn operand_shape(&self, node: &Node, idx: usize) -> Shape {
        match node.inputs[idx] {
            NodeInput::ModelInput => self.input_shape,
            NodeInput::Node(id) => self.nodes[id.0].out_shape,
        }
    }

    /// Serializes the model (topology + weights + quantization) to JSON.
    ///
    /// # Errors
    ///
    /// Propagates `serde_json` encoding failures (practically
    /// unreachable for this data model).
    pub fn to_json(&self) -> Result<String, serde_json::Error> {
        serde_json::to_string(self)
    }

    /// Restores a model serialized with [`Model::to_json`].
    ///
    /// # Errors
    ///
    /// Returns the decoding error on malformed input.
    pub fn from_json(json: &str) -> Result<Model, serde_json::Error> {
        serde_json::from_str(json)
    }

    /// Runs a full inference, returning the output tensor.
    ///
    /// # Errors
    ///
    /// Returns [`InferError::InputShapeMismatch`] if `input` has the
    /// wrong shape.
    pub fn infer(&self, input: &Tensor) -> Result<Tensor, InferError> {
        if input.shape() != self.input_shape {
            return Err(InferError::InputShapeMismatch {
                expected: self.input_shape,
                got: input.shape(),
            });
        }
        let mut outputs: Vec<Option<Tensor>> = vec![None; self.nodes.len()];
        for node in &self.nodes {
            let fetch = |inp: &NodeInput| -> &Tensor {
                match inp {
                    NodeInput::ModelInput => input,
                    NodeInput::Node(id) => outputs[id.0]
                        .as_ref()
                        .expect("topological order guarantees availability"),
                }
            };
            let out = match node.layer.kind {
                LayerKind::Conv2d { .. } => kernels::conv2d(fetch(&node.inputs[0]), &node.layer),
                LayerKind::DepthwiseConv2d { .. } => {
                    kernels::depthwise_conv2d(fetch(&node.inputs[0]), &node.layer)
                }
                LayerKind::Dense { .. } => kernels::dense(fetch(&node.inputs[0]), &node.layer),
                LayerKind::AvgPool2d { kernel, stride } => {
                    kernels::avg_pool2d(fetch(&node.inputs[0]), kernel, stride)
                }
                LayerKind::MaxPool2d { kernel, stride } => {
                    kernels::max_pool2d(fetch(&node.inputs[0]), kernel, stride)
                }
                LayerKind::GlobalAvgPool => kernels::global_avg_pool(fetch(&node.inputs[0])),
                LayerKind::Add { .. } => {
                    kernels::add(fetch(&node.inputs[0]), fetch(&node.inputs[1]), &node.layer)
                }
                LayerKind::Softmax => kernels::softmax(fetch(&node.inputs[0])),
                LayerKind::Flatten => fetch(&node.inputs[0]).flattened(),
            };
            debug_assert_eq!(
                out.shape(),
                node.out_shape,
                "node {} shape",
                node.layer.name
            );
            outputs[node.id.0] = Some(out);
        }
        // Telemetry: a single relaxed atomic load when the process-wide
        // registry is disabled (the default), so inference benchmarks
        // are unperturbed.
        let g = rtmdm_obs::metrics::global();
        if g.is_enabled() {
            g.add("dnn.inferences", 1);
            g.add("dnn.layers_executed", self.nodes.len() as u64);
            g.add("dnn.macs_executed", self.total_macs());
        }
        Ok(outputs.pop().flatten().unwrap_or_else(|| input.clone()))
    }
}

impl std::fmt::Display for Model {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} ({} layers, {} weight bytes, {} MACs)",
            self.name,
            self.nodes.len(),
            self.total_weight_bytes(),
            self.total_macs()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ModelBuilder;
    use crate::layer::Padding;

    fn tiny_model() -> Model {
        ModelBuilder::new("tiny", Shape::new(4, 4, 1))
            .conv2d(2, (3, 3), (1, 1), Padding::Same, true)
            .global_avg_pool()
            .dense(3, false)
            .build()
    }

    #[test]
    fn shapes_propagate_through_builder() {
        let m = tiny_model();
        assert_eq!(m.input_shape(), Shape::new(4, 4, 1));
        assert_eq!(m.output_shape(), Shape::flat(3));
        assert_eq!(m.len(), 3);
        assert_eq!(m.nodes()[0].out_shape, Shape::new(4, 4, 2));
    }

    #[test]
    fn infer_runs_and_produces_output_shape() {
        let m = tiny_model();
        let out = m.infer(&Tensor::zeros(m.input_shape())).expect("infer");
        assert_eq!(out.shape(), Shape::flat(3));
    }

    #[test]
    fn infer_rejects_wrong_input_shape() {
        let m = tiny_model();
        let err = m.infer(&Tensor::zeros(Shape::new(5, 5, 1))).unwrap_err();
        assert!(matches!(err, InferError::InputShapeMismatch { .. }));
        assert!(err.to_string().contains("5x5x1"));
    }

    #[test]
    fn aggregate_statistics() {
        let m = tiny_model();
        // conv: 2*9*1 weights + 2 biases; dense: 2*3 weights + 3 biases.
        assert_eq!(m.total_weight_bytes(), (18 + 8) as u64 + (6 + 12) as u64);
        assert_eq!(m.total_macs(), (4 * 4 * 2 * 9) as u64 + 6);
        assert!(m.max_layer_weight_bytes() >= 18);
        assert_eq!(m.max_activation_bytes(), 32); // 4×4×2 conv output
    }

    #[test]
    fn inference_is_deterministic() {
        let m = tiny_model();
        let input = Tensor::filled_pattern(m.input_shape(), 5);
        let a = m.infer(&input).expect("infer");
        let b = m.infer(&input).expect("infer");
        assert_eq!(a, b);
    }

    #[test]
    fn residual_model_executes() {
        let m = ModelBuilder::new("res", Shape::new(4, 4, 2))
            .checkpoint()
            .conv2d(2, (3, 3), (1, 1), Padding::Same, true)
            .add_from_checkpoint(true)
            .build();
        // Residual adds require equal operand scales; give the model
        // input the same activation scale the zoo uses internally.
        let mut input = Tensor::filled_pattern(m.input_shape(), 9);
        input.set_quant(crate::quantize::QuantParams::symmetric(0.1));
        let out = m.infer(&input).expect("infer");
        assert_eq!(out.shape(), Shape::new(4, 4, 2));
        // The Add node has two inputs.
        assert_eq!(m.nodes().last().unwrap().inputs.len(), 2);
    }

    #[test]
    fn json_round_trip_preserves_model_and_inference() {
        let m = tiny_model();
        let json = m.to_json().expect("encode");
        let back = Model::from_json(&json).expect("decode");
        assert_eq!(m, back);
        let input = Tensor::filled_pattern(m.input_shape(), 3);
        assert_eq!(
            m.infer(&input).expect("infer"),
            back.infer(&input).expect("infer")
        );
        assert!(Model::from_json("{not json").is_err());
    }

    #[test]
    fn display_mentions_name_and_sizes() {
        let s = tiny_model().to_string();
        assert!(s.contains("tiny"));
        assert!(s.contains("3 layers"));
    }
}
