//! Layer descriptions: operator kind, parameters, and weights.

use serde::{Deserialize, Serialize};

use crate::quantize::QuantParams;
use crate::tensor::Shape;

/// Spatial padding policy of convolution and pooling layers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Padding {
    /// No padding; the window must fit entirely inside the input.
    Valid,
    /// Zero padding such that `out = ceil(in / stride)`.
    Same,
}

impl Padding {
    /// Output extent for one spatial dimension.
    pub fn out_extent(self, input: usize, kernel: usize, stride: usize) -> usize {
        match self {
            Padding::Valid => {
                if input < kernel {
                    0
                } else {
                    (input - kernel) / stride + 1
                }
            }
            Padding::Same => input.div_ceil(stride),
        }
    }

    /// Total zero padding added to one spatial dimension (split
    /// before/after like TFLite: `before = total / 2`).
    pub fn total_pad(self, input: usize, kernel: usize, stride: usize) -> usize {
        match self {
            Padding::Valid => 0,
            Padding::Same => {
                let out = self.out_extent(input, kernel, stride);
                ((out - 1) * stride + kernel).saturating_sub(input)
            }
        }
    }
}

/// The operator a [`Layer`] computes.
///
/// Activation functions are folded into the producing layer (`relu`
/// flags), matching how deployment runtimes fuse them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum LayerKind {
    /// Standard 2-D convolution over HWC input.
    Conv2d {
        /// Input channels.
        in_c: usize,
        /// Output channels (filter count).
        out_c: usize,
        /// Kernel height and width.
        kernel: (usize, usize),
        /// Stride in height and width.
        stride: (usize, usize),
        /// Padding policy.
        padding: Padding,
        /// Fused ReLU on the output.
        relu: bool,
    },
    /// Depthwise 2-D convolution (channel multiplier 1).
    DepthwiseConv2d {
        /// Channels (input = output).
        channels: usize,
        /// Kernel height and width.
        kernel: (usize, usize),
        /// Stride in height and width.
        stride: (usize, usize),
        /// Padding policy.
        padding: Padding,
        /// Fused ReLU on the output.
        relu: bool,
    },
    /// Fully-connected layer on flat features.
    Dense {
        /// Input features.
        in_features: usize,
        /// Output features.
        out_features: usize,
        /// Fused ReLU on the output.
        relu: bool,
    },
    /// Average pooling.
    AvgPool2d {
        /// Window height and width.
        kernel: (usize, usize),
        /// Stride in height and width.
        stride: (usize, usize),
    },
    /// Max pooling.
    MaxPool2d {
        /// Window height and width.
        kernel: (usize, usize),
        /// Stride in height and width.
        stride: (usize, usize),
    },
    /// Global average pooling: HWC → 1×1×C.
    GlobalAvgPool,
    /// Element-wise residual addition of two equal-shape inputs.
    Add {
        /// Fused ReLU on the sum.
        relu: bool,
    },
    /// Softmax over flat features (produces a quantized distribution).
    Softmax,
    /// Reshape HWC activations to flat features.
    Flatten,
}

impl LayerKind {
    /// Whether this operator carries weights that must be staged from
    /// external memory.
    pub fn has_weights(&self) -> bool {
        matches!(
            self,
            LayerKind::Conv2d { .. } | LayerKind::DepthwiseConv2d { .. } | LayerKind::Dense { .. }
        )
    }

    /// Number of `i8` weight elements.
    pub fn weight_len(&self) -> usize {
        match *self {
            LayerKind::Conv2d {
                in_c,
                out_c,
                kernel,
                ..
            } => out_c * kernel.0 * kernel.1 * in_c,
            LayerKind::DepthwiseConv2d {
                channels, kernel, ..
            } => channels * kernel.0 * kernel.1,
            LayerKind::Dense {
                in_features,
                out_features,
                ..
            } => in_features * out_features,
            _ => 0,
        }
    }

    /// Number of `i32` bias elements.
    pub fn bias_len(&self) -> usize {
        match *self {
            LayerKind::Conv2d { out_c, .. } => out_c,
            LayerKind::DepthwiseConv2d { channels, .. } => channels,
            LayerKind::Dense { out_features, .. } => out_features,
            _ => 0,
        }
    }

    /// Bytes of parameter data (int8 weights + int32 biases) the layer
    /// needs resident in SRAM to execute.
    pub fn weight_bytes(&self) -> u64 {
        (self.weight_len() + 4 * self.bias_len()) as u64
    }

    /// Output shape for a given input shape, or `None` if the operator
    /// cannot consume that shape.
    pub fn out_shape(&self, input: Shape) -> Option<Shape> {
        match *self {
            LayerKind::Conv2d {
                in_c,
                out_c,
                kernel,
                stride,
                padding,
                ..
            } => {
                if input.c != in_c {
                    return None;
                }
                let h = padding.out_extent(input.h, kernel.0, stride.0);
                let w = padding.out_extent(input.w, kernel.1, stride.1);
                (h > 0 && w > 0).then_some(Shape::new(h, w, out_c))
            }
            LayerKind::DepthwiseConv2d {
                channels,
                kernel,
                stride,
                padding,
                ..
            } => {
                if input.c != channels {
                    return None;
                }
                let h = padding.out_extent(input.h, kernel.0, stride.0);
                let w = padding.out_extent(input.w, kernel.1, stride.1);
                (h > 0 && w > 0).then_some(Shape::new(h, w, channels))
            }
            LayerKind::Dense {
                in_features,
                out_features,
                ..
            } => (input.len() == in_features).then_some(Shape::flat(out_features)),
            LayerKind::AvgPool2d { kernel, stride } | LayerKind::MaxPool2d { kernel, stride } => {
                let h = Padding::Valid.out_extent(input.h, kernel.0, stride.0);
                let w = Padding::Valid.out_extent(input.w, kernel.1, stride.1);
                (h > 0 && w > 0).then_some(Shape::new(h, w, input.c))
            }
            LayerKind::GlobalAvgPool => Some(Shape::new(1, 1, input.c)),
            LayerKind::Add { .. } => Some(input),
            LayerKind::Softmax => Some(Shape::flat(input.len())),
            LayerKind::Flatten => Some(Shape::flat(input.len())),
        }
    }

    /// Multiply-accumulate count for one inference of this layer on the
    /// given input shape (0 for weight-less operators; pooling and
    /// softmax are charged separately by the cost model).
    pub fn macs(&self, input: Shape) -> u64 {
        let Some(out) = self.out_shape(input) else {
            return 0;
        };
        match *self {
            LayerKind::Conv2d { in_c, kernel, .. } => {
                (out.len() * kernel.0 * kernel.1 * in_c) as u64
            }
            LayerKind::DepthwiseConv2d { kernel, .. } => (out.len() * kernel.0 * kernel.1) as u64,
            LayerKind::Dense {
                in_features,
                out_features,
                ..
            } => (in_features * out_features) as u64,
            _ => 0,
        }
    }

    /// A short operator mnemonic for tables.
    pub fn mnemonic(&self) -> &'static str {
        match self {
            LayerKind::Conv2d { .. } => "conv",
            LayerKind::DepthwiseConv2d { .. } => "dwconv",
            LayerKind::Dense { .. } => "dense",
            LayerKind::AvgPool2d { .. } => "avgpool",
            LayerKind::MaxPool2d { .. } => "maxpool",
            LayerKind::GlobalAvgPool => "gap",
            LayerKind::Add { .. } => "add",
            LayerKind::Softmax => "softmax",
            LayerKind::Flatten => "flatten",
        }
    }
}

/// A layer's parameters could not be materialised.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum BuildLayerError {
    /// Supplied weight buffer length does not match the operator.
    WeightLenMismatch {
        /// Expected element count.
        expected: usize,
        /// Supplied element count.
        got: usize,
    },
    /// Supplied bias buffer length does not match the operator.
    BiasLenMismatch {
        /// Expected element count.
        expected: usize,
        /// Supplied element count.
        got: usize,
    },
}

impl std::fmt::Display for BuildLayerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BuildLayerError::WeightLenMismatch { expected, got } => {
                write!(
                    f,
                    "weight buffer has {got} elements, operator needs {expected}"
                )
            }
            BuildLayerError::BiasLenMismatch { expected, got } => {
                write!(
                    f,
                    "bias buffer has {got} elements, operator needs {expected}"
                )
            }
        }
    }
}

impl std::error::Error for BuildLayerError {}

/// A concrete layer: operator, weights, and quantization.
///
/// Layers are constructed via [`Layer::with_synthetic_weights`] (the zoo
/// path) or [`Layer::with_weights`] (explicit parameters).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Layer {
    /// Layer name, unique within its model (used in reports and traces).
    pub name: String,
    /// The operator.
    pub kind: LayerKind,
    /// Int8 weights (layout documented per kernel).
    pub weights: Vec<i8>,
    /// Int32 biases.
    pub bias: Vec<i32>,
    /// Weight quantization scale (symmetric).
    pub weight_scale: f32,
    /// Output activation quantization.
    pub out_quant: QuantParams,
}

impl Layer {
    /// Creates a layer with deterministic synthetic weights derived from
    /// a seed (xorshift64*), so zoo models are bit-reproducible without a
    /// weight file.
    pub fn with_synthetic_weights(name: impl Into<String>, kind: LayerKind, seed: u64) -> Self {
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let weights = (0..kind.weight_len())
            .map(|_| ((next() >> 56) as i8).clamp(-127, 127))
            .collect();
        let bias = (0..kind.bias_len())
            .map(|_| ((next() >> 48) as i16 / 8) as i32)
            .collect();
        Layer {
            name: name.into(),
            kind,
            weights,
            bias,
            weight_scale: 0.02,
            out_quant: QuantParams::symmetric(0.1),
        }
    }

    /// Creates a layer from explicit weights and biases.
    ///
    /// # Errors
    ///
    /// Returns [`BuildLayerError`] if buffer lengths do not match the
    /// operator's parameter counts.
    pub fn with_weights(
        name: impl Into<String>,
        kind: LayerKind,
        weights: Vec<i8>,
        bias: Vec<i32>,
        weight_scale: f32,
        out_quant: QuantParams,
    ) -> Result<Self, BuildLayerError> {
        if weights.len() != kind.weight_len() {
            return Err(BuildLayerError::WeightLenMismatch {
                expected: kind.weight_len(),
                got: weights.len(),
            });
        }
        if bias.len() != kind.bias_len() {
            return Err(BuildLayerError::BiasLenMismatch {
                expected: kind.bias_len(),
                got: bias.len(),
            });
        }
        Ok(Layer {
            name: name.into(),
            kind,
            weights,
            bias,
            weight_scale,
            out_quant,
        })
    }

    /// Bytes of parameter data this layer stages from external memory.
    pub fn weight_bytes(&self) -> u64 {
        self.kind.weight_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn padding_extents() {
        assert_eq!(Padding::Valid.out_extent(32, 3, 1), 30);
        assert_eq!(Padding::Same.out_extent(32, 3, 1), 32);
        assert_eq!(Padding::Same.out_extent(32, 3, 2), 16);
        assert_eq!(Padding::Valid.out_extent(2, 3, 1), 0);
        assert_eq!(Padding::Same.total_pad(32, 3, 1), 2);
        assert_eq!(Padding::Valid.total_pad(32, 3, 1), 0);
    }

    #[test]
    fn conv_shapes_and_macs() {
        let k = LayerKind::Conv2d {
            in_c: 3,
            out_c: 16,
            kernel: (3, 3),
            stride: (1, 1),
            padding: Padding::Same,
            relu: true,
        };
        let input = Shape::new(32, 32, 3);
        assert_eq!(k.out_shape(input), Some(Shape::new(32, 32, 16)));
        assert_eq!(k.macs(input), 32 * 32 * 16 * 9 * 3);
        assert_eq!(k.weight_len(), 16 * 9 * 3);
        assert_eq!(k.bias_len(), 16);
        assert_eq!(k.weight_bytes(), (16 * 9 * 3 + 4 * 16) as u64);
        // Channel mismatch is rejected.
        assert_eq!(k.out_shape(Shape::new(32, 32, 4)), None);
    }

    #[test]
    fn depthwise_shapes() {
        let k = LayerKind::DepthwiseConv2d {
            channels: 8,
            kernel: (3, 3),
            stride: (2, 2),
            padding: Padding::Same,
            relu: true,
        };
        assert_eq!(
            k.out_shape(Shape::new(10, 10, 8)),
            Some(Shape::new(5, 5, 8))
        );
        assert_eq!(k.macs(Shape::new(10, 10, 8)), 5 * 5 * 8 * 9);
    }

    #[test]
    fn dense_consumes_flat_or_spatial() {
        let k = LayerKind::Dense {
            in_features: 12,
            out_features: 4,
            relu: false,
        };
        assert_eq!(k.out_shape(Shape::new(2, 2, 3)), Some(Shape::flat(4)));
        assert_eq!(k.out_shape(Shape::flat(12)), Some(Shape::flat(4)));
        assert_eq!(k.out_shape(Shape::flat(13)), None);
        assert_eq!(k.macs(Shape::flat(12)), 48);
    }

    #[test]
    fn pool_gap_add_softmax_shapes() {
        let input = Shape::new(8, 8, 4);
        let avg = LayerKind::AvgPool2d {
            kernel: (2, 2),
            stride: (2, 2),
        };
        assert_eq!(avg.out_shape(input), Some(Shape::new(4, 4, 4)));
        assert_eq!(
            LayerKind::GlobalAvgPool.out_shape(input),
            Some(Shape::new(1, 1, 4))
        );
        assert_eq!(LayerKind::Add { relu: false }.out_shape(input), Some(input));
        assert_eq!(
            LayerKind::Softmax.out_shape(Shape::flat(10)),
            Some(Shape::flat(10))
        );
        assert_eq!(LayerKind::Flatten.out_shape(input), Some(Shape::flat(256)));
    }

    #[test]
    fn synthetic_weights_are_deterministic() {
        let k = LayerKind::Dense {
            in_features: 64,
            out_features: 16,
            relu: false,
        };
        let a = Layer::with_synthetic_weights("fc", k, 42);
        let b = Layer::with_synthetic_weights("fc", k, 42);
        let c = Layer::with_synthetic_weights("fc", k, 43);
        assert_eq!(a.weights, b.weights);
        assert_ne!(a.weights, c.weights);
        assert_eq!(a.weights.len(), 1024);
        assert_eq!(a.bias.len(), 16);
        assert!(a.weights.iter().all(|&w| w >= -127));
    }

    #[test]
    fn with_weights_validates_lengths() {
        let k = LayerKind::Dense {
            in_features: 4,
            out_features: 2,
            relu: false,
        };
        let err = Layer::with_weights(
            "fc",
            k,
            vec![0; 7],
            vec![0; 2],
            0.02,
            QuantParams::default(),
        )
        .unwrap_err();
        assert_eq!(
            err,
            BuildLayerError::WeightLenMismatch {
                expected: 8,
                got: 7
            }
        );
        let err = Layer::with_weights(
            "fc",
            k,
            vec![0; 8],
            vec![0; 3],
            0.02,
            QuantParams::default(),
        )
        .unwrap_err();
        assert!(matches!(err, BuildLayerError::BiasLenMismatch { .. }));
    }

    #[test]
    fn mnemonics_cover_all_kinds() {
        assert_eq!(LayerKind::GlobalAvgPool.mnemonic(), "gap");
        assert_eq!(LayerKind::Softmax.mnemonic(), "softmax");
    }
}
