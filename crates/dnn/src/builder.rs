//! Fluent construction of [`Model`] graphs.

use crate::graph::{Model, Node, NodeId, NodeInput};
use crate::layer::{Layer, LayerKind, Padding};
use crate::tensor::Shape;

/// Builds a [`Model`] layer by layer, tracking shapes as it goes.
///
/// The builder panics (rather than returning errors) on shape mismatches:
/// model topology is programmer-authored, so a mismatch is a bug at the
/// construction site, and the panic message names the offending layer.
///
/// Residual connections use [`checkpoint`](ModelBuilder::checkpoint) /
/// [`add_from_checkpoint`](ModelBuilder::add_from_checkpoint):
///
/// ```rust
/// use rtmdm_dnn::{ModelBuilder, Padding, Shape};
///
/// let block = ModelBuilder::new("block", Shape::new(8, 8, 16))
///     .checkpoint()
///     .conv2d(16, (3, 3), (1, 1), Padding::Same, true)
///     .conv2d(16, (3, 3), (1, 1), Padding::Same, false)
///     .add_from_checkpoint(true)
///     .build();
/// assert_eq!(block.output_shape(), Shape::new(8, 8, 16));
/// ```
#[derive(Debug)]
pub struct ModelBuilder {
    name: String,
    input_shape: Shape,
    nodes: Vec<Node>,
    cursor: NodeInput,
    cursor_shape: Shape,
    checkpoints: Vec<(NodeInput, Shape)>,
}

impl ModelBuilder {
    /// Starts a model with the given name and input shape.
    pub fn new(name: impl Into<String>, input_shape: Shape) -> Self {
        ModelBuilder {
            name: name.into(),
            input_shape,
            nodes: Vec::new(),
            cursor: NodeInput::ModelInput,
            cursor_shape: input_shape,
            checkpoints: Vec::new(),
        }
    }

    fn push(&mut self, kind: LayerKind, inputs: Vec<NodeInput>, in_shape: Shape) {
        let idx = self.nodes.len();
        let out_shape = kind.out_shape(in_shape).unwrap_or_else(|| {
            panic!(
                "{}: layer {idx} ({}) cannot consume shape {in_shape}",
                self.name,
                kind.mnemonic()
            )
        });
        // Seed derived from model name and layer index keeps synthetic
        // weights stable across runs and distinct across layers.
        let seed = self
            .name
            .bytes()
            .fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
                (h ^ u64::from(b)).wrapping_mul(0x1000_0000_01b3)
            })
            .wrapping_add(idx as u64);
        let layer =
            Layer::with_synthetic_weights(format!("{}{}", kind.mnemonic(), idx), kind, seed);
        self.nodes.push(Node {
            id: NodeId(idx),
            layer,
            inputs,
            out_shape,
        });
        self.cursor = NodeInput::Node(NodeId(idx));
        self.cursor_shape = out_shape;
    }

    fn chain(mut self, kind: LayerKind) -> Self {
        let (cursor, shape) = (self.cursor, self.cursor_shape);
        self.push(kind, vec![cursor], shape);
        self
    }

    /// Appends a standard convolution.
    pub fn conv2d(
        self,
        out_c: usize,
        kernel: (usize, usize),
        stride: (usize, usize),
        padding: Padding,
        relu: bool,
    ) -> Self {
        let in_c = self.cursor_shape.c;
        self.chain(LayerKind::Conv2d {
            in_c,
            out_c,
            kernel,
            stride,
            padding,
            relu,
        })
    }

    /// Appends a depthwise convolution (channel multiplier 1).
    pub fn depthwise(
        self,
        kernel: (usize, usize),
        stride: (usize, usize),
        padding: Padding,
        relu: bool,
    ) -> Self {
        let channels = self.cursor_shape.c;
        self.chain(LayerKind::DepthwiseConv2d {
            channels,
            kernel,
            stride,
            padding,
            relu,
        })
    }

    /// Appends a depthwise + pointwise (1×1) pair — the MobileNet
    /// separable-convolution building block.
    pub fn separable(self, out_c: usize, stride: (usize, usize), relu: bool) -> Self {
        self.depthwise((3, 3), stride, Padding::Same, relu).conv2d(
            out_c,
            (1, 1),
            (1, 1),
            Padding::Same,
            relu,
        )
    }

    /// Appends a fully-connected layer (input is implicitly flattened).
    pub fn dense(self, out_features: usize, relu: bool) -> Self {
        let in_features = self.cursor_shape.len();
        self.chain(LayerKind::Dense {
            in_features,
            out_features,
            relu,
        })
    }

    /// Appends average pooling (valid padding).
    pub fn avg_pool(self, kernel: (usize, usize), stride: (usize, usize)) -> Self {
        self.chain(LayerKind::AvgPool2d { kernel, stride })
    }

    /// Appends max pooling (valid padding).
    pub fn max_pool(self, kernel: (usize, usize), stride: (usize, usize)) -> Self {
        self.chain(LayerKind::MaxPool2d { kernel, stride })
    }

    /// Appends global average pooling.
    pub fn global_avg_pool(self) -> Self {
        self.chain(LayerKind::GlobalAvgPool)
    }

    /// Appends an explicit flatten (dense also flattens implicitly).
    pub fn flatten(self) -> Self {
        self.chain(LayerKind::Flatten)
    }

    /// Appends a softmax over the current (flat) activations.
    pub fn softmax(self) -> Self {
        self.chain(LayerKind::Softmax)
    }

    /// Saves the current output as the source of a future residual add.
    /// Checkpoints form a stack; each
    /// [`add_from_checkpoint`](Self::add_from_checkpoint) pops one.
    pub fn checkpoint(mut self) -> Self {
        self.checkpoints.push((self.cursor, self.cursor_shape));
        self
    }

    /// Appends an element-wise residual add of the current output and the
    /// most recent checkpoint.
    ///
    /// # Panics
    ///
    /// Panics if no checkpoint is pending or the shapes disagree.
    pub fn add_from_checkpoint(mut self, relu: bool) -> Self {
        let (skip, skip_shape) = self
            .checkpoints
            .pop()
            .unwrap_or_else(|| panic!("{}: add_from_checkpoint without checkpoint", self.name));
        assert_eq!(
            skip_shape, self.cursor_shape,
            "{}: residual shapes disagree ({} vs {})",
            self.name, skip_shape, self.cursor_shape
        );
        let (cursor, shape) = (self.cursor, self.cursor_shape);
        self.push(LayerKind::Add { relu }, vec![cursor, skip], shape);
        self
    }

    /// Appends a residual add where the skip path first passes through a
    /// 1×1 projection convolution — the ResNet downsampling block. Pops
    /// the most recent checkpoint, projects it to the current shape with
    /// a `1×1` convolution of the given stride, and adds.
    ///
    /// # Panics
    ///
    /// Panics if no checkpoint is pending or the projected shape does not
    /// match the current output shape.
    pub fn add_with_projection(mut self, stride: (usize, usize), relu: bool) -> Self {
        let (skip, skip_shape) = self
            .checkpoints
            .pop()
            .unwrap_or_else(|| panic!("{}: add_with_projection without checkpoint", self.name));
        let main = self.cursor;
        let main_shape = self.cursor_shape;
        let kind = LayerKind::Conv2d {
            in_c: skip_shape.c,
            out_c: main_shape.c,
            kernel: (1, 1),
            stride,
            padding: Padding::Same,
            relu: false,
        };
        self.push(kind, vec![skip], skip_shape);
        let proj = self.cursor;
        assert_eq!(
            self.cursor_shape, main_shape,
            "{}: projection produces {} but main path is {}",
            self.name, self.cursor_shape, main_shape
        );
        self.push(LayerKind::Add { relu }, vec![main, proj], main_shape);
        self
    }

    /// Current activation shape (useful when composing helpers).
    pub fn current_shape(&self) -> Shape {
        self.cursor_shape
    }

    /// Finalises the model.
    ///
    /// # Panics
    ///
    /// Panics if a checkpoint was taken but never consumed — almost
    /// certainly a topology bug.
    pub fn build(self) -> Model {
        assert!(
            self.checkpoints.is_empty(),
            "{}: {} unconsumed checkpoint(s)",
            self.name,
            self.checkpoints.len()
        );
        Model::from_parts(self.name, self.input_shape, self.nodes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_chain_tracks_shapes() {
        let m = ModelBuilder::new("seq", Shape::new(28, 28, 1))
            .conv2d(6, (5, 5), (1, 1), Padding::Valid, true)
            .max_pool((2, 2), (2, 2))
            .conv2d(16, (5, 5), (1, 1), Padding::Valid, true)
            .max_pool((2, 2), (2, 2))
            .dense(10, false)
            .build();
        let shapes: Vec<Shape> = m.nodes().iter().map(|n| n.out_shape).collect();
        assert_eq!(shapes[0], Shape::new(24, 24, 6));
        assert_eq!(shapes[1], Shape::new(12, 12, 6));
        assert_eq!(shapes[2], Shape::new(8, 8, 16));
        assert_eq!(shapes[3], Shape::new(4, 4, 16));
        assert_eq!(shapes[4], Shape::flat(10));
    }

    #[test]
    fn separable_is_depthwise_plus_pointwise() {
        let m = ModelBuilder::new("sep", Shape::new(8, 8, 4))
            .separable(12, (2, 2), true)
            .build();
        assert_eq!(m.len(), 2);
        assert_eq!(m.output_shape(), Shape::new(4, 4, 12));
        assert_eq!(m.nodes()[0].layer.kind.mnemonic(), "dwconv");
        assert_eq!(m.nodes()[1].layer.kind.mnemonic(), "conv");
    }

    #[test]
    #[should_panic(expected = "cannot consume shape")]
    fn shape_mismatch_panics_with_layer_name() {
        // 2×2 input cannot take a valid 5×5 convolution.
        let _ = ModelBuilder::new("bad", Shape::new(2, 2, 1)).conv2d(
            4,
            (5, 5),
            (1, 1),
            Padding::Valid,
            false,
        );
    }

    #[test]
    #[should_panic(expected = "without checkpoint")]
    fn add_without_checkpoint_panics() {
        let _ = ModelBuilder::new("bad", Shape::new(4, 4, 2)).add_from_checkpoint(false);
    }

    #[test]
    #[should_panic(expected = "unconsumed checkpoint")]
    fn dangling_checkpoint_panics_at_build() {
        let _ = ModelBuilder::new("bad", Shape::new(4, 4, 2))
            .checkpoint()
            .build();
    }

    #[test]
    fn checkpoints_nest_like_a_stack() {
        let m = ModelBuilder::new("nest", Shape::new(8, 8, 4))
            .checkpoint() // outer skip
            .conv2d(4, (3, 3), (1, 1), Padding::Same, true)
            .checkpoint() // inner skip
            .conv2d(4, (3, 3), (1, 1), Padding::Same, true)
            .add_from_checkpoint(true) // consumes inner
            .add_from_checkpoint(true) // consumes outer
            .build();
        assert_eq!(m.output_shape(), Shape::new(8, 8, 4));
        assert_eq!(m.len(), 4);
    }

    #[test]
    fn layer_names_are_unique() {
        let m = ModelBuilder::new("names", Shape::new(8, 8, 2))
            .conv2d(2, (3, 3), (1, 1), Padding::Same, true)
            .conv2d(2, (3, 3), (1, 1), Padding::Same, true)
            .build();
        let names: Vec<&str> = m.nodes().iter().map(|n| n.layer.name.as_str()).collect();
        assert_eq!(names, vec!["conv0", "conv1"]);
    }

    #[test]
    fn same_topology_same_weights_different_names_differ() {
        let a = ModelBuilder::new("a", Shape::new(4, 4, 1))
            .dense(8, false)
            .build();
        let a2 = ModelBuilder::new("a", Shape::new(4, 4, 1))
            .dense(8, false)
            .build();
        let b = ModelBuilder::new("b", Shape::new(4, 4, 1))
            .dense(8, false)
            .build();
        assert_eq!(a.nodes()[0].layer.weights, a2.nodes()[0].layer.weights);
        assert_ne!(a.nodes()[0].layer.weights, b.nodes()[0].layer.weights);
    }
}
