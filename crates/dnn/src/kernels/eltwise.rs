//! Element-wise kernels: residual addition and softmax.

use crate::layer::{Layer, LayerKind};
use crate::quantize::QuantParams;
use crate::tensor::{Shape, Tensor};

/// Element-wise residual addition of two equal-shape, equal-scale tensors.
///
/// The zoo assigns one activation scale to every tensor on a residual
/// path (standard practice for deployment-friendly training), so the add
/// reduces to integer addition with saturation. The general
/// different-scale case would need per-input rescaling; this engine
/// rejects it loudly rather than silently computing the wrong thing.
///
/// # Panics
///
/// Panics if shapes differ, scales differ by more than 1 ppm, or
/// `layer.kind` is not [`LayerKind::Add`].
pub fn add(a: &Tensor, b: &Tensor, layer: &Layer) -> Tensor {
    let LayerKind::Add { relu } = layer.kind else {
        panic!("add called with {:?}", layer.kind.mnemonic());
    };
    assert_eq!(a.shape(), b.shape(), "add operand shape mismatch");
    let (sa, sb) = (a.quant().scale, b.quant().scale);
    assert!(
        (sa - sb).abs() <= sa.abs() * 1e-6,
        "add requires equal operand scales ({sa} vs {sb})"
    );
    let zp_a = a.quant().zero_point;
    let zp_b = b.quant().zero_point;
    let out_quant = layer.out_quant;
    assert!(
        (out_quant.scale - sa).abs() <= sa.abs() * 1e-6,
        "add requires output scale equal to operand scale"
    );
    let out_zp = out_quant.zero_point;

    let mut out = Tensor::zeros(a.shape());
    out.set_quant(out_quant);
    for (o, (&x, &y)) in out.data_mut().iter_mut().zip(a.data().iter().zip(b.data())) {
        let mut v = (i32::from(x) - zp_a) + (i32::from(y) - zp_b) + out_zp;
        if relu && v < out_zp {
            v = out_zp;
        }
        *o = v.clamp(-128, 127) as i8;
    }
    out
}

/// Softmax over flat features.
///
/// Weight-less and executed once per inference at the network tail, so a
/// float intermediate is acceptable here (the MCU cost model charges it a
/// fixed per-element cycle count; numerical behaviour does not affect
/// timing). Output is quantized to the conventional `1/256` scale with
/// zero point −128, giving probabilities in `[0, 255/256]`.
pub fn softmax(input: &Tensor) -> Tensor {
    let flat = input.flattened();
    let scale = flat.quant().scale;
    let zp = flat.quant().zero_point;
    let max = flat.data().iter().map(|&q| i32::from(q)).max().unwrap_or(0);
    let exps: Vec<f32> = flat
        .data()
        .iter()
        .map(|&q| (scale * (i32::from(q) - max) as f32).exp())
        .collect();
    let _ = zp; // max-subtraction makes the zero point cancel
    let sum: f32 = exps.iter().sum();
    let out_quant = QuantParams::new(1.0 / 256.0, -128);
    let mut out = Tensor::zeros(Shape::flat(flat.len()));
    out.set_quant(out_quant);
    for (o, e) in out.data_mut().iter_mut().zip(&exps) {
        let p = e / sum; // in [0, 1]
        let q = (p * 256.0).round() as i32 - 128;
        *o = q.clamp(-128, 127) as i8;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn add_layer(relu: bool) -> Layer {
        Layer::with_weights(
            "add",
            LayerKind::Add { relu },
            Vec::new(),
            Vec::new(),
            0.02,
            QuantParams::symmetric(0.1),
        )
        .expect("test layer")
    }

    fn t(values: Vec<i8>) -> Tensor {
        Tensor::from_data(
            Shape::flat(values.len()),
            values,
            QuantParams::symmetric(0.1),
        )
    }

    #[test]
    fn add_is_elementwise_with_saturation() {
        let out = add(
            &t(vec![1, 100, -100]),
            &t(vec![2, 100, -100]),
            &add_layer(false),
        );
        assert_eq!(out.data(), &[3, 127, -128]);
    }

    #[test]
    fn add_with_relu_clamps_below_zero_point() {
        let out = add(&t(vec![-5, 5]), &t(vec![-5, 5]), &add_layer(true));
        assert_eq!(out.data(), &[0, 10]);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn add_rejects_shape_mismatch() {
        let _ = add(&t(vec![1, 2]), &t(vec![1, 2, 3]), &add_layer(false));
    }

    #[test]
    #[should_panic(expected = "equal operand scales")]
    fn add_rejects_scale_mismatch() {
        let a = t(vec![1]);
        let mut b = t(vec![1]);
        b.set_quant(QuantParams::symmetric(0.2));
        let _ = add(&a, &b, &add_layer(false));
    }

    #[test]
    fn softmax_sums_to_one_and_orders() {
        let out = softmax(&t(vec![10, 20, 30, -10]));
        // Probabilities: q + 128 over 256.
        let probs: Vec<i32> = out.data().iter().map(|&q| i32::from(q) + 128).collect();
        let total: i32 = probs.iter().sum();
        assert!((total - 256).abs() <= 2, "total={total}");
        // Largest logit gets the largest probability.
        let argmax = probs.iter().enumerate().max_by_key(|(_, &p)| p).unwrap().0;
        assert_eq!(argmax, 2);
    }

    #[test]
    fn softmax_uniform_logits_give_uniform_probs() {
        let out = softmax(&t(vec![7, 7, 7, 7]));
        let probs: Vec<i32> = out.data().iter().map(|&q| i32::from(q) + 128).collect();
        for p in &probs {
            assert_eq!(*p, 64);
        }
    }
}
