//! Integer-only operator kernels.
//!
//! Each kernel is a scalar reference implementation in the style of
//! CMSIS-NN / TFLite-Micro: `i8` operands, `i32` accumulation, fixed-point
//! requantization (see [`crate::requantize`]). They are deliberately
//! straightforward nested loops — clarity and testability over host-side
//! speed — because on the simulated MCU, *time* comes from the cost model,
//! not from host execution.

mod conv;
mod dense;
mod eltwise;
mod pool;

pub use conv::{conv2d, depthwise_conv2d};
pub use dense::dense;
pub use eltwise::{add, softmax};
pub use pool::{avg_pool2d, global_avg_pool, max_pool2d};
