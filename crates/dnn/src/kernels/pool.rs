//! Pooling kernels.

use crate::layer::{LayerKind, Padding};
use crate::tensor::{Shape, Tensor};

/// Average pooling (valid padding), rounding to nearest.
///
/// Quantization parameters pass through unchanged — averaging is
/// scale-preserving.
///
/// # Panics
///
/// Panics if the window does not fit the input at least once.
pub fn avg_pool2d(input: &Tensor, kernel: (usize, usize), stride: (usize, usize)) -> Tensor {
    let in_shape = input.shape();
    let kind = LayerKind::AvgPool2d { kernel, stride };
    let out_shape = kind.out_shape(in_shape).expect("avg_pool window too large");
    let mut out = Tensor::zeros(out_shape);
    out.set_quant(input.quant());
    let count = (kernel.0 * kernel.1) as i32;
    for oy in 0..out_shape.h {
        for ox in 0..out_shape.w {
            for ch in 0..out_shape.c {
                let mut acc: i32 = 0;
                for ky in 0..kernel.0 {
                    for kx in 0..kernel.1 {
                        acc += i32::from(input.get(oy * stride.0 + ky, ox * stride.1 + kx, ch));
                    }
                }
                // Round to nearest, ties away from zero.
                let avg = if acc >= 0 {
                    (acc + count / 2) / count
                } else {
                    (acc - count / 2) / count
                };
                out.set(oy, ox, ch, avg.clamp(-128, 127) as i8);
            }
        }
    }
    out
}

/// Max pooling (valid padding). Quantization passes through.
///
/// # Panics
///
/// Panics if the window does not fit the input at least once.
pub fn max_pool2d(input: &Tensor, kernel: (usize, usize), stride: (usize, usize)) -> Tensor {
    let in_shape = input.shape();
    let kind = LayerKind::MaxPool2d { kernel, stride };
    let out_shape = kind.out_shape(in_shape).expect("max_pool window too large");
    let mut out = Tensor::zeros(out_shape);
    out.set_quant(input.quant());
    for oy in 0..out_shape.h {
        for ox in 0..out_shape.w {
            for ch in 0..out_shape.c {
                let mut best = i8::MIN;
                for ky in 0..kernel.0 {
                    for kx in 0..kernel.1 {
                        best = best.max(input.get(oy * stride.0 + ky, ox * stride.1 + kx, ch));
                    }
                }
                out.set(oy, ox, ch, best);
            }
        }
    }
    out
}

/// Global average pooling: HWC → 1×1×C, rounding to nearest.
pub fn global_avg_pool(input: &Tensor) -> Tensor {
    let in_shape = input.shape();
    let mut out = Tensor::zeros(Shape::new(1, 1, in_shape.c));
    out.set_quant(input.quant());
    let count = (in_shape.h * in_shape.w) as i32;
    for ch in 0..in_shape.c {
        let mut acc: i32 = 0;
        for y in 0..in_shape.h {
            for x in 0..in_shape.w {
                acc += i32::from(input.get(y, x, ch));
            }
        }
        let avg = if acc >= 0 {
            (acc + count / 2) / count
        } else {
            (acc - count / 2) / count
        };
        out.set(0, 0, ch, avg.clamp(-128, 127) as i8);
    }
    out
}

#[allow(dead_code)]
fn _padding_is_always_valid_for_pools(p: Padding) -> Padding {
    p
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quantize::QuantParams;

    fn grid() -> Tensor {
        // 4×4×1 with values 0..16.
        let data: Vec<i8> = (0..16).collect();
        Tensor::from_data(Shape::new(4, 4, 1), data, QuantParams::symmetric(0.1))
    }

    #[test]
    fn avg_pool_2x2() {
        let out = avg_pool2d(&grid(), (2, 2), (2, 2));
        assert_eq!(out.shape(), Shape::new(2, 2, 1));
        // Top-left window {0,1,4,5} → mean 2.5 → 3 (ties away from zero).
        assert_eq!(out.get(0, 0, 0), 3);
        // Bottom-right window {10,11,14,15} → 12.5 → 13.
        assert_eq!(out.get(1, 1, 0), 13);
    }

    #[test]
    fn avg_pool_negative_rounding() {
        let data = vec![-1i8, -2, -3, -4];
        let t = Tensor::from_data(Shape::new(2, 2, 1), data, QuantParams::default());
        let out = avg_pool2d(&t, (2, 2), (2, 2));
        // mean -2.5 → -3 (away from zero).
        assert_eq!(out.get(0, 0, 0), -3);
    }

    #[test]
    fn max_pool_2x2() {
        let out = max_pool2d(&grid(), (2, 2), (2, 2));
        assert_eq!(out.get(0, 0, 0), 5);
        assert_eq!(out.get(1, 1, 0), 15);
    }

    #[test]
    fn global_avg_pool_per_channel() {
        let mut t = Tensor::zeros(Shape::new(2, 2, 2));
        for y in 0..2 {
            for x in 0..2 {
                t.set(y, x, 0, 8);
                t.set(y, x, 1, -8);
            }
        }
        let out = global_avg_pool(&t);
        assert_eq!(out.shape(), Shape::new(1, 1, 2));
        assert_eq!(out.get(0, 0, 0), 8);
        assert_eq!(out.get(0, 0, 1), -8);
    }

    #[test]
    fn pooling_preserves_quant_params() {
        let q = QuantParams::new(0.25, 3);
        let mut t = Tensor::zeros(Shape::new(2, 2, 1));
        t.set_quant(q);
        assert_eq!(avg_pool2d(&t, (2, 2), (2, 2)).quant(), q);
        assert_eq!(max_pool2d(&t, (2, 2), (2, 2)).quant(), q);
        assert_eq!(global_avg_pool(&t).quant(), q);
    }

    #[test]
    fn overlapping_stride_one_pooling() {
        let out = max_pool2d(&grid(), (2, 2), (1, 1));
        assert_eq!(out.shape(), Shape::new(3, 3, 1));
        assert_eq!(out.get(0, 0, 0), 5);
        assert_eq!(out.get(2, 2, 0), 15);
    }
}
