//! Fully-connected kernel.

use crate::layer::{Layer, LayerKind};
use crate::quantize::{derive_requant, requantize};
use crate::tensor::Tensor;

/// Computes a fully-connected layer over flat features.
///
/// Weight layout: `[out_features][in_features]`, bias `[out_features]`.
/// Spatial inputs are consumed in HWC linearisation order (the implicit
/// flatten every deployment runtime performs).
///
/// # Panics
///
/// Panics if `layer.kind` is not [`LayerKind::Dense`] or the input length
/// does not match `in_features`.
pub fn dense(input: &Tensor, layer: &Layer) -> Tensor {
    let LayerKind::Dense {
        in_features,
        out_features,
        relu,
    } = layer.kind
    else {
        panic!("dense called with {:?}", layer.kind.mnemonic());
    };
    assert_eq!(input.len(), in_features, "dense input length mismatch");
    let out_shape = layer
        .kind
        .out_shape(input.shape())
        .expect("dense input shape mismatch");
    let (mult, shift) = derive_requant(
        input.quant().scale,
        layer.weight_scale,
        layer.out_quant.scale,
    );
    let in_zp = input.quant().zero_point;
    let out_zp = layer.out_quant.zero_point;

    let mut out = Tensor::zeros(out_shape);
    out.set_quant(layer.out_quant);
    let data = input.data();
    for o in 0..out_features {
        let row = &layer.weights[o * in_features..(o + 1) * in_features];
        let mut acc: i32 = layer.bias[o];
        for (x, w) in data.iter().zip(row) {
            acc += (i32::from(*x) - in_zp) * i32::from(*w);
        }
        let mut q = requantize(acc, mult, shift, out_zp);
        if relu && i32::from(q) < out_zp {
            q = out_zp as i8;
        }
        out.data_mut()[o] = q;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quantize::QuantParams;
    use crate::tensor::Shape;

    fn layer(weights: Vec<i8>, bias: Vec<i32>, in_f: usize, out_f: usize, relu: bool) -> Layer {
        Layer::with_weights(
            "fc",
            LayerKind::Dense {
                in_features: in_f,
                out_features: out_f,
                relu,
            },
            weights,
            bias,
            0.02,
            QuantParams::symmetric(0.1),
        )
        .expect("test layer")
    }

    fn input(values: Vec<i8>) -> Tensor {
        let mut t = Tensor::from_data(
            Shape::flat(values.len()),
            values,
            QuantParams::symmetric(0.1),
        );
        t.set_quant(QuantParams::symmetric(0.1));
        t
    }

    #[test]
    fn identity_row_passes_value_through() {
        // One output, weight 50 on feature 0 only: out = x0.
        let l = layer(vec![50, 0, 0], vec![0], 3, 1, false);
        let out = dense(&input(vec![23, 99, -4]), &l);
        assert_eq!(out.data(), &[23]);
    }

    #[test]
    fn rows_are_independent() {
        let l = layer(vec![50, 0, 0, 50], vec![0, 0], 2, 2, false);
        let out = dense(&input(vec![7, -8]), &l);
        assert_eq!(out.data(), &[7, -8]);
    }

    #[test]
    fn bias_and_relu() {
        let l = layer(vec![0, 0, 0, 0], vec![-500, 500], 2, 2, true);
        let out = dense(&input(vec![1, 1]), &l);
        // -500*0.02 = -10 → relu → 0 ; 500*0.02 = 10.
        assert_eq!(out.data(), &[0, 10]);
    }

    #[test]
    fn accumulation_sums_features() {
        // All weights 50 (real 1.0): out = Σ x.
        let l = layer(vec![50; 4], vec![0], 4, 1, false);
        let out = dense(&input(vec![10, 20, 30, -15]), &l);
        assert_eq!(out.data(), &[45]);
    }

    #[test]
    fn spatial_input_is_flattened_in_hwc_order() {
        let l = layer(vec![50, 0, 0, 0], vec![0], 4, 1, false);
        let mut t = Tensor::zeros(Shape::new(2, 2, 1));
        t.set_quant(QuantParams::symmetric(0.1));
        t.set(0, 0, 0, 33); // first element in HWC order
        let out = dense(&t, &l);
        assert_eq!(out.data(), &[33]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn wrong_input_length_panics() {
        let l = layer(vec![0; 4], vec![0], 4, 1, false);
        let _ = dense(&input(vec![1, 2]), &l);
    }
}
