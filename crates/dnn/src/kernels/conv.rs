//! Standard and depthwise 2-D convolution kernels.

use crate::layer::{Layer, LayerKind, Padding};
use crate::quantize::{derive_requant, requantize};
use crate::tensor::{Shape, Tensor};

/// Computes a standard 2-D convolution.
///
/// Weight layout: `[out_c][kh][kw][in_c]`, bias `[out_c]`.
/// Padding contributes the input zero point (i.e. real zero).
///
/// # Panics
///
/// Panics if `layer.kind` is not [`LayerKind::Conv2d`] or the input shape
/// is incompatible (the graph validates shapes before dispatch).
pub fn conv2d(input: &Tensor, layer: &Layer) -> Tensor {
    let LayerKind::Conv2d {
        in_c,
        out_c,
        kernel,
        stride,
        padding,
        relu,
    } = layer.kind
    else {
        panic!("conv2d called with {:?}", layer.kind.mnemonic());
    };
    let in_shape = input.shape();
    let out_shape = layer
        .kind
        .out_shape(in_shape)
        .expect("conv2d input shape mismatch");
    let (mult, shift) = derive_requant(
        input.quant().scale,
        layer.weight_scale,
        layer.out_quant.scale,
    );
    let in_zp = input.quant().zero_point;
    let out_zp = layer.out_quant.zero_point;
    let pad_top = padding.total_pad(in_shape.h, kernel.0, stride.0) / 2;
    let pad_left = padding.total_pad(in_shape.w, kernel.1, stride.1) / 2;

    let mut out = Tensor::zeros(out_shape);
    out.set_quant(layer.out_quant);
    for oy in 0..out_shape.h {
        for ox in 0..out_shape.w {
            for oc in 0..out_c {
                let mut acc: i32 = layer.bias[oc];
                for ky in 0..kernel.0 {
                    let iy = (oy * stride.0 + ky) as isize - pad_top as isize;
                    if iy < 0 || iy as usize >= in_shape.h {
                        continue; // zero padding adds (zp - zp) = 0
                    }
                    for kx in 0..kernel.1 {
                        let ix = (ox * stride.1 + kx) as isize - pad_left as isize;
                        if ix < 0 || ix as usize >= in_shape.w {
                            continue;
                        }
                        let wbase = ((oc * kernel.0 + ky) * kernel.1 + kx) * in_c;
                        for ic in 0..in_c {
                            let x = i32::from(input.get(iy as usize, ix as usize, ic)) - in_zp;
                            let w = i32::from(layer.weights[wbase + ic]);
                            acc += x * w;
                        }
                    }
                }
                let mut q = requantize(acc, mult, shift, out_zp);
                if relu && i32::from(q) < out_zp {
                    q = out_zp as i8;
                }
                out.set(oy, ox, oc, q);
            }
        }
    }
    out
}

/// Computes a depthwise 2-D convolution (channel multiplier 1).
///
/// Weight layout: `[c][kh][kw]`, bias `[c]`.
///
/// # Panics
///
/// Panics if `layer.kind` is not [`LayerKind::DepthwiseConv2d`] or the
/// input shape is incompatible.
pub fn depthwise_conv2d(input: &Tensor, layer: &Layer) -> Tensor {
    let LayerKind::DepthwiseConv2d {
        channels,
        kernel,
        stride,
        padding,
        relu,
    } = layer.kind
    else {
        panic!("depthwise_conv2d called with {:?}", layer.kind.mnemonic());
    };
    let in_shape = input.shape();
    let out_shape = layer
        .kind
        .out_shape(in_shape)
        .expect("depthwise input shape mismatch");
    let (mult, shift) = derive_requant(
        input.quant().scale,
        layer.weight_scale,
        layer.out_quant.scale,
    );
    let in_zp = input.quant().zero_point;
    let out_zp = layer.out_quant.zero_point;
    let pad_top = padding.total_pad(in_shape.h, kernel.0, stride.0) / 2;
    let pad_left = padding.total_pad(in_shape.w, kernel.1, stride.1) / 2;

    let mut out = Tensor::zeros(out_shape);
    out.set_quant(layer.out_quant);
    for oy in 0..out_shape.h {
        for ox in 0..out_shape.w {
            for ch in 0..channels {
                let mut acc: i32 = layer.bias[ch];
                for ky in 0..kernel.0 {
                    let iy = (oy * stride.0 + ky) as isize - pad_top as isize;
                    if iy < 0 || iy as usize >= in_shape.h {
                        continue;
                    }
                    for kx in 0..kernel.1 {
                        let ix = (ox * stride.1 + kx) as isize - pad_left as isize;
                        if ix < 0 || ix as usize >= in_shape.w {
                            continue;
                        }
                        let x = i32::from(input.get(iy as usize, ix as usize, ch)) - in_zp;
                        let w = i32::from(layer.weights[(ch * kernel.0 + ky) * kernel.1 + kx]);
                        acc += x * w;
                    }
                }
                let mut q = requantize(acc, mult, shift, out_zp);
                if relu && i32::from(q) < out_zp {
                    q = out_zp as i8;
                }
                out.set(oy, ox, ch, q);
            }
        }
    }
    out
}

/// Constructs a conv layer with all-zero weights and the given biases —
/// test helper shared by this module's tests.
#[cfg(test)]
pub(crate) fn conv_layer_with(kind: LayerKind, weights: Vec<i8>, bias: Vec<i32>) -> Layer {
    use crate::quantize::QuantParams;
    Layer::with_weights("t", kind, weights, bias, 0.02, QuantParams::symmetric(0.1))
        .expect("test layer")
}

#[allow(dead_code)]
fn _suppress_unused_import_warning(p: Padding, s: Shape) -> usize {
    p.out_extent(s.h, 1, 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quantize::QuantParams;

    /// A 1×1 conv with a single unit-ish weight acts as a scaled identity.
    #[test]
    fn one_by_one_conv_identity() {
        let kind = LayerKind::Conv2d {
            in_c: 1,
            out_c: 1,
            kernel: (1, 1),
            stride: (1, 1),
            padding: Padding::Valid,
            relu: false,
        };
        // weight = 50 (real 1.0 at scale 0.02); in scale 0.1 → multiplier
        // 0.1*0.02/0.1 = 0.02; acc = x*50; out = x*50*0.02 = x.
        let layer = conv_layer_with(kind, vec![50], vec![0]);
        let mut input = Tensor::zeros(Shape::new(2, 2, 1));
        input.set_quant(QuantParams::symmetric(0.1));
        input.set(0, 0, 0, 17);
        input.set(1, 1, 0, -9);
        let out = conv2d(&input, &layer);
        assert_eq!(out.get(0, 0, 0), 17);
        assert_eq!(out.get(1, 1, 0), -9);
        assert_eq!(out.get(0, 1, 0), 0);
    }

    #[test]
    fn zero_weights_yield_bias_only() {
        let kind = LayerKind::Conv2d {
            in_c: 2,
            out_c: 1,
            kernel: (3, 3),
            stride: (1, 1),
            padding: Padding::Same,
            relu: false,
        };
        // bias 500 → 500 * 0.02 = 10.
        let layer = conv_layer_with(kind, vec![0; 18], vec![500]);
        let input = Tensor::filled_pattern(Shape::new(4, 4, 2), 3);
        let mut input = input;
        input.set_quant(QuantParams::symmetric(0.1));
        let out = conv2d(&input, &layer);
        assert!(out.data().iter().all(|&v| v == 10));
    }

    #[test]
    fn relu_clamps_negative_outputs() {
        let kind = LayerKind::Conv2d {
            in_c: 1,
            out_c: 1,
            kernel: (1, 1),
            stride: (1, 1),
            padding: Padding::Valid,
            relu: true,
        };
        let layer = conv_layer_with(kind, vec![50], vec![0]);
        let mut input = Tensor::zeros(Shape::new(1, 1, 1));
        input.set_quant(QuantParams::symmetric(0.1));
        input.set(0, 0, 0, -20);
        let out = conv2d(&input, &layer);
        assert_eq!(out.get(0, 0, 0), 0);
    }

    #[test]
    fn same_padding_preserves_extent_and_pads_with_zero() {
        let kind = LayerKind::Conv2d {
            in_c: 1,
            out_c: 1,
            kernel: (3, 3),
            stride: (1, 1),
            padding: Padding::Same,
            relu: false,
        };
        // Sum filter: all weights 50 (real 1.0).
        let layer = conv_layer_with(kind, vec![50; 9], vec![0]);
        let mut input = Tensor::zeros(Shape::new(3, 3, 1));
        input.set_quant(QuantParams::symmetric(0.1));
        for y in 0..3 {
            for x in 0..3 {
                input.set(y, x, 0, 10);
            }
        }
        let out = conv2d(&input, &layer);
        assert_eq!(out.shape(), Shape::new(3, 3, 1));
        // Centre sees 9 contributions of 10, corners only 4.
        assert_eq!(out.get(1, 1, 0), 90);
        assert_eq!(out.get(0, 0, 0), 40);
    }

    #[test]
    fn stride_two_downsamples() {
        let kind = LayerKind::Conv2d {
            in_c: 1,
            out_c: 1,
            kernel: (1, 1),
            stride: (2, 2),
            padding: Padding::Valid,
            relu: false,
        };
        let layer = conv_layer_with(kind, vec![50], vec![0]);
        let mut input = Tensor::zeros(Shape::new(4, 4, 1));
        input.set_quant(QuantParams::symmetric(0.1));
        input.set(0, 0, 0, 1);
        input.set(0, 2, 0, 2);
        input.set(2, 0, 0, 3);
        input.set(2, 2, 0, 4);
        let out = conv2d(&input, &layer);
        assert_eq!(out.shape(), Shape::new(2, 2, 1));
        assert_eq!(
            (
                out.get(0, 0, 0),
                out.get(0, 1, 0),
                out.get(1, 0, 0),
                out.get(1, 1, 0)
            ),
            (1, 2, 3, 4)
        );
    }

    #[test]
    fn depthwise_processes_channels_independently() {
        let kind = LayerKind::DepthwiseConv2d {
            channels: 2,
            kernel: (1, 1),
            stride: (1, 1),
            padding: Padding::Valid,
            relu: false,
        };
        // Channel 0 weight 50 (×1), channel 1 weight 100 (×2).
        let layer = conv_layer_with(kind, vec![50, 100], vec![0, 0]);
        let mut input = Tensor::zeros(Shape::new(1, 1, 2));
        input.set_quant(QuantParams::symmetric(0.1));
        input.set(0, 0, 0, 5);
        input.set(0, 0, 1, 5);
        let out = depthwise_conv2d(&input, &layer);
        assert_eq!(out.get(0, 0, 0), 5);
        assert_eq!(out.get(0, 0, 1), 10);
    }

    #[test]
    fn nonzero_input_zero_point_is_subtracted() {
        let kind = LayerKind::Conv2d {
            in_c: 1,
            out_c: 1,
            kernel: (1, 1),
            stride: (1, 1),
            padding: Padding::Valid,
            relu: false,
        };
        let layer = conv_layer_with(kind, vec![50], vec![0]);
        let mut input = Tensor::zeros(Shape::new(1, 1, 1));
        input.set_quant(QuantParams::new(0.1, 10));
        input.set(0, 0, 0, 10); // real value 0
        let out = conv2d(&input, &layer);
        assert_eq!(out.get(0, 0, 0), 0);
    }
}
