//! Int8 activation tensors in HWC layout.

use serde::{Deserialize, Serialize};

use crate::quantize::QuantParams;

/// Activation-tensor shape in height × width × channels (HWC) order.
///
/// Fully-connected activations use `h = w = 1` and put the feature count
/// in `c`, which lets every layer speak one shape language.
///
/// # Examples
///
/// ```rust
/// use rtmdm_dnn::Shape;
///
/// let s = Shape::new(32, 32, 3);
/// assert_eq!(s.len(), 3072);
/// assert_eq!(Shape::flat(640), Shape::new(1, 1, 640));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Shape {
    /// Height (rows).
    pub h: usize,
    /// Width (columns).
    pub w: usize,
    /// Channels (innermost dimension).
    pub c: usize,
}

impl Shape {
    /// Creates an HWC shape.
    pub const fn new(h: usize, w: usize, c: usize) -> Self {
        Shape { h, w, c }
    }

    /// A flat (fully-connected) shape with `features` elements.
    pub const fn flat(features: usize) -> Self {
        Shape {
            h: 1,
            w: 1,
            c: features,
        }
    }

    /// Total number of elements.
    pub const fn len(&self) -> usize {
        self.h * self.w * self.c
    }

    /// Whether the shape holds no elements.
    pub const fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Linear index of `(y, x, ch)` in HWC order.
    ///
    /// # Panics
    ///
    /// Debug-asserts that the coordinates are in bounds.
    #[inline]
    pub fn index(&self, y: usize, x: usize, ch: usize) -> usize {
        debug_assert!(y < self.h && x < self.w && ch < self.c);
        (y * self.w + x) * self.c + ch
    }
}

impl std::fmt::Display for Shape {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}x{}x{}", self.h, self.w, self.c)
    }
}

/// A quantized int8 activation tensor.
///
/// Data is stored row-major in HWC order. Real value of element `q` is
/// `scale * (q - zero_point)` per the tensor's [`QuantParams`].
///
/// # Examples
///
/// ```rust
/// use rtmdm_dnn::{Shape, Tensor};
///
/// let mut t = Tensor::zeros(Shape::new(2, 2, 1));
/// t.set(1, 1, 0, 42);
/// assert_eq!(t.get(1, 1, 0), 42);
/// assert_eq!(t.len(), 4);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    shape: Shape,
    data: Vec<i8>,
    quant: QuantParams,
}

impl Tensor {
    /// Creates a zero-filled tensor with default quantization
    /// (`scale = 1.0`, `zero_point = 0`).
    pub fn zeros(shape: Shape) -> Self {
        Tensor {
            shape,
            data: vec![0; shape.len()],
            quant: QuantParams::default(),
        }
    }

    /// Creates a tensor from raw data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != shape.len()`.
    pub fn from_data(shape: Shape, data: Vec<i8>, quant: QuantParams) -> Self {
        assert_eq!(
            data.len(),
            shape.len(),
            "tensor data length {} does not match shape {shape}",
            data.len()
        );
        Tensor { shape, data, quant }
    }

    /// Fills the tensor with a deterministic pseudo-random pattern — handy
    /// for golden-output tests and benchmarks that need non-trivial input.
    pub fn filled_pattern(shape: Shape, seed: u64) -> Self {
        let mut state = seed | 1;
        let data = (0..shape.len())
            .map(|_| {
                // xorshift64*
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (state.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 56) as i8
            })
            .collect();
        Tensor {
            shape,
            data,
            quant: QuantParams::default(),
        }
    }

    /// The tensor's shape.
    pub fn shape(&self) -> Shape {
        self.shape
    }

    /// The quantization parameters.
    pub fn quant(&self) -> QuantParams {
        self.quant
    }

    /// Replaces the quantization parameters (data unchanged).
    pub fn set_quant(&mut self, quant: QuantParams) {
        self.quant = quant;
    }

    /// Raw element slice in HWC order.
    pub fn data(&self) -> &[i8] {
        &self.data
    }

    /// Mutable raw element slice.
    pub fn data_mut(&mut self) -> &mut [i8] {
        &mut self.data
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Element at `(y, x, ch)`.
    ///
    /// # Panics
    ///
    /// Panics if the coordinates are out of bounds.
    #[inline]
    pub fn get(&self, y: usize, x: usize, ch: usize) -> i8 {
        self.data[self.shape.index(y, x, ch)]
    }

    /// Writes the element at `(y, x, ch)`.
    ///
    /// # Panics
    ///
    /// Panics if the coordinates are out of bounds.
    #[inline]
    pub fn set(&mut self, y: usize, x: usize, ch: usize, value: i8) {
        let idx = self.shape.index(y, x, ch);
        self.data[idx] = value;
    }

    /// Reinterprets the tensor as flat features (`1×1×len`), preserving
    /// data and quantization. Used by `Flatten`.
    pub fn flattened(&self) -> Tensor {
        Tensor {
            shape: Shape::flat(self.data.len()),
            data: self.data.clone(),
            quant: self.quant,
        }
    }

    /// Index of the maximum element (ties break to the lowest index) —
    /// the classification result of a logits tensor.
    pub fn argmax(&self) -> Option<usize> {
        self.data
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(&a.0)))
            .map(|(i, _)| i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_indexing_is_hwc() {
        let s = Shape::new(2, 3, 4);
        assert_eq!(s.len(), 24);
        assert_eq!(s.index(0, 0, 0), 0);
        assert_eq!(s.index(0, 0, 3), 3);
        assert_eq!(s.index(0, 1, 0), 4);
        assert_eq!(s.index(1, 0, 0), 12);
        assert_eq!(s.index(1, 2, 3), 23);
    }

    #[test]
    fn tensor_get_set_round_trip() {
        let mut t = Tensor::zeros(Shape::new(3, 3, 2));
        t.set(2, 1, 1, -7);
        assert_eq!(t.get(2, 1, 1), -7);
        assert_eq!(t.get(0, 0, 0), 0);
    }

    #[test]
    #[should_panic]
    fn from_data_rejects_length_mismatch() {
        let _ = Tensor::from_data(Shape::new(2, 2, 1), vec![0; 3], QuantParams::default());
    }

    #[test]
    fn filled_pattern_is_deterministic_and_nontrivial() {
        let a = Tensor::filled_pattern(Shape::new(4, 4, 2), 7);
        let b = Tensor::filled_pattern(Shape::new(4, 4, 2), 7);
        let c = Tensor::filled_pattern(Shape::new(4, 4, 2), 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(a.data().iter().any(|&v| v != 0));
    }

    #[test]
    fn flatten_preserves_data() {
        let t = Tensor::filled_pattern(Shape::new(2, 2, 3), 1);
        let f = t.flattened();
        assert_eq!(f.shape(), Shape::flat(12));
        assert_eq!(f.data(), t.data());
    }

    #[test]
    fn argmax_breaks_ties_low() {
        let t = Tensor::from_data(Shape::flat(4), vec![3, 9, 9, 1], QuantParams::default());
        assert_eq!(t.argmax(), Some(1));
        let empty = Tensor::zeros(Shape::flat(0));
        assert_eq!(empty.argmax(), None);
    }

    #[test]
    fn display_shape() {
        assert_eq!(Shape::new(49, 10, 1).to_string(), "49x10x1");
    }
}
