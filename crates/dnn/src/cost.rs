//! Per-layer execution-cost model.
//!
//! The scheduler does not execute kernels on the host clock; it consumes
//! *modelled* CPU cycles. The cost model mirrors the structure of
//! CMSIS-NN-style deployment kernels: a cycles-per-MAC rate per operator
//! family (standard convolutions reuse data well, depthwise convolutions
//! poorly, dense layers are memory-bound), a per-element charge for
//! weight-less operators, and a fixed per-layer dispatch overhead.
//! Rates are parts-per-million so all arithmetic stays integral.

use serde::{Deserialize, Serialize};

use rtmdm_mcusim::Cycles;

use crate::graph::Model;
use crate::layer::LayerKind;
use crate::tensor::Shape;

/// Cycles-per-operation rates characterising a CPU + kernel library pair.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CostModel {
    /// Label for reports.
    pub name: String,
    /// Cycles per MAC for standard convolutions (ppm).
    pub conv_cycles_per_mac_ppm: u64,
    /// Cycles per MAC for depthwise convolutions (ppm) — worse data
    /// reuse, so higher than `conv`.
    pub dwconv_cycles_per_mac_ppm: u64,
    /// Cycles per MAC for dense layers (ppm) — streaming weights, memory
    /// bound.
    pub dense_cycles_per_mac_ppm: u64,
    /// Cycles per visited window element for pooling (ppm).
    pub pool_cycles_per_elem_ppm: u64,
    /// Cycles per element for element-wise ops and flatten copies (ppm).
    pub eltwise_cycles_per_elem_ppm: u64,
    /// Cycles per element for softmax (exp lookup + divide).
    pub softmax_cycles_per_elem: u64,
    /// Fixed dispatch overhead charged to every layer.
    pub layer_overhead_cycles: u64,
}

impl CostModel {
    /// Cortex-M7-class core running CMSIS-NN-like int8 kernels
    /// (dual-issue, hardware MAC): ≈1.3 cycles/MAC for convolutions.
    pub fn cmsis_nn_m7() -> Self {
        CostModel {
            name: "cmsis-nn-m7".to_owned(),
            conv_cycles_per_mac_ppm: 1_300_000,
            dwconv_cycles_per_mac_ppm: 2_400_000,
            dense_cycles_per_mac_ppm: 1_700_000,
            pool_cycles_per_elem_ppm: 900_000,
            eltwise_cycles_per_elem_ppm: 700_000,
            softmax_cycles_per_elem: 40,
            layer_overhead_cycles: 1_500,
        }
    }

    /// Cortex-M4-class core: single-issue, slower MAC pipeline.
    pub fn cmsis_nn_m4() -> Self {
        CostModel {
            name: "cmsis-nn-m4".to_owned(),
            conv_cycles_per_mac_ppm: 2_100_000,
            dwconv_cycles_per_mac_ppm: 3_600_000,
            dense_cycles_per_mac_ppm: 2_600_000,
            pool_cycles_per_elem_ppm: 1_400_000,
            eltwise_cycles_per_elem_ppm: 1_100_000,
            softmax_cycles_per_elem: 60,
            layer_overhead_cycles: 2_000,
        }
    }

    /// Compute cycles for one layer on the given input shape.
    ///
    /// Weight-less operators are charged per element; weighted operators
    /// per MAC. Every layer pays the fixed dispatch overhead.
    pub fn layer_cycles(&self, kind: &LayerKind, input: Shape) -> Cycles {
        let out = kind.out_shape(input);
        let variable: u64 = match *kind {
            LayerKind::Conv2d { .. } => mul_ppm(kind.macs(input), self.conv_cycles_per_mac_ppm),
            LayerKind::DepthwiseConv2d { .. } => {
                mul_ppm(kind.macs(input), self.dwconv_cycles_per_mac_ppm)
            }
            LayerKind::Dense { .. } => mul_ppm(kind.macs(input), self.dense_cycles_per_mac_ppm),
            LayerKind::AvgPool2d { kernel, .. } | LayerKind::MaxPool2d { kernel, .. } => {
                let visited = out.map_or(0, |o| o.len() as u64) * (kernel.0 * kernel.1) as u64;
                mul_ppm(visited, self.pool_cycles_per_elem_ppm)
            }
            LayerKind::GlobalAvgPool => mul_ppm(input.len() as u64, self.pool_cycles_per_elem_ppm),
            LayerKind::Add { .. } | LayerKind::Flatten => {
                mul_ppm(input.len() as u64, self.eltwise_cycles_per_elem_ppm)
            }
            LayerKind::Softmax => input.len() as u64 * self.softmax_cycles_per_elem,
        };
        Cycles::new(self.layer_overhead_cycles + variable)
    }

    /// Per-layer and aggregate costs of a whole model.
    pub fn model_cost(&self, model: &Model) -> ModelCost {
        let mut layers = Vec::with_capacity(model.len());
        for node in model.nodes() {
            let input = match node.inputs[0] {
                crate::graph::NodeInput::ModelInput => model.input_shape(),
                crate::graph::NodeInput::Node(id) => model.nodes()[id.0].out_shape,
            };
            layers.push(LayerCost {
                name: node.layer.name.clone(),
                compute: self.layer_cycles(&node.layer.kind, input),
                weight_bytes: node.layer.weight_bytes(),
                macs: node.layer.kind.macs(input),
            });
        }
        let total_compute = layers.iter().map(|l| l.compute).sum();
        let total_weight_bytes = layers.iter().map(|l| l.weight_bytes).sum();
        let total_macs = layers.iter().map(|l| l.macs).sum();
        ModelCost {
            model: model.name().to_owned(),
            layers,
            total_compute,
            total_weight_bytes,
            total_macs,
        }
    }
}

#[inline]
fn mul_ppm(count: u64, rate_ppm: u64) -> u64 {
    let wide = u128::from(count) * u128::from(rate_ppm);
    u64::try_from(wide.div_ceil(1_000_000)).expect("cost overflow")
}

/// Cost of a single layer.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LayerCost {
    /// Layer name within its model.
    pub name: String,
    /// Modelled CPU cycles (uninflated; bus contention applies on top).
    pub compute: Cycles,
    /// Parameter bytes staged from external memory.
    pub weight_bytes: u64,
    /// Multiply-accumulate count.
    pub macs: u64,
}

/// Aggregate cost of a model.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ModelCost {
    /// Model name.
    pub model: String,
    /// Per-layer breakdown in execution order.
    pub layers: Vec<LayerCost>,
    /// Sum of layer compute cycles.
    pub total_compute: Cycles,
    /// Sum of layer weight bytes.
    pub total_weight_bytes: u64,
    /// Sum of layer MACs.
    pub total_macs: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ModelBuilder;
    use crate::layer::Padding;

    #[test]
    fn conv_cost_scales_with_macs() {
        let m = CostModel::cmsis_nn_m7();
        let kind = LayerKind::Conv2d {
            in_c: 3,
            out_c: 8,
            kernel: (3, 3),
            stride: (1, 1),
            padding: Padding::Same,
            relu: true,
        };
        let input = Shape::new(16, 16, 3);
        let macs = kind.macs(input);
        let cycles = m.layer_cycles(&kind, input);
        // 1.3 cycles/MAC + overhead, within rounding.
        let expected = macs * 13 / 10 + m.layer_overhead_cycles;
        assert!(
            cycles.get().abs_diff(expected) <= 2,
            "{cycles} vs {expected}"
        );
    }

    #[test]
    fn depthwise_rate_exceeds_standard_conv_rate() {
        let m = CostModel::cmsis_nn_m7();
        // Same MAC count: conv with in_c=1,out_c=9 vs depthwise with 9 ch.
        let input_conv = Shape::new(8, 8, 1);
        let conv = LayerKind::Conv2d {
            in_c: 1,
            out_c: 9,
            kernel: (3, 3),
            stride: (1, 1),
            padding: Padding::Same,
            relu: false,
        };
        let input_dw = Shape::new(8, 8, 9);
        let dw = LayerKind::DepthwiseConv2d {
            channels: 9,
            kernel: (3, 3),
            stride: (1, 1),
            padding: Padding::Same,
            relu: false,
        };
        assert_eq!(conv.macs(input_conv), dw.macs(input_dw));
        assert!(m.layer_cycles(&dw, input_dw) > m.layer_cycles(&conv, input_conv));
    }

    #[test]
    fn weightless_layers_cost_per_element() {
        let m = CostModel::cmsis_nn_m7();
        let gap = m.layer_cycles(&LayerKind::GlobalAvgPool, Shape::new(10, 10, 4));
        // 400 elements * 0.9 + 1500 overhead.
        assert_eq!(gap.get(), 1500 + 360);
        let sm = m.layer_cycles(&LayerKind::Softmax, Shape::flat(10));
        assert_eq!(sm.get(), 1500 + 400);
    }

    #[test]
    fn m4_is_slower_than_m7_everywhere() {
        let m7 = CostModel::cmsis_nn_m7();
        let m4 = CostModel::cmsis_nn_m4();
        let kind = LayerKind::Dense {
            in_features: 256,
            out_features: 64,
            relu: true,
        };
        assert!(
            m4.layer_cycles(&kind, Shape::flat(256)) > m7.layer_cycles(&kind, Shape::flat(256))
        );
    }

    #[test]
    fn model_cost_aggregates_layers() {
        let model = ModelBuilder::new("agg", Shape::new(8, 8, 1))
            .conv2d(4, (3, 3), (1, 1), Padding::Same, true)
            .global_avg_pool()
            .dense(2, false)
            .build();
        let cost = CostModel::cmsis_nn_m7().model_cost(&model);
        assert_eq!(cost.layers.len(), 3);
        assert_eq!(
            cost.total_compute,
            cost.layers.iter().map(|l| l.compute).sum()
        );
        assert_eq!(cost.total_weight_bytes, model.total_weight_bytes());
        assert_eq!(cost.total_macs, model.total_macs());
        assert!(cost.layers.iter().all(|l| l.compute > Cycles::ZERO));
    }
}
