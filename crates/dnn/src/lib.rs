//! # rtmdm-dnn — int8 quantized DNN engine, model zoo, and cost model
//!
//! The multi-DNN workloads of the RT-MDM reproduction need actual neural
//! networks: their layer topology determines weight-block sizes (what the
//! DMA must stage from external memory) and MAC counts (what the CPU must
//! compute). This crate provides, from scratch:
//!
//! - an **int8 tensor** type with TFLite-style per-tensor quantization
//!   ([`Tensor`], [`QuantParams`]),
//! - **layers and kernels**: 2-D convolution, depthwise convolution,
//!   dense, average/max pooling, global average pooling, residual add,
//!   softmax — all integer-only with fixed-point requantization,
//! - a **model graph** ([`Model`]) supporting sequential chains plus
//!   residual skip connections, built with [`ModelBuilder`],
//! - a **model zoo** ([`zoo`]) of architecturally faithful TinyML
//!   workloads (DS-CNN keyword spotting, ResNet-8, MobileNetV1-0.25
//!   visual wake word, dense autoencoder, LeNet-5, a micro MLP) with
//!   deterministic synthetic weights,
//! - a **cost model** ([`CostModel`]) translating layers into CPU cycles
//!   and weight bytes for the scheduler.
//!
//! ## Example
//!
//! ```rust
//! use rtmdm_dnn::{zoo, CostModel, Tensor};
//!
//! # fn main() -> Result<(), rtmdm_dnn::InferError> {
//! let model = zoo::ds_cnn();
//! let input = Tensor::zeros(model.input_shape());
//! let out = model.infer(&input)?;
//! assert_eq!(out.len(), 12); // 12 keyword classes
//!
//! let cost = CostModel::cmsis_nn_m7();
//! let total = cost.model_cost(&model);
//! assert!(total.total_macs > 1_000_000);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod builder;
mod cost;
mod graph;
pub mod kernels;
mod layer;
mod quantize;
mod tensor;
pub mod zoo;

pub use builder::ModelBuilder;
pub use cost::{CostModel, LayerCost, ModelCost};
pub use graph::{InferError, Model, Node, NodeId, NodeInput};
pub use layer::{BuildLayerError, Layer, LayerKind, Padding};
pub use quantize::{dequantize, quantize_multiplier, quantize_value, requantize, QuantParams};
pub use tensor::{Shape, Tensor};
