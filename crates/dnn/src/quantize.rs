//! TFLite-style per-tensor quantization arithmetic.
//!
//! Accumulators are `i32`; re-scaling back to `i8` uses the standard
//! fixed-point scheme: a Q31 multiplier plus a right shift, with
//! round-to-nearest and saturation. All inference math is integer-only;
//! floating point appears only when *deriving* multipliers from scales at
//! model-construction time, exactly as an MCU deployment would do offline.

use serde::{Deserialize, Serialize};

/// Per-tensor quantization parameters: `real = scale * (q - zero_point)`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QuantParams {
    /// Real-value step per quantized unit.
    pub scale: f32,
    /// Quantized value representing real zero.
    pub zero_point: i32,
}

impl QuantParams {
    /// Creates parameters from a scale and zero point.
    ///
    /// # Panics
    ///
    /// Panics if `scale` is not finite and positive.
    pub fn new(scale: f32, zero_point: i32) -> Self {
        assert!(
            scale.is_finite() && scale > 0.0,
            "quantization scale must be finite and positive"
        );
        QuantParams { scale, zero_point }
    }

    /// Symmetric parameters (zero point 0).
    pub fn symmetric(scale: f32) -> Self {
        QuantParams::new(scale, 0)
    }
}

impl Default for QuantParams {
    /// `scale = 1.0`, `zero_point = 0`.
    fn default() -> Self {
        QuantParams {
            scale: 1.0,
            zero_point: 0,
        }
    }
}

/// Quantizes a real value to `i8` under `params`, with saturation.
pub fn quantize_value(real: f32, params: QuantParams) -> i8 {
    let q = (real / params.scale).round() as i64 + i64::from(params.zero_point);
    q.clamp(i64::from(i8::MIN), i64::from(i8::MAX)) as i8
}

/// Recovers the real value of a quantized element.
pub fn dequantize(q: i8, params: QuantParams) -> f32 {
    params.scale * (i32::from(q) - params.zero_point) as f32
}

/// Decomposes a positive real multiplier `m < 1` (typically
/// `in_scale * weight_scale / out_scale`) into `(quantized_multiplier,
/// right_shift)` such that `m ≈ quantized_multiplier * 2^(-31 - right_shift)`.
///
/// This is the offline half of TFLite's `QuantizeMultiplierSmallerThanOne`.
///
/// # Panics
///
/// Panics if `m` is not in `(0, 1)`.
///
/// # Examples
///
/// ```rust
/// use rtmdm_dnn::{quantize_multiplier, requantize};
///
/// let (q, shift) = quantize_multiplier(0.5);
/// // 1000 * 0.5 = 500
/// assert_eq!(requantize(1000, q, shift, 0), 127); // saturates to i8
/// assert_eq!(requantize(100, q, shift, 0), 50);
/// ```
pub fn quantize_multiplier(m: f64) -> (i32, i32) {
    assert!(m > 0.0 && m < 1.0, "multiplier must be in (0, 1), got {m}");
    let mut shift = 0i32;
    let mut frac = m;
    while frac < 0.5 {
        frac *= 2.0;
        shift += 1;
    }
    let q = (frac * f64::from(1u32 << 31)).round() as i64;
    let q = if q == 1i64 << 31 {
        // Rounding overflow: halve and reduce shift.
        shift -= 1;
        1i64 << 30
    } else {
        q
    };
    (q as i32, shift)
}

/// Applies a fixed-point multiplier to an `i32` accumulator and saturates
/// to `i8`, adding the output zero point: the integer-only requantization
/// step executed after every MAC loop.
///
/// `acc * q * 2^-31` is computed with round-to-nearest (ties away from
/// zero), then shifted right by `right_shift` with rounding, matching the
/// reference TFLite kernels closely enough for golden tests.
#[inline]
pub fn requantize(acc: i32, quantized_multiplier: i32, right_shift: i32, zero_point: i32) -> i8 {
    // Saturating doubling high multiply: (acc * q + 2^30) >> 31.
    let ab = i64::from(acc) * i64::from(quantized_multiplier);
    let nudge = if ab >= 0 {
        1i64 << 30
    } else {
        1 - (1i64 << 30)
    };
    let high = ((ab + nudge) >> 31) as i32;
    // Rounding right shift.
    let shifted = if right_shift > 0 {
        let mask = (1i32 << right_shift) - 1;
        let remainder = high & mask;
        let threshold = (mask >> 1) + i32::from(high < 0);
        (high >> right_shift) + i32::from(remainder > threshold)
    } else {
        high
    };
    (shifted + zero_point).clamp(i32::from(i8::MIN), i32::from(i8::MAX)) as i8
}

/// Derives the requantization pair for a layer from its input, weight,
/// and output scales.
///
/// # Panics
///
/// Panics if the effective multiplier falls outside `(0, 1)` — which
/// indicates an inconsistent scale assignment in the model.
pub fn derive_requant(in_scale: f32, weight_scale: f32, out_scale: f32) -> (i32, i32) {
    let m = f64::from(in_scale) * f64::from(weight_scale) / f64::from(out_scale);
    quantize_multiplier(m)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantize_dequantize_round_trip() {
        let p = QuantParams::new(0.1, 0);
        assert_eq!(quantize_value(1.25, p), 13); // 12.5 rounds to 13
        assert!((dequantize(13, p) - 1.3).abs() < 1e-6);
        // Saturation.
        assert_eq!(quantize_value(100.0, p), 127);
        assert_eq!(quantize_value(-100.0, p), -128);
    }

    #[test]
    fn zero_point_shifts_quantization() {
        let p = QuantParams::new(0.5, 10);
        assert_eq!(quantize_value(0.0, p), 10);
        assert_eq!(dequantize(10, p), 0.0);
    }

    #[test]
    fn multiplier_decomposition_reconstructs_value() {
        for &m in &[0.9, 0.5, 0.25, 0.1, 0.003, 0.6181] {
            let (q, shift) = quantize_multiplier(m);
            let reconstructed = f64::from(q) / f64::from(1u32 << 31) / (1u64 << shift) as f64;
            assert!(
                (reconstructed - m).abs() / m < 1e-6,
                "m={m} reconstructed={reconstructed}"
            );
            assert!(q >= 1 << 30, "normalized multiplier uses full precision");
        }
    }

    #[test]
    #[should_panic(expected = "multiplier must be in")]
    fn multiplier_rejects_out_of_range() {
        let _ = quantize_multiplier(1.5);
    }

    #[test]
    fn requantize_matches_real_arithmetic() {
        let (q, shift) = quantize_multiplier(0.05);
        for &acc in &[0i32, 1, 19, 20, 100, -100, 2540, -2540, 100_000] {
            let real = (f64::from(acc) * 0.05).round();
            let expected = real.clamp(-128.0, 127.0) as i8;
            let got = requantize(acc, q, shift, 0);
            assert!(
                (i32::from(got) - i32::from(expected)).abs() <= 1,
                "acc={acc} got={got} expected={expected}"
            );
        }
    }

    #[test]
    fn requantize_applies_zero_point_and_saturates() {
        let (q, shift) = quantize_multiplier(0.5);
        assert_eq!(requantize(100, q, shift, 5), 55);
        assert_eq!(requantize(1_000_000, q, shift, 0), 127);
        assert_eq!(requantize(-1_000_000, q, shift, 0), -128);
    }

    #[test]
    fn requantize_rounds_to_nearest() {
        let (q, shift) = quantize_multiplier(0.5);
        // Ties round away from zero: 1.5 → 2, -1.5 → -2.
        assert_eq!(requantize(3, q, shift, 0), 2);
        assert_eq!(requantize(-3, q, shift, 0), -2);
    }

    #[test]
    fn derive_requant_composes_scales() {
        let (q, shift) = derive_requant(0.1, 0.02, 0.1);
        // effective multiplier 0.02
        let got = requantize(1000, q, shift, 0); // 1000 * 0.02 = 20
        assert_eq!(got, 20);
    }

    #[test]
    #[should_panic(expected = "scale must be finite and positive")]
    fn quant_params_reject_bad_scale() {
        let _ = QuantParams::new(0.0, 0);
    }
}
